package stats

// AliasTable is the O(1)-expected sampling index used by the synthetic
// trace generator's random walk. It is built once over a frozen
// cumulative distribution and replaces the per-sample binary search
// with a single guided probe.
//
// Soundness note (see DESIGN.md "Performance architecture"): a textbook
// Walker alias table partitions probability mass into equal columns and
// therefore maps a given uniform variate u to a *different* outcome
// than inverse-CDF sampling does, even though the distributions match.
// That would silently re-route the shared RNG stream and break the
// byte-identical golden corpus. This implementation instead keeps the
// exact inverse-transform semantics — target = floor(u·total), clamped
// to total−1, answer = first index i with cum[i] > target — and
// accelerates the search with a guide table: bucket j (a 2^shift-wide
// slice of the weight space) stores the first index whose cumulative
// weight exceeds the bucket's start, so a lookup is one indexed load
// plus a short forward scan. Every (u → index) mapping is bit-identical
// to the binary search it replaces.
type AliasTable struct {
	cum   []uint64 // non-decreasing cumulative weights; last = total
	guide []int32  // guide[j] = first i with cum[i] > j<<shift
	total uint64
	shift uint
}

// NewAliasTable builds the index over a non-decreasing cumulative
// weight sequence whose last element is the total weight. It panics on
// an empty distribution. The slice is retained, not copied: callers
// must not mutate it afterwards.
func NewAliasTable(cum []uint64) *AliasTable {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		panic("stats: alias table over empty distribution")
	}
	total := cum[len(cum)-1]
	// Widen buckets until the guide is at most ~2x the number of
	// distribution entries, bounding memory while keeping the expected
	// forward scan O(1).
	var shift uint
	for total>>shift > uint64(2*len(cum)) {
		shift++
	}
	// Only targets in [0, total) are ever looked up, so the last bucket
	// starts at or below total-1 and a valid answer always exists.
	nb := int((total-1)>>shift) + 1
	guide := make([]int32, nb)
	var i int32
	for j := 0; j < nb; j++ {
		start := uint64(j) << shift
		for cum[i] <= start {
			i++
		}
		guide[j] = i
	}
	return &AliasTable{cum: cum, guide: guide, total: total, shift: shift}
}

// Total returns the total weight.
func (a *AliasTable) Total() uint64 { return a.total }

// Lookup returns the first index i with cum[i] > target. target must be
// in [0, total).
func (a *AliasTable) Lookup(target uint64) int {
	i := a.guide[target>>a.shift]
	for a.cum[i] <= target {
		i++
	}
	return int(i)
}

// Sample maps a uniform variate u in [0,1) to an index, bit-identically
// to the binary-search inverse-CDF sampling it replaces.
func (a *AliasTable) Sample(u float64) int {
	target := uint64(u * float64(a.total))
	if target >= a.total {
		target = a.total - 1
	}
	return a.Lookup(target)
}
