package stats

// MaxDependencyDistance bounds the dependency-distance distributions
// recorded during statistical profiling. The paper (§2.1.1) limits the
// distribution to 512 entries, "which still allows the modeling of a
// wide range of current and near-future microprocessors": any RAW
// dependency further away than the largest plausible instruction window
// never stalls issue, so clamping it loses no timing information.
const MaxDependencyDistance = 512

// Histogram is a bounded integer histogram over [1, Max]. Values larger
// than Max are clamped to Max; values < 1 are rejected. It is the
// storage format for dependency-distance distributions in the
// statistical flow graph.
type Histogram struct {
	Max    int
	counts []uint64
	total  uint64

	// Sparse sampling cache over the non-empty buckets, rebuilt lazily
	// after mutation: interleaved (cumulative count, value) entries plus
	// a guide table giving O(1)-expected lookups with the same
	// inverse-CDF (u → value) mapping as a linear or binary search over
	// the raw counts (see AliasTable for the soundness argument; the
	// guide here is the same construction). The entries are interleaved
	// rather than parallel slices so one sample touches one or two cache
	// lines instead of four. Profiling mutates histograms heavily and
	// never samples; synthesis samples heavily and never mutates — the
	// cache serves the latter without taxing the former.
	entries []histEntry
	guide   []int32
	gshift  uint
}

// histEntry pairs a cumulative count with its bucket value.
type histEntry struct {
	cum uint64
	val int32
}

// NewHistogram returns an empty histogram over [1, max].
func NewHistogram(max int) *Histogram {
	if max < 1 {
		panic("stats: histogram max must be >= 1")
	}
	return &Histogram{Max: max}
}

// Add records one observation of v. Values above Max are clamped to Max,
// matching the paper's bounded dependency distribution; non-positive
// values panic since a RAW distance is at least 1.
func (h *Histogram) Add(v int) {
	if v < 1 {
		panic("stats: histogram value must be >= 1")
	}
	if v > h.Max {
		v = h.Max
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	h.counts[v]++
	h.total++
	h.invalidate()
}

func (h *Histogram) invalidate() {
	// Skip the pointer stores (and their write barriers) when there is
	// no cache to drop — the overwhelmingly common case, since profiling
	// mutates millions of times before anything ever samples.
	if h.entries != nil {
		h.entries, h.guide = nil, nil
	}
}

// AddN records n observations of v.
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 1 {
		panic("stats: histogram value must be >= 1")
	}
	if v > h.Max {
		v = h.Max
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	h.counts[v] += n
	h.total += n
	h.invalidate()
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations equal to v (after clamping).
func (h *Histogram) Count(v int) uint64 {
	if h.counts == nil || v < 1 {
		return 0
	}
	if v > h.Max {
		v = h.Max
	}
	return h.counts[v]
}

// Mean returns the mean observation, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Sample draws a value from the empirical distribution using u, a
// uniform variate in [0,1). It panics on an empty histogram. The
// (u → value) mapping is the inverse-CDF transform, preserved
// bit-identically by the alias-table fast path (see AliasTable).
func (h *Histogram) Sample(u float64) int {
	if h.total == 0 {
		panic("stats: sampling empty histogram")
	}
	if h.entries == nil {
		h.buildCum()
	}
	target := uint64(u * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	i := h.guide[target>>h.gshift]
	for h.entries[i].cum <= target {
		i++
	}
	return int(h.entries[i].val)
}

func (h *Histogram) buildCum() {
	n := 0
	for _, c := range h.counts {
		if c != 0 {
			n++
		}
	}
	entries := make([]histEntry, 0, n)
	var run uint64
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		run += c
		entries = append(entries, histEntry{cum: run, val: int32(v)})
	}
	// Guide construction mirrors NewAliasTable: bucket j holds the first
	// entry whose cumulative count exceeds j<<gshift, with the bucket
	// width widened until the guide is at most ~2x the entry count.
	var shift uint
	for h.total>>shift > uint64(2*n) {
		shift++
	}
	nb := int((h.total-1)>>shift) + 1
	guide := make([]int32, nb)
	var gi int32
	for j := 0; j < nb; j++ {
		start := uint64(j) << shift
		for entries[gi].cum <= start {
			gi++
		}
		guide[j] = gi
	}
	h.entries, h.guide, h.gshift = entries, guide, shift
}

// Freeze eagerly builds the cumulative sampling cache. A frozen
// histogram can be sampled from many goroutines at once: Sample's lazy
// cache build is its only write, so once the cache exists every Sample
// call is read-only. Any later Add/Merge un-freezes the histogram
// (profiling and sampling phases never overlap in this framework).
func (h *Histogram) Freeze() {
	if h.total != 0 && h.entries == nil {
		h.buildCum()
	}
}

// Quantile returns the smallest value v such that at least fraction q of
// the mass lies at or below v. q is clamped to [0,1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= target && c > 0 {
			return v
		}
	}
	return h.Max
}

// Merge adds all observations from o into h. The histograms must have
// the same bound.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.Max != h.Max {
		panic("stats: merging histograms with different bounds")
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.total += o.total
	h.invalidate()
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram(h.Max)
	c.Merge(h)
	return c
}
