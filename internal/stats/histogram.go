package stats

// MaxDependencyDistance bounds the dependency-distance distributions
// recorded during statistical profiling. The paper (§2.1.1) limits the
// distribution to 512 entries, "which still allows the modeling of a
// wide range of current and near-future microprocessors": any RAW
// dependency further away than the largest plausible instruction window
// never stalls issue, so clamping it loses no timing information.
const MaxDependencyDistance = 512

// Histogram is a bounded integer histogram over [1, Max]. Values larger
// than Max are clamped to Max; values < 1 are rejected. It is the
// storage format for dependency-distance distributions in the
// statistical flow graph.
type Histogram struct {
	Max    int
	counts []uint64
	total  uint64

	// Sparse cumulative cache for sampling: (value, cumulative-count)
	// pairs over the non-empty buckets, rebuilt lazily after mutation.
	// Profiling mutates histograms heavily and never samples; synthesis
	// samples heavily and never mutates — the cache serves the latter
	// without taxing the former.
	cum []cumEntry
}

type cumEntry struct {
	v int32
	c uint64
}

// NewHistogram returns an empty histogram over [1, max].
func NewHistogram(max int) *Histogram {
	if max < 1 {
		panic("stats: histogram max must be >= 1")
	}
	return &Histogram{Max: max}
}

// Add records one observation of v. Values above Max are clamped to Max,
// matching the paper's bounded dependency distribution; non-positive
// values panic since a RAW distance is at least 1.
func (h *Histogram) Add(v int) {
	if v < 1 {
		panic("stats: histogram value must be >= 1")
	}
	if v > h.Max {
		v = h.Max
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	h.counts[v]++
	h.total++
	h.cum = nil
}

// AddN records n observations of v.
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 1 {
		panic("stats: histogram value must be >= 1")
	}
	if v > h.Max {
		v = h.Max
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	h.counts[v] += n
	h.total += n
	h.cum = nil
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations equal to v (after clamping).
func (h *Histogram) Count(v int) uint64 {
	if h.counts == nil || v < 1 {
		return 0
	}
	if v > h.Max {
		v = h.Max
	}
	return h.counts[v]
}

// Mean returns the mean observation, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Sample draws a value from the empirical distribution using u, a
// uniform variate in [0,1). It panics on an empty histogram.
func (h *Histogram) Sample(u float64) int {
	if h.total == 0 {
		panic("stats: sampling empty histogram")
	}
	if h.cum == nil {
		h.buildCum()
	}
	target := uint64(u * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	lo, hi := 0, len(h.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.cum[mid].c <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int(h.cum[lo].v)
}

func (h *Histogram) buildCum() {
	var run uint64
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		run += c
		h.cum = append(h.cum, cumEntry{v: int32(v), c: run})
	}
}

// Freeze eagerly builds the cumulative sampling cache. A frozen
// histogram can be sampled from many goroutines at once: Sample's lazy
// cache build is its only write, so once the cache exists every Sample
// call is read-only. Any later Add/Merge un-freezes the histogram
// (profiling and sampling phases never overlap in this framework).
func (h *Histogram) Freeze() {
	if h.total != 0 && h.cum == nil {
		h.buildCum()
	}
}

// Quantile returns the smallest value v such that at least fraction q of
// the mass lies at or below v. q is clamped to [0,1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= target && c > 0 {
			return v
		}
	}
	return h.Max
}

// Merge adds all observations from o into h. The histograms must have
// the same bound.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.Max != h.Max {
		panic("stats: merging histograms with different bounds")
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.Max+1)
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.total += o.total
	h.cum = nil
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram(h.Max)
	c.Merge(h)
	return c
}
