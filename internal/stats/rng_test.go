package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.02 {
		t.Errorf("normal stddev %.4f, want ~1", sd)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical draws", same)
	}
}

func TestRNGSeedsNeverAllZeroState(t *testing.T) {
	// Any seed, including zero, must produce a usable generator.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v1, v2 := r.Uint64(), r.Uint64()
		return v1 != 0 || v2 != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
