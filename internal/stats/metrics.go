package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs;
// it returns 0 when fewer than two observations are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CoV returns the coefficient of variation — standard deviation divided
// by mean — used in §4.1 to quantify convergence of IPC across synthetic
// traces generated with different random seeds. It returns 0 when the
// mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// AbsError returns the absolute prediction error of §4.2:
//
//	AE = |Mss - Meds| / Meds
//
// where Mss is the statistically simulated metric and Meds the
// execution-driven reference. It returns 0 when the reference is zero.
func AbsError(ss, eds float64) float64 {
	if eds == 0 {
		return 0
	}
	return math.Abs(ss-eds) / math.Abs(eds)
}

// RelError returns the relative prediction error of §4.5 for the move
// from design point A to design point B:
//
//	RE = |(Mb,ss/Ma,ss) - (Mb,eds/Ma,eds)| / (Mb,eds/Ma,eds)
//
// i.e. the error of the predicted trend rather than of a single point.
func RelError(aSS, bSS, aEDS, bEDS float64) float64 {
	if aSS == 0 || aEDS == 0 || bEDS == 0 {
		return 0
	}
	ssRatio := bSS / aSS
	edsRatio := bEDS / aEDS
	return math.Abs(ssRatio-edsRatio) / math.Abs(edsRatio)
}

// HarmonicMean returns the harmonic mean of xs, ignoring non-positive
// entries; it returns 0 if no positive entries exist.
func HarmonicMean(xs []float64) float64 {
	var inv float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			inv += 1 / x
			n++
		}
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}
