package stats

// WeightedSampler draws indices in proportion to dynamically updatable
// non-negative integer weights. Selection and weight updates are
// O(log n) via a Fenwick (binary indexed) tree.
//
// The synthetic-trace generator uses it twice: once over SFG node
// occurrences (which are decremented as nodes are consumed, step 2 of
// the §2.2 algorithm) and once, statically, over outgoing-edge
// transition counts.
type WeightedSampler struct {
	tree  []uint64 // 1-based Fenwick tree of weights
	w     []uint64 // current weight per index
	total uint64
}

// NewWeightedSampler builds a sampler over the given weights.
func NewWeightedSampler(weights []uint64) *WeightedSampler {
	s := &WeightedSampler{
		tree: make([]uint64, len(weights)+1),
		w:    make([]uint64, len(weights)),
	}
	for i, w := range weights {
		if w != 0 {
			s.add(i, w)
			s.w[i] = w
		}
	}
	return s
}

func (s *WeightedSampler) add(i int, delta uint64) {
	s.total += delta
	for j := i + 1; j < len(s.tree); j += j & (-j) {
		s.tree[j] += delta
	}
}

func (s *WeightedSampler) sub(i int, delta uint64) {
	s.total -= delta
	for j := i + 1; j < len(s.tree); j += j & (-j) {
		s.tree[j] -= delta
	}
}

// Total returns the sum of all current weights.
func (s *WeightedSampler) Total() uint64 { return s.total }

// Weight returns the current weight of index i.
func (s *WeightedSampler) Weight(i int) uint64 { return s.w[i] }

// Sample maps a uniform variate u in [0,1) to an index drawn with
// probability proportional to its weight. It panics when all weights
// are zero.
func (s *WeightedSampler) Sample(u float64) int {
	if s.total == 0 {
		panic("stats: sampling from empty WeightedSampler")
	}
	target := uint64(u * float64(s.total))
	if target >= s.total {
		target = s.total - 1
	}
	// Fenwick tree descent: find smallest index with cumulative
	// weight > target.
	idx := 0
	bit := 1
	for bit<<1 <= len(s.tree)-1 {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(s.tree) && s.tree[next] <= target {
			idx = next
			target -= s.tree[next]
		}
	}
	return idx // idx is 0-based index of selected element
}

// Decrement reduces the weight of index i by one, saturating at zero.
// It reports whether the weight was positive before the call.
func (s *WeightedSampler) Decrement(i int) bool {
	if s.w[i] == 0 {
		return false
	}
	s.w[i]--
	s.sub(i, 1)
	return true
}

// SetWeight replaces the weight of index i.
func (s *WeightedSampler) SetWeight(i int, w uint64) {
	if s.w[i] == w {
		return
	}
	if w > s.w[i] {
		s.add(i, w-s.w[i])
	} else {
		s.sub(i, s.w[i]-w)
	}
	s.w[i] = w
}

// CDF is an immutable cumulative distribution over [0, n) built once
// from weights; Sample is O(1) expected via an alias (guide) table that
// preserves the inverse-CDF (u → index) mapping bit-identically. It is
// cheaper than WeightedSampler when weights never change (e.g. edge
// transition probabilities).
type CDF struct {
	cum  []uint64
	samp *AliasTable
}

// NewCDF builds a CDF from the given weights.
func NewCDF(weights []uint64) *CDF {
	cum := make([]uint64, len(weights))
	var t uint64
	for i, w := range weights {
		t += w
		cum[i] = t
	}
	c := &CDF{cum: cum}
	if t != 0 {
		c.samp = NewAliasTable(cum)
	}
	return c
}

// Total returns the total weight.
func (c *CDF) Total() uint64 {
	if len(c.cum) == 0 {
		return 0
	}
	return c.cum[len(c.cum)-1]
}

// Sample maps a uniform variate u in [0,1) to an index. It panics when
// the total weight is zero.
func (c *CDF) Sample(u float64) int {
	if c.samp == nil {
		panic("stats: sampling from empty CDF")
	}
	return c.samp.Sample(u)
}
