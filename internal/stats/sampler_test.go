package stats

import (
	"testing"
	"testing/quick"
)

func TestWeightedSamplerProportions(t *testing.T) {
	s := NewWeightedSampler([]uint64{10, 0, 30, 60})
	r := NewRNG(2)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Sample(r.Float64())]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	for i, want := range []float64{0.1, 0, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("index %d sampled with frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedSamplerDecrement(t *testing.T) {
	s := NewWeightedSampler([]uint64{2, 1})
	if !s.Decrement(0) {
		t.Fatal("Decrement(0) should succeed")
	}
	if s.Weight(0) != 1 {
		t.Errorf("weight 0 = %d, want 1", s.Weight(0))
	}
	if s.Total() != 2 {
		t.Errorf("total = %d, want 2", s.Total())
	}
	s.Decrement(0)
	if s.Decrement(0) {
		t.Error("Decrement of zero weight should report false")
	}
	// Only index 1 remains.
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if got := s.Sample(r.Float64()); got != 1 {
			t.Fatalf("Sample = %d after exhausting index 0, want 1", got)
		}
	}
}

func TestWeightedSamplerSetWeight(t *testing.T) {
	s := NewWeightedSampler([]uint64{5, 5})
	s.SetWeight(0, 0)
	s.SetWeight(1, 20)
	if s.Total() != 20 {
		t.Fatalf("total = %d, want 20", s.Total())
	}
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if got := s.Sample(r.Float64()); got != 1 {
			t.Fatalf("Sample = %d, want 1", got)
		}
	}
}

func TestWeightedSamplerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeightedSampler([]uint64{0, 0}).Sample(0.5)
}

func TestWeightedSamplerSingleElement(t *testing.T) {
	s := NewWeightedSampler([]uint64{7})
	for _, u := range []float64{0, 0.5, 0.9999} {
		if got := s.Sample(u); got != 0 {
			t.Fatalf("Sample(%v) = %d, want 0", u, got)
		}
	}
}

// Property: Sample never returns a zero-weight index, and Total always
// equals the sum of weights, under arbitrary decrements.
func TestWeightedSamplerInvariants(t *testing.T) {
	f := func(weights []uint8, ops []uint8, u float64) bool {
		if len(weights) == 0 {
			return true
		}
		ws := make([]uint64, len(weights))
		var total uint64
		for i, w := range weights {
			ws[i] = uint64(w)
			total += uint64(w)
		}
		s := NewWeightedSampler(ws)
		for _, op := range ops {
			i := int(op) % len(ws)
			if s.Decrement(i) {
				total--
			}
		}
		if s.Total() != total {
			return false
		}
		if total == 0 {
			return true
		}
		u = u - float64(int(u))
		if u < 0 {
			u = -u
		}
		idx := s.Sample(u)
		return s.Weight(idx) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMatchesWeights(t *testing.T) {
	c := NewCDF([]uint64{1, 0, 3})
	r := NewRNG(9)
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[c.Sample(r.Float64())]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	got := float64(counts[2]) / n
	if got < 0.72 || got > 0.78 {
		t.Errorf("index 2 frequency %.3f, want ~0.75", got)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCDF(nil).Sample(0.5)
}

// Property: CDF and WeightedSampler agree for identical weights and u.
func TestCDFWeightedSamplerAgree(t *testing.T) {
	f := func(weights []uint8, u float64) bool {
		if len(weights) == 0 {
			return true
		}
		ws := make([]uint64, len(weights))
		var total uint64
		for i, w := range weights {
			ws[i] = uint64(w)
			total += uint64(w)
		}
		if total == 0 {
			return true
		}
		u = u - float64(int(u))
		if u < 0 {
			u = -u
		}
		return NewCDF(ws).Sample(u) == NewWeightedSampler(ws).Sample(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
