package stats

import (
	"math"
	"testing"
)

func TestTCriticalTableValues(t *testing.T) {
	cases := []struct {
		conf float64
		df   int
		want float64
	}{
		{0.95, 1, 12.706},
		{0.95, 2, 4.303},
		{0.95, 5, 2.571},
		{0.95, 10, 2.228},
		{0.95, 30, 2.042},
		{0.95, 40, 2.021},
		{0.95, 120, 1.980},
		{0.90, 1, 6.314},
		{0.90, 10, 1.812},
		{0.90, 60, 1.671},
		{0.99, 1, 63.657},
		{0.99, 10, 3.169},
		{0.99, 120, 2.617},
	}
	for _, c := range cases {
		got, err := TCritical(c.conf, c.df)
		if err != nil {
			t.Fatalf("TCritical(%v, %d): %v", c.conf, c.df, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCritical(%v, %d) = %v, want %v", c.conf, c.df, got, c.want)
		}
	}
}

func TestTCriticalInterpolationAndLimits(t *testing.T) {
	// Between tabulated rows the value must lie between its neighbours
	// (t decreases with df).
	for _, df := range []int{35, 50, 90} {
		got, err := TCritical(0.95, df)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := TCritical(0.95, 120)
		hi, _ := TCritical(0.95, 30)
		if got <= lo || got >= hi {
			t.Errorf("TCritical(0.95, %d) = %v outside (%v, %v)", df, got, lo, hi)
		}
	}
	// Far past the table it approaches the normal quantile from above.
	big, _ := TCritical(0.95, 1_000_000)
	if big < 1.960 || big > 1.961 {
		t.Errorf("TCritical(0.95, 1e6) = %v, want ~1.960", big)
	}
	// df clamps at 1.
	one, _ := TCritical(0.95, 0)
	want, _ := TCritical(0.95, 1)
	if one != want {
		t.Errorf("df=0 not clamped: %v vs %v", one, want)
	}
	if _, err := TCritical(0.80, 10); err == nil {
		t.Error("unsupported confidence accepted")
	}
}

func TestTCriticalMonotoneInDF(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 300; df++ {
		got, err := TCritical(0.95, df)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev {
			t.Fatalf("t not monotone at df=%d: %v > %v", df, got, prev)
		}
		prev = got
	}
}

func TestMeanCI(t *testing.T) {
	// Known worked example: xs with mean 10, stddev 2, n=4, df=3,
	// t=3.182 -> half-width 3.182*2/2 = 3.182.
	xs := []float64{8, 10, 10, 12}
	// stddev = sqrt((4+0+0+4)/3) = sqrt(8/3)
	sd := math.Sqrt(8.0 / 3.0)
	ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := 3.182 * sd / 2
	if math.Abs(ci.Mean-10) > 1e-12 || math.Abs(ci.HalfWidth-wantHalf) > 1e-9 {
		t.Errorf("MeanCI = %+v, want mean 10 half %v", ci, wantHalf)
	}
	if ci.DF != 3 {
		t.Errorf("DF = %d, want 3", ci.DF)
	}
	if !ci.Contains(10) || ci.Contains(10 + wantHalf + 1e-9) {
		t.Error("Contains is wrong at the boundaries")
	}
	if got := ci.RelHalfWidth(); math.Abs(got-wantHalf/10) > 1e-12 {
		t.Errorf("RelHalfWidth = %v", got)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	ci, err := MeanCI([]float64{7}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 7 || ci.HalfWidth != 0 || ci.Lo != 7 || ci.Hi != 7 || ci.DF != 0 {
		t.Errorf("single observation: %+v", ci)
	}
	if _, err := MeanCI([]float64{1}, 0.42); err == nil {
		t.Error("unsupported confidence accepted for degenerate sample")
	}
	empty, err := MeanCI(nil, 0.95)
	if err != nil || empty.Mean != 0 || empty.HalfWidth != 0 {
		t.Errorf("empty sample: %+v, %v", empty, err)
	}
}

func TestStratifiedCISingleStratumMatchesMeanCI(t *testing.T) {
	xs := []float64{1.0, 1.2, 1.4, 1.1, 1.3}
	want, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StratifiedCI([]Stratum{{Weight: 1, Mean: Mean(xs), Sigma: StdDev(xs), N: len(xs)}}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.HalfWidth-want.HalfWidth) > 1e-9 {
		t.Errorf("single stratum: got %+v want %+v", got, want)
	}
	if got.DF != want.DF {
		t.Errorf("DF = %d, want %d", got.DF, want.DF)
	}
}

func TestStratifiedCIWeightsAndBias(t *testing.T) {
	strata := []Stratum{
		{Weight: 0.6, Mean: 2.0, Sigma: 0.2, N: 4},
		{Weight: 0.4, Mean: 1.0, Sigma: 0.1, N: 4},
	}
	ci, err := StratifiedCI(strata, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Mean-(0.6*2.0+0.4*1.0)) > 1e-12 {
		t.Errorf("stratified mean = %v", ci.Mean)
	}
	// Adding bias allowances must widen the interval by exactly
	// sum W_h * bias_h without changing mean or degrees of freedom.
	biased := []Stratum{
		{Weight: 0.6, Mean: 2.0, Sigma: 0.2, N: 4, Bias: 0.1},
		{Weight: 0.4, Mean: 1.0, Sigma: 0.1, N: 4, Bias: 0.05},
	}
	bci, err := StratifiedCI(biased, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := 0.6*0.1 + 0.4*0.05
	if math.Abs((bci.HalfWidth-ci.HalfWidth)-wantExtra) > 1e-12 {
		t.Errorf("bias widened by %v, want %v", bci.HalfWidth-ci.HalfWidth, wantExtra)
	}
	if bci.Mean != ci.Mean || bci.DF != ci.DF {
		t.Errorf("bias changed mean/df: %+v vs %+v", bci, ci)
	}
}

func TestStratifiedCIZeroVarianceStrata(t *testing.T) {
	// Exactly known strata (sigma 0) contribute mean but no width.
	ci, err := StratifiedCI([]Stratum{
		{Weight: 0.5, Mean: 4, Sigma: 0, N: 1},
		{Weight: 0.5, Mean: 2, Sigma: 0, N: 3},
	}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 3 || ci.HalfWidth != 0 {
		t.Errorf("exact strata: %+v", ci)
	}
	// A single-observation stratum with nonzero sigma still widens the
	// interval (clamped df, no division by zero).
	ci, err = StratifiedCI([]Stratum{{Weight: 1, Mean: 4, Sigma: 0.5, N: 1}}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.HalfWidth <= 0 || math.IsNaN(ci.HalfWidth) {
		t.Errorf("singleton stratum: %+v", ci)
	}
	if ci.DF != 1 {
		t.Errorf("singleton stratum DF = %d, want 1", ci.DF)
	}
}

func TestStratifiedCIWelchSatterthwaiteDF(t *testing.T) {
	// Equal strata with n=5 each: W-S df for k strata of equal
	// contribution v is (k*v)^2 / (k*v^2/4) = 4k.
	strata := []Stratum{
		{Weight: 0.5, Mean: 1, Sigma: 0.2, N: 5},
		{Weight: 0.5, Mean: 1, Sigma: 0.2, N: 5},
	}
	ci, err := StratifiedCI(strata, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.DF != 8 {
		t.Errorf("W-S df = %d, want 8", ci.DF)
	}
}
