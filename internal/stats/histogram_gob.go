package stats

import (
	"bytes"
	"encoding/gob"
)

// histogramWire is the serialised form: sparse (value, count) pairs.
type histogramWire struct {
	Max    int
	Values []int32
	Counts []uint64
}

// GobEncode implements gob.GobEncoder with a sparse encoding, since
// dependency-distance histograms are typically concentrated on a few
// distances.
func (h *Histogram) GobEncode() ([]byte, error) {
	w := histogramWire{Max: h.Max}
	for v, c := range h.counts {
		if c != 0 {
			w.Values = append(w.Values, int32(v))
			w.Counts = append(w.Counts, c)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.Max = w.Max
	h.counts = nil
	h.total = 0
	for i, v := range w.Values {
		h.AddN(int(v), w.Counts[i])
	}
	return nil
}
