package stats

import (
	"fmt"
	"math"
	"sort"
)

// Student-t confidence machinery shared by the adaptive fidelity engine
// (stratified IPC/EPC intervals) and any future surrogate work that
// needs honest uncertainty on small samples.

// tTable holds two-sided Student-t critical values t_{alpha/2, df} for
// the supported confidence levels, indexed by degrees of freedom
// 1..30 then 40, 60, 120. Beyond the table the normal quantile is the
// correct limit; between tabulated rows we interpolate linearly in
// 1/df, which matches the printed tables to three decimals.
var tTable = map[float64][]struct {
	df int
	t  float64
}{
	0.90: {{1, 6.314}, {2, 2.920}, {3, 2.353}, {4, 2.132}, {5, 2.015},
		{6, 1.943}, {7, 1.895}, {8, 1.860}, {9, 1.833}, {10, 1.812},
		{11, 1.796}, {12, 1.782}, {13, 1.771}, {14, 1.761}, {15, 1.753},
		{16, 1.746}, {17, 1.740}, {18, 1.734}, {19, 1.729}, {20, 1.725},
		{21, 1.721}, {22, 1.717}, {23, 1.714}, {24, 1.711}, {25, 1.708},
		{26, 1.706}, {27, 1.703}, {28, 1.701}, {29, 1.699}, {30, 1.697},
		{40, 1.684}, {60, 1.671}, {120, 1.658}},
	0.95: {{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
		{11, 2.201}, {12, 2.179}, {13, 2.160}, {14, 2.145}, {15, 2.131},
		{16, 2.120}, {17, 2.110}, {18, 2.101}, {19, 2.093}, {20, 2.086},
		{21, 2.080}, {22, 2.074}, {23, 2.069}, {24, 2.064}, {25, 2.060},
		{26, 2.056}, {27, 2.052}, {28, 2.048}, {29, 2.045}, {30, 2.042},
		{40, 2.021}, {60, 2.000}, {120, 1.980}},
	0.99: {{1, 63.657}, {2, 9.925}, {3, 5.841}, {4, 4.604}, {5, 4.032},
		{6, 3.707}, {7, 3.499}, {8, 3.355}, {9, 3.250}, {10, 3.169},
		{11, 3.106}, {12, 3.055}, {13, 3.012}, {14, 2.977}, {15, 2.947},
		{16, 2.921}, {17, 2.898}, {18, 2.878}, {19, 2.861}, {20, 2.845},
		{21, 2.831}, {22, 2.819}, {23, 2.807}, {24, 2.797}, {25, 2.787},
		{26, 2.779}, {27, 2.771}, {28, 2.763}, {29, 2.756}, {30, 2.750},
		{40, 2.704}, {60, 2.660}, {120, 2.617}},
}

// normal two-sided quantiles z_{alpha/2}: the df -> infinity limit of
// the t rows above.
var zLimit = map[float64]float64{0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

// SupportedConfidences lists the confidence levels TCritical accepts,
// ascending.
func SupportedConfidences() []float64 { return []float64{0.90, 0.95, 0.99} }

// TCritical returns the two-sided Student-t critical value for the
// given confidence level (0.90, 0.95 or 0.99) and degrees of freedom.
// df < 1 is clamped to 1 (the most conservative row); unsupported
// confidence levels return an error rather than a silently wrong
// interval.
func TCritical(confidence float64, df int) (float64, error) {
	rows, ok := tTable[confidence]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported confidence %v (want one of 0.90, 0.95, 0.99)", confidence)
	}
	if df < 1 {
		df = 1
	}
	last := rows[len(rows)-1]
	if df >= last.df {
		// Interpolate between the last tabulated row and the normal
		// limit in 1/df (exact at both endpoints, monotone between).
		z := zLimit[confidence]
		frac := float64(last.df) / float64(df)
		return z + (last.t-z)*frac, nil
	}
	i := sort.Search(len(rows), func(i int) bool { return rows[i].df >= df })
	if rows[i].df == df {
		return rows[i].t, nil
	}
	lo, hi := rows[i-1], rows[i]
	// Linear in 1/df between the bracketing rows.
	x := (1/float64(df) - 1/float64(hi.df)) / (1/float64(lo.df) - 1/float64(hi.df))
	return hi.t + x*(lo.t-hi.t), nil
}

// CI is a two-sided confidence interval on a mean.
type CI struct {
	Mean       float64
	Lo, Hi     float64
	HalfWidth  float64
	Confidence float64
	DF         int // Student-t degrees of freedom used
}

// RelHalfWidth returns HalfWidth / |Mean| (0 for a zero mean) — the
// "target_ci" unit the fidelity engine converges on.
func (c CI) RelHalfWidth() float64 {
	if c.Mean == 0 {
		return 0
	}
	return c.HalfWidth / math.Abs(c.Mean)
}

// Contains reports whether x lies inside the interval.
func (c CI) Contains(x float64) bool { return x >= c.Lo && x <= c.Hi }

// MeanCI returns the Student-t confidence interval on the mean of xs.
// With fewer than two observations the interval degenerates to a point
// (HalfWidth 0, DF 0): the caller owns deciding whether a single
// observation is trustworthy.
func MeanCI(xs []float64, confidence float64) (CI, error) {
	ci := CI{Mean: Mean(xs), Confidence: confidence}
	ci.Lo, ci.Hi = ci.Mean, ci.Mean
	if len(xs) < 2 {
		if _, ok := tTable[confidence]; !ok {
			return CI{}, fmt.Errorf("stats: unsupported confidence %v (want one of 0.90, 0.95, 0.99)", confidence)
		}
		return ci, nil
	}
	ci.DF = len(xs) - 1
	t, err := TCritical(confidence, ci.DF)
	if err != nil {
		return CI{}, err
	}
	ci.HalfWidth = t * StdDev(xs) / math.Sqrt(float64(len(xs)))
	ci.Lo, ci.Hi = ci.Mean-ci.HalfWidth, ci.Mean+ci.HalfWidth
	return ci, nil
}

// Stratum is one stratum's contribution to a stratified estimate: a
// weight (stratum share of the population, summing to 1 across
// strata), the sample mean of N observations drawn within the stratum,
// and their sample standard deviation. Bias is an additive worst-case
// allowance for systematic error of the estimator that produced the
// observations (e.g. a cheap model's known bias bound, in the units of
// the mean); it widens the interval without entering the variance.
type Stratum struct {
	Weight float64
	Mean   float64
	Sigma  float64
	N      int
	Bias   float64
}

// StratifiedCI returns the confidence interval on the stratified mean
// sum_h W_h * mean_h. The sampling-noise part is a Student-t interval
// on sqrt(sum_h W_h^2 sigma_h^2 / n_h) with Welch–Satterthwaite
// degrees of freedom; the systematic part sum_h W_h * bias_h is added
// to the half-width directly (interval arithmetic, not variance), so
// the interval stays honest when some strata are estimated by a model
// with known bias rather than sampled exactly.
func StratifiedCI(strata []Stratum, confidence float64) (CI, error) {
	ci := CI{Confidence: confidence}
	var variance, bias, dfNum, dfDen float64
	for _, s := range strata {
		ci.Mean += s.Weight * s.Mean
		bias += s.Weight * math.Abs(s.Bias)
		if s.N < 1 || s.Sigma == 0 {
			continue
		}
		v := s.Weight * s.Weight * s.Sigma * s.Sigma / float64(s.N)
		variance += v
		dfNum += v
		// Strata with a single observation contribute variance but no
		// degrees of freedom; charging them df=1 in the denominator
		// keeps the Welch–Satterthwaite estimate conservative instead
		// of dividing by zero.
		den := float64(s.N - 1)
		if den < 1 {
			den = 1
		}
		dfDen += v * v / den
	}
	ci.DF = 1
	if dfDen > 0 {
		if df := int(dfNum * dfNum / dfDen); df > 1 {
			ci.DF = df
		}
	}
	t, err := TCritical(confidence, ci.DF)
	if err != nil {
		return CI{}, err
	}
	ci.HalfWidth = t*math.Sqrt(variance) + bias
	ci.Lo, ci.Hi = ci.Mean-ci.HalfWidth, ci.Mean+ci.HalfWidth
	return ci, nil
}
