package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample stddev of this classic set is ~2.138.
	if sd := StdDev(xs); !almostEqual(sd, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ~2.138", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton cases should be 0")
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	if c := CoV(xs); c != 0 {
		t.Errorf("CoV of constants = %v, want 0", c)
	}
	xs = []float64{9, 10, 11}
	want := StdDev(xs) / 10
	if c := CoV(xs); !almostEqual(c, want, 1e-12) {
		t.Errorf("CoV = %v, want %v", c, want)
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("CoV with zero mean should be 0")
	}
}

func TestAbsError(t *testing.T) {
	if e := AbsError(1.1, 1.0); !almostEqual(e, 0.1, 1e-12) {
		t.Errorf("AbsError = %v, want 0.1", e)
	}
	if e := AbsError(0.9, 1.0); !almostEqual(e, 0.1, 1e-12) {
		t.Errorf("AbsError = %v, want 0.1 (symmetric)", e)
	}
	if AbsError(5, 0) != 0 {
		t.Error("zero reference should yield 0")
	}
}

func TestRelError(t *testing.T) {
	// Perfectly predicted trend even with absolute offset.
	if e := RelError(1.0, 2.0, 1.5, 3.0); e != 0 {
		t.Errorf("RelError of matching trend = %v, want 0", e)
	}
	// SS predicts flat, EDS doubles: ratio 1 vs 2 -> error 0.5.
	if e := RelError(1.0, 1.0, 1.0, 2.0); !almostEqual(e, 0.5, 1e-12) {
		t.Errorf("RelError = %v, want 0.5", e)
	}
	if RelError(0, 1, 1, 1) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if h := HarmonicMean([]float64{1, 2, 4}); !almostEqual(h, 12.0/7.0, 1e-12) {
		t.Errorf("HarmonicMean = %v, want %v", h, 12.0/7.0)
	}
	if h := HarmonicMean([]float64{0, -1}); h != 0 {
		t.Errorf("HarmonicMean of non-positives = %v, want 0", h)
	}
}
