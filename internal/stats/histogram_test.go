package stats

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramAddAndCount(t *testing.T) {
	h := NewHistogram(8)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if got := h.Count(1); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if got := h.Count(3); got != 1 {
		t.Errorf("Count(3) = %d, want 1", got)
	}
	if got := h.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
}

func TestHistogramClampsAtMax(t *testing.T) {
	h := NewHistogram(4)
	h.Add(100)
	h.Add(4)
	if got := h.Count(4); got != 2 {
		t.Errorf("Count(4) = %d, want 2 (clamped)", got)
	}
	if got := h.Count(100); got != 2 {
		t.Errorf("Count(100) should clamp to Count(4): got %d", got)
	}
}

func TestHistogramPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Add(0)")
		}
	}()
	NewHistogram(4).Add(0)
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if m := h.Mean(); m != 3 {
		t.Errorf("Mean = %v, want 3", m)
	}
	if m := NewHistogram(10).Mean(); m != 0 {
		t.Errorf("empty Mean = %v, want 0", m)
	}
}

func TestHistogramSampleOnlyReturnsObservedValues(t *testing.T) {
	h := NewHistogram(16)
	h.AddN(3, 10)
	h.AddN(7, 30)
	r := NewRNG(1)
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		seen[h.Sample(r.Float64())]++
	}
	if len(seen) != 2 {
		t.Fatalf("sampled values %v, want only {3, 7}", seen)
	}
	// 7 has 3x the mass of 3.
	ratio := float64(seen[7]) / float64(seen[3])
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("mass ratio %.2f, want ~3", ratio)
	}
}

func TestHistogramSampleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic sampling empty histogram")
		}
	}()
	NewHistogram(4).Sample(0.5)
}

func TestHistogramSampleBoundaryU(t *testing.T) {
	h := NewHistogram(4)
	h.Add(2)
	if v := h.Sample(0); v != 2 {
		t.Errorf("Sample(0) = %d, want 2", v)
	}
	if v := h.Sample(0.999999); v != 2 {
		t.Errorf("Sample(~1) = %d, want 2", v)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(8)
	a.AddN(2, 5)
	b := NewHistogram(8)
	b.AddN(2, 3)
	b.AddN(5, 1)
	a.Merge(b)
	if a.Count(2) != 8 || a.Count(5) != 1 || a.Total() != 9 {
		t.Errorf("merge wrong: count2=%d count5=%d total=%d", a.Count(2), a.Count(5), a.Total())
	}
	// Merging nil or empty is a no-op.
	a.Merge(nil)
	a.Merge(NewHistogram(8))
	if a.Total() != 9 {
		t.Errorf("no-op merges changed total to %d", a.Total())
	}
}

func TestHistogramMergeBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched bounds")
		}
	}()
	b := NewHistogram(4)
	b.Add(1)
	NewHistogram(8).Merge(b)
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(8)
	h.AddN(3, 4)
	c := h.Clone()
	c.Add(3)
	if h.Count(3) != 4 {
		t.Errorf("clone mutated original: %d", h.Count(3))
	}
	if c.Count(3) != 5 {
		t.Errorf("clone count = %d, want 5", c.Count(3))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q < 48 || q > 52 {
		t.Errorf("median = %d, want ~50", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %d, want 100", q)
	}
}

// Property: sampling can only yield values that were added (after
// clamping), for any sequence of additions and any u.
func TestHistogramSampleProperty(t *testing.T) {
	f := func(vals []uint8, u float64) bool {
		if len(vals) == 0 {
			return true
		}
		u = u - float64(int(u)) // fractional part
		if u < 0 {
			u = -u
		}
		h := NewHistogram(64)
		added := map[int]bool{}
		for _, v := range vals {
			x := int(v%64) + 1
			h.Add(x)
			added[x] = true
		}
		return added[h.Sample(u)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Total always equals the sum of all counts.
func TestHistogramTotalInvariant(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(MaxDependencyDistance)
		for _, v := range vals {
			h.Add(int(v)%2000 + 1)
		}
		var sum uint64
		for v := 1; v <= h.Max; v++ {
			sum += h.Count(v)
		}
		return sum == h.Total() && h.Total() == uint64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramFreezeEnablesConcurrentSampling(t *testing.T) {
	h := NewHistogram(64)
	for v := 1; v <= 16; v++ {
		h.AddN(v, uint64(v))
	}
	h.Freeze()
	// After Freeze, Sample from many goroutines must be read-only; the
	// race detector enforces the claim when this test runs under -race.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				u := float64((seed*500+j)%997) / 997
				if v := h.Sample(u); v < 1 || v > 16 {
					t.Errorf("sampled unobserved value %d", v)
				}
			}
		}(i)
	}
	wg.Wait()
	// Freeze on an empty histogram is a no-op, not a panic.
	NewHistogram(8).Freeze()
}
