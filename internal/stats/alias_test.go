package stats

import (
	"math"
	"testing"
)

// refLookup is the binary search the alias table replaced: first index
// i with cum[i] > target. The alias table must reproduce it exactly for
// every target, since the synthetic-trace RNG stream depends on the
// (u → index) mapping bit for bit.
func refLookup(cum []uint64, target uint64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func cumFromWeights(weights []uint64) []uint64 {
	cum := make([]uint64, len(weights))
	var t uint64
	for i, w := range weights {
		t += w
		cum[i] = t
	}
	return cum
}

func TestAliasMatchesBinarySearch(t *testing.T) {
	rng := NewRNG(42)
	cases := [][]uint64{
		{1},
		{5},
		{1, 1},
		{0, 3},       // leading zero weight
		{3, 0, 0, 7}, // interior zero run
		{0, 0, 1},    // answer past zero run
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{1000000, 1, 1, 1},      // heavy head
		{1, 1, 1, 1000000},      // heavy tail
		{7, 0, 11, 0, 0, 13, 2}, // mixed
	}
	// Plus randomized distributions of varying size and skew.
	for i := 0; i < 20; i++ {
		n := 1 + int(rng.Uint64()%200)
		w := make([]uint64, n)
		for j := range w {
			switch rng.Uint64() % 4 {
			case 0:
				w[j] = 0
			case 1:
				w[j] = rng.Uint64() % 3
			default:
				w[j] = rng.Uint64() % 10000
			}
		}
		var total uint64
		for _, x := range w {
			total += x
		}
		if total == 0 {
			w[0] = 1
		}
		cases = append(cases, w)
	}

	for ci, w := range cases {
		cum := cumFromWeights(w)
		a := NewAliasTable(cum)
		total := cum[len(cum)-1]
		// Exhaustive over targets when small, sampled when large.
		if total <= 100000 {
			for target := uint64(0); target < total; target++ {
				if got, want := a.Lookup(target), refLookup(cum, target); got != want {
					t.Fatalf("case %d target %d: alias %d, binary search %d", ci, target, got, want)
				}
			}
		} else {
			for k := 0; k < 100000; k++ {
				target := rng.Uint64() % total
				if got, want := a.Lookup(target), refLookup(cum, target); got != want {
					t.Fatalf("case %d target %d: alias %d, binary search %d", ci, target, got, want)
				}
			}
		}
		// And via the float path both ends take.
		for k := 0; k < 10000; k++ {
			u := rng.Float64()
			target := uint64(u * float64(total))
			if target >= total {
				target = total - 1
			}
			if got, want := a.Sample(u), refLookup(cum, target); got != want {
				t.Fatalf("case %d u %v: alias %d, binary search %d", ci, u, got, want)
			}
		}
	}
}

func TestHistogramSampleMatchesPreAliasSemantics(t *testing.T) {
	// The histogram's sparse sampling cache must keep mapping each u to
	// the same value the pre-alias binary search produced. Rebuild the
	// sparse (value, cumulative) pairs independently and compare.
	rng := NewRNG(7)
	h := NewHistogram(MaxDependencyDistance)
	for i := 0; i < 5000; i++ {
		h.Add(1 + int(rng.Uint64()%600)) // exercises clamping at Max
	}
	var vals []int32
	var cum []uint64
	var run uint64
	for v := 1; v <= h.Max; v++ {
		if c := h.Count(v); c != 0 {
			run += c
			vals = append(vals, int32(v))
			cum = append(cum, run)
		}
	}
	for k := 0; k < 200000; k++ {
		u := rng.Float64()
		target := uint64(u * float64(h.Total()))
		if target >= h.Total() {
			target = h.Total() - 1
		}
		want := int(vals[refLookup(cum, target)])
		if got := h.Sample(u); got != want {
			t.Fatalf("u %v: histogram sample %d, reference %d", u, got, want)
		}
	}
}

// TestAliasChiSquare checks that alias-table sampling reproduces the
// source distribution: a chi-square goodness-of-fit test of observed
// draw frequencies against the histogram's own probabilities.
func TestAliasChiSquare(t *testing.T) {
	rng := NewRNG(99)
	weights := []uint64{50, 200, 10, 740, 120, 33, 1, 446}
	cum := cumFromWeights(weights)
	a := NewAliasTable(cum)
	total := float64(cum[len(cum)-1])

	const draws = 400000
	obs := make([]uint64, len(weights))
	for i := 0; i < draws; i++ {
		obs[a.Sample(rng.Float64())]++
	}
	var chi2 float64
	for i, w := range weights {
		exp := float64(w) / total * draws
		if exp == 0 {
			if obs[i] != 0 {
				t.Fatalf("drew zero-weight index %d", i)
			}
			continue
		}
		d := float64(obs[i]) - exp
		chi2 += d * d / exp
	}
	// 7 degrees of freedom; p=0.001 critical value is 24.32. A correct
	// sampler fails this with probability 0.1%, and the RNG seed is
	// fixed so the test is deterministic.
	if chi2 > 24.32 {
		t.Fatalf("chi-square %v exceeds critical value 24.32 (7 dof, p=0.001); observed %v, weights %v", chi2, obs, weights)
	}
}

// TestAliasGuideBounds exercises degenerate shapes: single entry, huge
// totals forcing wide guide buckets, and totals landing exactly on
// bucket boundaries.
func TestAliasGuideBounds(t *testing.T) {
	for _, total := range []uint64{1, 2, 3, 255, 256, 257, 1 << 20} {
		a := NewAliasTable([]uint64{total})
		for _, target := range []uint64{0, total / 2, total - 1} {
			if got := a.Lookup(target); got != 0 {
				t.Fatalf("total %d target %d: got %d, want 0", total, target, got)
			}
		}
		if got := a.Sample(math.Nextafter(1, 0)); got != 0 {
			t.Fatalf("total %d u→1: got %d, want 0", total, got)
		}
	}
	// Two entries splitting a power-of-two total exactly in half.
	a := NewAliasTable([]uint64{512, 1024})
	for target := uint64(0); target < 1024; target++ {
		want := 0
		if target >= 512 {
			want = 1
		}
		if got := a.Lookup(target); got != want {
			t.Fatalf("target %d: got %d, want %d", target, got, want)
		}
	}
}
