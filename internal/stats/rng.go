// Package stats provides the statistical primitives shared across the
// statistical-simulation framework: deterministic random number
// generation, bounded histograms, cumulative-distribution samplers and
// the error metrics used throughout the paper's evaluation (coefficient
// of variation, absolute prediction error, relative prediction error).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** by Blackman and Vigna). Every stochastic step in the
// framework draws from an explicitly seeded RNG so that profiles,
// synthetic traces and experiments are reproducible bit-for-bit.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	// Four named words rather than an array: scalar field accesses keep
	// Uint64 inside the compiler's inlining budget (array indexing is
	// charged enough to push it over).
	s0, s1, s2, s3 uint64
}

// NewRNG returns a generator seeded from seed using splitmix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to expand the seed into 256 bits of state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		switch i {
		case 0:
			r.s0 = z
		case 1:
			r.s1 = z
		case 2:
			r.s2 = z
		case 3:
			r.s3 = z
		}
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits. The xoshiro step is written
// with the rotations expanded and the state in locals so the method
// fits the compiler's inlining budget — it sits on the innermost
// random-walk sampling path.
func (r *RNG) Uint64() uint64 {
	s1 := r.s1
	x := s1 * 5
	x = (x<<7 | x>>57) * 9
	s2 := r.s2 ^ r.s0
	s3 := r.s3 ^ s1
	r.s1 = s1 ^ s2
	r.s0 ^= s3
	r.s2 = s2 ^ s1<<17
	r.s3 = s3<<45 | s3>>19
	return x
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Split derives an independent generator from r; the derived stream is a
// deterministic function of r's current state and the supplied salt, so
// sub-components can be given private streams without consuming an
// unpredictable amount of the parent stream.
func (r *RNG) Split(salt uint64) *RNG {
	return NewRNG(r.Uint64() ^ salt*0x9e3779b97f4a7c15)
}
