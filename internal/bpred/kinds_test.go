package bpred

import (
	"testing"

	"repro/internal/isa"
)

func cfgOfKind(k Kind) Config {
	c := DefaultConfig()
	c.Kind = k
	return c
}

func TestStaticPredictors(t *testing.T) {
	taken := New(cfgOfKind(KindStaticTaken))
	notTaken := New(cfgOfKind(KindStaticNotTaken))
	for i := 0; i < 50; i++ {
		pc := uint64(0x4000 + i*8)
		if !taken.Lookup(pc, isa.IntBranch).Taken {
			t.Fatal("static-taken predicted not-taken")
		}
		if notTaken.Lookup(pc, isa.IntBranch).Taken {
			t.Fatal("static-not-taken predicted taken")
		}
		taken.Update(pc, isa.IntBranch, i%2 == 0, 0x8000)
		notTaken.Update(pc, isa.IntBranch, i%2 == 0, 0x8000)
	}
}

// correlatedStream: branch B's direction equals branch A's previous
// direction — invisible to bimodal and local history (A and B are
// different PCs), captured exactly by a global-history predictor.
func runCorrelated(p *Predictor, n int) (miss, total int) {
	pcA, pcB := uint64(0x4000), uint64(0x4100)
	prevA := false
	for i := 0; i < n; i++ {
		dirA := i%3 == 0 // some pattern for A
		// A
		p.Lookup(pcA, isa.IntBranch)
		p.Update(pcA, isa.IntBranch, dirA, 0x9000)
		// B follows A's previous outcome.
		dirB := prevA
		pr := p.Lookup(pcB, isa.IntBranch)
		if i > n/2 {
			total++
			if pr.Taken != dirB {
				miss++
			}
		}
		p.Update(pcB, isa.IntBranch, dirB, 0x9100)
		prevA = dirA
	}
	return miss, total
}

func TestGShareCapturesGlobalCorrelation(t *testing.T) {
	gshare := New(cfgOfKind(KindGShare))
	bimodal := New(cfgOfKind(KindBimodal))
	gm, gt := runCorrelated(gshare, 3000)
	bm, bt := runCorrelated(bimodal, 3000)
	gRate := float64(gm) / float64(gt)
	bRate := float64(bm) / float64(bt)
	if gRate > 0.05 {
		t.Errorf("gshare mispredict rate %.3f on correlated stream, want ~0", gRate)
	}
	if bRate < 0.2 {
		t.Errorf("bimodal rate %.3f suspiciously good on correlated stream", bRate)
	}
}

func TestBimodalBeatsStaticOnBiased(t *testing.T) {
	run := func(k Kind) float64 {
		p := New(cfgOfKind(k))
		miss, total := 0, 0
		for i := 0; i < 2000; i++ {
			pc := uint64(0x4000 + (i%8)*8)
			taken := i%8 < 2 // mostly not-taken branches
			pr := p.Lookup(pc, isa.IntBranch)
			if i > 1000 {
				total++
				if pr.Taken != taken {
					miss++
				}
			}
			p.Update(pc, isa.IntBranch, taken, 0x9000)
		}
		return float64(miss) / float64(total)
	}
	if bi, st := run(KindBimodal), run(KindStaticTaken); bi >= st {
		t.Errorf("bimodal (%.3f) should beat static-taken (%.3f) on biased branches", bi, st)
	}
}

func TestTwoLevelLocalAlone(t *testing.T) {
	p := New(cfgOfKind(KindTwoLevelLocal))
	pc := uint64(0x4000)
	pattern := []bool{true, false, false, true, false}
	miss, total := 0, 0
	for i := 0; i < 2000; i++ {
		taken := pattern[i%len(pattern)]
		pr := p.Lookup(pc, isa.IntBranch)
		if i > 1000 {
			total++
			if pr.Taken != taken {
				miss++
			}
		}
		p.Update(pc, isa.IntBranch, taken, 0x9000)
	}
	if rate := float64(miss) / float64(total); rate > 0.02 {
		t.Errorf("local predictor rate %.3f on periodic pattern, want ~0", rate)
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{KindHybrid, KindBimodal, KindTwoLevelLocal, KindGShare, KindStaticTaken, KindStaticNotTaken} {
		name := k.String()
		if name == "kind?" {
			t.Fatalf("kind %d has no name", k)
		}
		got, err := KindByName(name)
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("bogus kind accepted")
	}
	if Kind(99).String() != "kind?" {
		t.Error("unknown kind should stringify to kind?")
	}
}

func TestHybridDefaultKind(t *testing.T) {
	// The zero Kind must remain the paper's hybrid so existing configs
	// are unaffected.
	if DefaultConfig().Kind != KindHybrid {
		t.Fatal("default kind changed")
	}
}
