package bpred

// RAS is a return-address stack (Table 2: 64 entries). The abstract ISA
// of this framework folds calls and returns into the indirect-branch
// class, so the baseline simulators do not drive the RAS; it is
// provided for completeness and for configurations that model
// call/return-heavy front ends explicitly.
type RAS struct {
	buf []uint64
	top int // index of next push slot
	n   int // valid entries (saturates at len(buf))
}

// NewRAS returns a stack with the given capacity. A capacity of zero
// yields a stack whose Pop always misses.
func NewRAS(capacity int) *RAS {
	return &RAS{buf: make([]uint64, capacity)}
}

// Push records a return address. When full, the oldest entry is
// overwritten (circular), as in hardware return stacks.
func (r *RAS) Push(addr uint64) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.top] = addr
	r.top = (r.top + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Pop predicts the most recent return address; ok is false when the
// stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.n == 0 || len(r.buf) == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.n--
	return r.buf[r.top], true
}

// Depth returns the number of valid entries.
func (r *RAS) Depth() int { return r.n }
