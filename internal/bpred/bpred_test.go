package bpred

import (
	"testing"

	"repro/internal/isa"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PHTEntries = 3000 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-pow2 PHT accepted")
	}
	bad = DefaultConfig()
	bad.BTBAssoc = 3
	if bad.Validate() == nil {
		t.Error("BTB assoc not dividing entries accepted")
	}
}

func TestConfigScale(t *testing.T) {
	up := DefaultConfig().Scale(2)
	if up.BimodalEntries != 32<<10 || up.PHTEntries != 32<<10 {
		t.Errorf("Scale(2): %+v", up)
	}
	if up.BTBEntries != 512 {
		t.Error("Scale must not touch the BTB")
	}
	down := DefaultConfig().Scale(-2)
	if down.BimodalEntries != 2<<10 {
		t.Errorf("Scale(-2): %+v", down)
	}
	if err := down.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400100)
	tgt := uint64(0x400200)
	// Train heavily taken.
	for i := 0; i < 10; i++ {
		p.Update(pc, isa.IntBranch, true, tgt)
	}
	pr := p.Lookup(pc, isa.IntBranch)
	if !pr.Taken {
		t.Error("heavily-taken branch predicted not-taken")
	}
	if !pr.BTBHit || pr.Target != tgt {
		t.Errorf("BTB should supply target: %+v", pr)
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400300)
	tgt := uint64(0x400800)
	// Period-3 pattern T T N: bimodal can never get the N right, the
	// local predictor learns it exactly.
	pattern := []bool{true, true, false}
	correct := 0
	total := 0
	for i := 0; i < 300; i++ {
		taken := pattern[i%3]
		pr := p.Lookup(pc, isa.IntBranch)
		if i >= 150 { // after warmup
			total++
			if pr.Taken == taken {
				correct++
			}
		}
		p.Update(pc, isa.IntBranch, taken, tgt)
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Errorf("pattern accuracy %.3f after warmup, want ~1.0", acc)
	}
}

func TestLoopExitPredictedByLocalHistory(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400400)
	tgt := uint64(0x400000)
	// A loop branch with trip count 8: taken 7x, not-taken once.
	misses := 0
	total := 0
	for rep := 0; rep < 100; rep++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			pr := p.Lookup(pc, isa.IntBranch)
			if rep >= 50 {
				total++
				if pr.Taken != taken {
					misses++
				}
			}
			p.Update(pc, isa.IntBranch, taken, tgt)
		}
	}
	if rate := float64(misses) / float64(total); rate > 0.02 {
		t.Errorf("trained loop mispredict rate %.3f, want near 0 (local history covers period 8)", rate)
	}
}

func TestIndirectBranchClassification(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400500)
	// First sighting: BTB miss => misprediction.
	pr := p.Lookup(pc, isa.IndirBranch)
	o := Classify(pr, isa.IndirBranch, true, 0x400900)
	if !o.Mispredicted {
		t.Error("BTB-missing indirect branch must be a misprediction")
	}
	p.Update(pc, isa.IndirBranch, true, 0x400900)
	// Same target: correct now.
	pr = p.Lookup(pc, isa.IndirBranch)
	o = Classify(pr, isa.IndirBranch, true, 0x400900)
	if o.Mispredicted || o.FetchRedirect {
		t.Errorf("stable indirect target misclassified: %+v", o)
	}
	// Changed target: misprediction again.
	o = Classify(pr, isa.IndirBranch, true, 0x400a00)
	if !o.Mispredicted {
		t.Error("indirect target change must mispredict")
	}
}

func TestFetchRedirectClassification(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400600)
	tgt := uint64(0x401000)
	// Train direction taken without BTB being warm for this PC.
	for i := 0; i < 4; i++ {
		// Direction tables train via Update, which also fills the BTB —
		// so use a classification from a fresh prediction *before* the
		// first update to get direction-correct + BTB-miss.
		pr := p.Lookup(pc, isa.IntBranch)
		o := Classify(pr, isa.IntBranch, pr.Taken, tgt)
		if pr.Taken && !pr.BTBHit {
			if !o.FetchRedirect || o.Mispredicted {
				t.Errorf("taken + correct direction + BTB miss should be a fetch redirection: %+v", o)
			}
		}
		p.Update(pc, isa.IntBranch, true, tgt)
	}
	// Now direction taken and BTB warm: fully correct.
	pr := p.Lookup(pc, isa.IntBranch)
	o := Classify(pr, isa.IntBranch, true, tgt)
	if o.Mispredicted || o.FetchRedirect {
		t.Errorf("warm branch misclassified: %+v", o)
	}
	// Not-taken correct predictions never redirect, even on BTB miss.
	o = Classify(Prediction{Taken: false}, isa.IntBranch, false, 0)
	if o.Mispredicted || o.FetchRedirect {
		t.Errorf("correct not-taken should be clean: %+v", o)
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 8
	cfg.BTBAssoc = 2
	p := New(cfg)
	// Fill one set (PCs spaced to map to the same set: set index uses
	// pc>>3 & (sets-1), sets=4 → stride 4*8=32).
	p.Update(0x1000, isa.IntBranch, true, 0xa)
	p.Update(0x1020, isa.IntBranch, true, 0xb)
	p.Update(0x1040, isa.IntBranch, true, 0xc) // evicts 0x1000
	if hit, _ := p.btbLookup(0x1000); hit {
		t.Error("LRU BTB entry should have been evicted")
	}
	if hit, tgt := p.btbLookup(0x1040); !hit || tgt != 0xc {
		t.Error("newly inserted BTB entry missing")
	}
}

func TestImmediateVsDelayedMispredictRates(t *testing.T) {
	// The defining property of §2.1.3: with updates delayed by a FIFO,
	// prediction accuracy drops relative to immediate update, because
	// lookups see stale state. Drive both with an identical stream of
	// short-period patterned branches (highly sensitive to staleness).
	type result struct{ branches, miss int }
	run := func(mk func(p *Predictor, emit func(uint64, Outcome)) BranchProfiler) result {
		p := New(DefaultConfig())
		var res result
		prof := mk(p, func(_ uint64, o Outcome) {
			res.branches++
			if o.Mispredicted {
				res.miss++
			}
		})
		// A tight loop: branch executed 4x back-to-back (T T T N) with
		// two fillers between iterations. With a 32-entry FIFO all four
		// iterations are in flight together, so delayed lookups all see
		// the same pre-loop history and cannot locate the exit; with
		// immediate update the local history tracks the iteration
		// position exactly.
		for rep := 0; rep < 10000; rep++ {
			for i := 0; i < 4; i++ {
				prof.Feed(0x4000, isa.IntBranch, i < 3, 0x9000, 0)
				prof.Feed(0x100, isa.IntALU, false, 0, 0)
				prof.Feed(0x108, isa.IntALU, false, 0, 0)
			}
		}
		prof.Flush()
		return res
	}
	imm := run(func(p *Predictor, emit func(uint64, Outcome)) BranchProfiler {
		return &ImmediateProfiler{Pred: p, Emit: emit}
	})
	del := run(func(p *Predictor, emit func(uint64, Outcome)) BranchProfiler {
		return NewDelayedProfiler(p, 32, emit)
	})
	if imm.branches != del.branches {
		t.Fatalf("branch counts differ: %d vs %d", imm.branches, del.branches)
	}
	immRate := float64(imm.miss) / float64(imm.branches)
	delRate := float64(del.miss) / float64(del.branches)
	if delRate <= immRate {
		t.Errorf("delayed update rate %.4f should exceed immediate %.4f on staleness-sensitive stream", delRate, immRate)
	}
}

func TestDelayedProfilerEmitsEveryBranchOnce(t *testing.T) {
	p := New(DefaultConfig())
	got := map[uint64]int{}
	dp := NewDelayedProfiler(p, 8, func(tag uint64, _ Outcome) { got[tag]++ })
	for i := uint64(0); i < 100; i++ {
		cls := isa.IntALU
		if i%3 == 0 {
			cls = isa.IntBranch
		}
		dp.Feed(0x4000+i*8, cls, i%2 == 0, 0x8000, i)
	}
	dp.Flush()
	for i := uint64(0); i < 100; i++ {
		want := 0
		if i%3 == 0 {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("tag %d emitted %d times, want %d", i, got[i], want)
		}
	}
}

func TestDelayedProfilerFlushEmpty(t *testing.T) {
	dp := NewDelayedProfiler(New(DefaultConfig()), 4, nil)
	dp.Flush() // must not panic on empty FIFO
}

func TestRAS(t *testing.T) {
	r := NewRAS(3)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	r.Push(4) // wraps, overwriting 1
	if r.Depth() != 3 {
		t.Errorf("depth = %d, want 3", r.Depth())
	}
	for _, want := range []uint64{4, 3, 2} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d/%v, want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS should be empty after draining")
	}
	zero := NewRAS(0)
	zero.Push(9)
	if _, ok := zero.Pop(); ok {
		t.Error("zero-capacity RAS must always miss")
	}
}

func TestPredictorScalingImprovesAliasedAccuracy(t *testing.T) {
	// Many branches with conflicting biases alias in a tiny predictor
	// but not in a large one.
	run := func(cfg Config) float64 {
		p := New(cfg)
		miss, total := 0, 0
		for i := 0; i < 60000; i++ {
			b := i % 600
			pc := uint64(0x4000 + b*8)
			taken := b%3 == 0 // conflicting biases among aliasing partners
			pr := p.Lookup(pc, isa.IntBranch)
			if i > 30000 {
				total++
				if pr.Taken != taken {
					miss++
				}
			}
			p.Update(pc, isa.IntBranch, taken, 0x8000)
		}
		return float64(miss) / float64(total)
	}
	tiny := DefaultConfig().Scale(-9) // 16-entry tables
	big := DefaultConfig()
	if rTiny, rBig := run(tiny), run(big); rBig >= rTiny {
		t.Errorf("scaling up should reduce mispredicts: tiny=%.4f big=%.4f", rTiny, rBig)
	}
}
