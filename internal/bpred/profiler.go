package bpred

import "repro/internal/isa"

// BranchProfiler consumes a committed instruction stream — every
// instruction, not just branches, because pipeline occupancy is what
// delays updates — and emits one final Outcome per branch.
type BranchProfiler interface {
	// Feed processes the next instruction of the stream. tag is an
	// opaque caller value (e.g. an SFG edge index) passed through to the
	// outcome callback.
	Feed(pc uint64, class isa.Class, taken bool, target uint64, tag uint64)
	// Flush drains any buffered instructions at end of stream.
	Flush()
}

// ImmediateProfiler is the classic single-pass discipline: the
// predictor is looked up and updated instruction-per-instruction, so
// each branch sees state that already includes its immediate
// predecessor (§2.1.3 "immediate update"). It overestimates predictor
// accuracy relative to a pipelined machine.
type ImmediateProfiler struct {
	Pred *Predictor
	Emit func(tag uint64, o Outcome)
}

// Feed implements BranchProfiler.
func (ip *ImmediateProfiler) Feed(pc uint64, class isa.Class, taken bool, target uint64, tag uint64) {
	if !class.IsBranch() {
		return
	}
	pr := ip.Pred.Lookup(pc, class)
	o := Classify(pr, class, taken, target)
	ip.Pred.Update(pc, class, taken, target)
	if ip.Emit != nil {
		ip.Emit(tag, o)
	}
}

// Flush implements BranchProfiler (no-op: nothing is buffered).
func (ip *ImmediateProfiler) Flush() {}

type fifoEntry struct {
	pc     uint64
	target uint64
	tag    uint64
	pos    uint64
	pred   Prediction
	class  isa.Class
	taken  bool
}

// DelayedProfiler implements the paper's delayed-update branch
// profiling (§2.1.3): a FIFO buffer sized like the instruction fetch
// queue. A branch is looked up when it enters the FIFO (fetch) and the
// predictor is updated when it leaves (speculative update at dispatch).
// Lookups therefore see "stale" state lacking the branches still in
// flight. When a popped branch turns out mispredicted, the instructions
// residing in the FIFO are squashed and re-fetched: their lookups are
// redone against the now-updated state, exactly as the refetched
// correct-path instructions would be in the pipeline.
//
// Only branches occupy the ring: a non-branch instruction contributes
// nothing on pop, so instead of buffering every instruction the
// profiler stamps each branch with its stream position and retires it
// once `size` further instructions have been fed — the exact feed step
// at which a full all-instruction FIFO would have popped it. The
// per-instruction cost for the ~80% non-branch stream is then a counter
// increment instead of a ring write plus a pop.
type DelayedProfiler struct {
	Pred *Predictor
	Emit func(tag uint64, o Outcome)

	size int
	pos  uint64 // instructions fed so far
	buf  []fifoEntry
	head int
	n    int
}

// NewDelayedProfiler returns a profiler with a FIFO of the given size
// (use the IFQ size for speculative update at dispatch; larger values
// model later update points such as writeback or commit).
func NewDelayedProfiler(pred *Predictor, size int, emit func(tag uint64, o Outcome)) *DelayedProfiler {
	if size < 1 {
		panic("bpred: delayed profiler FIFO size must be >= 1")
	}
	return &DelayedProfiler{
		Pred: pred,
		Emit: emit,
		size: size,
		buf:  make([]fifoEntry, size),
	}
}

// Feed implements BranchProfiler. A branch fed at stream position p is
// popped at the start of the feed of position p+size — the step at
// which a size-deep all-instruction FIFO becomes full and evicts it.
func (dp *DelayedProfiler) Feed(pc uint64, class isa.Class, taken bool, target uint64, tag uint64) {
	if dp.n > 0 && dp.pos >= uint64(dp.size) {
		deadline := dp.pos - uint64(dp.size)
		for dp.n > 0 && dp.buf[dp.head].pos <= deadline {
			dp.pop()
		}
	}
	if class.IsBranch() {
		i := dp.head + dp.n
		if i >= dp.size {
			i -= dp.size
		}
		dp.buf[i] = fifoEntry{
			pc: pc, target: target, tag: tag, pos: dp.pos,
			pred: dp.Pred.Lookup(pc, class), class: class, taken: taken,
		}
		dp.n++
	}
	dp.pos++
}

// pop retires the oldest in-flight branch, performing the
// update/classification and the squash-and-replay on mispredictions.
func (dp *DelayedProfiler) pop() {
	e := dp.buf[dp.head]
	dp.head++
	if dp.head == dp.size {
		dp.head = 0
	}
	dp.n--
	o := Classify(e.pred, e.class, e.taken, e.target)
	dp.Pred.Update(e.pc, e.class, e.taken, e.target)
	if dp.Emit != nil {
		dp.Emit(e.tag, o)
	}
	if o.Mispredicted {
		// Squash: the branches still in flight correspond to wrong-path
		// fetches; the correct-path instructions are refetched, i.e.
		// their lookups are redone against post-update state.
		for i := 0; i < dp.n; i++ {
			idx := dp.head + i
			if idx >= dp.size {
				idx -= dp.size
			}
			dp.buf[idx].pred = dp.Pred.Lookup(dp.buf[idx].pc, dp.buf[idx].class)
		}
	}
}

// Flush implements BranchProfiler.
func (dp *DelayedProfiler) Flush() {
	for dp.n > 0 {
		dp.pop()
	}
}
