// Package bpred implements the branch-prediction substrate: a hybrid
// predictor per the paper's Table 2 (an 8K-entry meta chooser selecting
// between an 8K-entry bimodal predictor and an 8K x 8K two-level local
// predictor that XORs local history with the branch PC), a 512-entry
// 4-way BTB, and a return-address stack.
//
// It also provides the two branch-profiling disciplines compared in
// §2.1.3: immediate update (classic single-pass profiling) and delayed
// update (a FIFO the size of the instruction fetch queue, with lookup
// at FIFO entry, update at FIFO exit, and squash-and-replay on
// mispredictions — modelling speculative update at dispatch time).
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Kind selects the direction-prediction organisation.
type Kind uint8

const (
	// KindHybrid is the paper's Table 2 predictor: a meta chooser
	// selecting between bimodal and two-level local components.
	KindHybrid Kind = iota
	// KindBimodal uses only the PC-indexed 2-bit counter table.
	KindBimodal
	// KindTwoLevelLocal uses only the local-history two-level component
	// (per-branch history XORed with the PC into the pattern table).
	KindTwoLevelLocal
	// KindGShare is a global-history predictor: the global branch
	// history register XORed with the PC indexes the pattern table.
	KindGShare
	// KindStaticTaken predicts every conditional branch taken.
	KindStaticTaken
	// KindStaticNotTaken predicts every conditional branch not-taken.
	KindStaticNotTaken
)

var kindNames = map[Kind]string{
	KindHybrid: "hybrid", KindBimodal: "bimodal", KindTwoLevelLocal: "2level",
	KindGShare: "gshare", KindStaticTaken: "taken", KindStaticNotTaken: "nottaken",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "kind?"
}

// KindByName resolves a predictor kind from its short name.
func KindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("bpred: unknown predictor kind %q", name)
}

// Config sizes the predictor. All table entry counts must be powers of
// two. The zero value is unusable; start from DefaultConfig.
type Config struct {
	Kind           Kind
	BimodalEntries int // 2-bit counters indexed by PC
	LocalHistories int // entries in the per-branch history table
	PHTEntries     int // 2-bit counters in the second-level pattern table
	MetaEntries    int // 2-bit chooser counters
	BTBEntries     int
	BTBAssoc       int
	RASEntries     int
}

// DefaultConfig returns the paper's Table 2 predictor: 8K-entry hybrid
// (8K bimodal + 8K x 8K two-level local with PC XOR), 512-entry 4-way
// BTB, 64-entry RAS.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 8 << 10,
		LocalHistories: 8 << 10,
		PHTEntries:     8 << 10,
		MetaEntries:    8 << 10,
		BTBEntries:     512,
		BTBAssoc:       4,
		RASEntries:     64,
	}
}

// Scale returns a copy with the direction-prediction tables scaled by
// 2^log2Factor (the BTB and RAS are left unchanged), as in the Table 4
// branch-predictor-size sweep.
func (c Config) Scale(log2Factor int) Config {
	s := func(n int) int {
		if log2Factor >= 0 {
			n <<= uint(log2Factor)
		} else {
			n >>= uint(-log2Factor)
		}
		if n < 4 {
			n = 4
		}
		return n
	}
	c.BimodalEntries = s(c.BimodalEntries)
	c.LocalHistories = s(c.LocalHistories)
	c.PHTEntries = s(c.PHTEntries)
	c.MetaEntries = s(c.MetaEntries)
	return c
}

// Validate checks the geometry.
func (c Config) Validate() error {
	pow2 := func(n int, what string) error {
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("bpred: %s = %d must be a positive power of two", what, n)
		}
		return nil
	}
	for _, f := range []struct {
		n    int
		what string
	}{
		{c.BimodalEntries, "BimodalEntries"},
		{c.LocalHistories, "LocalHistories"},
		{c.PHTEntries, "PHTEntries"},
		{c.MetaEntries, "MetaEntries"},
		{c.BTBEntries, "BTBEntries"},
	} {
		if err := pow2(f.n, f.what); err != nil {
			return err
		}
	}
	if c.BTBAssoc <= 0 || c.BTBEntries%c.BTBAssoc != 0 {
		return fmt.Errorf("bpred: BTB assoc %d incompatible with %d entries", c.BTBAssoc, c.BTBEntries)
	}
	if c.RASEntries < 0 {
		return fmt.Errorf("bpred: negative RAS size")
	}
	return nil
}

// Prediction is the outcome of a Lookup.
type Prediction struct {
	Taken        bool   // predicted direction (always true for indirect branches)
	BTBHit       bool   // the BTB supplied a target
	Target       uint64 // predicted target (valid when BTBHit)
	usedTwoLevel bool
}

// Predictor is the hybrid direction predictor plus BTB. It is not
// concurrency-safe; each simulator owns one instance.
type Predictor struct {
	cfg Config

	bimodal    []uint8 // 2-bit counters
	history    []uint16
	histBits   uint
	pht        []uint8
	meta       []uint8
	globalHist uint64 // gshare global history register

	btbTags  []uint64
	btbTgts  []uint64
	btbValid []bool
	btbLRU   []uint64
	btbSets  int
	btbTick  uint64

	Lookups uint64
	Updates uint64
}

// New builds a predictor; cfg must validate. Counters initialise to
// weakly-not-taken (1), the SimpleScalar convention.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	histBits := uint(0)
	for 1<<histBits < cfg.PHTEntries {
		histBits++
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]uint8, cfg.BimodalEntries),
		history:  make([]uint16, cfg.LocalHistories),
		histBits: histBits,
		pht:      make([]uint8, cfg.PHTEntries),
		meta:     make([]uint8, cfg.MetaEntries),
		btbTags:  make([]uint64, cfg.BTBEntries),
		btbTgts:  make([]uint64, cfg.BTBEntries),
		btbValid: make([]bool, cfg.BTBEntries),
		btbLRU:   make([]uint64, cfg.BTBEntries),
		btbSets:  cfg.BTBEntries / cfg.BTBAssoc,
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.pht {
		p.pht[i] = 1
	}
	for i := range p.meta {
		p.meta[i] = 2 // weakly prefer the two-level component
	}
	return p
}

// Config returns the predictor geometry.
func (p *Predictor) Config() Config { return p.cfg }

func pcIndex(pc uint64, n int) int {
	// Drop instruction alignment bits, as sim-bpred does.
	return int((pc >> 3) & uint64(n-1))
}

func (p *Predictor) twoLevelIndex(pc uint64) int {
	h := p.history[pcIndex(pc, p.cfg.LocalHistories)]
	// XOR the local history with the branch's PC (Table 2).
	return int((uint64(h) ^ (pc >> 3)) & uint64(p.cfg.PHTEntries-1))
}

func (p *Predictor) gshareIndex(pc uint64) int {
	return int((p.globalHist ^ (pc >> 3)) & uint64(p.cfg.PHTEntries-1))
}

// predictDirection returns the direction prediction of the configured
// organisation for a conditional branch at pc.
func (p *Predictor) predictDirection(pc uint64) (taken, usedTwoLevel bool) {
	switch p.cfg.Kind {
	case KindStaticTaken:
		return true, false
	case KindStaticNotTaken:
		return false, false
	case KindBimodal:
		return p.bimodal[pcIndex(pc, p.cfg.BimodalEntries)] >= 2, false
	case KindTwoLevelLocal:
		return p.pht[p.twoLevelIndex(pc)] >= 2, true
	case KindGShare:
		return p.pht[p.gshareIndex(pc)] >= 2, true
	default: // KindHybrid
		bim := p.bimodal[pcIndex(pc, p.cfg.BimodalEntries)] >= 2
		two := p.pht[p.twoLevelIndex(pc)] >= 2
		if p.meta[pcIndex(pc, p.cfg.MetaEntries)] >= 2 {
			return two, true
		}
		return bim, false
	}
}

// Lookup predicts the branch at pc. It does not modify predictor state
// other than statistics; direction state changes only on Update.
func (p *Predictor) Lookup(pc uint64, class isa.Class) Prediction {
	p.Lookups++
	var pr Prediction
	if class == isa.IndirBranch {
		pr.Taken = true
	} else {
		pr.Taken, pr.usedTwoLevel = p.predictDirection(pc)
	}
	pr.BTBHit, pr.Target = p.btbLookup(pc)
	return pr
}

// Update trains the predictor with the resolved outcome of the branch
// at pc. For the hybrid organisation both direction components train
// and the chooser trains toward whichever was correct (when they
// disagree). Taken branches allocate/refresh their BTB entry.
func (p *Predictor) Update(pc uint64, class isa.Class, taken bool, target uint64) {
	p.Updates++
	if class != isa.IndirBranch {
		switch p.cfg.Kind {
		case KindStaticTaken, KindStaticNotTaken:
			// Stateless.
		case KindBimodal:
			bi := pcIndex(pc, p.cfg.BimodalEntries)
			p.bimodal[bi] = bump(p.bimodal[bi], taken)
		case KindTwoLevelLocal:
			ti := p.twoLevelIndex(pc)
			p.pht[ti] = bump(p.pht[ti], taken)
			p.shiftLocalHistory(pc, taken)
		case KindGShare:
			gi := p.gshareIndex(pc)
			p.pht[gi] = bump(p.pht[gi], taken)
			p.globalHist <<= 1
			if taken {
				p.globalHist |= 1
			}
			p.globalHist &= uint64(p.cfg.PHTEntries - 1)
		default: // KindHybrid
			bi := pcIndex(pc, p.cfg.BimodalEntries)
			ti := p.twoLevelIndex(pc)
			bimCorrect := (p.bimodal[bi] >= 2) == taken
			twoCorrect := (p.pht[ti] >= 2) == taken
			p.bimodal[bi] = bump(p.bimodal[bi], taken)
			p.pht[ti] = bump(p.pht[ti], taken)
			if bimCorrect != twoCorrect {
				mi := pcIndex(pc, p.cfg.MetaEntries)
				p.meta[mi] = bump(p.meta[mi], twoCorrect)
			}
			p.shiftLocalHistory(pc, taken)
		}
	}
	if taken {
		p.btbInsert(pc, target)
	}
}

// shiftLocalHistory records the outcome in the branch's local history.
func (p *Predictor) shiftLocalHistory(pc uint64, taken bool) {
	hi := pcIndex(pc, p.cfg.LocalHistories)
	h := p.history[hi] << 1
	if taken {
		h |= 1
	}
	p.history[hi] = h & uint16((1<<p.histBits)-1)
}

// bump saturates a 2-bit counter toward taken/not-taken.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func (p *Predictor) btbLookup(pc uint64) (bool, uint64) {
	set := pcIndex(pc, p.btbSets)
	base := set * p.cfg.BTBAssoc
	for i := base; i < base+p.cfg.BTBAssoc; i++ {
		if p.btbValid[i] && p.btbTags[i] == pc {
			p.btbTick++
			p.btbLRU[i] = p.btbTick
			return true, p.btbTgts[i]
		}
	}
	return false, 0
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := pcIndex(pc, p.btbSets)
	base := set * p.cfg.BTBAssoc
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+p.cfg.BTBAssoc; i++ {
		if p.btbValid[i] && p.btbTags[i] == pc {
			p.btbTgts[i] = target
			p.btbTick++
			p.btbLRU[i] = p.btbTick
			return
		}
		if !p.btbValid[i] {
			victim = i
			oldest = 0
		} else if p.btbLRU[i] < oldest {
			victim = i
			oldest = p.btbLRU[i]
		}
	}
	p.btbTick++
	p.btbTags[victim] = pc
	p.btbTgts[victim] = target
	p.btbValid[victim] = true
	p.btbLRU[victim] = p.btbTick
}

// Outcome classifies a resolved branch against its prediction using the
// paper's three-way taxonomy (§2.1.2): correctly predicted, fetch
// redirection (correct direction but no/or wrong BTB target for a taken
// branch), or misprediction (wrong direction for conditionals; BTB
// miss or wrong target for indirect branches).
type Outcome struct {
	Taken         bool
	Mispredicted  bool
	FetchRedirect bool
}

// Classify derives the Outcome for a branch with resolved direction
// taken and resolved target, given its prediction.
func Classify(pr Prediction, class isa.Class, taken bool, target uint64) Outcome {
	o := Outcome{Taken: taken}
	if class == isa.IndirBranch {
		// Always taken; direction cannot mispredict, only the target.
		o.Mispredicted = !pr.BTBHit || pr.Target != target
		return o
	}
	if pr.Taken != taken {
		o.Mispredicted = true
		return o
	}
	if taken && (!pr.BTBHit || pr.Target != target) {
		o.FetchRedirect = true
	}
	return o
}
