package program

import (
	"testing"

	"repro/internal/isa"
)

// tinyProgram builds a minimal two-block hand-written program:
// block 0 (alu, load, loop-branch) -> itself x3, then block 1
// block 1 (alu) -> falls back to block 0.
func tinyProgram(t *testing.T) *Program {
	t.Helper()
	p := &Program{
		Name: "tiny",
		Blocks: []*Block{
			{
				ID: 0,
				Instrs: []Inst{
					{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16, Srcs: []isa.Reg{1}}},
					{StaticInst: isa.StaticInst{Class: isa.Load, Dst: 17, Srcs: []isa.Reg{16}},
						Mem: &MemSpec{Kind: MemStride, Base: DataBase, Size: 1024, Stride: 8}},
					{StaticInst: isa.StaticInst{Class: isa.IntBranch, Srcs: []isa.Reg{17}}},
				},
				Branch:      &BranchSpec{Kind: BranchLoop, Count: 3},
				TakenTarget: 0,
				FallTarget:  1,
			},
			{
				ID: 1,
				Instrs: []Inst{
					{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 1, Srcs: []isa.Reg{17, 16}}},
				},
				FallTarget: 0,
			},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("tiny program invalid: %v", err)
	}
	return p
}

func TestValidateCatchesBrokenPrograms(t *testing.T) {
	base := tinyProgram(t)

	t.Run("empty block", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[1].Instrs = nil
		if p.Validate() == nil {
			t.Error("empty block accepted")
		}
	})
	t.Run("branch mid-block", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].Instrs[0].Class = isa.IntBranch
		p.Blocks[0].Instrs[0].Dst = 0
		if p.Validate() == nil {
			t.Error("mid-block branch accepted")
		}
	})
	t.Run("mem without spec", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].Instrs[1].Mem = nil
		if p.Validate() == nil {
			t.Error("load without MemSpec accepted")
		}
	})
	t.Run("target out of range", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].TakenTarget = 99
		if p.Validate() == nil {
			t.Error("out-of-range target accepted")
		}
	})
	t.Run("unreachable block", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks = append(p.Blocks, &Block{
			ID:         2,
			Instrs:     []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16}}},
			FallTarget: 0,
		})
		if p.Validate() == nil {
			t.Error("unreachable block accepted")
		}
	})
	t.Run("bad loop count", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].Branch.Count = 0
		if p.Validate() == nil {
			t.Error("loop count 0 accepted")
		}
	})
	t.Run("bad bias", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].Branch = &BranchSpec{Kind: BranchBiased, P: 1.5}
		if p.Validate() == nil {
			t.Error("bias > 1 accepted")
		}
	})
	t.Run("indirect without targets", func(t *testing.T) {
		p := tinyProgram(t)
		p.Blocks[0].Instrs[2].Class = isa.IndirBranch
		p.Blocks[0].Branch = &BranchSpec{Kind: BranchIndirect}
		if p.Validate() == nil {
			t.Error("indirect branch without targets accepted")
		}
	})

	// The unmodified program still validates (tinyProgram already
	// validated once; re-validate to catch accidental mutation above).
	if err := base.Validate(); err != nil {
		t.Errorf("base program became invalid: %v", err)
	}
}

func TestPCLayout(t *testing.T) {
	p := tinyProgram(t)
	if got := p.PC(0, 0); got != CodeBase {
		t.Errorf("PC(0,0) = %#x, want %#x", got, CodeBase)
	}
	if got := p.PC(0, 2); got != CodeBase+2*InstBytes {
		t.Errorf("PC(0,2) = %#x", got)
	}
	if got := p.PC(1, 0); got != CodeBase+3*InstBytes {
		t.Errorf("PC(1,0) = %#x, want block 1 to start after block 0", got)
	}
	if p.CodeBytes() != 4*InstBytes {
		t.Errorf("CodeBytes = %d, want %d", p.CodeBytes(), 4*InstBytes)
	}
}

func TestExecutorLoopSemantics(t *testing.T) {
	p := tinyProgram(t)
	e := NewExecutor(p, 1)
	// One loop activation: block 0 runs 3 times (taken, taken, not
	// taken), then block 1 once. Sequence of block IDs:
	want := []int32{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0}
	got := e.Run(len(want))
	for i, d := range got {
		if d.BlockID != want[i]/1*want[i] { // identity; keep explicit below
			break
		}
	}
	// Check block sequence and branch directions explicitly.
	blocks := []int32{}
	for _, d := range got {
		if d.Index == 0 {
			blocks = append(blocks, d.BlockID)
		}
	}
	wantBlocks := []int32{0, 0, 0, 1}
	for i, b := range wantBlocks {
		if blocks[i] != b {
			t.Fatalf("block sequence %v, want prefix %v", blocks, wantBlocks)
		}
	}
	// Branch directions: taken, taken, not-taken.
	var dirs []bool
	for _, d := range got {
		if d.Class.IsBranch() {
			dirs = append(dirs, d.Taken)
		}
	}
	if len(dirs) < 3 || dirs[0] != true || dirs[1] != true || dirs[2] != false {
		t.Errorf("loop branch directions = %v, want [t t f ...]", dirs)
	}
}

func TestExecutorDependencyDistances(t *testing.T) {
	p := tinyProgram(t)
	e := NewExecutor(p, 1)
	got := e.Run(4)
	// inst1 (load) reads r16 written by inst0: distance 1.
	if got[1].DepDist[0] != 1 {
		t.Errorf("load dep distance = %d, want 1", got[1].DepDist[0])
	}
	// inst2 (branch) reads r17 written by inst1: distance 1.
	if got[2].DepDist[0] != 1 {
		t.Errorf("branch dep distance = %d, want 1", got[2].DepDist[0])
	}
	// First inst reads r1, never written yet: no dependency.
	if got[0].DepDist[0] != 0 {
		t.Errorf("first inst dep = %d, want 0", got[0].DepDist[0])
	}
	// Second iteration of block 0: inst0 reads r1 (still unwritten),
	// inst at seq 3 is block0/inst0 again; its src r1 unwritten => 0.
	if got[3].BlockID != 0 || got[3].Index != 0 {
		t.Fatalf("seq 3 is block %d idx %d, want 0/0", got[3].BlockID, got[3].Index)
	}
}

func TestExecutorStrideAddresses(t *testing.T) {
	p := tinyProgram(t)
	e := NewExecutor(p, 1)
	var addrs []uint64
	var d = e.Run(30)
	for _, di := range d {
		if di.Class == isa.Load {
			addrs = append(addrs, di.EffAddr)
		}
	}
	if len(addrs) < 3 {
		t.Fatalf("too few loads: %d", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+8 && addrs[i] != DataBase {
			t.Fatalf("stride walk broken: %#x -> %#x", addrs[i-1], addrs[i])
		}
	}
}

func TestExecutorDeterminism(t *testing.T) {
	prog := MustGenerate(Personality{Name: "det", Seed: 77, TargetBlocks: 60})
	a := NewExecutor(prog, 5).Run(5000)
	b := NewExecutor(prog, 5).Run(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("executor diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewExecutor(prog, 6).Run(5000)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different executor seeds produced identical streams")
	}
}

func TestExecutorSkipMatchesRun(t *testing.T) {
	prog := MustGenerate(Personality{Name: "skip", Seed: 3, TargetBlocks: 40})
	a := NewExecutor(prog, 9)
	a.Skip(1000)
	gotA := a.Run(100)
	b := NewExecutor(prog, 9)
	b.Run(1000)
	gotB := b.Run(100)
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("Skip and Run diverge at %d", i)
		}
	}
	if a.Seq() != 1100 {
		t.Errorf("Seq = %d, want 1100", a.Seq())
	}
}

func TestExecutorNextPCConsistency(t *testing.T) {
	prog := MustGenerate(Personality{Name: "nextpc", Seed: 12, TargetBlocks: 80})
	e := NewExecutor(prog, 4)
	var prev uint64
	var have bool
	var d = e.Run(20000)
	for i, di := range d {
		if have && di.PC != prev {
			t.Fatalf("inst %d PC %#x != predecessor NextPC %#x", i, di.PC, prev)
		}
		prev = di.NextPC
		have = true
	}
}
