package program

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestGenerateAllBenchmarksValid(t *testing.T) {
	for _, p := range Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := Generate(p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if prog.Name != p.Name {
				t.Errorf("name = %q", prog.Name)
			}
			if len(prog.Blocks) < p.TargetBlocks/2 {
				t.Errorf("generated %d blocks, target %d", len(prog.Blocks), p.TargetBlocks)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Benchmarks()[0]
	a := MustGenerate(p)
	b := MustGenerate(p)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		ab, bb := a.Blocks[i], b.Blocks[i]
		if len(ab.Instrs) != len(bb.Instrs) || ab.TakenTarget != bb.TakenTarget ||
			ab.FallTarget != bb.FallTarget {
			t.Fatalf("block %d differs", i)
		}
		for j := range ab.Instrs {
			if ab.Instrs[j].Class != bb.Instrs[j].Class || ab.Instrs[j].Dst != bb.Instrs[j].Dst {
				t.Fatalf("block %d inst %d differs", i, j)
			}
		}
	}
}

func TestGeneratedCodeSizeOrdering(t *testing.T) {
	// Table 3's SFG node-count ordering implies gcc must have by far
	// the largest static footprint and vpr the smallest.
	sizes := map[string]int{}
	for _, p := range Benchmarks() {
		sizes[p.Name] = MustGenerate(p).NumStaticInstrs()
	}
	if sizes["gcc"] <= 2*sizes["vortex"] {
		t.Errorf("gcc (%d) should dwarf vortex (%d)", sizes["gcc"], sizes["vortex"])
	}
	if sizes["vpr"] >= sizes["bzip2"] {
		t.Errorf("vpr (%d) should be smaller than bzip2 (%d)", sizes["vpr"], sizes["bzip2"])
	}
}

func TestGeneratedProgramsExecute(t *testing.T) {
	// Every benchmark program must run indefinitely, visit a healthy
	// fraction of its blocks, and contain branches and memory ops in
	// plausible proportions.
	for _, p := range Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := MustGenerate(p)
			e := NewExecutor(prog, 1)
			// Long enough to cycle through every phase a few times.
			n := 3*p.Phases*int(p.PhaseLen) + 200_000
			if n > 4_000_000 {
				n = 4_000_000
			}
			visited := make([]bool, len(prog.Blocks))
			var branches, mems, taken int
			d := e.Run(n)
			for i := range d {
				visited[d[i].BlockID] = true
				if d[i].Class.IsBranch() {
					branches++
					if d[i].Taken {
						taken++
					}
				}
				if d[i].Class.IsMem() {
					mems++
					if d[i].EffAddr == 0 {
						t.Fatal("memory op with zero effective address")
					}
				}
			}
			brFrac := float64(branches) / float64(n)
			if brFrac < 0.03 || brFrac > 0.35 {
				t.Errorf("branch fraction %.3f outside [0.03, 0.35]", brFrac)
			}
			memFrac := float64(mems) / float64(n)
			if memFrac < 0.10 || memFrac > 0.55 {
				t.Errorf("memory fraction %.3f outside [0.10, 0.55]", memFrac)
			}
			if taken == 0 || taken == branches {
				t.Errorf("degenerate taken ratio %d/%d", taken, branches)
			}
			cov := 0
			for _, v := range visited {
				if v {
					cov++
				}
			}
			if float64(cov)/float64(len(visited)) < 0.3 {
				t.Errorf("only %d/%d blocks visited in %d instructions", cov, len(visited), n)
			}
		})
	}
}

func TestGeneratedDependencyDistancesSpread(t *testing.T) {
	prog := MustGenerate(Benchmarks()[0])
	e := NewExecutor(prog, 1)
	short, long, total := 0, 0, 0
	d := e.Run(100_000)
	for i := range d {
		for op := 0; op < int(d[i].NumSrcs); op++ {
			dd := d[i].DepDist[op]
			if dd == 0 {
				continue
			}
			total++
			if dd <= 4 {
				short++
			}
			if dd > 64 {
				long++
			}
		}
	}
	if total == 0 {
		t.Fatal("no dependencies at all")
	}
	if float64(short)/float64(total) < 0.2 {
		t.Errorf("too few short dependencies: %d/%d", short, total)
	}
	if long == 0 {
		t.Error("no long-range dependencies")
	}
}

func TestGenerateArbitrarySeedsAlwaysValid(t *testing.T) {
	f := func(seed uint64, blocks uint16) bool {
		p := Personality{
			Name:         "fuzz",
			Seed:         seed,
			TargetBlocks: int(blocks%500) + 4,
		}
		prog, err := Generate(p)
		if err != nil {
			return false
		}
		// Short execution must not panic and must produce valid classes.
		e := NewExecutor(prog, seed)
		d := e.Run(500)
		for i := range d {
			if d[i].Class >= isa.NumClasses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("gcc"); err != nil {
		t.Errorf("ByName(gcc): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("want 10 benchmarks, got %d", len(names))
	}
	if names[0] != "bzip2" || names[9] != "vpr" {
		t.Errorf("canonical order broken: %v", names)
	}
}

func TestPhaseFootprintsDiffer(t *testing.T) {
	// Programs with multiple phases must touch different cold data in
	// different phases (this is what makes Fig. 8 meaningful).
	p, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prog := MustGenerate(p)
	e := NewExecutor(prog, 1)
	// Run two windows far apart and compare coarse address sets.
	seen := func(n int) map[uint64]bool {
		m := map[uint64]bool{}
		d := e.Run(n)
		for i := range d {
			if d[i].Class.IsMem() && d[i].EffAddr >= DataBase+0x0800_0000 {
				m[d[i].EffAddr>>22] = true // 4 MB granules
			}
		}
		return m
	}
	a := seen(150_000)
	e.Skip(500_000)
	b := seen(150_000)
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no cold accesses observed in window")
	}
	onlyB := 0
	for g := range b {
		if !a[g] {
			onlyB++
		}
	}
	if onlyB == 0 {
		t.Error("later phase touched no new cold-data granules; phases indistinct")
	}
}
