package program

import (
	"testing"

	"repro/internal/isa"
)

// branchProgram builds a two-block program whose block 0 ends in the
// given branch spec: taken -> block 0 (self), not taken -> block 1,
// which falls back to block 0.
func branchProgram(t *testing.T, spec *BranchSpec, cls isa.Class) *Program {
	t.Helper()
	p := &Program{
		Name: "br",
		Blocks: []*Block{
			{
				ID: 0,
				Instrs: []Inst{
					{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16, Srcs: []isa.Reg{1}}},
					{StaticInst: isa.StaticInst{Class: cls, Srcs: []isa.Reg{16}}},
				},
				Branch:      spec,
				TakenTarget: 0,
				FallTarget:  1,
			},
			{
				ID:         1,
				Instrs:     []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 17, Srcs: []isa.Reg{16}}}},
				FallTarget: 0,
			},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func branchDirections(p *Program, n int) []bool {
	e := NewExecutor(p, 1)
	var dirs []bool
	d := e.Run(n)
	for i := range d {
		if d[i].Class.IsBranch() {
			dirs = append(dirs, d[i].Taken)
		}
	}
	return dirs
}

func TestPatternBranchLSBFirst(t *testing.T) {
	// Pattern 0b0110 of length 4, LSB first: N T T N repeating.
	p := branchProgram(t, &BranchSpec{Kind: BranchPattern, Pattern: 0b0110, PatternLen: 4}, isa.IntBranch)
	dirs := branchDirections(p, 200)
	want := []bool{false, true, true, false}
	for i, d := range dirs[:40] {
		if d != want[i%4] {
			t.Fatalf("direction %d = %v, want pattern NTTN", i, d)
		}
	}
}

func TestLoopBranchExactTripCount(t *testing.T) {
	p := branchProgram(t, &BranchSpec{Kind: BranchLoop, Count: 5}, isa.IntBranch)
	dirs := branchDirections(p, 400)
	// Taken 4x, not-taken once, repeating.
	for i, d := range dirs[:40] {
		want := (i % 5) != 4
		if d != want {
			t.Fatalf("loop direction %d = %v, want %v", i, d, want)
		}
	}
}

func TestBiasedBranchFrequency(t *testing.T) {
	p := branchProgram(t, &BranchSpec{Kind: BranchBiased, P: 0.7}, isa.IntBranch)
	dirs := branchDirections(p, 60_000)
	taken := 0
	for _, d := range dirs {
		if d {
			taken++
		}
	}
	frac := float64(taken) / float64(len(dirs))
	if frac < 0.66 || frac > 0.74 {
		t.Errorf("biased branch taken fraction %.3f, want ~0.7", frac)
	}
}

func TestIndirectBranchHotTargets(t *testing.T) {
	// An indirect branch over 4 targets: the squared-uniform skew must
	// make target 0 the hottest.
	p := &Program{
		Name: "ind",
		Blocks: []*Block{
			{
				ID: 0,
				Instrs: []Inst{
					{StaticInst: isa.StaticInst{Class: isa.IndirBranch, Srcs: []isa.Reg{1}}},
				},
				Branch:      &BranchSpec{Kind: BranchIndirect, Targets: []int{1, 2, 3, 4}},
				TakenTarget: 1,
			},
			{ID: 1, Instrs: []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16}}}, FallTarget: 0},
			{ID: 2, Instrs: []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16}}}, FallTarget: 0},
			{ID: 3, Instrs: []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16}}}, FallTarget: 0},
			{ID: 4, Instrs: []Inst{{StaticInst: isa.StaticInst{Class: isa.IntALU, Dst: 16}}}, FallTarget: 0},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p, 1)
	visits := map[int32]int{}
	d := e.Run(40_000)
	for i := range d {
		if d[i].Index == 0 && d[i].BlockID != 0 {
			visits[d[i].BlockID]++
		}
	}
	if !(visits[1] > visits[2] && visits[2] > visits[3] && visits[3] > visits[4]) {
		t.Errorf("indirect targets not skewed hot-first: %v", visits)
	}
	for b := int32(1); b <= 4; b++ {
		if visits[b] == 0 {
			t.Errorf("target %d never taken", b)
		}
	}
}

func TestMemStackStaysHot(t *testing.T) {
	p := tinyProgram(t)
	p.Blocks[0].Instrs[1].Mem = &MemSpec{Kind: MemStack, Base: StackBase, Size: 256}
	e := NewExecutor(p, 1)
	seen := map[uint64]bool{}
	d := e.Run(5000)
	for i := range d {
		if d[i].Class == isa.Load {
			if d[i].EffAddr < StackBase || d[i].EffAddr >= StackBase+256 {
				t.Fatalf("stack access %#x outside region", d[i].EffAddr)
			}
			seen[d[i].EffAddr] = true
		}
	}
	if len(seen) == 0 || len(seen) > 32 {
		t.Errorf("stack accesses should reuse a handful of slots, saw %d", len(seen))
	}
}
