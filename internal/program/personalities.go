package program

import "fmt"

// Benchmarks returns the ten SPEC CINT2000 stand-in personalities used
// throughout the evaluation (Table 1 of the paper). Each personality is
// tuned so the *relative* workload properties track its namesake:
//
//   - static code size ordering follows Table 3's SFG node counts
//     (gcc ≫ vortex > parser > crafty > bzip2 > eon ≈ twolf ≈ perlbmk >
//     gzip > vpr), scaled down to laptop-size programs;
//   - branch predictability spans the Fig. 3 range: vortex very
//     predictable, eon/perlbmk/twolf/crafty mispredict-prone, with
//     eon and perlbmk the most delayed-update-sensitive (interpreter
//     dispatch / virtual-call style indirect branches);
//   - memory behaviour spans stride-friendly compressors (gzip, bzip2)
//     to pointer-chasing, cache-hostile workloads (twolf, vpr, crafty);
//   - phase counts follow the number of SimPoint intervals in Table 1
//     (gcc 8, bzip2 3, parser 2, gzip/vpr/... 1-2).
//
// All seeds are fixed: every call returns identical personalities, and
// the generated programs are bit-reproducible.
func Benchmarks() []Personality {
	return []Personality{
		{
			Name: "bzip2", Seed: 0xb21b2001, TargetBlocks: 250,
			AvgBlockLen: 7, SDBlockLen: 2,
			LoadFrac: 0.26, StoreFrac: 0.09,
			LoopWeight: 0.45, DiamondWeight: 0.30, SwitchWeight: 0.02, PlainWeight: 0.23,
			LoopTripMin: 8, LoopTripMax: 64,
			BiasChoices: []float64{0.05, 0.12, 0.85, 0.95}, PatternFrac: 0.30,
			StackFrac: 0.20, StrideFrac: 0.70, HotBytes: 64 << 10, ColdBytes: 8 << 20, HotFrac: 0.72,
			LocalDepFrac: 0.70, Phases: 3, PhaseLen: 200_000,
		},
		{
			Name: "crafty", Seed: 0xc4a5f731, TargetBlocks: 600,
			AvgBlockLen: 5, SDBlockLen: 2,
			LoadFrac: 0.30, StoreFrac: 0.08, IntMulFrac: 0.02,
			LoopWeight: 0.22, DiamondWeight: 0.48, SwitchWeight: 0.05, PlainWeight: 0.25,
			LoopTripMin: 2, LoopTripMax: 10,
			BiasChoices: []float64{0.35, 0.45, 0.5, 0.55, 0.65}, PatternFrac: 0.10,
			StackFrac: 0.15, StrideFrac: 0.15, HotBytes: 32 << 10, ColdBytes: 24 << 20, HotFrac: 0.45,
			LocalDepFrac: 0.45, Phases: 1, PhaseLen: 400_000,
		},
		{
			Name: "eon", Seed: 0xe0e0e003, TargetBlocks: 180,
			AvgBlockLen: 6, SDBlockLen: 2, FPFrac: 0.12,
			LoadFrac: 0.25, StoreFrac: 0.12,
			LoopWeight: 0.25, DiamondWeight: 0.38, SwitchWeight: 0.14, PlainWeight: 0.23,
			LoopTripMin: 2, LoopTripMax: 8,
			BiasChoices: []float64{0.3, 0.4, 0.5, 0.6, 0.7}, PatternFrac: 0.08,
			StackFrac: 0.35, StrideFrac: 0.40, HotBytes: 24 << 10, ColdBytes: 2 << 20, HotFrac: 0.85,
			LocalDepFrac: 0.40, Phases: 1, PhaseLen: 300_000,
		},
		{
			Name: "gcc", Seed: 0x6cc00004, TargetBlocks: 3500,
			AvgBlockLen: 5, SDBlockLen: 3,
			LoadFrac: 0.26, StoreFrac: 0.12,
			LoopWeight: 0.20, DiamondWeight: 0.42, SwitchWeight: 0.08, PlainWeight: 0.30,
			LoopTripMin: 2, LoopTripMax: 16,
			BiasChoices: []float64{0.1, 0.3, 0.5, 0.7, 0.9}, PatternFrac: 0.12,
			StackFrac: 0.30, StrideFrac: 0.30, HotBytes: 48 << 10, ColdBytes: 8 << 20, HotFrac: 0.70,
			LocalDepFrac: 0.55, Phases: 8, PhaseLen: 120_000,
		},
		{
			Name: "gzip", Seed: 0x671b0005, TargetBlocks: 120,
			AvgBlockLen: 8, SDBlockLen: 2,
			LoadFrac: 0.22, StoreFrac: 0.08,
			LoopWeight: 0.50, DiamondWeight: 0.25, SwitchWeight: 0.02, PlainWeight: 0.23,
			LoopTripMin: 12, LoopTripMax: 96,
			BiasChoices: []float64{0.04, 0.1, 0.9, 0.96}, PatternFrac: 0.25,
			StackFrac: 0.20, StrideFrac: 0.75, HotBytes: 96 << 10, ColdBytes: 2 << 20, HotFrac: 0.85,
			LocalDepFrac: 0.72, Phases: 1, PhaseLen: 250_000,
		},
		{
			Name: "parser", Seed: 0x9a45e306, TargetBlocks: 800,
			AvgBlockLen: 5, SDBlockLen: 2,
			LoadFrac: 0.30, StoreFrac: 0.10,
			LoopWeight: 0.25, DiamondWeight: 0.42, SwitchWeight: 0.06, PlainWeight: 0.27,
			LoopTripMin: 2, LoopTripMax: 12,
			BiasChoices: []float64{0.2, 0.4, 0.5, 0.6, 0.8}, PatternFrac: 0.10,
			StackFrac: 0.22, StrideFrac: 0.18, HotBytes: 32 << 10, ColdBytes: 12 << 20, HotFrac: 0.60,
			LocalDepFrac: 0.50, Phases: 2, PhaseLen: 300_000,
		},
		{
			Name: "perlbmk", Seed: 0x9e51b007, TargetBlocks: 160,
			AvgBlockLen: 5, SDBlockLen: 2,
			LoadFrac: 0.27, StoreFrac: 0.12,
			LoopWeight: 0.20, DiamondWeight: 0.32, SwitchWeight: 0.22, PlainWeight: 0.26,
			LoopTripMin: 2, LoopTripMax: 8,
			BiasChoices: []float64{0.3, 0.45, 0.55, 0.7}, PatternFrac: 0.05,
			StackFrac: 0.32, StrideFrac: 0.30, HotBytes: 32 << 10, ColdBytes: 4 << 20, HotFrac: 0.80,
			LocalDepFrac: 0.45, Phases: 1, PhaseLen: 300_000,
		},
		{
			Name: "twolf", Seed: 0x79019008, TargetBlocks: 170,
			AvgBlockLen: 6, SDBlockLen: 2, FPFrac: 0.06,
			LoadFrac: 0.28, StoreFrac: 0.09, IntMulFrac: 0.03,
			LoopWeight: 0.28, DiamondWeight: 0.42, SwitchWeight: 0.03, PlainWeight: 0.27,
			LoopTripMin: 2, LoopTripMax: 10,
			BiasChoices: []float64{0.35, 0.45, 0.55, 0.65}, PatternFrac: 0.08,
			StackFrac: 0.12, StrideFrac: 0.12, HotBytes: 16 << 10, ColdBytes: 20 << 20, HotFrac: 0.40,
			LocalDepFrac: 0.42, Phases: 1, PhaseLen: 350_000,
		},
		{
			Name: "vortex", Seed: 0x40e7e009, TargetBlocks: 1100,
			AvgBlockLen: 6, SDBlockLen: 2,
			LoadFrac: 0.28, StoreFrac: 0.14,
			LoopWeight: 0.30, DiamondWeight: 0.32, SwitchWeight: 0.04, PlainWeight: 0.34,
			LoopTripMin: 4, LoopTripMax: 24,
			BiasChoices: []float64{0.03, 0.08, 0.92, 0.97}, PatternFrac: 0.15,
			StackFrac: 0.30, StrideFrac: 0.45, HotBytes: 64 << 10, ColdBytes: 6 << 20, HotFrac: 0.75,
			LocalDepFrac: 0.60, Phases: 2, PhaseLen: 250_000,
		},
		{
			Name: "vpr", Seed: 0x59120010, TargetBlocks: 60,
			AvgBlockLen: 6, SDBlockLen: 2, FPFrac: 0.10,
			LoadFrac: 0.28, StoreFrac: 0.08, IntMulFrac: 0.02,
			LoopWeight: 0.30, DiamondWeight: 0.40, SwitchWeight: 0.03, PlainWeight: 0.27,
			LoopTripMin: 2, LoopTripMax: 12,
			BiasChoices: []float64{0.3, 0.4, 0.5, 0.6, 0.7}, PatternFrac: 0.10,
			StackFrac: 0.15, StrideFrac: 0.15, HotBytes: 16 << 10, ColdBytes: 16 << 20, HotFrac: 0.45,
			LocalDepFrac: 0.45, Phases: 1, PhaseLen: 350_000,
		},
	}
}

// BenchmarkNames returns the names of all benchmark personalities in
// their canonical (paper) order.
func BenchmarkNames() []string {
	ps := Benchmarks()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ByName returns the personality with the given name.
func ByName(name string) (Personality, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Personality{}, fmt.Errorf("program: unknown benchmark %q", name)
}
