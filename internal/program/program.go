// Package program provides the workload substrate of the framework: a
// static program representation (a control-flow graph of basic blocks
// over the abstract ISA), deterministic branch and address-generation
// models, a generator that synthesises benchmark programs from tunable
// "personalities", and a functional executor that turns a program into
// the dynamic instruction stream consumed by the profiler and the
// timing simulators.
//
// This substitutes for the SPEC CINT2000 Alpha binaries used in the
// paper (see DESIGN.md): statistical simulation is evaluated relative
// to execution-driven simulation of the *same* stream, so any concrete,
// reproducible workload with realistic control-flow, dataflow and
// locality structure preserves the methodology.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// InstBytes is the size of one encoded instruction; PCs advance by this
// amount (as on Alpha, a fixed-width 64-bit RISC encoding would be 4
// bytes; we use 8 to make code footprints stress the I-cache/I-TLB at
// our reduced scale).
const InstBytes = 8

// CodeBase is the address of the first instruction of every program.
const CodeBase uint64 = 0x0040_0000

// DataBase is the lowest data address handed to address generators.
const DataBase uint64 = 0x1000_0000

// StackBase is the base of the region used by stack-like accesses.
const StackBase uint64 = 0x7fff_0000

// BranchKind selects the behavioural model of a block-terminating
// branch.
type BranchKind uint8

const (
	// BranchLoop is a backward loop branch: taken Count-1 consecutive
	// times, then not-taken once (loop exit), repeating.
	BranchLoop BranchKind = iota
	// BranchBiased is taken with probability P, independently each time
	// (data-dependent branch).
	BranchBiased
	// BranchPattern repeats a fixed taken/not-taken pattern of
	// PatternLen bits from Pattern (LSB first) — strongly predictable by
	// local-history predictors, poorly by bimodal ones.
	BranchPattern
	// BranchIndirect is always taken; the target cycles among Targets
	// with a biased-random selection (models switch statements and
	// virtual calls; stresses the BTB).
	BranchIndirect
)

// BranchSpec describes the terminating branch of a basic block. A nil
// BranchSpec on a Block means the block falls through unconditionally
// (a merge block ending at a branch target).
type BranchSpec struct {
	Kind       BranchKind
	Count      int     // BranchLoop: trip count (>= 1)
	P          float64 // BranchBiased: probability of taken
	Pattern    uint64  // BranchPattern: direction bits, LSB first
	PatternLen int     // BranchPattern: period in [1, 64]
	Targets    []int   // BranchIndirect: candidate target block IDs (>= 1)
}

// MemKind selects the address-generation model of a load or store.
type MemKind uint8

const (
	// MemStride walks Base..Base+Size with a fixed stride, wrapping.
	MemStride MemKind = iota
	// MemRandom picks a pseudo-random (deterministic) aligned address in
	// [Base, Base+Size).
	MemRandom
	// MemStack accesses a small, hot, fixed set of addresses near
	// StackBase (spills, locals): essentially always cache hits.
	MemStack
)

// MemSpec describes how a static load/store generates effective
// addresses over time.
type MemSpec struct {
	Kind   MemKind
	Base   uint64
	Size   uint64 // region size in bytes (power of two preferred)
	Stride uint64 // MemStride only
}

// Inst is one static instruction: ISA-level class/register structure
// plus, for memory operations, its address-generation behaviour.
type Inst struct {
	isa.StaticInst
	Mem *MemSpec // non-nil iff Class.IsMem()
}

// Block is a basic block: a straight-line run of instructions, ending
// either in a branch (Branch != nil, and the last instruction's class
// is a branch class) or falling through to FallTarget.
type Block struct {
	ID          int
	Instrs      []Inst
	Branch      *BranchSpec
	TakenTarget int // successor when the branch is taken (or indirect default)
	FallTarget  int // successor when not taken / fallthrough
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Program is a complete synthetic benchmark: a CFG whose execution
// never terminates (the harness bounds runs by instruction count).
type Program struct {
	Name   string
	Blocks []*Block
	Entry  int

	starts []uint64 // per-block start PCs, filled by Layout
}

// Layout computes the code layout (per-block start PCs, contiguous from
// CodeBase in ID order). It is idempotent. Generate and Validate call
// it; callers constructing Programs by hand must call it (or Validate)
// before sharing the Program across goroutines, since PC reads the
// cached layout.
func (p *Program) Layout() {
	if p.starts != nil {
		return
	}
	starts := make([]uint64, len(p.Blocks))
	off := CodeBase
	for i, b := range p.Blocks {
		starts[i] = off
		off += uint64(len(b.Instrs)) * InstBytes
	}
	p.starts = starts
}

// PC returns the address of instruction idx of block id, assuming
// blocks are laid out contiguously from CodeBase in ID order.
func (p *Program) PC(blockID, idx int) uint64 {
	if p.starts == nil {
		p.Layout()
	}
	return p.starts[blockID] + uint64(idx)*InstBytes
}

// NumStaticInstrs returns the total static instruction count.
func (p *Program) NumStaticInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// CodeBytes returns the static code footprint in bytes.
func (p *Program) CodeBytes() uint64 {
	return uint64(p.NumStaticInstrs()) * InstBytes
}

// Validate checks structural invariants: every block is non-empty, all
// successor IDs are in range, terminating branches have branch-class
// last instructions, memory instructions have address generators, and
// every block is reachable from the entry.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program %q has no blocks", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return fmt.Errorf("program %q entry %d out of range", p.Name, p.Entry)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d has ID %d", i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d is empty", i)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if err := in.StaticInst.Validate(); err != nil {
				return fmt.Errorf("block %d inst %d: %w", i, j, err)
			}
			if in.Class.IsMem() != (in.Mem != nil) {
				return fmt.Errorf("block %d inst %d: memory spec mismatch for class %v", i, j, in.Class)
			}
			if in.Class.IsBranch() && j != len(b.Instrs)-1 {
				return fmt.Errorf("block %d inst %d: branch not at block end", i, j)
			}
		}
		last := b.Instrs[len(b.Instrs)-1]
		if b.Branch != nil {
			if !last.Class.IsBranch() {
				return fmt.Errorf("block %d: Branch set but last inst is %v", i, last.Class)
			}
			if err := validateBranchSpec(b, len(p.Blocks)); err != nil {
				return fmt.Errorf("block %d: %w", i, err)
			}
		} else {
			if last.Class.IsBranch() {
				return fmt.Errorf("block %d: branch instruction without BranchSpec", i)
			}
			if b.FallTarget < 0 || b.FallTarget >= len(p.Blocks) {
				return fmt.Errorf("block %d: fall target %d out of range", i, b.FallTarget)
			}
		}
	}
	// Reachability from entry.
	seen := make([]bool, len(p.Blocks))
	stack := []int{p.Entry}
	seen[p.Entry] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.successors(id) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("block %d unreachable from entry", i)
		}
	}
	p.Layout()
	return nil
}

func validateBranchSpec(b *Block, numBlocks int) error {
	sp := b.Branch
	inRange := func(t int) bool { return t >= 0 && t < numBlocks }
	switch sp.Kind {
	case BranchLoop:
		if sp.Count < 1 {
			return fmt.Errorf("loop count %d < 1", sp.Count)
		}
		if !inRange(b.TakenTarget) || !inRange(b.FallTarget) {
			return fmt.Errorf("loop targets out of range")
		}
	case BranchBiased:
		if sp.P < 0 || sp.P > 1 {
			return fmt.Errorf("bias %v outside [0,1]", sp.P)
		}
		if !inRange(b.TakenTarget) || !inRange(b.FallTarget) {
			return fmt.Errorf("biased targets out of range")
		}
	case BranchPattern:
		if sp.PatternLen < 1 || sp.PatternLen > 64 {
			return fmt.Errorf("pattern length %d outside [1,64]", sp.PatternLen)
		}
		if !inRange(b.TakenTarget) || !inRange(b.FallTarget) {
			return fmt.Errorf("pattern targets out of range")
		}
	case BranchIndirect:
		if len(sp.Targets) == 0 {
			return fmt.Errorf("indirect branch with no targets")
		}
		for _, t := range sp.Targets {
			if !inRange(t) {
				return fmt.Errorf("indirect target %d out of range", t)
			}
		}
	default:
		return fmt.Errorf("unknown branch kind %d", sp.Kind)
	}
	return nil
}

// successors returns the possible next blocks of block id.
func (p *Program) successors(id int) []int {
	b := p.Blocks[id]
	if b.Branch == nil {
		return []int{b.FallTarget}
	}
	if b.Branch.Kind == BranchIndirect {
		return b.Branch.Targets
	}
	return []int{b.TakenTarget, b.FallTarget}
}
