package program

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
)

// Personality parameterises the synthesis of a benchmark program. Each
// SPECint stand-in (see personalities.go) is one Personality; the
// generator turns it into a structured control-flow graph of loop
// nests, if-diamonds and indirect switches.
type Personality struct {
	Name string
	Seed uint64

	// Static shape.
	TargetBlocks int     // approximate number of basic blocks
	AvgBlockLen  float64 // mean body instructions per block (terminator excluded)
	SDBlockLen   float64

	// Instruction mix (fractions of body instructions; remainder is
	// integer ALU work).
	LoadFrac, StoreFrac    float64
	IntMulFrac, IntDivFrac float64
	FPFrac                 float64 // split among fp-alu/mul/div/sqrt

	// Dataflow.
	LocalDepFrac    float64 // prob. a source reads a recently written register
	GlobalWriteFrac float64 // prob. a result goes to a long-lived global register

	// Control-flow component mix (relative weights).
	LoopWeight, DiamondWeight, SwitchWeight, PlainWeight float64
	LoopTripMin, LoopTripMax                             int
	BiasChoices                                          []float64 // taken-probabilities for data-dependent branches
	PatternFrac                                          float64   // fraction of diamond headers using periodic patterns
	MaxDepth                                             int       // nesting depth limit

	// Memory behaviour.
	StackFrac  float64 // fraction of memory ops hitting the hot stack region
	StrideFrac float64 // of the rest, fraction using stride walks
	HotBytes   uint64  // hot randomly-accessed region size
	ColdBytes  uint64  // cold region size
	HotFrac    float64 // prob. a random/stride access targets the hot region

	// Phase structure.
	Phases   int    // number of top-level phase regions (>= 1)
	PhaseLen uint64 // target dynamic instructions per phase activation
}

// applyDefaults fills zero-valued fields with sane defaults so partial
// personalities (e.g. in tests) work.
func (p Personality) applyDefaults() Personality {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	if p.TargetBlocks == 0 {
		p.TargetBlocks = 200
	}
	def(&p.AvgBlockLen, 6)
	def(&p.SDBlockLen, 2)
	def(&p.LoadFrac, 0.24)
	def(&p.StoreFrac, 0.10)
	def(&p.IntMulFrac, 0.01)
	def(&p.LocalDepFrac, 0.6)
	def(&p.GlobalWriteFrac, 0.12)
	def(&p.LoopWeight, 0.30)
	def(&p.DiamondWeight, 0.35)
	def(&p.SwitchWeight, 0.05)
	def(&p.PlainWeight, 0.30)
	if p.LoopTripMin == 0 {
		p.LoopTripMin = 4
	}
	if p.LoopTripMax < p.LoopTripMin {
		p.LoopTripMax = p.LoopTripMin + 28
	}
	if len(p.BiasChoices) == 0 {
		p.BiasChoices = []float64{0.08, 0.25, 0.5, 0.75, 0.92}
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 3
	}
	def(&p.StackFrac, 0.25)
	def(&p.StrideFrac, 0.45)
	if p.HotBytes == 0 {
		p.HotBytes = 16 << 10
	}
	if p.ColdBytes == 0 {
		p.ColdBytes = 4 << 20
	}
	def(&p.HotFrac, 0.80)
	if p.Phases == 0 {
		p.Phases = 1
	}
	if p.PhaseLen == 0 {
		p.PhaseLen = 250_000
	}
	return p
}

// Generate synthesises a Program from the personality. The result is
// deterministic in Personality (including Seed) and always validates.
func Generate(p Personality) (*Program, error) {
	p = p.applyDefaults()
	g := &gen{
		p:    p,
		rng:  stats.NewRNG(p.Seed),
		prog: &Program{Name: p.Name},
	}
	g.build()
	if err := g.prog.Validate(); err != nil {
		return nil, fmt.Errorf("program: generated invalid program %q: %w", p.Name, err)
	}
	return g.prog, nil
}

// MustGenerate is Generate but panics on error; generation can only
// fail on a generator bug, so most callers use this.
func MustGenerate(p Personality) *Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

type gen struct {
	p    Personality
	rng  *stats.RNG
	prog *Program

	recent    []isa.Reg // recently written registers (dataflow locality)
	nextLocal isa.Reg

	phase    int
	coldBase uint64
}

const (
	globalRegLo = isa.Reg(1)
	globalRegHi = isa.Reg(15)
	localRegLo  = isa.Reg(16)
)

func (g *gen) build() {
	type phaseInfo struct {
		entry, exit int
		est         float64
		tail        int
	}
	phases := make([]phaseInfo, g.p.Phases)
	perPhase := g.p.TargetBlocks / g.p.Phases
	if perPhase < 4 {
		perPhase = 4
	}
	for i := range phases {
		g.phase = i
		// Each phase touches its own slice of the cold region so that
		// program phases have distinct data footprints.
		g.coldBase = DataBase + 0x0800_0000 + uint64(i)*g.p.ColdBytes
		budget := perPhase
		entry, exit, est := g.region(0, &budget)
		// Phase tail: a loop branch that re-runs the phase region.
		tail := g.newBlock(g.bodyLen())
		g.terminateLoop(tail, 1) // trip count patched below
		g.wire(exit, tail)
		g.prog.Blocks[tail].TakenTarget = entry
		phases[i] = phaseInfo{entry: entry, exit: exit, est: est, tail: tail}
	}
	// Chain phases into an endless cycle and size their trip counts so
	// one activation of each phase runs for about PhaseLen dynamic
	// instructions.
	for i, ph := range phases {
		next := phases[(i+1)%len(phases)].entry
		g.prog.Blocks[ph.tail].FallTarget = next
		perIter := ph.est + float64(len(g.prog.Blocks[ph.tail].Instrs))
		trips := int(float64(g.p.PhaseLen) / perIter)
		if trips < 2 {
			trips = 2
		}
		g.prog.Blocks[ph.tail].Branch.Count = trips
	}
	g.prog.Entry = phases[0].entry
}

// region generates a single-entry/single-exit sequence of components.
// The returned exit block has an unwired fallthrough (patched by the
// caller via wire). est is the expected dynamic instruction count of
// one pass through the region.
func (g *gen) region(depth int, budget *int) (entry, exit int, est float64) {
	// Top-level regions keep adding components until the block budget is
	// exhausted; nested regions stay small so depth stays bounded.
	n := 1 + g.rng.Intn(3)
	if depth == 0 {
		n = 1 << 30
	}
	entry = -1
	for i := 0; i < n && *budget > 0; i++ {
		e, x, c := g.component(depth, budget)
		if entry < 0 {
			entry = e
		} else {
			g.wire(exit, e)
		}
		exit = x
		est += c
	}
	if entry < 0 {
		b := g.newBlock(g.bodyLen())
		entry, exit = b, b
		est = float64(len(g.prog.Blocks[b].Instrs))
	}
	return entry, exit, est
}

func (g *gen) component(depth int, budget *int) (entry, exit int, est float64) {
	w := []float64{g.p.PlainWeight, g.p.LoopWeight, g.p.DiamondWeight, g.p.SwitchWeight}
	if depth >= g.p.MaxDepth || *budget < 4 {
		w[1], w[2], w[3] = 0, 0, 0
	}
	switch choose(g.rng, w) {
	case 1:
		return g.loop(depth, budget)
	case 2:
		return g.diamond(depth, budget)
	case 3:
		return g.indirSwitch(depth, budget)
	default:
		*budget--
		b := g.newBlock(g.bodyLen())
		return b, b, float64(len(g.prog.Blocks[b].Instrs))
	}
}

// loop: body region followed by a tail block ending in a backward loop
// branch (do-while shape).
func (g *gen) loop(depth int, budget *int) (entry, exit int, est float64) {
	*budget--
	bodyEntry, bodyExit, bodyEst := g.region(depth+1, budget)
	tail := g.newBlock(g.bodyLen())
	trips := g.p.LoopTripMin + g.rng.Intn(g.p.LoopTripMax-g.p.LoopTripMin+1)
	// Cap the trip count so one full pass of this loop stays well under
	// the phase length; otherwise nested loops multiply into passes that
	// dwarf the phase budget and starve block coverage.
	if maxDyn := float64(g.p.PhaseLen) / 4; bodyEst*float64(trips) > maxDyn {
		trips = int(maxDyn / (bodyEst + 1))
		if trips < 2 {
			trips = 2
		}
	}
	g.terminateLoop(tail, trips)
	g.wire(bodyExit, tail)
	g.prog.Blocks[tail].TakenTarget = bodyEntry
	perIter := bodyEst + float64(len(g.prog.Blocks[tail].Instrs))
	return bodyEntry, tail, perIter * float64(trips)
}

// diamond: conditional header, two arm regions, merge block.
func (g *gen) diamond(depth int, budget *int) (entry, exit int, est float64) {
	*budget -= 2
	head := g.newBlock(g.bodyLen())
	g.terminateCond(head)
	aEntry, aExit, aEst := g.region(depth+1, budget)
	bEntry, bExit, bEst := g.region(depth+1, budget)
	merge := g.newBlock(g.bodyLen())
	hb := g.prog.Blocks[head]
	hb.TakenTarget = aEntry
	hb.FallTarget = bEntry
	g.wire(aExit, merge)
	g.wire(bExit, merge)
	// Weight arms by the header's taken probability.
	pTaken := 0.5
	if hb.Branch.Kind == BranchBiased {
		pTaken = hb.Branch.P
	}
	est = float64(len(hb.Instrs)) + pTaken*aEst + (1-pTaken)*bEst +
		float64(len(g.prog.Blocks[merge].Instrs))
	return head, merge, est
}

// indirSwitch: indirect-branch header fanning out to k small regions
// that reconverge at a merge block.
func (g *gen) indirSwitch(depth int, budget *int) (entry, exit int, est float64) {
	*budget -= 2
	head := g.newBlock(g.bodyLen())
	k := 2 + g.rng.Intn(5)
	targets := make([]int, 0, k)
	merge := g.newBlock(g.bodyLen())
	var sumEst float64
	for i := 0; i < k && *budget > 0; i++ {
		e, x, c := g.region(depth+1, budget)
		targets = append(targets, e)
		g.wire(x, merge)
		sumEst += c
	}
	if len(targets) == 0 {
		*budget--
		b := g.newBlock(g.bodyLen())
		targets = append(targets, b)
		g.wire(b, merge)
		sumEst = float64(len(g.prog.Blocks[b].Instrs))
	}
	g.terminateIndirect(head, targets)
	hb := g.prog.Blocks[head]
	est = float64(len(hb.Instrs)) + sumEst/float64(len(targets)) +
		float64(len(g.prog.Blocks[merge].Instrs))
	return head, merge, est
}

// wire sets the pending fallthrough successor of an exit block.
func (g *gen) wire(from, to int) {
	b := g.prog.Blocks[from]
	if b.Branch != nil && b.Branch.Kind == BranchIndirect {
		panic("program: cannot wire fallthrough of an indirect block")
	}
	b.FallTarget = to
}

// choose picks an index from relative weights (all zero → 0).
func choose(rng *stats.RNG, w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total == 0 {
		return 0
	}
	u := rng.Float64() * total
	for i, x := range w {
		u -= x
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}

func (g *gen) bodyLen() int {
	l := int(g.p.AvgBlockLen + g.p.SDBlockLen*g.rng.NormFloat64() + 0.5)
	if l < 1 {
		l = 1
	}
	if l > 48 {
		l = 48
	}
	return l
}

// newBlock creates a block with n body instructions and no terminator;
// FallTarget is left unwired (-1) until the caller patches it.
func (g *gen) newBlock(n int) int {
	id := len(g.prog.Blocks)
	b := &Block{ID: id, FallTarget: -1, TakenTarget: -1}
	for i := 0; i < n; i++ {
		b.Instrs = append(b.Instrs, g.bodyInst())
	}
	g.prog.Blocks = append(g.prog.Blocks, b)
	return id
}

func (g *gen) bodyInst() Inst {
	c := g.pickClass()
	in := Inst{StaticInst: isa.StaticInst{Class: c}}
	switch c {
	case isa.Load:
		in.Srcs = []isa.Reg{g.srcReg()} // base register
		in.Mem = g.memSpec()
	case isa.Store:
		in.Srcs = []isa.Reg{g.srcReg(), g.srcReg()} // data + base
		in.Mem = g.memSpec()
	case isa.IntDiv, isa.FPDiv, isa.FPSqrt:
		in.Srcs = []isa.Reg{g.srcReg(), g.srcReg()}
	default:
		if g.rng.Float64() < 0.25 {
			in.Srcs = []isa.Reg{g.srcReg()}
		} else {
			in.Srcs = []isa.Reg{g.srcReg(), g.srcReg()}
		}
	}
	if c.HasDest() {
		in.Dst = g.dstReg()
	}
	return in
}

func (g *gen) pickClass() isa.Class {
	u := g.rng.Float64()
	switch {
	case u < g.p.LoadFrac:
		return isa.Load
	case u < g.p.LoadFrac+g.p.StoreFrac:
		return isa.Store
	default:
	}
	u = g.rng.Float64()
	switch {
	case u < g.p.IntMulFrac:
		return isa.IntMul
	case u < g.p.IntMulFrac+g.p.IntDivFrac:
		return isa.IntDiv
	case u < g.p.IntMulFrac+g.p.IntDivFrac+g.p.FPFrac:
		switch g.rng.Intn(5) {
		case 0:
			return isa.FPMul
		case 1:
			return isa.FPDiv
		case 2:
			return isa.FPSqrt
		default:
			return isa.FPALU
		}
	default:
		return isa.IntALU
	}
}

func (g *gen) srcReg() isa.Reg {
	if len(g.recent) > 0 && g.rng.Float64() < g.p.LocalDepFrac {
		// Prefer the most recently written registers (short RAW
		// distances), with a geometric-ish fall-off.
		i := len(g.recent) - 1 - min(g.rng.Intn(4), g.rng.Intn(len(g.recent)))
		return g.recent[i]
	}
	return globalRegLo + isa.Reg(g.rng.Intn(int(globalRegHi-globalRegLo)+1))
}

func (g *gen) dstReg() isa.Reg {
	var r isa.Reg
	if g.rng.Float64() < g.p.GlobalWriteFrac {
		r = globalRegLo + isa.Reg(g.rng.Intn(int(globalRegHi-globalRegLo)+1))
	} else {
		r = localRegLo + g.nextLocal
		g.nextLocal = (g.nextLocal + 1) % (isa.NumRegs - localRegLo)
	}
	g.recent = append(g.recent, r)
	if len(g.recent) > 8 {
		g.recent = g.recent[1:]
	}
	return r
}

func (g *gen) memSpec() *MemSpec {
	u := g.rng.Float64()
	if u < g.p.StackFrac {
		return &MemSpec{Kind: MemStack, Base: StackBase, Size: 512}
	}
	hot := g.rng.Float64() < g.p.HotFrac
	base, size := DataBase, g.p.HotBytes
	if !hot {
		base, size = g.coldBase, g.p.ColdBytes
	}
	if size < 64 {
		size = 64
	}
	if g.rng.Float64() < g.p.StrideFrac {
		strides := []uint64{8, 8, 16, 32, 64}
		off := (uint64(g.rng.Intn(int(size/16))) * 8) % size
		return &MemSpec{
			Kind:   MemStride,
			Base:   base + off,
			Size:   size - off,
			Stride: strides[g.rng.Intn(len(strides))],
		}
	}
	return &MemSpec{Kind: MemRandom, Base: base, Size: size}
}

// terminateCond appends a conditional-branch terminator to block id.
func (g *gen) terminateCond(id int) {
	b := g.prog.Blocks[id]
	br := Inst{StaticInst: isa.StaticInst{Class: isa.IntBranch, Srcs: []isa.Reg{g.srcReg()}}}
	if g.p.FPFrac > 0.05 && g.rng.Float64() < 0.3 {
		br.Class = isa.FPBranch
	}
	b.Instrs = append(b.Instrs, br)
	if g.rng.Float64() < g.p.PatternFrac {
		plen := 3 + g.rng.Intn(10)
		b.Branch = &BranchSpec{
			Kind:       BranchPattern,
			Pattern:    g.rng.Uint64(),
			PatternLen: plen,
		}
	} else {
		b.Branch = &BranchSpec{
			Kind: BranchBiased,
			P:    g.p.BiasChoices[g.rng.Intn(len(g.p.BiasChoices))],
		}
	}
}

// terminateLoop appends a loop-branch terminator with the given trip
// count to block id.
func (g *gen) terminateLoop(id, trips int) {
	b := g.prog.Blocks[id]
	b.Instrs = append(b.Instrs,
		Inst{StaticInst: isa.StaticInst{Class: isa.IntBranch, Srcs: []isa.Reg{g.srcReg()}}})
	b.Branch = &BranchSpec{Kind: BranchLoop, Count: trips}
}

// terminateIndirect appends an indirect-branch terminator to block id.
func (g *gen) terminateIndirect(id int, targets []int) {
	b := g.prog.Blocks[id]
	b.Instrs = append(b.Instrs,
		Inst{StaticInst: isa.StaticInst{Class: isa.IndirBranch, Srcs: []isa.Reg{g.srcReg()}}})
	b.Branch = &BranchSpec{Kind: BranchIndirect, Targets: targets}
	b.TakenTarget = targets[0]
}
