package program

import (
	"strings"
	"testing"
)

func TestPersonalityJSONRoundTrip(t *testing.T) {
	orig := Benchmarks()[0]
	data, err := orig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := PersonalityFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Seed != orig.Seed || got.TargetBlocks != orig.TargetBlocks {
		t.Errorf("round trip changed personality: %+v", got)
	}
	// Programs generated from both must be identical.
	a, b := MustGenerate(orig), MustGenerate(got)
	if len(a.Blocks) != len(b.Blocks) {
		t.Error("round-tripped personality generates a different program")
	}
}

func TestPersonalityFromJSONMinimal(t *testing.T) {
	p, err := PersonalityFromJSON([]byte(`{"Name":"mine","Seed":7,"TargetBlocks":50}`))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "mine" || len(prog.Blocks) == 0 {
		t.Error("minimal personality did not generate")
	}
}

func TestPersonalityFromJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{{{`,
		"unknown field":  `{"Name":"x","Bogus":1}`,
		"missing name":   `{"Seed":1}`,
		"bad fraction":   `{"Name":"x","LoadFrac":1.5}`,
		"mem crowds out": `{"Name":"x","LoadFrac":0.6,"StoreFrac":0.5}`,
		"bad bias":       `{"Name":"x","BiasChoices":[2.0]}`,
		"bad loop range": `{"Name":"x","LoopTripMin":10,"LoopTripMax":5}`,
		"negative":       `{"Name":"x","TargetBlocks":-1}`,
	}
	for what, in := range cases {
		if _, err := PersonalityFromJSON([]byte(in)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestPersonalityJSONIsEditableTemplate(t *testing.T) {
	data, err := Benchmarks()[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, field := range []string{"Name", "TargetBlocks", "LoadFrac", "Phases", "HotBytes"} {
		if !strings.Contains(s, field) {
			t.Errorf("template missing field %s:\n%s", field, s)
		}
	}
}
