package program

import (
	"math"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Executor functionally executes a Program, producing the committed
// dynamic instruction stream (a trace.Source). Execution is fully
// deterministic for a given (program, seed) pair: branch directions,
// indirect targets and random addresses are all derived from counted
// hashes, never from shared global state.
//
// The executor also resolves register dataflow into RAW dependency
// distances (DynInst.DepDist) via last-writer tracking, so downstream
// consumers — profiler and timing core alike — never need register
// semantics.
type Executor struct {
	prog *Program
	seed uint64

	cur int // current block ID
	idx int // next instruction index within the block
	seq uint64

	// lastWriter[r] is 1 + the sequence number of the most recent
	// instruction that wrote register r; 0 means never written.
	lastWriter [isa.NumRegs]uint64

	branches []branchState // per block
	mems     []memState    // per static instruction (flat index)
	instBase []int         // flat index of instruction 0 of each block
}

type branchState struct {
	iter       int    // BranchLoop: iterations since last exit
	patternPos int    // BranchPattern: position in the pattern
	draws      uint64 // BranchBiased / BranchIndirect: decision counter
	rngSeed    uint64 // per-branch hash seed
}

type memState struct {
	pos   uint64 // MemStride: current offset
	draws uint64 // MemRandom: access counter
}

// NewExecutor returns an executor positioned at the program entry.
// The program must have been validated (or at least laid out).
func NewExecutor(p *Program, seed uint64) *Executor {
	p.Layout()
	e := &Executor{
		prog:     p,
		seed:     seed,
		cur:      p.Entry,
		branches: make([]branchState, len(p.Blocks)),
		instBase: make([]int, len(p.Blocks)),
	}
	flat := 0
	for i, b := range p.Blocks {
		e.instBase[i] = flat
		flat += len(b.Instrs)
		e.branches[i].rngSeed = mix(seed, uint64(i)*0x9e3779b97f4a7c15+1)
	}
	e.mems = make([]memState, flat)
	return e
}

// mix is a splitmix64-style hash combiner used for all counted
// pseudo-random decisions.
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashFloat maps a counted hash to a uniform float64 in [0,1).
func hashFloat(a, b uint64) float64 {
	return float64(mix(a, b)>>11) / (1 << 53)
}

// Seq returns the number of instructions emitted so far.
func (e *Executor) Seq() uint64 { return e.seq }

// Next implements trace.Source. A synthetic program never terminates,
// so Next always returns true; callers bound runs with
// trace.LimitSource or an explicit count.
func (e *Executor) Next(out *trace.DynInst) bool {
	b := e.prog.Blocks[e.cur]
	in := &b.Instrs[e.idx]

	out.Seq = e.seq
	out.PC = e.prog.PC(e.cur, e.idx)
	out.Class = in.Class
	out.BlockID = int32(e.cur)
	out.Index = int16(e.idx)
	out.Flags = 0
	out.Taken = false
	out.EffAddr = 0

	// Dataflow: RAW distance per source operand.
	out.NumSrcs = uint8(len(in.Srcs))
	for i := range out.DepDist {
		out.DepDist[i] = 0
	}
	for i, r := range in.Srcs {
		if r == isa.ZeroReg {
			continue
		}
		if w := e.lastWriter[r]; w != 0 {
			d := e.seq - (w - 1)
			if d > math.MaxUint32 {
				d = math.MaxUint32
			}
			out.DepDist[i] = uint32(d)
		}
	}
	out.WAWDist = 0
	if in.Class.HasDest() && in.Dst != isa.ZeroReg {
		if w := e.lastWriter[in.Dst]; w != 0 {
			d := e.seq - (w - 1)
			if d > math.MaxUint32 {
				d = math.MaxUint32
			}
			out.WAWDist = uint32(d)
		}
		e.lastWriter[in.Dst] = e.seq + 1
	}

	// Effective address for memory operations.
	if in.Mem != nil {
		out.EffAddr = e.genAddr(in)
	}

	// Control flow: advance to the next instruction / block.
	lastInBlock := e.idx == len(b.Instrs)-1
	if !lastInBlock {
		e.idx++
		out.NextPC = e.prog.PC(e.cur, e.idx)
	} else if b.Branch == nil {
		e.cur = b.FallTarget
		e.idx = 0
		out.NextPC = e.prog.PC(e.cur, 0)
	} else {
		next := e.evalBranch(b, out)
		e.cur = next
		e.idx = 0
		out.NextPC = e.prog.PC(next, 0)
	}

	e.seq++
	return true
}

// evalBranch decides the direction/target of block b's terminating
// branch, records it in out, and returns the successor block.
func (e *Executor) evalBranch(b *Block, out *trace.DynInst) int {
	st := &e.branches[b.ID]
	sp := b.Branch
	switch sp.Kind {
	case BranchLoop:
		st.iter++
		if st.iter < sp.Count {
			out.Taken = true
			return b.TakenTarget
		}
		st.iter = 0
		return b.FallTarget
	case BranchBiased:
		st.draws++
		if hashFloat(st.rngSeed, st.draws) < sp.P {
			out.Taken = true
			return b.TakenTarget
		}
		return b.FallTarget
	case BranchPattern:
		taken := (sp.Pattern>>uint(st.patternPos))&1 == 1
		st.patternPos++
		if st.patternPos >= sp.PatternLen {
			st.patternPos = 0
		}
		if taken {
			out.Taken = true
			return b.TakenTarget
		}
		return b.FallTarget
	case BranchIndirect:
		out.Taken = true // indirect branches always redirect fetch
		st.draws++
		// Zipf-ish skew: square the uniform variate so early targets
		// dominate, as switch statements typically have hot cases.
		u := hashFloat(st.rngSeed, st.draws)
		i := int(u * u * float64(len(sp.Targets)))
		if i >= len(sp.Targets) {
			i = len(sp.Targets) - 1
		}
		return sp.Targets[i]
	default:
		panic("program: unknown branch kind")
	}
}

// genAddr produces the effective address of a memory instruction.
func (e *Executor) genAddr(in *Inst) uint64 {
	// Identify the static instruction by pointer-independent flat index:
	// derive it from the current position, which is cheap and exact.
	key := e.instBase[e.cur] + e.idx
	st := &e.mems[key]
	m := in.Mem
	switch m.Kind {
	case MemStride:
		a := m.Base + st.pos
		st.pos += m.Stride
		if st.pos >= m.Size {
			st.pos = 0
		}
		return a
	case MemRandom:
		st.draws++
		off := mix(e.seed^uint64(key)<<20, st.draws) % max64(m.Size, 8)
		return m.Base + off&^7
	case MemStack:
		st.draws++
		// A handful of hot slots.
		slot := mix(uint64(key), st.draws) % max64(m.Size/8, 1)
		return m.Base + slot*8
	default:
		panic("program: unknown mem kind")
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// NextBatch implements trace.BatchSource. A synthetic program never
// terminates, so every batch comes back full; callers bound runs with
// trace.LimitSource (whose batch path clips the final chunk) or an
// explicit count. Next fully initialises every field of each record, so
// recycled chunk buffers never leak stale data.
func (e *Executor) NextBatch(dst []trace.DynInst) int {
	for i := range dst {
		e.Next(&dst[i])
	}
	return len(dst)
}

// Skip fast-forwards the executor by n instructions without producing
// output records (used to position phase windows).
func (e *Executor) Skip(n uint64) {
	var d trace.DynInst
	for i := uint64(0); i < n; i++ {
		e.Next(&d)
	}
}

// Run collects the next n instructions into a slice.
func (e *Executor) Run(n int) []trace.DynInst {
	out := make([]trace.DynInst, n)
	for i := range out {
		e.Next(&out[i])
	}
	return out
}

var (
	_ trace.Source      = (*Executor)(nil)
	_ trace.BatchSource = (*Executor)(nil)
)
