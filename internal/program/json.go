package program

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// PersonalityFromJSON decodes a workload personality from JSON, so
// users can define custom benchmarks without recompiling (the statsim
// CLI's -workload-file flag). Unknown fields are rejected to catch
// typos; zero-valued fields fall back to the generator defaults.
func PersonalityFromJSON(data []byte) (Personality, error) {
	var p Personality
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Personality{}, fmt.Errorf("program: decoding personality: %w", err)
	}
	if p.Name == "" {
		return Personality{}, fmt.Errorf("program: personality requires a name")
	}
	if err := p.check(); err != nil {
		return Personality{}, err
	}
	return p, nil
}

// JSON encodes the personality, producing a template users can edit.
func (p Personality) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// check validates user-supplied parameter ranges; the generator's
// defaults handle zeros, so only actively harmful values are rejected.
func (p Personality) check() error {
	frac := func(v float64, what string) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("program: %s = %v outside [0,1]", what, v)
		}
		return nil
	}
	for _, f := range []struct {
		v    float64
		what string
	}{
		{p.LoadFrac, "LoadFrac"}, {p.StoreFrac, "StoreFrac"},
		{p.IntMulFrac, "IntMulFrac"}, {p.IntDivFrac, "IntDivFrac"},
		{p.FPFrac, "FPFrac"}, {p.LocalDepFrac, "LocalDepFrac"},
		{p.GlobalWriteFrac, "GlobalWriteFrac"}, {p.PatternFrac, "PatternFrac"},
		{p.StackFrac, "StackFrac"}, {p.StrideFrac, "StrideFrac"}, {p.HotFrac, "HotFrac"},
	} {
		if err := frac(f.v, f.what); err != nil {
			return err
		}
	}
	if p.LoadFrac+p.StoreFrac > 0.9 {
		return fmt.Errorf("program: LoadFrac+StoreFrac = %v leaves no room for computation",
			p.LoadFrac+p.StoreFrac)
	}
	for _, b := range p.BiasChoices {
		if b < 0 || b > 1 {
			return fmt.Errorf("program: bias choice %v outside [0,1]", b)
		}
	}
	if p.TargetBlocks < 0 || p.Phases < 0 || p.MaxDepth < 0 {
		return fmt.Errorf("program: negative structural parameter")
	}
	if p.LoopTripMin < 0 || (p.LoopTripMax != 0 && p.LoopTripMax < p.LoopTripMin) {
		return fmt.Errorf("program: loop trip range [%d,%d] invalid", p.LoopTripMin, p.LoopTripMax)
	}
	return nil
}
