package core

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sfg"
	"repro/internal/synth"
	"repro/internal/trace"
)

// This file threads the observability layer through the pipeline.
// Every plain entry point (Profile, StatSim, ...) delegates here with a
// nil recorder; a nil *obs.Recorder costs a pointer comparison per
// stage boundary, so the un-traced paths stay on the fast path (see the
// overhead guard test in the repo root).

// ProfileTraced is Profile with span recording: one StageProfile span
// covering the whole statistical profiling pass, attributed with the
// profiled stream length.
func ProfileTraced(rec *obs.Recorder, cfg cpu.Config, src trace.Source, opts ProfileOptions) (*sfg.Graph, error) {
	sp := rec.Start(obs.StageProfile)
	g, err := Profile(cfg, src, opts)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.EndInstructions(g.TotalInstructions)
	return g, nil
}

// ReferenceTraced is Reference with a StageReference span.
func ReferenceTraced(rec *obs.Recorder, cfg cpu.Config, src trace.Source) Metrics {
	sp := rec.Start(obs.StageReference)
	m := Reference(cfg, src)
	sp.EndInstructions(m.Instructions)
	return m
}

// StatSimTraced is StatSim with per-stage spans: StageReduce around
// graph reduction, and — because the synthetic trace is generated
// lazily, interleaved with simulation — a wall-clock StageSimulate span
// from which the time spent inside the generator is carved out into a
// StageGenerate span. The two are additive: generate + simulate = the
// wall time of the combined phase. With a nil recorder the trace source
// is not wrapped and the computation is identical to StatSim.
func StatSimTraced(rec *obs.Recorder, cfg cpu.Config, g *sfg.Graph, r uint64, seed uint64) (Metrics, error) {
	if rec == nil {
		return StatSim(cfg, g, r, seed)
	}
	reduceSp := rec.Start(obs.StageReduce)
	red, err := synth.Reduce(g, synth.Options{R: r, Seed: seed})
	if err != nil {
		reduceSp.End()
		return Metrics{}, err
	}
	reduceSp.End()

	timed := obs.NewTimedSource(red.NewTrace(seed))
	start := rec.Offset()
	t0 := time.Now()
	m := SimulateTrace(cfg, timed)
	total := time.Since(t0)

	// Make the stages additive: the generator's time is carved out of
	// the combined wall-clock interval, leaving pure simulation time.
	gen := timed.Span(obs.StageGenerate)
	gen.StartOffsetS = start
	rec.Record(gen)
	rec.Record(obs.SpanData{
		Name:         obs.StageSimulate,
		StartOffsetS: start,
		DurationS:    (total - timed.Duration()).Seconds(),
		Instructions: m.Instructions,
	})
	return m, nil
}

// SimulateTraceTraced is SimulateTrace with a StageSimulate span.
func SimulateTraceTraced(rec *obs.Recorder, cfg cpu.Config, src trace.Source) Metrics {
	sp := rec.Start(obs.StageSimulate)
	m := SimulateTrace(cfg, src)
	sp.EndInstructions(m.Instructions)
	return m
}

// ManifestMetrics converts final metrics into the manifest wire form.
func ManifestMetrics(m Metrics) *obs.ManifestMetrics {
	return &obs.ManifestMetrics{
		IPC:              m.IPC(),
		EPC:              m.EPC(),
		EDP:              m.EDP(),
		Instructions:     m.Instructions,
		Cycles:           m.Cycles,
		MispredictsPerKI: m.Branch.MispredictsPerKI(m.Instructions),
		L1DMissRate:      m.Cache.L1DMissRate(),
		L2DMissRate:      m.Cache.L2DMissRate(),
		L1IMissRate:      m.Cache.L1IMissRate(),
		L2IMissRate:      m.Cache.L2IMissRate(),
	}
}
