package core

import (
	"repro/internal/cpu"
	"repro/internal/lockstep"
	"repro/internal/power"
	"repro/internal/sfg"
	"repro/internal/synth"
)

// SimulateBatch is the multi-configuration form of StatSim: it reduces
// the profile and generates the synthetic trace ONCE, then drives one
// trace-driven pipeline per configuration over that single stream in
// lockstep (internal/lockstep). Results come back in cfgs order and are
// byte-identical to calling StatSim(cfg, g, r, seed) per configuration
// — the trace is a pure function of (g, r, seed) and each pipeline's
// timing is a pure function of its configuration and the stream bytes —
// while the reduction + generation cost is paid once per batch instead
// of once per point. A batch of one degrades to exactly the StatSim
// path.
//
// Like StatSim fan-outs, concurrent batches over one shared graph
// require the graph to be frozen (sfg.Graph.Freeze) first; the service
// layer does this before dispatch.
func SimulateBatch(cfgs []cpu.Config, g *sfg.Graph, r, seed uint64) ([]Metrics, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	red, err := synth.Reduce(g, synth.Options{R: r, Seed: seed})
	if err != nil {
		return nil, err
	}
	results := lockstep.Simulate(cfgs, red.NewTrace(seed))
	out := make([]Metrics, len(cfgs))
	for i, res := range results {
		out[i] = Metrics{Result: res, Power: power.Estimate(cfgs[i], res)}
	}
	return out, nil
}
