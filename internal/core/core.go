// Package core orchestrates the paper's three-step statistical
// simulation methodology (Figure 1) end to end:
//
//  1. statistical profiling of a workload into a statistical flow graph
//     (internal/sfg),
//  2. synthetic trace generation from the reduced graph
//     (internal/synth),
//  3. synthetic trace simulation on the shared superscalar timing core
//     (internal/cpu), plus Wattch-style power estimation
//     (internal/power).
//
// It also wraps the execution-driven reference simulation and the ten
// benchmark workloads, keeping the microarchitecture configuration
// consistent between profiling and simulation (the locality structures
// profiled must match the ones the timing model charges for, §2.1.2).
package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/sfg"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Metrics bundles the outputs the evaluation cares about: timing,
// branch/cache behaviour, and power.
type Metrics struct {
	cpu.Result
	Power power.Breakdown
}

// IPC returns instructions per cycle.
func (m Metrics) IPC() float64 { return m.Result.IPC() }

// EPC returns energy per cycle (average power) in Watts.
func (m Metrics) EPC() float64 { return m.Power.EPC() }

// CPI returns cycles per instruction (0 when nothing committed). CPI is
// the additive form of the timing result: equal-length samples combine
// by plain averaging, which is what stratified estimators (the adaptive
// fidelity engine, the Fig. 8 SimPoint scenario) need — IPC does not
// average linearly.
func (m Metrics) CPI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instructions)
}

// EPI returns energy per instruction (EPC x CPI) in Watt-cycles per
// instruction — like CPI, additive across equal-length samples.
func (m Metrics) EPI() float64 { return m.EPC() * m.CPI() }

// EDP returns the energy-delay product EPC/IPC² (§4.2.3).
func (m Metrics) EDP() float64 { return power.EDP(m.EPC(), m.IPC()) }

// Reference runs execution-driven simulation (the paper's EDS
// baseline) of src on cfg and estimates power from the activity.
func Reference(cfg cpu.Config, src trace.Source) Metrics {
	res := cpu.NewExecutionDriven(cfg, src).Run()
	return Metrics{Result: res, Power: power.Estimate(cfg, res)}
}

// ReferenceWarmed runs execution-driven simulation starting from
// functionally pre-warmed locality state (cpu.WarmState) — the sampled-
// simulation path, where caches and predictors carry the whole stream's
// history but only the sample window pays detailed-simulation cost. ws
// is consumed: the pipeline mutates it.
func ReferenceWarmed(cfg cpu.Config, ws *cpu.WarmState, src trace.Source) Metrics {
	res := cpu.NewExecutionDrivenWarmed(cfg, src, ws).Run()
	return Metrics{Result: res, Power: power.Estimate(cfg, res)}
}

// SimulateTrace runs the trace-driven simulator on an already-generated
// synthetic trace.
func SimulateTrace(cfg cpu.Config, src trace.Source) Metrics {
	res := cpu.NewTraceDriven(cfg, src).Run()
	return Metrics{Result: res, Power: power.Estimate(cfg, res)}
}

// ProfileOptions configures statistical profiling; zero values follow
// the paper (order-1 SFG, delayed update with a FIFO the size of the
// IFQ, Table 2 locality structures taken from the CPU config).
type ProfileOptions struct {
	K               int
	ImmediateUpdate bool
	FIFOSize        int    // defaults to cfg.IFQSize
	Warmup          uint64 // leading instructions that only warm locality state

	// Shards > 1 enables parallel sharded profiling (sfg.ProfileSharded):
	// the stream is chopped into ShardInterval-length slabs profiled
	// concurrently and merged deterministically. Sequential profiling
	// (Shards <= 1) remains the default and the golden reference.
	Shards        int
	ShardInterval uint64 // slab length; 0 = sfg.DefaultShardInterval
	ShardWarmup   uint64 // per-shard warm window; 0 = ShardInterval
}

// Profile measures the statistical profile of src under the locality
// structures of cfg.
func Profile(cfg cpu.Config, src trace.Source, opts ProfileOptions) (*sfg.Graph, error) {
	fifo := opts.FIFOSize
	if fifo == 0 {
		fifo = cfg.IFQSize
	}
	sopts := sfg.Options{
		K:               opts.K,
		Hier:            cfg.Hier,
		Bpred:           cfg.Bpred,
		ImmediateUpdate: opts.ImmediateUpdate,
		FIFOSize:        fifo,
		Warmup:          opts.Warmup,
	}
	if opts.Shards > 1 {
		return sfg.ProfileSharded(src, sopts, sfg.ShardOptions{
			Shards:   opts.Shards,
			Interval: opts.ShardInterval,
			Warmup:   opts.ShardWarmup,
		})
	}
	return sfg.Profile(src, sopts)
}

// StatSim runs the full statistical simulation pipeline: reduce the
// profile by factor R, generate a synthetic trace with the given seed,
// and simulate it on cfg. The same profile can be reused across many
// (cfg, R, seed) combinations — that reuse is what makes design-space
// exploration cheap (§4.6), as long as cache/predictor structures stay
// the ones that were profiled.
func StatSim(cfg cpu.Config, g *sfg.Graph, r uint64, seed uint64) (Metrics, error) {
	red, err := synth.Reduce(g, synth.Options{R: r, Seed: seed})
	if err != nil {
		return Metrics{}, err
	}
	return SimulateTrace(cfg, red.NewTrace(seed)), nil
}

// ReductionFor picks a trace reduction factor R that yields a synthetic
// trace of about target instructions from the given profile, clamped to
// at least 1.
func ReductionFor(g *sfg.Graph, target uint64) uint64 {
	if target == 0 || g.TotalInstructions == 0 {
		return 1
	}
	r := g.TotalInstructions / target
	if r < 1 {
		r = 1
	}
	return r
}

// Workload is a loaded benchmark: a generated program plus its
// personality.
type Workload struct {
	Name string
	Pers program.Personality
	Prog *program.Program
}

// Workloads generates all ten SPECint stand-in benchmarks (Table 1).
func Workloads() []Workload {
	ps := program.Benchmarks()
	ws := make([]Workload, len(ps))
	for i, p := range ps {
		ws[i] = Workload{Name: p.Name, Pers: p, Prog: program.MustGenerate(p)}
	}
	return ws
}

// LoadWorkload generates one benchmark by name.
func LoadWorkload(name string) (Workload, error) {
	p, err := program.ByName(name)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: p.Name, Pers: p, Prog: program.MustGenerate(p)}, nil
}

// WorkloadFromPersonality generates a workload from a custom
// personality (e.g. one loaded from JSON via the statsim CLI).
func WorkloadFromPersonality(p program.Personality) (Workload, error) {
	prog, err := program.Generate(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: p.Name, Pers: p, Prog: prog}, nil
}

// Stream returns the committed dynamic instruction stream of the
// workload: skip instructions are fast-forwarded (for phase windows),
// then n instructions are delivered.
func (w Workload) Stream(seed, skip, n uint64) trace.Source {
	ex := program.NewExecutor(w.Prog, seed)
	if skip > 0 {
		ex.Skip(skip)
	}
	return &trace.LimitSource{Src: ex, N: n}
}

// Validate sanity-checks a workload.
func (w Workload) Validate() error {
	if w.Prog == nil {
		return fmt.Errorf("core: workload %q has no program", w.Name)
	}
	return w.Prog.Validate()
}
