package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
)

func TestWorkloadsLoad(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("want 10 workloads, got %d", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if _, err := LoadWorkload("gzip"); err != nil {
		t.Error(err)
	}
	if _, err := LoadWorkload("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestReductionFor(t *testing.T) {
	w, _ := LoadWorkload("vpr")
	g, err := Profile(cpu.DefaultConfig(), w.Stream(1, 0, 50_000), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ReductionFor(g, 5_000)
	if r < 8 || r > 12 {
		t.Errorf("R = %d, want ~10 for 50k->5k", r)
	}
	if ReductionFor(g, 0) != 1 {
		t.Error("zero target should clamp to 1")
	}
}

func TestFullPipelineAccuracy(t *testing.T) {
	// The framework's headline: statistical simulation predicts the
	// IPC and EPC of execution-driven simulation of a real workload.
	w, err := LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	const n = 400_000
	eds := Reference(cfg, w.Stream(1, 0, n))

	g, err := Profile(cfg, w.Stream(1, 0, n), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := StatSim(cfg, g, ReductionFor(g, 80_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	ipcErr := stats.AbsError(ss.IPC(), eds.IPC())
	epcErr := stats.AbsError(ss.EPC(), eds.EPC())
	t.Logf("gzip: EDS IPC %.3f EPC %.2fW | SS IPC %.3f EPC %.2fW | err %.1f%% / %.1f%%",
		eds.IPC(), eds.EPC(), ss.IPC(), ss.EPC(), 100*ipcErr, 100*epcErr)
	if ipcErr > 0.25 {
		t.Errorf("IPC error %.1f%% too large for the full pipeline", 100*ipcErr)
	}
	if epcErr > 0.20 {
		t.Errorf("EPC error %.1f%% too large", 100*epcErr)
	}
}

func TestInOrderPipelineAccuracy(t *testing.T) {
	// The §2.1.1 extension: with WAW distances profiled and consumed,
	// statistical simulation stays accurate for in-order machines too.
	w, err := LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.InOrder = true
	cfg.IssueWidth = 4
	cfg.DecodeWidth = 4
	cfg.CommitWidth = 4
	const n = 250_000
	eds := Reference(cfg, w.Stream(1, 0, n))
	g, err := Profile(cfg, w.Stream(1, 0, n), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := StatSim(cfg, g, ReductionFor(g, 50_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if eds.IPC() >= 2.5 {
		t.Errorf("in-order 4-wide IPC %.3f suspiciously high", eds.IPC())
	}
	if e := stats.AbsError(ss.IPC(), eds.IPC()); e > 0.20 {
		t.Errorf("in-order statistical simulation IPC error %.1f%% (EDS %.3f, SS %.3f)",
			100*e, eds.IPC(), ss.IPC())
	}
}

func TestStatSimBadR(t *testing.T) {
	w, _ := LoadWorkload("vpr")
	cfg := cpu.DefaultConfig()
	g, err := Profile(cfg, w.Stream(1, 0, 20_000), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StatSim(cfg, g, 1<<60, 1); err == nil {
		t.Error("absurd R accepted")
	}
}

func TestMetricsDerived(t *testing.T) {
	w, _ := LoadWorkload("vpr")
	m := Reference(cpu.DefaultConfig(), w.Stream(2, 0, 30_000))
	if m.IPC() <= 0 || m.EPC() <= 0 || m.EDP() <= 0 {
		t.Errorf("metrics not positive: ipc=%v epc=%v edp=%v", m.IPC(), m.EPC(), m.EDP())
	}
	wantEDP := m.EPC() / (m.IPC() * m.IPC())
	if diff := m.EDP() - wantEDP; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EDP = %v, want %v", m.EDP(), wantEDP)
	}
}
