package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cpu"
	"repro/internal/obs"
)

// TestTracedMatchesUntraced pins the central obs contract: threading a
// recorder through the pipeline observes timings but never perturbs
// the simulation — traced and untraced runs yield byte-identical
// metrics.
func TestTracedMatchesUntraced(t *testing.T) {
	w, err := LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	const n = 20_000

	rec := obs.New()
	gTraced, err := ProfileTraced(rec, cfg, w.Stream(1, 0, n), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	gPlain, err := Profile(cfg, w.Stream(1, 0, n), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	r := ReductionFor(gPlain, 5_000)
	mTraced, err := StatSimTraced(rec, cfg, gTraced, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	mPlain, err := StatSim(cfg, gPlain, r, 1)
	if err != nil {
		t.Fatal(err)
	}

	bt, _ := json.Marshal(mTraced)
	bp, _ := json.Marshal(mPlain)
	if !bytes.Equal(bt, bp) {
		t.Fatalf("traced and untraced metrics differ:\n%s\n%s", bt, bp)
	}

	totals := rec.StageTotals()
	for _, stage := range []string{obs.StageProfile, obs.StageReduce, obs.StageGenerate, obs.StageSimulate} {
		if _, ok := totals[stage]; !ok {
			t.Errorf("stage %q missing from recorder (have %v)", stage, totals)
		}
	}
	if got := totals[obs.StageProfile].Instructions; got != gTraced.TotalInstructions {
		t.Errorf("profile span instructions = %d, want %d", got, gTraced.TotalInstructions)
	}
	if got := totals[obs.StageSimulate].Instructions; got != mTraced.Instructions {
		t.Errorf("simulate span instructions = %d, want %d", got, mTraced.Instructions)
	}
	if totals[obs.StageGenerate].Instructions == 0 {
		t.Error("generate span carries no instructions")
	}
}

// TestTracedNilRecorder pins that every traced entry point accepts a
// nil recorder (the disabled fast path the CLI default uses).
func TestTracedNilRecorder(t *testing.T) {
	w, err := LoadWorkload("vpr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	g, err := ProfileTraced(nil, cfg, w.Stream(1, 0, 10_000), ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StatSimTraced(nil, cfg, g, ReductionFor(g, 2_000), 1); err != nil {
		t.Fatal(err)
	}
	m := ReferenceTraced(nil, cfg, w.Stream(1, 0, 5_000))
	if m.Instructions == 0 {
		t.Fatal("reference simulated nothing")
	}
}

// TestManifestMetrics pins the manifest wire conversion.
func TestManifestMetrics(t *testing.T) {
	w, err := LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	m := Reference(cpu.DefaultConfig(), w.Stream(1, 0, 10_000))
	mm := ManifestMetrics(m)
	if mm.IPC != m.IPC() || mm.Instructions != m.Instructions || mm.Cycles != m.Cycles {
		t.Fatalf("manifest metrics mismatch: %+v vs IPC=%v insts=%d cycles=%d",
			mm, m.IPC(), m.Instructions, m.Cycles)
	}
	if mm.L1DMissRate <= 0 || mm.L1DMissRate >= 1 {
		t.Fatalf("implausible L1D miss rate %v", mm.L1DMissRate)
	}
}
