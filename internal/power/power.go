// Package power implements a Wattch-style architectural power model
// (Brooks et al., ISCA 2000), as used by the paper to estimate energy
// per cycle (EPC) from statistical simulation (§3: Wattch v1.02,
// 0.18 µm, 1.2 GHz, base activity factor 0.5, aggressive cc3 clock
// gating).
//
// Like Wattch, the model assigns each microarchitectural unit a maximum
// power that scales with its configured size and port count, then
// applies conditional clocking: a unit used for a fraction x of cycles
// consumes x of its maximum power, and an unused unit still consumes
// 10% (cc3). The absolute watt values are representative rather than
// calibrated — the evaluation uses EPC only through relative errors and
// trends, which depend on the scaling behaviour, not the constants.
package power

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cpu"
)

// Unit identifies one power-modelled structure.
type Unit int

const (
	UnitFetch Unit = iota // fetch logic + IFQ
	UnitICache
	UnitBpred
	UnitDispatch // decode/rename
	UnitIssue    // selection logic
	UnitRUU      // window storage/CAM
	UnitLSQ
	UnitRegfile
	UnitIntALU
	UnitIntMul
	UnitFPU
	UnitDCache
	UnitL2
	UnitClock
	NumUnits
)

var unitNames = [NumUnits]string{
	"fetch", "icache", "bpred", "dispatch", "issue", "ruu", "lsq",
	"regfile", "intalu", "intmul", "fpu", "dcache", "l2", "clock",
}

// String returns the unit's short name.
func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return "unit?"
}

// idleFraction is the cc3 floor: an unused clock-gated unit still burns
// this fraction of its maximum power.
const idleFraction = 0.10

// Breakdown is the per-unit power result of one simulated run.
type Breakdown struct {
	// Watts[u] is the average power of unit u over the run.
	Watts [NumUnits]float64
	// MaxWatts[u] is the configured peak power of unit u.
	MaxWatts [NumUnits]float64
}

// EPC returns total average power — the paper's "energy per cycle"
// metric (Fig. 6 right, reported in Watt/cycle at fixed frequency).
func (b Breakdown) EPC() float64 {
	var t float64
	for _, w := range b.Watts {
		t += w
	}
	return t
}

// String renders the per-unit breakdown as a fixed-width table, units
// ordered front-end to back-end.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %9s %9s %6s\n", "unit", "watts", "peak", "util")
	for u := Unit(0); u < NumUnits; u++ {
		util := 0.0
		if b.MaxWatts[u] > 0 {
			util = (b.Watts[u]/b.MaxWatts[u] - idleFraction) / (1 - idleFraction)
			if util < 0 {
				util = 0
			}
		}
		fmt.Fprintf(&sb, "%-9s %9.2f %9.2f %5.1f%%\n", u, b.Watts[u], b.MaxWatts[u], 100*util)
	}
	fmt.Fprintf(&sb, "%-9s %9.2f\n", "total", b.EPC())
	return sb.String()
}

// EDP returns the energy-delay product EPC * CPI^2 = EPC / IPC^2 (§4.2.3).
func EDP(epc, ipc float64) float64 {
	if ipc == 0 {
		return math.Inf(1)
	}
	return epc / (ipc * ipc)
}

// maxPowers derives per-unit peak powers from the machine configuration.
// Scaling follows Wattch's array models to first order: power grows
// with the square root of capacity and with port count.
func maxPowers(cfg cpu.Config) [NumUnits]float64 {
	sq := math.Sqrt
	var m [NumUnits]float64
	m[UnitFetch] = 1.5 + 1.5*sq(float64(cfg.IFQSize)/32)
	m[UnitICache] = 3.0 * sq(float64(cfg.Hier.L1I.SizeBytes)/float64(8<<10))
	predBits := float64(cfg.Bpred.BimodalEntries + cfg.Bpred.PHTEntries +
		cfg.Bpred.MetaEntries + 16*cfg.Bpred.LocalHistories + 64*cfg.Bpred.BTBEntries)
	baseBits := float64(8<<10 + 8<<10 + 8<<10 + 16*(8<<10) + 64*512)
	m[UnitBpred] = 2.5 * sq(predBits/baseBits)
	m[UnitDispatch] = 3.5 * float64(cfg.DecodeWidth) / 8
	m[UnitIssue] = 2.5 * float64(cfg.IssueWidth) / 8
	m[UnitRUU] = 9.0 * sq(float64(cfg.RUUSize)/128) * sq(float64(cfg.IssueWidth)/8)
	m[UnitLSQ] = 3.5 * sq(float64(cfg.LSQSize)/32) * sq(float64(cfg.LoadStore)/4)
	m[UnitRegfile] = 7.0 * sq(float64(cfg.DecodeWidth)/8)
	m[UnitIntALU] = 1.0 * float64(cfg.IntALUs)
	m[UnitIntMul] = 1.0 * float64(cfg.IntMulDivs)
	m[UnitFPU] = 1.5 * float64(cfg.FPAdders+cfg.FPMulDivs)
	m[UnitDCache] = 8.0 * sq(float64(cfg.Hier.L1D.SizeBytes)/float64(16<<10)) *
		sq(float64(cfg.LoadStore)/4)
	m[UnitL2] = 12.0 * sq(float64(cfg.Hier.L2.SizeBytes)/float64(1<<20))
	// The clock tree scales with everything it feeds (~30% of chip
	// power in Wattch-era designs).
	var sum float64
	for u := UnitFetch; u < UnitClock; u++ {
		sum += m[u]
	}
	m[UnitClock] = 0.35 * sum
	return m
}

// Estimate converts a run's activity counters into per-unit average
// power under the cc3 model: P = Pmax * (idle + (1-idle)*x), where x is
// the unit's utilisation (accesses per cycle per port, clamped to 1).
func Estimate(cfg cpu.Config, res cpu.Result) Breakdown {
	var b Breakdown
	b.MaxWatts = maxPowers(cfg)
	if res.Cycles == 0 {
		return b
	}
	cyc := float64(res.Cycles)
	util := func(accesses uint64, ports int) float64 {
		if ports < 1 {
			ports = 1
		}
		x := float64(accesses) / (cyc * float64(ports))
		if x > 1 {
			x = 1
		}
		return x
	}
	a := res.Act
	var x [NumUnits]float64
	x[UnitFetch] = util(a.Fetched, cfg.FetchWidth())
	x[UnitICache] = util(a.ICacheAccesses, cfg.FetchWidth())
	x[UnitBpred] = util(a.BpredLookups+a.BpredUpdates+a.BTBAccesses, 3)
	x[UnitDispatch] = util(a.Dispatched, cfg.DecodeWidth)
	x[UnitIssue] = util(a.Issued, cfg.IssueWidth)
	x[UnitRUU] = util(a.Dispatched+a.Issued+a.Committed,
		cfg.DecodeWidth+cfg.IssueWidth+cfg.CommitWidth)
	x[UnitLSQ] = util(a.LoadOps+a.StoreOps, cfg.LoadStore)
	x[UnitRegfile] = util(a.RegReads+a.RegWrites, 3*cfg.DecodeWidth)
	x[UnitIntALU] = util(a.IntALUOps, cfg.IntALUs)
	x[UnitIntMul] = util(a.IntMulOps, cfg.IntMulDivs)
	x[UnitFPU] = util(a.FPOps, cfg.FPAdders+cfg.FPMulDivs)
	x[UnitDCache] = util(a.DCacheAccesses, cfg.LoadStore)
	x[UnitL2] = util(a.L2Accesses, 1)
	// Under cc3, gating a unit gates its clock subtree too: the clock
	// network's activity is the capacitance-weighted activity of what it
	// feeds (plus the global spine, which is never gated and is covered
	// by the 10% idle floor).
	var wsum, wact float64
	for u := UnitFetch; u < UnitClock; u++ {
		wsum += b.MaxWatts[u]
		wact += b.MaxWatts[u] * x[u]
	}
	if wsum > 0 {
		x[UnitClock] = wact / wsum
	}

	for u := Unit(0); u < NumUnits; u++ {
		b.Watts[u] = b.MaxWatts[u] * (idleFraction + (1-idleFraction)*x[u])
	}
	return b
}
