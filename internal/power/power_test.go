package power

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

func baseResult(cycles uint64) cpu.Result {
	r := cpu.Result{Cycles: cycles, Instructions: cycles * 2}
	r.Act = cpu.Activity{
		Fetched:        cycles * 4,
		Dispatched:     cycles * 2,
		Issued:         cycles * 2,
		Committed:      cycles * 2,
		ICacheAccesses: cycles * 4,
		DCacheAccesses: cycles,
		L2Accesses:     cycles / 10,
		BpredLookups:   cycles / 4,
		BpredUpdates:   cycles / 4,
		RegReads:       cycles * 4,
		RegWrites:      cycles * 2,
		IntALUOps:      cycles,
		LoadOps:        cycles / 2,
		StoreOps:       cycles / 4,
	}
	return r
}

func TestEPCPositiveAndBounded(t *testing.T) {
	cfg := cpu.DefaultConfig()
	b := Estimate(cfg, baseResult(100000))
	epc := b.EPC()
	var peak float64
	for _, m := range b.MaxWatts {
		peak += m
	}
	if epc <= 0 {
		t.Fatal("EPC must be positive")
	}
	if epc > peak {
		t.Fatalf("EPC %.1f exceeds peak %.1f", epc, peak)
	}
	// With cc3, even a totally idle machine burns the 10% floor.
	idle := Estimate(cfg, cpu.Result{Cycles: 1000})
	var floor float64
	for u := Unit(0); u < NumUnits; u++ {
		floor += idle.MaxWatts[u] * idleFraction
	}
	if math.Abs(idle.EPC()-floor) > 1e-9 {
		t.Errorf("idle EPC %.3f, want floor %.3f", idle.EPC(), floor)
	}
}

func TestZeroCyclesSafe(t *testing.T) {
	b := Estimate(cpu.DefaultConfig(), cpu.Result{})
	if b.EPC() != 0 {
		t.Errorf("zero-cycle EPC = %v, want 0", b.EPC())
	}
}

func TestMoreActivityMorePower(t *testing.T) {
	cfg := cpu.DefaultConfig()
	lo := baseResult(100000)
	hi := baseResult(100000)
	hi.Act.Issued *= 3
	hi.Act.IntALUOps *= 4
	hi.Act.DCacheAccesses *= 3
	if Estimate(cfg, hi).EPC() <= Estimate(cfg, lo).EPC() {
		t.Error("more activity must consume more power")
	}
}

func TestUtilisationClamped(t *testing.T) {
	cfg := cpu.DefaultConfig()
	r := baseResult(100)
	r.Act.IntALUOps = 1 << 40 // absurd over-count
	b := Estimate(cfg, r)
	if b.Watts[UnitIntALU] > b.MaxWatts[UnitIntALU]+1e-9 {
		t.Error("unit power exceeded its maximum")
	}
}

func TestStructureSizeScalesPower(t *testing.T) {
	small := cpu.DefaultConfig()
	big := cpu.DefaultConfig()
	big.RUUSize *= 4
	big.Hier = big.Hier.Scale(4)
	big.Bpred = big.Bpred.Scale(2)
	r := baseResult(100000)
	bs := Estimate(small, r)
	bb := Estimate(big, r)
	if bb.MaxWatts[UnitRUU] <= bs.MaxWatts[UnitRUU] {
		t.Error("bigger RUU should have higher peak power")
	}
	if bb.MaxWatts[UnitDCache] <= bs.MaxWatts[UnitDCache] {
		t.Error("bigger D-cache should have higher peak power")
	}
	if bb.MaxWatts[UnitBpred] <= bs.MaxWatts[UnitBpred] {
		t.Error("bigger predictor should have higher peak power")
	}
	if bb.EPC() <= bs.EPC() {
		t.Error("bigger structures at equal activity must burn more total power")
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(10, 2); got != 2.5 {
		t.Errorf("EDP(10,2) = %v, want 2.5 (10/4)", got)
	}
	if !math.IsInf(EDP(10, 0), 1) {
		t.Error("EDP at zero IPC should be +Inf")
	}
	// Lower EPC at equal IPC and lower CPI at equal EPC both improve EDP.
	if !(EDP(8, 2) < EDP(10, 2) && EDP(10, 2.5) < EDP(10, 2)) {
		t.Error("EDP ordering broken")
	}
}

func TestUnitNames(t *testing.T) {
	seen := map[string]bool{}
	for u := Unit(0); u < NumUnits; u++ {
		n := u.String()
		if n == "" || n == "unit?" || seen[n] {
			t.Errorf("bad or duplicate unit name %q", n)
		}
		seen[n] = true
	}
}
