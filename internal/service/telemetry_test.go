package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsConcurrent hammers the registry from many goroutines —
// known and unknown endpoint/stage names plus concurrent snapshots —
// and checks the totals. Run under -race this also proves the
// pre-registered lock-free fast path is sound.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dyn := fmt.Sprintf("/dyn/%d", g%2)
			for i := 0; i < perG; i++ {
				m.Endpoint("/v1/simulate").Observe(time.Millisecond, i%10 == 0)
				m.Endpoint(dyn).Observe(time.Microsecond, false)
				m.StageObserve(obs.StageSimulate, 100*time.Microsecond)
				m.StageObserve("custom-stage", time.Microsecond)
				if i%50 == 0 {
					_ = m.Snapshot(nil, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot(nil, nil)
	if got := snap.Endpoints["/v1/simulate"].Count; got != goroutines*perG {
		t.Errorf("/v1/simulate count = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Endpoints["/v1/simulate"].Errors; got != goroutines*perG/10 {
		t.Errorf("/v1/simulate errors = %d, want %d", got, goroutines*perG/10)
	}
	for _, dyn := range []string{"/dyn/0", "/dyn/1"} {
		if got := snap.Endpoints[dyn].Count; got != goroutines/2*perG {
			t.Errorf("%s count = %d, want %d", dyn, got, goroutines/2*perG)
		}
	}
	if got := snap.Stages[obs.StageSimulate].Count; got != goroutines*perG {
		t.Errorf("simulate stage count = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Stages["custom-stage"].Count; got != goroutines*perG {
		t.Errorf("custom stage count = %d, want %d", got, goroutines*perG)
	}
}

// TestMetricsSnapshotOmitsIdleStages pins the wire format: stage
// families exist from construction (pre-registration) but must not
// appear in the JSON snapshot until observed.
func TestMetricsSnapshotOmitsIdleStages(t *testing.T) {
	m := NewMetrics()
	if got := len(m.Snapshot(nil, nil).Stages); got != 0 {
		t.Fatalf("fresh registry reports %d stage families, want 0", got)
	}
	m.StageObserve(obs.StageProfile, time.Millisecond)
	snap := m.Snapshot(nil, nil)
	if len(snap.Stages) != 1 || snap.Stages[obs.StageProfile].Count != 1 {
		t.Fatalf("stages after one observation: %+v", snap.Stages)
	}
	// Endpoints, by contrast, always appear: the daemon serves them all.
	if got := len(snap.Endpoints); got != len(knownEndpoints) {
		t.Fatalf("endpoint families = %d, want %d", got, len(knownEndpoints))
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (.+)$`)
var promLabelRE = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// parsePrometheus is the round-trip half of the exposition test: a
// strict line-by-line parse that fails on anything a real scraper
// would reject (samples without TYPE/HELP, bad label syntax, duplicate
// series, unparseable values).
func parsePrometheus(t *testing.T, body string) []promSample {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]bool{}
	seen := map[string]bool{}
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("HELP without text: %q", line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 || (f[1] != "counter" && f[1] != "gauge" && f[1] != "histogram" && f[1] != "summary") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample: %q", line)
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		if m[2] != "" {
			rest := m[2]
			for len(rest) > 0 {
				lm := promLabelRE.FindStringSubmatchIndex(rest)
				if lm == nil || lm[0] != 0 {
					t.Fatalf("bad label syntax in %q", line)
				}
				key := rest[lm[2]:lm[3]]
				val := rest[lm[4]:lm[5]]
				for _, esc := range [][2]string{{`\\`, `\`}, {`\"`, `"`}, {`\n`, "\n"}} {
					val = strings.ReplaceAll(val, esc[0], esc[1])
				}
				s.labels[key] = val
				rest = rest[lm[1]:]
				rest = strings.TrimPrefix(rest, ",")
			}
		}
		switch m[3] {
		case "+Inf":
			s.value = 1e308
		default:
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			s.value = v
		}
		family := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.name, suffix); base != s.name {
				if _, ok := typed[base]; ok {
					family = base
				}
			}
		}
		if _, ok := typed[family]; !ok || !helped[family] {
			t.Fatalf("sample %q lacks TYPE/HELP preamble", line)
		}
		if key := line[:strings.LastIndex(line, " ")]; seen[key] {
			t.Fatalf("duplicate series: %q", key)
		} else {
			seen[key] = true
		}
		samples = append(samples, s)
	}
	return samples
}

// TestPrometheusExposition drives known observations through the
// registry, renders the exposition and parses it back, checking the
// numbers survive the round trip: counts, cumulative bucket series,
// sums in seconds, and label escaping.
func TestPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	// 3 requests on /v1/simulate (one failed), durations 1ms, 2ms, 1s.
	h := m.Endpoint("/v1/simulate")
	h.Observe(time.Millisecond, false)
	h.Observe(2*time.Millisecond, true)
	h.Observe(time.Second, false)
	// A dynamic endpoint whose name needs escaping.
	m.Endpoint(`/odd"path\`).Observe(time.Millisecond, false)
	m.StageObserve(obs.StageSimulate, 5*time.Millisecond)

	var buf bytes.Buffer
	st := promSnapshot{
		uptimeSeconds: 12.5,
		build:         BuildInfo{GoVersion: "go1.xx", Revision: "abc", Dirty: true},
		cache:         CacheStats{Hits: 7, Misses: 3, Capacity: 16},
		pool:          PoolStats{Workers: 4},
		robustness:    RobustnessStats{Shed: 2},
		flightEvents:  9,
	}
	if err := writePrometheus(&buf, m, st); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, buf.String())

	find := func(name string, labels map[string]string) *promSample {
		for i := range samples {
			if samples[i].name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if samples[i].labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return &samples[i]
			}
		}
		return nil
	}

	if s := find("statsimd_requests_total", map[string]string{"endpoint": "/v1/simulate"}); s == nil || s.value != 3 {
		t.Errorf("requests_total{/v1/simulate} = %+v, want 3", s)
	}
	if s := find("statsimd_request_errors_total", map[string]string{"endpoint": "/v1/simulate"}); s == nil || s.value != 1 {
		t.Errorf("request_errors_total{/v1/simulate} = %+v, want 1", s)
	}
	// The escaped label value must round-trip to the original name.
	if s := find("statsimd_requests_total", map[string]string{"endpoint": `/odd"path\`}); s == nil || s.value != 1 {
		t.Errorf("escaped endpoint label did not round-trip: %+v", s)
	}
	if s := find("statsimd_build_info", map[string]string{"revision": "abc", "dirty": "true"}); s == nil || s.value != 1 {
		t.Errorf("build_info = %+v", s)
	}
	if s := find("statsimd_cache_lookups_total", map[string]string{"outcome": "hit"}); s == nil || s.value != 7 {
		t.Errorf("cache hits = %+v, want 7", s)
	}
	if s := find("statsimd_flight_events_total", nil); s == nil || s.value != 9 {
		t.Errorf("flight_events_total = %+v, want 9", s)
	}
	if s := find("statsimd_store_loads_total", nil); s != nil {
		t.Errorf("store families emitted without a store: %+v", s)
	}

	// Histogram invariants for the /v1/simulate series: cumulative,
	// non-decreasing buckets; +Inf == _count == 3; _sum ≈ 1.003s.
	var buckets []promSample
	for _, s := range samples {
		if s.name == "statsimd_request_duration_seconds_bucket" && s.labels["endpoint"] == "/v1/simulate" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("only %d buckets for /v1/simulate", len(buckets))
	}
	prev := -1.0
	for _, b := range buckets {
		if b.value < prev {
			t.Fatalf("bucket series not cumulative: %v then %v", prev, b.value)
		}
		prev = b.value
	}
	if last := buckets[len(buckets)-1]; last.labels["le"] != "+Inf" || last.value != 3 {
		t.Errorf("+Inf bucket = %+v, want le=+Inf value=3", last)
	}
	sum := find("statsimd_request_duration_seconds_sum", map[string]string{"endpoint": "/v1/simulate"})
	if sum == nil || sum.value < 1.0 || sum.value > 1.01 {
		t.Errorf("_sum = %+v, want ≈1.003", sum)
	}
	if cnt := find("statsimd_request_duration_seconds_count", map[string]string{"endpoint": "/v1/simulate"}); cnt == nil || cnt.value != 3 {
		t.Errorf("_count = %+v, want 3", cnt)
	}
	if s := find("statsimd_stage_duration_seconds_count", map[string]string{"stage": "simulate"}); s == nil || s.value != 1 {
		t.Errorf("stage count = %+v, want 1", s)
	}
}

func TestPromEscape(t *testing.T) {
	if got := promEscapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("promEscapeLabel = %q", got)
	}
	if got := promEscapeHelp("x\\y\nz"); got != `x\\y\nz` {
		t.Errorf("promEscapeHelp = %q", got)
	}
}

// TestProgressFeed covers the broadcast feed: ordered delivery, late
// subscriber replay, and the post-terminal drop.
func TestProgressFeed(t *testing.T) {
	f := newProgressFeed("trace-1")
	f.publish(ProgressEvent{Type: "start", Total: 2})
	f.publish(ProgressEvent{Type: "point", Index: 0})

	evs, done, wake := f.next(0)
	if len(evs) != 2 || done {
		t.Fatalf("next(0) = %d events done=%v", len(evs), done)
	}
	if evs[0].TraceID != "trace-1" || evs[0].Type != "start" || evs[1].Type != "point" {
		t.Fatalf("events = %+v", evs)
	}

	// A waiting subscriber wakes on the next publish.
	published := make(chan struct{})
	go func() {
		<-wake
		close(published)
	}()
	f.publish(ProgressEvent{Type: "done"})
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not woken")
	}

	// Late subscriber replays the whole history, sees the terminal event.
	evs, done, _ = f.next(0)
	if len(evs) != 3 || !done {
		t.Fatalf("replay = %d events done=%v", len(evs), done)
	}
	// Post-terminal publishes are dropped.
	f.publish(ProgressEvent{Type: "point", Index: 1})
	if evs, _, _ := f.next(0); len(evs) != 3 {
		t.Fatalf("post-terminal event accepted: %d events", len(evs))
	}
}

// TestProgressHub covers get-or-create feeds (subscribe-before-sweep)
// and capacity eviction preferring finished feeds.
func TestProgressHub(t *testing.T) {
	h := newProgressHub(2)
	a := h.feed("a")
	if h.feed("a") != a {
		t.Fatal("feed not memoised")
	}
	a.publish(ProgressEvent{Type: "done"})
	h.feed("b")
	h.feed("c") // over capacity: the finished "a" goes first
	if h.size() != 2 {
		t.Fatalf("hub size = %d, want 2", h.size())
	}
	if h.feed("a") == a {
		t.Fatal("finished feed not evicted")
	}
}

// newTelemetryServer builds a Server wired for telemetry tests: tiny
// pool, JSON logs into the returned buffer, manifests into a temp dir.
func newTelemetryServer(t *testing.T, buf *syncLogBuffer) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	logger := slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, err := New(Options{Workers: 2, Logger: logger, ManifestDir: dir, FlightRecorderSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s, dir
}

type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(b.buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

// TestTraceIDEndToEnd follows one trace ID through every telemetry
// surface the server offers: the response header, the structured log,
// the flight recorder, and the on-disk run manifest.
func TestTraceIDEndToEnd(t *testing.T) {
	var buf syncLogBuffer
	s, manifestDir := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"profile":{"workload":"gcc","k":1,"n":100000},"target":20000}`
	req, _ := http.NewRequest("POST", srv.URL+"/v1/simulate", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "e2e-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("simulate status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "e2e-trace-42" {
		t.Fatalf("response X-Request-Id = %q", got)
	}

	// Flight recorder: the event exists, with stage timings attached.
	evs := s.flight.Recent(0)
	if len(evs) != 1 {
		t.Fatalf("flight events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != "e2e-trace-42" || ev.Endpoint != "/v1/simulate" || ev.Status != 200 {
		t.Fatalf("flight event = %+v", ev)
	}
	if len(ev.StageMS) == 0 || ev.StageMS["simulate"] <= 0 {
		t.Fatalf("flight event stage timings = %+v", ev.StageMS)
	}

	// Structured log: at least the request line plus resolution debug
	// lines, all keyed by the trace ID.
	reqLines := 0
	for _, line := range buf.lines(t) {
		if line["trace_id"] == "e2e-trace-42" {
			reqLines++
		}
	}
	if reqLines < 2 {
		t.Fatalf("log lines with trace_id = %d, want >= 2 (request + resolution)", reqLines)
	}

	// Manifest: named by trace ID, stamped with it, carrying metrics.
	data, err := os.ReadFile(filepath.Join(manifestDir, "v1-simulate-e2e-trace-42.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.TraceID != "e2e-trace-42" || man.Metrics == nil || man.Metrics.IPC <= 0 || len(man.Stages) == 0 {
		t.Fatalf("manifest = %+v", man)
	}
}

// TestTraceIDMintedWhenHeaderUnusable: a missing or malformed inbound
// X-Request-Id gets a fresh server-minted ID, never an echo.
func TestTraceIDMintedWhenHeaderUnusable(t *testing.T) {
	var buf syncLogBuffer
	s, _ := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, inbound := range []string{"", "has space", "quote\"inside", strings.Repeat("x", 65)} {
		req, _ := http.NewRequest("GET", srv.URL+"/v1/workloads", nil)
		if inbound != "" {
			req.Header.Set("X-Request-Id", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Request-Id")
		if got == "" || got == inbound {
			t.Errorf("inbound %q: response trace ID %q not freshly minted", inbound, got)
		}
	}
}

// TestDebugRequestsEndpoint covers the flight-recorder HTTP surface:
// ring metadata, newest-first order, the ?n= bound and its validation.
func TestDebugRequestsEndpoint(t *testing.T) {
	var buf syncLogBuffer
	s, _ := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest("GET", srv.URL+"/v1/workloads", nil)
		req.Header.Set("X-Request-Id", fmt.Sprintf("dbg-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var dbg DebugRequestsResponse
	resp, err := http.Get(srv.URL + "/v1/debug/requests?n=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dbg.Total != 3 || dbg.Capacity != 32 || len(dbg.Events) != 2 {
		t.Fatalf("debug response = total %d capacity %d events %d", dbg.Total, dbg.Capacity, len(dbg.Events))
	}
	if dbg.Events[0].TraceID != "dbg-2" || dbg.Events[1].TraceID != "dbg-1" {
		t.Fatalf("events not newest-first: %q, %q", dbg.Events[0].TraceID, dbg.Events[1].TraceID)
	}

	resp, err = http.Get(srv.URL + "/v1/debug/requests?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus n accepted: %d", resp.StatusCode)
	}
}

// TestSweepProgressSSE runs a sweep with a chosen trace ID while a
// subscriber streams its progress, checking the full event sequence and
// the per-event completion counters.
func TestSweepProgressSSE(t *testing.T) {
	var buf syncLogBuffer
	s, _ := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sseResp, err := http.Get(srv.URL + "/v1/sweep/progress?id=sse-sweep")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	events := make(chan ProgressEvent, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev ProgressEvent
				if json.Unmarshal([]byte(data), &ev) == nil {
					events <- ev
				}
			}
		}
	}()

	body := `{"profile":{"workload":"gcc","k":1,"n":100000},"grid":"quick","target":20000}`
	req, _ := http.NewRequest("POST", srv.URL+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "sse-sweep")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}

	var got []ProgressEvent
	deadline := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				goto doneReading
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatal("SSE stream did not finish")
		}
	}
doneReading:
	if len(got) != 11 { // start + 9 points + done
		t.Fatalf("SSE events = %d, want 11 (%+v)", len(got), got)
	}
	if got[0].Type != "start" || got[0].Total != 9 || got[0].Resumed != 0 {
		t.Fatalf("start event = %+v", got[0])
	}
	seenIdx := map[int]bool{}
	for i, ev := range got[1:10] {
		if ev.Type != "point" || ev.Point == nil || ev.Metrics == nil {
			t.Fatalf("point event %d = %+v", i, ev)
		}
		if ev.Completed != i+1 {
			t.Fatalf("point event %d completed = %d", i, ev.Completed)
		}
		if ev.TraceID != "sse-sweep" {
			t.Fatalf("point event trace_id = %q", ev.TraceID)
		}
		seenIdx[ev.Index] = true
	}
	if len(seenIdx) != 9 {
		t.Fatalf("point indices not distinct: %v", seenIdx)
	}
	last := got[10]
	if last.Type != "done" || last.Total != 9 || last.Completed != 9 {
		t.Fatalf("done event = %+v", last)
	}
}

// TestSweepProgressRequiresID pins the 400 on a missing/invalid id.
func TestSweepProgressRequiresID(t *testing.T) {
	var buf syncLogBuffer
	s, _ := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, q := range []string{"", "?id=", "?id=bad%20id"} {
		resp, err := http.Get(srv.URL + "/v1/sweep/progress" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("progress%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHealthzBuildInfo: /healthz reports provenance and cache shape.
func TestHealthzBuildInfo(t *testing.T) {
	var buf syncLogBuffer
	s, _ := newTelemetryServer(t, &buf)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var h HealthResponse
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Build.GoVersion == "" {
		t.Error("healthz build.go_version empty")
	}
	if h.CacheCapacity != 16 {
		t.Errorf("healthz cache_capacity = %d, want 16", h.CacheCapacity)
	}
}
