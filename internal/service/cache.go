package service

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/sfg"
)

// ProfileKey identifies one statistical profile. Profiling is
// deterministic in these inputs (the workload personality is itself
// fully determined by its name and fixed seed), so two requests with
// equal keys denote bit-identical graphs — the property that makes
// caching sound (see DESIGN.md).
type ProfileKey struct {
	Workload string `json:"workload"` // personality name
	K        int    `json:"k"`        // SFG order
	N        uint64 `json:"n"`        // profiled stream length
	Seed     uint64 `json:"seed"`     // functional execution seed
	// Immediate selects immediate-update branch profiling (§2.1.3); the
	// default false is the paper's delayed-update discipline. Part of
	// the key because it changes the measured branch statistics.
	Immediate bool `json:"immediate,omitempty"`
	// Shards records the server's parallel-profiling setting (0 or 1 =
	// sequential). Part of the key because sharded locality/mispredict
	// counts are a bounded approximation of the sequential ones, not
	// bit-identical.
	Shards int `json:"shards,omitempty"`
}

// profileCall is one in-flight profiling run that coalesced requests
// wait on.
type profileCall struct {
	wg  sync.WaitGroup
	g   *sfg.Graph
	err error
}

// cacheEntry is one resident profile.
type cacheEntry struct {
	key ProfileKey
	g   *sfg.Graph
}

// GraphCache is an LRU cache of statistical flow graphs with
// singleflight-style request coalescing: concurrent GetOrProfile calls
// for the same key run the profiler once and share the result. Cached
// graphs are frozen (sfg.Graph.Freeze) before publication so any
// number of simulations can sample them concurrently.
type GraphCache struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[ProfileKey]*list.Element
	calls map[ProfileKey]*profileCall

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// NewGraphCache returns a cache holding at most capacity profiles
// (minimum 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[ProfileKey]*list.Element),
		calls:    make(map[ProfileKey]*profileCall),
	}
}

// GetOrProfile returns the graph for key, running profile to produce it
// on a miss. The returned bool reports whether the graph came from the
// cache (or from another caller's concurrent profiling run) rather than
// from this call's own profile invocation. Errors are not cached:
// a failed profile leaves the key absent.
func (c *GraphCache) GetOrProfile(key ProfileKey, profile func() (*sfg.Graph, error)) (*sfg.Graph, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		g := el.Value.(*cacheEntry).g
		c.mu.Unlock()
		c.hits.Add(1)
		return g, true, nil
	}
	if call, ok := c.calls[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		call.wg.Wait()
		return call.g, true, call.err
	}
	call := &profileCall{}
	call.wg.Add(1)
	c.calls[key] = call
	c.mu.Unlock()

	c.misses.Add(1)
	g, err := profile()
	if err == nil && g == nil {
		// Normalise a buggy profiler's (nil, nil) into an error so no
		// caller — this one or a coalesced waiter — ever receives a nil
		// graph with a nil error, and nothing nil enters the LRU.
		err = errors.New("service: profiler returned no graph")
	}
	if err == nil {
		// Freeze before any other goroutine can see the graph: after
		// this, every read path through it is immutable.
		g.Freeze()
	}
	call.g, call.err = g, err

	c.mu.Lock()
	delete(c.calls, key)
	if err == nil {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, g: g})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	call.wg.Done()
	return g, false, err
}

// Peek returns the resident graph for key without profiling on a miss,
// bumping recency on a hit. It is the read side of the cluster tier: a
// peer answering GET-style graph fetches serves only what it already
// holds, so a fetch can never trigger recursive profiling on the remote
// node. Peek does not touch the hit/miss counters — a peer's fetch is
// not a local workload's cache outcome.
func (c *GraphCache) Peek(key ProfileKey) (*sfg.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).g, true
}

// Put inserts an externally obtained graph (a peer fetch, an offered
// replica) under key, freezing it before publication exactly like a
// locally profiled graph. An existing entry is kept (first writer wins —
// both copies are bit-identical by the determinism argument) and merely
// bumped. Nil graphs are ignored.
func (c *GraphCache) Put(key ProfileKey, g *sfg.Graph) {
	if g == nil {
		return
	}
	g.Freeze()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, g: g})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Keys returns the resident keys, most recently used first.
func (c *GraphCache) Keys() []ProfileKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]ProfileKey, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats reports cache effectiveness. Coalesced waits count as hits for
// the hit rate: they did not pay for profiling.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	s := CacheStats{
		Size:      size,
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	if total := s.Hits + s.Coalesced + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return s
}
