package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func newTestStore(t *testing.T, faults *fault.Injector) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir(), faults)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	st := newTestStore(t, nil)
	g := testGraph(t)
	k := key("vpr")

	if _, err := st.Load(k); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("load before save: %v", err)
	}
	if err := st.Save(k, g); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() ||
		got.TotalInstructions != g.TotalInstructions {
		t.Errorf("round trip changed the graph: %d/%d/%d vs %d/%d/%d",
			got.NumNodes(), got.NumEdges(), got.TotalInstructions,
			g.NumNodes(), g.NumEdges(), g.TotalInstructions)
	}
	if s := st.Stats(); s.Saves != 1 || s.Loads != 1 || s.Misses != 1 || s.Quarantined != 0 {
		t.Errorf("stats %+v", s)
	}
	// No temp files left behind.
	if leftovers, _ := filepath.Glob(filepath.Join(st.Dir(), ".tmp-*")); len(leftovers) != 0 {
		t.Errorf("temp files leaked: %v", leftovers)
	}
}

func TestStorePathIsSanitisedAndUnique(t *testing.T) {
	st := newTestStore(t, nil)
	a := st.Path(ProfileKey{Workload: "../../etc/passwd", K: 1, N: 10, Seed: 1})
	if filepath.Dir(a) != st.Dir() {
		t.Fatalf("hostile workload name escaped the store dir: %s", a)
	}
	if strings.ContainsAny(filepath.Base(a), "/\\") {
		t.Fatalf("separator survived sanitisation: %s", a)
	}
	// Keys differing only in a sanitised-away character must still map
	// to different files (the key hash disambiguates).
	b := st.Path(ProfileKey{Workload: ".././etc/passwd", K: 1, N: 10, Seed: 1})
	if a == b {
		t.Errorf("distinct keys share a path: %s", a)
	}
}

// TestStoreQuarantinesCorruption flips single bytes across the file and
// asserts every corruption is caught by the envelope, moved aside, and
// never served.
func TestStoreQuarantinesCorruption(t *testing.T) {
	st := newTestStore(t, nil)
	g := testGraph(t)
	k := key("vpr")
	if err := st.Save(k, g); err != nil {
		t.Fatal(err)
	}
	path := st.Path(k)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, offset := range []int{0, 5, len(orig) / 2, len(orig) - 1} {
		bad := append([]byte(nil), orig...)
		bad[offset] ^= 0xFF
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Load(k); !errors.Is(err, ErrCorruptProfile) {
			t.Fatalf("byte %d flipped, load returned %v", offset, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("corrupt file still in place after byte %d flip", offset)
		}
		quarantined := filepath.Join(st.Dir(), quarantineDir, filepath.Base(path))
		if _, err := os.Stat(quarantined); err != nil {
			t.Fatalf("corrupt file not preserved in quarantine: %v", err)
		}
	}
	// Truncation is corruption too.
	if err := os.WriteFile(path, orig[:len(orig)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); !errors.Is(err, ErrCorruptProfile) {
		t.Fatalf("truncated file served: %v", err)
	}
	if got := st.Stats().Quarantined; got != 5 {
		t.Errorf("quarantined %d files, want 5", got)
	}
	// A re-save heals the slot.
	if err := st.Save(k, g); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); err != nil {
		t.Errorf("load after heal: %v", err)
	}
}

func TestStoreRejectsKeyMismatch(t *testing.T) {
	st := newTestStore(t, nil)
	g := testGraph(t)
	a, b := key("vpr"), key("gzip")
	if err := st.Save(a, g); err != nil {
		t.Fatal(err)
	}
	// Impersonate b's slot with a's file: the embedded key must win.
	if err := os.Rename(st.Path(a), st.Path(b)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(b); !errors.Is(err, ErrCorruptProfile) {
		t.Errorf("renamed file served under the wrong key: %v", err)
	}
}

func TestStoreInjectedWriteFailure(t *testing.T) {
	in := fault.New(1)
	in.Set(SiteStoreWrite, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	st := newTestStore(t, in)
	g := testGraph(t)
	k := key("vpr")

	if err := st.Save(k, g); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected write failure not surfaced: %v", err)
	}
	if _, err := os.Stat(st.Path(k)); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed save left a file behind")
	}
	if leftovers, _ := filepath.Glob(filepath.Join(st.Dir(), ".tmp-*")); len(leftovers) != 0 {
		t.Errorf("failed save leaked temp files: %v", leftovers)
	}
	if s := st.Stats(); s.SaveFailures != 1 {
		t.Errorf("stats %+v", s)
	}
	// Budget exhausted: the retried save succeeds.
	if err := st.Save(k, g); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); err != nil {
		t.Errorf("load after recovered save: %v", err)
	}
}

func TestStoreInjectedCorruptionIsQuarantinedOnLoad(t *testing.T) {
	in := fault.New(2)
	in.Set(SiteStoreCorrupt, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	st := newTestStore(t, in)
	g := testGraph(t)
	k := key("vpr")

	if err := st.Save(k, g); err != nil {
		t.Fatal(err) // the corruption is silent, as on real bit-rot
	}
	if _, err := st.Load(k); !errors.Is(err, ErrCorruptProfile) {
		t.Fatalf("corrupted-on-write file served: %v", err)
	}
	if st.Stats().Quarantined != 1 {
		t.Errorf("stats %+v", st.Stats())
	}
}
