package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestRetryRecoversTransientFailures(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	var retries atomic.Uint64
	calls := 0
	err := p.run(context.Background(), &retries, func() error {
		calls++
		if calls < 3 {
			return fault.ErrInjected
		}
		return nil
	})
	if err != nil || calls != 3 || retries.Load() != 2 {
		t.Errorf("err=%v calls=%d retries=%d", err, calls, retries.Load())
	}
}

func TestRetryExhaustionWrapsError(t *testing.T) {
	p := RetryPolicy{Attempts: 2}
	err := p.run(context.Background(), nil, func() error { return fault.ErrInjected })
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("cause lost: %v", err)
	}
	if err.Error() == fault.ErrInjected.Error() {
		t.Errorf("exhausted retry should mention the attempt count: %v", err)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	cases := map[string]error{
		"api error":   badRequest("no"),
		"canceled":    context.Canceled,
		"deadline":    context.DeadlineExceeded,
		"pool closed": ErrPoolClosed,
	}
	for name, cause := range cases {
		p := RetryPolicy{Attempts: 5}
		calls := 0
		err := p.run(context.Background(), nil, func() error { calls++; return cause })
		if calls != 1 {
			t.Errorf("%s: retried a permanent error %d times", name, calls-1)
		}
		if !errors.Is(err, cause) && err.Error() != cause.Error() {
			t.Errorf("%s: error rewritten: %v", name, err)
		}
	}
}

func TestRetryHonoursContextDuringBackoff(t *testing.T) {
	p := RetryPolicy{Attempts: 3, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.run(ctx, nil, func() error { return fault.ErrInjected })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry slept through cancellation")
	}
}

func TestRetryBackoffIsBoundedAndGrowing(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for retry := 1; retry <= 10; retry++ {
		window := min(p.BaseDelay<<uint(retry-1), p.MaxDelay)
		for i := 0; i < 50; i++ {
			d := p.backoff(retry)
			if d < window/2 || d > window {
				t.Fatalf("retry %d: backoff %v outside [%v, %v]", retry, d, window/2, window)
			}
		}
	}
	if (RetryPolicy{}).backoff(1) != 0 {
		t.Error("zero policy should not sleep")
	}
}
