package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func manifestFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func readManifest(t *testing.T, path string) obs.Manifest {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return m
}

func fidelitySimBody(workload string) map[string]any {
	return map[string]any{
		"profile": map[string]any{"workload": workload, "n": 120_000, "k": 1},
		"fidelity": map[string]any{
			"target_ci": 0.02,
			"interval":  10_000,
		},
	}
}

func TestFidelitySimulate(t *testing.T) {
	svc, ts := newTestServer(t)
	var resp SimulateResponse
	code, raw := postJSON(t, ts.URL+"/v1/simulate", fidelitySimBody("gzip"), &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	res := resp.Fidelity
	if res == nil {
		t.Fatalf("no fidelity block in response: %s", raw)
	}
	if res.IPCLo <= 0 || res.IPCHi <= res.IPCLo || resp.Metrics.IPC != res.IPC {
		t.Errorf("malformed interval: %+v", res)
	}
	if res.DetailedFrac > 0.25 {
		t.Errorf("detailed fraction %v over budget", res.DetailedFrac)
	}
	if resp.Reduction != 0 {
		t.Errorf("fidelity run reported reduction %d", resp.Reduction)
	}

	// The run must land in the daemon-wide counters ...
	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Fidelity.Runs != 1 || snap.Fidelity.CIWidthCount != 1 {
		t.Errorf("fidelity stats not counted: %+v", snap.Fidelity)
	}
	if snap.Fidelity.DetailedInsts != res.DetailedInstructions {
		t.Errorf("detailed insts %d, want %d", snap.Fidelity.DetailedInsts, res.DetailedInstructions)
	}

	// ... in the flight recorder ...
	evs := svc.flight.Recent(1)
	if len(evs) != 1 || evs[0].Escalations != len(res.Escalations) ||
		evs[0].DetailedInsts != res.DetailedInstructions || evs[0].CIWidth != res.RelHalfWidth {
		t.Errorf("flight event missing fidelity outcomes: %+v", evs)
	}

	// ... and in the Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prometheus", nil)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := hresp.Body.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{
		"statsimd_fidelity_runs_total 1",
		"statsimd_fidelity_escalations_total",
		"statsimd_fidelity_detailed_insts_total",
		"statsimd_fidelity_ci_width_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestFidelitySimulateDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t)
	run := func() string {
		code, raw := postJSON(t, ts.URL+"/v1/simulate", fidelitySimBody("vpr"), nil)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, raw)
		}
		// elapsed_ms is the only wall-clock-dependent field.
		i := strings.Index(raw, `"elapsed_ms"`)
		return raw[:i]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fidelity responses differ across identical requests:\n%s\n%s", a, b)
	}
}

func TestFidelitySimulateValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []map[string]any{
		{"profile": map[string]any{"workload": "gzip"},
			"fidelity": map[string]any{"target_ci": 1.5}},
		{"profile": map[string]any{"workload": "gzip"},
			"fidelity": map[string]any{"target_ci": 0.02, "max_detailed_frac": 2.0}},
		{"profile": map[string]any{"workload": "gzip"},
			"fidelity": map[string]any{"target_ci": 0.02, "confidence": 0.5}},
		{"profile": map[string]any{"workload": "nosuch"},
			"fidelity": map[string]any{"target_ci": 0.02}},
		{"profile": map[string]any{},
			"fidelity": map[string]any{"target_ci": 0.02}},
	}
	for i, body := range bad {
		code, raw := postJSON(t, ts.URL+"/v1/simulate", body, nil)
		if code == http.StatusOK {
			t.Errorf("case %d accepted: %s", i, raw)
		}
	}
}

func TestFidelitySweep(t *testing.T) {
	_, ts := newTestServer(t)
	body := map[string]any{
		"profile": map[string]any{"workload": "gzip", "n": 100_000},
		"points": []map[string]any{
			{"ruu": 16, "lsq": 8, "decode": 4, "issue": 4, "commit": 4},
			{"ruu": 64, "lsq": 32, "decode": 4, "issue": 4, "commit": 4},
		},
		"fidelity": map[string]any{"target_ci": 0.02, "interval": 10_000},
	}
	var resp SweepResponse
	code, raw := postJSON(t, ts.URL+"/v1/sweep", body, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	for i, row := range resp.Results {
		if row.Fidelity == nil {
			t.Fatalf("row %d missing fidelity block", i)
		}
		if row.Fidelity.IPCLo <= 0 || row.Fidelity.IPCHi <= row.Fidelity.IPCLo {
			t.Errorf("row %d malformed interval: %+v", i, row.Fidelity)
		}
	}
	// The bigger window must not be slower: interval centres should
	// order sensibly even under estimation noise.
	if resp.Results[1].Metrics.IPC < resp.Results[0].Metrics.IPC*0.8 {
		t.Errorf("128-RUU point much slower than 16-RUU point: %v vs %v",
			resp.Results[1].Metrics.IPC, resp.Results[0].Metrics.IPC)
	}
}

func TestFidelitySweepPointCap(t *testing.T) {
	_, ts := newTestServer(t)
	points := make([]map[string]any, maxFidelitySweepPoints+1)
	for i := range points {
		points[i] = map[string]any{"ruu": 16 + i, "lsq": 8, "decode": 4, "issue": 4, "commit": 4}
	}
	body := map[string]any{
		"profile":  map[string]any{"workload": "gzip", "n": 50_000},
		"points":   points,
		"fidelity": map[string]any{"target_ci": 0.02},
	}
	code, raw := postJSON(t, ts.URL+"/v1/sweep", body, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, raw)
	}
	if !strings.Contains(raw, "fidelity sweep limit") {
		t.Errorf("unexpected error body: %s", raw)
	}
}

func TestFidelityManifest(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServerOpts(t, Options{Workers: 4, CacheSize: 4,
		JobTimeout: time.Minute, ManifestDir: dir})
	code, raw := postJSON(t, ts.URL+"/v1/simulate", fidelitySimBody("gzip"), nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	files := manifestFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("got %d manifests, want 1", len(files))
	}
	m := readManifest(t, files[0])
	if m.Fidelity == nil {
		t.Fatal("manifest missing fidelity block")
	}
	if m.Fidelity.IPCLo <= 0 || m.Fidelity.IPCHi <= m.Fidelity.IPCLo || m.Fidelity.Strata == 0 {
		t.Errorf("manifest fidelity block: %+v", m.Fidelity)
	}
}
