package service

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// The cost ledger answers "where did this sweep's time and error budget
// go?" per design point: which serving tier produced the answer, on
// which node, in which lockstep cohort, and how much wall time it cost.
// Every sweep fills one ledger slot per grid point — the response tail,
// the run manifest and the statsimd_point_cost_* Prometheus families
// are all views over the same entries, so they can never disagree.

// Ledger tiers, in serving order. Exactly one applies to each point.
const (
	// TierResumed: the point was replayed from a checkpoint journal —
	// no work this run, wall time zero.
	TierResumed = "resumed"
	// TierStore: an exact durable-store hit (ground truth).
	TierStore = "store"
	// TierSurrogate: a gated surrogate prediction (estimate).
	TierSurrogate = "surrogate"
	// TierSimulated: the point ran through a pipeline model.
	TierSimulated = "simulated"
)

// PointCost is one sweep point's ledger entry.
type PointCost struct {
	// Index is the point's position in the sweep grid.
	Index int `json:"index"`
	// Tier is which serving tier answered: resumed, store, surrogate or
	// simulated.
	Tier string `json:"tier"`
	// Node names the daemon that did the work (the executing peer for
	// remote points, this node otherwise).
	Node string `json:"node,omitempty"`
	// Cohort is the lockstep group the point executed in, -1 when the
	// point never entered the batch engine (oracle hits, resumes,
	// fidelity and remote points).
	Cohort int `json:"cohort"`
	// WallS is the point's share of wall time. Points batched in a
	// lockstep cohort split the cohort's wall time evenly; remote points
	// carry the executing peer's measurement.
	WallS float64 `json:"wall_s"`
	// Estimated marks answers that are predictions, not measurements
	// (the surrogate tier).
	Estimated bool `json:"estimated,omitempty"`
}

// costLedger collects one sweep's per-point entries. Writers touch
// disjoint indices (the sweep engine's invariant), so the only mutable
// shared state needs no lock.
type costLedger struct {
	node    string
	entries []PointCost
}

func newCostLedger(node string, points int) *costLedger {
	l := &costLedger{node: node, entries: make([]PointCost, points)}
	for i := range l.entries {
		l.entries[i] = PointCost{Index: i, Cohort: -1}
	}
	return l
}

// record fills index's slot. Safe for concurrent use across disjoint
// indices; nil ledgers no-op so untraced paths pay nothing.
func (l *costLedger) record(index int, tier, node string, cohort int, wallS float64, estimated bool) {
	if l == nil || index < 0 || index >= len(l.entries) {
		return
	}
	if node == "" {
		node = l.node
	}
	l.entries[index] = PointCost{
		Index: index, Tier: tier, Node: node,
		Cohort: cohort, WallS: wallS, Estimated: estimated,
	}
}

// snapshot returns the entries (the caller must be done writing).
func (l *costLedger) snapshot() []PointCost {
	if l == nil {
		return nil
	}
	out := make([]PointCost, len(l.entries))
	copy(out, l.entries)
	return out
}

// manifestCost folds ledger entries into the manifest's cost block.
func manifestCost(entries []PointCost) *obs.ManifestCost {
	if len(entries) == 0 {
		return nil
	}
	c := &obs.ManifestCost{
		Points:        len(entries),
		PointsByTier:  make(map[string]int),
		SecondsByTier: make(map[string]float64),
	}
	nodes := make(map[string]bool)
	for _, e := range entries {
		tier := e.Tier
		if tier == "" {
			tier = TierSimulated
		}
		c.PointsByTier[tier]++
		c.SecondsByTier[tier] += e.WallS
		if e.Node != "" {
			nodes[e.Node] = true
		}
		if e.Estimated {
			c.Estimated++
		}
	}
	for n := range nodes {
		c.Nodes = append(c.Nodes, n)
	}
	sort.Strings(c.Nodes)
	return c
}

// costKey labels one statsimd_point_cost_* series.
type costKey struct {
	tier string
	node string
}

// costCounters aggregates ledger entries across sweeps for the
// Prometheus families statsimd_point_cost_points_total and
// statsimd_point_cost_seconds_total, both labelled {tier,node}.
type costCounters struct {
	mu      sync.Mutex
	points  map[costKey]uint64
	seconds map[costKey]float64
}

func newCostCounters() *costCounters {
	return &costCounters{
		points:  make(map[costKey]uint64),
		seconds: make(map[costKey]float64),
	}
}

// add folds one sweep's entries in.
func (c *costCounters) add(entries []PointCost) {
	if c == nil || len(entries) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		tier := e.Tier
		if tier == "" {
			tier = TierSimulated
		}
		k := costKey{tier: tier, node: e.Node}
		c.points[k]++
		c.seconds[k] += e.WallS
	}
}

// costSample is one exported series of the cost families.
type costSample struct {
	Tier    string
	Node    string
	Points  uint64
	Seconds float64
}

// export returns the series sorted by (tier, node) so the exposition is
// deterministic.
func (c *costCounters) export() []costSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]costSample, 0, len(c.points))
	for k, n := range c.points {
		out = append(out, costSample{Tier: k.tier, Node: k.node, Points: n, Seconds: c.seconds[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tier != out[j].Tier {
			return out[i].Tier < out[j].Tier
		}
		return out[i].Node < out[j].Node
	})
	return out
}
