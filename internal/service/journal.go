package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/sfg"
)

// SweepFingerprint identifies a sweep for checkpoint compatibility: the
// profile (by shape — works for both cache keys and CLI-loaded files),
// the base configuration, the exact point list, and the (R, seed) pair.
// Two runs with equal fingerprints compute identical results, so their
// checkpoints are interchangeable; anything else must not share one.
func SweepFingerprint(g *sfg.Graph, base cpu.Config, points []SweepPoint, r, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep-v%d|graph:k=%d insts=%d blocks=%d nodes=%d edges=%d|cfg:%+v|r=%d|seed=%d|points=%d|",
		journalVersion, g.K, g.TotalInstructions, g.TotalBlocks, g.NumNodes(), g.NumEdges(), base, r, seed, len(points))
	for _, p := range points {
		fmt.Fprintf(h, "%+v|", p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

const journalVersion = 1

// journalLine is one record of the append-only sweep journal. Metrics
// stay a raw message so the CRC covers the exact bytes written, not a
// re-marshalling.
type journalLine struct {
	Type    string          `json:"type"` // "header" or "point"
	Version int             `json:"version,omitempty"`
	ID      string          `json:"id,omitempty"`
	Points  int             `json:"points,omitempty"`
	Index   int             `json:"index"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
	CRC     uint32          `json:"crc,omitempty"`
}

func pointCRC(index int, metrics []byte) uint32 {
	sum := crc32.Checksum([]byte(strconv.Itoa(index)+":"), castagnoli)
	return crc32.Update(sum, castagnoli, metrics)
}

// SweepJournal checkpoints a design-space sweep: every completed point
// is appended (and fsynced) as one self-checksummed JSON line, so a
// crash, OOM-kill or cancellation loses at most the in-flight points.
// Opening an existing journal replays it — tolerating a torn final
// write and quarantine-dropping any line that fails its checksum — and
// the next run recomputes only what is missing. Because each point's
// metrics are a deterministic function of the sweep identity, a resumed
// sweep is byte-identical to an uninterrupted one.
type SweepJournal struct {
	path    string
	id      string
	npoints int
	faults  *fault.Injector

	mu             sync.Mutex
	f              *os.File
	done           map[int]core.Metrics
	resumed        int // points recovered from a previous run
	dropped        int // torn or corrupt lines discarded at open
	appendFailures int
}

// ErrJournalMismatch reports a journal written by a sweep with a
// different identity (grid, configuration, profile or seeds).
var ErrJournalMismatch = fmt.Errorf("service: sweep journal belongs to a different sweep")

// OpenSweepJournal opens (creating if absent) the checkpoint journal at
// path for a sweep with the given identity and point count. Existing
// contents are validated and compacted: damaged lines are dropped (and
// recomputed later), and the file is atomically rewritten so appends
// never land after a torn tail. faults may be nil.
func OpenSweepJournal(path, id string, npoints int, faults *fault.Injector) (*SweepJournal, error) {
	j := &SweepJournal{path: path, id: id, npoints: npoints, faults: faults, done: make(map[int]core.Metrics)}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh journal below.
	case err != nil:
		return nil, fmt.Errorf("service: opening sweep journal: %w", err)
	default:
		if err := j.replay(data); err != nil {
			return nil, err
		}
		j.resumed = len(j.done)
	}
	if err := j.rewrite(); err != nil {
		return nil, err
	}
	return j, nil
}

// replay parses an existing journal body into j.done.
func (j *SweepJournal) replay(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	first := true
	for sc.Scan() {
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// Torn write (crash mid-append) or stray garbage: drop the
			// line; its point is simply recomputed.
			j.dropped++
			continue
		}
		if first {
			first = false
			if line.Type != "header" || line.Version != journalVersion {
				return fmt.Errorf("%w: unrecognised header", ErrJournalMismatch)
			}
			if line.ID != j.id || line.Points != j.npoints {
				return fmt.Errorf("%w: journal id %s over %d points, want id %s over %d points",
					ErrJournalMismatch, line.ID, line.Points, j.id, j.npoints)
			}
			continue
		}
		if line.Type != "point" || line.Index < 0 || line.Index >= j.npoints ||
			line.CRC != pointCRC(line.Index, line.Metrics) {
			j.dropped++
			continue
		}
		var m core.Metrics
		if err := json.Unmarshal(line.Metrics, &m); err != nil {
			j.dropped++
			continue
		}
		if prev, ok := j.done[line.Index]; ok {
			if prev != m {
				return fmt.Errorf("service: sweep journal holds two different results for point %d", line.Index)
			}
			continue // benign duplicate
		}
		j.done[line.Index] = m
	}
	if first && len(data) > 0 {
		return fmt.Errorf("%w: no parseable header", ErrJournalMismatch)
	}
	return sc.Err()
}

// rewrite compacts the journal to header + known-good points via a temp
// file and rename, then reopens it for appending.
func (j *SweepJournal) rewrite() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(journalLine{Type: "header", Version: journalVersion, ID: j.id, Points: j.npoints}); err != nil {
		return err
	}
	for i := 0; i < j.npoints; i++ {
		m, ok := j.done[i]
		if !ok {
			continue
		}
		line, err := encodePoint(i, m)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".tmp-journal-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	return nil
}

func encodePoint(index int, m core.Metrics) ([]byte, error) {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return json.Marshal(journalLine{Type: "point", Index: index, Metrics: raw, CRC: pointCRC(index, raw)})
}

// Append checkpoints one completed point. Failures are tolerated by the
// sweep (the point is recomputed on resume) but reported so callers can
// count them.
func (j *SweepJournal) Append(index int, m core.Metrics) error {
	line, err := encodePoint(index, m)
	if err != nil {
		return err
	}
	if ferr := j.faults.Fire(SiteJournalAppend); ferr != nil {
		j.mu.Lock()
		j.appendFailures++
		j.mu.Unlock()
		return fmt.Errorf("service: journal append: %w", ferr)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[index]; ok {
		return nil // already checkpointed (resume raced a recompute)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.appendFailures++
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.appendFailures++
		return err
	}
	j.done[index] = m
	return nil
}

// Done returns a copy of the checkpointed results by point index.
func (j *SweepJournal) Done() map[int]core.Metrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]core.Metrics, len(j.done))
	for i, m := range j.done {
		out[i] = m
	}
	return out
}

// Resumed reports how many points were recovered from a previous run at
// open time; Dropped reports how many damaged lines were discarded.
func (j *SweepJournal) Resumed() int { return j.resumed }
func (j *SweepJournal) Dropped() int { return j.dropped }

// Close releases the journal file. The journal remains on disk: a
// completed journal doubles as a durable result cache, and a partial
// one is the resume point.
func (j *SweepJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// SweepWithJournal is Sweep with crash-safe checkpointing: points
// already present in the journal are returned without simulation, newly
// computed points are appended as they complete, and the merged results
// come back in grid order — byte-identical to an uninterrupted run,
// because every point is a deterministic function of the sweep
// identity. The second return value is the number of resumed points.
// j, faults and progress may all be nil (plain sweep); a non-nil
// progress is called once per freshly simulated point, in completion
// order from the worker that finished it, feeding live observability
// (the daemon's SSE stream, the CLI's -progress ticker) without
// touching the deterministic grid-order results.
//
// Pending points execute through the lockstep batch engine (see
// lockstep.go in this package): compatible points share one trace
// generation pass per group, which changes cost, not bytes.
func SweepWithJournal(ctx context.Context, pool *Pool, base cpu.Config, g *sfg.Graph, points []SweepPoint, r, seed uint64, j *SweepJournal, faults *fault.Injector, progress func(index int, res SweepResult)) ([]SweepResult, int, error) {
	if pool == nil {
		pool = NewPool(0)
		defer pool.Drain(context.Background())
	}
	// Concurrent simulations sample the shared graph; freezing makes
	// those reads immutable (no-op if already frozen by the cache).
	g.Freeze()

	results := make([]SweepResult, len(points))
	var pending []int
	resumed := 0
	if j != nil {
		done := j.Done()
		for i := range points {
			if m, ok := done[i]; ok {
				results[i] = SweepResult{Point: points[i], Metrics: m}
				resumed++
			} else {
				pending = append(pending, i)
			}
		}
	} else {
		pending = make([]int, len(points))
		for i := range points {
			pending[i] = i
		}
	}

	err := runPendingBatched(ctx, pool, faults, base, g, points, pending, r, seed, func(i int, m core.Metrics) {
		results[i] = SweepResult{Point: points[i], Metrics: m}
		if j != nil {
			// Best-effort: a failed append only means this point is
			// recomputed if the sweep is interrupted later.
			_ = j.Append(i, m)
		}
		if progress != nil {
			progress(i, results[i])
		}
	}, nil)
	if err != nil {
		return nil, resumed, err
	}
	return results, resumed, nil
}
