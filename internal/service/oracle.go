package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/resultstore"
	"repro/internal/surrogate"
)

// The two-tier IPC oracle sits between sweep dispatch and the
// executors. Tier one is the durable result store: an exact
// (config fingerprint, profile, reduction, seed) hit returns the
// metrics a previous simulation computed — ground truth, byte-identical
// to re-simulating, journalable. Tier two is the k-NN surrogate:
// trained from every result that flows through the store, it serves
// design points whose predicted uncertainty clears an explicit opt-in
// gate — estimates, always flagged, never journaled, never ground
// truth. Everything else falls through to the lockstep/cluster
// executors, and what they compute feeds both tiers.

// oracleSubdir is where the result store lives under CacheDir,
// alongside the SFG profiles and sweep journals.
const oracleSubdir = "results"

// ServedFromStore and ServedFromSurrogate are the provenance labels on
// oracle-served points (responses, SSE events, flight records,
// manifests). Simulated points carry no label.
const (
	ServedFromStore     = "store"
	ServedFromSurrogate = "surrogate"
)

// oracle bundles the two tiers plus the serving counters. The store is
// nil without a cache dir (the model then trains only from this life's
// traffic); maxCI <= 0 disables surrogate serving entirely — the
// default, so estimates never appear unless an operator asked for them.
type oracle struct {
	store *resultstore.Store
	model *surrogate.Model
	maxCI float64

	storeServed     atomic.Uint64
	surrogateServed atomic.Uint64
	simulated       atomic.Uint64
	gateRejected    atomic.Uint64 // predictions whose uncertainty exceeded the gate
}

// newOracle opens the result store under dir (skipped when dir is
// empty) and warm-starts the surrogate from every persisted record.
func newOracle(dir string, maxCI float64) (*oracle, error) {
	o := &oracle{model: surrogate.New(0), maxCI: maxCI}
	if dir != "" {
		st, err := resultstore.Open(dir)
		if err != nil {
			return nil, err
		}
		o.store = st
		st.Range(func(k resultstore.Key, m core.Metrics) bool {
			o.model.Add(k.Context(), featuresForKey(k), m.IPC(), m.EPC())
			return true
		})
	}
	return o, nil
}

// enabled reports whether the oracle can ever serve anything: without a
// store and without surrogate serving it is pure overhead and every
// call short-circuits.
func (o *oracle) enabled() bool { return o != nil && (o.store != nil || o.maxCI > 0) }

func (o *oracle) close() error {
	if o == nil || o.store == nil {
		return nil
	}
	return o.store.Close()
}

// featuresForKey recovers the surrogate's feature vector from a stored
// key's in-the-clear dimensions.
func featuresForKey(k resultstore.Key) surrogate.Features {
	d := k.Dims
	return surrogate.FromDims(d.RUU, d.LSQ, d.Decode, d.Issue, d.Commit, d.IFQ)
}

// oracleKey builds the exact identity of one simulation: the applied
// configuration's fingerprint (what run manifests carry) plus every
// input the metrics are a deterministic function of.
func oracleKey(pk ProfileKey, cfg cpu.Config, red, simSeed uint64) resultstore.Key {
	return resultstore.Key{
		ConfigFP:  obs.Fingerprint(cfg),
		Workload:  pk.Workload,
		K:         pk.K,
		N:         pk.N,
		Seed:      pk.Seed,
		Immediate: pk.Immediate,
		Shards:    pk.Shards,
		Red:       red,
		SimSeed:   simSeed,
		Dims: resultstore.Dims{
			RUU:    cfg.RUUSize,
			LSQ:    cfg.LSQSize,
			Decode: cfg.DecodeWidth,
			Issue:  cfg.IssueWidth,
			Commit: cfg.CommitWidth,
			IFQ:    cfg.IFQSize,
		},
	}
}

// lookup is the tier-one exact hit.
func (o *oracle) lookup(key resultstore.Key) (core.Metrics, bool) {
	if o == nil || o.store == nil {
		return core.Metrics{}, false
	}
	m, ok := o.store.Get(key)
	if ok {
		o.storeServed.Add(1)
	}
	return m, ok
}

// predict is the tier-two gated estimate: a prediction is served only
// when surrogate serving is on and the model's uncertainty clears the
// gate.
func (o *oracle) predict(key resultstore.Key) (surrogate.Estimate, bool) {
	if o == nil || o.maxCI <= 0 {
		return surrogate.Estimate{}, false
	}
	est, ok := o.model.Predict(key.Context(), featuresForKey(key))
	if !ok {
		return surrogate.Estimate{}, false
	}
	if est.Uncertainty > o.maxCI {
		o.gateRejected.Add(1)
		return surrogate.Estimate{}, false
	}
	o.surrogateServed.Add(1)
	return est, true
}

// learn feeds one freshly simulated result into both tiers. Store
// failures are tolerated (counted in store stats; the point is simply
// recomputed in a future life) — a full disk must not fail a simulation
// that already succeeded.
func (o *oracle) learn(key resultstore.Key, m core.Metrics) {
	if !o.enabled() {
		return
	}
	o.simulated.Add(1)
	if o.store != nil {
		_ = o.store.Put(key, m)
	}
	o.model.Add(key.Context(), featuresForKey(key), m.IPC(), m.EPC())
}

// estimateWire renders a surrogate estimate in the same wire shape as a
// simulated point. Cycles and instructions stay zero — the model
// predicts rates, not traces — and EDP is derived exactly as
// core.Metrics derives it, so best-point selection compares like with
// like.
func estimateWire(est surrogate.Estimate) SimMetrics {
	return SimMetrics{IPC: est.IPC, EPC: est.EPC, EDP: power.EDP(est.EPC, est.IPC)}
}

// OracleStatus is the GET /v1/oracle/status body and the oracle block
// of /metrics.
type OracleStatus struct {
	// StoreEnabled reports a durable store behind tier one;
	// SurrogateEnabled reports an uncertainty gate > 0 (tier two serving
	// on).
	StoreEnabled     bool    `json:"store_enabled"`
	SurrogateEnabled bool    `json:"surrogate_enabled"`
	SurrogateMaxCI   float64 `json:"surrogate_max_ci"`

	// Serving outcomes since start: exact store hits, gated surrogate
	// predictions served, points that fell through to real simulation,
	// and predictions rejected by the uncertainty gate.
	StoreServed     uint64 `json:"store_served"`
	SurrogateServed uint64 `json:"surrogate_served"`
	Simulated       uint64 `json:"simulated"`
	GateRejected    uint64 `json:"gate_rejected"`

	Store *resultstore.Stats `json:"store,omitempty"`
	Model surrogate.Stats    `json:"model"`
}

// status snapshots the oracle. Safe on a nil oracle (reports disabled).
func (o *oracle) status() OracleStatus {
	if o == nil {
		return OracleStatus{}
	}
	st := OracleStatus{
		StoreEnabled:     o.store != nil,
		SurrogateEnabled: o.maxCI > 0,
		SurrogateMaxCI:   o.maxCI,
		StoreServed:      o.storeServed.Load(),
		SurrogateServed:  o.surrogateServed.Load(),
		Simulated:        o.simulated.Load(),
		GateRejected:     o.gateRejected.Load(),
		Model:            o.model.Stats(),
	}
	if o.store != nil {
		s := o.store.Stats()
		st.Store = &s
	}
	return st
}

// handleOracleStatus serves GET /v1/oracle/status.
func (s *Server) handleOracleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.oracle.status())
}

// oracleFilter peels oracle-served points off a sweep's pending list
// before any executor — local batching or cluster fan-out — sees them,
// returning the indices still to simulate. Store hits are ground truth:
// they land in the journal (a resumed sweep then serves them without
// even a store lookup) and count as resumed-equivalent work. Surrogate
// predictions are estimates: flagged on the result, published to the
// progress feed with their provenance, and never journaled. Surrogate
// serving is additionally suppressed on cluster sub-sweeps (fanout) —
// the coordinator journals raw metrics from peers as ground truth, so a
// peer must never answer with an estimate.
func (s *Server) oracleFilter(ctx context.Context, p sweepParams, pending []int, results []SweepResult, j *SweepJournal, progress func(int, SweepResult)) []int {
	if !s.oracle.enabled() || len(pending) == 0 {
		return pending
	}
	_, span := obs.TracerFromContext(ctx).StartSpan(ctx, "oracle.filter")
	ri := requestInfo(ctx)
	var storeHits, surrogateHits int
	remain := pending[:0]
	for _, i := range pending {
		t0 := time.Now()
		key := oracleKey(p.pkey, p.points[i].Apply(p.base), p.red, p.simSeed)
		if m, ok := s.oracle.lookup(key); ok {
			results[i] = SweepResult{Point: p.points[i], Metrics: m, Served: ServedFromStore}
			if j != nil {
				_ = j.Append(i, m)
			}
			s.sweepFromStore.Add(1)
			p.ledger.record(i, TierStore, "", -1, time.Since(t0).Seconds(), false)
			storeHits++
			if ri != nil {
				ri.storeHits.Add(1)
			}
			if progress != nil {
				progress(i, results[i])
			}
			continue
		}
		if !p.fanout {
			if est, ok := s.oracle.predict(key); ok {
				e := est
				results[i] = SweepResult{Point: p.points[i], Served: ServedFromSurrogate, Estimate: &e}
				s.sweepFromSurrogate.Add(1)
				p.ledger.record(i, TierSurrogate, "", -1, time.Since(t0).Seconds(), true)
				surrogateHits++
				if ri != nil {
					ri.surrogateHits.Add(1)
				}
				if progress != nil {
					progress(i, results[i])
				}
				continue
			}
		}
		remain = append(remain, i)
	}
	span.Annotate("store_hits", strconv.Itoa(storeHits))
	span.Annotate("surrogate_hits", strconv.Itoa(surrogateHits))
	span.Annotate("simulate", strconv.Itoa(len(remain)))
	span.End()
	return remain
}
