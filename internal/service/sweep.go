package service

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sfg"
	"repro/internal/surrogate"
)

// SweepPoint is one design point of a microarchitecture sweep: the
// window/width knobs of the paper's §4.6 design space.
type SweepPoint struct {
	RUU    int `json:"ruu"`
	LSQ    int `json:"lsq"`
	Decode int `json:"decode"`
	Issue  int `json:"issue"`
	Commit int `json:"commit"`
}

func (p SweepPoint) String() string {
	return fmt.Sprintf("ruu=%d lsq=%d d=%d i=%d c=%d", p.RUU, p.LSQ, p.Decode, p.Issue, p.Commit)
}

// Apply overlays the point on a base configuration.
func (p SweepPoint) Apply(base cpu.Config) cpu.Config {
	base.RUUSize = p.RUU
	base.LSQSize = p.LSQ
	base.DecodeWidth = p.Decode
	base.IssueWidth = p.Issue
	base.CommitWidth = p.Commit
	return base
}

// PaperGrid returns the paper's 1,792-point design space: RUU in
// {8..128} x LSQ in {4..64} with LSQ <= RUU/2 (28 pairs), and decode,
// issue and commit widths each in {2,4,6,8}.
func PaperGrid() []SweepPoint {
	ruus := []int{8, 16, 32, 48, 64, 96, 128}
	lsqs := []int{4, 8, 16, 24, 32, 48, 64}
	widths := []int{2, 4, 6, 8}
	var pts []SweepPoint
	for _, r := range ruus {
		for _, l := range lsqs {
			if l > r/2 {
				continue
			}
			for _, d := range widths {
				for _, i := range widths {
					for _, c := range widths {
						pts = append(pts, SweepPoint{RUU: r, LSQ: l, Decode: d, Issue: i, Commit: c})
					}
				}
			}
		}
	}
	return pts
}

// QuickGrid is a reduced design space for tests and smoke runs.
func QuickGrid() []SweepPoint {
	var pts []SweepPoint
	for _, r := range []int{16, 64, 128} {
		for _, d := range []int{2, 4, 8} {
			pts = append(pts, SweepPoint{RUU: r, LSQ: r / 2, Decode: d, Issue: d, Commit: d})
		}
	}
	return pts
}

// GridByName resolves the named grids the CLI and daemon accept.
func GridByName(name string) ([]SweepPoint, error) {
	switch name {
	case "quick":
		return QuickGrid(), nil
	case "paper":
		return PaperGrid(), nil
	default:
		return nil, fmt.Errorf("service: unknown grid %q (want quick or paper)", name)
	}
}

// SweepResult is the statistical simulation outcome for one point.
// Served marks points the oracle answered instead of the executors:
// ServedFromStore (an exact durable-store hit — ground truth, Metrics
// populated) or ServedFromSurrogate (a gated prediction — Estimate
// populated, Metrics zero). Freshly simulated and journal-resumed
// points leave Served empty.
type SweepResult struct {
	Point    SweepPoint
	Metrics  core.Metrics
	Served   string
	Estimate *surrogate.Estimate
}

// Sweep statistically simulates every point of the design space from
// one profile — the fan-out the paper's §4.6 amortisation argument is
// about. Points run concurrently on the pool (a transient GOMAXPROCS
// pool if pool is nil), and results come back in point order regardless
// of completion order, so a parallel sweep is byte-identical to the
// serial loop it replaces: each point's simulation is an independent
// deterministic function of (point, g, r, seed).
func Sweep(ctx context.Context, pool *Pool, base cpu.Config, g *sfg.Graph, points []SweepPoint, r, seed uint64) ([]SweepResult, error) {
	out, _, err := SweepWithJournal(ctx, pool, base, g, points, r, seed, nil, nil, nil)
	return out, err
}
