package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of the metrics registry,
// served by GET /metrics?format=prometheus so standard scrape tooling
// can consume the daemon without a sidecar. The JSON view remains the
// default; this renderer derives the same numbers from the same
// histograms, with the log2-microsecond latency buckets rendered as
// cumulative `_bucket` series in seconds.

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func promEscapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP string: backslash and newline only.
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promWriter accumulates exposition lines and remembers which families
// already emitted their # HELP/# TYPE preamble.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) family(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, promEscapeHelp(help), name, typ)
}

// sample emits one series line; labels alternate key, value and values
// are escaped here.
func (p *promWriter) sample(name string, value string, labels ...string) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, value)
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, labels[i], promEscapeLabel(labels[i+1]))
	}
	p.printf("%s{%s} %s\n", name, b.String(), value)
}

// sampleFloat emits one float-valued series line, suppressing NaN and
// ±Inf: a division by a zero count must not poison the scrape (many
// collectors reject the whole exposition on an unparsable or non-finite
// sample where they expected a finite gauge).
func (p *promWriter) sampleFloat(name string, value float64, labels ...string) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return
	}
	p.sample(name, promFloat(value), labels...)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func promUint(v uint64) string   { return strconv.FormatUint(v, 10) }

// promHistogram renders one LatencyHist as a cumulative histogram in
// seconds under the given family name with one fixed label. Buckets are
// emitted up to the highest non-empty one (the +Inf bucket always
// carries the total), keeping the output compact while staying a valid
// cumulative series.
func (p *promWriter) promHistogram(name, labelKey, labelVal string, e latencyExport) {
	var cum uint64
	top := 0
	for b := 1; b <= latencyBuckets; b++ {
		if e.counts[b] > 0 {
			top = b
		}
	}
	for b := 1; b <= top; b++ {
		cum += e.counts[b]
		le := promFloat(float64(bucketUpperUS(b)) / 1e6)
		p.sample(name+"_bucket", promUint(cum), labelKey, labelVal, "le", le)
	}
	p.sample(name+"_bucket", promUint(e.total), labelKey, labelVal, "le", "+Inf")
	p.sample(name+"_sum", promFloat(float64(e.sumUS)/1e6), labelKey, labelVal)
	p.sample(name+"_count", promUint(e.total), labelKey, labelVal)
}

// sortedFamilies returns the families' names in stable order so scrapes
// are diffable.
func sortedFamilies(m map[string]*LatencyHist) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// promSnapshot bundles the non-histogram state the exposition renders
// alongside the registry.
type promSnapshot struct {
	uptimeSeconds float64
	build         BuildInfo
	cache         CacheStats
	pool          PoolStats
	robustness    RobustnessStats
	store         *StoreStats
	flightEvents  uint64
	fidelity      FidelityStats
	oracle        *OracleStatus
	cluster       *ClusterMetrics
	costs         []costSample
}

// writePrometheus renders the complete exposition. Every family carries
// # HELP and # TYPE lines; series within a family are sorted.
func writePrometheus(w io.Writer, m *Metrics, st promSnapshot) error {
	p := &promWriter{w: w}

	p.family("statsimd_uptime_seconds", "Seconds since the daemon's metrics registry was created.", "gauge")
	p.sample("statsimd_uptime_seconds", promFloat(st.uptimeSeconds))

	p.family("statsimd_build_info", "Build provenance; the value is always 1.", "gauge")
	p.sample("statsimd_build_info", "1",
		"version", st.build.Version,
		"go_version", st.build.GoVersion,
		"revision", st.build.Revision,
		"dirty", strconv.FormatBool(st.build.Dirty))

	endpoints := m.eachEndpoint()
	names := sortedFamilies(endpoints)
	exports := make(map[string]latencyExport, len(names))
	for _, name := range names {
		exports[name] = endpoints[name].export()
	}
	p.family("statsimd_requests_total", "Requests served, by endpoint.", "counter")
	for _, name := range names {
		p.sample("statsimd_requests_total", promUint(exports[name].total), "endpoint", name)
	}
	p.family("statsimd_request_errors_total", "Requests that returned an error, by endpoint.", "counter")
	for _, name := range names {
		p.sample("statsimd_request_errors_total", promUint(exports[name].errs), "endpoint", name)
	}
	p.family("statsimd_request_duration_seconds",
		"Request latency, log2-microsecond buckets rendered in seconds.", "histogram")
	for _, name := range names {
		p.promHistogram("statsimd_request_duration_seconds", "endpoint", name, exports[name])
	}

	stages := m.eachStage()
	stageNames := sortedFamilies(stages)
	p.family("statsimd_stage_duration_seconds",
		"Pipeline stage time (profile/reduce/generate/simulate), log2-microsecond buckets in seconds.", "histogram")
	for _, name := range stageNames {
		p.promHistogram("statsimd_stage_duration_seconds", "stage", name, stages[name].export())
	}

	p.family("statsimd_cache_lookups_total", "SFG cache lookups by outcome (hit, miss, coalesced).", "counter")
	p.sample("statsimd_cache_lookups_total", promUint(st.cache.Hits), "outcome", "hit")
	p.sample("statsimd_cache_lookups_total", promUint(st.cache.Misses), "outcome", "miss")
	p.sample("statsimd_cache_lookups_total", promUint(st.cache.Coalesced), "outcome", "coalesced")
	p.family("statsimd_cache_evictions_total", "SFG cache LRU evictions.", "counter")
	p.sample("statsimd_cache_evictions_total", promUint(st.cache.Evictions))
	p.family("statsimd_cache_resident", "Statistical profiles currently resident.", "gauge")
	p.sample("statsimd_cache_resident", strconv.Itoa(st.cache.Size))
	p.family("statsimd_cache_capacity", "Configured SFG cache capacity.", "gauge")
	p.sample("statsimd_cache_capacity", strconv.Itoa(st.cache.Capacity))

	p.family("statsimd_pool_workers", "Worker goroutines.", "gauge")
	p.sample("statsimd_pool_workers", strconv.Itoa(st.pool.Workers))
	p.family("statsimd_pool_queue_depth", "Jobs queued but not yet running.", "gauge")
	p.sample("statsimd_pool_queue_depth", strconv.Itoa(st.pool.QueueDepth))
	p.family("statsimd_pool_in_flight", "Jobs currently executing.", "gauge")
	p.sample("statsimd_pool_in_flight", strconv.Itoa(st.pool.InFlight))
	p.family("statsimd_pool_jobs_completed_total", "Jobs run to completion.", "counter")
	p.sample("statsimd_pool_jobs_completed_total", promUint(st.pool.Completed))
	p.family("statsimd_pool_jobs_failed_total", "Jobs that returned an error (including isolated panics).", "counter")
	p.sample("statsimd_pool_jobs_failed_total", promUint(st.pool.Failed))
	p.family("statsimd_pool_job_panics_total", "Jobs that panicked and were isolated.", "counter")
	p.sample("statsimd_pool_job_panics_total", promUint(st.pool.Panics))

	p.family("statsimd_shed_requests_total", "Requests shed by admission control (HTTP 429).", "counter")
	p.sample("statsimd_shed_requests_total", promUint(st.robustness.Shed))
	p.family("statsimd_job_retries_total", "Transient job failures retried.", "counter")
	p.sample("statsimd_job_retries_total", promUint(st.robustness.Retries))
	p.family("statsimd_sweep_points_resumed_total", "Sweep points served from checkpoint journals.", "counter")
	p.sample("statsimd_sweep_points_resumed_total", promUint(st.robustness.SweepPointsResumed))
	p.family("statsimd_sweep_points_total", "Sweep points by how they were answered: resumed from a checkpoint journal, served from the durable result store, predicted by the gated surrogate, or simulated.", "counter")
	p.sample("statsimd_sweep_points_total", promUint(st.robustness.SweepPointsResumed), "source", "resumed")
	p.sample("statsimd_sweep_points_total", promUint(st.robustness.SweepPointsFromStore), "source", "store")
	p.sample("statsimd_sweep_points_total", promUint(st.robustness.SweepPointsFromSurrogate), "source", "surrogate")
	p.sample("statsimd_sweep_points_total", promUint(st.robustness.SweepPointsSimulated), "source", "simulated")

	if len(st.costs) > 0 {
		p.family("statsimd_point_cost_points_total", "Cost-ledger entries by serving tier and executing node.", "counter")
		for _, c := range st.costs {
			p.sample("statsimd_point_cost_points_total", promUint(c.Points), "tier", c.Tier, "node", c.Node)
		}
		p.family("statsimd_point_cost_seconds_total", "Wall time attributed to sweep points by serving tier and executing node.", "counter")
		for _, c := range st.costs {
			p.sampleFloat("statsimd_point_cost_seconds_total", c.Seconds, "tier", c.Tier, "node", c.Node)
		}
	}

	p.family("statsimd_flight_events_total", "Request events recorded by the flight recorder.", "counter")
	p.sample("statsimd_flight_events_total", promUint(st.flightEvents))

	p.family("statsimd_fidelity_runs_total", "Adaptive-fidelity engine evaluations.", "counter")
	p.sample("statsimd_fidelity_runs_total", promUint(st.fidelity.Runs))
	p.family("statsimd_fidelity_converged_total", "Fidelity evaluations that met their CI target.", "counter")
	p.sample("statsimd_fidelity_converged_total", promUint(st.fidelity.Converged))
	p.family("statsimd_fidelity_escalations_total", "Phase strata escalated to execution-driven simulation.", "counter")
	p.sample("statsimd_fidelity_escalations_total", promUint(st.fidelity.Escalations))
	p.family("statsimd_fidelity_detailed_insts_total", "Instructions run through the execution-driven model by fidelity escalations (warm-up included).", "counter")
	p.sample("statsimd_fidelity_detailed_insts_total", promUint(st.fidelity.DetailedInsts))
	p.family("statsimd_fidelity_ci_width", "Final relative CI half-width per fidelity evaluation (sum/count expose the mean).", "summary")
	p.sampleFloat("statsimd_fidelity_ci_width_sum", st.fidelity.CIWidthSum)
	p.sample("statsimd_fidelity_ci_width_count", promUint(st.fidelity.CIWidthCount))

	if st.store != nil {
		p.family("statsimd_store_loads_total", "Durable profile loads served from disk.", "counter")
		p.sample("statsimd_store_loads_total", promUint(st.store.Loads))
		p.family("statsimd_store_misses_total", "Durable profile lookups with no file on disk.", "counter")
		p.sample("statsimd_store_misses_total", promUint(st.store.Misses))
		p.family("statsimd_store_saves_total", "Durable profile writes.", "counter")
		p.sample("statsimd_store_saves_total", promUint(st.store.Saves))
		p.family("statsimd_store_save_failures_total", "Durable profile writes that failed.", "counter")
		p.sample("statsimd_store_save_failures_total", promUint(st.store.SaveFailures))
		p.family("statsimd_store_quarantined_total", "Corrupt profile files quarantined.", "counter")
		p.sample("statsimd_store_quarantined_total", promUint(st.store.Quarantined))
	}

	if o := st.oracle; o != nil {
		p.family("statsimd_oracle_points_total", "Design points answered, by source (store = exact durable hit, surrogate = gated prediction, simulated = computed and fed back).", "counter")
		p.sample("statsimd_oracle_points_total", promUint(o.StoreServed), "source", "store")
		p.sample("statsimd_oracle_points_total", promUint(o.SurrogateServed), "source", "surrogate")
		p.sample("statsimd_oracle_points_total", promUint(o.Simulated), "source", "simulated")
		p.family("statsimd_oracle_gate_rejected_total", "Surrogate predictions withheld because their uncertainty exceeded the gate.", "counter")
		p.sample("statsimd_oracle_gate_rejected_total", promUint(o.GateRejected))
		p.family("statsimd_oracle_surrogate_max_ci", "Configured surrogate uncertainty gate (0 = surrogate serving disabled).", "gauge")
		p.sample("statsimd_oracle_surrogate_max_ci", promFloat(o.SurrogateMaxCI))
		p.family("statsimd_oracle_model_samples", "Training samples held by the surrogate model.", "gauge")
		p.sample("statsimd_oracle_model_samples", strconv.Itoa(o.Model.Samples))
		p.family("statsimd_oracle_model_contexts", "Distinct profile contexts the surrogate holds models for.", "gauge")
		p.sample("statsimd_oracle_model_contexts", strconv.Itoa(o.Model.Contexts))
		if rs := o.Store; rs != nil {
			p.family("statsimd_oracle_store_records", "Results persisted in the durable result log.", "gauge")
			p.sample("statsimd_oracle_store_records", strconv.Itoa(rs.Records))
			p.family("statsimd_oracle_store_lookups_total", "Result-store lookups by outcome.", "counter")
			p.sample("statsimd_oracle_store_lookups_total", promUint(rs.Hits), "outcome", "hit")
			p.sample("statsimd_oracle_store_lookups_total", promUint(rs.Misses), "outcome", "miss")
			p.family("statsimd_oracle_store_quarantined_total", "Corrupt result logs quarantined at open.", "counter")
			p.sample("statsimd_oracle_store_quarantined_total", promUint(uint64(rs.Quarantined)))
		}
	}

	if c := st.cluster; c != nil {
		p.family("statsimd_cluster_peers", "Configured peers by health state.", "gauge")
		p.sample("statsimd_cluster_peers", strconv.Itoa(c.PeersHealthy), "state", "healthy")
		p.sample("statsimd_cluster_peers", strconv.Itoa(c.PeersTotal-c.PeersHealthy), "state", "ejected")
		p.family("statsimd_cluster_probes_total", "Peer health probes performed.", "counter")
		p.sample("statsimd_cluster_probes_total", promUint(c.Probes))
		p.family("statsimd_cluster_ejections_total", "Peers ejected after consecutive probe or RPC failures.", "counter")
		p.sample("statsimd_cluster_ejections_total", promUint(c.Ejections))
		p.family("statsimd_cluster_readmissions_total", "Ejected peers re-admitted after consecutive probe successes.", "counter")
		p.sample("statsimd_cluster_readmissions_total", promUint(c.Readmissions))
		p.family("statsimd_cluster_graph_fetches_total", "Peer graph fetches by outcome (hit, miss, error).", "counter")
		p.sample("statsimd_cluster_graph_fetches_total", promUint(c.GraphFetchHits), "outcome", "hit")
		p.sample("statsimd_cluster_graph_fetches_total", promUint(c.GraphFetchMisses), "outcome", "miss")
		p.sample("statsimd_cluster_graph_fetches_total", promUint(c.GraphFetchErrors), "outcome", "error")
		p.family("statsimd_cluster_hedged_fetches_total", "Graph fetches where a hedge request was launched.", "counter")
		p.sample("statsimd_cluster_hedged_fetches_total", promUint(c.HedgedFetches))
		p.family("statsimd_cluster_hedge_wins_total", "Hedged fetches won by the hedge replica.", "counter")
		p.sample("statsimd_cluster_hedge_wins_total", promUint(c.HedgeWins))
		p.family("statsimd_cluster_offers_total", "Graph replicas offered to owner peers by outcome (sent, failed).", "counter")
		p.sample("statsimd_cluster_offers_total", promUint(c.OffersSent), "outcome", "sent")
		p.sample("statsimd_cluster_offers_total", promUint(c.OfferFailures), "outcome", "failed")
		p.family("statsimd_cluster_sweep_points_total", "Clustered sweep points by executor (remote peer, this node).", "counter")
		p.sample("statsimd_cluster_sweep_points_total", promUint(c.RemotePoints), "executor", "remote")
		p.sample("statsimd_cluster_sweep_points_total", promUint(c.LocalPoints), "executor", "local")
		p.family("statsimd_cluster_failovers_total", "Peers lost mid-sweep whose points were re-partitioned.", "counter")
		p.sample("statsimd_cluster_failovers_total", promUint(c.Failovers))
		p.family("statsimd_cluster_repartitioned_points_total", "Sweep points re-partitioned after losing a peer.", "counter")
		p.sample("statsimd_cluster_repartitioned_points_total", promUint(c.RepartitionedPoints))
		p.family("statsimd_cluster_rpc_retries_total", "Cluster RPC attempts retried after transient failures.", "counter")
		p.sample("statsimd_cluster_rpc_retries_total", promUint(c.RPCRetries))
		p.family("statsimd_cluster_graphs_served_total", "Peer fetch RPCs answered by outcome (served, missing).", "counter")
		p.sample("statsimd_cluster_graphs_served_total", promUint(c.Served.GraphsServed), "outcome", "served")
		p.sample("statsimd_cluster_graphs_served_total", promUint(c.Served.GraphsMissing), "outcome", "missing")
		p.family("statsimd_cluster_offers_received_total", "Peer offer RPCs by outcome (stored, rejected).", "counter")
		p.sample("statsimd_cluster_offers_received_total", promUint(c.Served.OffersStored), "outcome", "stored")
		p.sample("statsimd_cluster_offers_received_total", promUint(c.Served.OffersRejected), "outcome", "rejected")
	}
	return p.err
}
