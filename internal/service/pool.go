// Package service turns the statistical simulation framework into a
// long-lived concurrent service: a bounded worker pool, an LRU cache of
// statistical profiles with request coalescing, a shared parallel
// design-space sweep, and the HTTP handlers of the statsimd daemon.
//
// The paper's economics motivate the subsystem: profiling a workload
// into a statistical flow graph dominates cost, while each simulation
// from that graph is orders of magnitude cheaper (§4.6 explores 1,792
// design points from ten profiles). A service that keeps profiles
// resident amortises the expensive step across every query that shares
// a (workload, k, stream-length, seed) identity — and because the whole
// pipeline is deterministic given those inputs, serving from cache is
// indistinguishable from re-profiling.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPoolClosed is returned by Do after Drain has begun.
var ErrPoolClosed = errors.New("service: pool draining or closed")

// ErrJobPanic wraps every panic a job raised and the pool isolated, so
// callers (the flight-recorder dump, the panic counter) can distinguish
// a crashed job from an ordinary failure with errors.Is.
var ErrJobPanic = errors.New("service: job panic")

// job is one unit of pool work; done receives exactly one value.
type job struct {
	ctx  context.Context
	fn   func(context.Context) error
	done chan error
}

// Pool is a bounded worker pool with a job queue, optional per-job
// timeouts and graceful drain. Submission (Do) is synchronous: the
// caller blocks until its job completes, so the pool bounds *execution*
// concurrency while back-pressure propagates naturally to submitters —
// exactly what an HTTP handler or a fan-out sweep wants.
type Pool struct {
	jobs    chan job
	timeout time.Duration // per-job timeout; 0 = none
	nworker int

	mu     sync.Mutex
	closed bool
	active sync.WaitGroup // accepted jobs not yet finished
	worked sync.WaitGroup // running worker goroutines

	queued    atomic.Int64
	inFlight  atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
	panicked  atomic.Uint64
}

// NewPool starts a pool of the given number of workers (<= 0 means
// GOMAXPROCS) with a queue of 4x that depth.
func NewPool(workers int) *Pool { return NewPoolTimeout(workers, 0) }

// NewPoolTimeout is NewPool with a per-job timeout: each job's context
// is cancelled once it has run for the given duration (0 disables).
func NewPoolTimeout(workers int, timeout time.Duration) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		jobs:    make(chan job, 4*workers),
		timeout: timeout,
		nworker: workers,
	}
	p.worked.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.worked.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		if err := j.ctx.Err(); err != nil {
			// Submitter abandoned the job while it queued.
			j.done <- err
			p.failed.Add(1)
			p.active.Done()
			continue
		}
		p.inFlight.Add(1)
		ctx, cancel := j.ctx, context.CancelFunc(nil)
		if p.timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, p.timeout)
		}
		err := runJob(ctx, j.fn)
		if cancel != nil {
			cancel()
		}
		p.inFlight.Add(-1)
		p.completed.Add(1)
		if err != nil {
			p.failed.Add(1)
			if errors.Is(err, ErrJobPanic) {
				p.panicked.Add(1)
			}
		}
		j.done <- err
		p.active.Done()
	}
}

// runJob isolates a job's panic into an error so one bad request cannot
// take down the daemon's worker.
func runJob(ctx context.Context, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrJobPanic, r)
		}
	}()
	return fn(ctx)
}

// Do submits fn and blocks until it has run (returning its error), the
// context is cancelled, or the pool is draining. fn receives a context
// derived from ctx, additionally bounded by the pool's per-job timeout.
func (p *Pool) Do(ctx context.Context, fn func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	// Registering under the lock orders every accepted job before
	// Drain's active.Wait, which in turn orders close(p.jobs) after the
	// send below — Drain can never close the channel under a send.
	p.active.Add(1)
	p.mu.Unlock()

	j := job{ctx: ctx, fn: fn, done: make(chan error, 1)}
	p.queued.Add(1)
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		p.queued.Add(-1)
		p.active.Done()
		return ctx.Err()
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		// The worker still owns the job; it observes ctx.Done via the
		// derived context and unwinds on its own.
		return ctx.Err()
	}
}

// Drain stops accepting new jobs, waits for every accepted job (queued
// or in flight) to finish, then stops the workers. If ctx expires first
// it returns the context error and leaves the workers running on the
// remaining jobs (the process is normally about to exit).
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.closed = true
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.active.Wait()
		close(done)
	}()
	select {
	case <-done:
		close(p.jobs)
		p.worked.Wait()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PoolStats is a point-in-time snapshot of pool load.
type PoolStats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Panics     uint64 `json:"panics"`
}

// Stats reports current pool load.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    p.nworker,
		QueueDepth: int(p.queued.Load()),
		InFlight:   int(p.inFlight.Load()),
		Completed:  p.completed.Load(),
		Failed:     p.failed.Load(),
		Panics:     p.panicked.Load(),
	}
}

// Map runs f for every index 0..n-1 through the pool and returns the
// results in input order, regardless of completion order — parallel
// fan-out with deterministic output. The first job error aborts the
// whole map (remaining jobs still run to completion, their results are
// discarded).
func Map[T any](ctx context.Context, p *Pool, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Do(ctx, func(ctx context.Context) error {
				v, err := f(ctx, i)
				if err != nil {
					return err
				}
				out[i] = v
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("service: job %d: %w", i, err)
		}
	}
	return out, nil
}
