package service

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/lockstep"
	"repro/internal/obs"
	"repro/internal/sfg"
)

// The sweep engines below route design points through the lockstep
// batch simulator (internal/lockstep): pending points are planned into
// cohorts — every point of one SweepWithJournal call shares (graph, R,
// seed), the full trace identity, so they always form a single cohort —
// and each cohort into contiguous groups sized for the pool. One group
// is one pool job: a single reduction + trace-generation pass drives
// all of the group's pipeline instances in lockstep, so a sweep's cost
// approaches one generation plus a per-point simulation increment
// instead of a full generation per point.
//
// Byte-identity with the per-point path is preserved because each
// point's metrics are a pure function of (point config, graph, R,
// seed) — independent of group membership, group size, worker count and
// completion order. The per-point boundaries the serial engine
// guaranteed survive inside the group loop: the context is observed and
// the SiteSweepJob fault site fires once per point, before that point
// joins its batch, so cancellation and injected failures keep per-point
// granularity.

// runPendingBatched simulates the given grid indices on the pool using
// the lockstep plan, calling report once per completed point (from the
// worker that finished its group; indices are disjoint across calls).
// Points whose fault-site evaluation fails are skipped and reported as
// an error after the surviving points of the group have completed, so a
// partial crash journals everything that did finish — exactly like the
// per-point engine it replaces.
//
// noteCost, when non-nil, receives one cost observation per completed
// point: the plan's group index is the point's cohort ID, and the
// group's wall time is split evenly across its points (the lockstep
// engine advances all of a group's pipelines together, so an even split
// is the faithful attribution). Each cohort also records one "cohort"
// span on the request's tracer, so the assembled trace shows where a
// sweep's simulation time went group by group.
func runPendingBatched(ctx context.Context, pool *Pool, faults *fault.Injector, base cpu.Config, g *sfg.Graph, points []SweepPoint, indices []int, r, seed uint64, report func(index int, m core.Metrics), noteCost func(index, cohort int, wallS float64)) error {
	pts := make([]lockstep.Point, len(indices))
	key := lockstep.Key{K: g.K, R: r, Seed: seed}
	for k, i := range indices {
		pts[k] = lockstep.Point{Key: key, Index: i}
	}
	plan := lockstep.Plan(pts, lockstep.Options{Parallel: pool.Stats().Workers})
	tracer := obs.TracerFromContext(ctx)
	_, err := Map(ctx, pool, len(plan), func(ctx context.Context, gi int) (struct{}, error) {
		groupStart := time.Now()
		_, span := tracer.StartSpan(ctx, "cohort")
		span.Annotate("cohort", strconv.Itoa(gi))
		span.Annotate("points", strconv.Itoa(len(plan[gi].Indices)))
		defer span.End()
		finish := func(batch []int) {
			if noteCost == nil || len(batch) == 0 {
				return
			}
			wall := time.Since(groupStart).Seconds() / float64(len(batch))
			for _, i := range batch {
				noteCost(i, gi, wall)
			}
		}
		var firstErr error
		batch := make([]int, 0, len(plan[gi].Indices))
		for _, i := range plan[gi].Indices {
			// A design point takes long enough that queued work draining
			// after cancellation is real waste: bail at each point
			// boundary so a disconnected client stops the sweep promptly.
			if err := ctx.Err(); err != nil {
				return struct{}{}, err
			}
			if err := faults.Fire(SiteSweepJob); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("point %s: %w", points[i], err)
				}
				continue
			}
			batch = append(batch, i)
		}
		switch len(batch) {
		case 0:
		case 1:
			i := batch[0]
			m, err := simulatePoint(base, g, points, i, r, seed)
			if err != nil {
				return struct{}{}, fmt.Errorf("point %s: %w", points[i], err)
			}
			report(i, m)
			finish(batch)
		default:
			cfgs := make([]cpu.Config, len(batch))
			for k, i := range batch {
				cfgs[k] = points[i].Apply(base)
			}
			ms, err := core.SimulateBatch(cfgs, g, r, seed)
			if err != nil {
				return struct{}{}, fmt.Errorf("points %s..%s: %w", points[batch[0]], points[batch[len(batch)-1]], err)
			}
			for k, i := range batch {
				report(i, ms[k])
			}
			finish(batch)
		}
		return struct{}{}, firstErr
	})
	return err
}
