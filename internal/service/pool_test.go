package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobsBounded(t *testing.T) {
	p := NewPool(3)
	defer p.Drain(context.Background())
	var running, peak, n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(context.Context) error {
				cur := running.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				running.Add(-1)
				n.Add(1)
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Errorf("ran %d/20 jobs", n.Load())
	}
	if peak.Load() > 3 {
		t.Errorf("concurrency %d exceeded 3 workers", peak.Load())
	}
	if st := p.Stats(); st.Completed != 20 || st.Failed != 0 || st.Workers != 3 {
		t.Errorf("stats %+v", st)
	}
}

func TestPoolPropagatesErrorsAndPanics(t *testing.T) {
	p := NewPool(1)
	defer p.Drain(context.Background())
	want := errors.New("boom")
	if err := p.Do(context.Background(), func(context.Context) error { return want }); !errors.Is(err, want) {
		t.Errorf("error not propagated: %v", err)
	}
	err := p.Do(context.Background(), func(context.Context) error { panic("kaboom") })
	if err == nil {
		t.Fatal("panic swallowed")
	}
	// The worker must survive the panic.
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Errorf("pool dead after panic: %v", err)
	}
}

func TestPoolPerJobTimeout(t *testing.T) {
	p := NewPoolTimeout(1, 10*time.Millisecond)
	defer p.Drain(context.Background())
	err := p.Do(context.Background(), func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout not applied: %v", err)
	}
}

func TestPoolDrainWaitsForQueuedJobs(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) error {
				<-release
				done.Add(1)
				return nil
			})
		}()
	}
	// Wait until all five are accepted (1 in flight + 4 queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.InFlight+st.QueueDepth == 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if done.Load() != 5 {
		t.Errorf("drain lost jobs: %d/5 ran", done.Load())
	}
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Do after drain: %v", err)
	}
	if err := p.Drain(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("second drain: %v", err)
	}
}

func TestPoolDoHonoursContext(t *testing.T) {
	p := NewPool(1)
	defer p.Drain(context.Background())
	block := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { <-block; return nil })
	for p.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// The worker is occupied; this submission must give up with the ctx.
	err := p.Do(ctx, func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued Do ignored context: %v", err)
	}
	close(block)
}

func TestMapPreservesOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Drain(context.Background())
	out, err := Map(context.Background(), p, 50, func(_ context.Context, i int) (int, error) {
		// Reverse-staggered sleeps force completion out of input order.
		time.Sleep(time.Duration(50-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	p := NewPool(2)
	defer p.Drain(context.Background())
	want := errors.New("bad point")
	_, err := Map(context.Background(), p, 8, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Errorf("Map error: %v", err)
	}
}

// TestPoolDrainWaitsForInFlightJob: Drain must block on a job already
// executing (not just queued ones) and complete once it finishes.
func TestPoolDrainWaitsForInFlightJob(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	var finished atomic.Bool
	go p.Do(context.Background(), func(context.Context) error {
		<-release
		finished.Store(true)
		return nil
	})
	for p.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	select {
	case <-drained:
		t.Fatal("Drain returned with a job still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !finished.Load() {
		t.Error("drain returned before the in-flight job finished")
	}
}

// TestPoolDrainRacesDo hammers submission against shutdown: every Do
// must either run its job exactly once or report ErrPoolClosed —
// never hang, never run after Drain returns.
func TestPoolDrainRacesDo(t *testing.T) {
	p := NewPool(4)
	var ran, rejected atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			err := p.Do(context.Background(), func(context.Context) error {
				ran.Add(1)
				return nil
			})
			switch {
			case err == nil:
			case errors.Is(err, ErrPoolClosed):
				rejected.Add(1)
			default:
				t.Errorf("Do: %v", err)
			}
		}()
	}
	close(start)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ranAtDrain := ran.Load()
	wg.Wait()
	if ran.Load() != ranAtDrain {
		t.Errorf("%d jobs ran after Drain returned", ran.Load()-ranAtDrain)
	}
	if ran.Load()+rejected.Load() != 50 {
		t.Errorf("accounting: ran=%d rejected=%d, want 50 total", ran.Load(), rejected.Load())
	}
}

// TestPoolDoCancelledDuringDrain: a caller whose context dies while its
// job drains must get its context error immediately; the job itself
// still completes and the drain still succeeds.
func TestPoolDoCancelledDuringDrain(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	var finished atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	doErr := make(chan error, 1)
	go func() {
		doErr <- p.Do(ctx, func(context.Context) error {
			<-release
			finished.Store(true)
			return nil
		})
	}()
	for p.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()

	cancel()
	if err := <-doErr; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Do: %v", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while the abandoned job still runs")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !finished.Load() {
		t.Error("abandoned job was dropped instead of drained")
	}
}

// TestPoolDrainContextExpiry: an expiring drain budget must surface as
// the context error without deadlocking the workers.
func TestPoolDrainContextExpiry(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { <-release; return nil })
	for p.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired drain: %v", err)
	}
	close(release) // workers keep running; let the job finish
}
