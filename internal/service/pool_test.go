package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobsBounded(t *testing.T) {
	p := NewPool(3)
	defer p.Drain(context.Background())
	var running, peak, n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(context.Context) error {
				cur := running.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				running.Add(-1)
				n.Add(1)
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Errorf("ran %d/20 jobs", n.Load())
	}
	if peak.Load() > 3 {
		t.Errorf("concurrency %d exceeded 3 workers", peak.Load())
	}
	if st := p.Stats(); st.Completed != 20 || st.Failed != 0 || st.Workers != 3 {
		t.Errorf("stats %+v", st)
	}
}

func TestPoolPropagatesErrorsAndPanics(t *testing.T) {
	p := NewPool(1)
	defer p.Drain(context.Background())
	want := errors.New("boom")
	if err := p.Do(context.Background(), func(context.Context) error { return want }); !errors.Is(err, want) {
		t.Errorf("error not propagated: %v", err)
	}
	err := p.Do(context.Background(), func(context.Context) error { panic("kaboom") })
	if err == nil {
		t.Fatal("panic swallowed")
	}
	// The worker must survive the panic.
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Errorf("pool dead after panic: %v", err)
	}
}

func TestPoolPerJobTimeout(t *testing.T) {
	p := NewPoolTimeout(1, 10*time.Millisecond)
	defer p.Drain(context.Background())
	err := p.Do(context.Background(), func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout not applied: %v", err)
	}
}

func TestPoolDrainWaitsForQueuedJobs(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) error {
				<-release
				done.Add(1)
				return nil
			})
		}()
	}
	// Wait until all five are accepted (1 in flight + 4 queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.InFlight+st.QueueDepth == 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if done.Load() != 5 {
		t.Errorf("drain lost jobs: %d/5 ran", done.Load())
	}
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Do after drain: %v", err)
	}
	if err := p.Drain(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("second drain: %v", err)
	}
}

func TestPoolDoHonoursContext(t *testing.T) {
	p := NewPool(1)
	defer p.Drain(context.Background())
	block := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { <-block; return nil })
	for p.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// The worker is occupied; this submission must give up with the ctx.
	err := p.Do(ctx, func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued Do ignored context: %v", err)
	}
	close(block)
}

func TestMapPreservesOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Drain(context.Background())
	out, err := Map(context.Background(), p, 50, func(_ context.Context, i int) (int, error) {
		// Reverse-staggered sleeps force completion out of input order.
		time.Sleep(time.Duration(50-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	p := NewPool(2)
	defer p.Drain(context.Background())
	want := errors.New("bad point")
	_, err := Map(context.Background(), p, 8, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Errorf("Map error: %v", err)
	}
}
