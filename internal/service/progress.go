package service

import "sync"

// Live sweep progress: the sweep engine publishes one event per
// completed design point into a per-request feed keyed by the request's
// trace ID, and GET /v1/sweep/progress?id=<trace-id> streams the feed
// as server-sent events. A client that wants to watch a long sweep sets
// X-Request-Id on its POST /v1/sweep and subscribes with the same ID —
// before, during or shortly after the sweep (feeds buffer their full
// event history, so a late subscriber replays from the start).

// ProgressEvent is one server-sent event of a sweep's lifetime.
type ProgressEvent struct {
	// Type is "start" (sweep admitted: total and resumed counts),
	// "point" (one design point finished), "done" (all points merged) or
	// "error" (the sweep failed).
	Type    string `json:"type"`
	TraceID string `json:"trace_id"`
	// Total and Resumed describe the sweep ("start", "done"): grid size
	// and points served from a checkpoint journal.
	Total   int `json:"total,omitempty"`
	Resumed int `json:"resumed,omitempty"`
	// Completed counts points finished so far, including resumed ones.
	Completed int `json:"completed,omitempty"`
	// Index, Point and Metrics describe one finished point ("point").
	Index   int         `json:"index"`
	Point   *SweepPoint `json:"point,omitempty"`
	Metrics *SimMetrics `json:"metrics,omitempty"`
	// Served distinguishes oracle-answered points from simulated work on
	// "point" events: "store" (exact durable-store hit) or "surrogate"
	// (gated prediction, Estimated=true — the metrics are an estimate,
	// not a measurement). Empty for freshly simulated points.
	Served    string `json:"served,omitempty"`
	Estimated bool   `json:"estimated,omitempty"`
	// FromStore and FromSurrogate summarise the oracle's share of a
	// finished sweep ("done").
	FromStore     int    `json:"from_store,omitempty"`
	FromSurrogate int    `json:"from_surrogate,omitempty"`
	Error         string `json:"error,omitempty"`
}

// terminal reports whether the event ends its feed.
func (ev ProgressEvent) terminal() bool { return ev.Type == "done" || ev.Type == "error" }

// progressFeed is one sweep's ordered event history plus a broadcast
// channel that wakes subscribers on publish. Events are never dropped:
// subscribers read the shared buffer by index, so a slow consumer lags
// without losing data (the buffer is bounded by the sweep's point
// count, itself capped by MaxSweepPoints).
type progressFeed struct {
	id string

	mu     sync.Mutex
	wake   chan struct{} // closed and replaced on every publish
	events []ProgressEvent
	done   bool
}

func newProgressFeed(id string) *progressFeed {
	return &progressFeed{id: id, wake: make(chan struct{})}
}

// publish appends one event and wakes every waiting subscriber. Events
// after a terminal one are dropped — the feed's story has ended. A nil
// feed discards everything: cluster fan-out sub-sweeps share the root
// request's trace ID, so they run with a nil feed rather than colliding
// with the coordinator's feed for the same ID.
func (f *progressFeed) publish(ev ProgressEvent) {
	if f == nil {
		return
	}
	ev.TraceID = f.id
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.events = append(f.events, ev)
	if ev.terminal() {
		f.done = true
	}
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// next returns the events from index from onward, whether the feed has
// ended, and a channel that closes on the next publish (for use when no
// new events were available).
func (f *progressFeed) next(from int) (evs []ProgressEvent, done bool, wake <-chan struct{}) {
	if f == nil {
		return nil, true, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < len(f.events) {
		evs = f.events[from:len(f.events):len(f.events)]
	}
	return evs, f.done, f.wake
}

// progressHub indexes feeds by trace ID. Finished feeds are retained
// (so a subscriber attaching just after completion still replays the
// run) until capacity forces eviction, oldest-finished first.
type progressHub struct {
	capacity int

	mu    sync.Mutex
	feeds map[string]*progressFeed
	order []string // insertion order, for eviction
}

func newProgressHub(capacity int) *progressHub {
	if capacity < 1 {
		capacity = 64
	}
	return &progressHub{capacity: capacity, feeds: make(map[string]*progressFeed)}
}

// feed returns (creating if needed) the feed for a trace ID. Both the
// sweep handler and subscribers use it, so subscribing before the sweep
// starts works: the subscriber parks on the empty feed and replays once
// the sweep attaches.
func (h *progressHub) feed(id string) *progressFeed {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f, ok := h.feeds[id]; ok {
		return f
	}
	f := newProgressFeed(id)
	h.feeds[id] = f
	h.order = append(h.order, id)
	h.evictLocked()
	return f
}

// evictLocked drops the oldest finished feeds past capacity; if none
// have finished, the oldest feed goes regardless so a flood of
// never-started subscriptions cannot grow the hub without bound.
func (h *progressHub) evictLocked() {
	for len(h.order) > h.capacity {
		victim := -1
		for i, id := range h.order {
			if f := h.feeds[id]; f != nil {
				f.mu.Lock()
				done := f.done
				f.mu.Unlock()
				if done {
					victim = i
					break
				}
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(h.feeds, h.order[victim])
		h.order = append(h.order[:victim], h.order[victim+1:]...)
	}
}

// size reports the resident feed count.
func (h *progressHub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.feeds)
}
