package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sfg"
)

var clusterTestKey = ProfileKey{Workload: "vpr", K: 1, N: 20_000, Seed: 1}
var clusterTestSpec = ProfileSpec{Workload: "vpr", K: 1, N: 20_000, Seed: 1}

// fakeCluster is a scriptable service.Cluster for white-box handler
// tests. SweepPending delegates everything back to job.Local — the
// routing decision, not remote execution, is what these tests pin down.
type fakeCluster struct {
	graph      *sfg.Graph
	fetchPeer  string
	fetchErr   error
	fetchCalls atomic.Uint64
	offerCalls atomic.Uint64
	sweepCalls atomic.Uint64
}

func (f *fakeCluster) FetchGraph(ctx context.Context, key ProfileKey) (*sfg.Graph, string, error) {
	f.fetchCalls.Add(1)
	if f.fetchErr != nil {
		return nil, "", f.fetchErr
	}
	if f.graph == nil {
		return nil, "", ErrNoRemoteGraph
	}
	return f.graph, f.fetchPeer, nil
}

func (f *fakeCluster) OfferGraph(ctx context.Context, key ProfileKey, g *sfg.Graph) {
	f.offerCalls.Add(1)
}

func (f *fakeCluster) SweepPending(ctx context.Context, job ClusterSweepJob) error {
	f.sweepCalls.Add(1)
	return job.Local(ctx, job.Pending)
}

func (f *fakeCluster) Status() ClusterStatus { return ClusterStatus{Self: "fake"} }
func (f *fakeCluster) Stats() ClusterStats   { return ClusterStats{} }

func (f *fakeCluster) PeerMetrics(ctx context.Context, peer string) ([]byte, error) {
	return nil, errors.New("fake cluster has no peers")
}

func TestCachePeekAndPut(t *testing.T) {
	c := NewGraphCache(2)
	if _, ok := c.Peek(clusterTestKey); ok {
		t.Fatal("peek hit on empty cache")
	}
	g := testGraph(t)
	c.Put(clusterTestKey, g)
	got, ok := c.Peek(clusterTestKey)
	if !ok || got != g {
		t.Fatal("put graph not peekable")
	}
	// Peek must not disturb the hit/miss accounting the request path
	// owns.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek/put touched lookup stats: %+v", st)
	}
	// Put respects capacity.
	other := clusterTestKey
	for i := uint64(2); i <= 4; i++ {
		other.Seed = i
		c.Put(other, g)
	}
	if st := c.Stats(); st.Size > 2 || st.Evictions == 0 {
		t.Errorf("put did not evict at capacity: %+v", st)
	}
	// nil graphs are refused, not cached.
	c.Put(clusterTestKey, nil)
}

func TestClusterFetchOfferHandlers(t *testing.T) {
	svc, ts := newTestServerOpts(t, Options{Workers: 2, CacheSize: 4, JobTimeout: time.Minute, CacheDir: t.TempDir()})

	// Fetch before anything is resident: a clean 404, never profiling.
	fetchBody, _ := json.Marshal(ClusterFetchRequest{Key: clusterTestKey})
	resp, err := http.Post(ts.URL+"/v1/cluster/fetch", "application/json", bytes.NewReader(fetchBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch of absent profile: %d", resp.StatusCode)
	}
	if svc.clusterServed.graphsMissing.Load() != 1 {
		t.Errorf("missing fetch not counted")
	}

	// Offer a valid envelope: it lands in cache and store.
	g := testGraph(t)
	env, err := EncodeProfileEnvelope(clusterTestKey, g)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/cluster/offer", "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offer rejected: %d", resp.StatusCode)
	}
	if _, ok := svc.cache.Peek(clusterTestKey); !ok {
		t.Error("offered graph not in cache")
	}
	if g2, err := svc.store.Load(clusterTestKey); err != nil || g2 == nil {
		t.Errorf("offered graph not persisted: %v", err)
	}

	// Fetch now round-trips the same envelope, CRC-checked end to end.
	resp, err = http.Post(ts.URL+"/v1/cluster/fetch", "application/json", bytes.NewReader(fetchBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch after offer: %d", resp.StatusCode)
	}
	key, got, err := DecodeProfileEnvelope(body, &clusterTestKey)
	if err != nil {
		t.Fatalf("served envelope invalid: %v", err)
	}
	if key != clusterTestKey || got.TotalInstructions != g.TotalInstructions {
		t.Errorf("served graph differs")
	}

	// A corrupted offer is rejected wholesale.
	bad := append([]byte(nil), env...)
	bad[len(bad)/2] ^= 0xFF
	resp, err = http.Post(ts.URL+"/v1/cluster/offer", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt offer accepted: %d", resp.StatusCode)
	}
	if svc.clusterServed.offersRejected.Load() != 1 {
		t.Errorf("rejected offer not counted")
	}
}

func TestClusterStatusUnclustered(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unclustered status: %d, want 404", resp.StatusCode)
	}
}

// TestResolveProfileRemoteTier: with a cluster attached, a cache+store
// miss consults the peers before paying for profiling.
func TestResolveProfileRemoteTier(t *testing.T) {
	g := testGraph(t)
	fake := &fakeCluster{graph: g, fetchPeer: "http://peer-a:8417"}
	svc, ts := newTestServer(t)
	svc.SetCluster(fake)

	var sim SimulateResponse
	if code, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Profile: clusterTestSpec, Target: 5_000}, &sim); code != 200 {
		t.Fatalf("simulate: %d %s", code, body)
	}
	if fake.fetchCalls.Load() != 1 {
		t.Errorf("cluster consulted %d times, want 1", fake.fetchCalls.Load())
	}
	// The remote graph short-circuits profiling entirely.
	if snap := svc.metrics.Snapshot(svc.cache, svc.pool); snap.Stages["profile"].Count != 0 {
		t.Errorf("profiled locally despite remote hit: %+v", snap.Stages)
	}
	// The flight recorder credits the serving peer.
	var sawPeer bool
	for _, ev := range svc.flight.Recent(0) {
		if ev.Peer == "http://peer-a:8417" {
			sawPeer = true
		}
	}
	if !sawPeer {
		t.Error("request event does not name the serving peer")
	}

	// When no peer holds it, profiling proceeds — and the fresh graph
	// is offered back to the owners.
	fake2 := &fakeCluster{fetchErr: ErrNoRemoteGraph}
	svc2, ts2 := newTestServer(t)
	svc2.SetCluster(fake2)
	if code, body := postJSON(t, ts2.URL+"/v1/simulate", SimulateRequest{Profile: clusterTestSpec, Target: 5_000}, nil); code != 200 {
		t.Fatalf("simulate with cluster miss: %d %s", code, body)
	}
	if fake2.offerCalls.Load() != 1 {
		t.Errorf("fresh profile offered %d times, want 1", fake2.offerCalls.Load())
	}
}

// TestSweepClusteredDelegation: a clustered sweep routes pending points
// through the Cluster, a fanout-marked one never does.
func TestSweepClusteredDelegation(t *testing.T) {
	fake := &fakeCluster{}
	svc, ts := newTestServer(t)
	svc.SetCluster(fake)

	req := SweepRequest{Profile: clusterTestSpec, Grid: "quick", Target: 5_000, RawMetrics: true}
	var resp SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep", req, &resp); code != 200 {
		t.Fatalf("clustered sweep: %d %s", code, body)
	}
	if fake.sweepCalls.Load() != 1 {
		t.Fatalf("cluster SweepPending called %d times, want 1", fake.sweepCalls.Load())
	}
	if len(resp.Results) != 9 {
		t.Fatalf("results: %d", len(resp.Results))
	}
	for i, row := range resp.Results {
		if row.Raw == nil {
			t.Fatalf("row %d missing raw metrics", i)
		}
		// Raw must agree with the wire metrics it sits beside.
		if wireMetrics(*row.Raw) != row.Metrics {
			t.Fatalf("row %d raw/wire metrics disagree", i)
		}
	}

	// Same request marked as a coordinator fanout: computed locally.
	buf, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ClusterFanoutHeader, "1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("fanout sweep: %d", hresp.StatusCode)
	}
	if fake.sweepCalls.Load() != 1 {
		t.Error("fanout sub-sweep was fanned out again")
	}
}

// TestSweepClientDisconnectAbortsQueuedPoints (satellite): when the
// requesting client goes away, queued design points must not keep
// burning the pool — the context check at the job boundary stops the
// sweep promptly.
func TestSweepClientDisconnectAbortsQueuedPoints(t *testing.T) {
	in := fault.New(3)
	// Every point takes ≥60ms: with one worker, a 9-point quick grid
	// would hold the pool ~540ms+ if cancellation did not bite.
	in.Set(SiteSweepJob, fault.Rule{Prob: 1, Times: 100, Delay: 60 * time.Millisecond})
	svc, ts := newTestServerOpts(t, Options{Workers: 1, CacheSize: 4, JobTimeout: time.Minute, Faults: in})

	// Warm the profile so the sweep's time is all points.
	if code, body := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{ProfileSpec: clusterTestSpec}, nil); code != 200 {
		t.Fatalf("profile: %d %s", code, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(SweepRequest{Profile: clusterTestSpec, Grid: "quick", Target: 5_000})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Let the sweep get into its first slow point, then vanish.
	time.Sleep(100 * time.Millisecond)
	cancel()
	wg.Wait()

	// Give the in-flight point a moment to finish, then require the
	// pool to be idle long before 9 points' worth of delay.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := svc.pool.Stats()
		if st.InFlight == 0 && st.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool still busy after disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fired := in.Fired(SiteSweepJob); fired >= 9 {
		t.Errorf("all %d points ran despite client disconnect", fired)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseDelay: time.Nanosecond}
	calls := 0
	sentinel := errors.New("definitive no")
	err := p.Run(context.Background(), nil, func() error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("cause lost through Permanent: %v", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must stay nil")
	}
}

func TestTargetForReductionInvertsExactly(t *testing.T) {
	g := testGraph(t)
	for _, target := range []uint64{1, 100, 5_000, 12_345, g.TotalInstructions, g.TotalInstructions * 3} {
		red := core.ReductionFor(g, target)
		back := targetForReduction(g, red)
		if got := core.ReductionFor(g, back); got != red {
			t.Errorf("target %d: reduction %d re-derives as %d via wire target %d", target, red, got, back)
		}
	}
}
