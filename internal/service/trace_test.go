package service

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// postJSONTraced posts body with an explicit X-Request-Id so the test
// can find the request's spans and flight events afterwards.
func postJSONTraced(t *testing.T, url, traceID string, body, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

// TestSweepCostLedger runs a sweep with cost accounting requested and
// checks the ledger's core guarantee: every grid point has exactly one
// entry carrying (tier, node, wall time), and the opt-in is honoured —
// without cost:true the response body carries no ledger at all.
func TestSweepCostLedger(t *testing.T) {
	_, ts := newTestServer(t)
	req := SweepRequest{
		Profile: ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 1},
		Grid:    "quick", Target: 5_000, Cost: true,
	}
	var resp SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep", req, &resp); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	if len(resp.Cost) != resp.Points {
		t.Fatalf("ledger covers %d of %d points", len(resp.Cost), resp.Points)
	}
	seen := make(map[int]bool)
	for _, e := range resp.Cost {
		if seen[e.Index] {
			t.Fatalf("duplicate ledger entry for point %d", e.Index)
		}
		seen[e.Index] = true
		if e.Tier != TierSimulated {
			t.Errorf("point %d tier = %q, want simulated on a cold unclustered sweep", e.Index, e.Tier)
		}
		if e.Node != "local" {
			t.Errorf("point %d node = %q, want local", e.Index, e.Node)
		}
		if e.Cohort < 0 {
			t.Errorf("point %d has no lockstep cohort", e.Index)
		}
		if e.WallS < 0 {
			t.Errorf("point %d wall time negative: %v", e.Index, e.WallS)
		}
		if e.Estimated {
			t.Errorf("point %d flagged estimated without a surrogate", e.Index)
		}
	}
	for i := 0; i < resp.Points; i++ {
		if !seen[i] {
			t.Fatalf("point %d missing from the ledger", i)
		}
	}

	// TraceSpans is a fanout-only field; a direct sweep must not leak it,
	// and without cost:true the ledger must stay off the wire.
	req.Cost = false
	if code, body := postJSON(t, ts.URL+"/v1/sweep", req, nil); code != 200 {
		t.Fatalf("second sweep: %d %s", code, body)
	} else {
		if strings.Contains(body, `"cost"`) {
			t.Error("cost ledger leaked into a response that did not ask for it")
		}
		if strings.Contains(body, "trace_spans") {
			t.Error("trace_spans leaked into a non-fanout response")
		}
	}
}

// TestDebugTraceEndpoint exercises GET /v1/debug/trace/{id}: a traced
// sweep yields an assembled tree rooted at the http span with the
// sweep stages below it; unknown IDs answer 404.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	const traceID = "trace-tree-test"
	req := SweepRequest{
		Profile: ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 1},
		Grid:    "quick", Target: 5_000,
	}
	if code, body := postJSONTraced(t, ts.URL+"/v1/sweep", traceID, req, nil); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var tree obs.TraceTree
	if code := getJSON(t, ts.URL+"/v1/debug/trace/"+traceID, &tree); code != 200 {
		t.Fatalf("trace fetch: %d", code)
	}
	if tree.TraceID != traceID || tree.Spans == 0 || len(tree.Roots) == 0 {
		t.Fatalf("empty tree: %+v", tree)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0] != "local" {
		t.Fatalf("nodes = %v, want [local]", tree.Nodes)
	}
	root := tree.Roots[0]
	if root.Name != "http /v1/sweep" {
		t.Fatalf("root span = %q, want the http span", root.Name)
	}
	var cohorts int
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		if n.Name == "cohort" {
			cohorts++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if cohorts == 0 {
		t.Error("no cohort spans under the sweep root")
	}

	if code := getJSON(t, ts.URL+"/v1/debug/trace/never-seen", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
}

// TestDebugRequestsTraceFilter pins satellite behaviour on the flight
// recorder: ?trace_id= keeps only the matching events, and each event
// reports how many spans its request produced.
func TestDebugRequestsTraceFilter(t *testing.T) {
	_, ts := newTestServer(t)
	spec := ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 1}
	for _, id := range []string{"filter-a", "filter-b"} {
		if code, body := postJSONTraced(t, ts.URL+"/v1/profile", id, ProfileRequest{ProfileSpec: spec}, nil); code != 200 {
			t.Fatalf("profile %s: %d %s", id, code, body)
		}
	}
	var resp DebugRequestsResponse
	if code := getJSON(t, ts.URL+"/v1/debug/requests?trace_id=filter-a", &resp); code != 200 {
		t.Fatalf("debug requests: %d", code)
	}
	if len(resp.Events) != 1 {
		t.Fatalf("filter kept %d events, want 1", len(resp.Events))
	}
	ev := resp.Events[0]
	if ev.TraceID != "filter-a" {
		t.Fatalf("filtered event has trace %q", ev.TraceID)
	}
	if ev.Spans == 0 {
		t.Error("event reports zero spans for a traced request")
	}
	// An unknown trace ID filters everything out rather than erroring.
	if code := getJSON(t, ts.URL+"/v1/debug/requests?trace_id=no-such", &resp); code != 200 || len(resp.Events) != 0 {
		t.Fatalf("unknown filter: code %d, %d events", code, len(resp.Events))
	}
}

// TestCostLedgerUnit covers the ledger building blocks directly:
// default-node stamping, out-of-range safety, manifest folding and the
// deterministic counter export.
func TestCostLedgerUnit(t *testing.T) {
	l := newCostLedger("local", 3)
	l.record(0, TierStore, "", -1, 0.5, false)
	l.record(1, TierSimulated, "peer-b", 2, 1.25, false)
	l.record(-1, TierSimulated, "", 0, 1, false) // ignored
	l.record(3, TierSimulated, "", 0, 1, false)  // ignored
	var nilLedger *costLedger
	nilLedger.record(0, TierSimulated, "", 0, 1, false)
	if nilLedger.snapshot() != nil {
		t.Fatal("nil ledger snapshot not nil")
	}
	entries := l.snapshot()
	if entries[0].Node != "local" || entries[0].Tier != TierStore {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Node != "peer-b" || entries[1].Cohort != 2 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
	if entries[2].Tier != "" || entries[2].Cohort != -1 {
		t.Fatalf("unfilled slot mutated: %+v", entries[2])
	}

	mc := manifestCost(entries)
	if mc.Points != 3 || mc.PointsByTier[TierStore] != 1 || mc.PointsByTier[TierSimulated] != 2 {
		t.Fatalf("manifest cost = %+v", mc)
	}
	if mc.SecondsByTier[TierSimulated] != 1.25 {
		t.Fatalf("seconds by tier = %+v", mc.SecondsByTier)
	}
	if strings.Join(mc.Nodes, ",") != "local,peer-b" {
		t.Fatalf("nodes = %v", mc.Nodes)
	}
	if manifestCost(nil) != nil {
		t.Fatal("empty manifest cost not nil")
	}

	c := newCostCounters()
	c.add(entries)
	c.add(entries)
	out := c.export()
	if len(out) != 3 {
		t.Fatalf("export = %+v", out)
	}
	// Sorted by (tier, node): simulated/local (the unfilled slot defaults
	// to simulated with an empty node... no — unfilled keeps node "").
	if out[0].Tier != TierSimulated || out[1].Tier != TierSimulated || out[2].Tier != TierStore {
		t.Fatalf("export order: %+v", out)
	}
	if out[0].Node > out[1].Node {
		t.Fatalf("export node order: %+v", out)
	}
	for _, s := range out {
		if s.Points != 2 {
			t.Fatalf("counter did not accumulate: %+v", s)
		}
	}
}

// TestPrometheusCostFamilies renders the exposition with cost samples —
// including a label value needing escaping and a NaN seconds value —
// and checks the strict parser accepts it, the NaN sample is
// suppressed, and two renders are byte-identical (deterministic family
// and series order).
func TestPrometheusCostFamilies(t *testing.T) {
	m := NewMetrics()
	st := promSnapshot{
		build: BuildInfo{Version: "v1.2.3", GoVersion: "go1.xx"},
		costs: []costSample{
			{Tier: TierSimulated, Node: `node"odd\`, Points: 4, Seconds: 1.5},
			{Tier: TierStore, Node: "local", Points: 2, Seconds: math.NaN()},
			{Tier: TierSurrogate, Node: "local", Points: 1, Seconds: math.Inf(1)},
		},
	}
	var a, b bytes.Buffer
	if err := writePrometheus(&a, m, st); err != nil {
		t.Fatal(err)
	}
	if err := writePrometheus(&b, m, st); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition is not deterministic across renders")
	}
	samples := parsePrometheus(t, a.String())

	var points, seconds int
	for _, s := range samples {
		switch s.name {
		case "statsimd_point_cost_points_total":
			points++
			if s.labels["tier"] == TierSimulated && s.labels["node"] != `node"odd\` {
				t.Errorf("escaped node label did not round-trip: %+v", s)
			}
		case "statsimd_point_cost_seconds_total":
			seconds++
			if s.labels["tier"] != TierSimulated {
				t.Errorf("non-finite seconds sample not suppressed: %+v", s)
			}
		case "statsimd_build_info":
			if s.labels["version"] != "v1.2.3" {
				t.Errorf("build_info missing version label: %+v", s)
			}
		}
	}
	if points != 3 {
		t.Errorf("points samples = %d, want 3", points)
	}
	if seconds != 1 {
		t.Errorf("seconds samples = %d, want 1 (NaN and +Inf suppressed)", seconds)
	}

	// With no cost samples at all, the families stay off the exposition.
	var c bytes.Buffer
	st.costs = nil
	if err := writePrometheus(&c, m, st); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), "statsimd_point_cost") {
		t.Error("empty cost families emitted")
	}
}

// TestFleetMetricsMerge drives the parser/merger directly: family
// preambles deduplicate, histogram children stay attached, the node
// label splices into both labelled and bare samples, and a down peer
// contributes only its up=0 gauge.
func TestFleetMetricsMerge(t *testing.T) {
	if got := injectNodeLabel(`m{a="b"} 1`, "n1"); got != `m{node="n1",a="b"} 1` {
		t.Errorf("labelled inject = %q", got)
	}
	if got := injectNodeLabel("m 2", "n1"); got != `m{node="n1"} 2` {
		t.Errorf("bare inject = %q", got)
	}
	if got := injectNodeLabel(`m{a="b"} 1`, `q"\`); got != `m{node="q\"\\",a="b"} 1` {
		t.Errorf("escaped inject = %q", got)
	}
	// A series that already carries a node label (the point-cost
	// families) must not end up with a duplicate label name: the
	// original is renamed exported_node.
	if got := injectNodeLabel(`m{node="x"} 1`, "n1"); got != `m{node="n1",exported_node="x"} 1` {
		t.Errorf("node-label rename (first) = %q", got)
	}
	if got := injectNodeLabel(`m{tier="simulated",node="x"} 1`, "n1"); got != `m{node="n1",tier="simulated",exported_node="x"} 1` {
		t.Errorf("node-label rename (mid) = %q", got)
	}
	// A label merely ending in "node" is not renamed.
	if got := injectNodeLabel(`m{mynode="x"} 1`, "n1"); got != `m{node="n1",mynode="x"} 1` {
		t.Errorf("suffix label wrongly renamed = %q", got)
	}

	expo := "# HELP lat Request latency.\n# TYPE lat histogram\n" +
		"lat_bucket{le=\"0.1\"} 1\nlat_bucket{le=\"+Inf\"} 2\nlat_sum 0.3\nlat_count 2\n" +
		"# HELP up2 Gauge.\n# TYPE up2 gauge\nup2 1\n"
	fams := parsePromFamilies([]byte(expo))
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2: %+v", len(fams), fams)
	}
	if fams[0].name != "lat" || len(fams[0].samples) != 4 {
		t.Fatalf("histogram children detached: %+v", fams[0])
	}

	var out bytes.Buffer
	writeFleetMetrics(&out, []fleetSection{
		{node: "self", body: []byte(expo), up: true},
		{node: "peer-down", up: false},
		{node: "peer-up", body: []byte("# HELP up2 Gauge.\n# TYPE up2 gauge\nup2 0\n"), up: true},
	})
	merged := out.String()
	for _, want := range []string{
		`statsimd_fleet_node_up{node="self"} 1`,
		`statsimd_fleet_node_up{node="peer-down"} 0`,
		`statsimd_fleet_node_up{node="peer-up"} 1`,
		`lat_bucket{node="self",le="+Inf"} 2`,
		`up2{node="self"} 1`,
		`up2{node="peer-up"} 0`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, merged)
		}
	}
	if strings.Count(merged, "# TYPE up2 gauge") != 1 {
		t.Error("family preamble duplicated in merge")
	}
	if strings.Contains(merged, `node="peer-down",`) {
		t.Error("down peer contributed samples")
	}
	// The merged exposition must itself survive the strict parser.
	parsePrometheus(t, merged)
}

// TestClusterMetricsEndpoint covers the endpoint's two modes: 404 when
// unclustered, and a self-only fleet view (with the unreachable fake
// peer machinery absent) when clustered.
func TestClusterMetricsEndpoint(t *testing.T) {
	svc, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unclustered fleet view: %d, want 404", resp.StatusCode)
	}

	svc.SetCluster(&fakeCluster{})
	resp, err = http.Get(ts.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet view: %d", resp.StatusCode)
	}
	if !strings.Contains(body.String(), `statsimd_fleet_node_up{node="fake"} 1`) {
		t.Fatalf("fleet view missing self up gauge:\n%.400s", body.String())
	}
	if !strings.Contains(body.String(), `statsimd_uptime_seconds{node="fake"}`) {
		t.Error("self exposition not node-labelled")
	}
}

// TestTraceStoreEvictionViaOptions pins the TraceStoreSize option: a
// tiny store retains only the most recent traces.
func TestTraceStoreEvictionViaOptions(t *testing.T) {
	_, ts := newTestServerOpts(t, Options{
		Workers: 2, CacheSize: 4, JobTimeout: time.Minute, TraceStoreSize: 16,
	})
	for i := 0; i < 18; i++ {
		id := "evict-" + string(rune('a'+i))
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/workloads", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %s: %d", id, resp.StatusCode)
		}
	}
	// GET /v1/workloads is instrumented, so each request above produced a
	// trace; the first two must have been evicted by now.
	if code := getJSON(t, ts.URL+"/v1/debug/trace/evict-a", nil); code != http.StatusNotFound {
		t.Fatalf("oldest trace retained past capacity: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/debug/trace/evict-r", nil); code != 200 {
		t.Fatalf("newest trace not retained: %d", code)
	}
}
