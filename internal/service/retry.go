package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds automatic re-execution of transiently failed jobs
// (panics isolated by the pool, injected faults, I/O hiccups). The zero
// value disables retry. Caller errors (4xx validation), context
// cancellation and pool shutdown are never retried: retrying those
// either cannot succeed or would outlive the request.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first;
	// values <= 1 mean a single attempt.
	Attempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// per retry. Zero retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
}

// permanentError marks an error the retry machinery must not re-run:
// the failure is a property of the request, not of the moment (a peer
// that does not hold a profile, a validation rejection from a remote
// node). Wrapping preserves the cause for errors.Is/As.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so RetryPolicy treats it as non-transient and
// returns it after the first attempt. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// transientError reports whether err is worth retrying.
func transientError(err error) bool {
	if err == nil {
		return false
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return false
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !errors.Is(err, ErrPoolClosed)
}

// backoff returns the jittered delay before the given retry (1-based):
// full jitter over an exponentially growing window, so coordinated
// clients that failed together do not retry together.
func (p RetryPolicy) backoff(retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(retry-1)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Run executes fn under the policy: up to Attempts tries with jittered
// exponential backoff between them, counting each retry into retries
// when non-nil. Exported for the cluster tier, whose per-RPC retries
// must follow the same semantics as the local job retries (context
// cancellation and Permanent errors are never re-run).
func (p RetryPolicy) Run(ctx context.Context, retries *atomic.Uint64, fn func() error) error {
	return p.run(ctx, retries, fn)
}

// run executes fn up to p.Attempts times, sleeping a jittered backoff
// between attempts and bumping retries (when non-nil) once per retry.
// Non-transient errors return immediately.
func (p RetryPolicy) run(ctx context.Context, retries *atomic.Uint64, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= attempts || !transientError(err) {
			break
		}
		if retries != nil {
			retries.Add(1)
		}
		if d := p.backoff(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	if err != nil && attempts > 1 && transientError(err) {
		return fmt.Errorf("after %d attempts: %w", attempts, err)
	}
	return err
}
