package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds automatic re-execution of transiently failed jobs
// (panics isolated by the pool, injected faults, I/O hiccups). The zero
// value disables retry. Caller errors (4xx validation), context
// cancellation and pool shutdown are never retried: retrying those
// either cannot succeed or would outlive the request.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first;
	// values <= 1 mean a single attempt.
	Attempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// per retry. Zero retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
}

// transientError reports whether err is worth retrying.
func transientError(err error) bool {
	if err == nil {
		return false
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !errors.Is(err, ErrPoolClosed)
}

// backoff returns the jittered delay before the given retry (1-based):
// full jitter over an exponentially growing window, so coordinated
// clients that failed together do not retry together.
func (p RetryPolicy) backoff(retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(retry-1)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// run executes fn up to p.Attempts times, sleeping a jittered backoff
// between attempts and bumping retries (when non-nil) once per retry.
// Non-transient errors return immediately.
func (p RetryPolicy) run(ctx context.Context, retries *atomic.Uint64, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= attempts || !transientError(err) {
			break
		}
		if retries != nil {
			retries.Add(1)
		}
		if d := p.backoff(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	if err != nil && attempts > 1 && transientError(err) {
		return fmt.Errorf("after %d attempts: %w", attempts, err)
	}
	return err
}
