package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
)

func quickSweepInputs(t *testing.T) (cpu.Config, []SweepPoint, uint64, uint64) {
	t.Helper()
	return cpu.DefaultConfig(), QuickGrid(), 4, uint64(1)
}

func TestSweepFingerprintSensitivity(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	id := SweepFingerprint(g, base, points, r, seed)
	if id != SweepFingerprint(g, base, points, r, seed) {
		t.Error("fingerprint not deterministic")
	}
	other := base
	other.RUUSize++
	for name, changed := range map[string]string{
		"config": SweepFingerprint(g, other, points, r, seed),
		"points": SweepFingerprint(g, base, points[1:], r, seed),
		"r":      SweepFingerprint(g, base, points, r+1, seed),
		"seed":   SweepFingerprint(g, base, points, r, seed+1),
	} {
		if changed == id {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
}

// TestSweepJournalResumeByteIdentical interrupts a sweep partway,
// reopens the journal, finishes it, and requires the merged results to
// serialise byte-for-byte like an uninterrupted serial run — the
// crash-safety contract.
func TestSweepJournalResumeByteIdentical(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)

	// Uninterrupted serial reference.
	serial := NewPool(1)
	defer serial.Drain(context.Background())
	golden, err := Sweep(context.Background(), serial, base, g, points, r, seed)
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON, err := json.Marshal(golden)
	if err != nil {
		t.Fatal(err)
	}

	// First run: 4 of 9 points die on an injected fault ("crash").
	in := fault.New(9)
	in.Set(SiteSweepJob, fault.Rule{Prob: 1, Times: 4, Err: fault.ErrInjected})
	j1, err := OpenSweepJournal(path, id, len(points), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j1, in, nil); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	j1.Close()
	survivors := len(j1.Done())
	if survivors != len(points)-4 {
		t.Fatalf("journal holds %d points, want %d", survivors, len(points)-4)
	}

	// Restart: a fresh journal handle resumes, recomputing only the
	// missing points.
	j2, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != survivors {
		t.Errorf("resumed %d, want %d", j2.Resumed(), survivors)
	}
	results, resumed, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != survivors {
		t.Errorf("SweepWithJournal resumed %d, want %d", resumed, survivors)
	}
	gotJSON, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(goldenJSON) {
		t.Error("resumed sweep differs from uninterrupted serial run")
	}
	// Every point exactly once.
	if got := len(j2.Done()); got != len(points) {
		t.Errorf("journal holds %d points, want %d", got, len(points))
	}

	// A third run is all-resume: zero simulations.
	j3, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	again, resumed, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j3, nil, nil)
	if err != nil || resumed != len(points) {
		t.Fatalf("full resume: resumed=%d err=%v", resumed, err)
	}
	againJSON, _ := json.Marshal(again)
	if string(againJSON) != string(goldenJSON) {
		t.Error("fully resumed sweep differs from reference")
	}
}

// TestSweepJournalResumeMidCohort pins the journal contract against
// the lockstep engine specifically: with a single worker the whole grid
// plans into ONE lockstep group, so injected failures strike in the
// middle of a shared-trace cohort. Later points of the same cohort must
// still complete and journal, and the resumed sweep — whose pending
// points re-plan into a smaller cohort with different lockstep batching
// — must serialise byte-for-byte like an uninterrupted run.
func TestSweepJournalResumeMidCohort(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)

	serial := NewPool(1)
	defer serial.Drain(context.Background())
	golden, err := Sweep(context.Background(), serial, base, g, points, r, seed)
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON, err := json.Marshal(golden)
	if err != nil {
		t.Fatal(err)
	}

	// One worker => Plan(parallel=1) => one group holding the whole
	// cohort; the first 3 points die inside it.
	in := fault.New(11)
	in.Set(SiteSweepJob, fault.Rule{Prob: 1, Times: 3, Err: fault.ErrInjected})
	one := NewPool(1)
	defer one.Drain(context.Background())
	j1, err := OpenSweepJournal(path, id, len(points), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepWithJournal(context.Background(), one, base, g, points, r, seed, j1, in, nil); err == nil {
		t.Fatal("mid-cohort failures reported success")
	}
	j1.Close()
	if got := in.Fired(SiteSweepJob); got != 3 {
		t.Fatalf("fault site injected %d failures, want exactly 3 (one per doomed point)", got)
	}
	// The cohort's surviving members — including points AFTER the failed
	// ones in the same lockstep group — must all have journaled.
	if got := len(j1.Done()); got != len(points)-3 {
		t.Fatalf("journal holds %d points after mid-cohort crash, want %d", got, len(points)-3)
	}

	j2, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	results, resumed, err := SweepWithJournal(context.Background(), one, base, g, points, r, seed, j2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != len(points)-3 {
		t.Errorf("resumed %d, want %d", resumed, len(points)-3)
	}
	gotJSON, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, goldenJSON) {
		t.Error("mid-cohort resumed sweep differs from uninterrupted run")
	}
}

// TestSweepJournalTornTail simulates a crash mid-append: a truncated
// final line must be dropped (and its point recomputed), not poison the
// journal.
func TestSweepJournalTornTail(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)

	j, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j, nil, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatalf("torn tail rejected the whole journal: %v", err)
	}
	defer j2.Close()
	if j2.Dropped() != 1 {
		t.Errorf("dropped %d lines, want 1", j2.Dropped())
	}
	if j2.Resumed() != len(points)-1 {
		t.Errorf("resumed %d, want %d", j2.Resumed(), len(points)-1)
	}
	results, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j2, nil, nil)
	if err != nil || len(results) != len(points) {
		t.Fatalf("recovery sweep: %d results, err=%v", len(results), err)
	}
}

// TestSweepJournalTruncatedFinalRecordExhaustive hardens the torn-tail
// contract: a crash mid-append can cut the final record at ANY byte
// offset — including right after the previous newline (record entirely
// gone) and right before its own newline (record complete but
// unterminated). Every cut must reopen cleanly, resume all intact
// records, and complete to results byte-identical to the uninterrupted
// run.
func TestSweepJournalTruncatedFinalRecordExhaustive(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	dir := t.TempDir()
	id := SweepFingerprint(g, base, points, r, seed)

	ref := filepath.Join(dir, "ref.journal")
	j, err := OpenSweepJournal(ref, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	goldenJSON, err := json.Marshal(golden)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatalf("journal does not end in a newline")
	}
	lastStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1

	for cut := lastStart; cut < len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.journal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenSweepJournal(path, id, len(points), nil)
		if err != nil {
			t.Fatalf("cut at byte %d rejected the whole journal: %v", cut, err)
		}
		resumed := j2.Resumed()
		// Cutting exactly before the final newline leaves a complete,
		// CRC-valid record; the reader may legitimately keep it.
		if resumed != len(points)-1 && !(cut == len(data)-1 && resumed == len(points)) {
			j2.Close()
			t.Fatalf("cut at byte %d: resumed %d of %d", cut, resumed, len(points))
		}
		results, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j2, nil, nil)
		j2.Close()
		if err != nil {
			t.Fatalf("cut at byte %d: recovery sweep failed: %v", cut, err)
		}
		gotJSON, _ := json.Marshal(results)
		if !bytes.Equal(gotJSON, goldenJSON) {
			t.Fatalf("cut at byte %d: recovered results differ from uninterrupted run", cut)
		}
	}
}

func TestSweepJournalRejectsMismatch(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)
	j, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	otherID := SweepFingerprint(g, base, points, r, seed+1)
	if _, err := OpenSweepJournal(path, otherID, len(points), nil); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("different sweep accepted a foreign journal: %v", err)
	}
	if _, err := OpenSweepJournal(path, id, len(points)-1, nil); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("different point count accepted: %v", err)
	}
	// Pure garbage where a journal should be.
	garbage := filepath.Join(t.TempDir(), "garbage.journal")
	if err := os.WriteFile(garbage, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSweepJournal(garbage, id, len(points), nil); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("garbage file accepted as journal: %v", err)
	}
}

// TestSweepJournalAppendFailureTolerated: a failing journal write must
// not fail the sweep — the un-checkpointed points are simply recomputed
// on the next resume.
func TestSweepJournalAppendFailureTolerated(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)

	in := fault.New(5)
	in.Set(SiteJournalAppend, fault.Rule{Prob: 1, Times: 3, Err: fault.ErrInjected})
	j, err := OpenSweepJournal(path, id, len(points), in)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j, nil, nil)
	if err != nil {
		t.Fatalf("append failures failed the sweep: %v", err)
	}
	if len(results) != len(points) {
		t.Fatalf("%d results, want %d", len(results), len(points))
	}
	j.Close()

	j2, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != len(points)-3 {
		t.Errorf("resumed %d, want %d (3 appends were dropped)", j2.Resumed(), len(points)-3)
	}
}

func TestSweepJournalDuplicateConflictDetected(t *testing.T) {
	g := testGraph(t)
	base, points, r, seed := quickSweepInputs(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	id := SweepFingerprint(g, base, points, r, seed)
	j, err := OpenSweepJournal(path, id, len(points), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepWithJournal(context.Background(), nil, base, g, points, r, seed, j, nil, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Append a conflicting record for point 0 (valid CRC, wrong value).
	m := j.Done()[0]
	m.Cycles++
	line, err := encodePoint(0, m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "%s\n", line)
	f.Close()

	if _, err := OpenSweepJournal(path, id, len(points), nil); err == nil {
		t.Error("conflicting duplicate accepted silently")
	}
}
