package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLatencyHistSnapshot(t *testing.T) {
	l := NewLatencyHist()
	if s := l.Snapshot(); s.Count != 0 || s.MeanMS != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	for i := 0; i < 90; i++ {
		l.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		l.Observe(100*time.Millisecond, true)
	}
	s := l.Snapshot()
	if s.Count != 100 || s.Errors != 10 {
		t.Errorf("counts: %+v", s)
	}
	// Mean is exact: (90*1 + 10*100)/100 = 10.9ms.
	if s.MeanMS < 10.8 || s.MeanMS > 11.0 {
		t.Errorf("mean %.2fms, want ~10.9ms", s.MeanMS)
	}
	// Quantiles are bucket upper bounds: p50 within 2x of 1ms, p99
	// within 2x of 100ms.
	if s.P50MS < 1 || s.P50MS > 2.1 {
		t.Errorf("p50 %.2fms", s.P50MS)
	}
	if s.P99MS < 100 || s.P99MS > 135 {
		t.Errorf("p99 %.2fms", s.P99MS)
	}
	if s.MaxMS != 100 {
		t.Errorf("max %.2fms", s.MaxMS)
	}
}

func TestLatencyBucketMonotone(t *testing.T) {
	prev := -1
	for _, us := range []uint64{0, 1, 2, 3, 1000, 1 << 20, 1 << 40, 1 << 62} {
		b := latencyBucket(us)
		if b <= 0 || b > latencyBuckets {
			t.Fatalf("bucket %d for %dus outside histogram", b, us)
		}
		if b < prev {
			t.Fatalf("bucket not monotone at %dus", us)
		}
		if ub := bucketUpperUS(b); ub < us {
			t.Fatalf("upper bound %d below observation %d", ub, us)
		}
		prev = b
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	l := NewLatencyHist()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Observe(time.Duration(j)*time.Microsecond, j%7 == 0)
			}
		}()
	}
	wg.Wait()
	if s := l.Snapshot(); s.Count != 8000 {
		t.Errorf("lost observations: %+v", s)
	}
}

// TestStageMetrics pins the pipeline-stage family: StageObserve creates
// families on demand, ObserveStages folds a recorder's spans in, and
// both surface through Snapshot under the span names.
func TestStageMetrics(t *testing.T) {
	m := NewMetrics()
	m.StageObserve(obs.StageProfile, 3*time.Millisecond)
	m.StageObserve(obs.StageProfile, 5*time.Millisecond)

	rec := obs.New()
	sp := rec.Start(obs.StageSimulate)
	sp.End()
	m.ObserveStages(rec)
	m.ObserveStages(nil) // nil recorder is a no-op

	snap := m.Snapshot(nil, nil)
	if st := snap.Stages[obs.StageProfile]; st.Count != 2 || st.MeanMS <= 0 {
		t.Errorf("profile stage: %+v", st)
	}
	if st := snap.Stages[obs.StageSimulate]; st.Count != 1 {
		t.Errorf("simulate stage: %+v", st)
	}
	if len(snap.Stages) != 2 {
		t.Errorf("unexpected stage families: %+v", snap.Stages)
	}
}
