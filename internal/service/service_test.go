package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	return newTestServerOpts(t, Options{Workers: 4, CacheSize: 4, JobTimeout: time.Minute})
}

func newTestServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close(context.Background())
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndSession drives the full profile -> simulate -> sweep
// session the daemon exists for, asserting that the second identical
// simulate skips re-profiling (served from the SFG cache) and that the
// sweep reuses the same resident profile.
func TestEndToEndSession(t *testing.T) {
	svc, ts := newTestServer(t)
	spec := ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 1}

	// Profile: miss, then hit.
	var prof ProfileResponse
	if code, body := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{ProfileSpec: spec}, &prof); code != 200 {
		t.Fatalf("profile: %d %s", code, body)
	}
	if prof.Cached || prof.Nodes == 0 || prof.TotalInstructions != 60_000 {
		t.Fatalf("first profile response: %+v", prof)
	}
	var prof2 ProfileResponse
	postJSON(t, ts.URL+"/v1/profile", ProfileRequest{ProfileSpec: spec}, &prof2)
	if !prof2.Cached || prof2.Nodes != prof.Nodes {
		t.Fatalf("second profile not served from cache: %+v", prof2)
	}

	// Simulate from the resident profile: must not re-profile.
	simReq := SimulateRequest{Profile: spec, Target: 10_000}
	var sim1, sim2 SimulateResponse
	if code, body := postJSON(t, ts.URL+"/v1/simulate", simReq, &sim1); code != 200 {
		t.Fatalf("simulate: %d %s", code, body)
	}
	if !sim1.ProfileCached {
		t.Error("simulate re-profiled a resident SFG")
	}
	if sim1.Metrics.IPC <= 0 || sim1.Metrics.EDP <= 0 {
		t.Errorf("degenerate metrics: %+v", sim1.Metrics)
	}
	postJSON(t, ts.URL+"/v1/simulate", simReq, &sim2)
	if sim2.Metrics != sim1.Metrics {
		t.Error("identical simulate requests returned different metrics")
	}
	if st := svc.cache.Stats(); st.Misses != 1 {
		t.Errorf("cache misses %d, want exactly 1 (one profiling run for the whole session)", st.Misses)
	}

	// Cache-hit speedup: a fresh profile+simulate pays profiling, the
	// cached replay does not.
	fresh := SimulateRequest{Profile: ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 2}, Target: 10_000}
	var cold, warm SimulateResponse
	postJSON(t, ts.URL+"/v1/simulate", fresh, &cold)
	postJSON(t, ts.URL+"/v1/simulate", fresh, &warm)
	if cold.ProfileCached || !warm.ProfileCached {
		t.Errorf("cold/warm cache flags wrong: %v/%v", cold.ProfileCached, warm.ProfileCached)
	}
	t.Logf("cache-hit speedup: cold %.1fms -> warm %.1fms (%.1fx)",
		cold.ElapsedMS, warm.ElapsedMS, cold.ElapsedMS/warm.ElapsedMS)
	if warm.ElapsedMS > cold.ElapsedMS {
		t.Errorf("cached simulate (%.1fms) slower than cold profile+simulate (%.1fms)",
			warm.ElapsedMS, cold.ElapsedMS)
	}

	// Sweep the quick grid from the same resident profile.
	var sweep SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: spec, Grid: "quick", Target: 5_000}, &sweep); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	if !sweep.ProfileCached {
		t.Error("sweep re-profiled a resident SFG")
	}
	if sweep.Points != 9 || len(sweep.Results) != 9 {
		t.Fatalf("sweep shape: %+v", sweep)
	}
	for i, pt := range QuickGrid() {
		if sweep.Results[i].Point != pt {
			t.Fatalf("sweep result %d out of grid order: %v", i, sweep.Results[i].Point)
		}
	}
	best := sweep.Results[sweep.Best].Metrics.EDP
	for _, row := range sweep.Results {
		if row.Metrics.EDP < best {
			t.Errorf("best index wrong: %v < %v", row.Metrics.EDP, best)
		}
	}
}

func TestWorkloadsHealthzMetrics(t *testing.T) {
	svc, ts := newTestServer(t)

	var ws []WorkloadInfo
	if code := getJSON(t, ts.URL+"/v1/workloads", &ws); code != 200 {
		t.Fatalf("workloads: %d", code)
	}
	if len(ws) != 10 || ws[0].Blocks == 0 {
		t.Errorf("workloads: %+v", ws)
	}

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz: %v", health)
	}

	// Generate some traffic, then read it back from /metrics.
	postJSON(t, ts.URL+"/v1/profile",
		ProfileRequest{ProfileSpec: ProfileSpec{Workload: "vpr", N: 20_000}}, nil)
	postJSON(t, ts.URL+"/v1/profile",
		ProfileRequest{ProfileSpec: ProfileSpec{Workload: "vpr", N: 20_000}}, nil)
	postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Profile: ProfileSpec{Workload: "vpr", N: 20_000}, Target: 5_000}, nil)
	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if snap.Cache.Hits != 2 || snap.Cache.Misses != 1 {
		t.Errorf("cache stats: %+v", snap.Cache)
	}
	if ep, ok := snap.Endpoints["/v1/profile"]; !ok || ep.Count != 2 || ep.MeanMS <= 0 {
		t.Errorf("profile endpoint stats: %+v", snap.Endpoints)
	}
	if snap.Pool.Workers != 4 || snap.Pool.Completed == 0 {
		t.Errorf("pool stats: %+v", snap.Pool)
	}
	// Stage families: exactly one real profiling run happened (the other
	// two requests hit the cache), and the simulate request recorded its
	// reduce/generate/simulate breakdown.
	if st, ok := snap.Stages[obs.StageProfile]; !ok || st.Count != 1 {
		t.Errorf("profile stage stats: %+v", snap.Stages)
	}
	for _, stage := range []string{obs.StageReduce, obs.StageGenerate, obs.StageSimulate} {
		if st, ok := snap.Stages[stage]; !ok || st.Count != 1 {
			t.Errorf("stage %q stats: %+v", stage, snap.Stages[stage])
		}
	}
	_ = svc
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"missing workload", "/v1/profile", ProfileRequest{}},
		{"unknown workload", "/v1/profile", ProfileRequest{ProfileSpec: ProfileSpec{Workload: "nope", N: 1000}}},
		{"bad k", "/v1/profile", ProfileRequest{ProfileSpec: ProfileSpec{Workload: "vpr", K: 9, N: 1000}}},
		{"oversized n", "/v1/profile", ProfileRequest{ProfileSpec: ProfileSpec{Workload: "vpr", N: 1 << 60}}},
		{"no grid", "/v1/sweep", SweepRequest{Profile: ProfileSpec{Workload: "vpr", N: 1000}}},
		{"bad grid", "/v1/sweep", SweepRequest{Profile: ProfileSpec{Workload: "vpr", N: 1000}, Grid: "nope"}},
		{"grid and points", "/v1/sweep", SweepRequest{Profile: ProfileSpec{Workload: "vpr", N: 1000},
			Grid: "quick", Points: []SweepPoint{{RUU: 8, LSQ: 4, Decode: 2, Issue: 2, Commit: 2}}}},
		{"unknown field", "/v1/simulate", map[string]any{"profile": map[string]any{"workload": "vpr"}, "wat": 1}},
	}
	for _, tc := range cases {
		if code, body := postJSON(t, ts.URL+tc.url, tc.body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", tc.name, code, body)
		} else if !json.Valid([]byte(body)) {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
	// Method mismatches fall out of the Go 1.22 mux patterns.
	if code := getJSON(t, ts.URL+"/v1/profile", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/profile: %d", code)
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: %d", resp.StatusCode)
	}
}

// TestConcurrentIdenticalSimulates hammers one key from many goroutines:
// exactly one profiling run must happen (coalescing), every response must
// agree, and -race must stay silent across the shared frozen graph.
func TestConcurrentIdenticalSimulates(t *testing.T) {
	svc, ts := newTestServer(t)
	req := SimulateRequest{Profile: ProfileSpec{Workload: "twolf", K: 1, N: 30_000}, Target: 5_000}

	const clients = 8
	results := make(chan SimulateResponse, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			var out SimulateResponse
			buf, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			results <- out
		}()
	}
	var first *SimulateResponse
	for i := 0; i < clients; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case r := <-results:
			if first == nil {
				first = &r
			} else if r.Metrics != first.Metrics {
				t.Fatalf("concurrent identical requests disagree: %+v vs %+v", r.Metrics, first.Metrics)
			}
		}
	}
	if st := svc.cache.Stats(); st.Misses != 1 {
		t.Errorf("%d concurrent identical requests ran %d profiling jobs, want 1", clients, st.Misses)
	}
}

func postRaw(t *testing.T, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, raw.String()
}

// TestBodyLimitsAndMalformedInput: oversized bodies get a structured
// 413, garbage and trailing data structured 400s — never a bare 500.
func TestBodyLimitsAndMalformedInput(t *testing.T) {
	_, ts := newTestServerOpts(t, Options{Workers: 2, CacheSize: 2,
		JobTimeout: time.Minute, MaxRequestBytes: 256})

	big := `{"workload":"vpr","n":1000,"padding":"` + strings.Repeat("x", 1024) + `"}`
	code, _, body := postRaw(t, ts.URL+"/v1/profile", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d %s", code, body)
	}
	if !json.Valid([]byte(body)) {
		t.Errorf("413 body not JSON: %s", body)
	}
	for name, payload := range map[string]string{
		"garbage":       `{"workload":`,
		"not json":      `hello`,
		"trailing data": `{"workload":"vpr","n":1000}{"again":true}`,
		"wrong type":    `{"workload":123}`,
	} {
		code, _, body := postRaw(t, ts.URL+"/v1/profile", payload)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, code, body)
		}
		if !json.Valid([]byte(body)) {
			t.Errorf("%s: error body not JSON: %s", name, body)
		}
	}
}

// TestHealthzDrainingRefusesWork: after Close begins, /healthz flips to
// 503 draining and work submissions are refused with a Retry-After.
func TestHealthzDrainingRefusesWork(t *testing.T) {
	svc, err := New(Options{Workers: 1, CacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close(context.Background())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d", resp.StatusCode)
	}
	if h.Status != "draining" || !h.Live || h.Ready {
		t.Errorf("draining health body %+v", h)
	}

	code, hdr, body := postRaw(t, ts.URL+"/v1/profile", `{"workload":"vpr","n":1000}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining profile: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestChaosOverloadShedding saturates a one-worker pool and asserts the
// daemon degrades gracefully: excess requests are shed with 429 +
// Retry-After (not queued into latency collapse), /healthz reports
// shedding/503 for load balancers, and the shed count is observable.
func TestChaosOverloadShedding(t *testing.T) {
	svc, ts := newTestServerOpts(t, Options{Workers: 1, CacheSize: 2,
		JobTimeout: time.Minute, MaxQueueDepth: 1})

	// Occupy the worker and fill the queue past the admission limit.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Pool().Do(context.Background(), func(context.Context) error {
				<-release
				return nil
			})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Pool().Stats().QueueDepth < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	code, hdr, body := postRaw(t, ts.URL+"/v1/profile", `{"workload":"vpr","n":1000}`)
	if code != http.StatusTooManyRequests {
		t.Errorf("overloaded profile: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "shedding" || h.Ready {
		t.Errorf("overloaded healthz: %d %+v", resp.StatusCode, h)
	}

	close(release)
	wg.Wait()

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Robustness.Shed == 0 {
		t.Errorf("shed requests not counted: %+v", snap.Robustness)
	}
	// Load cleared: admission and health recover.
	code, _, body = postRaw(t, ts.URL+"/v1/profile", `{"workload":"vpr","n":1000}`)
	if code != http.StatusOK {
		t.Errorf("post-overload profile: %d %s", code, body)
	}
}

// TestDurableStoreAcrossRestart is the crash-safety e2e: a second
// daemon life pointed at the same cache-dir serves the first life's
// profile without re-profiling and resumes its sweep without
// re-simulating, with identical results.
func TestDurableStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mkOpts := func() Options {
		return Options{Workers: 2, CacheSize: 2, JobTimeout: time.Minute, CacheDir: dir}
	}
	profile := `{"workload":"vpr","n":20000}`
	sweepReq := SweepRequest{Profile: ProfileSpec{Workload: "vpr", N: 20_000}, Grid: "quick", Target: 5_000}

	// First life: profile and sweep, both paid in full.
	svc1, ts1 := newTestServerOpts(t, mkOpts())
	if code, _, body := postRaw(t, ts1.URL+"/v1/profile", profile); code != 200 {
		t.Fatalf("life 1 profile: %d %s", code, body)
	}
	var sweep1 SweepResponse
	if code, body := postJSON(t, ts1.URL+"/v1/sweep", sweepReq, &sweep1); code != 200 {
		t.Fatalf("life 1 sweep: %d %s", code, body)
	}
	if sweep1.Resumed != 0 {
		t.Fatalf("fresh sweep claims %d resumed points", sweep1.Resumed)
	}
	if st := svc1.Store().Stats(); st.Saves != 1 {
		t.Fatalf("life 1 store stats %+v", st)
	}
	svc1.Close(context.Background())

	// Second life: same directory, empty caches.
	svc2, ts2 := newTestServerOpts(t, mkOpts())
	var prof ProfileResponse
	if code, body := postJSON(t, ts2.URL+"/v1/profile", ProfileRequest{ProfileSpec: ProfileSpec{Workload: "vpr", N: 20_000}}, &prof); code != 200 {
		t.Fatalf("life 2 profile: %d %s", code, body)
	}
	var sweep2 SweepResponse
	if code, body := postJSON(t, ts2.URL+"/v1/sweep", sweepReq, &sweep2); code != 200 {
		t.Fatalf("life 2 sweep: %d %s", code, body)
	}
	if sweep2.Resumed != sweep2.Points {
		t.Errorf("restarted sweep resumed %d of %d points", sweep2.Resumed, sweep2.Points)
	}
	a, _ := json.Marshal(sweep1.Results)
	b, _ := json.Marshal(sweep2.Results)
	if string(a) != string(b) {
		t.Error("restarted sweep results differ from the first life's")
	}
	// Nothing was recomputed: the profile came from the store and every
	// sweep point from its journal, so the pool never ran a job.
	if st := svc2.Pool().Stats(); st.Completed != 0 {
		t.Errorf("life 2 ran %d pool jobs, want 0 (everything served from disk)", st.Completed)
	}
	if st := svc2.Store().Stats(); st.Loads != 1 || st.Misses != 0 {
		t.Errorf("life 2 store stats %+v", st)
	}
	var snap MetricsSnapshot
	getJSON(t, ts2.URL+"/metrics", &snap)
	if snap.Store == nil || snap.Robustness.SweepPointsResumed != uint64(sweep2.Points) {
		t.Errorf("life 2 metrics: store=%+v robustness=%+v", snap.Store, snap.Robustness)
	}
}
