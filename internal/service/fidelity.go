package service

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fidelity"
	"repro/internal/obs"
)

// maxFidelitySweepPoints bounds fidelity-mode sweep grids: every point
// re-evaluates the stratified estimator (with possible detailed
// escalations), so a fidelity sweep is orders of magnitude heavier per
// point than a statistical-only one.
const maxFidelitySweepPoints = 64

// FidelitySpec is the "fidelity" knob on /v1/simulate and /v1/sweep:
// its presence switches the request from single-model statistical
// simulation to the adaptive fidelity engine, which returns confidence
// intervals and escalates the least-certain phase strata to
// execution-driven simulation. Zero fields take the engine defaults.
type FidelitySpec struct {
	// TargetCI is the relative CI half-width to converge to (default
	// 0.02).
	TargetCI float64 `json:"target_ci"`
	// MaxDetailedFrac caps execution-driven work as a fraction of the
	// covered stream (default 0.25).
	MaxDetailedFrac float64 `json:"max_detailed_frac,omitempty"`
	// Confidence is the interval's level: 0.90, 0.95 or 0.99 (default
	// 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// Interval overrides the stratification interval length.
	Interval uint64 `json:"interval,omitempty"`
	// MaxK bounds the number of phase strata (default 10).
	MaxK int `json:"max_k,omitempty"`
}

// options maps the wire spec plus the request's profile coordinates
// onto engine options. Validation beyond what the engine itself checks:
// fractions must be sane and the stream length must respect the
// server's profiling limit (fidelity replays the stream like profiling
// does).
func (f FidelitySpec) options(p ProfileSpec, opts Options) (fidelity.Options, error) {
	if f.TargetCI < 0 || f.TargetCI >= 1 {
		return fidelity.Options{}, badRequest("fidelity.target_ci=%v outside (0,1)", f.TargetCI)
	}
	if f.MaxDetailedFrac < 0 || f.MaxDetailedFrac > 1 {
		return fidelity.Options{}, badRequest("fidelity.max_detailed_frac=%v outside [0,1]", f.MaxDetailedFrac)
	}
	if p.Workload == "" {
		return fidelity.Options{}, badRequest("workload is required")
	}
	n := p.N
	if n == 0 {
		n = 1_000_000
	}
	if n > opts.MaxProfileInstructions {
		return fidelity.Options{}, badRequest("n=%d exceeds limit %d", n, opts.MaxProfileInstructions)
	}
	return fidelity.Options{
		N:               n,
		Interval:        f.Interval,
		K:               p.K,
		Seed:            p.Seed,
		MaxK:            f.MaxK,
		Confidence:      f.Confidence,
		TargetCI:        f.TargetCI,
		MaxDetailedFrac: f.MaxDetailedFrac,
	}, nil
}

// fidelityCounters aggregates the engine's activity daemon-wide; served
// as FidelityStats on /metrics and as the statsimd_fidelity_* families
// on the Prometheus exposition.
type fidelityCounters struct {
	mu            sync.Mutex
	runs          uint64
	converged     uint64
	escalations   uint64
	detailedInsts uint64
	ciWidthSum    float64
	ciWidthCount  uint64
}

// FidelityStats is the wire form of the daemon's fidelity-engine
// activity. CIWidthSum/CIWidthCount expose the mean achieved relative
// half-width the Prometheus way (a ratio the scraper computes), so the
// JSON and text expositions agree.
type FidelityStats struct {
	Runs          uint64  `json:"runs"`
	Converged     uint64  `json:"converged"`
	Escalations   uint64  `json:"escalations"`
	DetailedInsts uint64  `json:"detailed_insts"`
	CIWidthSum    float64 `json:"ci_width_sum"`
	CIWidthCount  uint64  `json:"ci_width_count"`
}

func (c *fidelityCounters) note(res *fidelity.Result) {
	c.mu.Lock()
	c.runs++
	if res.Converged {
		c.converged++
	}
	c.escalations += uint64(len(res.Escalations))
	c.detailedInsts += res.DetailedInstructions
	c.ciWidthSum += res.RelHalfWidth
	c.ciWidthCount++
	c.mu.Unlock()
}

func (c *fidelityCounters) stats() FidelityStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return FidelityStats{
		Runs:          c.runs,
		Converged:     c.converged,
		Escalations:   c.escalations,
		DetailedInsts: c.detailedInsts,
		CIWidthSum:    c.ciWidthSum,
		CIWidthCount:  c.ciWidthCount,
	}
}

// noteFidelity lands one engine run in the daemon-wide counters and the
// request's telemetry (flight-recorder event, log line).
func (s *Server) noteFidelity(ri *reqInfo, res *fidelity.Result) {
	s.fidelity.note(res)
	if ri != nil {
		ri.escalations.Add(int64(len(res.Escalations)))
		ri.detailedInsts.Add(res.DetailedInstructions)
		ri.ciWidth.Store(math.Float64bits(res.RelHalfWidth))
	}
}

// annotateFidelitySpan lands an engine run's outcome on its span: how
// many strata it stratified into, how much escalated to detailed
// simulation, and whether the interval converged — the span-tree view
// of the escalation decision the flight recorder only counts.
func annotateFidelitySpan(span obs.ActiveSpan, res *fidelity.Result) {
	span.Annotate("strata", strconv.Itoa(len(res.Strata)))
	span.Annotate("escalations", strconv.Itoa(len(res.Escalations)))
	span.Annotate("converged", strconv.FormatBool(res.Converged))
	span.Annotate("rel_half_width", strconv.FormatFloat(res.RelHalfWidth, 'g', 4, 64))
}

// fidelityMetrics derives the point-estimate wire metrics from an
// engine result: cycles are reconstructed from the CPI estimate so
// EDP and derived rates stay consistent with the interval's centre.
func fidelityMetrics(res *fidelity.Result) SimMetrics {
	m := SimMetrics{
		IPC:          res.IPC,
		EPC:          res.EPC,
		Instructions: res.CoveredInstructions,
		Cycles:       uint64(math.Round(res.CPI.Mean * float64(res.CoveredInstructions))),
	}
	if res.IPC > 0 {
		m.EDP = res.EPC / (res.IPC * res.IPC)
	}
	return m
}

// runFidelitySimulate is the /v1/simulate path when the request carries
// a fidelity spec. The engine runs on the handler goroutine and fans
// its interval evaluations out through the worker pool (the same
// inversion the sweep engine uses — wrapping the whole engine in
// pool.Do would deadlock its inner submissions behind itself).
func (s *Server) runFidelitySimulate(r *http.Request, req SimulateRequest) (any, error) {
	ctx := r.Context()
	key, err := req.Profile.key(s.opts)
	if err != nil {
		return nil, err
	}
	fopts, err := req.Fidelity.options(req.Profile, s.opts)
	if err != nil {
		return nil, err
	}
	if err := s.faults.Fire(SiteSimulateJob); err != nil {
		return nil, err
	}
	w, err := core.LoadWorkload(key.Workload)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	start := time.Now()
	cfg := req.Config.apply(cpu.DefaultConfig())
	eng, err := fidelity.New(ctx, s.pool, cfg, w, fopts)
	if err != nil {
		return nil, err
	}
	_, span := obs.TracerFromContext(ctx).StartSpan(ctx, "fidelity.run")
	res, err := eng.Run(ctx, s.pool, cfg)
	if err != nil {
		span.Annotate("error", err.Error())
		span.End()
		return nil, err
	}
	annotateFidelitySpan(span, res)
	span.End()
	s.noteFidelity(requestInfo(ctx), res)
	s.log.Debug("fidelity run", "trace_id", obs.TraceIDFromContext(ctx),
		"workload", key.Workload, "strata", len(res.Strata),
		"escalations", len(res.Escalations), "converged", res.Converged,
		"rel_half_width", res.RelHalfWidth, "detailed_frac", res.DetailedFrac)
	s.writeManifest(ctx, "/v1/simulate", func(m *obs.Manifest) {
		m.ConfigFingerprint = obs.Fingerprint(cfg)
		m.Workload = key.Workload
		m.K = key.K
		m.Seed = key.Seed
		m.StreamLength = key.N
		m.Fidelity = res.Manifest()
	})
	return SimulateResponse{
		Key:       key,
		Metrics:   fidelityMetrics(res),
		Fidelity:  res,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// runFidelitySweep is the /v1/sweep path when the request carries a
// fidelity spec: the workload is stratified and profiled once, then
// each design point runs the estimator against the shared engine —
// points sequential, the intervals within each point parallel on the
// pool. Sequential points keep the pool free for intra-point fan-out
// and give the progress feed a meaningful completion order; the
// per-point results land in grid order regardless.
//
// Every grid point varies only window sizes and widths, which keeps the
// engine's profiled locality structures valid across the whole sweep
// (the same invariant plain statistical sweeps rely on).
func (s *Server) runFidelitySweep(r *http.Request, req SweepRequest, points []SweepPoint) (any, error) {
	ctx := r.Context()
	if len(points) > maxFidelitySweepPoints {
		return nil, badRequest("%d points exceed the fidelity sweep limit %d", len(points), maxFidelitySweepPoints)
	}
	key, err := req.Profile.key(s.opts)
	if err != nil {
		return nil, err
	}
	fopts, err := req.Fidelity.options(req.Profile, s.opts)
	if err != nil {
		return nil, err
	}
	w, err := core.LoadWorkload(key.Workload)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	start := time.Now()
	base := req.Config.apply(cpu.DefaultConfig())
	eng, err := fidelity.New(ctx, s.pool, base, w, fopts)
	if err != nil {
		return nil, err
	}
	feed := s.progress.feed(obs.TraceIDFromContext(ctx))
	feed.publish(ProgressEvent{Type: "start", Total: len(points)})
	resp := SweepResponse{
		Key:       key,
		Points:    len(points),
		Results:   make([]SweepRow, len(points)),
		ElapsedMS: 0,
	}
	ri := requestInfo(ctx)
	ledger := newCostLedger(s.node, len(points))
	for i, pt := range points {
		_, span := obs.TracerFromContext(ctx).StartSpan(ctx, "fidelity.run")
		span.Annotate("point", strconv.Itoa(i))
		t0 := time.Now()
		res, err := eng.Run(ctx, s.pool, pt.Apply(base))
		if err != nil {
			span.Annotate("error", err.Error())
			span.End()
			feed.publish(ProgressEvent{Type: "error", Total: len(points), Completed: i, Error: err.Error()})
			return nil, err
		}
		annotateFidelitySpan(span, res)
		span.End()
		// Fidelity points always run the estimator; the detailed-vs-
		// statistical split happens inside the engine, so the ledger
		// marks the point estimated when the interval did not fully
		// converge to the requested half-width.
		ledger.record(i, TierSimulated, "", -1, time.Since(t0).Seconds(), !res.Converged)
		s.noteFidelity(ri, res)
		m := fidelityMetrics(res)
		resp.Results[i] = SweepRow{Point: pt, Metrics: m, Fidelity: res}
		if m.EDP < resp.Results[resp.Best].Metrics.EDP {
			resp.Best = i
		}
		p := pt
		feed.publish(ProgressEvent{Type: "point", Completed: i + 1, Index: i, Point: &p, Metrics: &m})
	}
	feed.publish(ProgressEvent{Type: "done", Total: len(points), Completed: len(points)})
	entries := ledger.snapshot()
	s.costs.add(entries)
	if req.Cost {
		resp.Cost = entries
	}
	s.writeManifest(ctx, "/v1/sweep", func(m *obs.Manifest) {
		m.ConfigFingerprint = obs.Fingerprint(base)
		m.Workload = key.Workload
		m.K = key.K
		m.Seed = key.Seed
		m.StreamLength = key.N
		m.Cost = manifestCost(entries)
	})
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}
