package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
)

// Peer-to-peer RPC surface. These handlers speak the durable store's
// checksummed envelope as the wire format, deliberately stay off the
// instrument/JSON middleware (fetch responses and offer requests are
// binary), and never trigger profiling: a fetch serves only what this
// node already holds, so a cache miss can cascade into at most one
// round of peer fetches cluster-wide, never a profile storm.

const (
	// ClusterFanoutHeader marks a sweep sub-request dispatched by a
	// coordinator. The receiving node computes its partition locally —
	// without the marker a clustered peer would fan the sub-sweep back
	// out and the grid would ricochet around the ring forever. Exported
	// for the coordinator's client side.
	ClusterFanoutHeader = "X-Statsimd-Fanout"

	// ClusterParentSpanHeader carries the coordinator's dispatch span ID
	// on sweep sub-requests, next to X-Request-Id. The receiving node
	// parents its sub-sweep spans under it, so the slices every peer
	// ships back assemble into one tree instead of a forest of orphans.
	ClusterParentSpanHeader = "X-Statsimd-Parent-Span"

	// maxEnvelopeBytes caps offered profile envelopes; far above any
	// real SFG, far below a memory-exhaustion payload.
	maxEnvelopeBytes = 256 << 20
)

// ClusterFetchRequest is the POST /v1/cluster/fetch body.
type ClusterFetchRequest struct {
	Key ProfileKey `json:"key"`
}

// handleClusterFetch answers a peer's graph fetch: the profile's
// checksummed envelope as application/octet-stream, 404 when this node
// does not hold it (in cache or durable store). It never profiles.
func (s *Server) handleClusterFetch(w http.ResponseWriter, r *http.Request) {
	var req ClusterFetchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, err)
		return
	}
	g, ok := s.cache.Peek(req.Key)
	if !ok && s.store != nil {
		if loaded, err := s.store.Load(req.Key); err == nil {
			// Adopt into the cache: the next fetch (or local request)
			// skips the disk.
			s.cache.Put(req.Key, loaded)
			g, ok = loaded, true
		}
	}
	if !ok {
		s.clusterServed.graphsMissing.Add(1)
		writeJSONError(w, &apiError{code: http.StatusNotFound,
			err: errors.New("profile not resident on this node")})
		return
	}
	env, err := EncodeProfileEnvelope(req.Key, g)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	s.clusterServed.graphsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(env)
}

// handleClusterOffer accepts a replica pushed by a peer that just paid
// for profiling: the body is one checksummed envelope. The envelope's
// own validation (magic, version, CRC, parseable key) is the admission
// test; a corrupt or truncated transfer is rejected without touching
// cache or store.
func (s *Server) handleClusterOffer(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
	if err != nil {
		s.clusterServed.offersRejected.Add(1)
		writeJSONError(w, badRequest("reading offer body: %v", err))
		return
	}
	if int64(len(body)) > maxEnvelopeBytes {
		s.clusterServed.offersRejected.Add(1)
		writeJSONError(w, &apiError{code: http.StatusRequestEntityTooLarge,
			err: errors.New("offered envelope exceeds limit")})
		return
	}
	key, g, err := DecodeProfileEnvelope(body, nil)
	if err != nil {
		s.clusterServed.offersRejected.Add(1)
		writeJSONError(w, badRequest("invalid envelope: %v", err))
		return
	}
	s.cache.Put(key, g)
	if s.store != nil {
		// Only persist what the store does not already hold: a
		// replicated graph is bit-identical by construction, so an
		// existing file needs no overwrite.
		if _, err := os.Stat(s.store.Path(key)); err != nil {
			_ = s.store.Save(key, g)
		}
	}
	s.clusterServed.offersStored.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"stored": true})
}

// handleClusterStatus reports ring membership and peer health, plus
// both sides' counters — the operator's one-stop view of cluster state.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.cluster == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(httpError{Error: "this node is not clustered"})
		return
	}
	json.NewEncoder(w).Encode(struct {
		ClusterStatus
		Stats  ClusterStats       `json:"stats"`
		Served ClusterServedStats `json:"served"`
	}{s.cluster.Status(), s.cluster.Stats(), s.clusterServed.snapshot()})
}

// writeJSONError renders err with apiError status awareness for the
// raw (un-instrumented) cluster handlers.
func writeJSONError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		code = ae.code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(httpError{Error: err.Error()})
}
