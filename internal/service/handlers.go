package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/fidelity"
	"repro/internal/obs"
	"repro/internal/sfg"
)

// Options configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 16-profile cache, no job timeout, no durable store.
type Options struct {
	// Workers bounds concurrent simulation/profiling jobs (<= 0 means
	// GOMAXPROCS).
	Workers int
	// CacheSize is the number of resident statistical profiles (<= 0
	// means 16).
	CacheSize int
	// JobTimeout cancels any single profile/simulate/sweep job that
	// runs longer (0 disables).
	JobTimeout time.Duration
	// MaxProfileInstructions rejects profile requests beyond this
	// stream length (<= 0 means 50M), keeping one request from pinning
	// a worker for hours.
	MaxProfileInstructions uint64
	// MaxSweepPoints bounds explicit sweep grids (<= 0 means the paper
	// grid size, 1792).
	MaxSweepPoints int
	// CacheDir, when set, persists profiles and sweep checkpoints on
	// disk so a restarted daemon serves what a previous life measured
	// (see Store and SweepJournal).
	CacheDir string
	// MaxQueueDepth sheds new work (HTTP 429 + Retry-After) once this
	// many jobs are queued (<= 0 means 4x the worker count — the point
	// where submissions would otherwise block).
	MaxQueueDepth int
	// MaxRequestBytes caps POST bodies (<= 0 means 1 MiB); beyond it
	// the request fails with 413 instead of consuming memory.
	MaxRequestBytes int64
	// Retry re-runs transiently failed profile/simulate jobs (panics,
	// injected faults) with jittered exponential backoff.
	Retry RetryPolicy
	// Faults injects deterministic failures for chaos testing; nil in
	// production.
	Faults *fault.Injector
	// ProfileShards, when > 1, profiles cache-miss requests with
	// interval-sharded parallelism (core.ProfileOptions.Shards). Sharded
	// results differ slightly from sequential ones (bounded warm-up
	// approximation), so the shard count is part of ProfileKey and
	// changing it never aliases cached sequential profiles.
	ProfileShards int
	// Logger receives the daemon's structured logs; every request-scoped
	// line carries the request's trace ID. nil discards everything
	// (tests, embedded use).
	Logger *slog.Logger
	// FlightRecorderSize bounds the ring of recent request events served
	// by GET /v1/debug/requests and dumped on shed storms and worker
	// panics (<= 0 means 256).
	FlightRecorderSize int
	// ManifestDir, when set, writes one JSON run manifest per successful
	// profile/simulate/sweep request into the directory, named
	// <endpoint>-<trace-id>.json — per-request provenance as a durable,
	// queryable artifact.
	ManifestDir string
	// SurrogateMaxCI enables the oracle's learned fast path: sweep
	// points whose surrogate prediction carries relative uncertainty at
	// or below this gate are served as flagged estimates instead of
	// being simulated. <= 0 (the default) disables surrogate serving
	// entirely — only exact result-store hits are ever served, and those
	// are ground truth. The result store itself rides on CacheDir.
	SurrogateMaxCI float64
	// TraceStoreSize bounds how many recent traces' span slices the
	// daemon retains for GET /v1/debug/trace/{id} (<= 0 means 128).
	TraceStoreSize int
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 16
	}
	if o.MaxProfileInstructions == 0 {
		o.MaxProfileInstructions = 50_000_000
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 1792
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 1 << 20
	}
	if o.FlightRecorderSize <= 0 {
		o.FlightRecorderSize = 256
	}
	if o.TraceStoreSize <= 0 {
		o.TraceStoreSize = 128
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Server is the statsimd service: a worker pool, a profile cache, an
// optional durable store, and the HTTP handlers that expose the paper's
// profile/simulate/sweep pipeline as long-lived endpoints.
type Server struct {
	opts     Options
	pool     *Pool
	cache    *GraphCache
	store    *Store  // nil without CacheDir
	oracle   *oracle // two-tier result oracle; nil-safe when disabled
	faults   *fault.Injector
	metrics  *Metrics
	mux      *http.ServeMux
	log      *slog.Logger
	flight   *obs.FlightRecorder
	progress *progressHub
	traces   *obs.TraceStore
	costs    *costCounters
	build    BuildInfo
	// node is this daemon's name on span and ledger entries: the
	// cluster-advertised URL once SetCluster runs, "local" before.
	node string
	// cluster connects this node to its peers (nil = single-node); set
	// by SetCluster before serving starts. clusterServed counts the
	// answering side of peer RPCs regardless of cluster being set (a
	// pure replica node serves fetches without coordinating anything).
	cluster       Cluster
	clusterServed clusterServedStats

	draining     atomic.Bool
	shed         atomic.Uint64
	retries      atomic.Uint64
	sweepResumed atomic.Uint64
	// Per-source sweep point accounting: how many points each serving
	// tier answered, so the sweep Prometheus families distinguish cached
	// and predicted points from simulated work.
	sweepFromStore     atomic.Uint64
	sweepFromSurrogate atomic.Uint64
	sweepSimulated     atomic.Uint64
	sweepLocks   sync.Map // sweep fingerprint -> *sync.Mutex
	fidelity     fidelityCounters

	// Shed-storm detection: a burst of 429s inside stormWindow triggers
	// one flight-recorder dump per stormCooldown, so the black box lands
	// in the log while the incident is happening, not after.
	stormMu    sync.Mutex
	stormStart time.Time
	stormSheds int
	lastDump   time.Time
}

// Shed-storm thresholds: stormThreshold sheds inside stormWindow count
// as a storm; dumps are spaced at least stormCooldown apart.
const (
	stormThreshold = 8
	stormWindow    = 10 * time.Second
	stormCooldown  = 30 * time.Second
)

// New assembles a Server (and starts its worker pool). The only
// construction failure is an unusable CacheDir.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		pool:     NewPoolTimeout(opts.Workers, opts.JobTimeout),
		cache:    NewGraphCache(opts.CacheSize),
		faults:   opts.Faults,
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		log:      opts.Logger,
		flight:   obs.NewFlightRecorder(opts.FlightRecorderSize),
		progress: newProgressHub(64),
		traces:   obs.NewTraceStore(opts.TraceStoreSize),
		costs:    newCostCounters(),
		build:    readBuildInfo(),
		node:     "local",
	}
	if s.opts.MaxQueueDepth <= 0 {
		s.opts.MaxQueueDepth = 4 * s.pool.Stats().Workers
	}
	if opts.CacheDir != "" {
		store, err := NewStore(opts.CacheDir, opts.Faults)
		if err != nil {
			s.pool.Drain(context.Background())
			return nil, err
		}
		s.store = store
	}
	// The oracle's durable tier lives under the cache dir; the surrogate
	// tier is gated by SurrogateMaxCI. With neither, the oracle stays
	// nil-disabled and every call short-circuits.
	oracleDir := ""
	if opts.CacheDir != "" {
		oracleDir = filepath.Join(opts.CacheDir, oracleSubdir)
	}
	if oracleDir != "" || opts.SurrogateMaxCI > 0 {
		o, err := newOracle(oracleDir, opts.SurrogateMaxCI)
		if err != nil {
			s.pool.Drain(context.Background())
			return nil, err
		}
		s.oracle = o
	}
	if opts.ManifestDir != "" {
		if err := os.MkdirAll(opts.ManifestDir, 0o755); err != nil {
			s.pool.Drain(context.Background())
			return nil, fmt.Errorf("service: creating manifest dir: %w", err)
		}
	}
	s.mux.HandleFunc("POST /v1/profile", s.instrument("/v1/profile", s.handleProfile))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	s.mux.HandleFunc("GET /v1/oracle/status", s.handleOracleStatus)
	s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/debug/trace/{id}", s.handleDebugTrace)
	s.mux.HandleFunc("GET /v1/sweep/progress", s.handleSweepProgress)
	s.mux.HandleFunc("POST /v1/cluster/fetch", s.handleClusterFetch)
	s.mux.HandleFunc("POST /v1/cluster/offer", s.handleClusterOffer)
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the worker pool (shared with embedding callers such as
// the CLI sweep).
func (s *Server) Pool() *Pool { return s.pool }

// Store exposes the durable profile store (nil without CacheDir).
func (s *Server) Store() *Store { return s.store }

// Close marks the server draining (new work is refused with 503, and
// /healthz reports not ready), gracefully drains the worker pool, and
// releases the oracle's result log.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.Drain(ctx)
	if cerr := s.oracle.close(); err == nil {
		err = cerr
	}
	return err
}

// admit is the admission-control gate every work-submitting handler
// passes: a draining server refuses, and a queue past MaxQueueDepth
// sheds with 429 + Retry-After, degrading gracefully instead of letting
// latency collapse for everyone.
func (s *Server) admit() error {
	if s.draining.Load() {
		return &apiError{code: http.StatusServiceUnavailable,
			err: errors.New("server is draining"), retryAfter: 5 * time.Second}
	}
	st := s.pool.Stats()
	if st.QueueDepth >= s.opts.MaxQueueDepth {
		s.shed.Add(1)
		// Scale the hint with how deep the backlog is relative to the
		// workers that must clear it.
		after := time.Duration(1+st.QueueDepth/max(st.Workers, 1)) * time.Second
		return &apiError{code: http.StatusTooManyRequests,
			err:        fmt.Errorf("queue depth %d at limit %d, shedding load", st.QueueDepth, s.opts.MaxQueueDepth),
			retryAfter: after}
	}
	return nil
}

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

// apiError carries a status code (and optionally a Retry-After hint)
// out of a handler.
type apiError struct {
	code       int
	err        error
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// reqInfo rides the request context so the depths of the pipeline (the
// cache fill, the retry loop, the sweep engine) can report outcomes
// back to the instrument middleware without threading return values
// through every layer. Fields are atomics because sweep workers and the
// singleflight fill touch them concurrently with the handler goroutine.
type reqInfo struct {
	rec      *obs.Recorder
	cacheHit atomic.Bool
	retries  atomic.Uint64
	resumed  atomic.Int64

	// Cluster outcomes: the peer a profile was fetched from, and how
	// many peers were lost (and routed around) during this request's
	// sweep.
	remotePeer atomic.Value // string
	failovers  atomic.Int64

	// Oracle outcomes: points served from the durable result store and
	// from the gated surrogate instead of being simulated.
	storeHits     atomic.Int64
	surrogateHits atomic.Int64

	// Fidelity-engine outcomes (set only when the request ran it).
	escalations   atomic.Int64
	detailedInsts atomic.Uint64
	ciWidth       atomic.Uint64 // math.Float64bits of the final relative half-width
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// requestInfo returns the request's telemetry carrier, or nil outside
// an instrumented request (direct handler tests, embedded use).
func requestInfo(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// requestRecorder returns the request's span recorder. nil (a valid,
// zero-overhead disabled recorder) outside an instrumented request.
func requestRecorder(ctx context.Context) *obs.Recorder {
	if ri := requestInfo(ctx); ri != nil {
		return ri.rec
	}
	return nil
}

// retryRun applies the server's retry policy with per-request
// attribution: retries land in the server-wide counter and in the
// request's telemetry (flight recorder, log line).
func (s *Server) retryRun(ctx context.Context, fn func() error) error {
	var local atomic.Uint64
	err := s.opts.Retry.run(ctx, &local, fn)
	if n := local.Load(); n > 0 {
		s.retries.Add(n)
		if ri := requestInfo(ctx); ri != nil {
			ri.retries.Add(n)
		}
	}
	return err
}

// instrument wraps a JSON handler with per-request telemetry and
// uniform error rendering. It mints the request's trace ID (honouring a
// well-formed inbound X-Request-Id, so a client-chosen ID is followable
// across systems), threads it through the context to every layer below,
// echoes it in the X-Request-Id response header, observes latency and
// pipeline-stage timings, emits one structured log line, and records
// the request into the flight recorder. Every failure — malformed JSON,
// oversized body, shed load, job fault — renders as a structured JSON
// error with the right status, never a bare 500 with a text body.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request) (any, error)) http.HandlerFunc {
	hist := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := obs.SanitizeTraceID(r.Header.Get("X-Request-Id"))
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("X-Request-Id", traceID)
		rec := obs.New()
		rec.SetTraceID(traceID)
		ri := &reqInfo{rec: rec}
		tracer := obs.NewTracer(traceID, s.node)
		ctx := withReqInfo(obs.WithTraceID(r.Context(), traceID), ri)
		ctx, root := tracer.StartSpan(obs.WithTracer(ctx, tracer), "http "+name)
		r = r.WithContext(ctx)

		resp, err := h(w, r)
		elapsed := time.Since(start)
		hist.Observe(elapsed, err != nil)
		s.metrics.ObserveStages(rec)

		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		if err != nil {
			code = http.StatusInternalServerError
			var ae *apiError
			if errors.As(err, &ae) {
				code = ae.code
				if ae.retryAfter > 0 {
					secs := int64((ae.retryAfter + time.Second - 1) / time.Second)
					w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				}
			} else if errors.Is(err, ErrPoolClosed) {
				w.Header().Set("Retry-After", "5")
				code = http.StatusServiceUnavailable
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(httpError{Error: err.Error()})
		} else {
			json.NewEncoder(w).Encode(resp)
		}
		if err != nil {
			root.Annotate("error", err.Error())
		}
		root.End()
		spans := tracer.Spans()
		s.traces.Add(traceID, spans)
		s.finishRequest(name, traceID, ri, code, elapsed, len(spans), err)
	}
}

// finishRequest is the telemetry tail of every instrumented request:
// the flight-recorder event, the structured log line, and the decision
// whether this request's outcome (a shed burst, a worker panic)
// warrants dumping the flight recorder into the log.
func (s *Server) finishRequest(name, traceID string, ri *reqInfo, code int, elapsed time.Duration, spans int, err error) {
	ev := obs.RequestEvent{
		Time:       time.Now(),
		TraceID:    traceID,
		Endpoint:   name,
		Status:     code,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		CacheHit:   ri.cacheHit.Load(),
		Shed:       code == http.StatusTooManyRequests,
		Retries:    int(ri.retries.Load()),
		Resumed:    int(ri.resumed.Load()),
		Failovers:  int(ri.failovers.Load()),
		Spans:      spans,

		StoreHits:     int(ri.storeHits.Load()),
		SurrogateHits: int(ri.surrogateHits.Load()),

		Escalations:   int(ri.escalations.Load()),
		DetailedInsts: ri.detailedInsts.Load(),
		CIWidth:       math.Float64frombits(ri.ciWidth.Load()),
	}
	if peer, ok := ri.remotePeer.Load().(string); ok {
		ev.Peer = peer
	}
	if totals := ri.rec.StageTotals(); len(totals) > 0 {
		ev.StageMS = make(map[string]float64, len(totals))
		for stage, t := range totals {
			ev.StageMS[stage] = t.DurationS * 1e3
		}
	}
	if err != nil {
		ev.Error = err.Error()
		ev.Panicked = errors.Is(err, ErrJobPanic)
	}
	s.flight.Record(ev)

	args := []any{"trace_id", traceID, "endpoint", name, "status", code,
		"dur_ms", ev.DurationMS, "cache_hit", ev.CacheHit}
	if ev.Retries > 0 {
		args = append(args, "retries", ev.Retries)
	}
	if ev.Resumed > 0 {
		args = append(args, "resumed", ev.Resumed)
	}
	if ev.Peer != "" {
		args = append(args, "peer", ev.Peer)
	}
	if ev.Failovers > 0 {
		args = append(args, "failovers", ev.Failovers)
	}
	if ev.StoreHits > 0 || ev.SurrogateHits > 0 {
		args = append(args, "store_hits", ev.StoreHits, "surrogate_hits", ev.SurrogateHits)
	}
	if ev.Escalations > 0 || ev.DetailedInsts > 0 {
		args = append(args, "escalations", ev.Escalations, "detailed_insts", ev.DetailedInsts)
	}
	if err != nil {
		args = append(args, "err", err.Error())
		s.log.Warn("request", args...)
	} else {
		s.log.Info("request", args...)
	}

	switch {
	case ev.Panicked:
		s.dumpFlight("worker panic", traceID)
	case ev.Shed:
		s.noteShed(traceID)
	}
}

// noteShed counts 429s toward storm detection: stormThreshold sheds
// inside stormWindow dump the flight recorder, at most once per
// stormCooldown — the black box lands in the log while the overload is
// live, not after the postmortem starts.
func (s *Server) noteShed(traceID string) {
	now := time.Now()
	s.stormMu.Lock()
	if now.Sub(s.stormStart) > stormWindow {
		s.stormStart, s.stormSheds = now, 0
	}
	s.stormSheds++
	storm := s.stormSheds >= stormThreshold && now.Sub(s.lastDump) >= stormCooldown
	if storm {
		s.lastDump = now
	}
	s.stormMu.Unlock()
	if storm {
		s.dumpFlight("shed storm", traceID)
	}
}

// dumpFlight writes the flight recorder's recent history into the log
// as one structured record.
func (s *Server) dumpFlight(reason, traceID string) {
	data, err := json.Marshal(s.flight.Recent(32))
	if err != nil {
		return
	}
	s.log.Error("flight recorder dump", "reason", reason, "trace_id", traceID,
		"events", json.RawMessage(data))
}

// decodeJSON reads one JSON value from the body under a hard size cap.
// Garbage input, unknown fields and trailing data come back as 400s,
// an oversized body as 413 — structured errors, not 500s.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{code: http.StatusRequestEntityTooLarge,
				err: fmt.Errorf("request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// ProfileSpec names a profile in requests; zero fields take defaults
// (k=1, n=1M, seed=1).
type ProfileSpec struct {
	Workload  string `json:"workload"`
	K         int    `json:"k"`
	N         uint64 `json:"n"`
	Seed      uint64 `json:"seed"`
	Immediate bool   `json:"immediate,omitempty"`
}

func (p ProfileSpec) key(opts Options) (ProfileKey, error) {
	if p.Workload == "" {
		return ProfileKey{}, badRequest("workload is required")
	}
	if p.K < 0 || p.K > sfg.MaxK {
		return ProfileKey{}, badRequest("k=%d outside [0,%d]", p.K, sfg.MaxK)
	}
	if p.N == 0 {
		p.N = 1_000_000
	}
	if p.N > opts.MaxProfileInstructions {
		return ProfileKey{}, badRequest("n=%d exceeds limit %d", p.N, opts.MaxProfileInstructions)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	shards := opts.ProfileShards
	if shards <= 1 {
		shards = 0
	}
	return ProfileKey{Workload: p.Workload, K: p.K, N: p.N, Seed: p.Seed, Immediate: p.Immediate, Shards: shards}, nil
}

// resolveProfile returns the (frozen) graph for the spec. On an
// in-memory miss it consults the durable store first (a corrupt file is
// quarantined inside Load and treated as a miss), then profiles through
// the worker pool — retrying transient failures per the server's
// policy — and persists the result for the next daemon life. The bool
// reports whether the profile was served without this request paying
// for profiling. The request's recorder (from the context) collects a
// "profile" span for whatever profiling work this request actually paid
// for (cache and store hits record nothing), and each resolution step
// logs at Debug keyed by the request's trace ID.
func (s *Server) resolveProfile(ctx context.Context, spec ProfileSpec) (*sfg.Graph, ProfileKey, bool, error) {
	key, err := spec.key(s.opts)
	if err != nil {
		return nil, ProfileKey{}, false, err
	}
	rec := requestRecorder(ctx)
	lg := s.log.With("trace_id", obs.TraceIDFromContext(ctx),
		"workload", key.Workload, "k", key.K, "n", key.N)
	g, cached, err := s.cache.GetOrProfile(key, func() (*sfg.Graph, error) {
		if s.store != nil {
			if g, err := s.store.Load(key); err == nil {
				lg.Debug("profile served from durable store")
				return g, nil
			}
			// Missing or quarantined-corrupt: fall through and
			// re-profile; a fresh Save below overwrites.
		}
		if s.cluster != nil {
			// Remote tier: the key's replica peers may have paid for
			// this profile already — a graph profiled once anywhere is
			// bit-identical to what we would compute, so adopting it is
			// as sound as a local cache hit.
			fctx, span := obs.TracerFromContext(ctx).StartSpan(ctx, "cluster.fetch")
			if g, peer, err := s.cluster.FetchGraph(fctx, key); err == nil {
				span.Annotate("peer", peer)
				span.End()
				lg.Debug("profile fetched from peer", "peer", peer)
				if ri := requestInfo(ctx); ri != nil {
					ri.remotePeer.Store(peer)
				}
				if s.store != nil {
					_ = s.store.Save(key, g)
				}
				return g, nil
			} else if !errors.Is(err, ErrNoRemoteGraph) {
				span.Annotate("error", err.Error())
				span.End()
				lg.Debug("peer fetch failed, profiling locally", "err", err.Error())
			} else {
				span.Annotate("outcome", "miss")
				span.End()
			}
		}
		lg.Debug("profile cache miss, profiling")
		var g *sfg.Graph
		err := s.retryRun(ctx, func() error {
			return s.pool.Do(ctx, func(ctx context.Context) error {
				if err := s.faults.Fire(SiteProfileJob); err != nil {
					return err
				}
				w, err := core.LoadWorkload(key.Workload)
				if err != nil {
					return badRequest("%v", err)
				}
				g, err = core.ProfileTraced(rec, cpu.DefaultConfig(), w.Stream(key.Seed, 0, key.N),
					core.ProfileOptions{K: key.K, ImmediateUpdate: key.Immediate, Shards: key.Shards})
				return err
			})
		})
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			// Failures are counted in store stats; the in-memory cache
			// still serves this life.
			_ = s.store.Save(key, g)
		}
		if s.cluster != nil {
			// Freshly paid-for profile: replicate to the key's owners so
			// no node in the cluster ever profiles it again. Freeze
			// first (idempotent — the cache would do it next anyway) so
			// the coordinator's asynchronous send reads an immutable
			// graph.
			g.Freeze()
			// The replication send itself is asynchronous; the span marks
			// that this request initiated it.
			octx, span := obs.TracerFromContext(ctx).StartSpan(ctx, "cluster.offer")
			s.cluster.OfferGraph(octx, key, g)
			span.End()
		}
		return g, nil
	})
	if err == nil && cached {
		lg.Debug("profile served from cache")
		if ri := requestInfo(ctx); ri != nil {
			ri.cacheHit.Store(true)
		}
	}
	return g, key, cached, err
}

// ConfigSpec overrides the Table 2 baseline configuration; zero fields
// keep the baseline value.
type ConfigSpec struct {
	RUU           int  `json:"ruu,omitempty"`
	LSQ           int  `json:"lsq,omitempty"`
	Decode        int  `json:"decode,omitempty"`
	Issue         int  `json:"issue,omitempty"`
	Commit        int  `json:"commit,omitempty"`
	IFQ           int  `json:"ifq,omitempty"`
	PerfectCaches bool `json:"perfect_caches,omitempty"`
	PerfectBpred  bool `json:"perfect_bpred,omitempty"`
}

func (c ConfigSpec) apply(base cpu.Config) cpu.Config {
	if c.RUU > 0 {
		base.RUUSize = c.RUU
	}
	if c.LSQ > 0 {
		base.LSQSize = c.LSQ
	}
	if c.Decode > 0 {
		base.DecodeWidth = c.Decode
	}
	if c.Issue > 0 {
		base.IssueWidth = c.Issue
	}
	if c.Commit > 0 {
		base.CommitWidth = c.Commit
	}
	if c.IFQ > 0 {
		base.IFQSize = c.IFQ
	}
	base.PerfectCaches = base.PerfectCaches || c.PerfectCaches
	base.PerfectBpred = base.PerfectBpred || c.PerfectBpred
	return base
}

// ProfileRequest is the POST /v1/profile body.
type ProfileRequest struct {
	ProfileSpec
}

// ProfileResponse describes the resident profile.
type ProfileResponse struct {
	Key               ProfileKey `json:"key"`
	Nodes             int        `json:"nodes"`
	Edges             int        `json:"edges"`
	TotalInstructions uint64     `json:"total_instructions"`
	Cached            bool       `json:"cached"`
	ElapsedMS         float64    `json:"elapsed_ms"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) (any, error) {
	var req ProfileRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return nil, err
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, key, cached, err := s.resolveProfile(r.Context(), req.ProfileSpec)
	if err != nil {
		return nil, err
	}
	s.writeManifest(r.Context(), "/v1/profile", func(m *obs.Manifest) {
		m.ConfigFingerprint = obs.Fingerprint(cpu.DefaultConfig())
		m.Workload = key.Workload
		m.K = key.K
		m.Seed = key.Seed
		m.StreamLength = key.N
	})
	return ProfileResponse{
		Key:               key,
		Nodes:             g.NumNodes(),
		Edges:             g.NumEdges(),
		TotalInstructions: g.TotalInstructions,
		Cached:            cached,
		ElapsedMS:         float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// SimulateRequest is the POST /v1/simulate body: statistical simulation
// of one configuration from the named profile (profiled on demand).
type SimulateRequest struct {
	Profile ProfileSpec `json:"profile"`
	Config  ConfigSpec  `json:"config"`
	// Target is the synthetic trace length aimed for (default 100k).
	Target uint64 `json:"target"`
	// SimSeed seeds synthetic trace generation (default 1).
	SimSeed uint64 `json:"sim_seed"`
	// Fidelity switches the request to the adaptive fidelity engine:
	// the response carries confidence intervals and an escalation
	// account instead of a single statistical estimate.
	Fidelity *FidelitySpec `json:"fidelity,omitempty"`
}

// SimMetrics is the wire form of one simulation's outcome.
type SimMetrics struct {
	IPC              float64 `json:"ipc"`
	EPC              float64 `json:"epc"`
	EDP              float64 `json:"edp"`
	Cycles           uint64  `json:"cycles"`
	Instructions     uint64  `json:"instructions"`
	MispredictsPerKI float64 `json:"mispredicts_per_ki"`
}

func wireMetrics(m core.Metrics) SimMetrics {
	return SimMetrics{
		IPC:              m.IPC(),
		EPC:              m.EPC(),
		EDP:              m.EDP(),
		Cycles:           m.Cycles,
		Instructions:     m.Instructions,
		MispredictsPerKI: m.Branch.MispredictsPerKI(m.Instructions),
	}
}

// SimulateResponse is the POST /v1/simulate reply. On fidelity runs,
// Metrics carries the interval's centre estimates (Reduction is 0 — no
// single synthetic trace was used) and Fidelity carries the full
// confidence-interval and escalation report.
type SimulateResponse struct {
	Key           ProfileKey       `json:"key"`
	ProfileCached bool             `json:"profile_cached"`
	Reduction     uint64           `json:"reduction"`
	Metrics       SimMetrics       `json:"metrics"`
	Fidelity      *fidelity.Result `json:"fidelity,omitempty"`
	// Served marks a response the oracle answered without simulating:
	// "store" is an exact durable-store hit, byte-identical to
	// re-simulating. Empty on freshly simulated responses.
	Served    string  `json:"served,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) (any, error) {
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return nil, err
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	if req.Fidelity != nil {
		return s.runFidelitySimulate(r, req)
	}
	if req.Target == 0 {
		req.Target = 100_000
	}
	if req.SimSeed == 0 {
		req.SimSeed = 1
	}
	start := time.Now()
	g, key, cached, err := s.resolveProfile(r.Context(), req.Profile)
	if err != nil {
		return nil, err
	}
	rec := requestRecorder(r.Context())
	cfg := req.Config.apply(cpu.DefaultConfig())
	red := core.ReductionFor(g, req.Target)
	okey := oracleKey(key, cfg, red, req.SimSeed)
	served := ""
	var m core.Metrics
	if hit, ok := s.oracle.lookup(okey); ok {
		// Exact fingerprint hit: a previous simulation of this identical
		// (config, profile, reduction, seed) tuple already computed these
		// metrics; re-serving them is byte-identical to re-simulating.
		m, served = hit, ServedFromStore
		if ri := requestInfo(r.Context()); ri != nil {
			ri.storeHits.Add(1)
		}
	} else {
		err = s.retryRun(r.Context(), func() error {
			return s.pool.Do(r.Context(), func(context.Context) error {
				if err := s.faults.Fire(SiteSimulateJob); err != nil {
					return err
				}
				var err error
				m, err = core.StatSimTraced(rec, cfg, g, red, req.SimSeed)
				return err
			})
		})
		if err != nil {
			return nil, err
		}
		s.oracle.learn(okey, m)
	}
	s.writeManifest(r.Context(), "/v1/simulate", func(mf *obs.Manifest) {
		mf.ConfigFingerprint = obs.Fingerprint(cfg)
		mf.Workload = key.Workload
		mf.K = key.K
		mf.Seed = key.Seed
		mf.SimSeed = req.SimSeed
		mf.Reduction = red
		mf.StreamLength = key.N
		mf.Metrics = core.ManifestMetrics(m)
	})
	return SimulateResponse{
		Key:           key,
		ProfileCached: cached,
		Reduction:     red,
		Metrics:       wireMetrics(m),
		Served:        served,
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// SweepRequest is the POST /v1/sweep body: statistical simulation of a
// whole design grid from one profile.
type SweepRequest struct {
	Profile ProfileSpec `json:"profile"`
	Config  ConfigSpec  `json:"config"`
	// Grid names a built-in design space ("quick" or "paper"); Points
	// supplies an explicit one instead.
	Grid    string       `json:"grid,omitempty"`
	Points  []SweepPoint `json:"points,omitempty"`
	Target  uint64       `json:"target"`
	SimSeed uint64       `json:"sim_seed"`
	// Fidelity switches every point to the adaptive fidelity engine
	// (shared stratification, per-point confidence intervals); fidelity
	// sweeps are capped at maxFidelitySweepPoints points.
	Fidelity *FidelitySpec `json:"fidelity,omitempty"`
	// RawMetrics additionally returns each point's full core.Metrics in
	// SweepRow.Raw. The cluster's coordinator sets it on sub-requests:
	// raw metrics JSON-round-trip exactly, which is what makes a point
	// computed on a peer byte-identical in the merged result and the
	// journal.
	RawMetrics bool `json:"raw_metrics,omitempty"`
	// Cost additionally returns the per-point cost ledger in the
	// response tail: one entry per grid point recording which tier
	// served it, on which node, in which lockstep cohort, and its wall
	// time. The coordinator sets it on sub-requests so remote points
	// carry the executing peer's measurements.
	Cost bool `json:"cost,omitempty"`
}

// SweepRow is one design point's outcome; Fidelity is present on
// fidelity-mode sweeps, Raw when the request asked for raw metrics.
// Served marks oracle-answered points ("store" is ground truth,
// "surrogate" a gated prediction); surrogate rows always carry
// Estimated=true and their Uncertainty, so an estimate can never be
// mistaken for a measurement.
type SweepRow struct {
	Point       SweepPoint       `json:"point"`
	Metrics     SimMetrics       `json:"metrics"`
	Raw         *core.Metrics    `json:"raw,omitempty"`
	Fidelity    *fidelity.Result `json:"fidelity,omitempty"`
	Served      string           `json:"served,omitempty"`
	Estimated   bool             `json:"estimated,omitempty"`
	Uncertainty float64          `json:"uncertainty,omitempty"`
}

// SweepResponse is the POST /v1/sweep reply; Results are in grid order
// independent of completion order, and Best indexes the minimum-EDP
// row. Resumed counts points recovered from a checkpoint journal
// (a previous life of the daemon, or an identical earlier sweep)
// rather than simulated for this request.
type SweepResponse struct {
	Key           ProfileKey `json:"key"`
	ProfileCached bool       `json:"profile_cached"`
	Points        int        `json:"points"`
	Resumed       int        `json:"resumed,omitempty"`
	// FromStore and FromSurrogate count points the oracle served
	// (exact durable-store hits and gated predictions) instead of
	// simulating them for this request.
	FromStore     int        `json:"from_store,omitempty"`
	FromSurrogate int        `json:"from_surrogate,omitempty"`
	Best          int        `json:"best"`
	Results       []SweepRow `json:"results"`
	// Cost is the per-point cost ledger (present when the request set
	// cost=true): exactly one entry per grid point, in grid order.
	Cost []PointCost `json:"cost,omitempty"`
	// TraceSpans piggybacks this node's span slice on fanout sub-sweep
	// responses so the coordinator assembles one tree covering every
	// node that worked on the sweep. Never set on direct requests.
	TraceSpans []obs.TraceSpan `json:"trace_spans,omitempty"`
	ElapsedMS  float64         `json:"elapsed_ms"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) (any, error) {
	var req SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return nil, err
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	points := req.Points
	if req.Grid != "" {
		if len(points) > 0 {
			return nil, badRequest("grid and points are mutually exclusive")
		}
		var err error
		if points, err = GridByName(req.Grid); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	if len(points) == 0 {
		return nil, badRequest("a grid name or explicit points are required")
	}
	if len(points) > s.opts.MaxSweepPoints {
		return nil, badRequest("%d points exceed limit %d", len(points), s.opts.MaxSweepPoints)
	}
	if req.Fidelity != nil {
		return s.runFidelitySweep(r, req, points)
	}
	if req.Target == 0 {
		req.Target = 100_000
	}
	if req.SimSeed == 0 {
		req.SimSeed = 1
	}
	start := time.Now()
	ctx := r.Context()
	fanout := r.Header.Get(ClusterFanoutHeader) != ""
	var sub obs.ActiveSpan
	if fanout {
		// A coordinator dispatched this sub-sweep: parent our spans under
		// its dispatch span (carried in the header next to X-Request-Id)
		// so the merged tree reads as one request, and open the span that
		// roots everything this node does for the chunk.
		if parent := obs.SanitizeTraceID(r.Header.Get(ClusterParentSpanHeader)); parent != "" {
			ctx = obs.WithSpanID(ctx, parent)
		}
		ctx, sub = obs.TracerFromContext(ctx).StartSpan(ctx, "sweep.sub")
		sub.Annotate("points", strconv.Itoa(len(points)))
	}
	g, key, cached, err := s.resolveProfile(ctx, req.Profile)
	if err != nil {
		return nil, err
	}
	base := req.Config.apply(cpu.DefaultConfig())
	red := core.ReductionFor(g, req.Target)
	params := sweepParams{
		spec:    req.Profile,
		cfg:     req.Config,
		pkey:    key,
		base:    base,
		g:       g,
		points:  points,
		red:     red,
		simSeed: req.SimSeed,
		fanout:  fanout,
		ledger:  newCostLedger(s.node, len(points)),
	}
	results, resumed, err := s.runSweep(ctx, params)
	sub.End()
	if err != nil {
		return nil, err
	}
	entries := params.ledger.snapshot()
	s.costs.add(entries)
	s.writeManifest(ctx, "/v1/sweep", func(m *obs.Manifest) {
		m.ConfigFingerprint = obs.Fingerprint(base)
		m.Workload = key.Workload
		m.K = key.K
		m.Seed = key.Seed
		m.SimSeed = req.SimSeed
		m.Reduction = red
		m.StreamLength = key.N
		m.Cost = manifestCost(entries)
	})
	resp := SweepResponse{
		Key:           key,
		ProfileCached: cached,
		Points:        len(results),
		Resumed:       resumed,
		Results:       make([]SweepRow, len(results)),
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i, res := range results {
		row := SweepRow{Point: res.Point, Served: res.Served}
		switch {
		case res.Estimate != nil:
			// A surrogate-served point: rates predicted, not measured.
			// The flag and uncertainty travel with the row so no consumer
			// can mistake it for ground truth, and estimates never carry
			// raw metrics.
			row.Metrics = estimateWire(*res.Estimate)
			row.Estimated = true
			row.Uncertainty = res.Estimate.Uncertainty
			resp.FromSurrogate++
		default:
			row.Metrics = wireMetrics(res.Metrics)
			if req.RawMetrics {
				m := res.Metrics
				row.Raw = &m
			}
			if res.Served == ServedFromStore {
				resp.FromStore++
			}
		}
		resp.Results[i] = row
		if resp.Results[i].Metrics.EDP < resp.Results[resp.Best].Metrics.EDP {
			resp.Best = i
		}
	}
	if req.Cost {
		resp.Cost = entries
	}
	if fanout {
		// Ship this node's span slice back piggybacked on the sub-sweep
		// response; the coordinator imports it into the root tracer. The
		// enclosing "http /v1/sweep" root span is still open here and so
		// excluded — the shipped spans all chain under sweep.sub, which
		// parents to the coordinator's dispatch span.
		resp.TraceSpans = obs.TracerFromContext(ctx).Spans()
	}
	return resp, nil
}

// sweepParams bundles one sweep's full identity: the profile and
// config specs travel alongside the resolved graph/base so the
// clustered engine can re-issue sub-requests shaped exactly like the
// original, and fanout marks a sub-request that must not fan out again.
type sweepParams struct {
	spec    ProfileSpec
	cfg     ConfigSpec
	pkey    ProfileKey // resolved spec, as oracle keys carry it
	base    cpu.Config
	g       *sfg.Graph
	points  []SweepPoint
	red     uint64
	simSeed uint64
	fanout  bool
	// ledger collects the sweep's per-point cost entries (nil-safe:
	// embedded callers without one pay nothing).
	ledger *costLedger
}

// runSweep runs the design-space sweep, checkpointing through the
// durable store when one is configured: the journal is keyed by the
// sweep's fingerprint, so the same request after a daemon restart
// resumes instead of recomputing, and identical concurrent requests
// serialise on a per-fingerprint lock (the second finds every point
// checkpointed). Journal failures degrade to an un-checkpointed sweep
// rather than failing the request.
//
// Progress is published into the hub feed keyed by the request's trace
// ID: a "start" event once the resume count is known, one "point" event
// per freshly simulated point in completion order, and a terminal
// "done" or "error" — the stream GET /v1/sweep/progress serves.
func (s *Server) runSweep(ctx context.Context, p sweepParams) ([]SweepResult, int, error) {
	// Fanout sub-sweeps share the root request's trace ID; publishing
	// into the hub would collide with the coordinator's own feed for the
	// same ID (the first terminal event would silence the rest), so they
	// run against a nil feed, which discards everything.
	var feed *progressFeed
	if !p.fanout {
		feed = s.progress.feed(obs.TraceIDFromContext(ctx))
	}
	var completed atomic.Int64
	var fromStore, fromSurrogate atomic.Int64
	progress := func(index int, res SweepResult) {
		m := wireMetrics(res.Metrics)
		if res.Estimate != nil {
			m = estimateWire(*res.Estimate)
			fromSurrogate.Add(1)
		} else if res.Served == ServedFromStore {
			fromStore.Add(1)
		}
		pt := res.Point
		feed.publish(ProgressEvent{Type: "point", Completed: int(completed.Add(1)),
			Index: index, Point: &pt, Metrics: &m,
			Served: res.Served, Estimated: res.Estimate != nil})
	}
	results, resumed, err := s.sweepJournaled(ctx, p, feed, &completed, progress)
	if err != nil {
		feed.publish(ProgressEvent{Type: "error", Total: len(p.points), Resumed: resumed,
			Completed: int(completed.Load()), Error: err.Error()})
		return nil, resumed, err
	}
	feed.publish(ProgressEvent{Type: "done", Total: len(p.points), Resumed: resumed,
		Completed: int(completed.Load()),
		FromStore: int(fromStore.Load()), FromSurrogate: int(fromSurrogate.Load())})
	return results, resumed, nil
}

// sweepJournaled picks the checkpointed or plain sweep path and emits
// the feed's "start" event once the resume count is known (seeding the
// completed counter, so "point" events count from resumed upward).
func (s *Server) sweepJournaled(ctx context.Context, p sweepParams, feed *progressFeed, completed *atomic.Int64, progress func(int, SweepResult)) ([]SweepResult, int, error) {
	start := func(resumed int) {
		completed.Store(int64(resumed))
		feed.publish(ProgressEvent{Type: "start", Total: len(p.points), Resumed: resumed, Completed: resumed})
	}
	if s.store == nil {
		start(0)
		return s.sweepExecute(ctx, p, nil, progress)
	}
	id := SweepFingerprint(p.g, p.base, p.points, p.red, p.simSeed)
	mu, _ := s.sweepLocks.LoadOrStore(id, &sync.Mutex{})
	mu.(*sync.Mutex).Lock()
	defer mu.(*sync.Mutex).Unlock()
	j, err := OpenSweepJournal(s.store.JournalPath(id), id, len(p.points), s.faults)
	if err != nil {
		start(0)
		return s.sweepExecute(ctx, p, nil, progress)
	}
	defer j.Close()
	s.log.Debug("sweep checkpoint journal opened", "trace_id", obs.TraceIDFromContext(ctx),
		"fingerprint", id, "points", len(p.points), "resumed", j.Resumed(), "dropped", j.Dropped())
	start(j.Resumed())
	results, resumed, err := s.sweepExecute(ctx, p, j, progress)
	s.sweepResumed.Add(uint64(resumed))
	if resumed > 0 {
		if ri := requestInfo(ctx); ri != nil {
			ri.resumed.Store(int64(resumed))
		}
	}
	return results, resumed, err
}

// sweepExecute resolves every point of a sweep through the tiered
// serving order — journal resume, then the oracle (exact store hits,
// gated surrogate predictions), then the executors (local lockstep
// batching or cluster fan-out) — journaling and publishing progress
// identically per point, and filling results in grid order, so the
// response bytes cannot depend on which tier (or which peer) answered a
// point. Sub-sweeps dispatched by another coordinator (fanout) always
// run locally and never answer with estimates. What the executors
// compute feeds the oracle, so fallback traffic continuously widens the
// store and sharpens the surrogate.
func (s *Server) sweepExecute(ctx context.Context, p sweepParams, j *SweepJournal, progress func(int, SweepResult)) ([]SweepResult, int, error) {
	// Concurrent simulations — local workers and the cluster offer/fetch
	// paths — sample the shared graph; freezing makes those reads
	// immutable (no-op if the cache already froze it).
	p.g.Freeze()
	results := make([]SweepResult, len(p.points))
	var pending []int
	resumed := 0
	if j != nil {
		done := j.Done()
		for i := range p.points {
			if m, ok := done[i]; ok {
				results[i] = SweepResult{Point: p.points[i], Metrics: m}
				p.ledger.record(i, TierResumed, "", -1, 0, false)
				resumed++
			} else {
				pending = append(pending, i)
			}
		}
	} else {
		pending = make([]int, len(p.points))
		for i := range pending {
			pending[i] = i
		}
	}

	pending = s.oracleFilter(ctx, p, pending, results, j, progress)
	if len(pending) == 0 {
		return results, resumed, nil
	}

	// Indices are disjoint across concurrent report calls, so the
	// results writes need no lock; Append, learn and progress are
	// concurrency-safe.
	report := func(i int, m core.Metrics) {
		results[i] = SweepResult{Point: p.points[i], Metrics: m}
		s.sweepSimulated.Add(1)
		s.oracle.learn(oracleKey(p.pkey, p.points[i].Apply(p.base), p.red, p.simSeed), m)
		if j != nil {
			// Best-effort: a failed append only means this point is
			// recomputed if the sweep is interrupted later.
			_ = j.Append(i, m)
		}
		if progress != nil {
			progress(i, results[i])
		}
	}
	if s.cluster == nil || p.fanout {
		noteCost := func(index, cohort int, wallS float64) {
			p.ledger.record(index, TierSimulated, "", cohort, wallS, false)
		}
		if err := runPendingBatched(ctx, s.pool, s.faults, p.base, p.g, p.points, pending, p.red, p.simSeed, report, noteCost); err != nil {
			return nil, resumed, err
		}
		return results, resumed, nil
	}
	if err := s.sweepClustered(ctx, p.spec, p.cfg, p.base, p.g, p.points, pending, p.red, p.simSeed, report, p.ledger); err != nil {
		return nil, resumed, err
	}
	return results, resumed, nil
}

// writeManifest persists a per-request run manifest when ManifestDir is
// configured: <endpoint>-<trace-id>.json, carrying the same trace ID as
// the response header, the log lines and the flight recorder, so one
// identifier connects the durable artifact to every other telemetry
// surface. Failures are logged, never surfaced — a full disk must not
// fail a simulation that already succeeded.
func (s *Server) writeManifest(ctx context.Context, endpoint string, fill func(m *obs.Manifest)) {
	if s.opts.ManifestDir == "" {
		return
	}
	traceID := obs.TraceIDFromContext(ctx)
	m := obs.NewManifest("statsimd " + endpoint)
	m.TraceID = traceID
	m.NumWorkers = s.pool.Stats().Workers
	m.FillStages(requestRecorder(ctx))
	if ri := requestInfo(ctx); ri != nil {
		sh, su := int(ri.storeHits.Load()), int(ri.surrogateHits.Load())
		if sh > 0 || su > 0 {
			// A manifest containing any surrogate-served point records
			// estimates, and Estimated marks it so downstream consumers
			// (golden corpora, accuracy studies) never treat it as truth.
			m.Oracle = &obs.ManifestOracle{StoreHits: sh, SurrogateHits: su, Estimated: su > 0}
		}
	}
	fill(&m)
	name := strings.ReplaceAll(strings.TrimPrefix(endpoint, "/"), "/", "-") + "-" + traceID + ".json"
	path := filepath.Join(s.opts.ManifestDir, name)
	f, err := os.Create(path)
	if err == nil {
		err = m.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.log.Warn("writing run manifest", "trace_id", traceID, "path", path, "err", err.Error())
	}
}

// WorkloadInfo describes one available benchmark.
type WorkloadInfo struct {
	Name         string `json:"name"`
	Blocks       int    `json:"blocks"`
	StaticInstrs int    `json:"static_instrs"`
	Phases       int    `json:"phases"`
}

func (s *Server) handleWorkloads(http.ResponseWriter, *http.Request) (any, error) {
	ws := core.Workloads()
	out := make([]WorkloadInfo, len(ws))
	for i, w := range ws {
		out[i] = WorkloadInfo{
			Name:         w.Name,
			Blocks:       len(w.Prog.Blocks),
			StaticInstrs: w.Prog.NumStaticInstrs(),
			Phases:       w.Pers.Phases,
		}
	}
	return out, nil
}

// HealthResponse is the GET /healthz body. Live distinguishes "the
// process is up" from Ready, "the process will accept work right now":
// a draining or load-shedding daemon is live but not ready, and the
// endpoint returns 503 so load balancers rotate it out without killing
// the in-flight work it is still finishing. Build carries the binary's
// provenance so an operator can tell at a glance which revision is
// answering.
type HealthResponse struct {
	Status        string    `json:"status"` // ok | shedding | draining
	Live          bool      `json:"live"`
	Ready         bool      `json:"ready"`
	Build         BuildInfo `json:"build"`
	Workers       int       `json:"workers"`
	QueueDepth    int       `json:"queue_depth"`
	CachedSFGs    int       `json:"cached_sfgs"`
	CacheCapacity int       `json:"cache_capacity"`
	ProfileShards int       `json:"profile_shards,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	cst := s.cache.Stats()
	h := HealthResponse{
		Status:        "ok",
		Live:          true,
		Ready:         true,
		Build:         s.build,
		Workers:       st.Workers,
		QueueDepth:    st.QueueDepth,
		CachedSFGs:    cst.Size,
		CacheCapacity: cst.Capacity,
		ProfileShards: s.opts.ProfileShards,
	}
	switch {
	case s.draining.Load():
		h.Status, h.Ready = "draining", false
	case st.QueueDepth >= s.opts.MaxQueueDepth:
		h.Status, h.Ready = "shedding", false
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// gatherMetrics snapshots the non-registry state both metrics views
// render.
func (s *Server) gatherMetrics() (RobustnessStats, *StoreStats, FidelityStats, *OracleStatus, *ClusterMetrics) {
	robustness := RobustnessStats{
		Shed:                     s.shed.Load(),
		Retries:                  s.retries.Load(),
		SweepPointsResumed:       s.sweepResumed.Load(),
		SweepPointsFromStore:     s.sweepFromStore.Load(),
		SweepPointsFromSurrogate: s.sweepFromSurrogate.Load(),
		SweepPointsSimulated:     s.sweepSimulated.Load(),
	}
	var store *StoreStats
	if s.store != nil {
		st := s.store.Stats()
		store = &st
	}
	var cluster *ClusterMetrics
	if s.cluster != nil {
		cluster = &ClusterMetrics{ClusterStats: s.cluster.Stats(), Served: s.clusterServed.snapshot()}
	}
	var oracleStatus *OracleStatus
	if s.oracle.enabled() {
		st := s.oracle.status()
		oracleStatus = &st
	}
	return robustness, store, s.fidelity.stats(), oracleStatus, cluster
}

// renderPrometheus writes this node's complete Prometheus exposition —
// the same bytes GET /metrics?format=prometheus serves, reused by the
// fleet-merged view at GET /v1/cluster/metrics.
func (s *Server) renderPrometheus(w io.Writer) error {
	robustness, store, fid, oracleStatus, cluster := s.gatherMetrics()
	return writePrometheus(w, s.metrics, promSnapshot{
		uptimeSeconds: time.Since(s.metrics.start).Seconds(),
		build:         s.build,
		cache:         s.cache.Stats(),
		pool:          s.pool.Stats(),
		robustness:    robustness,
		store:         store,
		flightEvents:  s.flight.Total(),
		fidelity:      fid,
		oracle:        oracleStatus,
		cluster:       cluster,
		costs:         s.costs.export(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.renderPrometheus(w)
		return
	}
	robustness, store, fid, oracleStatus, cluster := s.gatherMetrics()
	snap := s.metrics.Snapshot(s.cache, s.pool)
	snap.Robustness = robustness
	snap.Store = store
	snap.Fidelity = fid
	snap.Oracle = oracleStatus
	snap.Cluster = cluster
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

// DebugRequestsResponse is the GET /v1/debug/requests body: the flight
// recorder's retained events, newest first.
type DebugRequestsResponse struct {
	Capacity int                `json:"capacity"`
	Total    uint64             `json:"total"`
	Events   []obs.RequestEvent `json:"events"`
}

// handleDebugRequests serves the flight recorder. ?n= bounds how many
// events come back (default: everything retained); ?trace_id= keeps
// only events of one trace — including fan-out sub-sweeps, which carry
// the originating root trace ID, so the filter works across nodes.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(httpError{Error: "n must be a positive integer"})
			return
		}
		n = v
	}
	events := s.flight.Recent(n)
	if want := obs.SanitizeTraceID(r.URL.Query().Get("trace_id")); want != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.TraceID == want {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	resp := DebugRequestsResponse{
		Capacity: s.flight.Size(),
		Total:    s.flight.Total(),
		Events:   events,
	}
	if resp.Events == nil {
		resp.Events = []obs.RequestEvent{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleDebugTrace assembles and serves the merged span tree for one
// trace ID: every span this node recorded for the request, including
// the slices its peers shipped back on sub-sweep responses. Spans whose
// parent never arrived (a late or lost peer slice) render as extra
// roots — a partial tree is still a tree, never an error.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := obs.SanitizeTraceID(r.PathValue("id"))
	w.Header().Set("Content-Type", "application/json")
	if id == "" {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(httpError{Error: "a trace ID is required"})
		return
	}
	spans, ok := s.traces.Get(id)
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(httpError{Error: fmt.Sprintf("trace %q not retained", id)})
		return
	}
	json.NewEncoder(w).Encode(obs.AssembleTree(id, spans))
}

// handleSweepProgress streams a sweep's live progress as server-sent
// events. The id query parameter is the sweep request's trace ID: a
// client sets X-Request-Id on its POST /v1/sweep and subscribes here
// with the same value — before, during or shortly after the sweep,
// since feeds replay their full history to late subscribers. Each SSE
// event carries a JSON ProgressEvent; a terminal "done" or "error"
// event ends the stream.
func (s *Server) handleSweepProgress(w http.ResponseWriter, r *http.Request) {
	id := obs.SanitizeTraceID(r.URL.Query().Get("id"))
	if id == "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(httpError{Error: "id query parameter (the sweep's trace ID) is required"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Request-Id", id)
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	feed := s.progress.feed(id)
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	next := 0
	for {
		evs, done, wake := feed.next(next)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			next += len(evs)
			fl.Flush()
			continue
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			// An SSE comment keeps idle connections alive through proxies
			// while the subscriber waits for the sweep to start.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
