package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sfg"
)

// Options configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 16-profile cache, no job timeout.
type Options struct {
	// Workers bounds concurrent simulation/profiling jobs (<= 0 means
	// GOMAXPROCS).
	Workers int
	// CacheSize is the number of resident statistical profiles (<= 0
	// means 16).
	CacheSize int
	// JobTimeout cancels any single profile/simulate/sweep job that
	// runs longer (0 disables).
	JobTimeout time.Duration
	// MaxProfileInstructions rejects profile requests beyond this
	// stream length (<= 0 means 50M), keeping one request from pinning
	// a worker for hours.
	MaxProfileInstructions uint64
	// MaxSweepPoints bounds explicit sweep grids (<= 0 means the paper
	// grid size, 1792).
	MaxSweepPoints int
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 16
	}
	if o.MaxProfileInstructions == 0 {
		o.MaxProfileInstructions = 50_000_000
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 1792
	}
	return o
}

// Server is the statsimd service: a worker pool, a profile cache, and
// the HTTP handlers that expose the paper's profile/simulate/sweep
// pipeline as long-lived endpoints.
type Server struct {
	opts    Options
	pool    *Pool
	cache   *GraphCache
	metrics *Metrics
	mux     *http.ServeMux
}

// New assembles a Server (and starts its worker pool).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		pool:    NewPoolTimeout(opts.Workers, opts.JobTimeout),
		cache:   NewGraphCache(opts.CacheSize),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/profile", s.instrument("/v1/profile", s.handleProfile))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the worker pool (shared with embedding callers such as
// the CLI sweep).
func (s *Server) Pool() *Pool { return s.pool }

// Close gracefully drains the worker pool.
func (s *Server) Close(ctx context.Context) error { return s.pool.Drain(ctx) }

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

// apiError carries a status code out of a handler.
type apiError struct {
	code int
	err  error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// instrument wraps a JSON handler with latency observation and uniform
// error rendering.
func (s *Server) instrument(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	hist := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		resp, err := h(r)
		hist.Observe(time.Since(start), err != nil)
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			code := http.StatusInternalServerError
			var ae *apiError
			if errors.As(err, &ae) {
				code = ae.code
			} else if errors.Is(err, ErrPoolClosed) {
				code = http.StatusServiceUnavailable
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(httpError{Error: err.Error()})
			return
		}
		json.NewEncoder(w).Encode(resp)
	}
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// ProfileSpec names a profile in requests; zero fields take defaults
// (k=1, n=1M, seed=1).
type ProfileSpec struct {
	Workload  string `json:"workload"`
	K         int    `json:"k"`
	N         uint64 `json:"n"`
	Seed      uint64 `json:"seed"`
	Immediate bool   `json:"immediate,omitempty"`
}

func (p ProfileSpec) key(opts Options) (ProfileKey, error) {
	if p.Workload == "" {
		return ProfileKey{}, badRequest("workload is required")
	}
	if p.K < 0 || p.K > sfg.MaxK {
		return ProfileKey{}, badRequest("k=%d outside [0,%d]", p.K, sfg.MaxK)
	}
	if p.N == 0 {
		p.N = 1_000_000
	}
	if p.N > opts.MaxProfileInstructions {
		return ProfileKey{}, badRequest("n=%d exceeds limit %d", p.N, opts.MaxProfileInstructions)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return ProfileKey{Workload: p.Workload, K: p.K, N: p.N, Seed: p.Seed, Immediate: p.Immediate}, nil
}

// resolveProfile returns the (frozen) graph for the spec, profiling
// through the worker pool on a cache miss. The bool reports whether the
// profile was served without this request paying for profiling.
func (s *Server) resolveProfile(ctx context.Context, spec ProfileSpec) (*sfg.Graph, ProfileKey, bool, error) {
	key, err := spec.key(s.opts)
	if err != nil {
		return nil, ProfileKey{}, false, err
	}
	g, cached, err := s.cache.GetOrProfile(key, func() (*sfg.Graph, error) {
		var g *sfg.Graph
		err := s.pool.Do(ctx, func(ctx context.Context) error {
			w, err := core.LoadWorkload(key.Workload)
			if err != nil {
				return badRequest("%v", err)
			}
			g, err = core.Profile(cpu.DefaultConfig(), w.Stream(key.Seed, 0, key.N),
				core.ProfileOptions{K: key.K, ImmediateUpdate: key.Immediate})
			return err
		})
		return g, err
	})
	return g, key, cached, err
}

// ConfigSpec overrides the Table 2 baseline configuration; zero fields
// keep the baseline value.
type ConfigSpec struct {
	RUU           int  `json:"ruu,omitempty"`
	LSQ           int  `json:"lsq,omitempty"`
	Decode        int  `json:"decode,omitempty"`
	Issue         int  `json:"issue,omitempty"`
	Commit        int  `json:"commit,omitempty"`
	IFQ           int  `json:"ifq,omitempty"`
	PerfectCaches bool `json:"perfect_caches,omitempty"`
	PerfectBpred  bool `json:"perfect_bpred,omitempty"`
}

func (c ConfigSpec) apply(base cpu.Config) cpu.Config {
	if c.RUU > 0 {
		base.RUUSize = c.RUU
	}
	if c.LSQ > 0 {
		base.LSQSize = c.LSQ
	}
	if c.Decode > 0 {
		base.DecodeWidth = c.Decode
	}
	if c.Issue > 0 {
		base.IssueWidth = c.Issue
	}
	if c.Commit > 0 {
		base.CommitWidth = c.Commit
	}
	if c.IFQ > 0 {
		base.IFQSize = c.IFQ
	}
	base.PerfectCaches = base.PerfectCaches || c.PerfectCaches
	base.PerfectBpred = base.PerfectBpred || c.PerfectBpred
	return base
}

// ProfileRequest is the POST /v1/profile body.
type ProfileRequest struct {
	ProfileSpec
}

// ProfileResponse describes the resident profile.
type ProfileResponse struct {
	Key               ProfileKey `json:"key"`
	Nodes             int        `json:"nodes"`
	Edges             int        `json:"edges"`
	TotalInstructions uint64     `json:"total_instructions"`
	Cached            bool       `json:"cached"`
	ElapsedMS         float64    `json:"elapsed_ms"`
}

func (s *Server) handleProfile(r *http.Request) (any, error) {
	var req ProfileRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	start := time.Now()
	g, key, cached, err := s.resolveProfile(r.Context(), req.ProfileSpec)
	if err != nil {
		return nil, err
	}
	return ProfileResponse{
		Key:               key,
		Nodes:             g.NumNodes(),
		Edges:             g.NumEdges(),
		TotalInstructions: g.TotalInstructions,
		Cached:            cached,
		ElapsedMS:         float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// SimulateRequest is the POST /v1/simulate body: statistical simulation
// of one configuration from the named profile (profiled on demand).
type SimulateRequest struct {
	Profile ProfileSpec `json:"profile"`
	Config  ConfigSpec  `json:"config"`
	// Target is the synthetic trace length aimed for (default 100k).
	Target uint64 `json:"target"`
	// SimSeed seeds synthetic trace generation (default 1).
	SimSeed uint64 `json:"sim_seed"`
}

// SimMetrics is the wire form of one simulation's outcome.
type SimMetrics struct {
	IPC              float64 `json:"ipc"`
	EPC              float64 `json:"epc"`
	EDP              float64 `json:"edp"`
	Cycles           uint64  `json:"cycles"`
	Instructions     uint64  `json:"instructions"`
	MispredictsPerKI float64 `json:"mispredicts_per_ki"`
}

func wireMetrics(m core.Metrics) SimMetrics {
	return SimMetrics{
		IPC:              m.IPC(),
		EPC:              m.EPC(),
		EDP:              m.EDP(),
		Cycles:           m.Cycles,
		Instructions:     m.Instructions,
		MispredictsPerKI: m.Branch.MispredictsPerKI(m.Instructions),
	}
}

// SimulateResponse is the POST /v1/simulate reply.
type SimulateResponse struct {
	Key           ProfileKey `json:"key"`
	ProfileCached bool       `json:"profile_cached"`
	Reduction     uint64     `json:"reduction"`
	Metrics       SimMetrics `json:"metrics"`
	ElapsedMS     float64    `json:"elapsed_ms"`
}

func (s *Server) handleSimulate(r *http.Request) (any, error) {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Target == 0 {
		req.Target = 100_000
	}
	if req.SimSeed == 0 {
		req.SimSeed = 1
	}
	start := time.Now()
	g, key, cached, err := s.resolveProfile(r.Context(), req.Profile)
	if err != nil {
		return nil, err
	}
	red := core.ReductionFor(g, req.Target)
	var m core.Metrics
	err = s.pool.Do(r.Context(), func(context.Context) error {
		var err error
		m, err = core.StatSim(req.Config.apply(cpu.DefaultConfig()), g, red, req.SimSeed)
		return err
	})
	if err != nil {
		return nil, err
	}
	return SimulateResponse{
		Key:           key,
		ProfileCached: cached,
		Reduction:     red,
		Metrics:       wireMetrics(m),
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// SweepRequest is the POST /v1/sweep body: statistical simulation of a
// whole design grid from one profile.
type SweepRequest struct {
	Profile ProfileSpec `json:"profile"`
	Config  ConfigSpec  `json:"config"`
	// Grid names a built-in design space ("quick" or "paper"); Points
	// supplies an explicit one instead.
	Grid    string       `json:"grid,omitempty"`
	Points  []SweepPoint `json:"points,omitempty"`
	Target  uint64       `json:"target"`
	SimSeed uint64       `json:"sim_seed"`
}

// SweepRow is one design point's outcome.
type SweepRow struct {
	Point   SweepPoint `json:"point"`
	Metrics SimMetrics `json:"metrics"`
}

// SweepResponse is the POST /v1/sweep reply; Results are in grid order
// independent of completion order, and Best indexes the minimum-EDP row.
type SweepResponse struct {
	Key           ProfileKey `json:"key"`
	ProfileCached bool       `json:"profile_cached"`
	Points        int        `json:"points"`
	Best          int        `json:"best"`
	Results       []SweepRow `json:"results"`
	ElapsedMS     float64    `json:"elapsed_ms"`
}

func (s *Server) handleSweep(r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	points := req.Points
	if req.Grid != "" {
		if len(points) > 0 {
			return nil, badRequest("grid and points are mutually exclusive")
		}
		var err error
		if points, err = GridByName(req.Grid); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	if len(points) == 0 {
		return nil, badRequest("a grid name or explicit points are required")
	}
	if len(points) > s.opts.MaxSweepPoints {
		return nil, badRequest("%d points exceed limit %d", len(points), s.opts.MaxSweepPoints)
	}
	if req.Target == 0 {
		req.Target = 100_000
	}
	if req.SimSeed == 0 {
		req.SimSeed = 1
	}
	start := time.Now()
	g, key, cached, err := s.resolveProfile(r.Context(), req.Profile)
	if err != nil {
		return nil, err
	}
	results, err := Sweep(r.Context(), s.pool, req.Config.apply(cpu.DefaultConfig()), g,
		points, core.ReductionFor(g, req.Target), req.SimSeed)
	if err != nil {
		return nil, err
	}
	resp := SweepResponse{
		Key:           key,
		ProfileCached: cached,
		Points:        len(results),
		Results:       make([]SweepRow, len(results)),
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i, res := range results {
		resp.Results[i] = SweepRow{Point: res.Point, Metrics: wireMetrics(res.Metrics)}
		if resp.Results[i].Metrics.EDP < resp.Results[resp.Best].Metrics.EDP {
			resp.Best = i
		}
	}
	return resp, nil
}

// WorkloadInfo describes one available benchmark.
type WorkloadInfo struct {
	Name         string `json:"name"`
	Blocks       int    `json:"blocks"`
	StaticInstrs int    `json:"static_instrs"`
	Phases       int    `json:"phases"`
}

func (s *Server) handleWorkloads(*http.Request) (any, error) {
	ws := core.Workloads()
	out := make([]WorkloadInfo, len(ws))
	for i, w := range ws {
		out[i] = WorkloadInfo{
			Name:         w.Name,
			Blocks:       len(w.Prog.Blocks),
			StaticInstrs: w.Prog.NumStaticInstrs(),
			Phases:       w.Pers.Phases,
		}
	}
	return out, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":      "ok",
		"workers":     s.pool.Stats().Workers,
		"queue_depth": s.pool.Stats().QueueDepth,
		"cached_sfgs": s.cache.Stats().Size,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.metrics.Snapshot(s.cache, s.pool))
}
