package service

import (
	"bufio"
	"bytes"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// The fleet metrics view: GET /v1/cluster/metrics scrapes every peer's
// existing Prometheus endpoint, merges the expositions family by
// family, and injects a node="<name>" label into every sample — one
// dashboard covers the whole ring without per-node scrape configs. A
// peer that cannot be scraped is reported down (statsimd_fleet_node_up
// 0) and simply contributes no samples; the view degrades, it never
// fails.

// promFamily is one parsed exposition family: its preamble and the raw
// sample lines that followed it, in input order. Histogram and summary
// child series (_bucket/_sum/_count) attach to their base family
// because they follow its # TYPE line sequentially.
type promFamily struct {
	name    string
	help    string // raw "# HELP ..." line
	typ     string // raw "# TYPE ..." line
	samples []string
}

// parsePromFamilies splits an exposition into families. Sample lines
// before any preamble (or malformed lines) attach to a synthetic
// unnamed family so nothing is silently dropped.
func parsePromFamilies(text []byte) []*promFamily {
	var fams []*promFamily
	byName := make(map[string]*promFamily)
	var cur *promFamily
	get := func(name string) *promFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &promFamily{name: name}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			name := rest
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				name = rest[:i]
			}
			cur = get(name)
			if strings.HasPrefix(line, "# HELP ") {
				cur.help = line
			} else {
				cur.typ = line
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments carry no series
		}
		if cur == nil || !strings.HasPrefix(line, cur.name) {
			// A new family's sample without (or past) a preamble, or a
			// histogram child: resolve its base name. Children like
			// foo_bucket still start with "foo", so the prefix check above
			// keeps them attached to the current family.
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			cur = get(name)
		}
		cur.samples = append(cur.samples, line)
	}
	return fams
}

// injectNodeLabel returns the sample line with node="name" spliced in
// as the first label. The first '{' in a sample line is always the
// label-block opener (metric names cannot contain one). A label named
// node already on the series (the point-cost families carry the
// executing node) is renamed exported_node, per the federation
// convention — a duplicated label name is invalid exposition.
func injectNodeLabel(line, node string) string {
	esc := promEscapeLabel(node)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + `node="` + esc + `",` + renameNodeLabel(line[i+1:])
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + `{node="` + esc + `"}` + line[i:]
	}
	return line
}

// renameNodeLabel rewrites a pre-existing node="..." label in a label
// block to exported_node="...". Label values escape '"' as '\"', so
// the bare sequence `node="` cannot occur inside a well-formed value;
// matching it at the block start or after a comma is exact.
func renameNodeLabel(labels string) string {
	if strings.HasPrefix(labels, `node="`) {
		return "exported_" + labels
	}
	if i := strings.Index(labels, `,node="`); i >= 0 {
		return labels[:i+1] + "exported_" + labels[i+1:]
	}
	return labels
}

// fleetSection is one node's scraped exposition.
type fleetSection struct {
	node string
	body []byte
	up   bool
}

// writeFleetMetrics merges the sections into one exposition: the up
// gauge first, then every family that appears anywhere — preamble once
// (first non-empty wins), samples grouped per node in section order
// with the node label injected. Section order (self first, peers
// sorted) and the per-family ordering make the merged scrape
// deterministic for a fixed fleet state.
func writeFleetMetrics(w *bytes.Buffer, sections []fleetSection) {
	w.WriteString("# HELP statsimd_fleet_node_up Whether the node's metrics endpoint answered this fleet scrape.\n")
	w.WriteString("# TYPE statsimd_fleet_node_up gauge\n")
	for _, s := range sections {
		v := "0"
		if s.up {
			v = "1"
		}
		w.WriteString(`statsimd_fleet_node_up{node="` + promEscapeLabel(s.node) + `"} ` + v + "\n")
	}

	type nodeFam struct {
		node string
		fam  *promFamily
	}
	var order []string
	merged := make(map[string][]nodeFam)
	for _, s := range sections {
		if !s.up {
			continue
		}
		for _, f := range parsePromFamilies(s.body) {
			if f.name == "" {
				continue
			}
			if _, ok := merged[f.name]; !ok {
				order = append(order, f.name)
			}
			merged[f.name] = append(merged[f.name], nodeFam{node: s.node, fam: f})
		}
	}
	for _, name := range order {
		parts := merged[name]
		for _, p := range parts {
			if p.fam.help != "" {
				w.WriteString(p.fam.help + "\n")
				break
			}
		}
		for _, p := range parts {
			if p.fam.typ != "" {
				w.WriteString(p.fam.typ + "\n")
				break
			}
		}
		for _, p := range parts {
			for _, line := range p.fam.samples {
				w.WriteString(injectNodeLabel(line, p.node) + "\n")
			}
		}
	}
}

// handleClusterMetrics serves the merged fleet exposition. Peers are
// scraped concurrently under the coordinator's RPC timeout; this node's
// own exposition renders locally, so a single-node "fleet" still works.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"this node is not clustered"}` + "\n"))
		return
	}
	status := s.cluster.Status()
	var self bytes.Buffer
	_ = s.renderPrometheus(&self)
	sections := make([]fleetSection, 1+len(status.Peers))
	sections[0] = fleetSection{node: status.Self, body: self.Bytes(), up: true}
	peers := make([]string, len(status.Peers))
	for i, p := range status.Peers {
		peers[i] = p.Name
	}
	sort.Strings(peers)
	var wg sync.WaitGroup
	for i, name := range peers {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			body, err := s.cluster.PeerMetrics(r.Context(), name)
			sections[1+i] = fleetSection{node: name, body: body, up: err == nil}
			if err != nil {
				s.log.Debug("fleet metrics scrape failed", "peer", name, "err", err.Error())
			}
		}(i, name)
	}
	wg.Wait()
	var out bytes.Buffer
	writeFleetMetrics(&out, sections)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(out.Bytes())
}
