package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/sfg"
)

// Fault-injection sites honoured by the durability layer. Production
// behaviour is unchanged when no fault.Injector is configured.
const (
	// SiteStoreWrite fails a durable profile write before it reaches
	// disk (the temp file is cleaned up; the cache still serves).
	SiteStoreWrite = "store.write"
	// SiteStoreCorrupt flips a payload byte of a durable profile write
	// after its checksum is computed, planting a corrupt file that the
	// next load must quarantine.
	SiteStoreCorrupt = "store.corrupt"
	// SiteJournalAppend fails a sweep-journal append; the point's
	// result is still returned, it is just recomputed on resume.
	SiteJournalAppend = "journal.append"
	// SiteProfileJob, SiteSimulateJob and SiteSweepJob run at the top
	// of the respective pool jobs: errors, panics and delays there
	// exercise retry, panic isolation and queue back-pressure.
	SiteProfileJob  = "job.profile"
	SiteSimulateJob = "job.simulate"
	SiteSweepJob    = "job.sweep"
)

// ErrCorruptProfile wraps every durable-store load failure caused by a
// damaged file. The damaged file has already been quarantined when this
// is returned; callers re-profile and overwrite.
var ErrCorruptProfile = errors.New("service: corrupt profile file")

// Durable store file envelope: magic, format version, the profile key
// (so a renamed or colliding file cannot impersonate another profile),
// and a CRC-32C over the gob payload so torn or bit-rotted writes are
// detected before sfg.Load ever parses them.
var (
	storeMagic = [4]byte{'S', 'F', 'G', 'S'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const (
	storeVersion    = 1
	quarantineDir   = "quarantine"
	sweepJournalDir = "sweeps"
	maxStoreKeyLen  = 1 << 12
)

// Store persists statistical flow graphs under one directory so a
// restarted daemon serves profiles it measured in a previous life
// instead of re-paying the dominant profiling cost. Writes are atomic
// (temp file + rename) and checksummed; a file that fails any envelope
// check on load is renamed into the quarantine/ subdirectory — never
// served, never silently deleted — and the caller re-profiles.
type Store struct {
	dir    string
	faults *fault.Injector

	loads        atomic.Uint64 // durable hits
	misses       atomic.Uint64 // no file on disk
	saves        atomic.Uint64
	saveFailures atomic.Uint64
	quarantined  atomic.Uint64
}

// NewStore opens (creating if needed) a durable profile store rooted at
// dir. faults may be nil.
func NewStore(dir string, faults *fault.Injector) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, quarantineDir), filepath.Join(dir, sweepJournalDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating store: %w", err)
		}
	}
	return &Store{dir: dir, faults: faults}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// JournalPath returns the on-disk path for a sweep journal with the
// given identity.
func (st *Store) JournalPath(id string) string {
	return filepath.Join(st.dir, sweepJournalDir, id+".journal")
}

// Path returns the file a key's profile lives at: a human-readable
// prefix for operators plus a hash of the exact key for uniqueness.
func (st *Store) Path(key ProfileKey) string {
	upd := "del"
	if key.Immediate {
		upd = "imm"
	}
	wl := make([]byte, 0, len(key.Workload))
	for i := 0; i < len(key.Workload) && i < 32; i++ {
		c := key.Workload[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '.' || c == '_' {
			wl = append(wl, c)
		} else {
			wl = append(wl, '_')
		}
	}
	h := fnv.New64a()
	keyJSON, _ := json.Marshal(key)
	h.Write(keyJSON)
	name := fmt.Sprintf("%s-k%d-n%d-s%d-%s-%016x.sfg", wl, key.K, key.N, key.Seed, upd, h.Sum64())
	return filepath.Join(st.dir, name)
}

// envelopeParts encodes a profile into the envelope's two variable
// sections: the marshalled key and the gob payload.
func envelopeParts(key ProfileKey, g *sfg.Graph) (keyJSON, body []byte, err error) {
	var payload bytes.Buffer
	if err := g.Save(&payload); err != nil {
		return nil, nil, fmt.Errorf("service: encoding profile: %w", err)
	}
	keyJSON, err = json.Marshal(key)
	if err != nil {
		return nil, nil, err
	}
	return keyJSON, payload.Bytes(), nil
}

// assembleEnvelope lays out the checksummed envelope: magic, version,
// key, payload length, CRC-32C, payload.
func assembleEnvelope(keyJSON, body []byte, sum uint32) []byte {
	var env bytes.Buffer
	env.Grow(len(keyJSON) + len(body) + 24)
	env.Write(storeMagic[:])
	binary.Write(&env, binary.LittleEndian, uint32(storeVersion))
	binary.Write(&env, binary.LittleEndian, uint32(len(keyJSON)))
	env.Write(keyJSON)
	binary.Write(&env, binary.LittleEndian, uint64(len(body)))
	binary.Write(&env, binary.LittleEndian, sum)
	env.Write(body)
	return env.Bytes()
}

// EncodeProfileEnvelope renders a profile in the durable store's
// checksummed envelope format. The same bytes serve as the on-disk file
// and as the peer-to-peer wire format of the cluster tier: any receiver
// validates magic, version, embedded key and CRC before parsing the
// payload, so a truncated or bit-flipped transfer is detected exactly
// like a torn disk write.
func EncodeProfileEnvelope(key ProfileKey, g *sfg.Graph) ([]byte, error) {
	keyJSON, body, err := envelopeParts(key, g)
	if err != nil {
		return nil, err
	}
	return assembleEnvelope(keyJSON, body, crc32.Checksum(body, castagnoli)), nil
}

// DecodeProfileEnvelope validates and parses an envelope. A non-nil
// want additionally requires the embedded key to match (how Load rejects
// renamed or impersonating files); with a nil want the embedded key is
// returned for the caller to judge (how a cluster peer accepts an
// offered replica).
func DecodeProfileEnvelope(data []byte, want *ProfileKey) (ProfileKey, *sfg.Graph, error) {
	return decodeProfileEnvelope(data, want)
}

// Save durably persists a profile: the envelope is assembled in memory,
// written to a temp file in the same directory, fsynced, and renamed
// over the final path, so a crash at any instant leaves either the old
// file or the new one — never a partial. Save failures are counted and
// returned but are non-fatal to serving: the in-memory cache still
// holds the graph.
func (st *Store) Save(key ProfileKey, g *sfg.Graph) (err error) {
	defer func() {
		if err != nil {
			st.saveFailures.Add(1)
		}
	}()

	keyJSON, body, err := envelopeParts(key, g)
	if err != nil {
		return err
	}
	sum := crc32.Checksum(body, castagnoli)
	if st.faults.Fire(SiteStoreCorrupt) != nil && len(body) > 0 {
		// Checksum already taken: the flipped byte lands on disk and
		// must be caught by the next Load.
		body = append([]byte(nil), body...)
		body[len(body)/2] ^= 0xFF
	}
	if ferr := st.faults.Fire(SiteStoreWrite); ferr != nil {
		return fmt.Errorf("service: store write: %w", ferr)
	}
	env := bytes.NewBuffer(assembleEnvelope(keyJSON, body, sum))

	f, err := os.CreateTemp(st.dir, ".tmp-profile-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := f.Write(env.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, st.Path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	st.saves.Add(1)
	return nil
}

// Load reads the key's durable profile. A missing file returns
// os.ErrNotExist; a damaged file is quarantined and reported as
// ErrCorruptProfile. The returned graph is validated but not frozen —
// the cache freezes before publication, same as a fresh profile.
func (st *Store) Load(key ProfileKey) (*sfg.Graph, error) {
	path := st.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			st.misses.Add(1)
		}
		return nil, err
	}
	_, g, err := decodeProfileEnvelope(data, &key)
	if err != nil {
		st.quarantine(path)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptProfile, filepath.Base(path), err)
	}
	st.loads.Add(1)
	return g, nil
}

func decodeProfileEnvelope(data []byte, want *ProfileKey) (ProfileKey, *sfg.Graph, error) {
	var key ProfileKey
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != storeMagic {
		return key, nil, errors.New("bad magic")
	}
	var version, keyLen uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil || version != storeVersion {
		return key, nil, fmt.Errorf("unsupported version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &keyLen); err != nil || keyLen > maxStoreKeyLen {
		return key, nil, errors.New("bad key length")
	}
	keyJSON := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyJSON); err != nil {
		return key, nil, errors.New("truncated key")
	}
	if want != nil {
		wantKey, _ := json.Marshal(*want)
		if !bytes.Equal(keyJSON, wantKey) {
			return key, nil, fmt.Errorf("key mismatch: envelope holds %s", keyJSON)
		}
	}
	if err := json.Unmarshal(keyJSON, &key); err != nil {
		return key, nil, fmt.Errorf("unparseable embedded key: %v", err)
	}
	var bodyLen uint64
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &bodyLen); err != nil {
		return key, nil, errors.New("truncated header")
	}
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return key, nil, errors.New("truncated header")
	}
	if bodyLen != uint64(r.Len()) {
		return key, nil, fmt.Errorf("payload length %d, envelope says %d", r.Len(), bodyLen)
	}
	body := data[len(data)-r.Len():]
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return key, nil, fmt.Errorf("checksum %08x, envelope says %08x", got, sum)
	}
	g, err := sfg.Load(bytes.NewReader(body))
	return key, g, err
}

// quarantine moves a damaged file aside so it is preserved for
// post-mortem but never served again. Best-effort: if the rename fails
// the file stays, and the next load attempt repeats the quarantine.
func (st *Store) quarantine(path string) {
	dest := filepath.Join(st.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dest); err == nil {
		st.quarantined.Add(1)
	}
}

// StoreStats is a point-in-time snapshot of durable-store activity.
type StoreStats struct {
	Dir          string `json:"dir"`
	Loads        uint64 `json:"loads"`
	Misses       uint64 `json:"misses"`
	Saves        uint64 `json:"saves"`
	SaveFailures uint64 `json:"save_failures"`
	Quarantined  uint64 `json:"quarantined"`
}

// Stats reports durable-store activity.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		Dir:          st.dir,
		Loads:        st.loads.Load(),
		Misses:       st.misses.Load(),
		Saves:        st.saves.Load(),
		SaveFailures: st.saveFailures.Load(),
		Quarantined:  st.quarantined.Load(),
	}
}
