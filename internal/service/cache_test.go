package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sfg"
)

// testGraph profiles a tiny real workload once per call.
func testGraph(t testing.TB) *sfg.Graph {
	t.Helper()
	w, err := core.LoadWorkload("vpr")
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Profile(cpu.DefaultConfig(), w.Stream(1, 0, 20_000), core.ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func key(name string) ProfileKey { return ProfileKey{Workload: name, K: 1, N: 20_000, Seed: 1} }

func TestCacheHitAndMiss(t *testing.T) {
	c := NewGraphCache(4)
	g := testGraph(t)
	calls := 0
	profile := func() (*sfg.Graph, error) { calls++; return g, nil }

	got, cached, err := c.GetOrProfile(key("a"), profile)
	if err != nil || cached || got != g {
		t.Fatalf("first get: g=%p cached=%v err=%v", got, cached, err)
	}
	got, cached, err = c.GetOrProfile(key("a"), profile)
	if err != nil || !cached || got != g {
		t.Fatalf("second get: cached=%v err=%v", cached, err)
	}
	if calls != 1 {
		t.Errorf("profiled %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate %v", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewGraphCache(2)
	g := testGraph(t)
	var calls atomic.Int64
	profile := func() (*sfg.Graph, error) { calls.Add(1); return g, nil }

	c.GetOrProfile(key("a"), profile)
	c.GetOrProfile(key("b"), profile)
	c.GetOrProfile(key("a"), profile) // refresh a: b is now LRU
	c.GetOrProfile(key("c"), profile) // evicts b
	if keys := c.Keys(); len(keys) != 2 || keys[0] != key("c") || keys[1] != key("a") {
		t.Errorf("resident keys %v", keys)
	}
	if _, cached, _ := c.GetOrProfile(key("b"), profile); cached {
		t.Error("evicted entry served from cache")
	}
	if got := c.Stats().Evictions; got < 1 {
		t.Errorf("evictions %d", got)
	}
	if calls.Load() != 4 { // a, b, c, and b again
		t.Errorf("profiled %d times", calls.Load())
	}
}

func TestCacheCoalescesConcurrentRequests(t *testing.T) {
	c := NewGraphCache(4)
	g := testGraph(t)
	const waiters = 8
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	profile := func() (*sfg.Graph, error) {
		calls.Add(1)
		close(started)
		<-release
		return g, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, cached, err := c.GetOrProfile(key("a"), profile); err != nil || cached {
			t.Errorf("leader: cached=%v err=%v", cached, err)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, cached, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) {
				t.Error("coalesced request re-profiled")
				return nil, nil
			})
			if err != nil || !cached || got != g {
				t.Errorf("waiter: g=%p cached=%v err=%v", got, cached, err)
			}
		}()
	}
	// Let every waiter reach the in-flight call before releasing it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < waiters && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("profiled %d times for %d concurrent requests", calls.Load(), waiters+1)
	}
	if st := c.Stats(); st.Coalesced != waiters || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewGraphCache(2)
	want := errors.New("profile failed")
	if _, _, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) { return nil, want }); !errors.Is(err, want) {
		t.Fatalf("error not propagated: %v", err)
	}
	g := testGraph(t)
	got, cached, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) { return g, nil })
	if err != nil || cached || got != g {
		t.Errorf("failed profile was cached: cached=%v err=%v", cached, err)
	}
}

// TestCacheFailedProfileNotServedToWaiters pins the singleflight error
// path: when the in-flight profiling run fails, every coalesced waiter
// gets the error (not a nil graph marked "cached"), nothing enters the
// LRU, and the next request re-profiles from scratch.
func TestCacheFailedProfileNotServedToWaiters(t *testing.T) {
	c := NewGraphCache(4)
	want := errors.New("profile failed")
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) {
			calls.Add(1)
			close(started)
			<-release
			return nil, want
		})
		if !errors.Is(err, want) {
			t.Errorf("leader error: %v", err)
		}
	}()
	<-started
	const waiters = 4
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, _, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) {
				t.Error("waiter ran its own profile while one was in flight")
				return nil, nil
			})
			if !errors.Is(err, want) || g != nil {
				t.Errorf("waiter got g=%p err=%v, want the leader's error", g, err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < waiters && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := c.Stats().Size; got != 0 {
		t.Fatalf("failed profile inserted into the LRU: size=%d", got)
	}
	g := testGraph(t)
	got, cached, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) { calls.Add(1); return g, nil })
	if err != nil || cached || got != g {
		t.Errorf("recovery profile: cached=%v err=%v", cached, err)
	}
	if calls.Load() != 2 {
		t.Errorf("profiled %d times, want 2 (failure + recovery)", calls.Load())
	}
}

// TestCacheNilGraphBecomesError: a profiler bug returning (nil, nil)
// must surface as an error, never as a cached nil graph.
func TestCacheNilGraphBecomesError(t *testing.T) {
	c := NewGraphCache(2)
	g, cached, err := c.GetOrProfile(key("a"), func() (*sfg.Graph, error) { return nil, nil })
	if err == nil || g != nil || cached {
		t.Fatalf("nil graph accepted: g=%p cached=%v err=%v", g, cached, err)
	}
	if c.Stats().Size != 0 {
		t.Error("nil graph entered the LRU")
	}
}
