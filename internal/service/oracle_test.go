package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

var oracleTestSpec = ProfileSpec{Workload: "gzip", K: 1, N: 60_000, Seed: 1}

// errNoSimAllowed is installed at the sweep/simulate job fault sites to
// prove a request was answered without running a single pipeline
// simulation: any simulation attempt fails the request outright.
var errNoSimAllowed = errors.New("pipeline simulation ran, but the oracle should have served this")

// TestSweepRepeatServedEntirelyFromStore is the tentpole's core claim:
// an exact-fingerprint repeat sweep is answered with ZERO pipeline
// simulations. The second sweep reorders the grid so its checkpoint
// journal has a different fingerprint (journal resume cannot serve it)
// and runs with an always-fail fault at the sweep job site, so any
// point that reached the executors would fail the request.
func TestSweepRepeatServedEntirelyFromStore(t *testing.T) {
	in := fault.New(1)
	manifestDir := t.TempDir()
	svc, ts := newTestServerOpts(t, Options{
		Workers: 4, CacheSize: 4, JobTimeout: time.Minute,
		CacheDir: t.TempDir(), ManifestDir: manifestDir, Faults: in,
	})

	points := QuickGrid()
	req := SweepRequest{Profile: oracleTestSpec, Points: points, Target: 10_000}
	var first SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep", req, &first); code != 200 {
		t.Fatalf("first sweep: %d %s", code, body)
	}
	if first.FromStore != 0 || first.Resumed != 0 {
		t.Fatalf("first sweep served before anything was stored: %+v", first)
	}

	// Repeat with the points reversed and simulation forbidden. Also
	// watch the SSE progress feed: every point event must carry its
	// store provenance.
	in.Set(SiteSweepJob, fault.Rule{Prob: 1, Err: errNoSimAllowed})
	defer in.Clear(SiteSweepJob)
	reversed := make([]SweepPoint, len(points))
	for i, p := range points {
		reversed[len(points)-1-i] = p
	}

	sseResp, err := http.Get(ts.URL + "/v1/sweep/progress?id=store-repeat")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	events := make(chan ProgressEvent, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev ProgressEvent
				if json.Unmarshal([]byte(data), &ev) == nil {
					events <- ev
				}
			}
		}
	}()

	buf, _ := json.Marshal(SweepRequest{Profile: oracleTestSpec, Points: reversed, Target: 10_000})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(string(buf)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", "store-repeat")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var second SweepResponse
	raw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("repeat sweep: %d %s", hresp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}

	if second.FromStore != len(points) || second.Resumed != 0 || second.FromSurrogate != 0 {
		t.Fatalf("repeat sweep provenance: from_store=%d resumed=%d from_surrogate=%d, want %d/0/0",
			second.FromStore, second.Resumed, second.FromSurrogate, len(points))
	}
	for i, row := range second.Results {
		if row.Served != ServedFromStore || row.Estimated {
			t.Fatalf("row %d: served=%q estimated=%v, want store ground truth", i, row.Served, row.Estimated)
		}
		// Store hits are byte-identical to the first sweep's simulations.
		if orig := first.Results[len(points)-1-i]; row.Metrics != orig.Metrics {
			t.Fatalf("row %d metrics drifted across the store: %+v != %+v", i, row.Metrics, orig.Metrics)
		}
	}

	// SSE: start, one point event per store hit (with provenance), done.
	var got []ProgressEvent
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("SSE stream closed early")
			}
			got = append(got, ev)
			if ev.Type == "done" || ev.Type == "error" {
				goto doneReading
			}
		case <-deadline:
			t.Fatal("SSE stream did not finish")
		}
	}
doneReading:
	if len(got) != len(points)+2 {
		t.Fatalf("SSE events = %d, want %d", len(got), len(points)+2)
	}
	for _, ev := range got[1 : len(got)-1] {
		if ev.Type != "point" || ev.Served != ServedFromStore || ev.Estimated {
			t.Fatalf("point event lacks store provenance: %+v", ev)
		}
	}
	last := got[len(got)-1]
	if last.Type != "done" || last.FromStore != len(points) || last.FromSurrogate != 0 {
		t.Fatalf("done event = %+v", last)
	}

	// The run manifest records the provenance, not flagged estimated.
	var manifested bool
	files, _ := filepath.Glob(filepath.Join(manifestDir, "v1-sweep-*.json"))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var m obs.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		if m.Oracle != nil && m.Oracle.StoreHits == len(points) {
			if m.Oracle.Estimated || m.Oracle.SurrogateHits != 0 {
				t.Fatalf("store-only manifest flagged estimated: %+v", m.Oracle)
			}
			manifested = true
		}
	}
	if !manifested {
		t.Errorf("no sweep manifest carries the oracle provenance (%d manifests)", len(files))
	}

	// The flight recorder carries the hit counts on the request event.
	var debug DebugRequestsResponse
	if code := getJSON(t, ts.URL+"/v1/debug/requests", &debug); code != 200 {
		t.Fatalf("debug requests: %d", code)
	}
	var flighted bool
	for _, ev := range debug.Events {
		if ev.Endpoint == "/v1/sweep" && ev.StoreHits == len(points) {
			flighted = true
		}
	}
	if !flighted {
		t.Error("no flight-recorder event carries the store hit count")
	}

	// Serving surfaces agree: oracle status and both /metrics formats.
	var status OracleStatus
	if code := getJSON(t, ts.URL+"/v1/oracle/status", &status); code != 200 {
		t.Fatalf("oracle status: %d", code)
	}
	if !status.StoreEnabled || status.SurrogateEnabled {
		t.Fatalf("status enablement: %+v", status)
	}
	if status.StoreServed != uint64(len(points)) || status.Simulated != uint64(len(points)) {
		t.Fatalf("status counters: %+v", status)
	}
	if status.Store == nil || status.Store.Records != len(points) {
		t.Fatalf("status store block: %+v", status.Store)
	}
	if status.Model.Samples != len(points) {
		t.Fatalf("model trained from %d samples, want %d", status.Model.Samples, len(points))
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Oracle == nil || snap.Oracle.StoreServed != uint64(len(points)) {
		t.Fatalf("metrics snapshot oracle block: %+v", snap.Oracle)
	}
	if snap.Robustness.SweepPointsFromStore != uint64(len(points)) ||
		snap.Robustness.SweepPointsSimulated != uint64(len(points)) {
		t.Fatalf("sweep point counters: %+v", snap.Robustness)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`statsimd_sweep_points_total{source="store"} 9`,
		`statsimd_sweep_points_total{source="simulated"} 9`,
		`statsimd_oracle_points_total{source="store"} 9`,
		`statsimd_oracle_store_lookups_total{outcome="hit"}`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// svc still holds the store open; nothing more to assert through it,
	// but the handle proves the oracle is attached.
	if svc.oracle == nil || !svc.oracle.enabled() {
		t.Fatal("oracle not attached to the server")
	}
}

// TestSimulateServedFromStoreAcrossRestart: a repeated /v1/simulate is
// answered from the store — including by a NEW daemon process over the
// same cache dir, which must warm-start both tiers from the log.
func TestSimulateServedFromStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, CacheSize: 4, JobTimeout: time.Minute, CacheDir: dir}

	svc1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	req := SimulateRequest{Profile: oracleTestSpec, Target: 10_000}
	var cold, warm SimulateResponse
	if code, body := postJSON(t, ts1.URL+"/v1/simulate", req, &cold); code != 200 {
		t.Fatalf("cold simulate: %d %s", code, body)
	}
	if cold.Served != "" {
		t.Fatalf("cold simulate served=%q, want fresh simulation", cold.Served)
	}
	postJSON(t, ts1.URL+"/v1/simulate", req, &warm)
	if warm.Served != ServedFromStore || warm.Metrics != cold.Metrics {
		t.Fatalf("warm simulate: served=%q metrics equal=%v", warm.Served, warm.Metrics == cold.Metrics)
	}
	ts1.Close()
	svc1.Close(context.Background())

	// Second life: the store replays from disk, and with simulation
	// fault-blocked the answer can only have come from it.
	in := fault.New(1)
	in.Set(SiteSimulateJob, fault.Rule{Prob: 1, Err: errNoSimAllowed})
	opts.Faults = in
	svc2, ts2 := newTestServerOpts(t, opts)
	var revived SimulateResponse
	if code, body := postJSON(t, ts2.URL+"/v1/simulate", req, &revived); code != 200 {
		t.Fatalf("revived simulate: %d %s", code, body)
	}
	if revived.Served != ServedFromStore || revived.Metrics != cold.Metrics {
		t.Fatalf("revived simulate: served=%q, metrics equal=%v", revived.Served, revived.Metrics == cold.Metrics)
	}
	st := svc2.oracle.status()
	if st.Store == nil || st.Store.Recovered == 0 || st.Model.Samples == 0 {
		t.Fatalf("second life did not warm-start from the log: %+v", st)
	}
}

// TestOracleDisabledWireUnchanged is the golden guarantee: with no
// cache dir and no surrogate gate (the defaults), none of the oracle's
// wire fields appear anywhere — responses are byte-compatible with a
// daemon that predates the oracle.
func TestOracleDisabledWireUnchanged(t *testing.T) {
	_, ts := newTestServer(t)

	_, simBody := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Profile: oracleTestSpec, Target: 10_000}, nil)
	_, sweepBody := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Grid: "quick", Target: 10_000}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, field := range []string{`"served"`, `"estimated"`, `"uncertainty"`, `"from_store"`, `"from_surrogate"`, `"oracle"`} {
		for name, body := range map[string]string{
			"simulate": simBody, "sweep": sweepBody, "metrics": string(metricsBody),
		} {
			if strings.Contains(body, field) {
				t.Errorf("%s response leaks %s with the oracle disabled", name, field)
			}
		}
	}

	// The status endpoint still answers — reporting both tiers off.
	var status OracleStatus
	if code := getJSON(t, ts.URL+"/v1/oracle/status", &status); code != 200 {
		t.Fatalf("oracle status: %d", code)
	}
	if status.StoreEnabled || status.SurrogateEnabled || status.StoreServed != 0 {
		t.Fatalf("disabled status: %+v", status)
	}
}

// TestSurrogateDefaultOff: with a store but no gate, novel points are
// never answered with predictions — the estimate path is strictly
// opt-in.
func TestSurrogateDefaultOff(t *testing.T) {
	_, ts := newTestServerOpts(t, Options{
		Workers: 4, CacheSize: 4, JobTimeout: time.Minute, CacheDir: t.TempDir(),
	})
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Grid: "quick", Target: 10_000}, nil); code != 200 {
		t.Fatalf("training sweep: %d %s", code, body)
	}
	novel := []SweepPoint{{RUU: 24, LSQ: 12, Decode: 4, Issue: 4, Commit: 4}}
	var resp SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: novel, Target: 10_000}, &resp); code != 200 {
		t.Fatalf("novel sweep: %d %s", code, body)
	}
	if resp.FromSurrogate != 0 || resp.Results[0].Estimated || resp.Results[0].Served != "" {
		t.Fatalf("novel point served by surrogate with the gate off: %+v", resp.Results[0])
	}
}

// TestSweepSurrogateServes: with the gate opted in, novel design points
// inside the trained cloud are answered by the surrogate — flagged
// estimated, carrying their uncertainty, never journaled as truth —
// and the accuracy of every served estimate is bounded at the gate.
func TestSweepSurrogateServes(t *testing.T) {
	// The gate bounds what the k-NN neighbourhood can hide: gzip's IPC
	// roughly doubles across each RUU octave, so even bracketing
	// neighbours honestly disagree by tens of percent — a realistic
	// opt-in gate for this corpus sits well above the ~0.05 a dense
	// sweep archive would support.
	const gate = 0.75
	in := fault.New(1)
	_, ts := newTestServerOpts(t, Options{
		Workers: 4, CacheSize: 4, JobTimeout: time.Minute,
		CacheDir: t.TempDir(), SurrogateMaxCI: gate, Faults: in,
	})

	// Train: a dense grid over the design space.
	var training []SweepPoint
	for _, ruu := range []int{16, 24, 32, 48, 64, 96, 128} {
		for _, w := range []int{2, 4, 8} {
			training = append(training, SweepPoint{RUU: ruu, LSQ: ruu / 2, Decode: w, Issue: w, Commit: w})
		}
	}
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: training, Target: 10_000}, nil); code != 200 {
		t.Fatalf("training sweep: %d %s", code, body)
	}

	// Query interior points the store has never seen. Simulation is
	// forbidden: only the surrogate can answer.
	novel := []SweepPoint{
		{RUU: 20, LSQ: 10, Decode: 4, Issue: 4, Commit: 4},
		{RUU: 40, LSQ: 20, Decode: 4, Issue: 4, Commit: 4},
		{RUU: 80, LSQ: 40, Decode: 4, Issue: 4, Commit: 4},
	}
	in.Set(SiteSweepJob, fault.Rule{Prob: 1, Err: errNoSimAllowed})
	var est SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: novel, Target: 10_000}, &est); code != 200 {
		t.Fatalf("surrogate sweep: %d %s", code, body)
	}
	in.Clear(SiteSweepJob)
	if est.FromSurrogate != len(novel) || est.FromStore != 0 {
		t.Fatalf("surrogate sweep provenance: %+v", est)
	}
	for i, row := range est.Results {
		if row.Served != ServedFromSurrogate || !row.Estimated {
			t.Fatalf("row %d not flagged as an estimate: %+v", i, row)
		}
		if row.Uncertainty <= 0 || row.Uncertainty > gate {
			t.Fatalf("row %d uncertainty %v outside (0, %v]", i, row.Uncertainty, gate)
		}
		if row.Metrics.Cycles != 0 || row.Metrics.Instructions != 0 {
			t.Fatalf("row %d estimate fabricates trace counts: %+v", i, row.Metrics)
		}
		if row.Metrics.IPC <= 0 || row.Metrics.EDP <= 0 {
			t.Fatalf("row %d degenerate estimate: %+v", i, row.Metrics)
		}
	}

	// Estimates must not have been journaled as ground truth: the same
	// request again (same journal fingerprint this time) must still
	// resume nothing and be served by the surrogate again.
	var again SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: novel, Target: 10_000}, &again); code != 200 {
		t.Fatalf("repeat surrogate sweep: %d %s", code, body)
	}
	if again.Resumed != 0 || again.FromSurrogate != len(novel) {
		t.Fatalf("estimates leaked into the journal: resumed=%d from_surrogate=%d", again.Resumed, again.FromSurrogate)
	}

	// Accuracy at the gate: simulate the same novel points on an
	// oracle-free server; every served estimate's relative IPC error
	// must be within its served uncertainty bound.
	_, plain := newTestServer(t)
	var truth SweepResponse
	if code, body := postJSON(t, plain.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: novel, Target: 10_000}, &truth); code != 200 {
		t.Fatalf("truth sweep: %d %s", code, body)
	}
	for i := range novel {
		want := truth.Results[i].Metrics.IPC
		got := est.Results[i].Metrics.IPC
		rel := math.Abs(got-want) / want
		t.Logf("point %v: est IPC %.4f, true IPC %.4f, rel err %.4f, uncertainty %.4f",
			novel[i], got, want, rel, est.Results[i].Uncertainty)
		if rel > gate {
			t.Errorf("point %d: relative IPC error %.4f exceeds the %.2f gate", i, rel, gate)
		}
	}
}

// TestSurrogateSuppressedOnFanout: a cluster coordinator journals peer
// results as ground truth, so a fanout-marked sub-sweep must never be
// answered with estimates — even with the gate wide open.
func TestSurrogateSuppressedOnFanout(t *testing.T) {
	_, ts := newTestServerOpts(t, Options{
		Workers: 4, CacheSize: 4, JobTimeout: time.Minute,
		CacheDir: t.TempDir(), SurrogateMaxCI: 100,
	})
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Grid: "quick", Target: 10_000}, nil); code != 200 {
		t.Fatalf("training sweep: %d %s", code, body)
	}
	novel := []SweepPoint{{RUU: 24, LSQ: 12, Decode: 4, Issue: 4, Commit: 4}}
	buf, _ := json.Marshal(SweepRequest{Profile: oracleTestSpec, Points: novel, Target: 10_000, RawMetrics: true})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(string(buf)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ClusterFanoutHeader, "1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("fanout sweep: %d %s", hresp.StatusCode, raw)
	}
	var resp SweepResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FromSurrogate != 0 || resp.Results[0].Estimated {
		t.Fatalf("fanout sub-sweep answered with an estimate: %+v", resp.Results[0])
	}
	if resp.Results[0].Raw == nil || resp.Results[0].Raw.IPC() <= 0 {
		t.Fatal("fanout sub-sweep missing real raw metrics")
	}
}

// TestClusteredSweepStoreHitsSkipPeers: on a clustered coordinator,
// store hits are peeled off before the cluster sees the sweep — a fully
// stored sweep never fans out at all.
func TestClusteredSweepStoreHitsSkipPeers(t *testing.T) {
	fake := &fakeCluster{}
	svc, ts := newTestServerOpts(t, Options{
		Workers: 4, CacheSize: 4, JobTimeout: time.Minute, CacheDir: t.TempDir(),
	})
	svc.SetCluster(fake)

	req := SweepRequest{Profile: oracleTestSpec, Grid: "quick", Target: 10_000}
	if code, body := postJSON(t, ts.URL+"/v1/sweep", req, nil); code != 200 {
		t.Fatalf("first clustered sweep: %d %s", code, body)
	}
	if fake.sweepCalls.Load() != 1 {
		t.Fatalf("first sweep cluster calls = %d, want 1", fake.sweepCalls.Load())
	}

	// Reorder so the journal cannot serve it; the store must, before
	// any fan-out.
	points := QuickGrid()
	for i, j := 0, len(points)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
	}
	var resp SweepResponse
	if code, body := postJSON(t, ts.URL+"/v1/sweep",
		SweepRequest{Profile: oracleTestSpec, Points: points, Target: 10_000}, &resp); code != 200 {
		t.Fatalf("repeat clustered sweep: %d %s", code, body)
	}
	if fake.sweepCalls.Load() != 1 {
		t.Errorf("fully stored sweep still fanned out (cluster calls = %d)", fake.sweepCalls.Load())
	}
	if resp.FromStore != len(points) {
		t.Errorf("from_store = %d, want %d", resp.FromStore, len(points))
	}
}
