package service

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the binary's provenance as /healthz and the Prometheus
// build_info family report it: which toolchain built the daemon, from
// which VCS revision, and whether the working tree was dirty — the
// paper's evaluation discipline (every reported number traceable to a
// configuration) applied to the server itself.
type BuildInfo struct {
	// Version is the main module's version as the toolchain stamped it
	// ("(devel)" for source builds, a module version for installed
	// binaries).
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// readBuildInfo assembles the binary's provenance from
// runtime/debug.ReadBuildInfo. Binaries built without VCS stamping
// (tests, `go run` from a tarball) report only the Go version.
func readBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}
