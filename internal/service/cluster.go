package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sfg"
)

// The cluster tier lifts the daemon's two amortisation seams — the
// content-keyed profile cache and the grid-order sweep engine — across
// nodes. The service package defines the seam (this interface and the
// wire types); internal/cluster implements it; cmd/statsimd wires the
// two together. Keeping the dependency one-directional (cluster imports
// service, never the reverse) lets every handler below stay testable
// with a fake.
//
// Correctness rests on the same determinism argument as the local
// paths: a profile is a pure function of its ProfileKey, and a sweep
// point's metrics are a pure function of (point, graph, reduction,
// seed). A graph fetched from a peer is therefore bit-identical to one
// profiled locally, and a point computed on any node — before or after
// a failover — serialises byte-identically to the single-node result.
// The cluster's job is only to survive the failures in between.

// ErrNoRemoteGraph reports that no replica peer holds the requested
// profile (distinct from peers being unreachable): the caller profiles
// locally and offers the result back to the key's owners.
var ErrNoRemoteGraph = errors.New("service: no cluster peer holds the profile")

// Cluster is the daemon's view of its peer group. Implementations must
// be safe for concurrent use; every method observes ctx for
// cancellation. nil means single-node.
type Cluster interface {
	// FetchGraph retrieves key's graph from its replica peers (hedged
	// across replicas, retried per RPC). It returns the serving peer's
	// name, or ErrNoRemoteGraph when no reachable replica holds it.
	FetchGraph(ctx context.Context, key ProfileKey) (*sfg.Graph, string, error)
	// OfferGraph replicates a freshly profiled graph to the key's owner
	// peers, best-effort and asynchronously — a failed offer costs a
	// future re-profile somewhere, never this request.
	OfferGraph(ctx context.Context, key ProfileKey, g *sfg.Graph)
	// SweepPending computes job.Pending across the healthy peers plus
	// this node, calling job.Report once per completed point. It returns
	// only on fatal errors (cancellation, local compute failure); losing
	// a peer triggers re-partitioning, not failure.
	SweepPending(ctx context.Context, job ClusterSweepJob) error
	// Status describes ring membership and per-peer health.
	Status() ClusterStatus
	// Stats snapshots the coordinator-side counters.
	Stats() ClusterStats
	// PeerMetrics scrapes one peer's Prometheus exposition, for the
	// coordinator's merged fleet view at GET /v1/cluster/metrics.
	PeerMetrics(ctx context.Context, peer string) ([]byte, error)
}

// ClusterSweepJob is one partitioned sweep as handed to the
// coordinator. Points is the full grid (so indices keep their global
// meaning for journaling); Pending are the indices still to compute.
type ClusterSweepJob struct {
	Profile ProfileSpec
	Config  ConfigSpec
	Points  []SweepPoint
	Pending []int
	Target  uint64
	SimSeed uint64

	// Report is called once per completed pending point, concurrently
	// from dispatch goroutines; index values are disjoint across calls.
	Report func(index int, m core.Metrics)
	// ReportCost, when non-nil, records one completed point's cost
	// ledger entry (tier, executing node, cohort, wall time). Same
	// concurrency contract as Report.
	ReportCost func(index int, c PointCost)
	// Local computes the given indices on this node's own pool, calling
	// Report per point — the coordinator's executor of last resort, so a
	// sweep completes even with every remote peer dead.
	Local func(ctx context.Context, indices []int) error
	// Failover, when non-nil, is told each time a peer was lost and its
	// unfinished points re-partitioned.
	Failover func(peer string, points int)
}

// PeerStatus is one peer's health as the coordinator sees it. Build
// carries the peer's self-reported provenance from its last successful
// health probe, so /v1/cluster/status shows at a glance which revision
// every node runs.
type PeerStatus struct {
	Name                string     `json:"name"`
	Healthy             bool       `json:"healthy"`
	ConsecutiveFailures int        `json:"consecutive_failures,omitempty"`
	LastProbe           time.Time  `json:"last_probe,omitempty"`
	LastError           string     `json:"last_error,omitempty"`
	Ejections           uint64     `json:"ejections,omitempty"`
	Build               *BuildInfo `json:"build,omitempty"`
}

// ClusterStatus is the GET /v1/cluster/status body: ring membership and
// peer health.
type ClusterStatus struct {
	Self        string       `json:"self"`
	Replication int          `json:"replication"`
	Peers       []PeerStatus `json:"peers"`
}

// ClusterStats counts the coordinator side of cluster activity; the
// serving side (peer RPCs answered) is counted by the Server itself.
type ClusterStats struct {
	PeersTotal   int `json:"peers_total"`
	PeersHealthy int `json:"peers_healthy"`

	Probes       uint64 `json:"probes"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`

	GraphFetchHits   uint64 `json:"graph_fetch_hits"`
	GraphFetchMisses uint64 `json:"graph_fetch_misses"`
	GraphFetchErrors uint64 `json:"graph_fetch_errors"`
	HedgedFetches    uint64 `json:"hedged_fetches"`
	HedgeWins        uint64 `json:"hedge_wins"`

	OffersSent    uint64 `json:"offers_sent"`
	OfferFailures uint64 `json:"offer_failures"`

	RemotePoints        uint64 `json:"remote_points"`
	LocalPoints         uint64 `json:"local_points"`
	Failovers           uint64 `json:"failovers"`
	RepartitionedPoints uint64 `json:"repartitioned_points"`
	RPCRetries          uint64 `json:"rpc_retries"`
}

// clusterServedStats counts the Server's answering side of peer RPCs.
type clusterServedStats struct {
	graphsServed   atomic.Uint64
	graphsMissing  atomic.Uint64
	offersStored   atomic.Uint64
	offersRejected atomic.Uint64
}

// ClusterServedStats is the wire snapshot of clusterServedStats.
type ClusterServedStats struct {
	GraphsServed   uint64 `json:"graphs_served"`
	GraphsMissing  uint64 `json:"graphs_missing"`
	OffersStored   uint64 `json:"offers_stored"`
	OffersRejected uint64 `json:"offers_rejected"`
}

// ClusterMetrics joins both sides of the cluster counters for the
// /metrics views: the coordinator's (RPCs issued) and the server's
// (RPCs answered).
type ClusterMetrics struct {
	ClusterStats
	Served ClusterServedStats `json:"served"`
}

func (c *clusterServedStats) snapshot() ClusterServedStats {
	return ClusterServedStats{
		GraphsServed:   c.graphsServed.Load(),
		GraphsMissing:  c.graphsMissing.Load(),
		OffersStored:   c.offersStored.Load(),
		OffersRejected: c.offersRejected.Load(),
	}
}

// SetCluster attaches the peer group. It must be called before the
// handler starts serving (cmd/statsimd does it between service.New and
// net.Listen); the fields are not synchronised. The node's advertised
// name stamps every span and ledger entry from here on, so a merged
// trace attributes work to cluster names, not "local".
func (s *Server) SetCluster(c Cluster) {
	s.cluster = c
	if c != nil {
		if self := c.Status().Self; self != "" {
			s.node = self
		}
	}
}

// Cluster returns the attached peer group (nil single-node).
func (s *Server) Cluster() Cluster { return s.cluster }

// Flight exposes the flight recorder so the coordinator can record peer
// ejection and failover events into the same ring the request events
// land in — /v1/debug/requests then explains rerouted requests.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// simulatePoint is the one deterministic kernel every sweep execution
// path ends in for a singleton group: the local engine and the
// cluster's local executor both reach it through runPendingBatched
// (larger groups take core.SimulateBatch, which is byte-identical per
// point by the lockstep equivalence argument).
func simulatePoint(base cpu.Config, g *sfg.Graph, points []SweepPoint, i int, r, seed uint64) (core.Metrics, error) {
	return core.StatSim(points[i].Apply(base), g, r, seed)
}

// sweepClustered fans the pending indices of a sweep out across the
// cluster, journaling and publishing progress through report exactly
// like the local path. The local executor handed to the coordinator
// runs indices through this node's own pool with the same lockstep
// batching, fault site and ctx discipline as SweepWithJournal, so a
// sweep that degrades all the way back to local-only is
// indistinguishable from an unclustered one.
func (s *Server) sweepClustered(ctx context.Context, spec ProfileSpec, cfgSpec ConfigSpec, base cpu.Config, g *sfg.Graph, points []SweepPoint, pending []int, red, simSeed uint64, report func(int, core.Metrics), ledger *costLedger) error {
	job := ClusterSweepJob{
		Profile: spec,
		Config:  cfgSpec,
		Points:  points,
		Pending: pending,
		Target:  0, // set below: target is recovered from red via the graph
		SimSeed: simSeed,
		Report:  report,
		ReportCost: func(index int, c PointCost) {
			ledger.record(index, c.Tier, c.Node, c.Cohort, c.WallS, c.Estimated)
		},
		Local: func(ctx context.Context, indices []int) error {
			return runPendingBatched(ctx, s.pool, s.faults, base, g, points, indices, red, simSeed, report,
				func(index, cohort int, wallS float64) {
					ledger.record(index, TierSimulated, "", cohort, wallS, false)
				})
		},
		Failover: func(peer string, n int) {
			s.log.Warn("sweep failover", "trace_id", obs.TraceIDFromContext(ctx),
				"peer", peer, "repartitioned_points", n)
			if ri := requestInfo(ctx); ri != nil {
				ri.failovers.Add(1)
			}
		},
	}
	// Remote peers re-derive the reduction factor from (graph, target);
	// sending the target the caller asked for keeps the derivation
	// identical on every node because the graph is bit-identical.
	job.Target = targetForReduction(g, red)
	return s.cluster.SweepPending(ctx, job)
}

// targetForReduction inverts core.ReductionFor: the synthetic-trace
// target length that makes a remote node re-derive exactly the given
// reduction factor. The inversion is exact by the divisor-block
// identity — for any r in the image of t ↦ floor(T/t),
// floor(T / floor(T/r)) == r — so a sub-request shaped exactly like a
// client's sweep (target on the wire, reduction re-derived) still
// computes byte-identical metrics.
func targetForReduction(g *sfg.Graph, red uint64) uint64 {
	if red == 0 {
		red = 1
	}
	return g.TotalInstructions / red
}
