package service

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// latencyBuckets bounds the log2-microsecond latency histograms: bucket
// 64 covers everything past ~2.6 hours, far beyond any job timeout.
const latencyBuckets = 64

// LatencyHist is a concurrency-safe latency histogram built on
// stats.Histogram. Observations are bucketed by log2 of the latency in
// microseconds, so the histogram stays tiny while spanning nanoseconds
// to hours; quantiles come back as bucket upper bounds (within 2x of
// the true value — plenty for operational visibility).
type LatencyHist struct {
	mu    sync.Mutex
	h     *stats.Histogram
	sumUS uint64
	maxUS uint64
	errs  uint64
}

// NewLatencyHist returns an empty latency histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{h: stats.NewHistogram(latencyBuckets)}
}

// latencyBucket maps a microsecond latency to its histogram bucket
// (>= 1, as stats.Histogram requires).
func latencyBucket(us uint64) int { return bits.Len64(us) + 1 }

// bucketUpperUS is the largest microsecond latency bucket b holds.
func bucketUpperUS(b int) uint64 {
	if b <= 1 {
		return 0
	}
	return 1<<uint(b-1) - 1
}

// Observe records one request of the given duration; failed requests
// are additionally tallied as errors.
func (l *LatencyHist) Observe(d time.Duration, failed bool) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	l.mu.Lock()
	l.h.Add(latencyBucket(us))
	l.sumUS += us
	if us > l.maxUS {
		l.maxUS = us
	}
	if failed {
		l.errs++
	}
	l.mu.Unlock()
}

// latencyExport is the raw content of a LatencyHist: per-bucket counts
// (indexed by log2-microsecond bucket, 1..latencyBuckets), the total
// observation count, summed latency and error tally — the material the
// Prometheus text exposition renders cumulative _bucket series from.
type latencyExport struct {
	counts [latencyBuckets + 1]uint64
	total  uint64
	sumUS  uint64
	errs   uint64
}

// export snapshots the histogram's raw buckets.
func (l *LatencyHist) export() latencyExport {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := latencyExport{total: l.h.Total(), sumUS: l.sumUS, errs: l.errs}
	for b := 1; b <= latencyBuckets; b++ {
		e.counts[b] = l.h.Count(b)
	}
	return e
}

// LatencySnapshot summarises one endpoint's request latencies in
// milliseconds.
type LatencySnapshot struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Snapshot returns the current summary.
func (l *LatencyHist) Snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LatencySnapshot{Count: l.h.Total(), Errors: l.errs}
	if s.Count == 0 {
		return s
	}
	ms := func(us uint64) float64 { return float64(us) / 1000 }
	s.MeanMS = ms(l.sumUS) / float64(s.Count)
	s.P50MS = ms(bucketUpperUS(l.h.Quantile(0.50)))
	s.P90MS = ms(bucketUpperUS(l.h.Quantile(0.90)))
	s.P99MS = ms(bucketUpperUS(l.h.Quantile(0.99)))
	s.MaxMS = ms(l.maxUS)
	return s
}

// knownEndpoints and knownStages are the families every daemon life
// observes; pre-registering them at construction keeps the hot
// observation path off the registry mutex (see Metrics).
var (
	knownEndpoints = []string{"/v1/profile", "/v1/simulate", "/v1/sweep", "/v1/workloads"}
	knownStages    = []string{obs.StageProfile, obs.StageReduce, obs.StageGenerate,
		obs.StageSimulate, obs.StageReference}
)

// Metrics aggregates the daemon's operational counters: per-endpoint
// latency histograms, per-pipeline-stage timing histograms (profile /
// reduce / generate / simulate, fed by the obs recorders the handlers
// thread through the core pipeline), plus cache and pool statistics,
// served as JSON by GET /metrics and as Prometheus text exposition by
// GET /metrics?format=prometheus.
//
// The known endpoint and stage families are pre-registered into
// immutable maps at construction, so the per-observation lookup on the
// request path is a lock-free map read; the registry mutex is taken
// only for names the daemon has never seen (custom span names from
// future pipeline stages) and for snapshots.
type Metrics struct {
	start time.Time

	// known is built once in NewMetrics and never mutated afterwards —
	// concurrent lock-free reads are safe.
	knownEndpoints map[string]*LatencyHist
	knownStages    map[string]*LatencyHist

	mu        sync.Mutex
	endpoints map[string]*LatencyHist // unknown names only
	stages    map[string]*LatencyHist // unknown names only
}

// NewMetrics returns a metrics registry with the known endpoint and
// stage families pre-registered.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:          time.Now(),
		knownEndpoints: make(map[string]*LatencyHist, len(knownEndpoints)),
		knownStages:    make(map[string]*LatencyHist, len(knownStages)),
		endpoints:      make(map[string]*LatencyHist),
		stages:         make(map[string]*LatencyHist),
	}
	for _, name := range knownEndpoints {
		m.knownEndpoints[name] = NewLatencyHist()
	}
	for _, name := range knownStages {
		m.knownStages[name] = NewLatencyHist()
	}
	return m
}

// Endpoint returns (creating if needed) the histogram for an endpoint.
// Known endpoints resolve without the registry lock.
func (m *Metrics) Endpoint(name string) *LatencyHist {
	if l, ok := m.knownEndpoints[name]; ok {
		return l
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.endpoints[name]
	if !ok {
		l = NewLatencyHist()
		m.endpoints[name] = l
	}
	return l
}

// StageObserve records one pipeline stage execution. Stage timings use
// the same log2-microsecond buckets as endpoint latencies, so both
// families read identically off /metrics. Known stages resolve without
// the registry lock.
func (m *Metrics) StageObserve(name string, d time.Duration) {
	if l, ok := m.knownStages[name]; ok {
		l.Observe(d, false)
		return
	}
	m.mu.Lock()
	l, ok := m.stages[name]
	if !ok {
		l = NewLatencyHist()
		m.stages[name] = l
	}
	m.mu.Unlock()
	l.Observe(d, false)
}

// ObserveStages folds every span a request's recorder collected into
// the per-stage families. A nil recorder is a no-op.
func (m *Metrics) ObserveStages(rec *obs.Recorder) {
	for _, sp := range rec.Spans() {
		m.StageObserve(sp.Name, time.Duration(sp.DurationS*float64(time.Second)))
	}
}

// RobustnessStats counts the degradation machinery's activity — the
// numbers an operator alerts on (see the README runbook): shed requests
// mean sustained overload, retries mean flaky jobs, resumed sweep
// points mean checkpoints doing their job after interruptions.
type RobustnessStats struct {
	Shed               uint64 `json:"shed_requests"`
	Retries            uint64 `json:"job_retries"`
	SweepPointsResumed uint64 `json:"sweep_points_resumed"`
	// Sweep points by serving tier: exact result-store hits and gated
	// surrogate estimates were answered without simulating; simulated
	// points paid for the pipeline (and fed the oracle).
	SweepPointsFromStore     uint64 `json:"sweep_points_from_store"`
	SweepPointsFromSurrogate uint64 `json:"sweep_points_from_surrogate"`
	SweepPointsSimulated     uint64 `json:"sweep_points_simulated"`
}

// MetricsSnapshot is the GET /metrics response body. Stages breaks the
// endpoint time down by pipeline stage (profile, reduce, generate,
// simulate): a slow /v1/simulate whose time sits in "profile" is a
// cache problem, one whose time sits in "simulate" is a sizing problem.
type MetricsSnapshot struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Cache         CacheStats                 `json:"cache"`
	Pool          PoolStats                  `json:"pool"`
	Robustness    RobustnessStats            `json:"robustness"`
	Fidelity      FidelityStats              `json:"fidelity"`
	Store         *StoreStats                `json:"store,omitempty"`
	Oracle        *OracleStatus              `json:"oracle,omitempty"`
	Cluster       *ClusterMetrics            `json:"cluster,omitempty"`
	Endpoints     map[string]LatencySnapshot `json:"endpoints"`
	Stages        map[string]LatencySnapshot `json:"stages"`
}

// Snapshot assembles the full metrics view from the registry plus the
// cache and pool it reports on.
func (m *Metrics) Snapshot(cache *GraphCache, pool *Pool) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Endpoints:     make(map[string]LatencySnapshot),
		Stages:        make(map[string]LatencySnapshot),
	}
	if cache != nil {
		s.Cache = cache.Stats()
	}
	if pool != nil {
		s.Pool = pool.Stats()
	}
	for name, l := range m.eachEndpoint() {
		s.Endpoints[name] = l.Snapshot()
	}
	// Stage families appear once observed (pre-registration is an
	// implementation detail, not a wire-format change).
	for name, l := range m.eachStage() {
		if snap := l.Snapshot(); snap.Count > 0 {
			s.Stages[name] = snap
		}
	}
	return s
}

// eachEndpoint returns every registered endpoint family, known and
// dynamic.
func (m *Metrics) eachEndpoint() map[string]*LatencyHist {
	out := make(map[string]*LatencyHist, len(m.knownEndpoints))
	for name, l := range m.knownEndpoints {
		out[name] = l
	}
	m.mu.Lock()
	for name, l := range m.endpoints {
		out[name] = l
	}
	m.mu.Unlock()
	return out
}

// eachStage returns every registered stage family, known and dynamic.
func (m *Metrics) eachStage() map[string]*LatencyHist {
	out := make(map[string]*LatencyHist, len(m.knownStages))
	for name, l := range m.knownStages {
		out[name] = l
	}
	m.mu.Lock()
	for name, l := range m.stages {
		out[name] = l
	}
	m.mu.Unlock()
	return out
}
