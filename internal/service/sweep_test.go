package service

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

// TestSweepMatchesSerialExactly is the determinism contract of the
// parallel sweep: results must be byte-identical to the serial per-point
// loop the DSE experiment used before the pool existed, in grid order,
// independent of completion order.
func TestSweepMatchesSerialExactly(t *testing.T) {
	g := testGraph(t)
	base := cpu.DefaultConfig()
	points := QuickGrid()
	r := core.ReductionFor(g, 5_000)

	serial := make([]core.Metrics, len(points))
	for i, pt := range points {
		m, err := core.StatSim(pt.Apply(base), g, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = m
	}

	// Each worker count yields a different lockstep plan shape — one
	// group of 9, near-even splits, and (at 8) mostly singleton groups
	// that degrade to the serial path — all of which must be invisible
	// in the results.
	for _, workers := range []int{1, 2, 4, 8} {
		pool := NewPool(workers)
		swept, err := Sweep(context.Background(), pool, base, g, points, r, 1)
		pool.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(swept) != len(points) {
			t.Fatalf("workers=%d: %d results for %d points", workers, len(swept), len(points))
		}
		for i := range swept {
			if swept[i].Point != points[i] {
				t.Fatalf("workers=%d: result %d is point %v, want %v (order not preserved)",
					workers, i, swept[i].Point, points[i])
			}
			if !reflect.DeepEqual(swept[i].Metrics, serial[i]) {
				t.Fatalf("workers=%d: point %v metrics diverge from serial run", workers, points[i])
			}
		}
	}
}

func TestSweepNilPool(t *testing.T) {
	g := testGraph(t)
	swept, err := Sweep(context.Background(), nil, cpu.DefaultConfig(), g,
		QuickGrid()[:2], core.ReductionFor(g, 5_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 || swept[0].Metrics.IPC() <= 0 {
		t.Errorf("sweep broken: %+v", swept)
	}
}

func TestGridByName(t *testing.T) {
	if pts, err := GridByName("quick"); err != nil || len(pts) != 9 {
		t.Errorf("quick grid: %d points, err %v", len(pts), err)
	}
	if pts, err := GridByName("paper"); err != nil || len(pts) != 1792 {
		t.Errorf("paper grid: %d points, err %v", len(pts), err)
	}
	if _, err := GridByName("nope"); err == nil {
		t.Error("unknown grid accepted")
	}
}
