package simpoint

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// twoPhaseStream alternates between two disjoint block vocabularies in
// long runs, giving an unmistakable two-cluster structure.
func twoPhaseStream(nIntervals int, intervalLen int) []trace.DynInst {
	out := make([]trace.DynInst, 0, nIntervals*intervalLen)
	seq := uint64(0)
	for iv := 0; iv < nIntervals; iv++ {
		base := int32(0)
		if (iv/2)%2 == 1 {
			base = 100
		}
		for i := 0; i < intervalLen; i++ {
			out = append(out, trace.DynInst{
				Seq:     seq,
				Class:   isa.IntALU,
				BlockID: base + int32(i%5),
				Index:   0,
			})
			seq++
		}
	}
	return out
}

func TestBBVsIntervalCount(t *testing.T) {
	s := twoPhaseStream(8, 1000)
	vecs, err := BBVs(trace.NewSliceSource(s), Options{IntervalLen: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 8 {
		t.Fatalf("got %d intervals, want 8", len(vecs))
	}
}

func TestBBVsTooShort(t *testing.T) {
	if _, err := BBVs(trace.NewSliceSource(nil), Options{IntervalLen: 1000}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := BBVs(trace.NewSliceSource(nil), Options{}); err == nil {
		t.Error("zero interval length accepted")
	}
}

func TestChooseFindsPhases(t *testing.T) {
	s := twoPhaseStream(16, 1000)
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("expected at least 2 simulation points for a 2-phase stream, got %d", len(pts))
	}
	var w float64
	for _, p := range pts {
		if p.Interval < 0 || p.Interval >= 16 {
			t.Fatalf("interval %d out of range", p.Interval)
		}
		w += p.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", w)
	}
	// The two phases should each be represented.
	phases := map[bool]bool{}
	for _, p := range pts {
		phases[(p.Interval/2)%2 == 1] = true
	}
	if len(phases) != 2 {
		t.Error("both phases should have a representative")
	}
}

func TestChooseUniformStreamFewPoints(t *testing.T) {
	// A homogeneous stream should need very few points.
	s := make([]trace.DynInst, 12000)
	for i := range s {
		s[i] = trace.DynInst{Seq: uint64(i), Class: isa.IntALU, BlockID: int32(i % 7)}
	}
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) > 3 {
		t.Errorf("homogeneous stream yielded %d points, want few", len(pts))
	}
}

func TestChooseDeterministic(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 6, TargetBlocks: 100, Phases: 3, PhaseLen: 30_000})
	run := func() []Point {
		src := &trace.LimitSource{Src: program.NewExecutor(prog, 1), N: 200_000}
		pts, err := Choose(src, Options{IntervalLen: 20_000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic point count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic points")
		}
	}
}
