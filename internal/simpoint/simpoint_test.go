package simpoint

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// twoPhaseStream alternates between two disjoint block vocabularies in
// long runs, giving an unmistakable two-cluster structure.
func twoPhaseStream(nIntervals int, intervalLen int) []trace.DynInst {
	out := make([]trace.DynInst, 0, nIntervals*intervalLen)
	seq := uint64(0)
	for iv := 0; iv < nIntervals; iv++ {
		base := int32(0)
		if (iv/2)%2 == 1 {
			base = 100
		}
		for i := 0; i < intervalLen; i++ {
			out = append(out, trace.DynInst{
				Seq:     seq,
				Class:   isa.IntALU,
				BlockID: base + int32(i%5),
				Index:   0,
			})
			seq++
		}
	}
	return out
}

func TestBBVsIntervalCount(t *testing.T) {
	s := twoPhaseStream(8, 1000)
	vecs, err := BBVs(trace.NewSliceSource(s), Options{IntervalLen: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 8 {
		t.Fatalf("got %d intervals, want 8", len(vecs))
	}
}

func TestBBVsTooShort(t *testing.T) {
	if _, err := BBVs(trace.NewSliceSource(nil), Options{IntervalLen: 1000}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := BBVs(trace.NewSliceSource(nil), Options{}); err == nil {
		t.Error("zero interval length accepted")
	}
}

func TestChooseFindsPhases(t *testing.T) {
	s := twoPhaseStream(16, 1000)
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("expected at least 2 simulation points for a 2-phase stream, got %d", len(pts))
	}
	var w float64
	for _, p := range pts {
		if p.Interval < 0 || p.Interval >= 16 {
			t.Fatalf("interval %d out of range", p.Interval)
		}
		w += p.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", w)
	}
	// The two phases should each be represented.
	phases := map[bool]bool{}
	for _, p := range pts {
		phases[(p.Interval/2)%2 == 1] = true
	}
	if len(phases) != 2 {
		t.Error("both phases should have a representative")
	}
}

func TestChooseUniformStreamFewPoints(t *testing.T) {
	// A homogeneous stream should need very few points.
	s := make([]trace.DynInst, 12000)
	for i := range s {
		s[i] = trace.DynInst{Seq: uint64(i), Class: isa.IntALU, BlockID: int32(i % 7)}
	}
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) > 3 {
		t.Errorf("homogeneous stream yielded %d points, want few", len(pts))
	}
}

func TestChooseEmptyStream(t *testing.T) {
	if _, err := Choose(trace.NewSliceSource(nil), Options{IntervalLen: 100, Seed: 1}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Clusters(trace.NewSliceSource(nil), Options{IntervalLen: 100, Seed: 1}); err == nil {
		t.Error("Clusters accepted an empty stream")
	}
}

func TestChooseStreamShorterThanOneInterval(t *testing.T) {
	// 400 instructions against a 1000-instruction interval: below the
	// half-full threshold, so no interval forms at all.
	s := twoPhaseStream(1, 400)
	if _, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1}); err == nil {
		t.Error("sub-interval stream accepted")
	}
	// At half an interval the trailing partial is kept (SimPoint rule)
	// and selection degenerates to a single full-weight point.
	s = twoPhaseStream(1, 500)
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Interval != 0 || pts[0].Weight != 1 {
		t.Errorf("half-interval stream: %+v", pts)
	}
}

func TestChooseKForcedToOne(t *testing.T) {
	// MaxK=1 must collapse even an obviously two-phase stream into a
	// single full-weight representative.
	s := twoPhaseStream(16, 1000)
	pts, err := Choose(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("MaxK=1 returned %d points", len(pts))
	}
	if math.Abs(pts[0].Weight-1) > 1e-12 {
		t.Errorf("single point weight = %v, want 1", pts[0].Weight)
	}
}

func TestChooseWeightNormalisation(t *testing.T) {
	// Weights are exact size/n ratios and must sum to 1 within 1e-12
	// for any clustering the selector produces.
	for seed := uint64(1); seed <= 5; seed++ {
		prog := program.MustGenerate(program.Personality{Name: "w", Seed: seed, TargetBlocks: 80, Phases: 4, PhaseLen: 10_000})
		src := &trace.LimitSource{Src: program.NewExecutor(prog, 1), N: 120_000}
		pts, err := Choose(src, Options{IntervalLen: 10_000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range pts {
			sum += p.Weight
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("seed %d: weights sum to %.15f (|Δ|=%g > 1e-12)", seed, sum, math.Abs(sum-1))
		}
	}
}

func TestClustersConsistentWithChoose(t *testing.T) {
	s := twoPhaseStream(16, 1000)
	c, err := Clusters(trace.NewSliceSource(s), Options{IntervalLen: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Intervals != 16 {
		t.Fatalf("Intervals = %d, want 16", c.Intervals)
	}
	if len(c.Points) != len(c.Members) {
		t.Fatalf("points/members mismatch: %d vs %d", len(c.Points), len(c.Members))
	}
	seen := map[int]bool{}
	for i, p := range c.Points {
		members := c.Members[i]
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", i)
		}
		found := false
		for j, m := range members {
			if seen[m] {
				t.Fatalf("interval %d in two clusters", m)
			}
			seen[m] = true
			if j > 0 && members[j-1] >= m {
				t.Fatalf("cluster %d members not ascending: %v", i, members)
			}
			if m == p.Interval {
				found = true
			}
		}
		if !found {
			t.Errorf("representative %d not among its members %v", p.Interval, members)
		}
		if want := float64(len(members)) / float64(c.Intervals); math.Abs(p.Weight-want) > 1e-12 {
			t.Errorf("cluster %d weight %v, want %v", i, p.Weight, want)
		}
	}
	if len(seen) != c.Intervals {
		t.Errorf("clusters cover %d of %d intervals", len(seen), c.Intervals)
	}
}

func TestChooseDeterministic(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 6, TargetBlocks: 100, Phases: 3, PhaseLen: 30_000})
	run := func() []Point {
		src := &trace.LimitSource{Src: program.NewExecutor(prog, 1), N: 200_000}
		pts, err := Choose(src, Options{IntervalLen: 20_000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic point count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic points")
		}
	}
}
