// Package simpoint implements a SimPoint-style representative-sampling
// comparator (Sherwood et al., ASPLOS 2002), used by the paper's Fig. 8
// as the accuracy reference for phase-aware simulation.
//
// The pipeline is the published one, scaled down: split the committed
// instruction stream into fixed-length intervals, build a basic-block
// vector (BBV) per interval, randomly project the BBVs to a small
// dimension, cluster them with k-means (choosing k by a BIC-like
// penalised score), and return one representative interval per cluster,
// weighted by cluster population.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures simulation-point selection.
type Options struct {
	IntervalLen uint64 // instructions per interval (paper: 10M; scale down)
	MaxK        int    // maximum clusters to consider (default 10)
	Dim         int    // random-projection dimension (default 15)
	Seed        uint64
	Restarts    int // k-means restarts per k (default 3)
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = 10
	}
	if o.Dim == 0 {
		o.Dim = 15
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	return o
}

// Point is one selected simulation point.
type Point struct {
	Interval int     // interval index (interval i covers [i*L, (i+1)*L))
	Weight   float64 // fraction of execution this point represents
}

// BBVs builds one normalised, randomly projected basic-block vector per
// interval of the stream.
func BBVs(src trace.Source, opts Options) ([][]float64, error) {
	opts = opts.withDefaults()
	if opts.IntervalLen == 0 {
		return nil, fmt.Errorf("simpoint: IntervalLen must be positive")
	}
	var vecs [][]float64
	counts := map[int32]uint64{}
	var n uint64
	var d trace.DynInst
	flush := func() {
		if n == 0 {
			return
		}
		// Accumulate in sorted block order: floating-point addition is
		// not associative, and map iteration order would make the
		// projections — and thus the chosen points — nondeterministic.
		blocks := make([]int32, 0, len(counts))
		for b := range counts {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		v := make([]float64, opts.Dim)
		for _, b := range blocks {
			w := float64(counts[b]) / float64(n)
			for dim := 0; dim < opts.Dim; dim++ {
				v[dim] += w * projection(b, dim, opts.Seed)
			}
		}
		vecs = append(vecs, v)
		counts = map[int32]uint64{}
		n = 0
	}
	for src.Next(&d) {
		counts[d.BlockID]++
		n++
		if n >= opts.IntervalLen {
			flush()
		}
	}
	// A trailing partial interval is kept only if it is at least half
	// full, as in the SimPoint tool.
	if n >= opts.IntervalLen/2 {
		flush()
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("simpoint: stream shorter than one interval")
	}
	return vecs, nil
}

// projection returns a deterministic pseudo-random value in [-1, 1] for
// (block, dimension).
func projection(block int32, dim int, seed uint64) float64 {
	x := seed ^ uint64(uint32(block))<<20 ^ uint64(dim)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return 2*float64(x>>11)/(1<<53) - 1
}

// Choose selects simulation points from the stream.
func Choose(src trace.Source, opts Options) ([]Point, error) {
	c, err := Clusters(src, opts)
	if err != nil {
		return nil, err
	}
	return c.Points, nil
}

// Clustering is the full phase structure Choose summarises: every
// interval's cluster assignment alongside the representative points.
// The adaptive fidelity engine consumes it as a stratification — each
// cluster is one stratum whose members are sampling units.
type Clustering struct {
	Intervals int     // intervals in the stream
	Points    []Point // one representative per non-empty cluster
	// Members[i] lists the interval indices belonging to Points[i]'s
	// cluster, ascending; Points[i].Interval is always among them and
	// len(Members[i]) / Intervals == Points[i].Weight.
	Members [][]int
}

// Clusters selects simulation points and returns the full clustering
// behind them.
func Clusters(src trace.Source, opts Options) (*Clustering, error) {
	opts = opts.withDefaults()
	vecs, err := BBVs(src, opts)
	if err != nil {
		return nil, err
	}
	return clusterBBVs(vecs, opts), nil
}

func clusterBBVs(vecs [][]float64, opts Options) *Clustering {
	n := len(vecs)
	maxK := opts.MaxK
	if maxK > n {
		maxK = n
	}
	rng := stats.NewRNG(opts.Seed + 1)

	// Best clustering per k over the restarts.
	bestSSE := make([]float64, maxK+1)
	bestAssignK := make([][]int, maxK+1)
	for k := 1; k <= maxK; k++ {
		bestSSE[k] = math.Inf(1)
		for r := 0; r < opts.Restarts; r++ {
			assign, sse := kmeans(vecs, k, rng)
			if sse < bestSSE[k] {
				bestSSE[k] = sse
				bestAssignK[k] = assign
			}
		}
	}
	// Model selection: the smallest k whose within-cluster error is a
	// small fraction of the single-cluster error (SimPoint's BIC serves
	// the same purpose). An absolute floor handles near-homogeneous
	// streams whose SSE is already negligible at k = 1.
	bestK := maxK
	threshold := 0.05 * bestSSE[1]
	if floor := 1e-4 * float64(n); threshold < floor {
		threshold = floor
	}
	for k := 1; k <= maxK; k++ {
		if bestSSE[k] <= threshold {
			bestK = k
			break
		}
	}
	bestAssign := bestAssignK[bestK]

	// Representative per cluster: the interval closest to its centroid.
	centroids := centroidsOf(vecs, bestAssign, bestK, opts.Dim)
	repIdx := make([]int, bestK)
	repDist := make([]float64, bestK)
	size := make([]int, bestK)
	for i := range repDist {
		repDist[i] = math.Inf(1)
	}
	for i, a := range bestAssign {
		size[a]++
		d := dist2(vecs[i], centroids[a])
		if d < repDist[a] {
			repDist[a] = d
			repIdx[a] = i
		}
	}
	out := &Clustering{Intervals: n}
	for c := 0; c < bestK; c++ {
		if size[c] == 0 {
			continue
		}
		members := make([]int, 0, size[c])
		for i, a := range bestAssign {
			if a == c {
				members = append(members, i)
			}
		}
		out.Points = append(out.Points, Point{Interval: repIdx[c], Weight: float64(size[c]) / float64(n)})
		out.Members = append(out.Members, members)
	}
	return out
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func centroidsOf(vecs [][]float64, assign []int, k, dim int) [][]float64 {
	cent := make([][]float64, k)
	cnt := make([]int, k)
	for i := range cent {
		cent[i] = make([]float64, dim)
	}
	for i, a := range assign {
		cnt[a]++
		for d := 0; d < dim; d++ {
			cent[a][d] += vecs[i][d]
		}
	}
	for c := 0; c < k; c++ {
		if cnt[c] > 0 {
			for d := 0; d < dim; d++ {
				cent[c][d] /= float64(cnt[c])
			}
		}
	}
	return cent
}

// kmeans clusters vecs into k groups (k-means++ seeding, Lloyd
// iterations) and returns the assignment and total within-cluster SSE.
func kmeans(vecs [][]float64, k int, rng *stats.RNG) ([]int, float64) {
	n := len(vecs)
	dim := len(vecs[0])
	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), vecs[first]...))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(vecs[i], centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range minD {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			for i, d := range minD {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), vecs[pick]...))
		for i := range minD {
			if d := dist2(vecs[i], centers[len(centers)-1]); d < minD[i] {
				minD[i] = d
			}
		}
	}

	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(vecs[i], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		centers = centroidsOf(vecs, assign, k, dim)
	}
	var sse float64
	for i, a := range assign {
		sse += dist2(vecs[i], centers[a])
	}
	return assign, sse
}
