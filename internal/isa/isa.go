// Package isa defines the abstract instruction set used throughout the
// framework: the twelve semantic instruction classes of the paper
// (§2.1.1), architectural registers, static instruction encodings and
// default execution latencies.
//
// The ISA is deliberately minimal — statistical simulation only needs
// instruction classes, operand structure and memory/branch behaviour,
// not value semantics.
package isa

import "fmt"

// Class is one of the twelve semantic instruction classes the paper
// profiles (§2.1.1).
type Class uint8

const (
	Load Class = iota
	Store
	IntBranch   // integer conditional branch
	FPBranch    // floating-point conditional branch
	IndirBranch // indirect branch (jumps through a register)
	IntALU
	IntMul
	IntDiv
	FPALU
	FPMul
	FPDiv
	FPSqrt
	NumClasses = 12
)

var classNames = [NumClasses]string{
	"load", "store", "int-branch", "fp-branch", "indir-branch",
	"int-alu", "int-mul", "int-div", "fp-alu", "fp-mul", "fp-div", "fp-sqrt",
}

// String returns the lowercase name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsBranch reports whether the class transfers control.
func (c Class) IsBranch() bool {
	return c == IntBranch || c == FPBranch || c == IndirBranch
}

// IsConditionalBranch reports whether the class is a taken/not-taken
// conditional branch (as opposed to an indirect branch, which is always
// taken and can only mispredict its target).
func (c Class) IsConditionalBranch() bool {
	return c == IntBranch || c == FPBranch
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// HasDest reports whether instructions of this class produce a register
// result. Branches and stores do not (§2.2 step 4: dependencies must
// not be generated on branches or stores).
func (c Class) HasDest() bool {
	return !c.IsBranch() && c != Store
}

// IsFP reports whether the class executes on floating-point units.
func (c Class) IsFP() bool {
	switch c {
	case FPBranch, FPALU, FPMul, FPDiv, FPSqrt:
		return true
	}
	return false
}

// Latency returns the default execution latency in cycles for the
// class, excluding memory latencies (loads take the cache access time
// determined by the hit/miss outcome). The values follow the
// SimpleScalar defaults for an Alpha-like machine.
func (c Class) Latency() int {
	switch c {
	case IntALU, IntBranch, IndirBranch, Store:
		return 1
	case Load:
		return 1 // address generation; memory latency is added by the cache model
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case FPALU, FPBranch:
		return 2
	case FPMul:
		return 4
	case FPDiv:
		return 12
	case FPSqrt:
		return 24
	default:
		return 1
	}
}

// MaxSrcOperands is the largest number of source operands a static
// instruction may carry. The profile records the actual per-instruction
// count (§2.1.1: instructions in the same class may differ).
const MaxSrcOperands = 3

// Reg names an architectural register. The register file is modelled as
// a flat space of NumRegs integer/FP registers; RAW distances — the only
// dataflow property statistical simulation needs — are computed from
// last-writer tracking over this space. Register 0 is a hardwired zero
// register and never creates dependencies (as on Alpha/MIPS).
type Reg uint8

// NumRegs is the size of the architectural register space.
const NumRegs = 64

// ZeroReg never creates RAW dependencies.
const ZeroReg Reg = 0

// StaticInst is one instruction in a program's static code. Address
// generation behaviour and branch behaviour are attached by the program
// package; the ISA layer carries only class and register structure.
type StaticInst struct {
	Class Class
	Dst   Reg   // meaningful only when Class.HasDest()
	Srcs  []Reg // source registers; ZeroReg entries are ignored
}

// Validate checks the structural invariants of a static instruction.
func (si *StaticInst) Validate() error {
	if si.Class >= NumClasses {
		return fmt.Errorf("isa: invalid class %d", si.Class)
	}
	if len(si.Srcs) > MaxSrcOperands {
		return fmt.Errorf("isa: %d source operands exceeds max %d", len(si.Srcs), MaxSrcOperands)
	}
	if !si.Class.HasDest() && si.Dst != ZeroReg {
		return fmt.Errorf("isa: %v cannot have a destination register", si.Class)
	}
	for _, s := range si.Srcs {
		if s >= NumRegs {
			return fmt.Errorf("isa: source register %d out of range", s)
		}
	}
	if si.Dst >= NumRegs {
		return fmt.Errorf("isa: destination register %d out of range", si.Dst)
	}
	return nil
}
