package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                           Class
		branch, cond, mem, dest, fp bool
	}{
		{Load, false, false, true, true, false},
		{Store, false, false, true, false, false},
		{IntBranch, true, true, false, false, false},
		{FPBranch, true, true, false, false, true},
		{IndirBranch, true, false, false, false, false},
		{IntALU, false, false, false, true, false},
		{IntMul, false, false, false, true, false},
		{IntDiv, false, false, false, true, false},
		{FPALU, false, false, false, true, true},
		{FPMul, false, false, false, true, true},
		{FPDiv, false, false, false, true, true},
		{FPSqrt, false, false, false, true, true},
	}
	for _, tc := range cases {
		if got := tc.c.IsBranch(); got != tc.branch {
			t.Errorf("%v.IsBranch = %v, want %v", tc.c, got, tc.branch)
		}
		if got := tc.c.IsConditionalBranch(); got != tc.cond {
			t.Errorf("%v.IsConditionalBranch = %v, want %v", tc.c, got, tc.cond)
		}
		if got := tc.c.IsMem(); got != tc.mem {
			t.Errorf("%v.IsMem = %v, want %v", tc.c, got, tc.mem)
		}
		if got := tc.c.HasDest(); got != tc.dest {
			t.Errorf("%v.HasDest = %v, want %v", tc.c, got, tc.dest)
		}
		if got := tc.c.IsFP(); got != tc.fp {
			t.Errorf("%v.IsFP = %v, want %v", tc.c, got, tc.fp)
		}
	}
}

func TestClassCount(t *testing.T) {
	if NumClasses != 12 {
		t.Fatalf("paper defines 12 classes, got %d", NumClasses)
	}
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		name := c.String()
		if seen[name] {
			t.Errorf("duplicate class name %q", name)
		}
		seen[name] = true
	}
}

func TestLatenciesPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c, c.Latency())
		}
	}
	if IntDiv.Latency() <= IntMul.Latency() {
		t.Error("divide should be slower than multiply")
	}
	if FPSqrt.Latency() <= FPALU.Latency() {
		t.Error("sqrt should be slower than fp-alu")
	}
}

func TestStaticInstValidate(t *testing.T) {
	ok := StaticInst{Class: IntALU, Dst: 3, Srcs: []Reg{1, 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	badClass := StaticInst{Class: 99}
	if badClass.Validate() == nil {
		t.Error("invalid class accepted")
	}
	tooManySrcs := StaticInst{Class: IntALU, Srcs: []Reg{1, 2, 3, 4}}
	if tooManySrcs.Validate() == nil {
		t.Error("too many source operands accepted")
	}
	storeWithDest := StaticInst{Class: Store, Dst: 5, Srcs: []Reg{1}}
	if storeWithDest.Validate() == nil {
		t.Error("store with destination accepted")
	}
	branchWithDest := StaticInst{Class: IntBranch, Dst: 5}
	if branchWithDest.Validate() == nil {
		t.Error("branch with destination accepted")
	}
	outOfRange := StaticInst{Class: IntALU, Srcs: []Reg{NumRegs}}
	if outOfRange.Validate() == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestClassStringUnknown(t *testing.T) {
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}
