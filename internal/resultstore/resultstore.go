// Package resultstore persists finished simulation results — the
// (design-point fingerprint → metrics) tuples every sweep and simulate
// request produces — so a point computed once is never simulated again.
// It is the ground-truth tier of the daemon's two-tier IPC oracle: an
// exact fingerprint hit is byte-identical to re-simulating (metrics are
// a deterministic function of the key, and they travel as the same JSON
// the sweep journal and the cluster wire format round-trip), so serving
// from the store is as sound as a cache hit.
//
// The on-disk format is an append-only record log ("RSLG" header, then
// length-prefixed CRC-32C-framed records at stable offsets — the fixed
// framing keeps the file mmap-friendly even though reads here go
// through the in-memory index). Recovery mirrors the SFG store and the
// sweep journal: a torn final record (crash mid-append) is truncated
// away and its point simply recomputed; a mid-file checksum mismatch
// quarantines the damaged file for post-mortem and rewrites a compacted
// log from the records that verified, so corruption is never served and
// never silently deleted.
package resultstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Key identifies one finished simulation exactly: the fingerprint of
// the full applied microarchitecture configuration (obs.Fingerprint of
// the cpu.Config, the same fingerprint run manifests carry) plus every
// input the metrics are a deterministic function of — the profile
// coordinates, the reduction factor and the generation seed. Two equal
// keys denote byte-identical metrics; any differing field is a miss.
//
// Dims carries the window/width knobs of the applied configuration in
// the clear. They are implied by ConfigFP (the fingerprint covers the
// whole config), so they change nothing about exact-hit identity; they
// are stored so a later life can re-derive surrogate training features
// from the log without the original cpu.Config in hand.
type Key struct {
	ConfigFP  string `json:"config_fp"` // obs.Fingerprint of the applied cpu.Config
	Workload  string `json:"workload"`
	K         int    `json:"k"`
	N         uint64 `json:"n"`
	Seed      uint64 `json:"seed"`
	Immediate bool   `json:"immediate,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Red       uint64 `json:"red"`
	SimSeed   uint64 `json:"sim_seed"`
	Dims      Dims   `json:"dims"`
}

// Dims is the design-space position of a result's configuration — the
// knobs sweeps vary and the surrogate regresses over.
type Dims struct {
	RUU    int `json:"ruu"`
	LSQ    int `json:"lsq"`
	Decode int `json:"decode"`
	Issue  int `json:"issue"`
	Commit int `json:"commit"`
	IFQ    int `json:"ifq"`
}

// Context identifies everything about a key except its configuration:
// the profile coordinates plus the synthetic-trace identity. Surrogate
// models interpolate only within one context — across configurations of
// the same workload profile — never across workloads or seeds.
func (k Key) Context() string {
	return fmt.Sprintf("%s|k=%d|n=%d|seed=%d|imm=%t|shards=%d|r=%d|sim=%d",
		k.Workload, k.K, k.N, k.Seed, k.Immediate, k.Shards, k.Red, k.SimSeed)
}

// Record is one persisted result: its key and the metrics JSON exactly
// as first marshalled, so replays and lookups round-trip the same bytes
// the journal and the cluster wire format do.
type Record struct {
	Key     Key
	Metrics core.Metrics
}

var (
	logMagic   = [4]byte{'R', 'S', 'L', 'G'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const (
	logVersion    = 1
	logName       = "results.log"
	quarantineDir = "quarantine"
	headerLen     = 8 // magic + version
	// frameOverhead is the fixed per-record framing: key length, metrics
	// length and the CRC-32C over both sections.
	frameOverhead = 12
	// maxSectionLen rejects absurd length fields before allocating: no
	// key or metrics blob approaches a megabyte.
	maxSectionLen = 1 << 20
)

// ErrCorruptRecord wraps every frame that fails validation during
// decode — bad lengths, short sections, checksum mismatch, unparseable
// JSON.
var ErrCorruptRecord = errors.New("resultstore: corrupt record")

// EncodeRecord frames one record for the log: key length, metrics
// length, CRC-32C over both JSON sections, then the sections.
func EncodeRecord(key Key, metrics json.RawMessage) ([]byte, error) {
	keyJSON, err := json.Marshal(key)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameOverhead, frameOverhead+len(keyJSON)+len(metrics))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(keyJSON)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(metrics)))
	buf = append(buf, keyJSON...)
	buf = append(buf, metrics...)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(buf[frameOverhead:], castagnoli))
	return buf, nil
}

// DecodeRecord parses one framed record from the front of data,
// returning the record, its raw metrics bytes and the frame's total
// length. io.ErrUnexpectedEOF reports a frame extending past the data
// (a torn tail); ErrCorruptRecord reports a frame that is wrong rather
// than short.
func DecodeRecord(data []byte) (Record, json.RawMessage, int, error) {
	var rec Record
	if len(data) < frameOverhead {
		return rec, nil, 0, io.ErrUnexpectedEOF
	}
	keyLen := binary.LittleEndian.Uint32(data[0:4])
	metLen := binary.LittleEndian.Uint32(data[4:8])
	if keyLen == 0 || keyLen > maxSectionLen || metLen == 0 || metLen > maxSectionLen {
		return rec, nil, 0, fmt.Errorf("%w: section lengths %d/%d", ErrCorruptRecord, keyLen, metLen)
	}
	total := frameOverhead + int(keyLen) + int(metLen)
	if len(data) < total {
		return rec, nil, 0, io.ErrUnexpectedEOF
	}
	sum := binary.LittleEndian.Uint32(data[8:12])
	body := data[frameOverhead:total]
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return rec, nil, 0, fmt.Errorf("%w: checksum %08x, frame says %08x", ErrCorruptRecord, got, sum)
	}
	if err := json.Unmarshal(body[:keyLen], &rec.Key); err != nil {
		return rec, nil, 0, fmt.Errorf("%w: key: %v", ErrCorruptRecord, err)
	}
	raw := json.RawMessage(body[keyLen:])
	if err := json.Unmarshal(raw, &rec.Metrics); err != nil {
		return rec, nil, 0, fmt.Errorf("%w: metrics: %v", ErrCorruptRecord, err)
	}
	return rec, raw, total, nil
}

// Store is the durable result log plus its in-memory exact-hit index.
// Lookups take a read lock only (microseconds under concurrency);
// appends serialise on the write lock and fsync before indexing, so a
// record served to anyone has already survived a crash.
type Store struct {
	dir  string
	path string

	mu      sync.RWMutex
	f       *os.File
	index   map[Key]core.Metrics
	records int

	// Recovery and activity counters (guarded by mu, except the lookup
	// counters, which stay off the exact-hit fast path's read lock).
	recovered   int // records replayed from a previous life
	tornDropped int // torn final frames truncated at open
	quarantined int // damaged files moved aside at open
	appends     int
	appendFails int
	hits        atomic.Uint64
	misses      atomic.Uint64
}

// Open opens (creating if needed) the result store rooted at dir,
// replaying the existing log into the index. Damaged logs are recovered
// as the package comment describes; Open fails only on filesystem
// errors.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: creating store: %w", err)
		}
	}
	st := &Store{
		dir:   dir,
		path:  filepath.Join(dir, logName),
		index: make(map[Key]core.Metrics),
	}
	if err := st.replay(); err != nil {
		return nil, err
	}
	return st, nil
}

// replay loads the existing log. good holds the verified frames'
// re-encodable content in file order so a damaged log can be compacted
// without trusting anything past the first bad frame.
func (st *Store) replay() error {
	data, err := os.ReadFile(st.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return st.create()
	case err != nil:
		return fmt.Errorf("resultstore: reading log: %w", err)
	}
	if len(data) < headerLen || *(*[4]byte)(data[:4]) != logMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != logVersion {
		// Not our log at all: quarantine whole and start fresh.
		st.quarantine()
		return st.create()
	}
	off := headerLen
	goodEnd := off
	var bad error
	for off < len(data) {
		rec, _, n, err := DecodeRecord(data[off:])
		if err != nil {
			bad = err
			break
		}
		if _, dup := st.index[rec.Key]; !dup {
			st.index[rec.Key] = rec.Metrics
			st.records++
		}
		off += n
		goodEnd = off
	}
	st.recovered = st.records
	switch {
	case bad == nil:
		// Clean log: append in place.
		return st.openAppend()
	case errors.Is(bad, io.ErrUnexpectedEOF):
		// Torn final record (crash mid-append): truncate the tail; the
		// verified prefix is untouched.
		st.tornDropped++
		if err := os.Truncate(st.path, int64(goodEnd)); err != nil {
			return fmt.Errorf("resultstore: truncating torn tail: %w", err)
		}
		return st.openAppend()
	default:
		// Mid-file corruption: preserve the damaged file for post-mortem,
		// rewrite a fresh log from the records that verified. Nothing past
		// the first bad frame is trusted — without a resync marker the
		// frame boundaries beyond it are meaningless.
		st.quarantine()
		return st.rewrite()
	}
}

// create writes a fresh log header and opens it for appending.
func (st *Store) create() error {
	var hdr [headerLen]byte
	copy(hdr[:4], logMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	if err := os.WriteFile(st.path, hdr[:], 0o644); err != nil {
		return fmt.Errorf("resultstore: creating log: %w", err)
	}
	return st.openAppend()
}

// rewrite compacts the index into a fresh log via temp file + rename,
// then opens it for appending.
func (st *Store) rewrite() error {
	var buf bytes.Buffer
	var hdr [headerLen]byte
	copy(hdr[:4], logMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	buf.Write(hdr[:])
	for key, m := range st.index {
		raw, err := json.Marshal(m)
		if err != nil {
			return err
		}
		frame, err := EncodeRecord(key, raw)
		if err != nil {
			return err
		}
		buf.Write(frame)
	}
	tmp, err := os.CreateTemp(st.dir, ".tmp-results-*")
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return e
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return st.openAppend()
}

func (st *Store) openAppend() error {
	f, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: opening log for append: %w", err)
	}
	st.f = f
	return nil
}

// quarantine moves the current log aside (best-effort, uniquely named
// so repeated recoveries never clobber evidence) and counts it.
func (st *Store) quarantine() {
	dest := filepath.Join(st.dir, quarantineDir, logName)
	for i := 1; ; i++ {
		if _, err := os.Stat(dest); errors.Is(err, os.ErrNotExist) {
			break
		}
		dest = filepath.Join(st.dir, quarantineDir, fmt.Sprintf("%s.%d", logName, i))
	}
	if err := os.Rename(st.path, dest); err == nil {
		st.quarantined++
	}
}

// Get returns the stored metrics for key. The returned metrics were
// decoded from the same JSON the record was written with, so re-serving
// them is byte-identical to the original simulation's response.
func (st *Store) Get(key Key) (core.Metrics, bool) {
	st.mu.RLock()
	m, ok := st.index[key]
	st.mu.RUnlock()
	if ok {
		st.hits.Add(1)
	} else {
		st.misses.Add(1)
	}
	return m, ok
}

// Put appends one finished result, fsyncing before it becomes visible
// to Get. A key already present is a no-op (results are deterministic:
// the incumbent is identical). Append failures leave the index
// untouched — the point is simply recomputed in a future life — and are
// counted for /metrics.
func (st *Store) Put(key Key, m core.Metrics) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	frame, err := EncodeRecord(key, raw)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.index[key]; ok {
		return nil
	}
	if _, err := st.f.Write(frame); err != nil {
		st.appendFails++
		return err
	}
	if err := st.f.Sync(); err != nil {
		st.appendFails++
		return err
	}
	st.index[key] = m
	st.records++
	st.appends++
	return nil
}

// Range calls fn for every indexed record until fn returns false. It
// snapshots under the read lock first so fn (which may itself consult
// the store) never runs with the lock held.
func (st *Store) Range(fn func(key Key, m core.Metrics) bool) {
	st.mu.RLock()
	recs := make([]Record, 0, len(st.index))
	for k, m := range st.index {
		recs = append(recs, Record{Key: k, Metrics: m})
	}
	st.mu.RUnlock()
	for _, r := range recs {
		if !fn(r.Key, r.Metrics) {
			return
		}
	}
}

// Close releases the log file. The log remains on disk as the next
// life's warm index.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

// Stats is a point-in-time snapshot of store contents and activity.
type Stats struct {
	Dir         string `json:"dir"`
	Records     int    `json:"records"`
	Recovered   int    `json:"recovered"`
	TornDropped int    `json:"torn_dropped"`
	Quarantined int    `json:"quarantined"`
	Appends     int    `json:"appends"`
	AppendFails int    `json:"append_failures"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
}

// Stats reports store contents and activity.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{
		Dir:         st.dir,
		Records:     st.records,
		Recovered:   st.recovered,
		TornDropped: st.tornDropped,
		Quarantined: st.quarantined,
		Appends:     st.appends,
		AppendFails: st.appendFails,
		Hits:        st.hits.Load(),
		Misses:      st.misses.Load(),
	}
}
