package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// testKey builds a distinct key for ordinal i.
func testKey(i int) Key {
	return Key{
		ConfigFP: fmt.Sprintf("fp%04d", i),
		Workload: "gzip",
		K:        1,
		N:        60_000,
		Seed:     1,
		Red:      6,
		SimSeed:  1,
		Dims:     Dims{RUU: 16 + i, LSQ: 8 + i, Decode: 4, Issue: 4, Commit: 4, IFQ: 32},
	}
}

// testMetrics builds distinct, non-trivial metrics for ordinal i.
func testMetrics(i int) core.Metrics {
	var m core.Metrics
	m.Instructions = uint64(10_000 + i)
	m.Cycles = uint64(8_000 + 3*i)
	m.Power.Watts[0] = 1.5 + float64(i)/16
	m.AvgRUUOcc = 12.25 + float64(i)
	return m
}

func TestRecordRoundTrip(t *testing.T) {
	key, m := testKey(7), testMetrics(7)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeRecord(key, raw)
	if err != nil {
		t.Fatal(err)
	}
	rec, gotRaw, n, err := DecodeRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Errorf("decoded length %d, frame is %d bytes", n, len(frame))
	}
	if rec.Key != key {
		t.Errorf("key round-trip: %+v != %+v", rec.Key, key)
	}
	if rec.Metrics != m {
		t.Errorf("metrics round-trip: %+v != %+v", rec.Metrics, m)
	}
	// The raw metrics bytes are the exact bytes written — what makes a
	// store hit byte-identical to re-simulating.
	if string(gotRaw) != string(raw) {
		t.Errorf("raw metrics bytes changed: %s != %s", gotRaw, raw)
	}
}

func TestStorePutGetAcrossLives(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := st.Put(testKey(i), testMetrics(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate put is a no-op, not a second record.
	if err := st.Put(testKey(0), testMetrics(0)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Records != n || got.Appends != n {
		t.Errorf("records/appends = %d/%d, want %d/%d", got.Records, got.Appends, n, n)
	}
	if _, ok := st.Get(testKey(n)); ok {
		t.Error("hit for a key never put")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: everything replays.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats(); got.Records != n || got.Recovered != n {
		t.Errorf("second life records/recovered = %d/%d, want %d/%d", got.Records, got.Recovered, n, n)
	}
	for i := 0; i < n; i++ {
		m, ok := st2.Get(testKey(i))
		if !ok || m != testMetrics(i) {
			t.Fatalf("record %d: ok=%v m=%+v", i, ok, m)
		}
	}
	// The replayed life keeps appending to the same log.
	if err := st2.Put(testKey(n), testMetrics(n)); err != nil {
		t.Fatal(err)
	}
}

// TestTornFinalRecordTruncated crashes mid-append at every possible cut
// point of the final record: the verified prefix must survive intact
// and the torn tail must be dropped, exactly like the sweep journal.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put(testKey(i), testMetrics(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put(testKey(3), testMetrics(3)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, logName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record starts by decoding the first three.
	off := headerLen
	for i := 0; i < 3; i++ {
		_, _, n, err := DecodeRecord(full[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	for cut := off + 1; cut < len(full); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, logName), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dir2)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			stats := st2.Stats()
			if stats.Records != 3 || stats.TornDropped != 1 || stats.Quarantined != 0 {
				t.Fatalf("records/torn/quarantined = %d/%d/%d, want 3/1/0",
					stats.Records, stats.TornDropped, stats.Quarantined)
			}
			for i := 0; i < 3; i++ {
				if m, ok := st2.Get(testKey(i)); !ok || m != testMetrics(i) {
					t.Fatalf("prefix record %d lost: ok=%v", i, ok)
				}
			}
			// The truncated log accepts the recomputed record again.
			if err := st2.Put(testKey(3), testMetrics(3)); err != nil {
				t.Fatal(err)
			}
			if m, ok := st2.Get(testKey(3)); !ok || m != testMetrics(3) {
				t.Fatal("re-put after torn-tail recovery not served")
			}
		})
	}
}

// TestChecksumMismatchQuarantines flips a byte mid-file: the verified
// prefix is compacted into a fresh log, the damaged file is preserved in
// quarantine/, and nothing past the flip is served.
func TestChecksumMismatchQuarantines(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(testKey(i), testMetrics(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 2's body and corrupt one byte of it.
	off := headerLen
	for i := 0; i < 2; i++ {
		_, _, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	data[off+frameOverhead+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Records != 2 || stats.Quarantined != 1 {
		t.Fatalf("records/quarantined = %d/%d, want 2/1", stats.Records, stats.Quarantined)
	}
	for i := 0; i < 2; i++ {
		if m, ok := st2.Get(testKey(i)); !ok || m != testMetrics(i) {
			t.Fatalf("verified prefix record %d lost: ok=%v", i, ok)
		}
	}
	if _, ok := st2.Get(testKey(2)); ok {
		t.Error("corrupt record served")
	}
	// The damaged file is evidence, never deleted.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, logName)); err != nil {
		t.Errorf("quarantined log missing: %v", err)
	}
	// The rewritten log is clean: a third life replays the survivors.
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Stats(); got.Records != 2 || got.Quarantined != 0 || got.TornDropped != 0 {
		t.Errorf("post-rewrite life: %+v", got)
	}
}

// TestForeignFileQuarantined ensures a file that is not a result log at
// all is moved aside whole, not truncated or served.
func TestForeignFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats(); got.Records != 0 || got.Quarantined != 1 {
		t.Errorf("foreign file: %+v", got)
	}
}

// TestConcurrentAppendWhileRead hammers Put, Get and Range from many
// goroutines — the -race run is the assertion; the final state check is
// a bonus.
func TestConcurrentAppendWhileRead(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				if err := st.Put(testKey(k), testMetrics(k)); err != nil {
					t.Error(err)
					return
				}
				if m, ok := st.Get(testKey(k)); !ok || m != testMetrics(k) {
					t.Errorf("just-put record %d not served", k)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.Get(testKey(i % (writers * perWriter)))
				st.Range(func(k Key, m core.Metrics) bool { return true })
				st.Stats()
			}
		}()
	}
	wg.Wait()
	if got := st.Stats(); got.Records != writers*perWriter {
		t.Errorf("final records %d, want %d", got.Records, writers*perWriter)
	}
}

func TestDecodeRejectsAbsurdLengths(t *testing.T) {
	key, m := testKey(0), testMetrics(0)
	raw, _ := json.Marshal(m)
	frame, err := EncodeRecord(key, raw)
	if err != nil {
		t.Fatal(err)
	}
	// A zero-length key section is wrong, not short.
	bad := append([]byte(nil), frame...)
	bad[0], bad[1], bad[2], bad[3] = 0, 0, 0, 0
	if _, _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("zero key length: %v, want ErrCorruptRecord", err)
	}
	// A section length beyond the cap must be rejected before allocating.
	bad = append([]byte(nil), frame...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("huge metrics length: %v, want ErrCorruptRecord", err)
	}
}

// FuzzResultRecord throws arbitrary bytes at the decoder: it must never
// panic, and every accepted frame must re-encode to the same identity.
func FuzzResultRecord(f *testing.F) {
	for i := 0; i < 3; i++ {
		raw, _ := json.Marshal(testMetrics(i))
		frame, _ := EncodeRecord(testKey(i), raw)
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, raw, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < frameOverhead || n > len(data) {
			t.Fatalf("accepted frame length %d out of range (data %d)", n, len(data))
		}
		// Accepted frames must survive a re-encode/decode cycle with the
		// same key identity and metrics value.
		frame, err := EncodeRecord(rec.Key, raw)
		if err != nil {
			t.Fatalf("re-encoding accepted record: %v", err)
		}
		rec2, _, _, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("re-decoding re-encoded record: %v", err)
		}
		if rec2.Key != rec.Key || rec2.Metrics != rec.Metrics {
			t.Fatal("record identity changed across re-encode")
		}
	})
}
