package surrogate

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cpu"
)

// planeIPC is a smooth synthetic response surface over the design
// space: linear in the normalised features, so k-NN interpolation
// should track it closely inside the training cloud.
func planeIPC(f Features) float64 { return 0.5 + 1.2*f[0] + 0.8*f[3] }

func planeEPC(f Features) float64 { return 10 + 30*f[0] + 20*f[2] }

// trainGrid trains the model on a grid of window/width combinations,
// returning the feature vectors used.
func trainGrid(m *Model, ctx string) []Features {
	var fs []Features
	for _, ruu := range []int{8, 16, 32, 64, 128} {
		for _, w := range []int{2, 4, 8} {
			f := FromDims(ruu, ruu/2, w, w, w, 32)
			m.Add(ctx, f, planeIPC(f), planeEPC(f))
			fs = append(fs, f)
		}
	}
	return fs
}

func TestFeaturesNormalised(t *testing.T) {
	f := FromDims(cpu.MaxBufferSize, cpu.MaxBufferSize, cpu.MaxWidth, cpu.MaxWidth, cpu.MaxWidth, cpu.MaxBufferSize)
	for i, v := range f {
		if v != 1 {
			t.Errorf("feature %d at max = %v, want 1", i, v)
		}
	}
	f = FromDims(1, 1, 1, 1, 1, 1)
	for i, v := range f {
		if v != 0 {
			t.Errorf("feature %d at 1 = %v, want 0", i, v)
		}
	}
	// Monotone in each knob.
	if a, b := FromDims(16, 8, 4, 4, 4, 32), FromDims(32, 8, 4, 4, 4, 32); a[0] >= b[0] {
		t.Errorf("RUU feature not monotone: %v >= %v", a[0], b[0])
	}
}

func TestPredictRefusesBelowMinSamples(t *testing.T) {
	m := New(0)
	f := FromDims(16, 8, 4, 4, 4, 32)
	if _, ok := m.Predict("ctx", f); ok {
		t.Fatal("prediction from an empty model")
	}
	for i := 0; i < minSamples-1; i++ {
		g := FromDims(16+8*i, 8, 4, 4, 4, 32)
		m.Add("ctx", g, 1, 10)
	}
	if _, ok := m.Predict("ctx", f); ok {
		t.Fatalf("prediction from %d samples, want refusal below %d", minSamples-1, minSamples)
	}
	m.Add("ctx", FromDims(128, 64, 8, 8, 8, 32), 1, 10)
	if _, ok := m.Predict("ctx", f); !ok {
		t.Fatal("no prediction at minSamples")
	}
}

func TestPredictDoesNotCrossContexts(t *testing.T) {
	m := New(0)
	trainGrid(m, "gzip|k=1")
	if _, ok := m.Predict("mcf|k=1", FromDims(16, 8, 4, 4, 4, 32)); ok {
		t.Fatal("prediction crossed into an untrained context")
	}
}

// TestPredictAtTrainingPoint: at an exact training point the nearest
// neighbour is the truth at distance zero, so the estimate must be
// nearly exact and its uncertainty small.
func TestPredictAtTrainingPoint(t *testing.T) {
	m := New(0)
	fs := trainGrid(m, "ctx")
	f := fs[len(fs)/2]
	est, ok := m.Predict("ctx", f)
	if !ok {
		t.Fatal("no prediction at a training point")
	}
	truth := planeIPC(f)
	if rel := math.Abs(est.IPC-truth) / truth; rel > 0.02 {
		t.Errorf("training-point IPC off by %.1f%% (est %.4f, truth %.4f)", 100*rel, est.IPC, truth)
	}
	if est.Neighbors != DefaultK {
		t.Errorf("neighbors = %d, want %d", est.Neighbors, DefaultK)
	}
	if est.Uncertainty <= 0 {
		t.Errorf("uncertainty %v, want > 0 (neighbour spread exists)", est.Uncertainty)
	}
}

// TestInterpolationBeatsExtrapolation: the uncertainty score must rank
// an in-cloud query below a far-out-of-cloud one, which is what makes
// it usable as a serving gate.
func TestInterpolationBeatsExtrapolation(t *testing.T) {
	m := New(0)
	// Train only on small windows.
	for _, ruu := range []int{8, 12, 16, 20, 24} {
		f := FromDims(ruu, ruu/2, 2, 2, 2, 32)
		m.Add("ctx", f, planeIPC(f), planeEPC(f))
	}
	in, ok := m.Predict("ctx", FromDims(14, 7, 2, 2, 2, 32))
	if !ok {
		t.Fatal("no in-cloud prediction")
	}
	out, ok := m.Predict("ctx", FromDims(128, 64, 8, 8, 8, 32))
	if !ok {
		t.Fatal("no out-of-cloud prediction")
	}
	if out.Uncertainty <= in.Uncertainty {
		t.Errorf("extrapolation uncertainty %.4f not above interpolation %.4f",
			out.Uncertainty, in.Uncertainty)
	}
}

// TestAddDeduplicates: re-adding the same features overwrites in place —
// k identical neighbours would fake certainty.
func TestAddDeduplicates(t *testing.T) {
	m := New(0)
	f := FromDims(16, 8, 4, 4, 4, 32)
	for i := 0; i < 10; i++ {
		m.Add("ctx", f, 1.5, 20)
	}
	st := m.Stats()
	if st.Samples != 1 {
		t.Errorf("samples = %d after 10 duplicate adds, want 1", st.Samples)
	}
	if st.Adds != 10 {
		t.Errorf("adds = %d, want 10", st.Adds)
	}
}

func TestRingEvictionBoundsMemory(t *testing.T) {
	m := New(0)
	for i := 0; i < maxPerContext+100; i++ {
		// Distinct features per add: vary all six knobs through the raw
		// integer space so no two collide.
		f := Features{float64(i) / float64(maxPerContext+100), 0, 0, 0, 0, 0}
		m.Add("ctx", f, 1, 10)
	}
	if st := m.Stats(); st.Samples != maxPerContext {
		t.Errorf("samples = %d, want cap %d", st.Samples, maxPerContext)
	}
	// The dedup index stays consistent after eviction: re-adding a live
	// feature must not grow the set.
	f := Features{float64(maxPerContext+99) / float64(maxPerContext+100), 0, 0, 0, 0, 0}
	m.Add("ctx", f, 2, 20)
	if st := m.Stats(); st.Samples != maxPerContext {
		t.Errorf("samples = %d after dedup re-add, want %d", st.Samples, maxPerContext)
	}
}

func TestZeroIPCNeighborhoodIsInfUncertain(t *testing.T) {
	m := New(0)
	for i := 0; i < minSamples; i++ {
		m.Add("ctx", Features{float64(i) / 8, 0, 0, 0, 0, 0}, 0, 0)
	}
	est, ok := m.Predict("ctx", Features{0.5, 0, 0, 0, 0, 0})
	if !ok {
		t.Fatal("no prediction")
	}
	if !math.IsInf(est.Uncertainty, 1) {
		t.Errorf("uncertainty %v over a zero-IPC neighbourhood, want +Inf (never passes a gate)", est.Uncertainty)
	}
}

func TestConcurrentAddPredict(t *testing.T) {
	m := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := fmt.Sprintf("ctx%d", w%2)
			for i := 0; i < 200; i++ {
				f := FromDims(8+(i%16)*8, 4+(i%8)*4, 2+(i%4)*2, 2, 2, 32)
				m.Add(ctx, f, 1+float64(i)/100, 10)
				m.Predict(ctx, f)
			}
		}(w)
	}
	wg.Wait()
	if st := m.Stats(); st.Contexts != 2 {
		t.Errorf("contexts = %d, want 2", st.Contexts)
	}
}

// TestLeaveOneOutAccuracyOnSmoothSurface: on a smooth response surface,
// gated predictions must bound relative IPC error near the gate — the
// accuracy contract the service's -surrogate-max-ci flag promises.
func TestLeaveOneOutAccuracyOnSmoothSurface(t *testing.T) {
	var fs []Features
	for _, ruu := range []int{8, 16, 24, 32, 48, 64, 96, 128} {
		for _, w := range []int{2, 4, 6, 8} {
			fs = append(fs, FromDims(ruu, ruu/2, w, w, w, 32))
		}
	}
	const gate = 0.15
	served := 0
	for hold := range fs {
		m := New(0)
		for j, f := range fs {
			if j != hold {
				m.Add("ctx", f, planeIPC(f), planeEPC(f))
			}
		}
		est, ok := m.Predict("ctx", fs[hold])
		if !ok || est.Uncertainty > gate {
			continue
		}
		served++
		truth := planeIPC(fs[hold])
		if rel := math.Abs(est.IPC-truth) / truth; rel > gate {
			t.Errorf("point %d served at gate %.2f with relative error %.3f (est %.4f, truth %.4f)",
				hold, gate, rel, est.IPC, truth)
		}
	}
	if served == 0 {
		t.Fatal("gate served nothing on a smooth surface — uncertainty is miscalibrated")
	}
	t.Logf("leave-one-out: %d/%d points served at gate %.2f", served, len(fs), gate)
}
