// Package surrogate is the learned fast path of the daemon's two-tier
// IPC oracle: a pure-Go k-nearest-neighbour regressor over normalised
// microarchitecture features, trained incrementally from the result
// store's finished (configuration → IPC/EPC) tuples and answering in
// microseconds with an estimate *and an uncertainty score*. The service
// serves a prediction only when its uncertainty is below an explicit,
// opt-in gate, and falls back to real simulation otherwise — the
// TAO-style design (PAPERS.md) where fallback traffic continuously
// improves the model.
//
// Models are partitioned by context (workload, SFG order, stream
// length, seeds, reduction): the regressor interpolates across the
// design space of one profiled workload, never across workloads, so a
// prediction is always a statement about configurations whose true
// results bracket it.
package surrogate

import (
	"math"
	"sync"

	"repro/internal/cpu"
)

// NumFeatures is the dimensionality of the normalised feature vector.
const NumFeatures = 6

// Features is one configuration's position in the normalised design
// space. Window sizes and widths enter as log2 scaled into [0,1] —
// IPC responds roughly logarithmically to window capacity (doubling the
// RUU matters; adding 8 entries to 128 does not), so log-space
// distances weight design-space neighbourhoods the way the response
// surface actually bends.
type Features [NumFeatures]float64

// log2Norm maps v onto log2(v)/log2(max), clamped to [0,1].
func log2Norm(v, max int) float64 {
	if v < 1 {
		v = 1
	}
	f := math.Log2(float64(v)) / math.Log2(float64(max))
	return math.Min(f, 1)
}

// FromDims builds the feature vector from raw design-space knobs.
func FromDims(ruu, lsq, decode, issue, commit, ifq int) Features {
	return Features{
		log2Norm(ruu, cpu.MaxBufferSize),
		log2Norm(lsq, cpu.MaxBufferSize),
		log2Norm(decode, cpu.MaxWidth),
		log2Norm(issue, cpu.MaxWidth),
		log2Norm(commit, cpu.MaxWidth),
		log2Norm(ifq, cpu.MaxBufferSize),
	}
}

// Extract builds the feature vector for a full configuration.
func Extract(cfg cpu.Config) Features {
	return FromDims(cfg.RUUSize, cfg.LSQSize, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth, cfg.IFQSize)
}

// Estimate is one prediction: IPC/EPC point estimates plus the model's
// relative uncertainty — the weighted worst-case neighbour deviation
// plus a distance penalty, as a fraction of the predicted IPC. A
// prediction is served only below the caller's gate; it is never
// mistakable for ground truth (callers flag it estimated and keep it
// out of journals and golden corpora).
type Estimate struct {
	IPC         float64 `json:"ipc"`
	EPC         float64 `json:"epc"`
	Uncertainty float64 `json:"uncertainty"`
	Neighbors   int     `json:"neighbors"`
}

// Defaults: K neighbours per prediction, the minimum training set
// before any prediction is attempted, and the per-context sample cap
// that bounds memory on a long-lived daemon.
const (
	DefaultK      = 4
	minSamples    = DefaultK
	maxPerContext = 8192
	// distWeight converts the weighted mean neighbour distance (in
	// normalised feature space) into relative uncertainty: extrapolating
	// is penalised even when the neighbours agree with each other.
	distWeight = 1.0
	// distEps keeps inverse-distance weights finite at the training
	// points themselves.
	distEps = 1e-6
)

// sample is one training point.
type sample struct {
	f        Features
	ipc, epc float64
}

// ctxSamples is one context's training set: a bounded ring plus an
// exact-feature index so re-simulated points update in place instead of
// stacking duplicates (k identical neighbours would fake certainty).
type ctxSamples struct {
	samples []sample
	byFeat  map[Features]int
	next    int // ring cursor once the cap is reached
}

// Model is the incremental k-NN regressor. All methods are safe for
// concurrent use; Predict takes only a read lock.
type Model struct {
	k int

	mu   sync.RWMutex
	ctxs map[string]*ctxSamples
	adds uint64
}

// New returns an empty model predicting from k neighbours (<= 0 means
// DefaultK).
func New(k int) *Model {
	if k <= 0 {
		k = DefaultK
	}
	return &Model{k: k, ctxs: make(map[string]*ctxSamples)}
}

// Add trains on one finished result. An existing sample at the same
// features is overwritten (results are deterministic, so the values are
// identical — this is dedup, not drift correction).
func (m *Model) Add(ctx string, f Features, ipc, epc float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs, ok := m.ctxs[ctx]
	if !ok {
		cs = &ctxSamples{byFeat: make(map[Features]int)}
		m.ctxs[ctx] = cs
	}
	m.adds++
	if i, ok := cs.byFeat[f]; ok {
		cs.samples[i] = sample{f: f, ipc: ipc, epc: epc}
		return
	}
	if len(cs.samples) < maxPerContext {
		cs.byFeat[f] = len(cs.samples)
		cs.samples = append(cs.samples, sample{f: f, ipc: ipc, epc: epc})
		return
	}
	// Ring overwrite: evict the oldest slot's feature index entry.
	old := cs.samples[cs.next]
	delete(cs.byFeat, old.f)
	cs.samples[cs.next] = sample{f: f, ipc: ipc, epc: epc}
	cs.byFeat[f] = cs.next
	cs.next = (cs.next + 1) % maxPerContext
}

func dist(a, b Features) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Predict estimates IPC/EPC at f within ctx. The bool is false when the
// context is unknown or holds fewer than minSamples training points —
// the model refuses to guess from nothing.
func (m *Model) Predict(ctx string, f Features) (Estimate, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cs, ok := m.ctxs[ctx]
	if !ok || len(cs.samples) < minSamples {
		return Estimate{}, false
	}

	// k nearest by linear scan — training sets are thousands of points
	// at most, and the scan is allocation-free.
	type nb struct {
		d float64
		s sample
	}
	var nearest [8]nb // k is clamped to this
	k := m.k
	if k > len(nearest) {
		k = len(nearest)
	}
	if k > len(cs.samples) {
		k = len(cs.samples)
	}
	n := 0
	for _, s := range cs.samples {
		d := dist(f, s.f)
		if n < k {
			nearest[n] = nb{d: d, s: s}
			n++
			// Keep the farthest at the end.
			for i := n - 1; i > 0 && nearest[i].d < nearest[i-1].d; i-- {
				nearest[i], nearest[i-1] = nearest[i-1], nearest[i]
			}
			continue
		}
		if d >= nearest[k-1].d {
			continue
		}
		nearest[k-1] = nb{d: d, s: s}
		for i := k - 1; i > 0 && nearest[i].d < nearest[i-1].d; i-- {
			nearest[i], nearest[i-1] = nearest[i-1], nearest[i]
		}
	}

	// Inverse-distance-weighted means.
	var wSum, ipc, epc, dMean float64
	for i := 0; i < k; i++ {
		w := 1 / (nearest[i].d + distEps)
		wSum += w
		ipc += w * nearest[i].s.ipc
		epc += w * nearest[i].s.epc
		dMean += w * nearest[i].d
	}
	ipc /= wSum
	epc /= wSum
	dMean /= wSum

	// Uncertainty: the worst weighted neighbour's relative deviation
	// from the prediction — how far the truth can sit from the estimate
	// if it lies within the neighbourhood's value range — plus a
	// distance penalty for extrapolating beyond the training cloud.
	var maxDev float64
	for i := 0; i < k; i++ {
		if dev := math.Abs(nearest[i].s.ipc - ipc); dev > maxDev {
			maxDev = dev
		}
	}
	unc := distWeight * dMean
	if ipc > 0 {
		unc += maxDev / ipc
	} else {
		unc = math.Inf(1)
	}
	return Estimate{IPC: ipc, EPC: epc, Uncertainty: unc, Neighbors: k}, true
}

// Stats is a point-in-time snapshot of the model's training state.
type Stats struct {
	Contexts int    `json:"contexts"`
	Samples  int    `json:"samples"`
	Adds     uint64 `json:"adds"`
	K        int    `json:"k"`
}

// Stats reports the model's training state.
func (m *Model) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Stats{Contexts: len(m.ctxs), Adds: m.adds, K: m.k}
	for _, cs := range m.ctxs {
		s.Samples += len(cs.samples)
	}
	return s
}
