package cache

// HierarchyConfig bundles the full memory-hierarchy configuration.
// Defaults (DefaultConfig) follow Table 2 of the paper.
type HierarchyConfig struct {
	L1I  Config
	L1D  Config
	L2   Config // unified; instruction- and data-induced misses split in accounting
	ITLB Config // BlockBytes is the page size
	DTLB Config

	MemLatency     int // L2-miss round trip to main memory (cycles)
	TLBMissLatency int // TLB refill penalty (cycles)
}

// DefaultConfig returns the paper's Table 2 hierarchy: 8 KB 2-way L1I
// (32 B lines, 1 cycle), 16 KB 4-way L1D (32 B lines, 2 cycles), 1 MB
// 4-way unified L2 (64 B lines, 20 cycles), 32-entry 8-way I/D-TLBs
// with 4 KB pages, 150-cycle memory round trip.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:            Config{SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
		L1D:            Config{SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 32, Latency: 2},
		L2:             Config{SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64, Latency: 20},
		ITLB:           Config{SizeBytes: 32 * 4096, Assoc: 8, BlockBytes: 4096, Latency: 1},
		DTLB:           Config{SizeBytes: 32 * 4096, Assoc: 8, BlockBytes: 4096, Latency: 1},
		MemLatency:     150,
		TLBMissLatency: 30,
	}
}

// Validate checks every level.
func (hc HierarchyConfig) Validate() error {
	for _, c := range []Config{hc.L1I, hc.L1D, hc.L2, hc.ITLB, hc.DTLB} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Scale returns a copy of hc with the L1I, L1D and L2 capacities
// multiplied by factor (used by the Table 4 cache-size sweep). Factor
// must be a power-of-two multiple or divisor so geometries stay valid.
func (hc HierarchyConfig) Scale(factor float64) HierarchyConfig {
	scale := func(c Config) Config {
		c.SizeBytes = int(float64(c.SizeBytes) * factor)
		if c.SizeBytes < c.Assoc*c.BlockBytes {
			c.SizeBytes = c.Assoc * c.BlockBytes
		}
		return c
	}
	hc.L1I = scale(hc.L1I)
	hc.L1D = scale(hc.L1D)
	hc.L2 = scale(hc.L2)
	return hc
}

// IResult describes the locality events of one instruction fetch.
type IResult struct {
	L1Miss  bool
	L2Miss  bool
	TLBMiss bool
}

// DResult describes the locality events of one data access.
type DResult struct {
	L1Miss  bool
	L2Miss  bool
	TLBMiss bool
}

// Hierarchy is a live memory hierarchy: the execution-driven simulator
// and the statistical profiler both drive one instance each.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *Cache
	DTLB *Cache

	// Split accounting of unified-L2 misses (§2.1.2 footnote 1).
	L2IAccesses, L2IMisses uint64
	L2DAccesses, L2DMisses uint64

	// Same-line fast path: a repeat access to the line (and therefore
	// page) just accessed on the same side is a guaranteed L1+TLB hit —
	// the side's caches are touched by no other call, and re-touching
	// the MRU way cannot change LRU order — so the set scans are
	// skipped. Access counters are still advanced, keeping every
	// observable statistic identical. The shift uses the side's smallest
	// block size so line equality implies page equality. Stored as
	// line+1 so zero means "no previous access".
	iMemo, dMemo   uint64
	iShift, dShift uint

	// Same-page fast path for the TLBs alone: a new line inside the page
	// just accessed on the same side is still a guaranteed TLB hit, by
	// the identical MRU-retouch argument (the side's TLB is touched by no
	// other call, so the page stayed most recently used). Pages change
	// ~2 orders of magnitude less often than lines, so this skips almost
	// every 8-way TLB set scan. Stored as page+1 so zero means "none".
	iPageMemo, dPageMemo   uint64
	iPageShift, dPageShift uint
}

func memoShift(l1, tlb Config) uint {
	block := l1.BlockBytes
	if tlb.BlockBytes < block {
		block = tlb.BlockBytes
	}
	shift := uint(0)
	for 1<<shift != block {
		shift++
	}
	return shift
}

// NewHierarchy builds a hierarchy; cfg must validate.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg:        cfg,
		L1I:        New(cfg.L1I),
		L1D:        New(cfg.L1D),
		L2:         New(cfg.L2),
		ITLB:       New(cfg.ITLB),
		DTLB:       New(cfg.DTLB),
		iShift:     memoShift(cfg.L1I, cfg.ITLB),
		dShift:     memoShift(cfg.L1D, cfg.DTLB),
		iPageShift: memoShift(cfg.ITLB, cfg.ITLB),
		dPageShift: memoShift(cfg.DTLB, cfg.DTLB),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// AccessI performs an instruction fetch at pc.
func (h *Hierarchy) AccessI(pc uint64) IResult {
	var r IResult
	if line := pc>>h.iShift + 1; line == h.iMemo {
		h.ITLB.Accesses++
		h.L1I.Accesses++
		return r
	} else {
		h.iMemo = line
	}
	if page := pc>>h.iPageShift + 1; page == h.iPageMemo {
		h.ITLB.Accesses++
	} else {
		h.iPageMemo = page
		r.TLBMiss = !h.ITLB.Access(pc)
	}
	if !h.L1I.Access(pc) {
		r.L1Miss = true
		h.L2IAccesses++
		if !h.L2.Access(pc) {
			r.L2Miss = true
			h.L2IMisses++
		}
	}
	return r
}

// AccessD performs a data access at addr. Stores allocate like loads
// (write-allocate), matching sim-cache's default.
func (h *Hierarchy) AccessD(addr uint64) DResult {
	var r DResult
	if line := addr>>h.dShift + 1; line == h.dMemo {
		h.DTLB.Accesses++
		h.L1D.Accesses++
		return r
	} else {
		h.dMemo = line
	}
	if page := addr>>h.dPageShift + 1; page == h.dPageMemo {
		h.DTLB.Accesses++
	} else {
		h.dPageMemo = page
		r.TLBMiss = !h.DTLB.Access(addr)
	}
	if !h.L1D.Access(addr) {
		r.L1Miss = true
		h.L2DAccesses++
		if !h.L2.Access(addr) {
			r.L2Miss = true
			h.L2DMisses++
		}
	}
	return r
}

// LoadLatency converts a data-access outcome into an access latency in
// cycles, the same mapping used for pre-assigned synthetic-trace flags
// (§2.3: "for example, in case of an L2 miss, the access latency to
// main memory is assigned").
func (hc HierarchyConfig) LoadLatency(l1Miss, l2Miss, tlbMiss bool) int {
	lat := hc.L1D.Latency
	if l1Miss {
		lat = hc.L2.Latency
		if l2Miss {
			lat = hc.MemLatency
		}
	}
	if tlbMiss {
		lat += hc.TLBMissLatency
	}
	return lat
}

// FetchStall converts an instruction-fetch outcome into the number of
// cycles the fetch engine stalls (§2.3: on an I-cache miss the fetch
// engine stops fetching for a number of cycles).
func (hc HierarchyConfig) FetchStall(l1Miss, l2Miss, tlbMiss bool) int {
	stall := 0
	if l1Miss {
		stall = hc.L2.Latency
		if l2Miss {
			stall = hc.MemLatency
		}
	}
	if tlbMiss {
		stall += hc.TLBMissLatency
	}
	return stall
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.L2IAccesses, h.L2IMisses = 0, 0
	h.L2DAccesses, h.L2DMisses = 0, 0
	h.iMemo, h.dMemo = 0, 0
	h.iPageMemo, h.dPageMemo = 0, 0
}
