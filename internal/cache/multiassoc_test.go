package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestMultiAssocMatchesIndividualCaches is the defining property: one
// MultiAssoc pass must agree exactly with separately simulated LRU
// caches of every associativity.
func TestMultiAssocMatchesIndividualCaches(t *testing.T) {
	const sets, block, maxAssoc = 16, 32, 8
	streams := map[string][]uint64{}

	// Looping stream with a working set that fits some assocs only.
	var loop []uint64
	for rep := 0; rep < 50; rep++ {
		for i := uint64(0); i < 80; i++ {
			loop = append(loop, i*uint64(block))
		}
	}
	streams["loop"] = loop

	// Random stream.
	rng := stats.NewRNG(7)
	var random []uint64
	for i := 0; i < 5000; i++ {
		random = append(random, uint64(rng.Intn(1<<16)))
	}
	streams["random"] = random

	// Strided stream with aliasing.
	var stride []uint64
	for i := uint64(0); i < 3000; i++ {
		stride = append(stride, i*512)
	}
	streams["stride"] = stride

	for name, addrs := range streams {
		t.Run(name, func(t *testing.T) {
			m := NewMultiAssoc(sets, block, maxAssoc)
			refs := map[int]*Cache{}
			for a := 1; a <= maxAssoc; a++ {
				refs[a] = New(Config{SizeBytes: sets * a * block, Assoc: a, BlockBytes: block, Latency: 1})
			}
			for _, addr := range addrs {
				m.Access(addr)
				for a := 1; a <= maxAssoc; a++ {
					refs[a].Access(addr)
				}
			}
			for a := 1; a <= maxAssoc; a++ {
				if got, want := m.Misses(a), refs[a].Misses; got != want {
					t.Errorf("assoc %d: multi-pass %d misses, reference %d", a, got, want)
				}
			}
		})
	}
}

// Property: miss counts are monotonically non-increasing in
// associativity (the LRU inclusion property).
func TestMultiAssocMonotonicity(t *testing.T) {
	f := func(addrs []uint16) bool {
		m := NewMultiAssoc(8, 16, 8)
		for _, a := range addrs {
			m.Access(uint64(a))
		}
		for a := 2; a <= 8; a++ {
			if m.Misses(a) > m.Misses(a-1) {
				return false
			}
		}
		return m.Misses(1) <= m.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiAssocValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMultiAssoc(3, 16, 4) }, // non-pow2 sets
		func() { NewMultiAssoc(8, 17, 4) }, // non-pow2 block
		func() { NewMultiAssoc(8, 16, 0) }, // zero assoc
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			fn()
		}()
	}
	m := NewMultiAssoc(8, 16, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range assoc accepted")
		}
	}()
	m.Misses(5)
}

func TestMultiAssocMissRate(t *testing.T) {
	m := NewMultiAssoc(4, 32, 2)
	if m.MissRate(1) != 0 {
		t.Error("empty simulator should report 0 miss rate")
	}
	m.Access(0)
	m.Access(0)
	if got := m.MissRate(1); got != 0.5 {
		t.Errorf("MissRate(1) = %v, want 0.5", got)
	}
	if m.MaxAssoc() != 2 {
		t.Errorf("MaxAssoc = %d", m.MaxAssoc())
	}
}
