// Package cache implements the memory-hierarchy substrate: set-
// associative caches with LRU replacement, TLBs, and a Hierarchy that
// bundles them per the paper's baseline configuration (Table 2: split
// 8 KB I / 16 KB D level-one caches, a unified 1 MB L2 with separate
// accounting of instruction- and data-induced misses, and 32-entry
// I/D-TLBs with 4 KB pages).
//
// These models play the role of SimpleScalar's sim-cache during
// statistical profiling (§2.1.2) and supply live locality events to the
// execution-driven timing simulator.
package cache

import "fmt"

// Replacement selects the victim policy of a set.
type Replacement uint8

const (
	// LRU evicts the least recently used way (the default; sim-cache's
	// default and the policy the paper's Table 2 implies).
	LRU Replacement = iota
	// FIFO evicts the oldest-inserted way regardless of reuse.
	FIFO
	// Random evicts a pseudo-random way (deterministic per cache).
	Random
)

// String returns the policy's short name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return "repl?"
}

// Config describes one cache level.
type Config struct {
	SizeBytes  int // total capacity
	Assoc      int // ways per set
	BlockBytes int // line size (page size for TLBs)
	Latency    int // hit access latency in cycles
	Repl       Replacement
}

// Validate checks structural soundness (power-of-two geometry, at least
// one set).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Assoc * c.BlockBytes)
	if sets <= 0 {
		return fmt.Errorf("cache: config %+v yields no sets", c)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: config %+v yields non-power-of-two set count %d", c, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

// Cache is a set-associative cache with true-LRU replacement. It is a
// tag-only model: no data is stored, only presence.
type Cache struct {
	cfg     Config
	sets    int
	assoc   int // == cfg.Assoc, hoisted out of the hot loop
	repl    Replacement
	shift   uint
	setMask uint64
	// tags holds sets*assoc entries storing blockNumber+1; zero means
	// the way is invalid. The +1 encoding folds the valid bit into the
	// tag word so the hit scan is a single compare per way. (The only
	// unrepresentable line is block number ^uint64(0), which requires a
	// 1-byte block size and the last byte of the address space.)
	tags     []uint64
	lastUsed []uint64 // LRU: last touch; FIFO: insertion tick
	tick     uint64
	rng      uint64 // xorshift state for Random replacement

	Accesses uint64
	Misses   uint64
}

// New builds a cache from cfg; cfg must validate.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	shift := uint(0)
	for 1<<shift != cfg.BlockBytes {
		shift++
	}
	n := sets * cfg.Assoc
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		assoc:    cfg.Assoc,
		repl:     cfg.Repl,
		shift:    shift,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, n),
		lastUsed: make([]uint64, n),
		rng:      0x2545f4914f6cdd1d,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, allocating the line on a miss (allocate-on-miss
// for both reads and writes, as in sim-cache), and reports whether it
// hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.tick++
	blk := addr >> c.shift
	tag := blk + 1 // full block number as tag; set bits included is harmless
	base := int(blk&c.setMask) * c.assoc
	// Hit scan first: hits dominate, and with the +1 tag encoding the
	// scan is one compare per way with no victim bookkeeping.
	ways := c.tags[base : base+c.assoc]
	for i, t := range ways {
		if t == tag {
			if c.repl == LRU {
				c.lastUsed[base+i] = c.tick
			}
			return true
		}
	}
	// Miss: choose a victim — the first invalid way if any (oldest==0
	// marks that case), else the least-recently-used/oldest-inserted.
	c.Misses++
	victim := base
	oldest := ^uint64(0)
	for i, t := range ways {
		if t == 0 {
			victim = base + i
			oldest = 0
			break
		}
		if c.lastUsed[base+i] < oldest {
			victim = base + i
			oldest = c.lastUsed[base+i]
		}
	}
	if c.repl == Random && oldest != 0 {
		// No invalid way: pick a pseudo-random victim.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		victim = base + int(c.rng%uint64(c.assoc))
	}
	c.tags[victim] = tag
	c.lastUsed[victim] = c.tick
	return false
}

// Probe reports whether addr is resident without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	blk := addr >> c.shift
	base := int(blk&c.setMask) * c.assoc
	for _, t := range c.tags[base : base+c.assoc] {
		if t == blk+1 {
			return true
		}
	}
	return false
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.tick = 0
	c.Accesses = 0
	c.Misses = 0
}
