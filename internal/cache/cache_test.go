package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 256, Assoc: 2, BlockBytes: 32, Latency: 1} }

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 1, BlockBytes: 32},
		{SizeBytes: 256, Assoc: 2, BlockBytes: 33}, // non-pow2 block
		{SizeBytes: 96, Assoc: 1, BlockBytes: 32},  // 3 sets
		{SizeBytes: 32, Assoc: 4, BlockBytes: 32},  // 0 sets
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if small().Sets() != 4 {
		t.Errorf("Sets = %d, want 4", small().Sets())
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different offset: hit.
	if !c.Access(0x101f) {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if c.Access(0x1020) {
		t.Error("next-line access hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("counters: %d accesses, %d misses; want 4, 2", c.Accesses, c.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, 4 sets, 32B lines: addresses mapping to set 0 are multiples
	// of 128.
	c := New(small())
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a) // miss, resident {a}
	c.Access(b) // miss, resident {a,b}
	c.Access(a) // hit: a is now MRU
	c.Access(d) // miss: evicts LRU = b
	if !c.Probe(a) {
		t.Error("a should be resident (was MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (was LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestCacheFullyAssociative(t *testing.T) {
	c := New(Config{SizeBytes: 128, Assoc: 4, BlockBytes: 32, Latency: 1})
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 32)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Probe(i * 32) {
			t.Errorf("line %d evicted prematurely", i)
		}
	}
	c.Access(4 * 32) // evicts line 0 (LRU)
	if c.Probe(0) {
		t.Error("line 0 should be evicted")
	}
}

func TestCacheWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 10, Assoc: 4, BlockBytes: 32, Latency: 1})
	// Touch 512 bytes repeatedly: after warmup, zero misses.
	for round := 0; round < 10; round++ {
		for a := uint64(0); a < 512; a += 8 {
			c.Access(a)
		}
	}
	if c.Misses != 16 { // 512/32 cold misses only
		t.Errorf("misses = %d, want 16 cold misses", c.Misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := New(small())
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("counters not reset")
	}
	if c.Probe(0) {
		t.Error("contents not reset")
	}
}

func TestMissRate(t *testing.T) {
	c := New(small())
	if c.MissRate() != 0 {
		t.Error("empty cache MissRate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

// Property: miss count never exceeds access count, and hits+misses
// match accesses.
func TestCacheCounterInvariant(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(small())
		hits := 0
		for _, a := range addrs {
			if c.Access(uint64(a)) {
				hits++
			}
		}
		return c.Accesses == uint64(len(addrs)) && c.Misses+uint64(hits) == c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: immediately after Access(a), Probe(a) is true (the line was
// allocated).
func TestCacheAllocateOnMiss(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(small())
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Probe(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOReplacementIgnoresReuse(t *testing.T) {
	cfg := small()
	cfg.Repl = FIFO
	c := New(cfg)
	a, b, d := uint64(0), uint64(128), uint64(256) // same set, 2 ways
	c.Access(a)                                    // inserted first
	c.Access(b)
	c.Access(a) // reuse must NOT refresh under FIFO
	c.Access(d) // evicts a (oldest insertion), not b
	if c.Probe(a) {
		t.Error("FIFO should evict the oldest insertion despite reuse")
	}
	if !c.Probe(b) || !c.Probe(d) {
		t.Error("FIFO evicted the wrong line")
	}
}

func TestRandomReplacementStillCaches(t *testing.T) {
	cfg := small()
	cfg.Repl = Random
	c := New(cfg)
	c.Access(0x40)
	if !c.Access(0x40) {
		t.Error("random-replacement cache must still hit on reuse")
	}
	// Fill a set beyond capacity repeatedly: must not panic, counters
	// stay consistent.
	for i := uint64(0); i < 1000; i++ {
		c.Access(i * 128)
	}
	if c.Misses > c.Accesses {
		t.Error("counter invariant broken")
	}
	// Determinism: two identical caches agree.
	c1, c2 := New(cfg), New(cfg)
	for i := uint64(0); i < 500; i++ {
		if c1.Access(i*128%4096) != c2.Access(i*128%4096) {
			t.Fatal("random replacement must be deterministic per cache")
		}
	}
}

func TestLRUBeatsFIFOOnReuseHeavyStream(t *testing.T) {
	run := func(r Replacement) uint64 {
		cfg := Config{SizeBytes: 256, Assoc: 4, BlockBytes: 32, Latency: 1, Repl: r}
		c := New(cfg)
		// One hot line re-touched constantly amid a streaming scan.
		for i := uint64(0); i < 5000; i++ {
			c.Access(0)                // hot
			c.Access((i%64 + 1) * 256) // streaming, same set as hot line
		}
		return c.Misses
	}
	if lru, fifo := run(LRU), run(FIFO); lru >= fifo {
		t.Errorf("LRU (%d misses) should beat FIFO (%d) on reuse-heavy streams", lru, fifo)
	}
}

func TestReplacementNames(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("replacement names wrong")
	}
	if Replacement(9).String() != "repl?" {
		t.Error("unknown replacement name")
	}
}

func TestHierarchyDefaultsValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.L1I.Sets() != 128 {
		t.Errorf("L1I sets = %d, want 128 (8KB/2-way/32B)", cfg.L1I.Sets())
	}
	if cfg.ITLB.Sets() != 4 {
		t.Errorf("ITLB sets = %d, want 4 (32 entries 8-way)", cfg.ITLB.Sets())
	}
}

func TestHierarchyL2SplitAccounting(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Instruction fetch to a cold line: L1I miss + L2 (instruction) miss.
	r := h.AccessI(0x40_0000)
	if !r.L1Miss || !r.L2Miss || !r.TLBMiss {
		t.Errorf("cold fetch result %+v, want all misses", r)
	}
	if h.L2IMisses != 1 || h.L2DMisses != 0 {
		t.Errorf("L2 split wrong: I=%d D=%d", h.L2IMisses, h.L2DMisses)
	}
	// Data access to a different cold line.
	d := h.AccessD(0x1000_0000)
	if !d.L1Miss || !d.L2Miss || !d.TLBMiss {
		t.Errorf("cold data access result %+v", d)
	}
	if h.L2DMisses != 1 {
		t.Errorf("L2DMisses = %d, want 1", h.L2DMisses)
	}
	// Same data line again: all hits.
	d = h.AccessD(0x1000_0000)
	if d.L1Miss || d.TLBMiss {
		t.Errorf("warm data access result %+v, want hits", d)
	}
}

func TestHierarchyL2SharedBetweenIAndD(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x40_0000)
	h.AccessI(addr) // fills L2 with this line
	// A data access to the same line must hit in L2 even though it
	// misses in L1D: the L2 is unified.
	r := h.AccessD(addr)
	if !r.L1Miss {
		t.Error("expected L1D miss")
	}
	if r.L2Miss {
		t.Error("L2 should be unified: line filled by I-fetch must hit")
	}
}

func TestLoadLatencyMapping(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.LoadLatency(false, false, false); got != 2 {
		t.Errorf("L1 hit latency = %d, want 2", got)
	}
	if got := cfg.LoadLatency(true, false, false); got != 20 {
		t.Errorf("L2 hit latency = %d, want 20", got)
	}
	if got := cfg.LoadLatency(true, true, false); got != 150 {
		t.Errorf("mem latency = %d, want 150", got)
	}
	if got := cfg.LoadLatency(false, false, true); got != 32 {
		t.Errorf("TLB-miss latency = %d, want 2+30", got)
	}
	if got := cfg.FetchStall(false, false, false); got != 0 {
		t.Errorf("fetch hit stall = %d, want 0", got)
	}
	if got := cfg.FetchStall(true, true, false); got != 150 {
		t.Errorf("fetch mem stall = %d, want 150", got)
	}
}

func TestHierarchyScale(t *testing.T) {
	cfg := DefaultConfig().Scale(2)
	if cfg.L1I.SizeBytes != 16<<10 || cfg.L2.SizeBytes != 2<<20 {
		t.Errorf("Scale(2): L1I=%d L2=%d", cfg.L1I.SizeBytes, cfg.L2.SizeBytes)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	down := DefaultConfig().Scale(0.25)
	if err := down.Validate(); err != nil {
		t.Errorf("down-scaled config invalid: %v", err)
	}
}
