package cache

import "fmt"

// MultiAssoc is a single-pass multi-configuration cache simulator in
// the spirit of the cheetah simulator the paper cites (§2.1.2, Sugumar
// & Abraham): one pass over an address stream yields the miss counts of
// *every* LRU cache with the given set count and block size and any
// associativity from 1 to MaxAssoc.
//
// It exploits the LRU stack property: an access hits in an a-way cache
// iff its per-set LRU stack distance is less than a, so recording the
// histogram of stack distances answers all associativities at once.
// Statistical profiling uses it to amortise cache characterisation
// across a design-space sweep without re-running the workload.
type MultiAssoc struct {
	sets     int
	maxAssoc int
	shift    uint
	setMask  uint64

	// stacks[s] is set s's LRU stack, most recent first, bounded to
	// maxAssoc entries (deeper entries miss in every tracked config).
	stacks [][]uint64

	Accesses uint64
	// distCount[d] counts accesses with stack distance d (< maxAssoc);
	// deeper or cold accesses land in coldOrDeep.
	distCount  []uint64
	coldOrDeep uint64
}

// NewMultiAssoc builds a simulator for caches with the given geometry
// family. sets and blockBytes must be powers of two; maxAssoc >= 1.
func NewMultiAssoc(sets, blockBytes, maxAssoc int) *MultiAssoc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d not a positive power of two", sets))
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic(fmt.Sprintf("cache: block size %d not a positive power of two", blockBytes))
	}
	if maxAssoc < 1 {
		panic("cache: maxAssoc must be >= 1")
	}
	shift := uint(0)
	for 1<<shift != blockBytes {
		shift++
	}
	return &MultiAssoc{
		sets:      sets,
		maxAssoc:  maxAssoc,
		shift:     shift,
		setMask:   uint64(sets - 1),
		stacks:    make([][]uint64, sets),
		distCount: make([]uint64, maxAssoc),
	}
}

// Access records one reference.
func (m *MultiAssoc) Access(addr uint64) {
	m.Accesses++
	blk := addr >> m.shift
	set := int(blk & m.setMask)
	stack := m.stacks[set]
	// Find the block's stack distance and move it to the front.
	for i, b := range stack {
		if b == blk {
			m.distCount[i]++
			copy(stack[1:i+1], stack[:i])
			stack[0] = blk
			return
		}
	}
	m.coldOrDeep++
	if len(stack) < m.maxAssoc {
		stack = append(stack, 0)
		m.stacks[set] = stack
	}
	copy(stack[1:], stack)
	stack[0] = blk
}

// Misses returns the miss count of the assoc-way configuration; assoc
// must be in [1, MaxAssoc].
func (m *MultiAssoc) Misses(assoc int) uint64 {
	if assoc < 1 || assoc > m.maxAssoc {
		panic(fmt.Sprintf("cache: assoc %d outside [1,%d]", assoc, m.maxAssoc))
	}
	misses := m.coldOrDeep
	for d := assoc; d < m.maxAssoc; d++ {
		misses += m.distCount[d]
	}
	return misses
}

// MissRate returns Misses(assoc)/Accesses.
func (m *MultiAssoc) MissRate(assoc int) float64 {
	if m.Accesses == 0 {
		return 0
	}
	return float64(m.Misses(assoc)) / float64(m.Accesses)
}

// MaxAssoc returns the largest associativity the simulator tracks.
func (m *MultiAssoc) MaxAssoc() int { return m.maxAssoc }
