package trace

import "testing"

// drainCursor reads a cursor to EOF in batches, verifying the canonical
// sequence and the sticky-EOF contract.
func drainCursor(t *testing.T, c *Cursor, want int) {
	t.Helper()
	got := Collect(Unbatched(c), 0)
	checkStream(t, got, want)
	var buf [4]DynInst
	if n := c.NextBatch(buf[:]); n != 0 {
		t.Fatalf("NextBatch after EOF returned %d, want sticky 0", n)
	}
}

func TestSpoolSingleCursor(t *testing.T) {
	for _, n := range []int{0, 1, DefaultBatchSize, 3*DefaultBatchSize + 7} {
		sp := NewSpool(NewSliceSource(seqInsts(n)))
		drainCursor(t, sp.NewCursor(), n)
	}
}

// TestSpoolCursorsSeeIdenticalStreams: every cursor observes the full
// canonical sequence regardless of how reads interleave.
func TestSpoolCursorsSeeIdenticalStreams(t *testing.T) {
	const n = 5*DefaultBatchSize + 13
	sp := NewSpool(NewSliceSource(seqInsts(n)))
	a, b, c := sp.NewCursor(), sp.NewCursor(), sp.NewCursor()

	// a sprints ahead, b follows in odd-sized batches, c reads one
	// instruction at a time.
	var got [3][]DynInst
	buf := make([]DynInst, DefaultBatchSize)
	small := make([]DynInst, 97)
	var one DynInst
	for {
		moved := false
		if k := a.NextBatch(buf); k > 0 {
			got[0] = append(got[0], buf[:k]...)
			moved = true
		}
		if k := b.NextBatch(small); k > 0 {
			got[1] = append(got[1], small[:k]...)
			moved = true
		}
		for i := 0; i < 50 && c.Next(&one); i++ {
			got[2] = append(got[2], one)
			moved = true
		}
		sp.Trim()
		if !moved {
			break
		}
	}
	for i := range got {
		checkStream(t, got[i], n)
	}
}

// TestSpoolTrimBoundsWindow: with laggard-first scheduling the window
// must stay within a couple of chunks plus the trim hysteresis, no
// matter how long the stream is.
func TestSpoolTrimBoundsWindow(t *testing.T) {
	const n = 40 * DefaultBatchSize
	sp := NewSpool(NewSliceSource(seqInsts(n)))
	curs := []*Cursor{sp.NewCursor(), sp.NewCursor(), sp.NewCursor()}
	buf := make([]DynInst, DefaultBatchSize)
	maxWindow := 0
	for {
		// Advance the laggard, as the lockstep driver does.
		lag := curs[0]
		for _, c := range curs[1:] {
			if c.Pos() < lag.Pos() {
				lag = c
			}
		}
		if lag.NextBatch(buf) == 0 {
			break
		}
		sp.Trim()
		if w := sp.WindowLen(); w > maxWindow {
			maxWindow = w
		}
	}
	// Trim compacts once the dead prefix reaches 4096; the live spread
	// under laggard-first scheduling is at most one chunk.
	if limit := 4096 + 2*DefaultBatchSize; maxWindow > limit {
		t.Fatalf("window grew to %d instructions, want <= %d", maxWindow, limit)
	}
}

// TestSpoolCloseReleasesWindow: closing every cursor drops the whole
// retained window even when the stream was not fully consumed.
func TestSpoolCloseReleasesWindow(t *testing.T) {
	sp := NewSpool(NewSliceSource(seqInsts(4 * DefaultBatchSize)))
	a, b := sp.NewCursor(), sp.NewCursor()
	buf := make([]DynInst, DefaultBatchSize)
	a.NextBatch(buf)
	b.NextBatch(buf[:7]) // b stays mid-window, pinning the rest of the chunk
	a.Close()
	if sp.WindowLen() == 0 {
		t.Fatal("window released while an open cursor still has unread data")
	}
	b.Close()
	if w := sp.WindowLen(); w != 0 {
		t.Fatalf("window holds %d instructions after all cursors closed, want 0", w)
	}
}

// TestSpoolLateCursorPanics: registering a consumer after consumption
// began would silently miss trimmed data, so it must panic instead.
func TestSpoolLateCursorPanics(t *testing.T) {
	sp := NewSpool(NewSliceSource(seqInsts(DefaultBatchSize)))
	c := sp.NewCursor()
	var buf [8]DynInst
	c.NextBatch(buf[:])
	defer func() {
		if recover() == nil {
			t.Fatal("NewCursor after consumption began did not panic")
		}
	}()
	sp.NewCursor()
}

// TestSpoolEmptySource: EOF before any data, for every read style.
func TestSpoolEmptySource(t *testing.T) {
	sp := NewSpool(NewSliceSource(nil))
	c := sp.NewCursor()
	var one DynInst
	if c.Next(&one) {
		t.Fatal("Next on empty source returned true")
	}
	var buf [8]DynInst
	if n := c.NextBatch(buf[:]); n != 0 {
		t.Fatalf("NextBatch on empty source returned %d", n)
	}
}
