package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// File format: synthetic traces are plain streams of fixed-width
// little-endian records behind a small header, so multi-gigabyte traces
// stream in constant memory in both directions.
var fileMagic = [4]byte{'S', 'T', 'R', 'C'}

const fileVersion = 1

// recordBytes is the on-disk size of one instruction record.
const recordBytes = 8 + 8 + 8 + 8 + // Seq PC NextPC EffAddr
	4*isa.MaxSrcOperands + 4 + // DepDist WAWDist
	4 + 2 + 1 + 1 + 1 + 2 // BlockID Index NumSrcs Class Taken Flags

// WriteTrace streams all instructions from src to w, returning how many
// records were written.
func WriteTrace(w io.Writer, src Source) (uint64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(fileVersion)); err != nil {
		return 0, err
	}
	var buf [recordBytes]byte
	var n uint64
	var d DynInst
	for src.Next(&d) {
		encodeRecord(&buf, &d)
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

func encodeRecord(buf *[recordBytes]byte, d *DynInst) {
	le := binary.LittleEndian
	off := 0
	put64 := func(v uint64) { le.PutUint64(buf[off:], v); off += 8 }
	put32 := func(v uint32) { le.PutUint32(buf[off:], v); off += 4 }
	put64(d.Seq)
	put64(d.PC)
	put64(d.NextPC)
	put64(d.EffAddr)
	for _, dd := range d.DepDist {
		put32(dd)
	}
	put32(d.WAWDist)
	put32(uint32(d.BlockID))
	le.PutUint16(buf[off:], uint16(d.Index))
	off += 2
	buf[off] = d.NumSrcs
	off++
	buf[off] = byte(d.Class)
	off++
	if d.Taken {
		buf[off] = 1
	} else {
		buf[off] = 0
	}
	off++
	le.PutUint16(buf[off:], uint16(d.Flags))
}

// Reader streams a trace file as a Source.
type Reader struct {
	br  *bufio.Reader
	err error
}

// NewReader validates the header and returns a streaming Source.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: not a trace file (magic %q)", magic[:])
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	return &Reader{br: br}, nil
}

// Next implements Source.
func (r *Reader) Next(out *DynInst) bool {
	if r.err != nil {
		return false
	}
	var buf [recordBytes]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		if err != io.EOF {
			r.err = err
		} else {
			r.err = io.EOF
		}
		return false
	}
	decodeRecord(&buf, out)
	return true
}

// Err returns the first non-EOF error encountered while reading.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

func decodeRecord(buf *[recordBytes]byte, d *DynInst) {
	le := binary.LittleEndian
	off := 0
	get64 := func() uint64 { v := le.Uint64(buf[off:]); off += 8; return v }
	get32 := func() uint32 { v := le.Uint32(buf[off:]); off += 4; return v }
	d.Seq = get64()
	d.PC = get64()
	d.NextPC = get64()
	d.EffAddr = get64()
	for i := range d.DepDist {
		d.DepDist[i] = get32()
	}
	d.WAWDist = get32()
	d.BlockID = int32(get32())
	d.Index = int16(le.Uint16(buf[off:]))
	off += 2
	d.NumSrcs = buf[off]
	off++
	d.Class = isa.Class(buf[off])
	off++
	d.Taken = buf[off] == 1
	off++
	d.Flags = Flags(le.Uint16(buf[off:]))
}

var _ Source = (*Reader)(nil)
