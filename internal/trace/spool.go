package trace

// Spool materialises one BatchSource stream exactly once and serves it
// to N independent Cursor consumers — the sharing primitive behind
// lockstep multi-config simulation, where a single synthetic-trace
// generation pass drives many pipeline instances.
//
// The spool keeps a sliding window of the stream: the frontmost cursor
// pulls fresh chunks from the source, laggards re-read the retained
// window, and Trim drops everything below the slowest open cursor. A
// scheduler that advances the laggard first (internal/lockstep) keeps
// the window a few chunks wide regardless of consumer count, so every
// consumer reads the same cache-resident bytes.
//
// Concurrency: a Spool and its Cursors belong to one goroutine — the
// lockstep driver advances instances sequentially. Create every cursor
// before the first read; cursors created after consumption has begun
// would miss the already-trimmed prefix (NewCursor panics then).
type Spool struct {
	src     BatchSource
	base    uint64 // stream position of window[0]
	window  []DynInst
	eof     bool
	cursors []*Cursor
}

// NewSpool wraps src (adapted to the batch interface if needed) for
// multi-cursor consumption. The source must not be read by anyone else.
func NewSpool(src Source) *Spool {
	return &Spool{src: Batched(src)}
}

// NewCursor registers a new consumer positioned at the start of the
// stream. All cursors must be created before any of them reads.
func (s *Spool) NewCursor() *Cursor {
	if s.base != 0 || len(s.window) != 0 || s.eof {
		panic("trace: Spool.NewCursor after consumption began")
	}
	c := &Cursor{sp: s}
	s.cursors = append(s.cursors, c)
	return c
}

// fill extends the window by up to one chunk from the source.
func (s *Spool) fill() {
	n := len(s.window)
	if cap(s.window)-n < DefaultBatchSize {
		grown := make([]DynInst, n, 2*cap(s.window)+DefaultBatchSize)
		copy(grown, s.window)
		s.window = grown
	}
	k := s.src.NextBatch(s.window[n : n+DefaultBatchSize])
	if k == 0 {
		s.eof = true
		return
	}
	s.window = s.window[:n+k]
}

// Trim discards window entries below the slowest open cursor,
// compacting only when a sizeable prefix is dead (amortising the copy,
// like the pipeline's stream buffer). With every cursor closed the
// whole window is released.
func (s *Spool) Trim() {
	min, open := ^uint64(0), false
	for _, c := range s.cursors {
		if !c.closed {
			open = true
			if c.pos < min {
				min = c.pos
			}
		}
	}
	if !open {
		s.window = s.window[:0]
		return
	}
	if min <= s.base {
		return
	}
	drop := min - s.base
	if drop > uint64(len(s.window)) {
		drop = uint64(len(s.window))
		min = s.base + drop
	}
	if drop >= 4096 || drop == uint64(len(s.window)) {
		s.window = append(s.window[:0], s.window[drop:]...)
		s.base = min
	}
}

// WindowLen reports the retained window size in instructions
// (observability and tests; the lockstep scheduler keeps it small).
func (s *Spool) WindowLen() int { return len(s.window) }

// Cursor is one consumer's monotone position into a Spool. It
// implements both trace.Source and trace.BatchSource, so it plugs
// directly into the pipeline's stream buffer (whose Batched adapter
// collapses to the cursor itself).
type Cursor struct {
	sp     *Spool
	pos    uint64
	closed bool
}

// NextBatch implements BatchSource: it copies from the shared window,
// pulling fresh chunks from the source only when this cursor is at the
// frontier. EOF (return 0) is sticky, per the BatchSource contract.
func (c *Cursor) NextBatch(dst []DynInst) int {
	s := c.sp
	for c.pos >= s.base+uint64(len(s.window)) {
		if s.eof {
			return 0
		}
		s.fill()
	}
	if c.pos < s.base {
		panic("trace: Cursor read below the trimmed window")
	}
	n := copy(dst, s.window[c.pos-s.base:])
	c.pos += uint64(n)
	return n
}

// Next implements Source for per-instruction consumers.
func (c *Cursor) Next(out *DynInst) bool {
	s := c.sp
	for c.pos >= s.base+uint64(len(s.window)) {
		if s.eof {
			return false
		}
		s.fill()
	}
	if c.pos < s.base {
		panic("trace: Cursor read below the trimmed window")
	}
	*out = s.window[c.pos-s.base]
	c.pos++
	return true
}

// Pos reports the cursor's stream position (instructions consumed).
func (c *Cursor) Pos() uint64 { return c.pos }

// Close marks the cursor done so it no longer pins the window.
func (c *Cursor) Close() {
	c.closed = true
	c.sp.Trim()
}

var (
	_ Source      = (*Cursor)(nil)
	_ BatchSource = (*Cursor)(nil)
)
