package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestFlags(t *testing.T) {
	f := FlagL1DMiss | FlagL2DMiss
	if !f.Has(FlagL1DMiss) || !f.Has(FlagL2DMiss) {
		t.Error("set flags not detected")
	}
	if f.Has(FlagL1IMiss) {
		t.Error("unset flag detected")
	}
	if !f.Has(FlagL1DMiss | FlagL2DMiss) {
		t.Error("Has must require all bits")
	}
	if f.Has(FlagL1DMiss | FlagBrMispredict) {
		t.Error("Has must not accept partial matches")
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]DynInst{{Seq: 0}, {Seq: 1}})
	var d DynInst
	for i := uint64(0); i < 2; i++ {
		if !s.Next(&d) || d.Seq != i {
			t.Fatalf("Next %d failed", i)
		}
	}
	if s.Next(&d) {
		t.Error("exhausted source returned true")
	}
	if s.Next(&d) {
		t.Error("Next after exhaustion must keep returning false")
	}
	s.Reset()
	if !s.Next(&d) || d.Seq != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestLimitSource(t *testing.T) {
	inner := NewSliceSource(make([]DynInst, 10))
	l := &LimitSource{Src: inner, N: 3}
	var d DynInst
	n := 0
	for l.Next(&d) {
		n++
	}
	if n != 3 {
		t.Errorf("limit delivered %d, want 3", n)
	}
	short := &LimitSource{Src: NewSliceSource(make([]DynInst, 2)), N: 5}
	n = 0
	for short.Next(&d) {
		n++
	}
	if n != 2 {
		t.Errorf("short stream delivered %d, want 2", n)
	}
}

func TestCollect(t *testing.T) {
	src := NewSliceSource(make([]DynInst, 10))
	if got := Collect(src, 4); len(got) != 4 {
		t.Errorf("Collect(4) = %d", len(got))
	}
	src.Reset()
	if got := Collect(src, 0); len(got) != 10 {
		t.Errorf("Collect(0) = %d, want all", len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	f := FuncSource(func(out *DynInst) bool {
		if n >= 2 {
			return false
		}
		out.Seq = uint64(n)
		n++
		return true
	})
	if got := Collect(f, 0); len(got) != 2 || got[1].Seq != 1 {
		t.Errorf("FuncSource broken: %v", got)
	}
}

func TestIsBranch(t *testing.T) {
	d := DynInst{Class: isa.IntBranch}
	if !d.IsBranch() {
		t.Error("IntBranch not a branch")
	}
	d.Class = isa.Load
	if d.IsBranch() {
		t.Error("Load is not a branch")
	}
}
