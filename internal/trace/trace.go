// Package trace defines the dynamic instruction stream exchanged
// between the functional executor, the statistical profiler and the
// superscalar timing core.
//
// A single record type, DynInst, serves both execution-driven
// simulation (where locality events — cache misses, branch
// mispredictions — are computed live by cache and predictor models) and
// synthetic-trace simulation (where the statistical trace generator
// pre-assigns the same events as per-instruction flags, §2.2 steps 5-7).
package trace

import "repro/internal/isa"

// Flags carries the pre-assigned locality events of a synthetic-trace
// record. Execution-driven simulation ignores them and computes the
// events from live cache/branch-predictor state instead.
type Flags uint16

const (
	FlagL1IMiss Flags = 1 << iota // instruction misses in the L1 I-cache
	FlagL2IMiss                   // ... and in the unified L2
	FlagITLBMiss
	FlagL1DMiss // load/store misses in the L1 D-cache
	FlagL2DMiss // ... and in the unified L2
	FlagDTLBMiss
	FlagBrMispredict    // branch direction (or indirect target) mispredicted
	FlagBrFetchRedirect // BTB miss with correct direction prediction
)

// Has reports whether all bits in f are set.
func (fl Flags) Has(f Flags) bool { return fl&f == f }

// DynInst is one dynamic instruction. The zero value is an int-alu
// instruction with no operands.
type DynInst struct {
	Seq     uint64 // position in the committed-path stream, starting at 0
	PC      uint64 // instruction address
	NextPC  uint64 // address of the next dynamic instruction (target or fall-through)
	EffAddr uint64 // effective address for loads/stores

	// DepDist holds the RAW dependency distance of each source operand:
	// the number of dynamic instructions between the producer and this
	// consumer (1 = the immediately preceding instruction). 0 means the
	// operand carries no modelled dependency.
	DepDist [isa.MaxSrcOperands]uint32

	// WAWDist is the distance to the previous writer of this
	// instruction's destination register (0 = none). Register renaming
	// removes these dependencies, so out-of-order simulation ignores
	// them; the in-order pipeline extension (§2.1.1's suggested
	// extension) enforces them.
	WAWDist uint32

	BlockID int32 // static basic-block id, -1 if unknown
	Index   int16 // index of the instruction within its basic block
	NumSrcs uint8 // number of source operands actually used
	Class   isa.Class
	Taken   bool  // actual branch direction (branches only)
	Flags   Flags // pre-assigned locality events (synthetic mode)
}

// IsBranch reports whether the instruction transfers control.
func (d *DynInst) IsBranch() bool { return d.Class.IsBranch() }

// Source produces a dynamic instruction stream. Next fills *out and
// reports whether an instruction was produced; once it returns false the
// stream is exhausted and subsequent calls must keep returning false.
type Source interface {
	Next(out *DynInst) bool
}

// SliceSource replays a pre-materialised stream. It is primarily used
// by tests and by the synthetic-trace pipeline when traces are small
// enough to hold in memory.
type SliceSource struct {
	Insts []DynInst
	pos   int
}

// NewSliceSource returns a Source over insts.
func NewSliceSource(insts []DynInst) *SliceSource {
	return &SliceSource{Insts: insts}
}

// Next implements Source.
func (s *SliceSource) Next(out *DynInst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*out = s.Insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the source to the beginning of the stream.
func (s *SliceSource) Reset() { s.pos = 0 }

// LimitSource truncates an underlying source after N instructions.
type LimitSource struct {
	Src  Source
	N    uint64
	seen uint64

	batch BatchSource // cached batched view of Src (see NextBatch)
}

// Next implements Source.
func (l *LimitSource) Next(out *DynInst) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(out) {
		return false
	}
	l.seen++
	return true
}

// Collect drains up to max instructions from src into a slice. A max of
// 0 means no limit. It streams through the batch interface (batch-native
// sources deliver chunks directly; plain sources are adapted) and never
// consumes past max.
func Collect(src Source, max int) []DynInst {
	return CollectBatch(Batched(src), max)
}

// FuncSource adapts a closure to the Source interface.
type FuncSource func(out *DynInst) bool

// Next implements Source.
func (f FuncSource) Next(out *DynInst) bool { return f(out) }
