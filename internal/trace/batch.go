package trace

import "sync"

// DefaultBatchSize is the chunk length used by the batch adapters and
// by batch-native producers. It is large enough to amortise interface
// dispatch to well under a nanosecond per instruction and small enough
// (72 KiB of DynInst) to stay cache-resident.
const DefaultBatchSize = 1024

// BatchSource produces the dynamic instruction stream in chunks,
// amortising per-instruction interface dispatch on the hot paths
// (functional execution, profiling, synthetic generation, fetch).
//
// Contract: NextBatch fills a prefix of dst and returns its length.
// Every element of dst[:n] must be fully initialised — dst may hold
// stale records recycled from a previous refill. A return of 0 means
// end of stream and is sticky: subsequent calls keep returning 0. A
// short (non-zero) return does NOT signal end of stream; callers must
// keep calling until 0. NextBatch must not retain dst.
type BatchSource interface {
	NextBatch(dst []DynInst) int
}

// batchPool recycles chunk buffers used by the adapters so steady-state
// streaming does not allocate.
var batchPool = sync.Pool{
	New: func() any { return make([]DynInst, DefaultBatchSize) },
}

// GetBatch returns a DefaultBatchSize chunk buffer from the shared
// pool; return it with PutBatch when done.
func GetBatch() []DynInst { return batchPool.Get().([]DynInst) }

// PutBatch returns a chunk buffer obtained from GetBatch to the pool.
func PutBatch(buf []DynInst) {
	if cap(buf) >= DefaultBatchSize {
		batchPool.Put(buf[:DefaultBatchSize])
	}
}

// batcher adapts a per-instruction Source to BatchSource.
type batcher struct {
	src Source
	eof bool
}

// Batched returns a BatchSource view of src. If src already implements
// BatchSource it is returned directly, so adapting is free for
// batch-native producers and chains of adapters collapse.
func Batched(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batcher{src: src}
}

// NextBatch implements BatchSource.
func (b *batcher) NextBatch(dst []DynInst) int {
	if b.eof {
		return 0
	}
	n := 0
	for n < len(dst) && b.src.Next(&dst[n]) {
		n++
	}
	if n < len(dst) {
		b.eof = true
	}
	return n
}

// unbatcher adapts a BatchSource to the per-instruction Source
// interface, refilling a pooled chunk as needed.
type unbatcher struct {
	src  BatchSource
	buf  []DynInst
	pos  int
	n    int
	done bool
}

// Unbatched returns a Source view of src. If src already implements
// Source it is returned directly.
func Unbatched(src BatchSource) Source {
	if s, ok := src.(Source); ok {
		return s
	}
	return &unbatcher{src: src}
}

// Next implements Source.
func (u *unbatcher) Next(out *DynInst) bool {
	for u.pos >= u.n {
		if u.done {
			return false
		}
		if u.buf == nil {
			u.buf = GetBatch()
		}
		u.n = u.src.NextBatch(u.buf)
		u.pos = 0
		if u.n == 0 {
			u.done = true
			PutBatch(u.buf)
			u.buf = nil
			return false
		}
	}
	*out = u.buf[u.pos]
	u.pos++
	return true
}

// NextBatch implements BatchSource on SliceSource: the stream is
// already materialised, so chunks are copied straight out of the
// backing slice.
func (s *SliceSource) NextBatch(dst []DynInst) int {
	n := copy(dst, s.Insts[s.pos:])
	s.pos += n
	return n
}

// NextBatch implements BatchSource on LimitSource, clipping the final
// chunk at the limit. The inner batched view is cached across calls so
// adapter state (buffered lookahead is none — batcher pulls exactly
// what is asked) survives between refills.
func (l *LimitSource) NextBatch(dst []DynInst) int {
	if l.seen >= l.N {
		return 0
	}
	if l.batch == nil {
		l.batch = Batched(l.Src)
	}
	if rem := l.N - l.seen; uint64(len(dst)) > rem {
		dst = dst[:rem]
	}
	n := l.batch.NextBatch(dst)
	l.seen += uint64(n)
	return n
}

// CollectBatch drains up to max instructions from src into a slice
// through the batch interface. A max of 0 means no limit.
func CollectBatch(src BatchSource, max int) []DynInst {
	var out []DynInst
	buf := GetBatch()
	defer PutBatch(buf)
	for {
		chunk := buf
		if max > 0 {
			if rem := max - len(out); rem < len(chunk) {
				chunk = chunk[:rem]
			}
		}
		n := src.NextBatch(chunk)
		if n == 0 {
			return out
		}
		out = append(out, chunk[:n]...)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}
