package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

func sampleTrace(n int) []DynInst {
	out := make([]DynInst, n)
	for i := range out {
		out[i] = DynInst{
			Seq:     uint64(i),
			PC:      0x400000 + uint64(i)*8,
			NextPC:  0x400000 + uint64(i+1)*8,
			EffAddr: uint64(i) * 64,
			Class:   isa.Class(i % int(isa.NumClasses)),
			NumSrcs: uint8(i % 3),
			BlockID: int32(i % 7),
			Index:   int16(i % 5),
			Taken:   i%2 == 0,
			Flags:   Flags(i % 256),
			WAWDist: uint32(i % 100),
		}
		for op := 0; op < 3; op++ {
			out[i].DepDist[op] = uint32((i + op) % 513)
		}
	}
	return out
}

func TestTraceFileRoundTrip(t *testing.T) {
	orig := sampleTrace(1000)
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceSource(orig))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("wrote %d records", n)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(orig) {
		t.Fatalf("read %d records, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("record %d changed:\n%+v\n%+v", i, got[i], orig[i])
		}
	}
}

func TestTraceFileEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if n, err := WriteTrace(&buf, NewSliceSource(nil)); err != nil || n != 0 {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var d DynInst
	if r.Next(&d) {
		t.Error("empty trace produced a record")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported as error: %v", r.Err())
	}
}

func TestTraceFileRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Right magic, wrong version.
	bad := append([]byte("STRC"), 9, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestTraceFileTruncated(t *testing.T) {
	orig := sampleTrace(10)
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, NewSliceSource(orig)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(r, 0)
	if len(got) != 9 {
		t.Errorf("truncated trace yielded %d records, want 9", len(got))
	}
	if r.Err() == nil {
		t.Error("truncation should surface as an error")
	}
}
