package trace

import "testing"

// seqInsts builds n distinguishable instructions.
func seqInsts(n int) []DynInst {
	out := make([]DynInst, n)
	for i := range out {
		out[i].Seq = uint64(i)
		out[i].PC = uint64(i) * 8
	}
	return out
}

// checkStream verifies that insts are the first len(insts) records of
// the canonical sequence.
func checkStream(t *testing.T, insts []DynInst, want int) {
	t.Helper()
	if len(insts) != want {
		t.Fatalf("got %d instructions, want %d", len(insts), want)
	}
	for i, d := range insts {
		if d.Seq != uint64(i) || d.PC != uint64(i)*8 {
			t.Fatalf("instruction %d corrupted: %+v", i, d)
		}
	}
}

func TestBatchedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, DefaultBatchSize - 1, DefaultBatchSize, DefaultBatchSize + 1, 3 * DefaultBatchSize} {
		src := NewSliceSource(seqInsts(n))
		got := Collect(Unbatched(Batched(src)), 0)
		checkStream(t, got, n)
	}
}

// TestBatcherAdaptsPlainSource forces the pull-loop adapter (FuncSource
// does not implement BatchSource) and checks sticky EOF.
func TestBatcherAdaptsPlainSource(t *testing.T) {
	const n = DefaultBatchSize + 7
	insts := seqInsts(n)
	pos := 0
	var plain Source = FuncSource(func(out *DynInst) bool {
		if pos >= len(insts) {
			return false
		}
		*out = insts[pos]
		pos++
		return true
	})
	bs := Batched(plain)
	if _, ok := bs.(*batcher); !ok {
		t.Fatalf("expected pull-loop adapter, got %T", bs)
	}
	buf := make([]DynInst, DefaultBatchSize)
	var got []DynInst
	for {
		k := bs.NextBatch(buf)
		if k == 0 {
			break
		}
		got = append(got, buf[:k]...)
	}
	checkStream(t, got, n)
	for i := 0; i < 3; i++ {
		if k := bs.NextBatch(buf); k != 0 {
			t.Fatalf("EOF not sticky: NextBatch returned %d", k)
		}
	}
}

// TestLimitSourceBatchMidChunk puts the limit in the middle of a chunk:
// the final chunk must be clipped exactly at N and the underlying
// source must not be consumed past it.
func TestLimitSourceBatchMidChunk(t *testing.T) {
	const limit = DefaultBatchSize + DefaultBatchSize/2
	under := NewSliceSource(seqInsts(4 * DefaultBatchSize))
	l := &LimitSource{Src: under, N: limit}
	buf := make([]DynInst, DefaultBatchSize)
	var got []DynInst
	for {
		k := l.NextBatch(buf)
		if k == 0 {
			break
		}
		got = append(got, buf[:k]...)
	}
	checkStream(t, got, limit)
	// The next record of the underlying stream must still be available:
	// the limit clip may not over-consume.
	var d DynInst
	if !under.Next(&d) || d.Seq != limit {
		t.Fatalf("underlying source over-consumed: next=%+v", d)
	}
}

// TestLimitSourceBatchEmptyFinalChunk exhausts the limit exactly on a
// chunk boundary: the final NextBatch call must return an empty (zero)
// chunk, sticky thereafter.
func TestLimitSourceBatchEmptyFinalChunk(t *testing.T) {
	const limit = 2 * DefaultBatchSize
	l := &LimitSource{Src: NewSliceSource(seqInsts(4 * DefaultBatchSize)), N: limit}
	buf := make([]DynInst, DefaultBatchSize)
	total := 0
	for i := 0; i < 2; i++ {
		if k := l.NextBatch(buf); k != DefaultBatchSize {
			t.Fatalf("chunk %d: got %d, want full chunk", i, k)
		}
		total += DefaultBatchSize
	}
	for i := 0; i < 3; i++ {
		if k := l.NextBatch(buf); k != 0 {
			t.Fatalf("expected empty final chunk, got %d", k)
		}
	}
	if total != limit {
		t.Fatalf("delivered %d, want %d", total, limit)
	}
}

// TestLimitSourceShortUnderlying checks the limit does not mask a
// shorter underlying stream.
func TestLimitSourceShortUnderlying(t *testing.T) {
	const n = 100
	l := &LimitSource{Src: NewSliceSource(seqInsts(n)), N: 1000}
	got := CollectBatch(l, 0)
	checkStream(t, got, n)
}

func TestCollectMax(t *testing.T) {
	for _, tc := range []struct{ n, max, want int }{
		{3 * DefaultBatchSize, 0, 3 * DefaultBatchSize},
		{3 * DefaultBatchSize, DefaultBatchSize + 13, DefaultBatchSize + 13},
		{10, 100, 10},
		{0, 5, 0},
	} {
		src := NewSliceSource(seqInsts(tc.n))
		got := Collect(src, tc.max)
		checkStream(t, got, tc.want)
		if tc.max > 0 && tc.n > tc.max {
			// Collect must not consume past max.
			var d DynInst
			if !src.Next(&d) || d.Seq != uint64(tc.max) {
				t.Fatalf("Collect over-consumed: next=%+v", d)
			}
		}
	}
}

// TestUnbatchedIdentity checks that adapting in either direction is
// free when the source is already of the requested shape.
func TestUnbatchedIdentity(t *testing.T) {
	s := NewSliceSource(seqInsts(1))
	if Batched(s) != BatchSource(s) {
		t.Fatal("Batched re-wrapped a batch-native source")
	}
	if Unbatched(s) != Source(s) {
		t.Fatal("Unbatched re-wrapped a plain source")
	}
}

// TestUnbatcherStaleBuffer checks the contract that producers fully
// initialise dst[:n]: the unbatcher recycles its chunk buffer, so a
// producer writing partial records would leak stale fields.
func TestUnbatcherStaleBuffer(t *testing.T) {
	const n = 2*DefaultBatchSize + 5
	u := Unbatched(Batched(FuncSource(func(out *DynInst) bool { return false })))
	var d DynInst
	if u.Next(&d) {
		t.Fatal("empty stream produced an instruction")
	}
	src := NewSliceSource(seqInsts(n))
	got := Collect(Unbatched(&forceBatch{src: src}), 0)
	checkStream(t, got, n)
}

// forceBatch hides SliceSource's Source methods so Unbatched must wrap.
type forceBatch struct{ src *SliceSource }

func (f *forceBatch) NextBatch(dst []DynInst) int { return f.src.NextBatch(dst) }
