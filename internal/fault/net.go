package fault

import (
	"fmt"
	"io"
	"net"
	"net/http"
)

// Network-shaped injection sites, honoured by Transport. They model the
// three ways a remote peer hurts in practice: it is unreachable, it is
// slow, or it dies mid-response. Unit tests and the chaos suite share
// these through the same Injector rules as the disk and job sites.
const (
	// SiteNetRefused fails the request before any bytes are sent, with
	// an error shaped like a TCP connection refusal — a dead or
	// partitioned peer.
	SiteNetRefused = "net.refused"
	// SiteNetSlow is evaluated before the request is forwarded; a
	// delay-only rule here models a slow peer or congested link (the
	// caller's per-RPC deadline and hedging must cope).
	SiteNetSlow = "net.slow"
	// SiteNetTruncate cuts the response body partway through — a peer
	// that crashed mid-send. The bytes that do arrive are genuine, so
	// only end-to-end validation (the envelope CRC) can catch it.
	SiteNetTruncate = "net.truncate"
)

// Transport is an http.RoundTripper that injects network-shaped faults
// around a base transport. A nil Injector (or no rules) forwards every
// request untouched, so production wiring can install it
// unconditionally. Like every injector hook, decisions are driven by
// the Injector's seeded source — a serial request sequence sees a
// deterministic fault schedule.
type Transport struct {
	// Base performs real requests; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Inject supplies the fault schedule; nil injects nothing.
	Inject *Injector
}

// RoundTrip evaluates the network sites in wire order: refusal before
// any bytes move, slowness before the request is forwarded, truncation
// on the way back.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.Inject.Fire(SiteNetRefused); err != nil {
		// Shape the failure like the OS would: callers matching on
		// net.OpError or syscall-ish text treat it as a dead peer.
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: fakeAddr(req.URL.Host),
			Err: fmt.Errorf("connect: connection refused: %w", err)}
	}
	// A delay-only rule sleeps inside Fire; any Err it carries also
	// kills the request (a peer so slow the link gave up).
	if err := t.Inject.Fire(SiteNetSlow); err != nil {
		return nil, &net.OpError{Op: "read", Net: "tcp", Addr: fakeAddr(req.URL.Host),
			Err: fmt.Errorf("i/o timeout: %w", err)}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if ferr := t.Inject.Fire(SiteNetTruncate); ferr != nil {
		limit := resp.ContentLength / 2
		if limit <= 0 {
			limit = 64
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: limit}
	}
	return resp, nil
}

// fakeAddr satisfies net.Addr for synthesized OpErrors.
type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

// truncatedBody delivers the first remain bytes of the real body, then
// reports an unexpected EOF — the reader's view of a connection that
// died mid-transfer.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
