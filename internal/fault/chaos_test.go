// Chaos tests drive the whole daemon through injected disk failures,
// job panics, slow jobs and a simulated restart mid-sweep, asserting
// the robustness contract end to end: no lost or duplicated sweep
// points, resumed results byte-identical to an undisturbed serial run,
// and corrupted cache files quarantined and transparently re-profiled.
// They live in package fault_test so they can import the service
// package (which itself imports fault) without a cycle, and run in CI
// under -race via `go test -race -run Chaos`.
package fault_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

func chaosServer(t *testing.T, dir string, workers int, in *fault.Injector) (*service.Server, *httptest.Server) {
	t.Helper()
	svc, err := service.New(service.Options{
		Workers:    workers,
		CacheSize:  4,
		JobTimeout: time.Minute,
		CacheDir:   dir,
		Retry:      service.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Faults:     in,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close(context.Background())
	})
	return svc, ts
}

func chaosPost(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

var chaosSpec = service.ProfileSpec{Workload: "vpr", K: 1, N: 20_000, Seed: 1}

func chaosSweepReq() service.SweepRequest {
	return service.SweepRequest{Profile: chaosSpec, Grid: "quick", Target: 5_000}
}

// TestChaosRestartMidSweep is the headline scenario: a daemon suffering
// injected disk-write failures, a profiling failure, a job panic and
// slow jobs gets killed mid-sweep (4 of 9 points die), restarts on the
// same cache-dir, and must finish the sweep by recomputing exactly the
// missing points — producing results byte-identical to an undisturbed
// serial daemon's.
func TestChaosRestartMidSweep(t *testing.T) {
	// Reference: an undisturbed single-worker (serial) daemon.
	_, goldenTS := chaosServer(t, t.TempDir(), 1, nil)
	var golden service.SweepResponse
	if code, body := chaosPost(t, goldenTS.URL+"/v1/sweep", chaosSweepReq(), &golden); code != 200 {
		t.Fatalf("golden sweep: %d %s", code, body)
	}
	goldenJSON, _ := json.Marshal(golden.Results)

	// Life 1: everything hurts.
	dir := t.TempDir()
	in := fault.New(42)
	in.Set(service.SiteProfileJob, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	in.Set(service.SiteStoreWrite, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	svc1, ts1 := chaosServer(t, dir, 4, in)

	// Profiling survives one injected job failure (retried) and one
	// injected disk-write failure (save is best-effort).
	var prof service.ProfileResponse
	if code, body := chaosPost(t, ts1.URL+"/v1/profile", service.ProfileRequest{ProfileSpec: chaosSpec}, &prof); code != 200 {
		t.Fatalf("profile under faults: %d %s", code, body)
	}
	if in.Fired(service.SiteProfileJob) != 1 || in.Fired(service.SiteStoreWrite) != 1 {
		t.Fatalf("faults not exercised: job=%d write=%d",
			in.Fired(service.SiteProfileJob), in.Fired(service.SiteStoreWrite))
	}
	if st := svc1.Store().Stats(); st.SaveFailures != 1 {
		t.Errorf("store save failure not counted: %+v", st)
	}

	// A panicking then slow simulate job: the panic is isolated and
	// retried, the delay just rides along.
	in.Set(service.SiteSimulateJob, fault.Rule{Prob: 1, Times: 1, Panic: "chaos monkey", Delay: 5 * time.Millisecond})
	sim := service.SimulateRequest{Profile: chaosSpec, Target: 5_000}
	if code, body := chaosPost(t, ts1.URL+"/v1/simulate", sim, nil); code != 200 {
		t.Fatalf("simulate under panic: %d %s", code, body)
	}

	// The "crash": 4 of the 9 sweep points fail, the request errors, and
	// the daemon goes down with a partial journal on disk.
	in.Set(service.SiteSweepJob, fault.Rule{Prob: 1, Times: 4, Err: fault.ErrInjected})
	if code, body := chaosPost(t, ts1.URL+"/v1/sweep", chaosSweepReq(), nil); code == 200 {
		t.Fatalf("interrupted sweep reported success: %s", body)
	}
	svc1.Close(context.Background())

	// Life 2: same cache-dir, no faults. The sweep must resume.
	svc2, ts2 := chaosServer(t, dir, 4, nil)
	var resumedResp service.SweepResponse
	if code, body := chaosPost(t, ts2.URL+"/v1/sweep", chaosSweepReq(), &resumedResp); code != 200 {
		t.Fatalf("resumed sweep: %d %s", code, body)
	}
	if resumedResp.Resumed != 5 {
		t.Errorf("resumed %d points, want 5 (4 were lost to the crash)", resumedResp.Resumed)
	}
	if resumedResp.Points != 9 || len(resumedResp.Results) != 9 {
		t.Fatalf("point accounting broken: %+v", resumedResp)
	}
	resumedJSON, _ := json.Marshal(resumedResp.Results)
	if string(resumedJSON) != string(goldenJSON) {
		t.Errorf("resumed sweep differs from undisturbed serial run:\n%s\nvs\n%s", resumedJSON, goldenJSON)
	}
	// No duplicated work: life 2 profiled once (life 1's save was the
	// injected write failure) and recomputed exactly the 4 missing
	// points — 5 pool jobs in total.
	if st := svc2.Pool().Stats(); st.Completed != 5 {
		t.Errorf("life 2 ran %d pool jobs, want 5 (1 profile + 4 missing points)", st.Completed)
	}

	// A third identical sweep is served entirely from the journal.
	var again service.SweepResponse
	if code, _ := chaosPost(t, ts2.URL+"/v1/sweep", chaosSweepReq(), &again); code != 200 || again.Resumed != 9 {
		t.Errorf("replayed sweep: code=%d resumed=%d", code, again.Resumed)
	}
}

// TestChaosCorruptCacheFile corrupts a persisted profile on disk
// between daemon lives: the next life must quarantine the file (never
// serve it), transparently re-profile, and heal the store.
func TestChaosCorruptCacheFile(t *testing.T) {
	dir := t.TempDir()
	svc1, ts1 := chaosServer(t, dir, 2, nil)
	var prof service.ProfileResponse
	if code, body := chaosPost(t, ts1.URL+"/v1/profile", service.ProfileRequest{ProfileSpec: chaosSpec}, &prof); code != 200 {
		t.Fatalf("profile: %d %s", code, body)
	}
	svc1.Close(context.Background())

	// Bit-rot strikes the stored profile.
	path := svc1.Store().Path(service.ProfileKey{Workload: "vpr", K: 1, N: 20_000, Seed: 1})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := chaosServer(t, dir, 2, nil)
	var prof2 service.ProfileResponse
	if code, body := chaosPost(t, ts2.URL+"/v1/profile", service.ProfileRequest{ProfileSpec: chaosSpec}, &prof2); code != 200 {
		t.Fatalf("profile over corrupt store: %d %s", code, body)
	}
	if prof2.Nodes != prof.Nodes || prof2.Edges != prof.Edges || prof2.TotalInstructions != prof.TotalInstructions {
		t.Errorf("re-profiled graph differs: %+v vs %+v", prof2, prof)
	}
	st := svc2.Store().Stats()
	if st.Quarantined != 1 || st.Saves != 1 {
		t.Errorf("store stats after corruption: %+v", st)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*")); len(matches) != 1 {
		t.Errorf("quarantine holds %d files, want 1", len(matches))
	}
	if st.Misses != 0 {
		t.Errorf("corrupt file double-counted as a miss: %+v", st)
	}
	// The healed store serves the fresh copy to a third life without
	// profiling.
	svc2.Close(context.Background())
	svc3, ts3 := chaosServer(t, dir, 2, nil)
	var prof3 service.ProfileResponse
	if code, _ := chaosPost(t, ts3.URL+"/v1/profile", service.ProfileRequest{ProfileSpec: chaosSpec}, &prof3); code != 200 {
		t.Fatal("profile from healed store failed")
	}
	if svc3.Pool().Stats().Completed != 0 {
		t.Error("healed store still re-profiled")
	}
}
