package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if in.Hits("anything") != 0 || in.Fired("anything") != 0 {
		t.Error("nil injector counted")
	}
}

func TestRuleTimesBoundsInjections(t *testing.T) {
	in := New(1)
	in.Set("disk", Rule{Prob: 1, Times: 3, Err: ErrInjected})
	failures := 0
	for i := 0; i < 10; i++ {
		if err := in.Fire("disk"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong error: %v", err)
			}
			failures++
		}
	}
	if failures != 3 || in.Fired("disk") != 3 || in.Hits("disk") != 10 {
		t.Errorf("failures=%d fired=%d hits=%d, want 3/3/10", failures, in.Fired("disk"), in.Hits("disk"))
	}
	// Re-Set restarts the budget.
	in.Set("disk", Rule{Prob: 1, Times: 1, Err: ErrInjected})
	if err := in.Fire("disk"); err == nil {
		t.Error("budget not restarted by Set")
	}
}

func TestProbabilisticScheduleIsDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed)
		in.Set("s", Rule{Prob: 0.5, Err: ErrInjected})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("s") != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	injected := 0
	for _, v := range a {
		if v {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("p=0.5 rule injected %d/%d times", injected, len(a))
	}
}

func TestPanicAndDelayRules(t *testing.T) {
	in := New(7)
	in.Set("job", Rule{Prob: 1, Times: 1, Panic: "boom"})
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "boom") {
				t.Errorf("panic rule did not panic: %v", r)
			}
		}()
		in.Fire("job")
	}()
	if err := in.Fire("job"); err != nil {
		t.Errorf("exhausted panic rule still fired: %v", err)
	}

	in.Set("slow", Rule{Prob: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("slow"); err != nil {
		t.Errorf("delay-only rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("delay rule slept only %v", d)
	}
}

func TestClearRemovesRule(t *testing.T) {
	in := New(3)
	in.Set("s", Rule{Prob: 1, Err: ErrInjected})
	if in.Fire("s") == nil {
		t.Fatal("rule not active")
	}
	in.Clear("s")
	if err := in.Fire("s"); err != nil {
		t.Errorf("cleared rule still fires: %v", err)
	}
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	in := New(11)
	in.Set("s", Rule{Prob: 0.5, Times: 100, Err: ErrInjected})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				in.Fire("s")
			}
		}()
	}
	wg.Wait()
	if f := in.Fired("s"); f != 100 {
		t.Errorf("Times bound violated under concurrency: fired %d", f)
	}
	if h := in.Hits("s"); h != 1600 {
		t.Errorf("hits %d, want 1600", h)
	}
}
