// Package fault is a deterministic fault-injection harness for the
// service layer's durability machinery. Production code calls
// Injector.Fire at named sites (disk writes, journal appends, job
// bodies); a nil *Injector is a no-op, so the hooks cost one nil check
// when chaos testing is off. Tests construct a seeded Injector and
// attach Rules — probabilistic errors, bounded failure bursts, panics,
// and slow-downs — then assert the system's invariants survive.
//
// Determinism: one seeded math/rand source drives every probabilistic
// decision under a single mutex, so a serial sequence of Fire calls
// injects an identical fault schedule on every run. Under concurrency
// the interleaving of draws varies with the scheduler; chaos tests that
// need an exact schedule use Prob=1 with a Times bound, which is
// scheduler-independent (any N evaluations inject, the rest pass).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the conventional error for injected failures; rules
// may carry any error, but tests that only care whether a fault fired
// use this sentinel.
var ErrInjected = errors.New("fault: injected failure")

// Rule configures the behaviour of one injection site.
type Rule struct {
	// Prob is the injection probability per Fire evaluation; <= 0
	// disables the rule, >= 1 injects on every evaluation (without
	// consuming a random draw, keeping other sites' schedules stable).
	Prob float64
	// Times bounds the total number of injections (0 = unlimited).
	Times int
	// Err is returned from Fire on injection. A nil Err with no Panic
	// makes the rule delay-only.
	Err error
	// Panic, if non-empty, makes Fire panic with this message instead
	// of returning — exercising recover paths.
	Panic string
	// Delay is slept before returning or panicking — a slow disk or a
	// slow job.
	Delay time.Duration
}

// Injector evaluates rules at named sites. The zero value is not
// usable; construct with New. A nil *Injector is valid and inert.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]Rule
	hits  map[string]uint64
	fired map[string]uint64
}

// New returns an Injector whose probabilistic decisions are driven by
// the given seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]Rule),
		hits:  make(map[string]uint64),
		fired: make(map[string]uint64),
	}
}

// Set installs (or replaces) the rule for a site. The injection budget
// (Times accounting) restarts from zero.
func (in *Injector) Set(site string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = r
	in.fired[site] = 0
}

// Clear removes the rule for a site; subsequent Fires pass.
func (in *Injector) Clear(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, site)
}

// Fire evaluates the site's rule: it sleeps the rule's Delay, panics if
// the rule says so, and otherwise returns the rule's Err. Sites without
// a rule — and every site on a nil Injector — return nil immediately.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	r, ok := in.rules[site]
	if !ok || r.Prob <= 0 ||
		(r.Times > 0 && in.fired[site] >= uint64(r.Times)) ||
		(r.Prob < 1 && in.rng.Float64() >= r.Prob) {
		in.mu.Unlock()
		return nil
	}
	in.fired[site]++
	in.mu.Unlock()

	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic != "" {
		panic(fmt.Sprintf("fault: injected panic at %s: %s", site, r.Panic))
	}
	return r.Err
}

// Hits reports how many times the site was evaluated (rule or not) —
// proof the production code actually reaches the hook.
func (in *Injector) Hits(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired reports how many injections the site has performed.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}
