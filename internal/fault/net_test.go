package fault_test

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func netTestServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestNetTransportPassthrough(t *testing.T) {
	ts := netTestServer(t, "hello")
	for _, in := range []*fault.Injector{nil, fault.New(1)} {
		client := &http.Client{Transport: &fault.Transport{Inject: in}}
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatalf("passthrough failed: %v", err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(data) != "hello" {
			t.Fatalf("passthrough body %q err %v", data, err)
		}
	}
}

func TestNetTransportRefused(t *testing.T) {
	ts := netTestServer(t, "hello")
	in := fault.New(1)
	in.Set(fault.SiteNetRefused, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	client := &http.Client{Transport: &fault.Transport{Inject: in}}

	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("injected refusal did not fail the request")
	}
	var oe *net.OpError
	if !errors.As(err, &oe) || !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("refusal not shaped like a dial error: %v", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("injected cause not preserved: %v", err)
	}
	// The Times budget is spent: the next request goes through.
	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("second request after budget spent: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestNetTransportSlow(t *testing.T) {
	ts := netTestServer(t, "hello")
	in := fault.New(1)
	in.Set(fault.SiteNetSlow, fault.Rule{Prob: 1, Times: 1, Delay: 30 * time.Millisecond})
	client := &http.Client{Transport: &fault.Transport{Inject: in}}

	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("delay-only rule failed the request: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request completed in %v, want >= 30ms injected delay", d)
	}
}

func TestNetTransportTruncatedBody(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef" // 32 bytes, truncated to 16
	ts := netTestServer(t, body)
	in := fault.New(1)
	in.Set(fault.SiteNetTruncate, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	client := &http.Client{Transport: &fault.Transport{Inject: in}}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("truncation must fail the read, not the round trip: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF reading truncated body, got %v", err)
	}
	if len(data) >= len(body) {
		t.Errorf("body not truncated: got %d bytes of %d", len(data), len(body))
	}
	if string(data) != body[:len(data)] {
		t.Errorf("delivered prefix corrupted: %q", data)
	}
}
