package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical spans extend the flat per-request stage recorder with
// child-of semantics that survive the cluster wire: every span carries
// its own ID and its parent's, the parent ID propagates to peers in a
// header next to X-Request-Id, and peers ship their span slices back
// piggybacked on sub-sweep responses. Assembling the slices from every
// node that touched a request yields one coherent tree — coordinator
// partitioning, peer sub-sweeps, graph fetches, lockstep cohorts,
// fidelity escalations and oracle decisions, each attributed to the
// node that did the work.
//
// Like Recorder and FlightRecorder, a nil *Tracer is the valid disabled
// instance: StartSpan on a nil tracer returns a zero ActiveSpan whose
// Annotate and End are no-ops and allocates nothing, so library callers
// (CLI, tests, benchmarks) pay nothing when tracing is off.

// TraceSpan is one completed span on the wire and in the trace store.
type TraceSpan struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	// Node names the daemon that executed the span — the coordinator's
	// advertised URL or "local" on an unclustered node.
	Node        string            `json:"node,omitempty"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationS   float64           `json:"duration_s"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// spanIDSeq backs the fallback span ID when the random source fails.
var spanIDSeq atomic.Uint64

// NewSpanID mints an 8-hex-character span ID, unique enough within one
// trace. Like NewTraceID it never fails.
func NewSpanID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := spanIDSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// spanIDKey carries the current span's ID through context so children
// started anywhere below it parent correctly.
type spanIDKey struct{}

// WithSpanID returns a context under which new spans become children of
// the given span ID.
func WithSpanID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, spanIDKey{}, id)
}

// SpanIDFromContext returns the enclosing span's ID, or "" at the root.
func SpanIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(spanIDKey{}).(string)
	return id
}

// tracerKey carries the request's tracer through context, reachable
// from any package (the cluster coordinator starts dispatch spans
// without access to the service layer's internals).
type tracerKey struct{}

// WithTracer returns a context carrying the tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFromContext returns the context's tracer, or nil when the
// request is not being traced — the nil result is directly usable, all
// Tracer methods accept a nil receiver.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// maxSpansPerTrace bounds what one request may accumulate, so a
// pathological sweep cannot grow a span slice without limit. Beyond the
// cap new spans are counted but dropped.
const maxSpansPerTrace = 8192

// Tracer collects the spans one request produces on one node.
type Tracer struct {
	traceID string
	node    string

	mu      sync.Mutex
	spans   []TraceSpan
	dropped int
}

// NewTracer returns a tracer stamping spans with the trace ID and node
// name.
func NewTracer(traceID, node string) *Tracer {
	return &Tracer{traceID: traceID, node: node}
}

// TraceID returns the tracer's trace ID ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// ActiveSpan is an in-flight span. The zero value (from a nil tracer)
// is a valid no-op span.
type ActiveSpan struct {
	t      *Tracer
	name   string
	id     string
	parent string
	start  time.Time
	attrs  map[string]string
}

// StartSpan opens a span named name as a child of the context's current
// span and returns a context under which further spans nest below it.
// On a nil tracer it returns ctx unchanged and a no-op span, without
// allocating.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, ActiveSpan) {
	if t == nil {
		return ctx, ActiveSpan{}
	}
	sp := ActiveSpan{
		t:      t,
		name:   name,
		id:     NewSpanID(),
		parent: SpanIDFromContext(ctx),
		start:  time.Now(),
	}
	return WithSpanID(ctx, sp.id), sp
}

// Annotate attaches a key/value attribute to the span. No-op on the
// zero span.
func (s *ActiveSpan) Annotate(k, v string) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End closes the span and records it on its tracer. No-op on the zero
// span. End is not idempotent-checked; call it exactly once.
func (s *ActiveSpan) End() {
	if s.t == nil {
		return
	}
	span := TraceSpan{
		TraceID:     s.t.traceID,
		SpanID:      s.id,
		ParentID:    s.parent,
		Name:        s.name,
		Node:        s.t.node,
		StartUnixNS: s.start.UnixNano(),
		DurationS:   time.Since(s.start).Seconds(),
		Attrs:       s.attrs,
	}
	s.t.mu.Lock()
	if len(s.t.spans) < maxSpansPerTrace {
		s.t.spans = append(s.t.spans, span)
	} else {
		s.t.dropped++
	}
	s.t.mu.Unlock()
}

// Import merges spans another node shipped back (a peer's sub-sweep
// slice) into this tracer, preserving their origin node stamps.
func (t *Tracer) Import(spans []TraceSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		if len(t.spans) >= maxSpansPerTrace {
			t.dropped += len(spans)
			break
		}
		if sp.TraceID == "" {
			sp.TraceID = t.traceID
		}
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of everything recorded so far (nil on a nil
// tracer).
func (t *Tracer) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns how many spans the per-trace cap discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceNode is one span with its resolved children.
type TraceNode struct {
	TraceSpan
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is the assembled view of one trace: every span every node
// reported, stitched into root trees. Spans whose parent never arrived
// (a late or lost peer slice) surface as additional roots rather than
// failing the assembly — a partial tree always renders.
type TraceTree struct {
	TraceID string `json:"trace_id"`
	Spans   int    `json:"spans"`
	// Nodes lists the distinct daemons that contributed spans, sorted.
	Nodes []string     `json:"nodes"`
	Roots []*TraceNode `json:"roots"`
}

// AssembleTree stitches a flat span slice into a TraceTree. Children
// sort by start time (then span ID) so rendering is deterministic;
// duplicate span IDs (a peer retry replaying a slice) keep their first
// occurrence.
func AssembleTree(traceID string, spans []TraceSpan) TraceTree {
	tree := TraceTree{TraceID: traceID}
	byID := make(map[string]*TraceNode, len(spans))
	order := make([]*TraceNode, 0, len(spans))
	nodes := make(map[string]bool)
	for _, sp := range spans {
		if sp.SpanID == "" || byID[sp.SpanID] != nil {
			continue
		}
		n := &TraceNode{TraceSpan: sp}
		byID[sp.SpanID] = n
		order = append(order, n)
		if sp.Node != "" {
			nodes[sp.Node] = true
		}
	}
	tree.Spans = len(order)
	for _, n := range order {
		if p := byID[n.ParentID]; p != nil && n.ParentID != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			tree.Roots = append(tree.Roots, n)
		}
	}
	sortNodes := func(ns []*TraceNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if ns[i].StartUnixNS != ns[j].StartUnixNS {
				return ns[i].StartUnixNS < ns[j].StartUnixNS
			}
			return ns[i].SpanID < ns[j].SpanID
		})
	}
	for _, n := range order {
		sortNodes(n.Children)
	}
	sortNodes(tree.Roots)
	for name := range nodes {
		tree.Nodes = append(tree.Nodes, name)
	}
	sort.Strings(tree.Nodes)
	return tree
}

// TraceStore retains the span slices of the most recent traces, keyed
// by trace ID, bounded by evicting whole traces in insertion order. It
// backs GET /v1/debug/trace/{id}. A nil store no-ops, and fanout
// sub-requests sharing one root trace ID accumulate into one entry.
type TraceStore struct {
	mu     sync.Mutex
	traces map[string][]TraceSpan
	order  []string
	cap    int
}

// NewTraceStore returns a store retaining up to capacity traces
// (minimum 16).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 16 {
		capacity = 16
	}
	return &TraceStore{traces: make(map[string][]TraceSpan, capacity), cap: capacity}
}

// Add appends spans under the trace ID, evicting the oldest trace when
// a new ID exceeds capacity.
func (s *TraceStore) Add(traceID string, spans []TraceSpan) {
	if s == nil || traceID == "" || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	held, known := s.traces[traceID]
	if !known {
		for len(s.order) >= s.cap {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, oldest)
		}
		s.order = append(s.order, traceID)
	}
	if room := maxSpansPerTrace - len(held); len(spans) > room {
		spans = spans[:room]
	}
	s.traces[traceID] = append(held, spans...)
}

// Get returns the spans retained for a trace ID and whether the trace
// is known.
func (s *TraceStore) Get(traceID string) ([]TraceSpan, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	spans, ok := s.traces[traceID]
	if !ok {
		return nil, false
	}
	out := make([]TraceSpan, len(spans))
	copy(out, spans)
	return out, true
}

// Len returns how many traces are retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
