package obs

import (
	"sync"
	"time"
)

// RequestEvent is one completed request as the flight recorder saw it:
// enough provenance to reconstruct what the daemon did for the request
// (which endpoint, which trace ID, whether the profile came from cache,
// what the degradation machinery did, where the time went) without
// external log storage.
type RequestEvent struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	TraceID  string    `json:"trace_id"`
	Endpoint string    `json:"endpoint"`
	Status   int       `json:"status"`

	DurationMS float64 `json:"duration_ms"`
	// StageMS breaks the request down by pipeline stage (profile,
	// reduce, generate, simulate) when a recorder ran.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`

	// Provenance and degradation outcomes.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Shed     bool   `json:"shed,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	Resumed  int    `json:"resumed,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	Error    string `json:"error,omitempty"`

	// Cluster provenance. Peer names the remote node involved: the peer
	// a profile was fetched from on request events, or the subject peer
	// on the coordinator's own "cluster.eject"/"cluster.readmit"/
	// "cluster.failover" events — the trail that lets /v1/debug/requests
	// explain why a request was rerouted. Failovers counts peers lost
	// (and re-partitioned around) while the request's sweep ran.
	Peer      string `json:"peer,omitempty"`
	Failovers int    `json:"failovers,omitempty"`

	// Oracle provenance: design points this request was served from the
	// durable result store (exact hits, ground truth) and from the
	// gated surrogate (flagged estimates) instead of simulating.
	StoreHits     int `json:"store_hits,omitempty"`
	SurrogateHits int `json:"surrogate_hits,omitempty"`

	// Spans counts the hierarchical trace spans the request produced on
	// this node (peer slices included on the coordinator) — the handle
	// /v1/debug/requests gives for "is there a tree worth fetching at
	// /v1/debug/trace/{id}?".
	Spans int `json:"spans,omitempty"`

	// Adaptive-fidelity outcomes (zero unless the request ran the
	// fidelity engine).
	Escalations   int     `json:"escalations,omitempty"`
	DetailedInsts uint64  `json:"detailed_insts,omitempty"`
	CIWidth       float64 `json:"ci_width,omitempty"`
}

// FlightRecorder keeps the last N request events in a fixed-size ring.
// It is the daemon's black box: always on, bounded memory, readable at
// GET /v1/debug/requests and dumped to the log when something goes
// badly wrong (a shed storm, a worker panic). Like Recorder, a nil
// *FlightRecorder is a valid disabled instance — every method no-ops —
// and the critical section is a single slot copy, so recording costs a
// short uncontended lock, never an allocation after construction.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []RequestEvent
	next int    // slot the next event lands in
	seq  uint64 // events ever recorded
}

// NewFlightRecorder returns a recorder holding the most recent size
// events (minimum 16).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 16 {
		size = 16
	}
	return &FlightRecorder{ring: make([]RequestEvent, size)}
}

// Record stores one event, evicting the oldest once the ring is full.
func (f *FlightRecorder) Record(ev RequestEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
	f.mu.Unlock()
}

// Recent returns up to n events, newest first (n <= 0 means everything
// retained). On a nil recorder it returns nil.
func (f *FlightRecorder) Recent(n int) []RequestEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	held := int(f.seq)
	if held > len(f.ring) {
		held = len(f.ring)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]RequestEvent, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// Size returns the ring capacity (0 on a nil recorder).
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total returns how many events were ever recorded (0 on nil).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}
