package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// ManifestVersion is bumped when the manifest schema changes shape.
const ManifestVersion = 1

// StageTiming is one pipeline stage's contribution to a run.
type StageTiming struct {
	Name         string  `json:"name"`
	DurationS    float64 `json:"duration_s"`
	Instructions uint64  `json:"instructions,omitempty"`
	InstPerSec   float64 `json:"inst_per_sec,omitempty"`
}

// ManifestMetrics is the final-metrics block of a run manifest — the
// numbers the paper's evaluation argues about, in a stable wire form.
type ManifestMetrics struct {
	IPC              float64 `json:"ipc"`
	EPC              float64 `json:"epc"`
	EDP              float64 `json:"edp"`
	Instructions     uint64  `json:"instructions"`
	Cycles           uint64  `json:"cycles"`
	MispredictsPerKI float64 `json:"mispredicts_per_ki"`
	L1DMissRate      float64 `json:"l1d_miss_rate"`
	L2DMissRate      float64 `json:"l2d_miss_rate"`
	L1IMissRate      float64 `json:"l1i_miss_rate"`
	L2IMissRate      float64 `json:"l2i_miss_rate"`
}

// ManifestFidelity is the adaptive-fidelity block of a run manifest:
// how the engine spent its budget and how tight the interval it
// delivered is. Present only on runs that used the fidelity engine.
type ManifestFidelity struct {
	Confidence   float64 `json:"confidence"`
	TargetCI     float64 `json:"target_ci"`
	RelHalfWidth float64 `json:"rel_half_width"`
	Converged    bool    `json:"converged"`
	Strata       int     `json:"strata"`
	Escalations  int     `json:"escalations"`
	// DetailedInsts counts instructions run through the execution-driven
	// model (warm-up included); DetailedFrac is its share of the covered
	// stream.
	DetailedInsts uint64  `json:"detailed_insts"`
	DetailedFrac  float64 `json:"detailed_frac"`
	IPCLo         float64 `json:"ipc_lo"`
	IPCHi         float64 `json:"ipc_hi"`
}

// ManifestOracle is the serving-provenance block of a run manifest:
// how many of the run's design points were answered by each tier of
// the two-tier result oracle instead of being simulated. Estimated is
// true iff any point is a surrogate prediction — such a manifest
// records estimates, never ground truth, and must not seed golden
// corpora.
type ManifestOracle struct {
	StoreHits     int  `json:"store_hits"`
	SurrogateHits int  `json:"surrogate_hits"`
	Estimated     bool `json:"estimated"`
}

// ManifestCost is the cost-accounting block of a run manifest: where
// a sweep's wall time went, broken down by serving tier, plus which
// nodes executed points and how many answers are estimates rather than
// exact results. PointsByTier keys are the ledger tiers (resumed,
// store, surrogate, simulated); SecondsByTier shares the key set.
type ManifestCost struct {
	Points        int                `json:"points"`
	PointsByTier  map[string]int     `json:"points_by_tier"`
	SecondsByTier map[string]float64 `json:"seconds_by_tier"`
	Nodes         []string           `json:"nodes,omitempty"`
	Estimated     int                `json:"estimated,omitempty"`
}

// Manifest is the JSON run manifest a front end emits (statsim -stats,
// experiment artifacts): everything needed to reproduce the run plus
// where its time went.
type Manifest struct {
	Version   int    `json:"version"`
	Tool      string `json:"tool"`    // e.g. "statsim compare"
	Created   string `json:"created"` // RFC 3339
	GoVersion string `json:"go_version"`
	// TraceID ties the manifest to the request (daemon) or invocation
	// (CLI) that produced it — the same ID the structured logs and the
	// flight recorder carry.
	TraceID string `json:"trace_id,omitempty"`

	// Reproducibility inputs.
	ConfigFingerprint string `json:"config_fingerprint"`
	Workload          string `json:"workload,omitempty"`
	K                 int    `json:"k"`
	Seed              uint64 `json:"seed,omitempty"`
	SimSeed           uint64 `json:"sim_seed,omitempty"`
	Reduction         uint64 `json:"reduction,omitempty"`
	StreamLength      uint64 `json:"stream_length,omitempty"`

	// Where the time went.
	Stages     []StageTiming `json:"stages"`
	WallTimeS  float64       `json:"wall_time_s"`
	MaxProcs   int           `json:"gomaxprocs"`
	NumWorkers int           `json:"workers,omitempty"`

	// What came out.
	Metrics *ManifestMetrics `json:"metrics,omitempty"`
	// How adaptively it was computed, when the fidelity engine ran.
	Fidelity *ManifestFidelity `json:"fidelity,omitempty"`
	// Where the answers came from, when the result oracle served any.
	Oracle *ManifestOracle `json:"oracle,omitempty"`
	// Where the wall time went per serving tier and node, when the cost
	// ledger ran.
	Cost *ManifestCost `json:"cost,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamped now.
func NewManifest(tool string) Manifest {
	return Manifest{
		Version:   ManifestVersion,
		Tool:      tool,
		Created:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
}

// FillStages folds a recorder's spans into per-stage aggregate timings
// in pipeline order (profile, reduce, generate, simulate, reference,
// then anything else alphabetically-stable by first appearance).
func (m *Manifest) FillStages(rec *Recorder) {
	if rec == nil {
		return
	}
	if m.TraceID == "" {
		m.TraceID = rec.TraceID()
	}
	totals := rec.StageTotals()
	order := []string{StageProfile, StageReduce, StageGenerate, StageSimulate, StageReference}
	seen := make(map[string]bool, len(order))
	emit := func(name string) {
		t, ok := totals[name]
		if !ok || seen[name] {
			return
		}
		seen[name] = true
		st := StageTiming{Name: name, DurationS: t.DurationS, Instructions: t.Instructions}
		st.InstPerSec = t.InstPerSec()
		m.Stages = append(m.Stages, st)
		m.WallTimeS += t.DurationS
	}
	for _, name := range order {
		emit(name)
	}
	for _, s := range rec.Spans() { // preserve first-appearance order for extras
		emit(s.Name)
	}
}

// WriteJSON writes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Fingerprint returns a stable hex digest of any JSON-marshalable
// value — used to fingerprint microarchitecture configurations so a
// manifest pins exactly what was simulated. Two configs fingerprint
// equal iff their JSON forms are byte-identical (struct field order is
// fixed by the type, so this is deterministic for the same binary).
func Fingerprint(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Configurations are plain structs; a marshal failure is a
		// programming error surfaced loudly rather than silently hashed.
		panic(fmt.Sprintf("obs: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]) // 64 bits is plenty for identity
}
