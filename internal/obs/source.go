package obs

import (
	"time"

	"repro/internal/trace"
)

// TimedSource wraps a trace.Source and accumulates the wall-clock time
// spent inside Next — the synthetic-trace generator runs lazily,
// interleaved with simulation, so this is how generation time is
// separated from pure timing-simulation time when tracing is enabled.
// Wrap only when a recorder is live: the per-instruction clock reads
// are exactly the overhead the disabled path avoids.
type TimedSource struct {
	Src trace.Source

	batch trace.BatchSource // lazily built batched view of Src
	insts uint64
	dur   time.Duration
	now   func() time.Time
}

// NewTimedSource wraps src for generation-time attribution.
func NewTimedSource(src trace.Source) *TimedSource {
	return &TimedSource{Src: src, now: time.Now}
}

// Next implements trace.Source.
func (t *TimedSource) Next(d *trace.DynInst) bool {
	start := t.now()
	ok := t.Src.Next(d)
	t.dur += t.now().Sub(start)
	if ok {
		t.insts++
	}
	return ok
}

// NextBatch implements trace.BatchSource, timing whole-chunk refills —
// two clock reads per chunk instead of two per instruction, so tracing
// through the batch path costs even less than the per-instruction
// wrapper. Mixing Next and NextBatch on one TimedSource is not
// supported (each would consume the underlying stream independently).
func (t *TimedSource) NextBatch(dst []trace.DynInst) int {
	if t.batch == nil {
		t.batch = trace.Batched(t.Src)
	}
	start := t.now()
	n := t.batch.NextBatch(dst)
	t.dur += t.now().Sub(start)
	t.insts += uint64(n)
	return n
}

// Span returns the accumulated generation span (start offset is left
// zero; callers place it with Recorder.Record).
func (t *TimedSource) Span(name string) SpanData {
	return SpanData{Name: name, DurationS: t.dur.Seconds(), Instructions: t.insts}
}

// Instructions returns the number of instructions delivered so far.
func (t *TimedSource) Instructions() uint64 { return t.insts }

// Duration returns the accumulated time spent generating.
func (t *TimedSource) Duration() time.Duration { return t.dur }
