// Package obs is the observability layer of the statistical
// simulation pipeline: lightweight wall-clock spans around the
// profile → reduce → generate → simulate stages, and the run manifest
// that makes a measurement reproducible (config fingerprint, seeds,
// per-stage timings, final metrics).
//
// The design constraint is that observability must cost nothing when
// it is off: every front end threads a *Recorder through the pipeline,
// and a nil *Recorder is the disabled state. Span start/end on a nil
// recorder is a single pointer comparison — no allocation, no clock
// read, no atomic — so the hot simulate path pays (measurably, see the
// overhead guard test in the repo root) under 5% with tracing
// disabled. The per-cycle pipeline counters (cpu.PipeStats) are
// deliberately NOT part of this package: they are plain deterministic
// counters that belong to the simulation result itself and are always
// on.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage names shared by every front end, so the CLI manifest, the
// daemon's /metrics stage families and the experiment manifests all
// speak the same vocabulary.
const (
	StageProfile   = "profile"   // statistical profiling into an SFG
	StageReduce    = "reduce"    // graph reduction by factor R
	StageGenerate  = "generate"  // synthetic trace generation (stochastic walk)
	StageSimulate  = "simulate"  // trace-driven timing simulation
	StageReference = "reference" // execution-driven reference simulation
)

// SpanData is one completed span: a named stage with its wall-clock
// duration and, where meaningful, the number of instructions the stage
// processed (committed instructions for simulation stages, stream
// length for profiling).
type SpanData struct {
	Name         string  `json:"name"`
	StartOffsetS float64 `json:"start_offset_s"` // seconds since the recorder was created
	DurationS    float64 `json:"duration_s"`
	Instructions uint64  `json:"instructions,omitempty"`
}

// InstPerSec returns the stage's instruction throughput (0 when the
// span carries no instruction count or no measurable duration).
func (s SpanData) InstPerSec() float64 {
	if s.Instructions == 0 || s.DurationS <= 0 {
		return 0
	}
	return float64(s.Instructions) / s.DurationS
}

// Recorder collects spans. It is safe for concurrent use (the sweep
// engine records from many workers), and a nil *Recorder is a valid,
// zero-overhead disabled recorder: every method no-ops.
type Recorder struct {
	start time.Time
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	traceID string
	spans   []SpanData
}

// New returns an enabled recorder.
func New() *Recorder {
	return &Recorder{start: time.Now(), now: time.Now}
}

// newWithClock is the test constructor: spans are timed with the given
// clock instead of time.Now.
func newWithClock(clock func() time.Time) *Recorder {
	return &Recorder{start: clock(), now: clock}
}

// Enabled reports whether spans are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// SetTraceID associates the recorder (and everything derived from it:
// manifests, stage metrics, log lines) with a request's trace ID. A
// no-op on a nil recorder.
func (r *Recorder) SetTraceID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID = id
	r.mu.Unlock()
}

// TraceID returns the associated trace ID ("" on a nil recorder or when
// none was set).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Span is an in-flight span. It is a small value (not a pointer) so
// starting a span on a disabled recorder allocates nothing.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time
}

// Start begins a span. On a nil recorder it returns the zero Span,
// whose End is a no-op.
func (r *Recorder) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, start: r.now()}
}

// End completes the span with no instruction count.
func (s Span) End() { s.EndInstructions(0) }

// EndInstructions completes the span, attributing the given number of
// processed instructions to it.
func (s Span) EndInstructions(instructions uint64) {
	if s.rec == nil {
		return
	}
	end := s.rec.now()
	s.rec.record(SpanData{
		Name:         s.name,
		StartOffsetS: s.start.Sub(s.rec.start).Seconds(),
		DurationS:    end.Sub(s.start).Seconds(),
		Instructions: instructions,
	})
}

// Offset returns the seconds elapsed since the recorder was created
// (0 on a nil recorder) — the start offset for externally timed spans.
func (r *Recorder) Offset() float64 {
	if r == nil {
		return 0
	}
	return r.now().Sub(r.start).Seconds()
}

// Record appends an externally timed span — used when a stage's time
// is accounted out-of-band (e.g. a TimedSource attributing generation
// time out of a simulation span).
func (r *Recorder) Record(d SpanData) {
	if r == nil {
		return
	}
	r.record(d)
}

func (r *Recorder) record(d SpanData) {
	r.mu.Lock()
	r.spans = append(r.spans, d)
	r.mu.Unlock()
}

// Spans returns a copy of the collected spans in start order
// (recording order for spans that share a start offset). On a nil
// recorder it returns nil.
func (r *Recorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]SpanData(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartOffsetS < out[j].StartOffsetS })
	return out
}

// StageTotals aggregates the collected spans per stage name: summed
// duration and instructions. On a nil recorder it returns nil.
func (r *Recorder) StageTotals() map[string]SpanData {
	if r == nil {
		return nil
	}
	totals := make(map[string]SpanData)
	for _, s := range r.Spans() {
		t := totals[s.Name]
		t.Name = s.Name
		t.DurationS += s.DurationS
		t.Instructions += s.Instructions
		totals[s.Name] = t
	}
	return totals
}
