package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTracerSpanNesting(t *testing.T) {
	tr := NewTracer("t1", "node-a")
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := tr.StartSpan(ctx, "http /v1/sweep")
	ctx2, child := tr.StartSpan(ctx1, "sweep.sub")
	_, grand := tr.StartSpan(ctx2, "cohort")
	grand.Annotate("cohort", "0")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order is innermost first.
	g, c, r := spans[0], spans[1], spans[2]
	if g.ParentID != c.SpanID || c.ParentID != r.SpanID || r.ParentID != "" {
		t.Fatalf("parent chain broken: %+v", spans)
	}
	for _, sp := range spans {
		if sp.TraceID != "t1" || sp.Node != "node-a" {
			t.Fatalf("span missing trace/node stamps: %+v", sp)
		}
	}
	if g.Attrs["cohort"] != "0" {
		t.Fatalf("annotation lost: %+v", g.Attrs)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background(), "x")
	span.Annotate("k", "v")
	span.End()
	tr.Import([]TraceSpan{{SpanID: "a"}})
	if tr.Spans() != nil || tr.Dropped() != 0 || tr.TraceID() != "" {
		t.Fatal("nil tracer retained state")
	}
	if SpanIDFromContext(ctx) != "" {
		t.Fatal("nil tracer put a span ID in context")
	}
	if TracerFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a tracer")
	}
}

func TestTracerImportStampsTraceID(t *testing.T) {
	tr := NewTracer("root", "coord")
	tr.Import([]TraceSpan{
		{SpanID: "p1", Name: "sweep.sub", Node: "peer"},
		{TraceID: "other", SpanID: "p2", Name: "cohort", Node: "peer"},
	})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].TraceID != "root" {
		t.Fatalf("blank trace ID not stamped: %+v", spans[0])
	}
	if spans[1].TraceID != "other" {
		t.Fatalf("explicit trace ID overwritten: %+v", spans[1])
	}
	if spans[0].Node != "peer" {
		t.Fatal("origin node stamp lost on import")
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer("t", "n")
	ctx := context.Background()
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := tr.StartSpan(ctx, "s")
		sp.End()
	}
	if got := len(tr.Spans()); got != maxSpansPerTrace {
		t.Fatalf("cap not enforced: %d spans", got)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestAssembleTree(t *testing.T) {
	spans := []TraceSpan{
		{SpanID: "r", Name: "http /v1/sweep", Node: "coord", StartUnixNS: 1},
		{SpanID: "d1", ParentID: "r", Name: "cluster.dispatch", Node: "coord", StartUnixNS: 3},
		{SpanID: "d0", ParentID: "r", Name: "cluster.dispatch", Node: "coord", StartUnixNS: 2},
		{SpanID: "s0", ParentID: "d0", Name: "sweep.sub", Node: "peer", StartUnixNS: 4},
		// Duplicate span ID (a replayed peer slice): first occurrence wins.
		{SpanID: "s0", ParentID: "d0", Name: "dup", Node: "peer", StartUnixNS: 9},
	}
	tree := AssembleTree("t", spans)
	if tree.Spans != 4 {
		t.Fatalf("spans = %d, want 4 (duplicate dropped)", tree.Spans)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].SpanID != "r" {
		t.Fatalf("roots = %+v", tree.Roots)
	}
	kids := tree.Roots[0].Children
	if len(kids) != 2 || kids[0].SpanID != "d0" || kids[1].SpanID != "d1" {
		t.Fatalf("children unordered: %+v", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "sweep.sub" {
		t.Fatalf("grandchild wrong: %+v", kids[0].Children)
	}
	if strings.Join(tree.Nodes, ",") != "coord,peer" {
		t.Fatalf("nodes = %v", tree.Nodes)
	}
}

// TestAssembleTreePartial is the late-peer-slice case: spans whose
// parent never arrived surface as extra roots, and the tree still
// renders instead of erroring.
func TestAssembleTreePartial(t *testing.T) {
	spans := []TraceSpan{
		{SpanID: "r", Name: "http /v1/sweep", Node: "coord", StartUnixNS: 1},
		// Parent "gone" was never shipped back (peer died mid-chunk).
		{SpanID: "orphan", ParentID: "gone", Name: "cohort", Node: "peer", StartUnixNS: 5},
		// Self-parented span must not loop.
		{SpanID: "self", ParentID: "self", Name: "weird", Node: "peer", StartUnixNS: 7},
	}
	tree := AssembleTree("t", spans)
	if tree.Spans != 3 {
		t.Fatalf("spans = %d, want 3", tree.Spans)
	}
	if len(tree.Roots) != 3 {
		t.Fatalf("roots = %d, want 3 (orphans promoted)", len(tree.Roots))
	}
	for _, r := range tree.Roots {
		if len(r.Children) != 0 {
			t.Fatalf("unexpected children on %q", r.SpanID)
		}
	}
}

func TestTraceStoreAccumulateAndEvict(t *testing.T) {
	s := NewTraceStore(0) // clamps to 16
	for i := 0; i < 20; i++ {
		id := string(rune('a' + i))
		s.Add(id, []TraceSpan{{SpanID: "x", TraceID: id}})
	}
	if s.Len() != 16 {
		t.Fatalf("len = %d, want 16", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest trace not evicted")
	}
	// A fanout sub-request under a retained ID accumulates, not replaces.
	s.Add("zz", []TraceSpan{{SpanID: "1"}})
	s.Add("zz", []TraceSpan{{SpanID: "2"}})
	got, ok := s.Get("zz")
	if !ok || len(got) != 2 {
		t.Fatalf("accumulate failed: %v %v", got, ok)
	}
	// Nil store and empty adds are safe no-ops.
	var nilStore *TraceStore
	nilStore.Add("zz", []TraceSpan{{SpanID: "1"}})
	if _, ok := nilStore.Get("zz"); ok || nilStore.Len() != 0 {
		t.Fatal("nil store retained state")
	}
	s.Add("", []TraceSpan{{SpanID: "1"}})
	s.Add("u", nil)
	if _, ok := s.Get("u"); ok {
		t.Fatal("empty span slice created a trace")
	}
}
