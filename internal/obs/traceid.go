package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Trace IDs give every request a stable identity that survives the trip
// through the daemon: minted (or accepted from the client's
// X-Request-Id) at the HTTP boundary, carried via context.Context
// through the pool, retry, cache, store and sweep machinery, and
// stamped into structured log lines, flight-recorder events, recorder
// spans and run manifests. Correlating one slow sweep across all of
// those surfaces is a grep for one string.

// traceIDKey is the context key for the request's trace ID.
type traceIDKey struct{}

// traceIDSeq breaks ties if the random source ever fails: the fallback
// ID is still unique within the process.
var traceIDSeq atomic.Uint64

// NewTraceID mints a 16-hex-character random trace ID. It never fails:
// if the system random source is unavailable it falls back to a
// process-unique counter.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceIDSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// maxTraceIDLen bounds client-supplied IDs so a hostile header cannot
// bloat every log line and flight-recorder slot it is copied into.
const maxTraceIDLen = 64

// SanitizeTraceID validates a client-supplied trace ID (an inbound
// X-Request-Id header): printable ASCII without spaces, quotes or
// backslashes, at most 64 characters. Anything else returns "" and the
// caller mints a fresh ID instead.
func SanitizeTraceID(s string) string {
	if len(s) == 0 || len(s) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return s
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the context's trace ID, or "" when none
// was attached.
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
