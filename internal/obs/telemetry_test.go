package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if SanitizeTraceID(id) != id {
			t.Fatalf("minted trace ID %q does not pass its own sanitizer", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSanitizeTraceID(t *testing.T) {
	cases := map[string]string{
		"":                      "",
		"abc-123_X.y:z":         "abc-123_X.y:z",
		"has space":             "",
		"has\ttab":              "",
		"has\nnewline":          "",
		`has"quote`:             "",
		`has\backslash`:         "",
		"caf\xc3\xa9":           "", // non-ASCII
		strings.Repeat("a", 64): strings.Repeat("a", 64),
		strings.Repeat("a", 65): "",
		"0123456789abcdef":      "0123456789abcdef",
	}
	for in, want := range cases {
		if got := SanitizeTraceID(in); got != want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if id := TraceIDFromContext(ctx); id != "" {
		t.Errorf("empty context carries trace ID %q", id)
	}
	ctx = WithTraceID(ctx, "deadbeef00000000")
	if id := TraceIDFromContext(ctx); id != "deadbeef00000000" {
		t.Errorf("round trip returned %q", id)
	}
}

func TestRecorderTraceID(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetTraceID("x") // must not panic
	if nilRec.TraceID() != "" {
		t.Error("nil recorder returned a trace ID")
	}
	rec := New()
	rec.SetTraceID("abc")
	if rec.TraceID() != "abc" {
		t.Errorf("trace ID %q, want abc", rec.TraceID())
	}
	var m Manifest
	m.FillStages(rec)
	if m.TraceID != "abc" {
		t.Errorf("manifest trace ID %q, want abc", m.TraceID)
	}
	// An explicitly set manifest ID wins over the recorder's.
	m2 := Manifest{TraceID: "explicit"}
	m2.FillStages(rec)
	if m2.TraceID != "explicit" {
		t.Errorf("manifest trace ID %q, want explicit", m2.TraceID)
	}
}

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(16)
	if f.Size() != 16 {
		t.Fatalf("size %d, want minimum 16", f.Size())
	}
	for i := 0; i < 40; i++ {
		f.Record(RequestEvent{TraceID: "t", Endpoint: "/v1/profile", Status: 200 + i})
	}
	if f.Total() != 40 {
		t.Errorf("total %d, want 40", f.Total())
	}
	recent := f.Recent(0)
	if len(recent) != 16 {
		t.Fatalf("retained %d events, want 16", len(recent))
	}
	// Newest first: statuses 239 down to 224, seq strictly descending.
	for i, ev := range recent {
		if ev.Status != 239-i {
			t.Fatalf("event %d has status %d, want %d", i, ev.Status, 239-i)
		}
		if i > 0 && ev.Seq >= recent[i-1].Seq {
			t.Fatalf("seq not descending at %d: %d then %d", i, recent[i-1].Seq, ev.Seq)
		}
	}
	if got := f.Recent(3); len(got) != 3 || got[0].Status != 239 {
		t.Errorf("Recent(3): %+v", got)
	}
	// Asking for more than retained returns what is retained.
	if got := f.Recent(1000); len(got) != 16 {
		t.Errorf("Recent(1000) returned %d events", len(got))
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record(RequestEvent{Endpoint: "a"})
	f.Record(RequestEvent{Endpoint: "b"})
	got := f.Recent(0)
	if len(got) != 2 || got[0].Endpoint != "b" || got[1].Endpoint != "a" {
		t.Errorf("partial ring: %+v", got)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestEvent{}) // must not panic
	if f.Recent(5) != nil || f.Size() != 0 || f.Total() != 0 {
		t.Error("nil flight recorder not inert")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(RequestEvent{Time: time.Now(), Endpoint: "/v1/simulate"})
				if i%50 == 0 {
					f.Recent(10)
				}
			}
		}()
	}
	wg.Wait()
	if f.Total() != 4000 {
		t.Errorf("lost events: %d of 4000", f.Total())
	}
}
