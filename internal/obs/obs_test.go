package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeClock advances a fixed step per reading, making span durations
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.Start(StageSimulate)
	sp.EndInstructions(123) // must not panic
	sp.End()
	r.Record(SpanData{Name: "x"})
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if got := r.StageTotals(); got != nil {
		t.Fatalf("nil recorder returned totals: %v", got)
	}
}

func TestNilSpanStartAllocates(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start(StageSimulate)
		sp.EndInstructions(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled span start/end allocates %v per run, want 0", allocs)
	}
}

func TestRecorderSpans(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	r := newWithClock(clock.now)

	sp := r.Start(StageProfile) // start at +1s
	sp.EndInstructions(3000)    // end at +2s: 1s duration

	r.Start(StageSimulate).End() // 1s duration, no instructions

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != StageProfile || spans[1].Name != StageSimulate {
		t.Fatalf("span order wrong: %+v", spans)
	}
	if spans[0].DurationS != 1.0 {
		t.Fatalf("profile duration %v, want 1s", spans[0].DurationS)
	}
	if got := spans[0].InstPerSec(); got != 3000 {
		t.Fatalf("profile inst/s %v, want 3000", got)
	}
	if got := spans[1].InstPerSec(); got != 0 {
		t.Fatalf("instruction-less span inst/s %v, want 0", got)
	}
}

func TestStageTotalsAggregate(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Second}
	r := newWithClock(clock.now)
	r.Start(StageSimulate).EndInstructions(10)
	r.Start(StageSimulate).EndInstructions(20)
	r.Start(StageReduce).End()

	totals := r.StageTotals()
	sim := totals[StageSimulate]
	if sim.Instructions != 30 || sim.DurationS != 2.0 {
		t.Fatalf("simulate totals %+v, want 30 insts over 2s", sim)
	}
	if _, ok := totals[StageReduce]; !ok {
		t.Fatal("reduce stage missing from totals")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Start(StageSimulate).EndInstructions(1)
			}
		}()
	}
	wg.Wait()
	if got := r.StageTotals()[StageSimulate].Instructions; got != 800 {
		t.Fatalf("got %d instructions recorded, want 800", got)
	}
}

type countSource struct{ n int }

func (c *countSource) Next(d *trace.DynInst) bool {
	if c.n == 0 {
		return false
	}
	c.n--
	return true
}

func TestTimedSource(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	ts := NewTimedSource(&countSource{n: 5})
	ts.now = clock.now
	var d trace.DynInst
	for ts.Next(&d) {
	}
	if ts.Instructions() != 5 {
		t.Fatalf("timed source counted %d instructions, want 5", ts.Instructions())
	}
	// 6 Next calls (5 hits + 1 EOF), 1ms per call under the fake clock.
	if ts.Duration() != 6*time.Millisecond {
		t.Fatalf("timed source duration %v, want 6ms", ts.Duration())
	}
	sp := ts.Span(StageGenerate)
	if sp.Name != StageGenerate || sp.Instructions != 5 {
		t.Fatalf("span %+v", sp)
	}
}

func TestFingerprintStability(t *testing.T) {
	type cfg struct{ A, B int }
	f1 := Fingerprint(cfg{1, 2})
	f2 := Fingerprint(cfg{1, 2})
	f3 := Fingerprint(cfg{1, 3})
	if f1 != f2 {
		t.Fatalf("identical values fingerprint differently: %s vs %s", f1, f2)
	}
	if f1 == f3 {
		t.Fatalf("different values share fingerprint %s", f1)
	}
	if len(f1) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", f1)
	}
}

func TestManifestJSON(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Second}
	rec := newWithClock(clock.now)
	rec.Start(StageProfile).EndInstructions(1000)
	rec.Start(StageSimulate).EndInstructions(500)
	rec.Record(SpanData{Name: StageGenerate, DurationS: 0.25, Instructions: 500})

	m := NewManifest("statsim test")
	m.ConfigFingerprint = Fingerprint(struct{ X int }{1})
	m.Workload = "gzip"
	m.K = 1
	m.Seed = 1
	m.FillStages(rec)

	if len(m.Stages) != 3 {
		t.Fatalf("got %d stages, want 3: %+v", len(m.Stages), m.Stages)
	}
	// Pipeline order regardless of recording order.
	if m.Stages[0].Name != StageProfile || m.Stages[1].Name != StageGenerate || m.Stages[2].Name != StageSimulate {
		t.Fatalf("stage order wrong: %+v", m.Stages)
	}
	if m.WallTimeS != 2.25 {
		t.Fatalf("wall time %v, want 2.25", m.WallTimeS)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Version != ManifestVersion || back.Workload != "gzip" || len(back.Stages) != 3 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if !strings.Contains(buf.String(), "config_fingerprint") {
		t.Fatal("manifest JSON missing config_fingerprint")
	}
}
