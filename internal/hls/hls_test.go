package hls

import (
	"math"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

func benchStream(seed uint64, blocks int, n uint64) trace.Source {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: seed, TargetBlocks: blocks})
	return &trace.LimitSource{Src: program.NewExecutor(prog, seed), N: n}
}

func annotated(seed uint64, blocks int, n uint64) trace.Source {
	return Annotate(benchStream(seed, blocks, n), cache.DefaultConfig(), bpred.DefaultConfig())
}

func TestProfileStreamBasics(t *testing.T) {
	p, err := ProfileStream(annotated(1, 80, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions != 100_000 {
		t.Fatalf("instructions = %d", p.Instructions)
	}
	if p.Blocks == 0 || p.BlockSizeMean <= 1 {
		t.Errorf("block stats missing: %d blocks, mean %.2f", p.Blocks, p.BlockSizeMean)
	}
	if p.BrCount == 0 || p.BrMispredict == 0 {
		t.Errorf("branch stats missing: %d/%d", p.BrMispredict, p.BrCount)
	}
	if p.Loads == 0 || p.L1DMiss == 0 || p.L1IMiss == 0 {
		t.Errorf("cache stats missing: loads=%d l1d=%d l1i=%d", p.Loads, p.L1DMiss, p.L1IMiss)
	}
	if p.Dep.Total() == 0 {
		t.Error("no dependencies observed")
	}
}

func TestProfileStreamEmpty(t *testing.T) {
	if _, err := ProfileStream(trace.NewSliceSource(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestHLSTraceShape(t *testing.T) {
	p, err := ProfileStream(annotated(2, 80, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(p.NewTrace(50_000, 3), 0)
	if len(got) != 50_000 {
		t.Fatalf("trace length %d, want 50000", len(got))
	}
	// Global instruction mix preserved within tolerance.
	var loads, branches float64
	for i := range got {
		if got[i].Class == isa.Load {
			loads++
		}
		if got[i].Class.IsBranch() {
			branches++
		}
	}
	wantLoads := float64(p.Loads) / float64(p.Instructions)
	wantBr := float64(p.BrCount) / float64(p.Instructions)
	if math.Abs(loads/50000-wantLoads) > 0.03 {
		t.Errorf("load fraction %.3f, want ~%.3f", loads/50000, wantLoads)
	}
	if math.Abs(branches/50000-wantBr) > 0.03 {
		t.Errorf("branch fraction %.3f, want ~%.3f", branches/50000, wantBr)
	}
	// Dependencies never target branches/stores.
	for i := range got {
		for op := 0; op < int(got[i].NumSrcs); op++ {
			if delta := got[i].DepDist[op]; delta > 0 {
				prod := got[i].Seq - uint64(delta)
				if !got[prod].Class.HasDest() {
					t.Fatalf("dependency on %v", got[prod].Class)
				}
			}
		}
	}
}

func TestHLSDeterministic(t *testing.T) {
	p, err := ProfileStream(annotated(3, 60, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Collect(p.NewTrace(20_000, 9), 0)
	b := trace.Collect(p.NewTrace(20_000, 9), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

// The Fig. 7 property: on a workload whose blocks differ strongly in
// their dependency structure, the SFG model predicts IPC better than
// HLS's global mixing.
func TestSFGBeatsHLS(t *testing.T) {
	// A personality with diverse per-block behaviour.
	pers := program.Personality{
		Name: "mix", Seed: 77, TargetBlocks: 150,
		LocalDepFrac: 0.8, BiasChoices: []float64{0.1, 0.5, 0.9},
	}
	prog := program.MustGenerate(pers)
	const n = 250_000
	mk := func(seed uint64) trace.Source {
		return &trace.LimitSource{Src: program.NewExecutor(prog, seed), N: n}
	}
	cfg := cpu.DefaultConfig()
	eds := cpu.NewExecutionDriven(cfg, mk(5)).Run()

	g, err := sfg.Profile(mk(5), sfg.Options{K: 1, Hier: cfg.Hier, Bpred: cfg.Bpred})
	if err != nil {
		t.Fatal(err)
	}
	red, err := synth.Reduce(g, synth.Options{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	sfgRes := cpu.NewTraceDriven(cfg, red.NewTrace(1)).Run()

	hp, err := ProfileStream(Annotate(mk(5), cfg.Hier, cfg.Bpred))
	if err != nil {
		t.Fatal(err)
	}
	hlsRes := cpu.NewTraceDriven(cfg, hp.NewTrace(n/5, 1)).Run()

	sfgErr := stats.AbsError(sfgRes.IPC(), eds.IPC())
	hlsErr := stats.AbsError(hlsRes.IPC(), eds.IPC())
	t.Logf("EDS %.3f | SFG %.3f (%.1f%%) | HLS %.3f (%.1f%%)",
		eds.IPC(), sfgRes.IPC(), 100*sfgErr, hlsRes.IPC(), 100*hlsErr)
	if sfgErr > 0.15 {
		t.Errorf("SFG error %.1f%% too large", 100*sfgErr)
	}
	if hlsErr < sfgErr {
		t.Logf("note: HLS beat SFG on this workload (%.2f%% vs %.2f%%)", 100*hlsErr, 100*sfgErr)
	}
}
