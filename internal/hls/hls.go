// Package hls implements the HLS statistical simulation baseline of
// Oskin, Chong and Farrens (ISCA 2000), as described in §4.3/§5 of the
// paper and used as the comparison point of Fig. 7.
//
// HLS models the workload far more coarsely than the statistical flow
// graph: it generates one hundred synthetic basic blocks whose sizes
// follow a normal distribution fitted to the workload, fills them with
// instructions drawn i.i.d. from the *global* instruction-mix
// distribution (no per-block instruction sequences), draws dependency
// distances from one global distribution, and applies global branch
// predictability and cache miss rates. The synthetic trace generator
// then walks this random graph.
//
// The defining deficiency — no correlation between instruction
// sequences, dependencies and basic blocks — is exactly what the SFG
// fixes, and is faithfully reproduced here. Both models are simulated
// on the same trace-driven timing core, so Fig. 7 isolates the workload
// model difference (the original HLS also used a simplified processor
// model; see DESIGN.md).
package hls

import (
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
)

// NumBlocks is the number of synthetic basic blocks HLS generates.
const NumBlocks = 100

// Profile is the global (uncorrelated) statistical profile HLS uses.
type Profile struct {
	Instructions uint64
	Blocks       uint64

	BlockSizeMean float64
	BlockSizeSD   float64

	// Body instruction mix (non-branch classes) and terminator mix
	// (branch classes).
	BodyMix   [isa.NumClasses]uint64
	BranchMix [isa.NumClasses]uint64

	// NumSrcs[c] accumulates operand counts per class; divided by class
	// frequency at generation time.
	NumSrcs [isa.NumClasses]uint64

	// Dep is the single global dependency-distance distribution;
	// DepOperands counts operands observed, DepPresent those that
	// carried a dependency.
	Dep         *stats.Histogram
	DepOperands uint64
	DepPresent  uint64

	// Global branch characteristics.
	BrCount, BrTaken, BrMispredict, BrRedirect uint64

	// Global cache characteristics.
	Fetches, L1IMiss, L2IMiss, ITLBMiss uint64
	Loads, L1DMiss, L2DMiss, DTLBMiss   uint64
}

// ProfileStream measures the global HLS profile from a committed
// instruction stream annotated with pre-classified locality flags.
// Use Annotate to produce such a stream from live cache/bpred models,
// mirroring how the SFG profiler measures the same events.
func ProfileStream(src trace.Source) (*Profile, error) {
	p := &Profile{Dep: stats.NewHistogram(stats.MaxDependencyDistance)}
	var d trace.DynInst
	// HLS basic blocks are branch-delimited (every synthetic block ends
	// in a branch), so block-size statistics are measured over runs of
	// instructions ending at each branch.
	var curLen, sumLen, sumLen2 float64
	flushBlock := func() {
		if curLen > 0 {
			p.Blocks++
			sumLen += curLen
			sumLen2 += curLen * curLen
		}
		curLen = 0
	}
	for src.Next(&d) {
		curLen++
		if d.Class.IsBranch() {
			flushBlock()
		}
		p.Instructions++
		p.Fetches++
		if d.Flags.Has(trace.FlagL1IMiss) {
			p.L1IMiss++
			if d.Flags.Has(trace.FlagL2IMiss) {
				p.L2IMiss++
			}
		}
		if d.Flags.Has(trace.FlagITLBMiss) {
			p.ITLBMiss++
		}
		if d.Class.IsBranch() {
			p.BranchMix[d.Class]++
			p.BrCount++
			if d.Taken {
				p.BrTaken++
			}
			if d.Flags.Has(trace.FlagBrMispredict) {
				p.BrMispredict++
			} else if d.Flags.Has(trace.FlagBrFetchRedirect) {
				p.BrRedirect++
			}
		} else {
			p.BodyMix[d.Class]++
		}
		if d.Class == isa.Load {
			p.Loads++
			if d.Flags.Has(trace.FlagL1DMiss) {
				p.L1DMiss++
				if d.Flags.Has(trace.FlagL2DMiss) {
					p.L2DMiss++
				}
			}
			if d.Flags.Has(trace.FlagDTLBMiss) {
				p.DTLBMiss++
			}
		}
		p.NumSrcs[d.Class] += uint64(d.NumSrcs)
		for op := 0; op < int(d.NumSrcs); op++ {
			p.DepOperands++
			if dd := d.DepDist[op]; dd > 0 {
				p.DepPresent++
				p.Dep.Add(int(dd))
			}
		}
	}
	flushBlock()
	if p.Blocks == 0 {
		return nil, fmt.Errorf("hls: empty stream")
	}
	mean := sumLen / float64(p.Blocks)
	p.BlockSizeMean = mean
	varr := sumLen2/float64(p.Blocks) - mean*mean
	if varr < 0 {
		varr = 0
	}
	p.BlockSizeSD = math.Sqrt(varr)
	return p, nil
}

// Annotate wraps a committed instruction stream with live cache and
// branch-predictor models, filling each record's locality flags so
// ProfileStream can measure global miss and misprediction rates. It
// uses immediate predictor update — the discipline of the original HLS
// era; the paper's delayed-update improvement is specific to the SFG
// framework (§2.1.3).
func Annotate(src trace.Source, hier cache.HierarchyConfig, bp bpred.Config) trace.Source {
	h := cache.NewHierarchy(hier)
	pred := bpred.New(bp)
	return trace.FuncSource(func(out *trace.DynInst) bool {
		if !src.Next(out) {
			return false
		}
		out.Flags = 0
		ir := h.AccessI(out.PC)
		if ir.L1Miss {
			out.Flags |= trace.FlagL1IMiss
			if ir.L2Miss {
				out.Flags |= trace.FlagL2IMiss
			}
		}
		if ir.TLBMiss {
			out.Flags |= trace.FlagITLBMiss
		}
		if out.Class.IsMem() {
			dr := h.AccessD(out.EffAddr)
			if out.Class == isa.Load {
				if dr.L1Miss {
					out.Flags |= trace.FlagL1DMiss
					if dr.L2Miss {
						out.Flags |= trace.FlagL2DMiss
					}
				}
				if dr.TLBMiss {
					out.Flags |= trace.FlagDTLBMiss
				}
			}
		}
		if out.Class.IsBranch() {
			pr := pred.Lookup(out.PC, out.Class)
			o := bpred.Classify(pr, out.Class, out.Taken, out.NextPC)
			pred.Update(out.PC, out.Class, out.Taken, out.NextPC)
			if o.Mispredicted {
				out.Flags |= trace.FlagBrMispredict
			} else if o.FetchRedirect {
				out.Flags |= trace.FlagBrFetchRedirect
			}
		}
		return true
	})
}

// synthetic basic block of the HLS model.
type hlsBlock struct {
	classes []isa.Class
	numSrcs []uint8
}

// TraceSource generates the HLS synthetic trace: a random walk over
// NumBlocks i.i.d.-filled basic blocks with global event probabilities.
type TraceSource struct {
	p      *Profile
	rng    *stats.RNG
	blocks []hlsBlock

	n       uint64 // instructions to generate
	seq     uint64
	buf     []trace.DynInst
	bufPos  int
	hasDest []bool
}

const destRing = 2048

// NewTrace builds the 100 synthetic blocks and returns a source that
// produces n instructions.
func (p *Profile) NewTrace(n uint64, seed uint64) *TraceSource {
	rng := stats.NewRNG(seed)
	t := &TraceSource{p: p, rng: rng, n: n, hasDest: make([]bool, destRing)}

	bodyCDF := stats.NewCDF(p.BodyMix[:])
	brCDF := stats.NewCDF(p.BranchMix[:])
	avgSrcs := func(c isa.Class) uint8 {
		freq := p.BodyMix[c] + p.BranchMix[c]
		if freq == 0 {
			return 1
		}
		v := (float64(p.NumSrcs[c])/float64(freq) + 0.5)
		if v < 0 {
			v = 0
		}
		if v > float64(isa.MaxSrcOperands) {
			v = float64(isa.MaxSrcOperands)
		}
		return uint8(v)
	}
	haveBranches := brCDF.Total() > 0
	for i := 0; i < NumBlocks; i++ {
		size := int(p.BlockSizeMean + p.BlockSizeSD*rng.NormFloat64() + 0.5)
		if size < 1 {
			size = 1
		}
		var b hlsBlock
		body := size
		if haveBranches {
			body-- // last slot is the terminating branch
		}
		for j := 0; j < body; j++ {
			c := isa.Class(bodyCDF.Sample(rng.Float64()))
			b.classes = append(b.classes, c)
			b.numSrcs = append(b.numSrcs, avgSrcs(c))
		}
		if haveBranches {
			c := isa.Class(brCDF.Sample(rng.Float64()))
			b.classes = append(b.classes, c)
			b.numSrcs = append(b.numSrcs, avgSrcs(c))
		}
		t.blocks = append(t.blocks, b)
	}
	return t
}

// Next implements trace.Source.
func (t *TraceSource) Next(out *trace.DynInst) bool {
	for t.bufPos >= len(t.buf) {
		if t.seq >= t.n {
			return false
		}
		t.emitBlock()
	}
	*out = t.buf[t.bufPos]
	t.bufPos++
	return true
}

func (t *TraceSource) bernoulli(num, den uint64) bool {
	if num == 0 || den == 0 {
		return false
	}
	return t.rng.Float64()*float64(den) < float64(num)
}

func (t *TraceSource) emitBlock() {
	t.buf = t.buf[:0]
	t.bufPos = 0
	p := t.p
	// HLS walks its block graph randomly: uniform next block.
	b := &t.blocks[t.rng.Intn(len(t.blocks))]
	depP := float64(0)
	if p.DepOperands > 0 {
		depP = float64(p.DepPresent) / float64(p.DepOperands)
	}
	for i, c := range b.classes {
		d := trace.DynInst{
			Seq:     t.seq,
			Class:   c,
			NumSrcs: b.numSrcs[i],
			BlockID: -1,
			Index:   int16(i),
		}
		for op := 0; op < int(d.NumSrcs); op++ {
			if p.Dep.Total() == 0 || t.rng.Float64() >= depP {
				continue
			}
			for try := 0; try < 1000; try++ {
				delta := uint64(p.Dep.Sample(t.rng.Float64()))
				if delta > t.seq || !t.hasDest[(t.seq-delta)%destRing] {
					continue
				}
				d.DepDist[op] = uint32(delta)
				break
			}
		}
		if t.bernoulli(p.L1IMiss, p.Fetches) {
			d.Flags |= trace.FlagL1IMiss
			if t.bernoulli(p.L2IMiss, p.L1IMiss) {
				d.Flags |= trace.FlagL2IMiss
			}
		}
		if t.bernoulli(p.ITLBMiss, p.Fetches) {
			d.Flags |= trace.FlagITLBMiss
		}
		if c == isa.Load {
			if t.bernoulli(p.L1DMiss, p.Loads) {
				d.Flags |= trace.FlagL1DMiss
				if t.bernoulli(p.L2DMiss, p.L1DMiss) {
					d.Flags |= trace.FlagL2DMiss
				}
			}
			if t.bernoulli(p.DTLBMiss, p.Loads) {
				d.Flags |= trace.FlagDTLBMiss
			}
		}
		if c.IsBranch() {
			d.Taken = t.bernoulli(p.BrTaken, p.BrCount)
			u := t.rng.Float64() * float64(p.BrCount)
			switch {
			case u < float64(p.BrMispredict):
				d.Flags |= trace.FlagBrMispredict
			case u < float64(p.BrMispredict+p.BrRedirect):
				d.Flags |= trace.FlagBrFetchRedirect
			}
		}
		t.hasDest[t.seq%destRing] = c.HasDest()
		t.seq++
		t.buf = append(t.buf, d)
		if t.seq >= t.n {
			break
		}
	}
}

var _ trace.Source = (*TraceSource)(nil)
