// Package synth implements steps 2 of the statistical simulation
// framework (Figure 1): reducing a statistical flow graph by the trace
// reduction factor R and generating a synthetic trace by a stochastic
// walk over the reduced graph (the nine-step algorithm of §2.2).
package synth

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures synthetic trace generation.
type Options struct {
	// R is the synthetic trace reduction factor: the synthetic trace is
	// ~1/R the length of the profiled execution (typical paper values
	// are 1,000-100,000 against 100M-10B instruction streams; scale R to
	// keep synthetic traces in the 50k-1M range).
	R uint64
	// Seed drives all stochastic choices; different seeds yield
	// different traces from the same profile (used by the CoV study).
	Seed uint64
	// MaxDepRetries bounds the §2.2-step-4 rejection loop that avoids
	// making an instruction depend on a branch or store (default 1,000,
	// as in the paper; the dependency is squashed when exhausted).
	MaxDepRetries int
	// EdgeAverageLocality assigns locality events from the paper's
	// literal per-edge aggregate rates instead of the slot-resolved
	// rates this implementation defaults to. Kept as an ablation: with
	// heterogeneous loads inside one block, edge averaging moves memory
	// latency onto the wrong dependency chains (see sfg.InstProfile).
	EdgeAverageLocality bool
	// SyntheticAddresses makes the generated trace carry effective
	// addresses synthesised from the profiled per-slot stride/footprint
	// statistics (sfg.AddrProfile), instead of only pre-assigned
	// hit/miss flags. Combined with cpu.Config.SimulateDCache this lets
	// the data-cache design space be explored from one profile without
	// re-profiling — the extension the paper's §2.1.2 pragmatics trade
	// away.
	SyntheticAddresses bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepRetries == 0 {
		o.MaxDepRetries = 1000
	}
	return o
}

// Reduced is a reduced statistical flow graph: node occurrences divided
// by R (floored), zero-occurrence nodes removed along with their edges
// (§2.2). Each NewTrace call walks a private copy of the occurrence
// counters, but trace sources sharing one Reduced (or one underlying
// Graph) must not run concurrently unless the graph has been frozen
// with (*sfg.Graph).Freeze: sampling lazily caches cumulative
// distributions inside the underlying profile's histograms, and Freeze
// builds those caches eagerly so concurrent sampling is read-only.
type Reduced struct {
	g    *sfg.Graph
	opts Options

	occ      []uint64 // floored node occurrences
	alive    []bool
	aliveOut [][]int32    // per node: surviving out-edge IDs
	outCDF   []*stats.CDF // per node: CDF over aliveOut edge counts (step-9 fast path)
	inCDF    []*stats.CDF // per node: CDF over ALL in-edge counts (entry stats)
	total    uint64       // sum of floored occurrences

	maxBlock int // longest block (instructions) among surviving edges
	maxOut   int // largest surviving out-degree
}

// Reduce builds the reduced graph for the given options.
func Reduce(g *sfg.Graph, opts Options) (*Reduced, error) {
	opts = opts.withDefaults()
	if opts.R == 0 {
		return nil, fmt.Errorf("synth: reduction factor R must be >= 1")
	}
	r := &Reduced{
		g:        g,
		opts:     opts,
		occ:      make([]uint64, len(g.Nodes)),
		alive:    make([]bool, len(g.Nodes)),
		aliveOut: make([][]int32, len(g.Nodes)),
		outCDF:   make([]*stats.CDF, len(g.Nodes)),
		inCDF:    make([]*stats.CDF, len(g.Nodes)),
	}
	for i, n := range g.Nodes {
		r.occ[i] = n.Occ / opts.R
		r.alive[i] = r.occ[i] > 0
		r.total += r.occ[i]
	}
	if r.total == 0 {
		return nil, fmt.Errorf("synth: R=%d removes every node (profile has %d blocks)", opts.R, g.TotalBlocks)
	}
	// Build every sampling structure the walk needs up front, so the
	// per-step hot path is allocation-free: alias-backed CDFs over out-
	// and in-edges, eagerly frozen dependency histograms (Freeze is
	// idempotent; for a shared graph the service freezes before fan-out
	// and this pass is read-only), and buffer bounds for the trace
	// source's preallocated scratch space.
	g.Freeze()
	for i, n := range g.Nodes {
		if !r.alive[i] {
			continue
		}
		var out []int32
		for _, eid := range n.Out {
			if r.alive[g.Edges[eid].To] {
				out = append(out, eid)
			}
		}
		r.aliveOut[i] = out
		if len(out) > r.maxOut {
			r.maxOut = len(out)
		}
		if len(out) > 0 {
			wo := make([]uint64, len(out))
			for j, eid := range out {
				wo[j] = g.Edges[eid].Count
				if insts := len(g.Edges[eid].Insts); insts > r.maxBlock {
					r.maxBlock = insts
				}
			}
			r.outCDF[i] = stats.NewCDF(wo)
		}
		if len(n.In) > 0 {
			wi := make([]uint64, len(n.In))
			for j, eid := range n.In {
				wi[j] = g.Edges[eid].Count
				if insts := len(g.Edges[eid].Insts); insts > r.maxBlock {
					r.maxBlock = insts
				}
			}
			r.inCDF[i] = stats.NewCDF(wi)
		}
	}
	return r, nil
}

// ExpectedLength returns the approximate synthetic trace length in
// instructions.
func (r *Reduced) ExpectedLength() uint64 {
	return r.g.TotalInstructions / r.opts.R
}

// AliveNodes returns the number of surviving nodes.
func (r *Reduced) AliveNodes() int {
	n := 0
	for _, a := range r.alive {
		if a {
			n++
		}
	}
	return n
}

// ReduceStats summarises one graph reduction for observability
// surfaces: how much of the profile survived division by R.
type ReduceStats struct {
	R              uint64 `json:"r"`
	NodesAlive     int    `json:"nodes_alive"`
	NodesDropped   int    `json:"nodes_dropped"`
	Occurrences    uint64 `json:"occurrences"` // surviving block instances
	ExpectedLength uint64 `json:"expected_length"`
}

// Stats computes the reduction summary.
func (r *Reduced) Stats() ReduceStats {
	alive := r.AliveNodes()
	return ReduceStats{
		R:              r.opts.R,
		NodesAlive:     alive,
		NodesDropped:   len(r.g.Nodes) - alive,
		Occurrences:    r.total,
		ExpectedLength: r.ExpectedLength(),
	}
}

// TraceSource generates the synthetic trace lazily, block by block; it
// implements trace.Source so the timing simulator can consume traces of
// any length in constant memory.
type TraceSource struct {
	r   *Reduced
	rng *stats.RNG

	nodeOcc   *stats.WeightedSampler
	remaining uint64

	cur    int32 // current node, -1 before the first step-1 selection
	seq    uint64
	buf    []trace.DynInst // instructions of the current block instance
	bufPos int
	done   bool

	// Scratch buffers for the per-step outgoing-edge choice
	// (preallocated to the graph's maximum out-degree).
	candEdges   []int32
	candWeights []uint64

	// depleted[n] counts in-edges of exhausted nodes arriving at
	// targets reachable from n: while depleted[cur] == 0, every
	// aliveOut target of cur still has occurrence budget and the step-9
	// draw can use the precomputed alias-backed out-edge CDF (O(1))
	// instead of rebuilding the candidate set — bit-identical, since
	// the candidate set equals aliveOut and both paths consume one
	// uniform variate with the same inverse-CDF mapping.
	depleted []int32

	// Synthetic-address state (SyntheticAddresses option): per-slot
	// walk positions and sampling-ready stride tables.
	addrStates map[int64]*addrState
	strideCDFs map[*sfg.AddrProfile]*strideCDF

	// hasDest[seq % ring] records whether the instruction at that
	// sequence number produces a register value (for the step-4
	// dependency rejection rule).
	hasDest []bool
}

const destRing = 2048 // > MaxDependencyDistance, power of two

// NewTrace starts a fresh stochastic walk over the reduced graph.
func (r *Reduced) NewTrace(seed uint64) *TraceSource {
	t := &TraceSource{
		r:           r,
		rng:         stats.NewRNG(seed),
		nodeOcc:     stats.NewWeightedSampler(r.occ),
		remaining:   r.total,
		cur:         -1,
		hasDest:     make([]bool, destRing),
		buf:         make([]trace.DynInst, 0, r.maxBlock),
		candEdges:   make([]int32, 0, r.maxOut),
		candWeights: make([]uint64, 0, r.maxOut),
		depleted:    make([]int32, len(r.g.Nodes)),
	}
	if r.opts.SyntheticAddresses {
		t.addrStates = make(map[int64]*addrState)
		t.strideCDFs = make(map[*sfg.AddrProfile]*strideCDF)
	}
	return t
}

// Next implements trace.Source.
func (t *TraceSource) Next(out *trace.DynInst) bool {
	for t.bufPos >= len(t.buf) {
		if !t.step() {
			return false
		}
	}
	*out = t.buf[t.bufPos]
	t.bufPos++
	return true
}

// NextBatch implements trace.BatchSource: it drains whole blocks of
// the walk into dst, copying straight out of the block buffer, so
// batch consumers skip the per-instruction Next dispatch.
func (t *TraceSource) NextBatch(dst []trace.DynInst) int {
	n := 0
	for n < len(dst) {
		if t.bufPos >= len(t.buf) {
			if !t.step() {
				break
			}
			continue
		}
		c := copy(dst[n:], t.buf[t.bufPos:])
		t.bufPos += c
		n += c
	}
	return n
}

// step advances the walk by one basic block, refilling the buffer.
// It returns false when the trace is complete.
//
// Occurrence accounting follows §2.2 with depleted nodes treated as
// removed: step 9 only follows edges whose target still has occurrences
// left, so the walk re-anchors through the step-1 occurrence CDF when
// its neighbourhood is consumed, and the emitted block frequencies
// match the reduced occurrences exactly.
func (t *TraceSource) step() bool {
	if t.done {
		return false
	}
	if t.remaining == 0 {
		t.done = true
		return false
	}
	// Step 9: follow an outgoing edge by transition probability, among
	// targets that still have occurrence budget. While no reachable
	// target is depleted the candidate set is exactly aliveOut and the
	// draw goes through the precomputed alias-backed CDF; otherwise the
	// candidate set is rebuilt by the filtering scan. Both paths map
	// the uniform variate through the same inverse-CDF transform, so
	// the choice of path never changes the outcome.
	if t.cur >= 0 {
		if t.depleted[t.cur] == 0 {
			if cdf := t.r.outCDF[t.cur]; cdf != nil {
				eid := t.r.aliveOut[t.cur][cdf.Sample(t.rng.Float64())]
				e := t.r.g.Edges[eid]
				t.emitBlock(e)
				t.cur = e.To
				t.consume(t.cur)
				return true
			}
		} else {
			t.candEdges = t.candEdges[:0]
			t.candWeights = t.candWeights[:0]
			var total uint64
			for _, eid := range t.r.aliveOut[t.cur] {
				e := t.r.g.Edges[eid]
				if t.nodeOcc.Weight(int(e.To)) > 0 {
					t.candEdges = append(t.candEdges, eid)
					t.candWeights = append(t.candWeights, e.Count)
					total += e.Count
				}
			}
			if total > 0 {
				target := uint64(t.rng.Float64() * float64(total))
				var cum uint64
				eid := t.candEdges[len(t.candEdges)-1]
				for i, w := range t.candWeights {
					cum += w
					if target < cum {
						eid = t.candEdges[i]
						break
					}
				}
				e := t.r.g.Edges[eid]
				t.emitBlock(e)
				t.cur = e.To
				t.consume(t.cur)
				return true
			}
		}
	}
	// Step 1: select a node through the cumulative occurrence
	// distribution; terminate when all occurrences are consumed.
	if t.nodeOcc.Total() == 0 {
		t.done = true
		return false
	}
	node := t.nodeOcc.Sample(t.rng.Float64())
	// The block's execution characteristics live on the edges into the
	// node; entering "from nowhere", draw a context-weighted incoming
	// edge.
	in := t.r.inCDF[node]
	if in == nil {
		// A start-of-stream warm-up node with no predecessors: consume
		// its occurrence and re-anchor without emitting.
		t.consume(int32(node))
		return !t.done
	}
	e := t.r.g.Edges[t.r.g.Nodes[node].In[in.Sample(t.rng.Float64())]]
	t.emitBlock(e)
	t.cur = int32(node)
	t.consume(t.cur)
	return true
}

// consume decrements the occurrence of node n (step 2). When n's
// budget reaches zero, every predecessor is flagged so its step-9 draw
// falls back to the depletion-filtering scan.
func (t *TraceSource) consume(n int32) {
	if t.nodeOcc.Decrement(int(n)) {
		t.remaining--
		if t.nodeOcc.Weight(int(n)) == 0 {
			for _, eid := range t.r.g.Nodes[n].In {
				if from := t.r.g.Edges[eid].From; t.r.alive[from] {
					t.depleted[from]++
				}
			}
		}
	}
	if t.remaining == 0 {
		t.done = true
	}
}

// emitBlock materialises one instance of the basic block described by
// edge e into the buffer (steps 3-8).
func (t *TraceSource) emitBlock(e *sfg.Edge) {
	t.buf = t.buf[:0]
	t.bufPos = 0
	for i := range e.Insts {
		ip := &e.Insts[i]
		d := trace.DynInst{
			Seq:     t.seq,
			PC:      uint64(e.Block)<<20 | uint64(i)<<3,
			Class:   ip.Class,
			NumSrcs: ip.NumSrcs,
			BlockID: e.Block,
			Index:   int16(i),
		}

		// Step 4: dependency distances with branch/store rejection.
		for op := 0; op < int(ip.NumSrcs); op++ {
			if delta, ok := t.sampleDep(ip.Dep[op], e.Count); ok {
				d.DepDist[op] = delta
			}
		}
		// Output (WAW) dependency — consumed only by in-order
		// configurations, where renaming does not hide it.
		if ip.Class.HasDest() {
			if delta, ok := t.sampleDep(ip.WAW, e.Count); ok {
				d.WAWDist = delta
			}
		}

		// Synthetic effective addresses (opt-in extension).
		if t.addrStates != nil && ip.Class.IsMem() && ip.Addr != nil {
			key := int64(e.ID)<<8 | int64(i)
			st := t.addrStates[key]
			if st == nil {
				st = &addrState{}
				t.addrStates[key] = st
			}
			cdf := t.strideCDFs[ip.Addr]
			if cdf == nil {
				cdf = buildStrideCDF(ip.Addr)
				t.strideCDFs[ip.Addr] = cdf
			}
			d.EffAddr = t.synthesizeAddr(ip.Addr, st, cdf)
		}

		// Steps 5 and 7: locality events. Slot-resolved by default (see
		// sfg.InstProfile for why slots rather than edge averages); the
		// paper-literal edge-average assignment is kept as an ablation.
		if t.r.opts.EdgeAverageLocality {
			if e.Fetches > 0 {
				if t.bernoulli(e.L1IMiss, e.Fetches) {
					d.Flags |= trace.FlagL1IMiss
					if t.bernoulli(e.L2IMiss, e.L1IMiss) {
						d.Flags |= trace.FlagL2IMiss
					}
				}
				if t.bernoulli(e.ITLBMiss, e.Fetches) {
					d.Flags |= trace.FlagITLBMiss
				}
			}
			if ip.Class == isa.Load && e.Loads > 0 {
				if t.bernoulli(e.L1DMiss, e.Loads) {
					d.Flags |= trace.FlagL1DMiss
					if t.bernoulli(e.L2DMiss, e.L1DMiss) {
						d.Flags |= trace.FlagL2DMiss
					}
				}
				if t.bernoulli(e.DTLBMiss, e.Loads) {
					d.Flags |= trace.FlagDTLBMiss
				}
			}
		} else {
			if t.bernoulli(ip.L1IMiss, e.Count) {
				d.Flags |= trace.FlagL1IMiss
				if t.bernoulli(ip.L2IMiss, ip.L1IMiss) {
					d.Flags |= trace.FlagL2IMiss
				}
			}
			if t.bernoulli(ip.ITLBMiss, e.Count) {
				d.Flags |= trace.FlagITLBMiss
			}
			if ip.Class == isa.Load {
				if t.bernoulli(ip.L1DMiss, e.Count) {
					d.Flags |= trace.FlagL1DMiss
					if t.bernoulli(ip.L2DMiss, ip.L1DMiss) {
						d.Flags |= trace.FlagL2DMiss
					}
				}
				if t.bernoulli(ip.DTLBMiss, e.Count) {
					d.Flags |= trace.FlagDTLBMiss
				}
			}
		}

		// Step 6: the block-terminating branch.
		if ip.Class.IsBranch() && e.BrCount > 0 {
			d.Taken = t.bernoulli(e.BrTaken, e.BrCount)
			u := t.rng.Float64() * float64(e.BrCount)
			switch {
			case u < float64(e.BrMispredict):
				d.Flags |= trace.FlagBrMispredict
			case u < float64(e.BrMispredict+e.BrRedirect):
				d.Flags |= trace.FlagBrFetchRedirect
			}
		}

		t.hasDest[t.seq%destRing] = ip.Class.HasDest()
		t.seq++
		t.buf = append(t.buf, d)
	}
}

// sampleDep draws one dependency distance from h, reproducing the
// probability that a dynamic instance carries the dependency at all
// (h covers only instances that did, out of count instances) and
// applying the §2.2-step-4 rejection rule: the producer must be an
// instruction with a register result, retried up to MaxDepRetries
// times and squashed otherwise.
func (t *TraceSource) sampleDep(h *stats.Histogram, count uint64) (uint32, bool) {
	if h == nil || h.Total() == 0 {
		return 0, false
	}
	if t.rng.Float64() >= float64(h.Total())/float64(count) {
		return 0, false
	}
	for try := 0; try < t.r.opts.MaxDepRetries; try++ {
		delta := uint64(h.Sample(t.rng.Float64()))
		if delta > t.seq {
			continue // before the start of the trace
		}
		if !t.hasDest[(t.seq-delta)%destRing] {
			continue // would depend on a branch or store: reject
		}
		return uint32(delta), true
	}
	return 0, false
}

// bernoulli draws true with probability num/den.
func (t *TraceSource) bernoulli(num, den uint64) bool {
	if num == 0 {
		return false
	}
	if num >= den {
		return true
	}
	return t.rng.Float64()*float64(den) < float64(num)
}

// Generated returns how many instructions have been emitted so far.
func (t *TraceSource) Generated() uint64 { return t.seq }

var (
	_ trace.Source      = (*TraceSource)(nil)
	_ trace.BatchSource = (*TraceSource)(nil)
)
