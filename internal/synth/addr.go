package synth

import (
	"sort"

	"repro/internal/sfg"
)

// strideCDF is a sampling-ready form of one slot's AddrProfile.
type strideCDF struct {
	deltas []int64
	cum    []uint64
	total  uint64
	random bool // model as uniform within the footprint
}

func buildStrideCDF(ap *sfg.AddrProfile) *strideCDF {
	c := &strideCDF{random: ap.MostlyRandom() || len(ap.Strides) == 0}
	if c.random {
		return c
	}
	c.deltas = make([]int64, 0, len(ap.Strides))
	for d := range ap.Strides {
		c.deltas = append(c.deltas, d)
	}
	// Sorted iteration keeps sampling deterministic across runs (map
	// order would reshuffle the CDF).
	sort.Slice(c.deltas, func(i, j int) bool { return c.deltas[i] < c.deltas[j] })
	var run uint64
	for _, d := range c.deltas {
		run += ap.Strides[d]
		c.cum = append(c.cum, run)
	}
	c.total = run
	return c
}

func (c *strideCDF) sample(u float64) int64 {
	target := uint64(u * float64(c.total))
	if target >= c.total {
		target = c.total - 1
	}
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.deltas[lo]
}

// addrState tracks one slot's synthetic address stream.
type addrState struct {
	last uint64
	has  bool
}

// synthesizeAddr produces the next effective address for the slot
// described by ap, updating st. Addresses stay within the profiled
// footprint: stride walks wrap around it exactly like the workload
// substrate's own generators.
func (t *TraceSource) synthesizeAddr(ap *sfg.AddrProfile, st *addrState, cdf *strideCDF) uint64 {
	if !st.has {
		st.last = ap.First
		st.has = true
		return st.last
	}
	span := ap.Max - ap.Min + 8
	var next uint64
	if cdf.random || cdf.total == 0 {
		next = ap.Min + (t.rng.Uint64()%span)&^7
	} else {
		delta := cdf.sample(t.rng.Float64())
		next = uint64(int64(st.last) + delta)
		if next < ap.Min || next > ap.Max {
			// Wrap into the footprint, preserving the walk's phase.
			off := (uint64(int64(st.last-ap.Min) + delta)) % span
			next = ap.Min + off&^7
		}
	}
	st.last = next
	return next
}
