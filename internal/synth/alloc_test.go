package synth

import (
	"testing"

	"repro/internal/trace"
)

// TestTraceSourceZeroAllocSteadyState pins the zero-allocation property
// of the random walk: Reduce precomputes the alias-backed CDFs and the
// maximum block/out-degree, NewTrace preallocates every per-walk
// buffer, so after warm-up neither Next nor NextBatch allocates.
// Skipped under -race: the race runtime instruments allocations.
func TestTraceSourceZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	g := profileBenchmark(t, 5, 80, 200_000, 1)
	r, err := Reduce(g, Options{R: 4})
	if err != nil {
		t.Fatal(err)
	}

	ts := r.NewTrace(1)
	var d trace.DynInst
	for i := 0; i < 2048; i++ { // warm: histograms frozen, buffers sized
		if !ts.Next(&d) {
			t.Fatal("trace ended during warm-up; enlarge the profile")
		}
	}
	if a := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if !ts.Next(&d) {
				t.Fatal("trace ended mid-measurement")
			}
		}
	}); a != 0 {
		t.Errorf("TraceSource.Next: %v allocs/run in steady state, want 0", a)
	}

	tb := r.NewTrace(2)
	buf := make([]trace.DynInst, 128)
	for i := 0; i < 8; i++ {
		if tb.NextBatch(buf) == 0 {
			t.Fatal("batch trace ended during warm-up")
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		if tb.NextBatch(buf) == 0 {
			t.Fatal("batch trace ended mid-measurement")
		}
	}); a != 0 {
		t.Errorf("TraceSource.NextBatch: %v allocs/run in steady state, want 0", a)
	}
}
