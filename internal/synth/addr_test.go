package synth

import (
	"math"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/trace"
)

func addrTrace(t *testing.T, seed uint64, n uint64) (*sfg.Graph, []trace.DynInst) {
	t.Helper()
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: seed, TargetBlocks: 80})
	src := &trace.LimitSource{Src: program.NewExecutor(prog, seed), N: n}
	g, err := sfg.Profile(src, sfg.Options{K: 1, Hier: cache.DefaultConfig(), Bpred: bpred.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(g, Options{R: 5, SyntheticAddresses: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, trace.Collect(red.NewTrace(1), 0)
}

func TestSyntheticAddressesPresent(t *testing.T) {
	_, insts := addrTrace(t, 3, 120_000)
	mems, withAddr := 0, 0
	for i := range insts {
		if insts[i].Class.IsMem() {
			mems++
			if insts[i].EffAddr != 0 {
				withAddr++
			}
		}
	}
	if mems == 0 {
		t.Fatal("no memory instructions")
	}
	if withAddr < mems*99/100 {
		t.Errorf("only %d/%d memory instructions carry addresses", withAddr, mems)
	}
}

func TestSyntheticAddressesDefaultOff(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 3, TargetBlocks: 40})
	src := &trace.LimitSource{Src: program.NewExecutor(prog, 3), N: 30_000}
	g, err := sfg.Profile(src, sfg.Options{K: 1, Hier: cache.DefaultConfig(), Bpred: bpred.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(g, Options{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range trace.Collect(red.NewTrace(1), 0) {
		if d.EffAddr != 0 {
			t.Fatal("default traces must not carry addresses")
		}
	}
}

// The headline property: simulating a live D-cache of the *profiled*
// configuration against the synthetic addresses reproduces the profiled
// miss rates.
func TestSyntheticAddressMissRatesMatchProfile(t *testing.T) {
	g, insts := addrTrace(t, 7, 200_000)

	var profLoads, profL1D, profDTLB float64
	for _, e := range g.Edges {
		profLoads += float64(e.Loads)
		profL1D += float64(e.L1DMiss)
		profDTLB += float64(e.DTLBMiss)
	}

	cfg := cpu.DefaultConfig()
	cfg.SimulateDCache = true
	cfg.PerfectBpred = true
	res := cpu.NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()

	// The pipeline counts loads+stores in DAccesses; compare load-ish
	// miss *rates* against the profile with generous tolerance (the
	// address model is statistical).
	gotL1D := float64(res.Cache.L1DMisses) / float64(res.Cache.DAccesses)
	wantL1D := profL1D / (profLoads / 0.75) // stores ~25% of accesses, same streams
	if math.Abs(gotL1D-wantL1D) > 0.5*wantL1D+0.02 {
		t.Errorf("L1D miss rate %.4f vs profiled ~%.4f", gotL1D, wantL1D)
	}
	if res.Cache.DTLBMisses == 0 && profDTLB > 0 {
		t.Error("synthetic addresses produced no TLB misses")
	}
}

// The payoff: one profile, two cache configurations — the synthetic-
// address simulation must track the direction and rough magnitude of
// the EDS change when the D-cache shrinks.
func TestCacheSweepWithoutReprofiling(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 11, TargetBlocks: 80})
	const n = 250_000
	mkStream := func() trace.Source {
		return &trace.LimitSource{Src: program.NewExecutor(prog, 2), N: n}
	}
	base := cpu.DefaultConfig()
	base.PerfectBpred = true // isolate the memory system
	small := base
	small.Hier = small.Hier.Scale(0.25)

	// EDS at both points.
	edsBase := cpu.NewExecutionDriven(base, mkStream()).Run()
	edsSmall := cpu.NewExecutionDriven(small, mkStream()).Run()

	// One profile (at the base hierarchy), synthetic addresses.
	g, err := sfg.Profile(mkStream(), sfg.Options{K: 1, Hier: base.Hier, Bpred: base.Bpred})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(g, Options{R: 5, SyntheticAddresses: true})
	if err != nil {
		t.Fatal(err)
	}
	insts := trace.Collect(red.NewTrace(1), 0)

	run := func(cfg cpu.Config) cpu.Result {
		cfg.SimulateDCache = true
		return cpu.NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()
	}
	ssBase := run(base)
	ssSmall := run(small)

	if edsSmall.IPC() >= edsBase.IPC() {
		t.Skip("workload insensitive to cache size; sweep not meaningful")
	}
	if ssSmall.IPC() >= ssBase.IPC() {
		t.Errorf("synthetic-address sweep missed the direction: base %.3f, small %.3f (EDS: %.3f -> %.3f)",
			ssBase.IPC(), ssSmall.IPC(), edsBase.IPC(), edsSmall.IPC())
	}
	// Trend magnitude within a factor-2 band.
	edsRatio := edsSmall.IPC() / edsBase.IPC()
	ssRatio := ssSmall.IPC() / ssBase.IPC()
	re := stats.RelError(ssBase.IPC(), ssSmall.IPC(), edsBase.IPC(), edsSmall.IPC())
	t.Logf("EDS ratio %.3f, synthetic-address ratio %.3f, relative error %.1f%%", edsRatio, ssRatio, 100*re)
	if re > 0.30 {
		t.Errorf("cache-shrink trend error %.1f%% too large", 100*re)
	}
}

func TestStrideCDFDeterministic(t *testing.T) {
	ap := &sfg.AddrProfile{Strides: map[int64]uint64{8: 100, -16: 50, 64: 25}}
	a := buildStrideCDF(ap)
	b := buildStrideCDF(ap)
	rngA, rngB := stats.NewRNG(1), stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if a.sample(rngA.Float64()) != b.sample(rngB.Float64()) {
			t.Fatal("stride sampling nondeterministic")
		}
	}
}

func TestAddrProfileObserve(t *testing.T) {
	var ap sfg.AddrProfile
	_ = ap // AddrProfile internals are exercised through the profiler;
	// here check MostlyRandom on a constructed instance.
	r := &sfg.AddrProfile{Strides: map[int64]uint64{8: 10}, Overflow: 100}
	if !r.MostlyRandom() {
		t.Error("heavy overflow should classify as random")
	}
	s := &sfg.AddrProfile{Strides: map[int64]uint64{8: 100}, Overflow: 2}
	if s.MostlyRandom() {
		t.Error("clean stride slot misclassified as random")
	}
}
