//go:build race

package synth

const raceEnabled = true
