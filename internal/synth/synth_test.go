package synth

import (
	"math"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/trace"
)

func profileBenchmark(t *testing.T, seed uint64, blocks int, n uint64, k int) *sfg.Graph {
	t.Helper()
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: seed, TargetBlocks: blocks})
	src := &trace.LimitSource{Src: program.NewExecutor(prog, seed), N: n}
	g, err := sfg.Profile(src, sfg.Options{K: k, Hier: cache.DefaultConfig(), Bpred: bpred.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReduceRejectsBadR(t *testing.T) {
	g := profileBenchmark(t, 1, 60, 20_000, 1)
	if _, err := Reduce(g, Options{R: 0}); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := Reduce(g, Options{R: 1 << 60}); err == nil {
		t.Error("absurd R accepted (empties the graph)")
	}
}

func TestReduceFloorsOccurrences(t *testing.T) {
	g := profileBenchmark(t, 2, 80, 50_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.AliveNodes() > g.NumNodes() {
		t.Error("reduction grew the graph")
	}
	if r.AliveNodes() == 0 {
		t.Error("no nodes survived a mild reduction")
	}
	// Rare nodes (occ < R) must be removed.
	for i, n := range g.Nodes {
		if n.Occ < 10 && r.alive[i] {
			t.Fatalf("node %d with occ %d survived R=10", i, n.Occ)
		}
	}
}

func TestTraceLengthNearExpected(t *testing.T) {
	g := profileBenchmark(t, 3, 80, 100_000, 1)
	r, err := Reduce(g, Options{R: 20})
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(r.NewTrace(1), 0)
	want := float64(r.ExpectedLength())
	if f := float64(len(got)); f < want*0.7 || f > want*1.3 {
		t.Errorf("trace length %d, expected ~%.0f", len(got), want)
	}
}

func TestSyntheticPreservesInstructionMix(t *testing.T) {
	g := profileBenchmark(t, 4, 100, 200_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	synth := trace.Collect(r.NewTrace(7), 0)

	var origCls, synthCls [isa.NumClasses]float64
	var origN, synthN float64
	for _, e := range g.Edges {
		for i := range e.Insts {
			origCls[e.Insts[i].Class] += float64(e.Count)
			origN += float64(e.Count)
		}
	}
	for i := range synth {
		synthCls[synth[i].Class]++
		synthN++
	}
	for c := 0; c < isa.NumClasses; c++ {
		o, s := origCls[c]/origN, synthCls[c]/synthN
		if math.Abs(o-s) > 0.02 {
			t.Errorf("class %v: original %.4f vs synthetic %.4f", isa.Class(c), o, s)
		}
	}
}

func TestSyntheticPreservesBlockFrequencies(t *testing.T) {
	g := profileBenchmark(t, 5, 60, 150_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	synth := trace.Collect(r.NewTrace(3), 0)
	orig := map[int32]float64{}
	var origN float64
	for _, n := range g.Nodes {
		if b := n.CurrentBlock(); b >= 0 {
			orig[b] += float64(n.Occ)
			origN += float64(n.Occ)
		}
	}
	syn := map[int32]float64{}
	var synN float64
	for i := range synth {
		if synth[i].Index == 0 {
			syn[synth[i].BlockID]++
			synN++
		}
	}
	// The hottest original blocks must stay hot with similar shares.
	for b, o := range orig {
		if o/origN > 0.02 {
			if math.Abs(o/origN-syn[b]/synN) > 0.02 {
				t.Errorf("block %d: original share %.4f vs synthetic %.4f", b, o/origN, syn[b]/synN)
			}
		}
	}
}

func TestDependencyRejectionRule(t *testing.T) {
	// §2.2 step 4: no generated dependency may point at a branch or a
	// store (they produce no register value).
	g := profileBenchmark(t, 6, 80, 100_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	synth := trace.Collect(r.NewTrace(5), 0)
	for i := range synth {
		for op := 0; op < int(synth[i].NumSrcs); op++ {
			delta := synth[i].DepDist[op]
			if delta == 0 {
				continue
			}
			if uint64(delta) > synth[i].Seq {
				t.Fatalf("inst %d depends before trace start", i)
			}
			prod := synth[i].Seq - uint64(delta)
			if !synth[prod].Class.HasDest() {
				t.Fatalf("inst %d depends on %v at %d", i, synth[prod].Class, prod)
			}
		}
	}
}

func TestSyntheticMissRatesMatchProfile(t *testing.T) {
	g := profileBenchmark(t, 7, 100, 200_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	synth := trace.Collect(r.NewTrace(9), 0)

	var profL1D, profLoads, profL1I, profFetch, profMis, profBr float64
	for _, e := range g.Edges {
		profL1D += float64(e.L1DMiss)
		profLoads += float64(e.Loads)
		profL1I += float64(e.L1IMiss)
		profFetch += float64(e.Fetches)
		profMis += float64(e.BrMispredict)
		profBr += float64(e.BrCount)
	}
	var sL1D, sLoads, sL1I, sFetch, sMis, sBr float64
	for i := range synth {
		sFetch++
		if synth[i].Flags.Has(trace.FlagL1IMiss) {
			sL1I++
		}
		if synth[i].Class == isa.Load {
			sLoads++
			if synth[i].Flags.Has(trace.FlagL1DMiss) {
				sL1D++
			}
		}
		if synth[i].Class.IsBranch() {
			sBr++
			if synth[i].Flags.Has(trace.FlagBrMispredict) {
				sMis++
			}
		}
	}
	check := func(name string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > 0.015+0.25*a {
			t.Errorf("%s rate: profile %.4f vs synthetic %.4f", name, a, b)
		}
	}
	check("L1D miss", profL1D/profLoads, sL1D/sLoads)
	check("L1I miss", profL1I/profFetch, sL1I/sFetch)
	check("mispredict", profMis/profBr, sMis/sBr)
}

func TestTraceDeterministicPerSeed(t *testing.T) {
	g := profileBenchmark(t, 8, 60, 60_000, 1)
	r, err := Reduce(g, Options{R: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Collect(r.NewTrace(42), 0)
	b := trace.Collect(r.NewTrace(42), 0)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := trace.Collect(r.NewTrace(43), 0)
	same := len(a) == len(c)
	if same {
		diff := 0
		for i := range a {
			if a[i] != c[i] {
				diff++
			}
		}
		same = diff == 0
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEndToEndIPCAccuracy(t *testing.T) {
	// The headline property (Fig. 4, k=1): with perfect caches and
	// perfect branch prediction, synthetic-trace IPC should track
	// execution-driven IPC within a few percent.
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 21, TargetBlocks: 120})
	cfg := cpu.DefaultConfig()
	cfg.PerfectCaches = true
	cfg.PerfectBpred = true

	const n = 300_000
	eds := cpu.NewExecutionDriven(cfg,
		&trace.LimitSource{Src: program.NewExecutor(prog, 3), N: n}).Run()

	g, err := sfg.Profile(&trace.LimitSource{Src: program.NewExecutor(prog, 3), N: n},
		sfg.Options{K: 1, Hier: cache.DefaultConfig(), Bpred: bpred.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(g, Options{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	syn := cpu.NewTraceDriven(cfg, r.NewTrace(1)).Run()

	ae := stats.AbsError(syn.IPC(), eds.IPC())
	t.Logf("EDS IPC %.3f, synthetic IPC %.3f, error %.2f%%", eds.IPC(), syn.IPC(), 100*ae)
	if ae > 0.10 {
		t.Errorf("k=1 perfect-structure IPC error %.1f%% exceeds 10%%", 100*ae)
	}
}
