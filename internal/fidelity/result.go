package fidelity

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Result is one adaptive-fidelity evaluation: interval estimates for
// IPC and EPC, the convergence verdict, and a full account of how the
// detailed budget was spent. The JSON form is served as-is on the
// daemon's wire.
type Result struct {
	Workload string `json:"workload"`

	// IPC estimate with its confidence interval (the CPI interval's
	// monotone inverse).
	IPC   float64 `json:"ipc"`
	IPCLo float64 `json:"ipc_lo"`
	IPCHi float64 `json:"ipc_hi"`
	// EPC estimate (average power, Watts) with a conservative interval.
	EPC   float64 `json:"epc,omitempty"`
	EPCLo float64 `json:"epc_lo,omitempty"`
	EPCHi float64 `json:"epc_hi,omitempty"`

	// CPI is the underlying stratified estimate the engine converges on.
	CPI stats.CI `json:"cpi"`
	// RelHalfWidth is the CPI interval's half-width divided by its mean;
	// convergence means RelHalfWidth <= TargetCI.
	RelHalfWidth float64 `json:"rel_half_width"`
	Confidence   float64 `json:"confidence"`
	TargetCI     float64 `json:"target_ci"`
	Converged    bool    `json:"converged"`

	// Budget accounting. DetailedInstructions counts every instruction
	// run through the execution-driven model, warm-up included.
	CoveredInstructions     uint64  `json:"covered_instructions"`
	DetailedInstructions    uint64  `json:"detailed_instructions"`
	MaxDetailedInstructions uint64  `json:"max_detailed_instructions"`
	DetailedFrac            float64 `json:"detailed_frac"`

	Strata      []StratumReport `json:"strata"`
	Escalations []Escalation    `json:"escalations,omitempty"`
}

// StratumReport is one stratum's final state.
type StratumReport struct {
	Members  int     `json:"members"` // intervals in the stratum
	Sampled  []int   `json:"sampled"` // sampled interval indices
	Weight   float64 `json:"weight"`
	Detailed bool    `json:"detailed"` // escalated to execution-driven
	MeanCPI  float64 `json:"mean_cpi"`
	SigmaCPI float64 `json:"sigma_cpi"`
	MeanIPC  float64 `json:"mean_ipc"`
}

// Escalation records one promotion of a stratum to detailed simulation,
// in the order the loop performed them.
type Escalation struct {
	Stratum         int     `json:"stratum"`
	Intervals       []int   `json:"intervals"` // re-simulated interval indices
	DetailedInsts   uint64  `json:"detailed_insts"`
	HalfWidthBefore float64 `json:"half_width_before"` // relative, pre-escalation
	HalfWidthAfter  float64 `json:"half_width_after"`  // relative, post-escalation
}

// Manifest converts the result into the run-manifest fidelity block.
func (r *Result) Manifest() *obs.ManifestFidelity {
	return &obs.ManifestFidelity{
		Confidence:    r.Confidence,
		TargetCI:      r.TargetCI,
		RelHalfWidth:  r.RelHalfWidth,
		Converged:     r.Converged,
		Strata:        len(r.Strata),
		Escalations:   len(r.Escalations),
		DetailedInsts: r.DetailedInstructions,
		DetailedFrac:  r.DetailedFrac,
		IPCLo:         r.IPCLo,
		IPCHi:         r.IPCHi,
	}
}

// Print writes a human-readable report, the CLI's default output.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "workload %s: IPC %.4f  %.0f%% CI [%.4f, %.4f]  (rel half-width %.2f%%, target %.2f%%)\n",
		r.Workload, r.IPC, 100*r.Confidence, r.IPCLo, r.IPCHi, 100*r.RelHalfWidth, 100*r.TargetCI)
	if r.EPC > 0 {
		fmt.Fprintf(w, "  EPC %.3f W  CI [%.3f, %.3f]\n", r.EPC, r.EPCLo, r.EPCHi)
	}
	state := "converged"
	if !r.Converged {
		state = "budget exhausted before target"
	}
	fmt.Fprintf(w, "  %s after %d escalation(s); detailed %d / %d insts (%.1f%%, cap %d)\n",
		state, len(r.Escalations), r.DetailedInstructions, r.CoveredInstructions,
		100*r.DetailedFrac, r.MaxDetailedInstructions)
	for i, s := range r.Strata {
		model := "cheap"
		if s.Detailed {
			model = "detailed"
		}
		fmt.Fprintf(w, "  stratum %d: weight %.3f  members %d  sampled %v  %s  CPI %.4f ± %.4f\n",
			i, s.Weight, s.Members, s.Sampled, model, s.MeanCPI, s.SigmaCPI)
	}
	for _, e := range r.Escalations {
		fmt.Fprintf(w, "  escalated stratum %d (%d insts over intervals %v): rel half-width %.2f%% -> %.2f%%\n",
			e.Stratum, e.DetailedInsts, e.Intervals, 100*e.HalfWidthBefore, 100*e.HalfWidthAfter)
	}
}
