// Package fidelity is the adaptive fidelity engine: it answers "what is
// this workload's IPC/EPC on this configuration" with a confidence
// interval instead of a point estimate, spending detailed simulation
// only where the cheap statistical model is too uncertain.
//
// The construction is two-phase stratified sampling (Ekman & Stenström)
// combined with online model escalation (Lavin et al.), built from the
// three models the framework already has:
//
//  1. Stratify: the committed stream is split into fixed-length
//     intervals and clustered into phases by SimPoint-style BBV
//     clustering (internal/simpoint). Each cluster is one stratum,
//     weighted by its share of intervals.
//  2. Estimate cheaply: a deterministic sample of member intervals per
//     stratum is profiled into per-interval SFGs and statistically
//     simulated (core.StatSim) with several synthetic-trace seeds. The
//     spread across member intervals gives each stratum a sample
//     variance; a documented bias allowance covers the statistical
//     model's known systematic error (§4.2 reports up to ~14% IPC error
//     on these workloads).
//  3. Escalate: while the Student-t confidence interval on the
//     stratified CPI estimate is wider than the requested target, the
//     stratum contributing the most uncertainty is re-evaluated with
//     execution-driven simulation of the same member intervals — exact
//     per-interval values, so the stratum's bias allowance collapses to
//     a small residual — until the target is met or the
//     detailed-instruction budget is exhausted.
//
// Both models measure intervals under SMARTS-style functional warming:
// cache and branch-predictor state is carried over the interval's whole
// prefix by locality-only replay (profiler warm phase, cpu.WarmState),
// so sampled measurements do not suffer cold-structure bias, and only
// the short pipeline warm window plus the interval itself count as
// detailed work.
//
// Everything is deterministic given the options: the stratification,
// the member sample, every simulation seed and the escalation order,
// so repeated runs are byte-identical regardless of pool parallelism.
package fidelity

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sfg"
	"repro/internal/simpoint"
	"repro/internal/stats"
)

// Pool is the worker-pool surface the engine fans interval evaluations
// out on; *service.Pool satisfies it. A nil Pool runs evaluations
// serially (still correct, just slower).
type Pool interface {
	Do(ctx context.Context, fn func(context.Context) error) error
}

// Options configures the engine. The zero value of every field takes a
// documented default; N is required.
type Options struct {
	// N is the committed-stream length to cover (required).
	N uint64
	// Interval is the stratification interval length (default N/20,
	// floor 1,000). Intervals are the sampling units; the detailed
	// budget is spent in whole intervals.
	Interval uint64
	// Warmup is the detailed warm window: each detailed interval run is
	// preceded by up to this many instructions through the full
	// execution-driven model (unmeasured) so pipeline state — RUU and
	// queue occupancy, in-flight misses — is realistic at the interval
	// boundary (default Interval/2, capped at 2,000: pipeline ramp is
	// short). Warm instructions count against the detailed budget.
	//
	// Cache and branch-predictor state needs far more history than any
	// affordable detailed window (SMARTS's cold-structure problem), so
	// the engine always carries it across the entire prefix by
	// functional warming — cheap locality-only replay (cpu.WarmState
	// for detailed runs, the profiler's warm phase for cheap ones) that
	// does not count as detailed simulation.
	Warmup uint64
	// K is the SFG order for the cheap per-interval profiles (default 1).
	K int
	// Seed is the workload execution seed (default 1).
	Seed uint64
	// SimSeed is the base synthetic-trace seed; replication r of any
	// interval uses SimSeed+r (default 1).
	SimSeed uint64
	// CheapSeeds is the number of synthetic-trace replications per
	// sampled interval (default 3); their mean is the interval's cheap
	// observation and their spread seeds singleton-stratum variance.
	CheapSeeds int
	// SamplesPerStratum is the number of member intervals sampled per
	// stratum (default 3, clamped to the stratum's population).
	SamplesPerStratum int
	// CheapTarget is the synthetic trace length per cheap replication
	// (default Interval/5, floor 2,000).
	CheapTarget uint64
	// MaxK bounds the number of strata (simpoint.Options.MaxK,
	// default 10).
	MaxK int

	// Confidence is the interval's confidence level: 0.90, 0.95 or
	// 0.99 (default 0.95).
	Confidence float64
	// TargetCI is the convergence target: the interval's relative
	// half-width (half-width / estimate, on CPI) the escalation loop
	// drives toward (default 0.02).
	TargetCI float64
	// MaxDetailedFrac bounds detailed simulation: escalations stop once
	// the next one would push detailed instructions (measured + warm)
	// past this fraction of the covered stream (default 0.25; negative
	// disables escalation entirely).
	MaxDetailedFrac float64

	// CheapBias is the relative bias allowance per cheap-estimated
	// stratum (default 0.15 — a bound on the statistical model's
	// systematic CPI error, cf. the §4.2 reproduction where per-
	// workload IPC error reaches 14%).
	CheapBias float64
	// DetailedBias is the residual relative allowance per detailed
	// stratum, covering interval-boundary and warm-up approximation
	// (default 0.015).
	DetailedBias float64
}

func (o Options) withDefaults() (Options, error) {
	if o.N == 0 {
		return o, fmt.Errorf("fidelity: Options.N is required")
	}
	if o.Interval == 0 {
		o.Interval = o.N / 20
		if o.Interval < 1000 {
			o.Interval = 1000
		}
	}
	if o.Interval > o.N {
		return o, fmt.Errorf("fidelity: interval %d exceeds stream length %d", o.Interval, o.N)
	}
	if o.Warmup == 0 {
		o.Warmup = o.Interval / 2
		if o.Warmup > 2000 {
			o.Warmup = 2000
		}
	}
	if o.K == 0 {
		o.K = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SimSeed == 0 {
		o.SimSeed = 1
	}
	if o.CheapSeeds <= 0 {
		o.CheapSeeds = 3
	}
	if o.SamplesPerStratum <= 0 {
		o.SamplesPerStratum = 3
	}
	if o.CheapTarget == 0 {
		o.CheapTarget = o.Interval / 5
		if o.CheapTarget < 2000 {
			o.CheapTarget = 2000
		}
	}
	if o.MaxK == 0 {
		o.MaxK = 10
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.TargetCI == 0 {
		o.TargetCI = 0.02
	}
	if o.MaxDetailedFrac == 0 {
		o.MaxDetailedFrac = 0.25
	}
	if o.CheapBias == 0 {
		o.CheapBias = 0.15
	}
	if o.DetailedBias == 0 {
		o.DetailedBias = 0.015
	}
	if _, err := stats.TCritical(o.Confidence, 1); err != nil {
		return o, err
	}
	return o, nil
}

// sample is one sampled member interval of a stratum, with its cheap
// profile measured at engine construction.
type sample struct {
	stratum  int
	interval int    // interval index
	start    uint64 // stream offset of the interval
	length   uint64 // measured instructions
	warm     uint64 // warm instructions preceding it
	profile  *sfg.Graph
}

// observation is one interval's measured (CPI, EPI) pair, from either
// model.
type observation struct {
	cpi, epi float64
	seedSD   float64 // CPI spread across synthetic seeds
}

// stratumState is one stratum's evolving estimate inside Run.
type stratumState struct {
	members  []int
	sampled  []int // indices into Engine.samples
	weight   float64
	detailed bool
	obs      []observation
}

// Engine is a reusable adaptive-fidelity evaluator for one workload:
// construction stratifies the stream and builds the per-interval cheap
// profiles; Run evaluates one configuration. The per-interval profiles
// are measured under the construction config's locality structures, so
// Run accepts any configuration that keeps cache and predictor
// structures unchanged (the same invariant SFG reuse has, §2.1.2) —
// which is exactly what a design-space sweep over window sizes and
// widths varies.
type Engine struct {
	w       core.Workload
	base    cpu.Config
	opts    Options
	covered uint64 // instructions covered by kept intervals
	strata  []stratumInit
	samples []sample
}

// stratumInit is the immutable stratification result.
type stratumInit struct {
	members []int
	sampled []int
	weight  float64
}

// localityFingerprint pins the structures profiling depends on.
func localityFingerprint(cfg cpu.Config) string {
	return obs.Fingerprint(struct {
		Hier          interface{}
		Bpred         interface{}
		PerfectCaches bool
		PerfectBpred  bool
		IFQ           int
	}{cfg.Hier, cfg.Bpred, cfg.PerfectCaches, cfg.PerfectBpred, cfg.IFQSize})
}

// New stratifies the workload's stream and profiles the sampled member
// intervals (in parallel on pool when non-nil). The returned engine is
// immutable and safe for concurrent Run calls.
func New(ctx context.Context, pool Pool, cfg cpu.Config, w core.Workload, opts Options) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	clusters, err := simpoint.Clusters(w.Stream(opts.Seed, 0, opts.N), simpoint.Options{
		IntervalLen: opts.Interval,
		MaxK:        opts.MaxK,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("fidelity: stratifying: %w", err)
	}
	e := &Engine{w: w, base: cfg, opts: opts}

	intervalLen := func(iv int) uint64 {
		start := uint64(iv) * opts.Interval
		length := opts.Interval
		if start+length > opts.N {
			length = opts.N - start
		}
		return length
	}
	for iv := 0; iv < clusters.Intervals; iv++ {
		e.covered += intervalLen(iv)
	}

	for si, members := range clusters.Members {
		m := opts.SamplesPerStratum
		if m > len(members) {
			m = len(members)
		}
		st := stratumInit{members: members, weight: clusters.Points[si].Weight}
		if m == 1 {
			// A single sample: the cluster's representative, the member
			// closest to the centroid.
			st.sampled = append(st.sampled, len(e.samples))
			e.samples = append(e.samples, e.newSample(si, clusters.Points[si].Interval, intervalLen))
		} else {
			// Deterministic even spread across the member list, first
			// and last included: within-stratum heterogeneity shows up
			// in the sample instead of hiding between picks.
			prev := -1
			for j := 0; j < m; j++ {
				iv := members[j*(len(members)-1)/(m-1)]
				if iv == prev {
					continue
				}
				prev = iv
				st.sampled = append(st.sampled, len(e.samples))
				e.samples = append(e.samples, e.newSample(si, iv, intervalLen))
			}
		}
		e.strata = append(e.strata, st)
	}

	// Cheap profiles for every sampled interval, fanned out on the
	// pool. Each profile replays the stream from its beginning with the
	// whole prefix as warm-up, so the measured cache and predictor
	// statistics reflect fully-warm structures — the same functional
	// warming the detailed path uses.
	err = pmap(ctx, pool, len(e.samples), func(ctx context.Context, i int) error {
		s := &e.samples[i]
		g, err := core.Profile(cfg, w.Stream(opts.Seed, 0, s.start+s.length),
			core.ProfileOptions{K: opts.K, Warmup: s.start})
		if err != nil {
			return fmt.Errorf("fidelity: profiling interval %d: %w", s.interval, err)
		}
		s.profile = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) newSample(stratum, iv int, intervalLen func(int) uint64) sample {
	start := uint64(iv) * e.opts.Interval
	warm := e.opts.Warmup
	if warm > start {
		warm = start
	}
	return sample{stratum: stratum, interval: iv, start: start, length: intervalLen(iv), warm: warm}
}

// Covered returns the instructions the stratification covers (N, minus
// a dropped sub-half-interval tail).
func (e *Engine) Covered() uint64 { return e.covered }

// Strata returns the number of strata the stream clustered into.
func (e *Engine) Strata() int { return len(e.strata) }

// detailedCost is what escalating stratum si costs in detailed
// instructions: every sampled interval re-runs execution-driven,
// warm-up included.
func (e *Engine) detailedCost(si int) uint64 {
	var cost uint64
	for _, s := range e.strata[si].sampled {
		cost += e.samples[s].warm + e.samples[s].length
	}
	return cost
}

// Run evaluates one configuration: cheap estimates for every stratum,
// then escalation until the confidence target is met or the detailed
// budget is exhausted. cfg must keep the locality structures the engine
// was constructed with.
func (e *Engine) Run(ctx context.Context, pool Pool, cfg cpu.Config) (*Result, error) {
	if got, want := localityFingerprint(cfg), localityFingerprint(e.base); got != want {
		return nil, fmt.Errorf("fidelity: config changes the profiled locality structures (fingerprint %s != %s); rebuild the engine", got, want)
	}
	opts := e.opts

	// Phase 1: cheap observations for every sampled interval.
	cheap := make([]observation, len(e.samples))
	err := pmap(ctx, pool, len(e.samples), func(ctx context.Context, i int) error {
		o, err := e.cheapEval(cfg, &e.samples[i])
		if err != nil {
			return err
		}
		cheap[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}

	strata := make([]stratumState, len(e.strata))
	for i, st := range e.strata {
		strata[i] = stratumState{members: st.members, sampled: st.sampled, weight: st.weight}
		for _, s := range st.sampled {
			strata[i].obs = append(strata[i].obs, cheap[s])
		}
	}

	res := &Result{
		Workload:                e.w.Name,
		Confidence:              opts.Confidence,
		TargetCI:                opts.TargetCI,
		CoveredInstructions:     e.covered,
		MaxDetailedInstructions: e.budget(),
	}

	// Phase 2: escalation loop. Each iteration recomputes the stratified
	// CI, stops on convergence, otherwise escalates the stratum whose
	// uncertainty contribution is largest among those that fit the
	// remaining budget.
	for {
		ci, err := e.stratifiedCPI(strata)
		if err != nil {
			return nil, err
		}
		rel := ci.RelHalfWidth()
		if n := len(res.Escalations); n > 0 {
			res.Escalations[n-1].HalfWidthAfter = rel
		}
		if rel <= opts.TargetCI {
			res.Converged = true
			break
		}
		pick := -1
		var pickKey float64
		for si := range strata {
			if strata[si].detailed {
				continue
			}
			if res.DetailedInstructions+e.detailedCost(si) > res.MaxDetailedInstructions {
				continue
			}
			key := e.contribution(&strata[si])
			if pick == -1 || key > pickKey {
				pick, pickKey = si, key
			}
		}
		if pick == -1 {
			break // nothing escalatable fits the budget
		}
		cost := e.detailedCost(pick)
		esc := Escalation{Stratum: pick, DetailedInsts: cost, HalfWidthBefore: rel}
		err = pmap(ctx, pool, len(strata[pick].sampled), func(ctx context.Context, j int) error {
			s := &e.samples[strata[pick].sampled[j]]
			strata[pick].obs[j] = e.detailedEval(cfg, s)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range strata[pick].sampled {
			esc.Intervals = append(esc.Intervals, e.samples[s].interval)
		}
		strata[pick].detailed = true
		res.DetailedInstructions += cost
		res.Escalations = append(res.Escalations, esc)
	}

	return e.finish(res, strata)
}

// budget returns the detailed-instruction budget.
func (e *Engine) budget() uint64 {
	if e.opts.MaxDetailedFrac < 0 {
		return 0
	}
	return uint64(e.opts.MaxDetailedFrac * float64(e.covered))
}

// cheapEval statistically simulates one sampled interval: CheapSeeds
// synthetic replications from its per-interval profile, averaged.
func (e *Engine) cheapEval(cfg cpu.Config, s *sample) (observation, error) {
	opts := e.opts
	red := core.ReductionFor(s.profile, opts.CheapTarget)
	cpis := make([]float64, 0, opts.CheapSeeds)
	epis := make([]float64, 0, opts.CheapSeeds)
	for r := 0; r < opts.CheapSeeds; r++ {
		m, err := core.StatSim(cfg, s.profile, red, opts.SimSeed+uint64(r))
		if err != nil {
			return observation{}, fmt.Errorf("fidelity: statsim interval %d seed %d: %w", s.interval, r, err)
		}
		if m.Instructions == 0 {
			return observation{}, fmt.Errorf("fidelity: statsim interval %d produced no instructions", s.interval)
		}
		cpis = append(cpis, m.CPI())
		epis = append(epis, m.EPI())
	}
	return observation{
		cpi:    stats.Mean(cpis),
		epi:    stats.Mean(epis),
		seedSD: stats.StdDev(cpis),
	}, nil
}

// detailedEval runs the execution-driven reference over one sampled
// interval: the prefix up to the detailed warm window is functionally
// warmed (locality state only, not counted as detailed work), the warm
// window runs through the full model unmeasured, and the interval
// itself is measured.
func (e *Engine) detailedEval(cfg cpu.Config, s *sample) observation {
	ws := cpu.NewWarmState(cfg)
	ws.Warm(e.w.Stream(e.opts.Seed, 0, s.start-s.warm))
	wcfg := cfg
	wcfg.WarmupInsts = s.warm
	m := core.ReferenceWarmed(wcfg, ws, e.w.Stream(e.opts.Seed, s.start-s.warm, s.warm+s.length))
	return observation{cpi: m.CPI(), epi: m.EPI()}
}

// summary converts one stratum's observations into the stats.Stratum
// pair (CPI, EPI) the stratified estimator consumes.
func (e *Engine) summary(st *stratumState) (cpi, epi stats.Stratum) {
	cpis := make([]float64, len(st.obs))
	epis := make([]float64, len(st.obs))
	var seedSD float64
	for i, o := range st.obs {
		cpis[i], epis[i] = o.cpi, o.epi
		seedSD += o.seedSD
	}
	seedSD /= float64(len(st.obs))
	cpi = stats.Stratum{Weight: st.weight, Mean: stats.Mean(cpis), Sigma: stats.StdDev(cpis), N: len(st.obs)}
	epi = stats.Stratum{Weight: st.weight, Mean: stats.Mean(epis), Sigma: stats.StdDev(epis), N: len(st.obs)}
	if len(st.obs) == 1 && !st.detailed {
		// A singleton cheap stratum still carries the synthetic-seed
		// spread as sampling noise.
		cpi.Sigma = seedSD
	}
	relBias := e.opts.CheapBias
	if st.detailed {
		relBias = e.opts.DetailedBias
	}
	cpi.Bias = relBias * math.Abs(cpi.Mean)
	epi.Bias = relBias * math.Abs(epi.Mean)
	return cpi, epi
}

// stratifiedCPI assembles the CPI confidence interval across strata.
func (e *Engine) stratifiedCPI(strata []stratumState) (stats.CI, error) {
	ss := make([]stats.Stratum, len(strata))
	for i := range strata {
		ss[i], _ = e.summary(&strata[i])
	}
	return stats.StratifiedCI(ss, e.opts.Confidence)
}

// contribution is the escalation key: the stratum's additive share of
// the interval half-width (bias allowance plus standard error), in CPI
// units. Ties break toward the lower stratum index in the caller.
func (e *Engine) contribution(st *stratumState) float64 {
	cpi, _ := e.summary(st)
	se := 0.0
	if cpi.N > 0 {
		se = cpi.Sigma / math.Sqrt(float64(cpi.N))
	}
	return cpi.Weight * (cpi.Bias + se)
}

// finish derives the reported estimates from the final strata.
func (e *Engine) finish(res *Result, strata []stratumState) (*Result, error) {
	cpiStrata := make([]stats.Stratum, len(strata))
	epiStrata := make([]stats.Stratum, len(strata))
	for i := range strata {
		cpiStrata[i], epiStrata[i] = e.summary(&strata[i])
	}
	cpiCI, err := stats.StratifiedCI(cpiStrata, e.opts.Confidence)
	if err != nil {
		return nil, err
	}
	epiCI, err := stats.StratifiedCI(epiStrata, e.opts.Confidence)
	if err != nil {
		return nil, err
	}
	if cpiCI.Mean <= 0 {
		return nil, fmt.Errorf("fidelity: non-positive CPI estimate %v", cpiCI.Mean)
	}
	res.CPI = cpiCI
	res.RelHalfWidth = cpiCI.RelHalfWidth()
	res.IPC = 1 / cpiCI.Mean
	res.IPCLo, res.IPCHi = invertInterval(cpiCI)

	// EPC = EPI / CPI; the two estimates share inputs, so the relative
	// half-widths add — conservative, never anti-conservative.
	if epiCI.Mean > 0 {
		res.EPC = epiCI.Mean / cpiCI.Mean
		relEPC := epiCI.RelHalfWidth() + cpiCI.RelHalfWidth()
		res.EPCLo = res.EPC * (1 - relEPC)
		if res.EPCLo < 0 {
			res.EPCLo = 0
		}
		res.EPCHi = res.EPC * (1 + relEPC)
	}
	if res.CoveredInstructions > 0 {
		res.DetailedFrac = float64(res.DetailedInstructions) / float64(res.CoveredInstructions)
	}
	for i := range strata {
		st := &strata[i]
		rep := StratumReport{
			Members:  len(st.members),
			Weight:   st.weight,
			Detailed: st.detailed,
			MeanCPI:  cpiStrata[i].Mean,
			SigmaCPI: cpiStrata[i].Sigma,
		}
		for _, s := range st.sampled {
			rep.Sampled = append(rep.Sampled, e.samples[s].interval)
		}
		if rep.MeanCPI > 0 {
			rep.MeanIPC = 1 / rep.MeanCPI
		}
		res.Strata = append(res.Strata, rep)
	}
	return res, nil
}

// invertInterval maps a CPI interval to the IPC interval [1/hi, 1/lo]
// (monotone transform; an interval reaching 0 caps IPC at +Inf, which
// cannot happen for the floors the engine uses but keeps the math
// total).
func invertInterval(ci stats.CI) (lo, hi float64) {
	if ci.Hi > 0 {
		lo = 1 / ci.Hi
	}
	if ci.Lo > 0 {
		hi = 1 / ci.Lo
	} else {
		hi = math.Inf(1)
	}
	return lo, hi
}

// pmap runs f(0..n-1) on the pool (serially when pool is nil), failing
// fast on the first error. Each index writes only its own state, so
// completion order cannot affect results.
func pmap(ctx context.Context, pool Pool, n int, f func(ctx context.Context, i int) error) error {
	if pool == nil {
		if ctx == nil {
			ctx = context.Background()
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = pool.Do(ctx, func(ctx context.Context) error { return f(ctx, i) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
