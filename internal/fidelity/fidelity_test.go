package fidelity

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

// testPool is a minimal Pool: a buffered-channel semaphore, enough to
// exercise the engine's parallel paths without importing the service
// package (which imports this one).
type testPool struct{ sem chan struct{} }

func newTestPool(n int) *testPool { return &testPool{sem: make(chan struct{}, n)} }

func (p *testPool) Do(ctx context.Context, fn func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
		return fn(ctx)
	case <-ctx.Done():
		return ctx.Err()
	}
}

func testOpts() Options {
	return Options{
		N:        200_000,
		Interval: 10_000,
		Seed:     1,
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{}).withDefaults(); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := (Options{N: 100, Interval: 1000}).withDefaults(); err == nil {
		t.Error("interval longer than stream accepted")
	}
	if _, err := (Options{N: 100_000, Confidence: 0.5}).withDefaults(); err == nil {
		t.Error("unsupported confidence accepted")
	}
	o, err := (Options{N: 100_000}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Interval != 5000 || o.Warmup != 2000 || o.Confidence != 0.95 || o.TargetCI != 0.02 ||
		o.MaxDetailedFrac != 0.25 || o.CheapSeeds != 3 || o.SamplesPerStratum != 3 {
		t.Errorf("defaults: %+v", o)
	}
}

func TestEngineRejectsLocalityChange(t *testing.T) {
	cfg := cpu.DefaultConfig()
	w, err := core.LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(context.Background(), nil, cfg, w, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Hier.L1D.SizeBytes *= 2
	if _, err := e.Run(context.Background(), nil, bad); err == nil {
		t.Error("config with different cache hierarchy accepted")
	}
	// Window/width changes keep the profiled locality structures and
	// must be accepted — that is the sweep-reuse contract.
	ok := cfg
	ok.RUUSize *= 2
	if _, err := e.Run(context.Background(), nil, ok); err != nil {
		t.Errorf("window-only change rejected: %v", err)
	}
}

func TestRunBudgetAndReporting(t *testing.T) {
	cfg := cpu.DefaultConfig()
	w, err := core.LoadWorkload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	pool := newTestPool(4)
	e, err := New(context.Background(), pool, cfg, w, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetailedInstructions > res.MaxDetailedInstructions {
		t.Errorf("budget exceeded: %d > %d", res.DetailedInstructions, res.MaxDetailedInstructions)
	}
	if res.DetailedFrac > 0.25 {
		t.Errorf("detailed fraction %v > 0.25", res.DetailedFrac)
	}
	if res.IPC <= 0 || res.IPCLo <= 0 || res.IPCHi < res.IPCLo || res.IPC < res.IPCLo || res.IPC > res.IPCHi {
		t.Errorf("malformed IPC interval: %v [%v, %v]", res.IPC, res.IPCLo, res.IPCHi)
	}
	if res.EPC <= 0 || res.EPCLo < 0 || res.EPCHi < res.EPC {
		t.Errorf("malformed EPC interval: %v [%v, %v]", res.EPC, res.EPCLo, res.EPCHi)
	}
	var wsum float64
	for _, s := range res.Strata {
		wsum += s.Weight
		if s.Members == 0 || len(s.Sampled) == 0 || len(s.Sampled) > 3 {
			t.Errorf("bad stratum report: %+v", s)
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("stratum weights sum to %v", wsum)
	}
	for i, esc := range res.Escalations {
		if !res.Strata[esc.Stratum].Detailed {
			t.Errorf("escalation %d targets stratum %d not marked detailed", i, esc.Stratum)
		}
		if esc.HalfWidthAfter >= esc.HalfWidthBefore {
			t.Errorf("escalation %d did not narrow the interval: %v -> %v",
				i, esc.HalfWidthBefore, esc.HalfWidthAfter)
		}
	}
	m := res.Manifest()
	if m.Strata != len(res.Strata) || m.Escalations != len(res.Escalations) ||
		m.DetailedInsts != res.DetailedInstructions || m.IPCLo != res.IPCLo {
		t.Errorf("manifest block disagrees with result: %+v", m)
	}
}

// TestDeterminism re-runs the engine end to end — with different pool
// widths — and requires byte-identical JSON: same CI width, same
// escalation order, same estimates.
func TestDeterminism(t *testing.T) {
	cfg := cpu.DefaultConfig()
	w, err := core.LoadWorkload("vpr")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		var pool Pool
		if workers > 0 {
			pool = newTestPool(workers)
		}
		e, err := New(context.Background(), pool, cfg, w, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), pool, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := run(0), run(1), run(8)
	if string(a) != string(b) || string(a) != string(c) {
		t.Errorf("results differ across pool widths:\nserial: %s\n1-wide: %s\n8-wide: %s", a, b, c)
	}
}

// TestAccuracyGolden is the acceptance test: on every golden workload
// the engine's 95% confidence interval must contain the IPC of a full
// execution-driven simulation of the covered stream, while running at
// most 25% of it in detailed mode.
func TestAccuracyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-EDS comparison across ten workloads")
	}
	cfg := cpu.DefaultConfig()
	pool := newTestPool(8)
	for _, w := range core.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			opts := testOpts()
			e, err := New(context.Background(), pool, cfg, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(context.Background(), pool, cfg)
			if err != nil {
				t.Fatal(err)
			}
			truth := core.Reference(cfg, w.Stream(opts.Seed, 0, e.Covered())).IPC()
			if truth < res.IPCLo || truth > res.IPCHi {
				t.Errorf("EDS IPC %.4f outside CI [%.4f, %.4f] (estimate %.4f, %d escalations, detailed %.1f%%)",
					truth, res.IPCLo, res.IPCHi, res.IPC, len(res.Escalations), 100*res.DetailedFrac)
			}
			if res.DetailedFrac > 0.25 {
				t.Errorf("detailed fraction %.3f exceeds 0.25", res.DetailedFrac)
			}
			t.Logf("IPC %.4f in [%.4f, %.4f], EDS %.4f, strata %d, escalations %d, detailed %.1f%%, converged %v",
				res.IPC, res.IPCLo, res.IPCHi, truth, len(res.Strata), len(res.Escalations),
				100*res.DetailedFrac, res.Converged)
		})
	}
}
