package cluster

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sfg"
)

func testGraph(t testing.TB) *sfg.Graph {
	t.Helper()
	w, err := core.LoadWorkload("vpr")
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Profile(cpu.DefaultConfig(), w.Stream(1, 0, 20_000), core.ProfileOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var testKey = service.ProfileKey{Workload: "vpr", K: 1, N: 20_000, Seed: 1}

// fakePeer is a scriptable stand-in for a remote statsimd: its healthz
// status, fetch behaviour and latency are mutable mid-test.
type fakePeer struct {
	ts           *httptest.Server
	healthStatus atomic.Int32
	fetchDelay   atomic.Int64 // nanoseconds
	envelope     atomic.Value // []byte; nil/empty = 404
	fetches      atomic.Uint64
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.healthStatus.Store(http.StatusOK)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(int(p.healthStatus.Load()))
		case "/v1/cluster/fetch":
			p.fetches.Add(1)
			if d := time.Duration(p.fetchDelay.Load()); d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return
				}
			}
			env, _ := p.envelope.Load().([]byte)
			if len(env) == 0 {
				w.WriteHeader(http.StatusNotFound)
				io.WriteString(w, `{"error":"not resident"}`)
				return
			}
			w.Write(env)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func testCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Self == "" {
		cfg.Self = "http://self.invalid:1"
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPartitionDeterministic(t *testing.T) {
	pending := []int{0, 1, 2, 3, 4, 5, 6, 8, 11}
	execs := []string{"a", "b", "c"}
	first := partitionIndices(pending, execs)
	for round := 0; round < 5; round++ {
		again := partitionIndices(pending, execs)
		for e := range execs {
			if len(again[e]) != len(first[e]) {
				t.Fatalf("partition not deterministic: %v vs %v", again, first)
			}
			for k := range again[e] {
				if again[e][k] != first[e][k] {
					t.Fatalf("partition not deterministic: %v vs %v", again, first)
				}
			}
		}
	}
	// Every index lands on exactly one executor.
	seen := map[int]int{}
	for _, part := range first {
		for _, idx := range part {
			seen[idx]++
		}
	}
	if len(seen) != len(pending) {
		t.Fatalf("partition lost indices: %v", first)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("index %d assigned %d times", idx, n)
		}
	}
	// Round-robin over sorted executors spreads within one of each
	// other.
	for e := range execs {
		if d := len(first[e]) - len(pending)/len(execs); d < 0 || d > 1 {
			t.Errorf("executor %s has %d indices of %d", execs[e], len(first[e]), len(pending))
		}
	}
}

func TestProbeEjectAndReadmit(t *testing.T) {
	peer := newFakePeer(t)
	flight := obs.NewFlightRecorder(32)
	c := testCoordinator(t, Config{
		Peers:            []string{peer.ts.URL},
		ProbeInterval:    10 * time.Millisecond,
		RPCTimeout:       time.Second,
		FailThreshold:    2,
		ReadmitThreshold: 2,
		Flight:           flight,
		Retry:            service.RetryPolicy{Attempts: 1},
	})
	c.Start()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats %+v", desc, c.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor("first healthy probes", func() bool { return c.Stats().Probes >= 2 })
	if st := c.Stats(); st.PeersHealthy != 1 || st.Ejections != 0 {
		t.Fatalf("healthy peer miscounted: %+v", st)
	}

	peer.healthStatus.Store(http.StatusServiceUnavailable)
	waitFor("ejection", func() bool { return c.Stats().Ejections == 1 })
	if st := c.Stats(); st.PeersHealthy != 0 {
		t.Fatalf("ejected peer still counted healthy: %+v", st)
	}
	status := c.Status()
	if len(status.Peers) != 1 || status.Peers[0].Healthy || status.Peers[0].Ejections != 1 {
		t.Fatalf("status does not reflect ejection: %+v", status)
	}

	peer.healthStatus.Store(http.StatusOK)
	waitFor("re-admission", func() bool { return c.Stats().Readmissions == 1 })
	if st := c.Stats(); st.PeersHealthy != 1 {
		t.Fatalf("re-admitted peer not healthy: %+v", st)
	}

	// The flight recorder explains the transition: one eject event, one
	// readmit event, both naming the peer.
	var ejects, readmits int
	for _, ev := range flight.Recent(0) {
		switch ev.Endpoint {
		case "cluster.eject":
			ejects++
			if ev.Peer != peer.ts.URL || ev.Error == "" {
				t.Errorf("eject event missing provenance: %+v", ev)
			}
		case "cluster.readmit":
			readmits++
		}
	}
	if ejects != 1 || readmits != 1 {
		t.Errorf("flight events: %d ejects, %d readmits (want 1 each)", ejects, readmits)
	}
}

func TestFetchGraphHedgeWins(t *testing.T) {
	g := testGraph(t)
	env, err := service.EncodeProfileEnvelope(testKey, g)
	if err != nil {
		t.Fatal(err)
	}
	a, b := newFakePeer(t), newFakePeer(t)
	a.envelope.Store(env)
	b.envelope.Store(env)

	// Replication 3 over {self, a, b} makes both remote peers owners of
	// every key, whatever the ring order.
	c := testCoordinator(t, Config{
		Peers:       []string{a.ts.URL, b.ts.URL},
		Replication: 3,
		HedgeDelay:  20 * time.Millisecond,
		RPCTimeout:  5 * time.Second,
		Retry:       service.RetryPolicy{Attempts: 1},
	})
	candidates := c.fetchCandidates(testKey)
	if len(candidates) != 2 {
		t.Fatalf("want both peers as candidates, got %v", candidates)
	}
	// Make the primary replica slow: the hedge must win.
	slow := candidates[0].name
	for _, p := range []*fakePeer{a, b} {
		if p.ts.URL == slow {
			p.fetchDelay.Store(int64(2 * time.Second))
		}
	}

	start := time.Now()
	got, servedBy, err := c.FetchGraph(context.Background(), testKey)
	if err != nil {
		t.Fatalf("hedged fetch failed: %v", err)
	}
	if servedBy == slow {
		t.Errorf("slow primary won the hedge")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hedged fetch took %v: waited out the slow primary", d)
	}
	if got.TotalInstructions != g.TotalInstructions || len(got.Nodes) != len(g.Nodes) {
		t.Errorf("fetched graph differs: %d insts %d nodes", got.TotalInstructions, len(got.Nodes))
	}
	st := c.Stats()
	if st.HedgedFetches != 1 || st.HedgeWins != 1 || st.GraphFetchHits != 1 {
		t.Errorf("hedge accounting: %+v", st)
	}
}

func TestFetchGraphAllMiss(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t) // neither holds anything
	c := testCoordinator(t, Config{
		Peers:       []string{a.ts.URL, b.ts.URL},
		Replication: 3,
		HedgeDelay:  time.Millisecond,
		Retry:       service.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond},
	})
	_, _, err := c.FetchGraph(context.Background(), testKey)
	if !errors.Is(err, service.ErrNoRemoteGraph) {
		t.Fatalf("want ErrNoRemoteGraph, got %v", err)
	}
	st := c.Stats()
	if st.GraphFetchMisses != 1 {
		t.Errorf("miss not counted: %+v", st)
	}
	// A definitive 404 is Permanent: the client must not have burned
	// retries on it.
	if st.RPCRetries != 0 {
		t.Errorf("404 was retried %d times", st.RPCRetries)
	}
	if a.fetches.Load()+b.fetches.Load() > 2 {
		t.Errorf("peers fetched %d+%d times for a definitive miss", a.fetches.Load(), b.fetches.Load())
	}
	// Misses are not failure evidence: both peers stay healthy.
	if st.PeersHealthy != 2 {
		t.Errorf("miss ejected a healthy peer: %+v", st)
	}
}

func TestFetchGraphTruncatedEnvelopeRetried(t *testing.T) {
	g := testGraph(t)
	env, err := service.EncodeProfileEnvelope(testKey, g)
	if err != nil {
		t.Fatal(err)
	}
	peer := newFakePeer(t)
	peer.envelope.Store(env)

	// One injected mid-body truncation: the envelope's CRC/length checks
	// reject the damaged transfer and the retry fetches a clean copy.
	in := fault.New(7)
	in.Set(fault.SiteNetTruncate, fault.Rule{Prob: 1, Times: 1, Err: fault.ErrInjected})
	c := testCoordinator(t, Config{
		Peers:       []string{peer.ts.URL},
		Replication: 2,
		Transport:   &fault.Transport{Inject: in},
		Retry:       service.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond},
	})
	got, _, err := c.FetchGraph(context.Background(), testKey)
	if err != nil {
		t.Fatalf("fetch did not survive one truncated transfer: %v", err)
	}
	if got.TotalInstructions != g.TotalInstructions {
		t.Errorf("graph from retried fetch differs")
	}
	if st := c.Stats(); st.RPCRetries == 0 {
		t.Errorf("truncated transfer was not retried: %+v", st)
	}
}

func TestSweepPendingFailoverToLocal(t *testing.T) {
	// A peer that refuses every sweep RPC: all its points must fail
	// over, and with no other peer the local executor finishes them.
	peer := newFakePeer(t) // has no /v1/sweep: sub-sweeps 404 (Permanent)
	c := testCoordinator(t, Config{
		Peers:         []string{peer.ts.URL},
		Replication:   2,
		ChunkSize:     2,
		FailThreshold: 1,
		Retry:         service.RetryPolicy{Attempts: 1},
	})

	var mu sync.Mutex
	reported := map[int]bool{}
	var failoverPeer string
	var failoverPoints int
	job := service.ClusterSweepJob{
		Points:  make([]service.SweepPoint, 6),
		Pending: []int{0, 1, 2, 3, 4, 5},
		Report: func(i int, m core.Metrics) {
			mu.Lock()
			reported[i] = true
			mu.Unlock()
		},
		Local: func(ctx context.Context, indices []int) error {
			for _, i := range indices {
				job := i
				mu.Lock()
				reported[job] = true
				mu.Unlock()
			}
			return nil
		},
		Failover: func(peer string, points int) {
			mu.Lock()
			failoverPeer, failoverPoints = peer, points
			mu.Unlock()
		},
	}
	if err := c.SweepPending(context.Background(), job); err != nil {
		t.Fatalf("sweep did not survive peer loss: %v", err)
	}
	if len(reported) != 6 {
		t.Fatalf("only %d of 6 points completed: %v", len(reported), reported)
	}
	if failoverPeer != peer.ts.URL || failoverPoints == 0 {
		t.Errorf("failover callback: peer %q points %d", failoverPeer, failoverPoints)
	}
	st := c.Stats()
	if st.Failovers == 0 || st.RepartitionedPoints == 0 || st.Ejections != 1 {
		t.Errorf("failover accounting: %+v", st)
	}
	if st.LocalPoints != 6 || st.RemotePoints != 0 {
		t.Errorf("points accounting: %+v", st)
	}
}

func TestSweepPendingCancellation(t *testing.T) {
	c := testCoordinator(t, Config{Peers: []string{"http://peer.invalid:1"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := service.ClusterSweepJob{
		Points:  make([]service.SweepPoint, 2),
		Pending: []int{0, 1},
		Report:  func(int, core.Metrics) {},
		Local:   func(ctx context.Context, indices []int) error { return ctx.Err() },
	}
	if err := c.SweepPending(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
}
