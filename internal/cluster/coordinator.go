package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sfg"
)

// Config wires a Coordinator. Zero-valued fields take the defaults
// documented per field.
type Config struct {
	// Self is this node's advertised base URL — its name on the ring and
	// the address peers reach it at. Required.
	Self string
	// Peers are the other nodes' base URLs. Self is added to the ring
	// automatically; listing it again is harmless.
	Peers []string
	// Replication is how many distinct owners each profile key has on
	// the ring (default 2, clamped to the node count).
	Replication int
	// VirtualNodes per peer on the ring (default 64).
	VirtualNodes int
	// ChunkSize bounds one sub-sweep RPC (default 16 points). Smaller
	// chunks lose less work when a peer dies mid-sweep; larger chunks
	// amortise RPC overhead.
	ChunkSize int
	// ProbeInterval is the health-probe period (default 2s);
	// FailThreshold consecutive failures eject a peer and
	// ReadmitThreshold consecutive successes re-admit it (default 2
	// each).
	ProbeInterval    time.Duration
	FailThreshold    int
	ReadmitThreshold int
	// RPCTimeout bounds fetch/offer/probe RPCs (default 5s);
	// SweepTimeout bounds one sub-sweep RPC (default 10m).
	RPCTimeout   time.Duration
	SweepTimeout time.Duration
	// HedgeDelay is how long a graph fetch waits on the first replica
	// before hedging to the second (default 75ms).
	HedgeDelay time.Duration
	// Retry governs fetch/offer RPC retries, with the same semantics as
	// the daemon's job retries (default 3 attempts, 50ms base backoff).
	Retry service.RetryPolicy
	// Transport performs HTTP; nil means http.DefaultTransport. Tests
	// and the chaos suite install a fault.Transport here.
	Transport http.RoundTripper
	// Flight, when non-nil, receives cluster.eject / cluster.readmit /
	// cluster.failover events alongside the request events.
	Flight *obs.FlightRecorder
	// Logger receives coordinator logs (nil discards).
	Logger *slog.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, errors.New("cluster: Config.Self is required")
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 16
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 10 * time.Minute
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 75 * time.Millisecond
	}
	if c.Retry.Attempts == 0 {
		c.Retry = service.RetryPolicy{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c, nil
}

// Coordinator implements service.Cluster over a static peer group. It
// is safe for concurrent use; Start launches the probe loop and Close
// stops it and waits for in-flight async offers.
type Coordinator struct {
	cfg    Config
	ring   *ring
	peers  *peerSet // remote peers only, ring order
	client *client
	log    *slog.Logger

	stopCtx  context.Context
	stopFn   context.CancelFunc
	wg       sync.WaitGroup
	probes   atomic.Uint64
	ejects   atomic.Uint64
	readmits atomic.Uint64

	fetchHits   atomic.Uint64
	fetchMisses atomic.Uint64
	fetchErrors atomic.Uint64
	hedged      atomic.Uint64
	hedgeWins   atomic.Uint64

	offersSent    atomic.Uint64
	offerFailures atomic.Uint64

	remotePoints  atomic.Uint64
	localPoints   atomic.Uint64
	failovers     atomic.Uint64
	repartitioned atomic.Uint64
	rpcRetries    atomic.Uint64
}

// New builds a Coordinator; call Start to begin probing.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var remote []string
	seen := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		remote = append(remote, p)
	}
	sort.Strings(remote)
	c := &Coordinator{
		cfg:   cfg,
		ring:  newRing(append([]string{cfg.Self}, remote...), cfg.VirtualNodes),
		peers: newPeerSet(remote),
		log:   cfg.Logger,
	}
	c.stopCtx, c.stopFn = context.WithCancel(context.Background())
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	c.client = &client{
		http:         &http.Client{Transport: transport},
		rpcTimeout:   cfg.RPCTimeout,
		sweepTimeout: cfg.SweepTimeout,
		retry:        cfg.Retry,
		retries:      &c.rpcRetries,
	}
	return c, nil
}

// Start launches the background health-probe loop.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCtx.Done():
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops probing and waits for in-flight async work.
func (c *Coordinator) Close() {
	c.stopFn()
	c.wg.Wait()
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.peers.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			c.probes.Add(1)
			build, err := c.client.probe(c.stopCtx, p.name)
			if err != nil {
				c.noteFailure(p, err, true)
				return
			}
			p.setBuild(build)
			c.noteSuccess(p, true)
		}(p)
	}
	wg.Wait()
}

// noteFailure funnels every failure observation (probe or data-path
// RPC) through the ejection threshold, recording the ejection event
// exactly once per transition.
func (c *Coordinator) noteFailure(p *peer, err error, probed bool) {
	if p == nil {
		return
	}
	if p.markFailure(err, c.cfg.FailThreshold, probed) {
		c.ejects.Add(1)
		c.log.Warn("cluster peer ejected", "peer", p.name, "err", err.Error())
		c.cfg.Flight.Record(obs.RequestEvent{
			Time: time.Now(), Endpoint: "cluster.eject", Peer: p.name, Error: err.Error(),
		})
	}
}

func (c *Coordinator) noteSuccess(p *peer, probed bool) {
	if p == nil {
		return
	}
	if p.markSuccess(c.cfg.ReadmitThreshold, probed) {
		c.readmits.Add(1)
		c.log.Info("cluster peer re-admitted", "peer", p.name)
		c.cfg.Flight.Record(obs.RequestEvent{
			Time: time.Now(), Endpoint: "cluster.readmit", Peer: p.name,
		})
	}
}

// fetchCandidates returns the healthy remote owners of key, in ring
// (replica-preference) order.
func (c *Coordinator) fetchCandidates(key service.ProfileKey) []*peer {
	var out []*peer
	for _, name := range c.ring.Owners(profileKeyString(key), c.cfg.Replication) {
		if name == c.cfg.Self {
			continue
		}
		if p := c.peers.byName(name); p != nil && p.isHealthy() {
			out = append(out, p)
		}
	}
	return out
}

// FetchGraph implements service.Cluster with a hedged read: the fetch
// goes to the first healthy replica immediately and to the second after
// HedgeDelay; the first success wins and the loser is cancelled. A
// definitive miss on every reachable replica is ErrNoRemoteGraph — the
// caller profiles locally.
func (c *Coordinator) FetchGraph(ctx context.Context, key service.ProfileKey) (*sfg.Graph, string, error) {
	candidates := c.fetchCandidates(key)
	if len(candidates) == 0 {
		c.fetchMisses.Add(1)
		return nil, "", service.ErrNoRemoteGraph
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		g     *sfg.Graph
		peer  *peer
		err   error
		hedge bool
	}
	results := make(chan outcome, len(candidates))
	launch := func(p *peer, hedge bool) {
		g, err := c.client.fetchGraph(fctx, p.name, key)
		results <- outcome{g: g, peer: p, err: err, hedge: hedge}
	}
	go launch(candidates[0], false)
	launched := 1
	var hedgeTimer <-chan time.Time
	if len(candidates) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}
	misses := 0
	var lastErr error
	for done := 0; done < launched; {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			c.hedged.Add(1)
			go launch(candidates[1], true)
			launched++
		case out := <-results:
			done++
			if out.err == nil {
				c.noteSuccess(out.peer, false)
				c.fetchHits.Add(1)
				if out.hedge {
					c.hedgeWins.Add(1)
				}
				return out.g, out.peer.name, nil
			}
			if errors.Is(out.err, errNotHeld) {
				// The peer answered; it just lacks the graph. Not
				// failure evidence.
				misses++
			} else if fctx.Err() == nil {
				c.noteFailure(out.peer, out.err, false)
				lastErr = out.err
			}
			// The primary failed fast: hedge immediately rather than
			// waiting out the delay.
			if hedgeTimer != nil && done == launched {
				hedgeTimer = nil
				go launch(candidates[1], true)
				launched++
			}
		case <-ctx.Done():
			c.fetchErrors.Add(1)
			return nil, "", ctx.Err()
		}
	}
	if lastErr == nil {
		c.fetchMisses.Add(1)
		return nil, "", service.ErrNoRemoteGraph
	}
	c.fetchErrors.Add(1)
	return nil, "", fmt.Errorf("cluster: fetching %s: %w", profileKeyString(key), lastErr)
}

// OfferGraph implements service.Cluster: replicate a freshly profiled
// graph to the key's other owners, asynchronously. The envelope is
// encoded once, synchronously (the graph is frozen but cheap to read;
// encoding up front means the goroutine never touches it), and failures
// only cost a future re-profile somewhere.
func (c *Coordinator) OfferGraph(ctx context.Context, key service.ProfileKey, g *sfg.Graph) {
	var targets []*peer
	for _, name := range c.ring.Owners(profileKeyString(key), c.cfg.Replication) {
		if name == c.cfg.Self {
			continue
		}
		if p := c.peers.byName(name); p != nil && p.isHealthy() {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return
	}
	envelope, err := service.EncodeProfileEnvelope(key, g)
	if err != nil {
		c.offerFailures.Add(1)
		c.log.Warn("encoding offer envelope", "err", err.Error())
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for _, p := range targets {
			if err := c.client.offerGraph(c.stopCtx, p.name, envelope); err != nil {
				c.offerFailures.Add(1)
				c.log.Debug("graph offer failed", "peer", p.name, "err", err.Error())
				continue
			}
			c.offersSent.Add(1)
		}
	}()
}

// partitionIndices deals the sorted pending indices round-robin across
// the sorted executor names. The rule is pure and deterministic: every
// node given the same (pending, executors) computes the same
// partition, which makes failover reasoning — and the chaos suite's
// byte-identity check — tractable. parts preserves executor order.
func partitionIndices(pending []int, executors []string) [][]int {
	parts := make([][]int, len(executors))
	for k, idx := range pending {
		e := k % len(executors)
		parts[e] = append(parts[e], idx)
	}
	return parts
}

// SweepPending implements service.Cluster. Each round partitions the
// remaining indices round-robin over the sorted healthy executors
// (self plus admitted remote peers); remote partitions dispatch in
// ChunkSize sub-sweeps so a dying peer forfeits at most one in-flight
// chunk. A failed peer is marked (ejecting it at threshold), its
// unfinished indices return to the pool, and the next round
// re-partitions over the survivors — self is always an executor, so
// the sweep completes even with every remote peer dead. Only context
// cancellation or a local compute failure is fatal.
func (c *Coordinator) SweepPending(ctx context.Context, job service.ClusterSweepJob) error {
	remaining := append([]int(nil), job.Pending...)
	sort.Ints(remaining)
	round := 0
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		round++
		executors := append([]string{c.cfg.Self}, c.peers.healthyNames()...)
		sort.Strings(executors)
		parts := partitionIndices(remaining, executors)
		rctx, roundSpan := obs.TracerFromContext(ctx).StartSpan(ctx, "cluster.round")
		roundSpan.Annotate("round", fmt.Sprintf("%d", round))
		roundSpan.Annotate("executors", fmt.Sprintf("%d", len(executors)))
		roundSpan.Annotate("points", fmt.Sprintf("%d", len(remaining)))

		type redo struct {
			peer    string
			indices []int
		}
		var (
			mu       sync.Mutex
			requeue  []redo
			fatalErr error
		)
		var wg sync.WaitGroup
		for e, name := range executors {
			part := parts[e]
			if len(part) == 0 {
				continue
			}
			wg.Add(1)
			if name == c.cfg.Self {
				go func(indices []int) {
					defer wg.Done()
					c.localPoints.Add(uint64(len(indices)))
					if err := job.Local(rctx, indices); err != nil {
						mu.Lock()
						if fatalErr == nil {
							fatalErr = err
						}
						mu.Unlock()
					}
				}(part)
				continue
			}
			go func(name string, indices []int) {
				defer wg.Done()
				failed := c.sweepOnPeer(rctx, name, job, indices)
				if len(failed) > 0 {
					mu.Lock()
					requeue = append(requeue, redo{peer: name, indices: failed})
					mu.Unlock()
				}
			}(name, part)
		}
		wg.Wait()
		roundSpan.End()
		if fatalErr != nil {
			return fatalErr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		remaining = remaining[:0]
		for _, r := range requeue {
			c.failovers.Add(1)
			c.repartitioned.Add(uint64(len(r.indices)))
			c.cfg.Flight.Record(obs.RequestEvent{
				Time: time.Now(), Endpoint: "cluster.failover", Peer: r.peer,
				Failovers: 1, Error: fmt.Sprintf("re-partitioned %d points over survivors", len(r.indices)),
			})
			if job.Failover != nil {
				job.Failover(r.peer, len(r.indices))
			}
			remaining = append(remaining, r.indices...)
		}
		sort.Ints(remaining)
	}
	return nil
}

// sweepOnPeer dispatches one executor's indices to a peer in ChunkSize
// sub-sweeps, reporting each completed point. It returns the indices
// that did not complete; the peer's health is marked per RPC outcome,
// and after a failure the rest of the partition is forfeited
// immediately (the caller re-partitions it) instead of being thrown at
// a peer that just proved unreliable.
//
// Each chunk gets a cluster.dispatch span whose ID rides the
// sub-request's X-Statsimd-Parent-Span header; the peer parents its
// sub-sweep spans under it and ships them back in the response, where
// Import grafts them into the coordinator's tracer. The peer's cost
// entries are remapped from chunk-local to grid indices; a peer too
// old to ledger its points gets synthesized entries (the chunk wall
// time split evenly) so the coordinator's ledger still accounts for
// every point.
func (c *Coordinator) sweepOnPeer(ctx context.Context, name string, job service.ClusterSweepJob, indices []int) (failed []int) {
	p := c.peers.byName(name)
	tracer := obs.TracerFromContext(ctx)
	for start := 0; start < len(indices); start += c.cfg.ChunkSize {
		end := start + c.cfg.ChunkSize
		if end > len(indices) {
			end = len(indices)
		}
		chunk := indices[start:end]
		if err := ctx.Err(); err != nil {
			return append(failed, indices[start:]...)
		}
		req := service.SweepRequest{
			Profile: job.Profile,
			Config:  job.Config,
			Points:  make([]service.SweepPoint, len(chunk)),
			Target:  job.Target,
			SimSeed: job.SimSeed,
		}
		for k, idx := range chunk {
			req.Points[k] = job.Points[idx]
		}
		dctx, dispatch := tracer.StartSpan(ctx, "cluster.dispatch")
		dispatch.Annotate("peer", name)
		dispatch.Annotate("points", fmt.Sprintf("%d", len(chunk)))
		chunkStart := time.Now()
		resp, err := c.client.sweepOn(dctx, name, req)
		if err != nil {
			dispatch.Annotate("error", err.Error())
			dispatch.End()
			if ctx.Err() == nil {
				c.noteFailure(p, err, false)
			}
			return append(failed, indices[start:]...)
		}
		dispatch.End()
		chunkWall := time.Since(chunkStart).Seconds()
		c.noteSuccess(p, false)
		tracer.Import(resp.TraceSpans)
		for k, idx := range chunk {
			job.Report(idx, *resp.Results[k].Raw)
		}
		if job.ReportCost != nil {
			if len(resp.Cost) == len(chunk) {
				for k, idx := range chunk {
					e := resp.Cost[k]
					if e.Node == "" {
						e.Node = name
					}
					job.ReportCost(idx, e)
				}
			} else {
				wall := chunkWall / float64(len(chunk))
				for _, idx := range chunk {
					job.ReportCost(idx, service.PointCost{
						Tier: service.TierSimulated, Node: name, Cohort: -1, WallS: wall,
					})
				}
			}
		}
		c.remotePoints.Add(uint64(len(chunk)))
	}
	return failed
}

// PeerMetrics implements service.Cluster: scrape one peer's Prometheus
// exposition for the merged fleet view.
func (c *Coordinator) PeerMetrics(ctx context.Context, peer string) ([]byte, error) {
	return c.client.fetchMetrics(ctx, peer)
}

// Status implements service.Cluster.
func (c *Coordinator) Status() service.ClusterStatus {
	return service.ClusterStatus{
		Self:        c.cfg.Self,
		Replication: c.cfg.Replication,
		Peers:       c.peers.statuses(),
	}
}

// Stats implements service.Cluster.
func (c *Coordinator) Stats() service.ClusterStats {
	healthy := len(c.peers.healthyNames())
	return service.ClusterStats{
		PeersTotal:          len(c.peers.peers),
		PeersHealthy:        healthy,
		Probes:              c.probes.Load(),
		Ejections:           c.ejects.Load(),
		Readmissions:        c.readmits.Load(),
		GraphFetchHits:      c.fetchHits.Load(),
		GraphFetchMisses:    c.fetchMisses.Load(),
		GraphFetchErrors:    c.fetchErrors.Load(),
		HedgedFetches:       c.hedged.Load(),
		HedgeWins:           c.hedgeWins.Load(),
		OffersSent:          c.offersSent.Load(),
		OfferFailures:       c.offerFailures.Load(),
		RemotePoints:        c.remotePoints.Load(),
		LocalPoints:         c.localPoints.Load(),
		Failovers:           c.failovers.Load(),
		RepartitionedPoints: c.repartitioned.Load(),
		RPCRetries:          c.rpcRetries.Load(),
	}
}
