package cluster

import (
	"sync"
	"time"

	"repro/internal/service"
)

// peer is one remote node's health as this coordinator sees it. State
// transitions are driven from two sides — the background probe loop and
// RPC outcomes on the data path — through the same markFailure /
// markSuccess pair, so a sweep RPC failing is evidence exactly like a
// probe failing.
type peer struct {
	name string // base URL, also the peer's ring name

	mu          sync.Mutex
	healthy     bool
	consecFails int
	consecOKs   int
	lastProbe   time.Time
	lastErr     string
	ejections   uint64
	build       *service.BuildInfo // from the last successful probe
}

// setBuild records the peer's build provenance as the probe reported
// it. Kept across ejections: a down peer's last-known version is still
// useful for diagnosing why it went down.
func (p *peer) setBuild(b *service.BuildInfo) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.build = b
	p.mu.Unlock()
}

// peerSet holds the coordinator's remote peers (never self).
type peerSet struct {
	peers []*peer // sorted by name (ring order)
}

func newPeerSet(names []string) *peerSet {
	ps := &peerSet{}
	for _, n := range names {
		ps.peers = append(ps.peers, &peer{name: n, healthy: true})
	}
	return ps
}

func (ps *peerSet) byName(name string) *peer {
	for _, p := range ps.peers {
		if p.name == name {
			return p
		}
	}
	return nil
}

// healthyNames returns the names of peers currently admitted, sorted
// (the peers slice is built from the sorted ring membership).
func (ps *peerSet) healthyNames() []string {
	var out []string
	for _, p := range ps.peers {
		p.mu.Lock()
		if p.healthy {
			out = append(out, p.name)
		}
		p.mu.Unlock()
	}
	return out
}

func (ps *peerSet) statuses() []service.PeerStatus {
	out := make([]service.PeerStatus, 0, len(ps.peers))
	for _, p := range ps.peers {
		p.mu.Lock()
		var build *service.BuildInfo
		if p.build != nil {
			b := *p.build
			build = &b
		}
		out = append(out, service.PeerStatus{
			Name:                p.name,
			Healthy:             p.healthy,
			ConsecutiveFailures: p.consecFails,
			LastProbe:           p.lastProbe,
			LastError:           p.lastErr,
			Ejections:           p.ejections,
			Build:               build,
		})
		p.mu.Unlock()
	}
	return out
}

// markFailure records one failed probe or RPC against p. It returns
// true when this failure crossed the ejection threshold (the caller
// records the ejection event exactly once).
func (p *peer) markFailure(err error, threshold int, probed bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consecOKs = 0
	p.consecFails++
	if err != nil {
		p.lastErr = err.Error()
	}
	if probed {
		p.lastProbe = time.Now()
	}
	if p.healthy && p.consecFails >= threshold {
		p.healthy = false
		p.ejections++
		return true
	}
	return false
}

// markSuccess records one successful probe or RPC. It returns true when
// the success crossed the re-admission threshold for an ejected peer.
func (p *peer) markSuccess(threshold int, probed bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consecFails = 0
	p.consecOKs++
	if probed {
		p.lastProbe = time.Now()
		p.lastErr = ""
	}
	if !p.healthy && p.consecOKs >= threshold {
		p.healthy = true
		return true
	}
	return false
}

func (p *peer) isHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}
