package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/service"
)

// killableNode wraps one in-process statsimd node so a test can make it
// "die": once killed, every request — in-flight or new, healthz
// included — is aborted at the connection level, which is what a
// crashed process looks like to its peers.
type killableNode struct {
	svc     *service.Server
	ts      *httptest.Server
	coord   *cluster.Coordinator
	dead    atomic.Bool
	fanouts atomic.Uint64 // sub-sweep requests received
}

func (n *killableNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if r.URL.Path == "/v1/sweep" && r.Header.Get(service.ClusterFanoutHeader) != "" {
		n.fanouts.Add(1)
	}
	n.svc.Handler().ServeHTTP(w, r)
}

func (n *killableNode) kill() {
	n.dead.Store(true)
	n.ts.CloseClientConnections()
}

func clusterPost(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

var clusterSpec = service.ProfileSpec{Workload: "vpr", K: 1, N: 20_000, Seed: 1}

func clusterSweepReq() service.SweepRequest {
	return service.SweepRequest{Profile: clusterSpec, Grid: "quick", Target: 5_000}
}

// startCluster brings up n in-process nodes, each a full service.Server
// with its own cache-dir plus a Coordinator over the others.
func startCluster(t *testing.T, n int, faultsFor func(i int) *fault.Injector) []*killableNode {
	t.Helper()
	nodes := make([]*killableNode, n)
	for i := range nodes {
		var in *fault.Injector
		if faultsFor != nil {
			in = faultsFor(i)
		}
		svc, err := service.New(service.Options{
			Workers:    2,
			CacheSize:  4,
			JobTimeout: time.Minute,
			CacheDir:   t.TempDir(),
			Retry:      service.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			Faults:     in,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &killableNode{svc: svc}
		nodes[i].ts = httptest.NewServer(nodes[i])
		t.Cleanup(nodes[i].ts.Close)
		t.Cleanup(func() { svc.Close(context.Background()) })
	}
	for i, node := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.ts.URL)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Self:          node.ts.URL,
			Peers:         peers,
			Replication:   2,
			ChunkSize:     2,
			ProbeInterval: 50 * time.Millisecond,
			RPCTimeout:    2 * time.Second,
			SweepTimeout:  time.Minute,
			FailThreshold: 1,
			// High enough that the killed peer is never re-admitted by
			// accident within the test window.
			ReadmitThreshold: 1000,
			HedgeDelay:       10 * time.Millisecond,
			Retry:            service.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			Flight:           node.svc.Flight(),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.coord = coord
		node.svc.SetCluster(coord)
		coord.Start()
		t.Cleanup(coord.Close)
	}
	return nodes
}

// TestClusterChaosKillPeerMidSweep is the cluster tier's headline
// scenario: a 3-node cluster runs a sweep fanned out across all nodes,
// one peer dies while its sub-sweeps are in flight, and the sweep must
// still complete — with results byte-identical to an undisturbed
// single-node serial daemon's.
func TestClusterChaosKillPeerMidSweep(t *testing.T) {
	// Reference: an undisturbed single-worker, unclustered daemon.
	goldenSvc, err := service.New(service.Options{Workers: 1, CacheSize: 4, JobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	goldenTS := httptest.NewServer(goldenSvc.Handler())
	t.Cleanup(goldenTS.Close)
	t.Cleanup(func() { goldenSvc.Close(context.Background()) })
	var golden service.SweepResponse
	if code, body := clusterPost(t, goldenTS.URL+"/v1/sweep", clusterSweepReq(), &golden); code != 200 {
		t.Fatalf("golden sweep: %d %s", code, body)
	}
	goldenJSON, _ := json.Marshal(golden.Results)

	// The victim's sweep jobs are slowed so its sub-sweeps are reliably
	// in flight when it dies.
	const victim = 1
	nodes := startCluster(t, 3, func(i int) *fault.Injector {
		if i != victim {
			return nil
		}
		in := fault.New(99)
		in.Set(service.SiteSweepJob, fault.Rule{Prob: 1, Times: 100, Delay: 150 * time.Millisecond})
		return in
	})

	type sweepOutcome struct {
		resp service.SweepResponse
		code int
		body string
	}
	done := make(chan sweepOutcome, 1)
	go func() {
		var out sweepOutcome
		out.code, out.body = clusterPost(t, nodes[0].ts.URL+"/v1/sweep", clusterSweepReq(), &out.resp)
		done <- out
	}()

	// Kill the victim once it is actually working on a sub-sweep.
	deadline := time.Now().Add(10 * time.Second)
	for nodes[victim].fanouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never received a sub-sweep")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // let it get into the slow jobs
	nodes[victim].kill()

	out := <-done
	if out.code != 200 {
		t.Fatalf("clustered sweep did not survive peer death: %d %s", out.code, out.body)
	}
	if out.resp.Points != 9 || len(out.resp.Results) != 9 {
		t.Fatalf("point accounting broken: %+v", out.resp)
	}
	gotJSON, _ := json.Marshal(out.resp.Results)
	if !bytes.Equal(gotJSON, goldenJSON) {
		t.Errorf("clustered sweep with peer death differs from serial single-node run:\n%s\nvs\n%s",
			gotJSON, goldenJSON)
	}

	st := nodes[0].coord.Stats()
	if st.Failovers == 0 || st.RepartitionedPoints == 0 {
		t.Errorf("peer death did not register as failover: %+v", st)
	}
	if st.Ejections == 0 {
		t.Errorf("dead peer was never ejected: %+v", st)
	}
	// The flight recorder on the coordinator explains the reroute.
	var sawFailover bool
	for _, ev := range nodes[0].svc.Flight().Recent(0) {
		if ev.Endpoint == "cluster.failover" && ev.Peer == nodes[victim].ts.URL {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Error("no cluster.failover event in the flight recorder")
	}

	// The same sweep re-requested now — against the shrunken cluster —
	// resumes entirely from the coordinator's journal: every point was
	// reported and appended during the failover run.
	var again service.SweepResponse
	if code, body := clusterPost(t, nodes[0].ts.URL+"/v1/sweep", clusterSweepReq(), &again); code != 200 {
		t.Fatalf("re-sweep after peer death: %d %s", code, body)
	}
	if again.Resumed != 9 {
		t.Errorf("re-sweep recomputed points: resumed %d of 9", again.Resumed)
	}
	againJSON, _ := json.Marshal(again.Results)
	if !bytes.Equal(againJSON, goldenJSON) {
		t.Errorf("journal-resumed sweep differs from golden")
	}
}

// TestClusterGraphReplication exercises the peer cache tier end to end:
// node 0 pays for profiling once, the graph replicates to the key's
// owners, and a sweep on another node fetches it instead of
// re-profiling.
func TestClusterGraphReplication(t *testing.T) {
	nodes := startCluster(t, 3, nil)

	var prof service.ProfileResponse
	if code, body := clusterPost(t, nodes[0].ts.URL+"/v1/profile",
		service.ProfileRequest{ProfileSpec: clusterSpec}, &prof); code != 200 {
		t.Fatalf("profile: %d %s", code, body)
	}

	// Ask every other node to simulate: each must resolve the profile
	// without profiling it again (hedged remote fetch or replicated
	// offer, either is a win).
	for i := 1; i < 3; i++ {
		var sim service.SimulateResponse
		if code, body := clusterPost(t, nodes[i].ts.URL+"/v1/simulate",
			service.SimulateRequest{Profile: clusterSpec, Target: 5_000}, &sim); code != 200 {
			t.Fatalf("simulate on node %d: %d %s", i, code, body)
		}
	}
	var profiled uint64
	for i, n := range nodes {
		resp, err := http.Get(n.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap service.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if c := snap.Stages["profile"].Count; c > 0 {
			profiled += c
			if i != 0 {
				t.Logf("node %d profiled %d times", i, c)
			}
		}
	}
	if profiled > 1 {
		t.Errorf("profile computed %d times across the cluster, want 1 (peer fetch failed)", profiled)
	}
	// The fetch/offer surfaces saw traffic.
	var fetched, offered uint64
	for _, n := range nodes {
		st := n.coord.Stats()
		fetched += st.GraphFetchHits
		offered += st.OffersSent
	}
	if fetched == 0 && offered == 0 {
		t.Error("no peer graph traffic at all: cluster tier inert")
	}
}

// TestClusterStatusEndpoint smoke-checks GET /v1/cluster/status on a
// live cluster.
func TestClusterStatusEndpoint(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	resp, err := http.Get(nodes[0].ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status endpoint: %d", resp.StatusCode)
	}
	var body struct {
		Self        string `json:"self"`
		Replication int    `json:"replication"`
		Peers       []service.PeerStatus
		Stats       service.ClusterStats       `json:"stats"`
		Served      service.ClusterServedStats `json:"served"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Self != nodes[0].ts.URL || body.Replication != 2 || len(body.Peers) != 1 {
		t.Errorf("status body: %+v", body)
	}
	if body.Peers[0].Name != nodes[1].ts.URL || !body.Peers[0].Healthy {
		t.Errorf("peer status: %+v", body.Peers[0])
	}
}
