package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sfg"
)

// client performs the coordinator's peer RPCs. Every call carries a
// per-RPC deadline and runs under the service retry policy's jittered
// exponential backoff; definitive answers (a peer that does not hold a
// profile, a validation rejection) are wrapped service.Permanent so
// they return after the first attempt.
type client struct {
	http         *http.Client
	rpcTimeout   time.Duration
	sweepTimeout time.Duration
	retry        service.RetryPolicy
	retries      *atomic.Uint64
}

// errNotHeld reports a clean 404 from a fetch: the peer is alive and
// answered, it just does not have the graph.
var errNotHeld = fmt.Errorf("peer does not hold the profile")

// do runs one HTTP exchange under a deadline, returning the response
// body. Non-2xx statuses become errors carrying the body's error text;
// notFoundErr, when non-nil, replaces the generic error for 404 (so the
// caller can mark it Permanent).
func (c *client) do(ctx context.Context, timeout time.Duration, req func(ctx context.Context) (*http.Request, error), notFoundErr error) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	r, err := req(rctx)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(r)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound && notFoundErr != nil {
		return nil, service.Permanent(notFoundErr)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := struct {
			Error string `json:"error"`
		}{}
		_ = json.Unmarshal(body, &msg)
		err := fmt.Errorf("status %d: %s", resp.StatusCode, msg.Error)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			// The request itself is wrong (or the node is not
			// clustered); repeating it cannot help.
			return nil, service.Permanent(err)
		}
		return nil, err
	}
	return body, nil
}

// fetchGraph retrieves key's graph from the peer at base. The envelope
// CRC plus the embedded-key check validate the transfer end-to-end, so
// a truncated or corrupted body surfaces as a retriable error here, not
// as a bad graph downstream.
func (c *client) fetchGraph(ctx context.Context, base string, key service.ProfileKey) (*sfg.Graph, error) {
	payload, err := json.Marshal(service.ClusterFetchRequest{Key: key})
	if err != nil {
		return nil, err
	}
	var g *sfg.Graph
	err = c.retry.Run(ctx, c.retries, func() error {
		body, err := c.do(ctx, c.rpcTimeout, func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/fetch", bytes.NewReader(payload))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
			}
			return req, err
		}, errNotHeld)
		if err != nil {
			return err
		}
		_, decoded, err := service.DecodeProfileEnvelope(body, &key)
		if err != nil {
			return fmt.Errorf("envelope from %s: %w", base, err)
		}
		g = decoded
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// offerGraph pushes an already-encoded envelope to the peer at base.
func (c *client) offerGraph(ctx context.Context, base string, envelope []byte) error {
	return c.retry.Run(ctx, c.retries, func() error {
		_, err := c.do(ctx, c.rpcTimeout, func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/offer", bytes.NewReader(envelope))
			if err == nil {
				req.Header.Set("Content-Type", "application/octet-stream")
			}
			return req, err
		}, nil)
		return err
	})
}

// probe asks the peer's health endpoint. Only a clean 200 counts: a
// draining or shedding node answers 503, and routing new sweep points
// at it would be wrong even though its process is alive. A healthy
// answer also yields the peer's build provenance for /v1/cluster/status
// — a mixed-version ring is the first thing to check when nodes
// disagree.
func (c *client) probe(ctx context.Context, base string) (*service.BuildInfo, error) {
	rctx, cancel := context.WithTimeout(ctx, c.rpcTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var health service.HealthResponse
	if err := json.Unmarshal(body, &health); err == nil {
		b := health.Build
		return &b, nil
	}
	return nil, nil
}

// fetchMetrics scrapes the peer's Prometheus exposition for the fleet
// metrics view. One attempt under the RPC timeout: a scrape is a
// point-in-time read, and the fleet view reports an unreachable peer
// as down rather than blocking the merged exposition on retries.
func (c *client) fetchMetrics(ctx context.Context, base string) ([]byte, error) {
	return c.do(ctx, c.rpcTimeout, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics?format=prometheus", nil)
		if err == nil {
			req.Header.Set("Accept", "text/plain")
		}
		return req, err
	}, nil)
}

// sweepOn runs a sub-sweep on the peer at base and returns the peer's
// full response (rows in point order, plus the cost ledger tail and
// the trace-span slice the peer piggybacks for fanout requests). The
// fanout header stops the peer from fanning the sub-request back out,
// raw_metrics makes the returned metrics byte-exact for journaling,
// and the trace headers parent the peer's spans under the
// coordinator's dispatch span so every slice assembles into one tree.
// The call is NOT retried here: a failure is peer-loss evidence, and
// the coordinator's failover re-partitions the unfinished points
// instead (the peer's own journal deduplicates any points it had
// already finished).
func (c *client) sweepOn(ctx context.Context, base string, req service.SweepRequest) (*service.SweepResponse, error) {
	req.RawMetrics = true
	req.Cost = true
	traceID := obs.TraceIDFromContext(ctx)
	parentSpan := obs.SpanIDFromContext(ctx)
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	body, err := c.do(ctx, c.sweepTimeout, func(ctx context.Context) (*http.Request, error) {
		r, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(payload))
		if err == nil {
			r.Header.Set("Content-Type", "application/json")
			r.Header.Set(service.ClusterFanoutHeader, "1")
			if traceID != "" {
				r.Header.Set("X-Request-Id", traceID)
			}
			if parentSpan != "" {
				r.Header.Set(service.ClusterParentSpanHeader, parentSpan)
			}
		}
		return r, err
	}, nil)
	if err != nil {
		return nil, err
	}
	var resp service.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("sub-sweep response from %s: %w", base, err)
	}
	if len(resp.Results) != len(req.Points) {
		return nil, fmt.Errorf("sub-sweep returned %d rows for %d points", len(resp.Results), len(req.Points))
	}
	for i := range resp.Results {
		if resp.Results[i].Raw == nil {
			return nil, fmt.Errorf("sub-sweep row %d missing raw metrics", i)
		}
	}
	return &resp, nil
}
