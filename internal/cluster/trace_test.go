package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestClusterDistributedTraceAndCostLedger is the tentpole's acceptance
// scenario: a 3-node cluster runs one fanned-out sweep, and afterwards
// the coordinator serves a single assembled span tree covering the
// coordinator and at least one peer — dispatch spans, peer sub-sweep
// spans, per-cohort spans — while the cost ledger accounts for 100% of
// the points with (tier, node, wall-time). Run under -race in CI's
// cluster job.
func TestClusterDistributedTraceAndCostLedger(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	const traceID = "cluster-trace-ledger"

	req := clusterSweepReq()
	req.Cost = true
	buf, _ := json.Marshal(req)
	httpReq, err := http.NewRequest(http.MethodPost, nodes[0].ts.URL+"/v1/sweep", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-Id", traceID)
	httpResp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	raw.ReadFrom(httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != 200 {
		t.Fatalf("clustered sweep: %d %s", httpResp.StatusCode, raw.String())
	}
	var resp service.SweepResponse
	if err := json.Unmarshal(raw.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	// Ledger: every point accounted, each with tier, node and wall time.
	if len(resp.Cost) != resp.Points {
		t.Fatalf("ledger covers %d of %d points", len(resp.Cost), resp.Points)
	}
	ledgerNodes := map[string]int{}
	seen := map[int]bool{}
	for _, e := range resp.Cost {
		if seen[e.Index] {
			t.Fatalf("duplicate ledger entry for point %d", e.Index)
		}
		seen[e.Index] = true
		if e.Tier == "" {
			t.Errorf("point %d has no tier", e.Index)
		}
		if e.Node == "" {
			t.Errorf("point %d has no executing node", e.Index)
		}
		if e.WallS < 0 {
			t.Errorf("point %d wall time negative: %v", e.Index, e.WallS)
		}
		ledgerNodes[e.Node]++
	}
	if len(ledgerNodes) < 2 {
		t.Errorf("ledger names %d node(s), want the sweep spread over >=2: %v", len(ledgerNodes), ledgerNodes)
	}

	// A direct (non-fanout) response must not carry the span slice even
	// though the sweep was clustered — spans travel via the trace store.
	if strings.Contains(raw.String(), "trace_spans") {
		t.Error("trace_spans leaked into a coordinator response")
	}

	// The assembled tree: one root spanning coordinator and peers. The
	// trace store is written as the handler unwinds, so poll briefly.
	var tree obs.TraceTree
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(nodes[0].ts.URL + "/v1/debug/trace/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		ok := r.StatusCode == 200
		if ok {
			err = json.NewDecoder(r.Body).Decode(&tree)
		}
		r.Body.Close()
		if ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared on the coordinator", traceID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(tree.Nodes) < 2 {
		t.Fatalf("span tree covers %d node(s), want >=2: %v", len(tree.Nodes), tree.Nodes)
	}
	if len(tree.Roots) == 0 {
		t.Fatal("no roots in the assembled tree")
	}
	root := tree.Roots[0]
	if root.Name != "http /v1/sweep" || root.Node != nodes[0].ts.URL {
		t.Fatalf("root = %q on %q, want the coordinator's http span", root.Name, root.Node)
	}
	counts := map[string]int{}
	remoteSpans := 0
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		counts[n.Name]++
		if n.Node != nodes[0].ts.URL {
			remoteSpans++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, want := range []string{"cluster.round", "cluster.dispatch", "sweep.sub", "cohort"} {
		if counts[want] == 0 {
			t.Errorf("tree has no %q span: %v", want, counts)
		}
	}
	if remoteSpans == 0 {
		t.Error("no peer spans reachable under the coordinator's root")
	}

	// Satellite: fan-out flight events on the peers carry the root trace
	// ID, so ?trace_id= works cluster-wide.
	peerFanoutEvents := 0
	for i := 1; i < 3; i++ {
		for _, ev := range nodes[i].svc.Flight().Recent(0) {
			if ev.Endpoint == "/v1/sweep" && ev.TraceID == traceID {
				peerFanoutEvents++
				if ev.Spans == 0 {
					t.Errorf("peer %d fanout event reports zero spans", i)
				}
			}
		}
	}
	if peerFanoutEvents == 0 {
		t.Error("no peer flight event carries the root trace ID")
	}
}

// TestClusterFleetMetricsView scrapes the merged fleet exposition from
// the coordinator and checks all three nodes appear, node-labelled,
// with their up gauges set.
func TestClusterFleetMetricsView(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	resp, err := http.Get(nodes[0].ts.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("fleet metrics: %d %s", resp.StatusCode, body.String())
	}
	text := body.String()
	for _, n := range nodes {
		up := `statsimd_fleet_node_up{node="` + n.ts.URL + `"} 1`
		if !strings.Contains(text, up) {
			t.Errorf("fleet view missing %q", up)
		}
		labelled := `statsimd_uptime_seconds{node="` + n.ts.URL + `"}`
		if !strings.Contains(text, labelled) {
			t.Errorf("fleet view missing node-labelled uptime for %s", n.ts.URL)
		}
	}
	if strings.Count(text, "# TYPE statsimd_uptime_seconds gauge") != 1 {
		t.Error("family preamble duplicated across nodes")
	}
}

// TestClusterStatusBuildProvenance checks the satellite: after a probe
// cycle the coordinator's status rows carry each peer's build info.
func TestClusterStatusBuildProvenance(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := nodes[0].coord.Status()
		if len(st.Peers) == 1 && st.Peers[0].Build != nil {
			if st.Peers[0].Build.GoVersion == "" {
				t.Fatalf("peer build row empty: %+v", st.Peers[0].Build)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer build provenance never filled: %+v", st.Peers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
