package cluster

import (
	"fmt"
	"testing"
)

func ringPeers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8417", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := newRing(ringPeers(5), 64)
	// Same membership presented in a different order must build the
	// identical ring: ownership is what every node must agree on.
	shuffled := []string{"http://node-3:8417", "http://node-0:8417", "http://node-4:8417",
		"http://node-1:8417", "http://node-2:8417"}
	b := newRing(shuffled, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if len(oa) != 2 || len(ob) != 2 || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("key %q: owners diverge between identical rings: %v vs %v", key, oa, ob)
		}
	}
}

func TestRingDistinctReplicas(t *testing.T) {
	r := newRing(ringPeers(4), 64)
	for i := 0; i < 200; i++ {
		owners := r.Owners(fmt.Sprintf("key-%d", i), 3)
		if len(owners) != 3 {
			t.Fatalf("want 3 owners, got %v", owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate replica owner in %v", owners)
			}
			seen[o] = true
		}
	}
}

func TestRingReplicationClamped(t *testing.T) {
	r := newRing(ringPeers(2), 16)
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Errorf("owners not clamped to peer count: %v", got)
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Errorf("non-positive n must mean one owner: %v", got)
	}
}

func TestRingBalance(t *testing.T) {
	const keys = 4000
	peers := ringPeers(4)
	r := newRing(peers, 64)
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	// With 64 vnodes the split is not exact, but no peer should own
	// less than half or more than double its fair share.
	fair := keys / len(peers)
	for _, p := range peers {
		if c := counts[p]; c < fair/2 || c > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair %d): ring badly unbalanced %v",
				p, c, keys, fair, counts)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	const keys = 2000
	full := newRing(ringPeers(5), 64)
	smaller := newRing(ringPeers(4), 64) // node-4 removed

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owners(key, 1)[0]
		after := smaller.Owners(key, 1)[0]
		if before == "http://node-4:8417" {
			continue // must move, its owner is gone
		}
		if before != after {
			moved++
		}
	}
	// Consistent hashing's whole point: keys not owned by the removed
	// peer keep their owner.
	if moved != 0 {
		t.Errorf("%d of %d surviving-owner keys changed owner on peer removal", moved, keys)
	}
}
