// Package cluster implements the daemon's peer tier: a consistent-hash
// ring that assigns profile ownership across statsimd nodes, health
// probing with ejection and re-admission, hedged peer-to-peer graph
// fetches over the durable store's checksummed envelope, and a sweep
// coordinator that partitions design grids across peers and
// re-partitions deterministically when a peer dies mid-sweep.
//
// The package implements service.Cluster; the dependency is strictly
// one-directional (cluster imports service, never the reverse), and
// cmd/statsimd wires the two together.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/service"
)

// ring is a consistent-hash ring with virtual nodes. Each peer name is
// hashed onto the ring vnodes times; a key's owners are the first
// distinct peers clockwise from the key's hash. Peer membership is
// fixed at construction (the daemon's peer list is static
// configuration); health is layered on top by the coordinator, which
// skips ejected owners rather than re-hashing — so a peer's ownership,
// and therefore where replicas accumulate, is stable across failures.
type ring struct {
	names  []string // sorted distinct peer names
	hashes []uint64 // sorted vnode hashes
	owner  []int    // owner[i] indexes names for hashes[i]
}

// hash64 is FNV-64a run through a splitmix64 finalizer. FNV alone
// distributes near-identical strings ("…#0", "…#1") poorly across the
// high bits, which skews ring segments badly; the finalizer avalanches
// every input bit across the word. Both stages are fixed arithmetic —
// stable across processes and architectures, which matters because
// every node must compute identical ownership.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// newRing builds a ring over the given peer names (duplicates
// collapsed) with vnodes virtual nodes per peer.
func newRing(names []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(names))
	r := &ring{}
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.names = append(r.names, n)
	}
	sort.Strings(r.names)
	type vnode struct {
		hash  uint64
		owner int
	}
	vs := make([]vnode, 0, len(r.names)*vnodes)
	for oi, n := range r.names {
		for v := 0; v < vnodes; v++ {
			vs = append(vs, vnode{hash: hash64(fmt.Sprintf("%s#%d", n, v)), owner: oi})
		}
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].hash != vs[j].hash {
			return vs[i].hash < vs[j].hash
		}
		// Tie-break on owner so identical configurations sort
		// identically on every node.
		return vs[i].owner < vs[j].owner
	})
	r.hashes = make([]uint64, len(vs))
	r.owner = make([]int, len(vs))
	for i, v := range vs {
		r.hashes[i] = v.hash
		r.owner[i] = v.owner
	}
	return r
}

// Owners returns the first n distinct peers clockwise from key's hash —
// the replica set for the key. n is clamped to the peer count.
func (r *ring) Owners(key string, n int) []string {
	if len(r.names) == 0 {
		return nil
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	if n < 1 {
		n = 1
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		oi := r.owner[(start+i)%len(r.hashes)]
		if !taken[oi] {
			taken[oi] = true
			out = append(out, r.names[oi])
		}
	}
	return out
}

// Peers returns the ring's member names, sorted.
func (r *ring) Peers() []string { return r.names }

// profileKeyString renders a ProfileKey canonically for ring hashing.
// Every node must produce the same string for the same key.
func profileKeyString(k service.ProfileKey) string {
	return fmt.Sprintf("%s/k=%d/n=%d/seed=%d", k.Workload, k.K, k.N, k.Seed)
}
