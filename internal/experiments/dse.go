package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/service"
)

// DSEPoint is one design point of the §4.6 exploration. It is the
// service layer's sweep point: the CLI sweep, the statsimd daemon and
// this experiment all walk the same design space through the same
// parallel sweep implementation.
type DSEPoint = service.SweepPoint

// PaperGrid returns the paper's 1,792-point design space: RUU in
// {8..128} x LSQ in {4..64} with LSQ <= RUU/2 (28 pairs), and decode,
// issue and commit widths each in {2,4,6,8}.
func PaperGrid() []DSEPoint { return service.PaperGrid() }

// QuickGrid is a reduced design space for tests and smoke runs.
func QuickGrid() []DSEPoint { return service.QuickGrid() }

// DSEBenchResult is the exploration outcome for one benchmark.
type DSEBenchResult struct {
	Name string
	// SSBest is the EDP-optimal point according to statistical
	// simulation; SSBestEDP its statistically estimated EDP.
	SSBest    DSEPoint
	SSBestEDP float64
	// Candidates counts points whose statistical EDP lies within 3% of
	// the optimum (the paper's "region of energy-efficient designs").
	Candidates int
	// EDSBest is the best of the candidate set under execution-driven
	// simulation; MissPct is how far (in EDS EDP) the SS choice landed
	// from it (0 = statistical simulation identified the optimum).
	EDSBest DSEPoint
	MissPct float64
}

// DSEResult is the full experiment.
type DSEResult struct {
	Scale  Scale
	Points int
	Rows   []DSEBenchResult
}

// DSE explores the design space with statistical simulation only, then
// verifies with execution-driven simulation of the candidate region —
// the paper's §4.6 protocol, where statistical simulation found the
// optimal design for 7 of 10 benchmarks and landed within 1.24% of it
// for the rest.
func DSE(s Scale, grid []DSEPoint) (*DSEResult, error) {
	s = s.withDefaults()
	if len(grid) == 0 {
		grid = PaperGrid()
	}
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	base := baseline()
	// Per-point synthetic traces can be shorter than the headline
	// SynthTarget: EDP ranking needs less precision than absolute error.
	perPoint := s.SynthTarget / 3
	if perPoint < 5_000 {
		perPoint = 5_000
	}

	// One pool serves every benchmark's per-point sweep; the results of
	// service.Sweep come back in grid order, so the parallel exploration
	// is byte-identical to the serial per-point loop it replaced.
	pool := service.NewPool(s.Parallelism)
	defer pool.Drain(context.Background())

	rows, err := parallelMap(s, ws, func(w core.Workload) (DSEBenchResult, error) {
		row := DSEBenchResult{Name: w.Name}
		g, err := core.Profile(base, w.Stream(s.ExecSeed, 0, s.RefInstructions), core.ProfileOptions{K: 1})
		if err != nil {
			return row, err
		}
		r := core.ReductionFor(g, perPoint)

		swept, err := service.Sweep(context.Background(), pool, base, g, grid, r, 1)
		if err != nil {
			return row, err
		}
		edps := make([]float64, len(grid))
		for i := range swept {
			edps[i] = swept[i].Metrics.EDP()
		}
		bestIdx := 0
		for i := range edps {
			if edps[i] < edps[bestIdx] {
				bestIdx = i
			}
		}
		row.SSBest = grid[bestIdx]
		row.SSBestEDP = edps[bestIdx]

		// Candidate region: statistical EDP within 3% of the optimum.
		type cand struct {
			idx int
			edp float64
		}
		var cands []cand
		for i := range edps {
			if edps[i] <= edps[bestIdx]*1.03 {
				cands = append(cands, cand{i, edps[i]})
			}
		}
		row.Candidates = len(cands)
		sort.Slice(cands, func(a, b int) bool { return cands[a].edp < cands[b].edp })
		if len(cands) > 25 {
			cands = cands[:25]
		}

		// Verify the region with execution-driven simulation.
		bestEDS := -1.0
		var ssEDS float64
		for _, c := range cands {
			m := core.Reference(grid[c.idx].Apply(base), w.Stream(s.ExecSeed, 0, s.RefInstructions))
			edp := m.EDP()
			if c.idx == bestIdx {
				ssEDS = edp
			}
			if bestEDS < 0 || edp < bestEDS {
				bestEDS = edp
				row.EDSBest = grid[c.idx]
			}
		}
		if bestEDS > 0 {
			row.MissPct = (ssEDS - bestEDS) / bestEDS
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &DSEResult{Scale: s, Points: len(grid), Rows: rows}, nil
}

// Hits returns how many benchmarks' SS choice was the EDS optimum of
// the candidate region.
func (r *DSEResult) Hits() int {
	n := 0
	for _, row := range r.Rows {
		if row.MissPct <= 1e-12 {
			n++
		}
	}
	return n
}

// Render returns the result as text.
func (r *DSEResult) Render() string {
	t := &table{header: []string{"benchmark", "SS-optimal point", "cands(3%)", "EDS-best point", "miss"}}
	for _, row := range r.Rows {
		t.add(row.Name, row.SSBest.String(), fmt.Sprint(row.Candidates),
			row.EDSBest.String(), pct(row.MissPct))
	}
	return fmt.Sprintf("Section 4.6: design-space exploration over %d points (EDP)\n%s\nSS identified the EDS optimum for %d/%d benchmarks\n",
		r.Points, t.String(), r.Hits(), len(r.Rows))
}
