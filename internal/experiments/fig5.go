package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Fig5Row is one benchmark's IPC prediction error with immediate vs
// delayed update during branch profiling (perfect caches, real branch
// predictor).
type Fig5Row struct {
	Name      string
	Immediate float64
	Delayed   float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Scale Scale
	Rows  []Fig5Row
}

// Fig5 evaluates the importance of modeling delayed update during
// branch profiling: synthetic traces built from immediate-update
// profiles underestimate branch stalls and overpredict IPC.
func Fig5(s Scale) (*Fig5Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	cfg.PerfectCaches = true
	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig5Row, error) {
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		imm, err := s.statSim(cfg, w, core.ProfileOptions{K: 1, ImmediateUpdate: true}, 3)
		if err != nil {
			return Fig5Row{}, err
		}
		del, err := s.statSim(cfg, w, core.ProfileOptions{K: 1}, 3)
		if err != nil {
			return Fig5Row{}, err
		}
		return Fig5Row{
			Name:      w.Name,
			Immediate: stats.AbsError(imm.IPC(), eds.IPC()),
			Delayed:   stats.AbsError(del.IPC(), eds.IPC()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Scale: s, Rows: rows}, nil
}

// Avg returns the benchmark-averaged errors (immediate, delayed).
func (r *Fig5Result) Avg() (imm, del float64) {
	for _, row := range r.Rows {
		imm += row.Immediate
		del += row.Delayed
	}
	n := float64(len(r.Rows))
	return imm / n, del / n
}

// Render returns the figure data as text.
func (r *Fig5Result) Render() string {
	t := &table{header: []string{"benchmark", "immediate", "delayed"}}
	for _, row := range r.Rows {
		t.add(row.Name, pct(row.Immediate), pct(row.Delayed))
	}
	i, d := r.Avg()
	t.add("avg", pct(i), pct(d))
	return "Figure 5: IPC prediction error, immediate vs delayed update profiling (perfect caches)\n" + t.String()
}
