package experiments

import (
	"time"

	"repro/internal/core"
)

// SpeedRow reports one benchmark's simulation-cost comparison.
type SpeedRow struct {
	Name        string
	EDSSeconds  float64 // execution-driven simulation of the reference stream
	ProfSeconds float64 // one-off statistical profiling cost
	SSSeconds   float64 // synthetic-trace generation + simulation
	Speedup     float64 // EDS time / SS time (excluding the one-off profile)
	R           uint64
}

// SpeedResult is the §4.1 speed study. The paper reports 100x-1,000x
// for 100M-instruction samples and 10,000x-100,000x at 10B; the speedup
// here scales with R (reference length / synthetic length), so at our
// reduced reference lengths the measured factors are proportionally
// smaller — the per-instruction simulation rates are what carries.
type SpeedResult struct {
	Scale Scale
	Rows  []SpeedRow
}

// Speed times execution-driven simulation against statistical
// simulation on every benchmark. Unlike the other experiments this one
// measures wall-clock and is therefore machine-dependent; it is
// excluded from deterministic comparisons and exists to substantiate
// the §4.1 claim that synthetic traces make simulation cost independent
// of workload length.
func Speed(s Scale) (*SpeedResult, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	res := &SpeedResult{Scale: s}
	// Sequential on purpose: timing runs must not contend.
	for _, w := range ws {
		t0 := time.Now()
		core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		edsT := time.Since(t0).Seconds()

		t0 = time.Now()
		g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions), core.ProfileOptions{K: 1})
		if err != nil {
			return nil, err
		}
		profT := time.Since(t0).Seconds()

		r := core.ReductionFor(g, s.SynthTarget)
		t0 = time.Now()
		if _, err := core.StatSim(cfg, g, r, 1); err != nil {
			return nil, err
		}
		ssT := time.Since(t0).Seconds()

		speedup := 0.0
		if ssT > 0 {
			speedup = edsT / ssT
		}
		res.Rows = append(res.Rows, SpeedRow{
			Name: w.Name, EDSSeconds: edsT, ProfSeconds: profT,
			SSSeconds: ssT, Speedup: speedup, R: r,
		})
	}
	return res, nil
}

// Render returns the study as text.
func (r *SpeedResult) Render() string {
	t := &table{header: []string{"benchmark", "EDS (s)", "profile (s)", "statsim (s)", "speedup", "R"}}
	var sum float64
	for _, row := range r.Rows {
		t.addf("%s\t%.3f\t%.3f\t%.3f\t%.1fx\t%d",
			row.Name, row.EDSSeconds, row.ProfSeconds, row.SSSeconds, row.Speedup, row.R)
		sum += row.Speedup
	}
	t.addf("avg\t\t\t\t%.1fx\t", sum/float64(len(r.Rows)))
	return "Section 4.1: simulation cost, execution-driven vs statistical (speedup scales with R)\n" + t.String()
}
