package experiments

import (
	"strings"
	"testing"
)

// quick returns a small scale that exercises every code path fast.
func quick() Scale {
	s := QuickScale()
	s.RefInstructions = 120_000
	s.SynthTarget = 25_000
	s.Seeds = 3
	s.Benchmarks = []string{"gzip", "vpr"}
	return s
}

func TestTable1(t *testing.T) {
	r, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.IPC <= 0 || row.IPC > 8 {
			t.Errorf("%s IPC %.3f implausible", row.Name, row.IPC)
		}
		if row.EPC <= 0 {
			t.Errorf("%s EPC %.2f", row.Name, row.EPC)
		}
	}
	if !strings.Contains(r.Render(), "gzip") {
		t.Error("render missing benchmark")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Delayed-update profiling must land between immediate-update
		// profiling and overshoot, and closer to EDS than immediate is.
		edsGapDel := abs(row.Delayed - row.EDS)
		edsGapImm := abs(row.Immediate - row.EDS)
		if edsGapDel > edsGapImm {
			t.Errorf("%s: delayed profiling (%.2f) further from EDS (%.2f) than immediate (%.2f)",
				row.Name, row.Delayed, row.EDS, row.Immediate)
		}
		if row.Immediate > row.EDS {
			t.Logf("%s: immediate (%.2f) above EDS (%.2f) — unusual but possible", row.Name, row.Immediate, row.EDS)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core claim: k >= 1 is dramatically better than k = 0.
	if r.AvgError(1) > r.AvgError(0) {
		t.Errorf("k=1 error %.3f should not exceed k=0 error %.3f", r.AvgError(1), r.AvgError(0))
	}
	if r.AvgError(1) > 0.10 {
		t.Errorf("k=1 average error %.1f%% too large", 100*r.AvgError(1))
	}
	// Table 3 property: node counts grow with k.
	for _, row := range r.Rows {
		for k := 1; k <= 3; k++ {
			if row.Nodes[k] < row.Nodes[k-1] {
				t.Errorf("%s: nodes shrank from k=%d (%d) to k=%d (%d)",
					row.Name, k-1, row.Nodes[k-1], k, row.Nodes[k])
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	imm, del := r.Avg()
	if del > imm+0.02 {
		t.Errorf("delayed-update profiles should predict at least as well: imm=%.3f del=%.3f", imm, del)
	}
	if del > 0.15 {
		t.Errorf("delayed-update error %.1f%% too large", 100*del)
	}
}

func TestCoVShape(t *testing.T) {
	s := quick()
	s.Seeds = 6
	r, err := CoV(s, []uint64{4_000, 30_000})
	if err != nil {
		t.Fatal(err)
	}
	short, long := r.AvgAt(0), r.AvgAt(1)
	if long > short {
		t.Errorf("CoV should shrink with trace length: %.4f (short) vs %.4f (long)", short, long)
	}
	if long > 0.08 {
		t.Errorf("CoV at 30k = %.4f, want small", long)
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	ipc, epc, _ := r.Avg()
	if ipc > 0.15 {
		t.Errorf("average IPC error %.1f%% too large (paper: 6.6%%)", 100*ipc)
	}
	if epc > 0.12 {
		t.Errorf("average EPC error %.1f%% too large (paper: 4%%)", 100*epc)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	h, sm := r.Avg()
	if sm > h {
		t.Errorf("SMART-HLS (%.1f%%) should beat HLS (%.1f%%) on average", 100*sm, 100*h)
	}
}

func TestFig8Shape(t *testing.T) {
	s := quick()
	s.RefInstructions = 60_000
	s.SynthTarget = 15_000
	r, err := Fig8(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	one, ten, hundred, sp := r.Avg()
	for _, e := range []float64{one, ten, hundred, sp} {
		if e > 0.35 {
			t.Errorf("scenario error %.1f%% implausibly large (%v)", 100*e, []float64{one, ten, hundred, sp})
			break
		}
	}
	for _, row := range r.Rows {
		if row.Points < 1 {
			t.Errorf("%s: no simulation points", row.Name)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	s := quick()
	s.Benchmarks = []string{"gzip"}
	r, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweeps) != 5 {
		t.Fatalf("sweeps = %d, want 5", len(r.Sweeps))
	}
	for _, sw := range r.Sweeps {
		if len(sw.Transitions) == 0 {
			t.Errorf("sweep %q has no transitions", sw.Name)
		}
	}
	// Relative errors should be small on average (paper: < 3%); allow
	// headroom at quick scale.
	var sum float64
	var n int
	for _, sw := range r.Sweeps {
		for _, tr := range sw.Transitions {
			for _, e := range tr.Errors {
				sum += e
				n++
			}
		}
	}
	if avg := sum / float64(n); avg > 0.08 {
		t.Errorf("mean relative error %.1f%% too large", 100*avg)
	}
}

func TestDSEShape(t *testing.T) {
	s := quick()
	s.Benchmarks = []string{"gzip"}
	r, err := DSE(s, QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Candidates < 1 {
		t.Error("no candidate designs")
	}
	if row.MissPct > 0.10 {
		t.Errorf("SS-chosen design %.1f%% off the EDS optimum", 100*row.MissPct)
	}
	if row.SSBest.RUU == 0 {
		t.Error("no best point identified")
	}
}

func TestAblationShape(t *testing.T) {
	s := quick()
	r, err := Ablation(s)
	if err != nil {
		t.Fatal(err)
	}
	full, k0, _, _ := r.Avg()
	if full > 0.15 {
		t.Errorf("full framework error %.1f%% too large", 100*full)
	}
	// Removing control-flow correlation must not help on average.
	if k0 < full-0.02 {
		t.Errorf("k=0 (%.1f%%) should not beat the full framework (%.1f%%)", 100*k0, 100*full)
	}
}

func TestPaperGridSize(t *testing.T) {
	if got := len(PaperGrid()); got != 1792 {
		t.Fatalf("paper grid has %d points, want 1792", got)
	}
}

func TestSpeedShape(t *testing.T) {
	s := quick()
	s.Benchmarks = []string{"vpr"}
	r, err := Speed(s)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.EDSSeconds <= 0 || row.SSSeconds <= 0 {
		t.Error("timings missing")
	}
	if row.Speedup <= 1 {
		t.Errorf("statistical simulation should be faster than EDS (speedup %.2f)", row.Speedup)
	}
	if !strings.Contains(r.Render(), "speedup") {
		t.Error("render missing speedup column")
	}
}

func TestBpredKindsShape(t *testing.T) {
	s := quick()
	s.Benchmarks = []string{"crafty"}
	r, err := BpredKinds(s)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]BpredKindRow{}
	for _, row := range r.Rows {
		byKind[row.Kind] = row
	}
	// A real predictor must beat static not-taken on mispredict rate,
	// and the hybrid should be at least as good as bimodal alone.
	if byKind["hybrid"].MisPKI >= byKind["nottaken"].MisPKI {
		t.Errorf("hybrid (%.1f/KI) should beat static not-taken (%.1f/KI)",
			byKind["hybrid"].MisPKI, byKind["nottaken"].MisPKI)
	}
	for _, row := range r.Rows {
		if row.SSErr > 0.25 {
			t.Errorf("%s/%s: statistical simulation error %.1f%% too large",
				row.Name, row.Kind, 100*row.SSErr)
		}
	}
}

func TestAddrSweepShape(t *testing.T) {
	s := quick()
	s.RefInstructions = 200_000
	s.Benchmarks = []string{"twolf"}
	r, err := AddrSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.EDSRatio <= 0 || row.EDSRatio > 1.2 {
		t.Errorf("EDS shrink ratio %.3f implausible", row.EDSRatio)
	}
	if row.AddrSynthErr > 0.35 {
		t.Errorf("synthetic-address trend error %.1f%% too large", 100*row.AddrSynthErr)
	}
	if !strings.Contains(r.Render(), "addr-synth") {
		t.Error("render missing column")
	}
}

func TestBarChart(t *testing.T) {
	c := newBarChart("demo")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	c.add("a", 2, "two")
	c.add("bb", 1, "one")
	c.add("z", 0, "zero")
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "##") {
		t.Errorf("bad chart:\n%s", out)
	}
	// The longest bar belongs to the largest value.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("registry has %d experiments, want 14: %v", len(names), names)
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown experiment accepted")
	}
	// One real run through the registry path.
	res, err := Run("table1", quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestRenderTable(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") || !strings.Contains(out, "x") {
		t.Errorf("bad table:\n%s", out)
	}
}
