package experiments

import (
	"repro/internal/core"
)

// Fig3Row is one benchmark's branch mispredictions per 1,000
// instructions under the three scenarios of Fig. 3.
type Fig3Row struct {
	Name      string
	EDS       float64 // execution-driven simulation
	Immediate float64 // branch profiling with immediate update
	Delayed   float64 // branch profiling with delayed update (FIFO)
}

// Fig3Result is the full figure.
type Fig3Result struct {
	Scale Scale
	Rows  []Fig3Row
}

// Fig3 compares the number of branch mispredictions per 1,000
// instructions seen by execution-driven simulation against the two
// profiling disciplines (§2.1.3). The paper's claim: delayed-update
// profiling closely tracks EDS while immediate update underestimates.
func Fig3(s Scale) (*Fig3Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig3Row, error) {
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		imm, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions),
			core.ProfileOptions{K: 1, ImmediateUpdate: true})
		if err != nil {
			return Fig3Row{}, err
		}
		del, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions),
			core.ProfileOptions{K: 1})
		if err != nil {
			return Fig3Row{}, err
		}
		return Fig3Row{
			Name:      w.Name,
			EDS:       eds.Branch.MispredictsPerKI(eds.Instructions),
			Immediate: imm.MispredictsPerKI(),
			Delayed:   del.MispredictsPerKI(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Scale: s, Rows: rows}, nil
}

// Render returns the figure data as text.
func (r *Fig3Result) Render() string {
	t := &table{header: []string{"benchmark", "EDS", "immediate", "delayed"}}
	c := newBarChart("")
	for _, row := range r.Rows {
		t.add(row.Name, f2(row.EDS), f2(row.Immediate), f2(row.Delayed))
		c.addf(row.Name+"/eds", row.EDS, "%.2f", row.EDS)
		c.addf(row.Name+"/imm", row.Immediate, "%.2f", row.Immediate)
		c.addf(row.Name+"/del", row.Delayed, "%.2f", row.Delayed)
	}
	return "Figure 3: branch mispredictions per 1,000 instructions\n" + t.String() + "\n" + c.String()
}
