package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sfg"
	"repro/internal/stats"
)

// metricFn extracts one Table 4 metric from a run.
type metricFn func(core.Metrics) float64

func metricIPC(m core.Metrics) float64    { return m.IPC() }
func metricEPC(m core.Metrics) float64    { return m.EPC() }
func metricRUUOcc(m core.Metrics) float64 { return m.AvgRUUOcc }
func metricLSQOcc(m core.Metrics) float64 { return m.AvgLSQOcc }
func metricIFQOcc(m core.Metrics) float64 { return m.AvgIFQOcc }
func metricExecBW(m core.Metrics) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Act.Issued) / float64(m.Cycles)
}
func metricUnit(u power.Unit) metricFn {
	return func(m core.Metrics) float64 { return m.Power.Watts[u] }
}

// sweepPoint names one design point of a sweep.
type sweepPoint struct {
	label string
	cfg   cpu.Config
}

// sweepSpec describes one Table 4 sweep.
type sweepSpec struct {
	name    string
	points  []sweepPoint
	metrics []string
	fns     []metricFn
	// reprofile is true when the swept structure is one of the profiled
	// locality structures (caches, predictor): the statistical profile
	// is microarchitecture-dependent there and must be re-measured per
	// point (§4.4 notes this cost).
	reprofile bool
}

// Table4Transition is the relative error of every metric for one move
// between adjacent design points, averaged over benchmarks.
type Table4Transition struct {
	From, To string
	Errors   map[string]float64
}

// Table4Sweep is one of the five sensitivity studies.
type Table4Sweep struct {
	Name        string
	Metrics     []string
	Transitions []Table4Transition
}

// Table4Result is the full table.
type Table4Result struct {
	Scale  Scale
	Sweeps []Table4Sweep
}

func table4Sweeps() []sweepSpec {
	base := baseline()

	window := sweepSpec{
		name:    "window size (RUU; LSQ = RUU/2)",
		metrics: []string{"IPC", "RUU-occ", "LSQ-occ", "EPC", "RUU-power", "LSQ-power"},
		fns: []metricFn{metricIPC, metricRUUOcc, metricLSQOcc, metricEPC,
			metricUnit(power.UnitRUU), metricUnit(power.UnitLSQ)},
	}
	for _, ruu := range []int{8, 16, 32, 48, 64, 96, 128} {
		cfg := base
		cfg.RUUSize = ruu
		cfg.LSQSize = ruu / 2
		if cfg.LSQSize < 4 {
			cfg.LSQSize = 4
		}
		window.points = append(window.points, sweepPoint{fmt.Sprint(ruu), cfg})
	}

	width := sweepSpec{
		name:    "processor width (decode = issue = commit)",
		metrics: []string{"IPC", "exec-bw", "EPC", "fetch-power", "dispatch-power", "issue-power"},
		fns: []metricFn{metricIPC, metricExecBW, metricEPC,
			metricUnit(power.UnitFetch), metricUnit(power.UnitDispatch), metricUnit(power.UnitIssue)},
	}
	for _, w := range []int{2, 4, 6, 8} {
		cfg := base
		cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth = w, w, w
		width.points = append(width.points, sweepPoint{fmt.Sprint(w), cfg})
	}

	ifq := sweepSpec{
		name:    "instruction fetch queue size",
		metrics: []string{"IPC", "EPC", "IFQ-occ"},
		fns:     []metricFn{metricIPC, metricEPC, metricIFQOcc},
	}
	for _, q := range []int{4, 8, 16, 32} {
		cfg := base
		cfg.IFQSize = q
		ifq.points = append(ifq.points, sweepPoint{fmt.Sprint(q), cfg})
	}

	bp := sweepSpec{
		name: "branch predictor size",
		metrics: []string{"IPC", "EPC", "RUU-occ", "RUU-power", "LSQ-occ", "LSQ-power",
			"IFQ-occ", "fetch-power", "bpred-power"},
		fns: []metricFn{metricIPC, metricEPC, metricRUUOcc, metricUnit(power.UnitRUU),
			metricLSQOcc, metricUnit(power.UnitLSQ), metricIFQOcc,
			metricUnit(power.UnitFetch), metricUnit(power.UnitBpred)},
		reprofile: true,
	}
	for _, lg := range []int{-2, -1, 0, 1, 2} {
		cfg := base
		cfg.Bpred = cfg.Bpred.Scale(lg)
		bp.points = append(bp.points, sweepPoint{bpLabel(lg), cfg})
	}

	cachesw := sweepSpec{
		name: "cache configuration size",
		metrics: []string{"IPC", "EPC", "RUU-occ", "RUU-power", "LSQ-occ", "LSQ-power",
			"IFQ-occ", "fetch-power", "icache-power", "dcache-power", "l2-power"},
		fns: []metricFn{metricIPC, metricEPC, metricRUUOcc, metricUnit(power.UnitRUU),
			metricLSQOcc, metricUnit(power.UnitLSQ), metricIFQOcc,
			metricUnit(power.UnitFetch), metricUnit(power.UnitICache),
			metricUnit(power.UnitDCache), metricUnit(power.UnitL2)},
		reprofile: true,
	}
	for _, lg := range []int{-2, -1, 0, 1, 2} {
		cfg := base
		factor := 1.0
		for i := 0; i < lg; i++ {
			factor *= 2
		}
		for i := 0; i > lg; i-- {
			factor /= 2
		}
		cfg.Hier = cfg.Hier.Scale(factor)
		cachesw.points = append(cachesw.points, sweepPoint{bpLabel(lg), cfg})
	}

	return []sweepSpec{window, width, ifq, bp, cachesw}
}

func bpLabel(lg int) string {
	switch {
	case lg < 0:
		return fmt.Sprintf("base/%d", 1<<(-lg))
	case lg > 0:
		return fmt.Sprintf("base*%d", 1<<lg)
	default:
		return "base"
	}
}

// Table4 measures the relative prediction error of every metric across
// every adjacent design-point transition of the five sweeps (§4.5).
// The paper's finding: relative errors are generally below 3%, far
// smaller than the absolute errors, making statistical simulation a
// reliable trend predictor.
func Table4(s Scale) (*Table4Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Scale: s}
	for _, spec := range table4Sweeps() {
		sweep, err := runSweep(s, ws, spec)
		if err != nil {
			return nil, err
		}
		res.Sweeps = append(res.Sweeps, sweep)
	}
	return res, nil
}

func runSweep(s Scale, ws []core.Workload, spec sweepSpec) (Table4Sweep, error) {
	type perBench struct {
		eds, ss []core.Metrics
	}
	results, err := parallelMap(s, ws, func(w core.Workload) (perBench, error) {
		var pb perBench
		var g *sfg.Graph
		for _, pt := range spec.points {
			pb.eds = append(pb.eds, core.Reference(pt.cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions)))
			if g == nil || spec.reprofile {
				var err error
				g, err = core.Profile(pt.cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions),
					core.ProfileOptions{K: 1})
				if err != nil {
					return pb, err
				}
			}
			m, err := averageStatSim(pt.cfg, g, core.ReductionFor(g, s.SynthTarget), 2)
			if err != nil {
				return pb, err
			}
			pb.ss = append(pb.ss, m)
		}
		return pb, nil
	})
	if err != nil {
		return Table4Sweep{}, err
	}

	sweep := Table4Sweep{Name: spec.name, Metrics: spec.metrics}
	for p := 1; p < len(spec.points); p++ {
		tr := Table4Transition{
			From:   spec.points[p-1].label,
			To:     spec.points[p].label,
			Errors: map[string]float64{},
		}
		for mi, mname := range spec.metrics {
			var sum float64
			for _, pb := range results {
				sum += stats.RelError(
					spec.fns[mi](pb.ss[p-1]), spec.fns[mi](pb.ss[p]),
					spec.fns[mi](pb.eds[p-1]), spec.fns[mi](pb.eds[p]))
			}
			tr.Errors[mname] = sum / float64(len(results))
		}
		sweep.Transitions = append(sweep.Transitions, tr)
	}
	return sweep, nil
}

// MaxError returns the largest relative error anywhere in the table.
func (r *Table4Result) MaxError() float64 {
	var max float64
	for _, sw := range r.Sweeps {
		for _, tr := range sw.Transitions {
			for _, e := range tr.Errors {
				if e > max {
					max = e
				}
			}
		}
	}
	return max
}

// Render returns the table as text.
func (r *Table4Result) Render() string {
	out := "Table 4: relative prediction errors (averaged over benchmarks)\n"
	for _, sw := range r.Sweeps {
		t := &table{header: append([]string{"transition"}, sw.Metrics...)}
		for _, tr := range sw.Transitions {
			cols := []string{tr.From + "->" + tr.To}
			for _, m := range sw.Metrics {
				cols = append(cols, pct(tr.Errors[m]))
			}
			t.add(cols...)
		}
		out += "\nSensitivity to " + sw.Name + "\n" + t.String()
	}
	return out
}
