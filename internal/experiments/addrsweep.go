package experiments

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// AddrSweepRow is one benchmark's cache-size trend comparison.
type AddrSweepRow struct {
	Name string
	// IPCRatio is IPC(quarter-size hierarchy) / IPC(base) under each
	// methodology.
	EDSRatio, ReprofiledRatio, AddrSynthRatio float64
	// RelErr are the trend errors of the two statistical approaches
	// against EDS.
	ReprofiledErr, AddrSynthErr float64
}

// AddrSweepResult evaluates the synthetic-address extension: the paper
// re-profiles whenever the cache configuration changes (§4.4); the
// extension instead generates one trace with synthetic addresses and
// simulates the data hierarchy live, so one profile covers the sweep.
type AddrSweepResult struct {
	Scale Scale
	Rows  []AddrSweepRow
}

// AddrSweep compares, for a 4x cache shrink, the IPC trend predicted by
// (a) the paper's re-profile-per-configuration statistical simulation
// and (b) the synthetic-address extension, against execution-driven
// simulation.
func AddrSweep(s Scale) (*AddrSweepResult, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	base := baseline()
	small := base
	small.Hier = small.Hier.Scale(0.25)

	rows, err := parallelMap(s, ws, func(w core.Workload) (AddrSweepRow, error) {
		row := AddrSweepRow{Name: w.Name}
		edsBase := core.Reference(base, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		edsSmall := core.Reference(small, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		row.EDSRatio = edsSmall.IPC() / edsBase.IPC()

		// (a) The paper's way: a fresh profile per configuration.
		reBase, err := s.statSim(base, w, core.ProfileOptions{K: 1}, 2)
		if err != nil {
			return row, err
		}
		reSmall, err := s.statSim(small, w, core.ProfileOptions{K: 1}, 2)
		if err != nil {
			return row, err
		}
		row.ReprofiledRatio = reSmall.IPC() / reBase.IPC()
		row.ReprofiledErr = stats.RelError(reBase.IPC(), reSmall.IPC(), edsBase.IPC(), edsSmall.IPC())

		// (b) The extension: one profile, synthetic addresses, live
		// D-cache at both design points.
		g, err := core.Profile(base, w.Stream(s.ExecSeed, 0, s.RefInstructions), core.ProfileOptions{K: 1})
		if err != nil {
			return row, err
		}
		red, err := synth.Reduce(g, synth.Options{
			R: core.ReductionFor(g, s.SynthTarget), Seed: 1, SyntheticAddresses: true,
		})
		if err != nil {
			return row, err
		}
		insts := trace.Collect(red.NewTrace(1), 0)
		run := func(cfg cpu.Config) core.Metrics {
			cfg.SimulateDCache = true
			res := cpu.NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()
			return core.Metrics{Result: res, Power: power.Estimate(cfg, res)}
		}
		aBase := run(base)
		aSmall := run(small)
		row.AddrSynthRatio = aSmall.IPC() / aBase.IPC()
		row.AddrSynthErr = stats.RelError(aBase.IPC(), aSmall.IPC(), edsBase.IPC(), edsSmall.IPC())
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AddrSweepResult{Scale: s, Rows: rows}, nil
}

// Avg returns the benchmark-averaged trend errors (re-profiled,
// synthetic-address).
func (r *AddrSweepResult) Avg() (re, addr float64) {
	for _, row := range r.Rows {
		re += row.ReprofiledErr
		addr += row.AddrSynthErr
	}
	n := float64(len(r.Rows))
	return re / n, addr / n
}

// Render returns the study as text.
func (r *AddrSweepResult) Render() string {
	t := &table{header: []string{"benchmark", "EDS ratio", "reprofiled", "err", "addr-synth", "err"}}
	for _, row := range r.Rows {
		t.add(row.Name, f3(row.EDSRatio),
			f3(row.ReprofiledRatio), pct(row.ReprofiledErr),
			f3(row.AddrSynthRatio), pct(row.AddrSynthErr))
	}
	re, ad := r.Avg()
	t.add("avg", "", "", pct(re), "", pct(ad))
	return "Cache shrink (base -> base/4) IPC trend: re-profiling vs synthetic addresses (one profile)\n" + t.String()
}
