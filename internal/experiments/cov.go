package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/synth"
)

// CoVResult reports the coefficient of variation of synthetic-trace IPC
// as a function of trace length (§4.1: ~4% at 100K, ~1% at 1M synthetic
// instructions on the paper's setup).
type CoVResult struct {
	Scale   Scale
	Lengths []uint64
	// CoV[b][l] is benchmark b's CoV at Lengths[l].
	Names []string
	CoV   [][]float64
}

// CoV measures convergence: for each benchmark and trace length, it
// generates Scale.Seeds synthetic traces with different seeds,
// simulates each, and reports stddev(IPC)/mean(IPC).
func CoV(s Scale, lengths []uint64) (*CoVResult, error) {
	s = s.withDefaults()
	if len(lengths) == 0 {
		lengths = []uint64{
			s.SynthTarget / 10, s.SynthTarget / 5, s.SynthTarget / 2, s.SynthTarget,
		}
	}
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	type row struct {
		name string
		covs []float64
	}
	rows, err := parallelMap(s, ws, func(w core.Workload) (row, error) {
		g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions), core.ProfileOptions{K: 1})
		if err != nil {
			return row{}, err
		}
		covs := make([]float64, len(lengths))
		for li, L := range lengths {
			r := core.ReductionFor(g, L)
			ipcs := make([]float64, 0, s.Seeds)
			for seed := 1; seed <= s.Seeds; seed++ {
				red, err := synth.Reduce(g, synth.Options{R: r, Seed: uint64(seed)})
				if err != nil {
					return row{}, err
				}
				m := core.SimulateTrace(cfg, red.NewTrace(uint64(seed)))
				ipcs = append(ipcs, m.IPC())
			}
			covs[li] = stats.CoV(ipcs)
		}
		return row{name: w.Name, covs: covs}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &CoVResult{Scale: s, Lengths: lengths}
	for _, r := range rows {
		res.Names = append(res.Names, r.name)
		res.CoV = append(res.CoV, r.covs)
	}
	return res, nil
}

// AvgAt returns the benchmark-averaged CoV at length index li.
func (r *CoVResult) AvgAt(li int) float64 {
	var sum float64
	for _, c := range r.CoV {
		sum += c[li]
	}
	return sum / float64(len(r.CoV))
}

// Render returns the series as text.
func (r *CoVResult) Render() string {
	header := []string{"benchmark"}
	for _, l := range r.Lengths {
		header = append(header, f2(float64(l)/1000)+"k")
	}
	t := &table{header: header}
	for i, name := range r.Names {
		cols := []string{name}
		for _, c := range r.CoV[i] {
			cols = append(cols, pct(c))
		}
		t.add(cols...)
	}
	avg := []string{"avg"}
	for li := range r.Lengths {
		avg = append(avg, pct(r.AvgAt(li)))
	}
	t.add(avg...)
	return "Section 4.1: coefficient of variation of IPC vs synthetic trace length\n" + t.String()
}
