package experiments

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/simpoint"
	"repro/internal/stats"
)

// Fig8Row is one benchmark's IPC error under the four phase-modeling
// scenarios of §4.4.
type Fig8Row struct {
	Name      string
	OneBig    float64 // one profile over the whole stream
	TenMid    float64 // ten per-sample profiles, averaged
	HundredSm float64 // one hundred smaller profiles, averaged
	SimPoint  float64 // SimPoint-selected intervals, execution-driven
	Points    int     // SimPoint count
}

// Fig8Result is the full figure.
type Fig8Result struct {
	Scale Scale
	Units int
	Rows  []Fig8Row
}

// Fig8 scales the paper's 10B-instruction phase study: the reference
// stream is `units` x RefInstructions long (paper: 10 x 1B). Scenarios:
// one statistical profile of everything; ten 1-unit profiles; one
// hundred 0.1-unit profiles; and SimPoint sampling with 0.1-unit
// intervals simulated execution-driven. The paper finds SimPoint most
// accurate, phase-splitting only slightly helpful, and statistical
// simulation dramatically cheaper.
func Fig8(s Scale, units int) (*Fig8Result, error) {
	s = s.withDefaults()
	if units == 0 {
		units = 10
	}
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	unit := s.RefInstructions
	total := uint64(units) * unit

	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig8Row, error) {
		row := Fig8Row{Name: w.Name}
		ref := core.Reference(cfg, w.Stream(s.ExecSeed, 0, total))

		// Scenario A: one profile over the complete stream.
		g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, total), core.ProfileOptions{K: 1})
		if err != nil {
			return row, err
		}
		a, err := averageStatSim(cfg, g, core.ReductionFor(g, s.SynthTarget), 3)
		if err != nil {
			return row, err
		}
		row.OneBig = stats.AbsError(a.IPC(), ref.IPC())

		// Scenarios B/C: split into pieces, profile each, average.
		// Mid-stream pieces warm their locality structures on the
		// preceding stream content first, as any sampling methodology
		// must.
		split := func(pieces int) (float64, error) {
			var pooled cpu.Result
			pieceLen := total / uint64(pieces)
			for p := 0; p < pieces; p++ {
				start := uint64(p) * pieceLen
				warm := pieceLen
				if warm > start {
					warm = start
				}
				gp, err := core.Profile(cfg, w.Stream(s.ExecSeed, start-warm, warm+pieceLen),
					core.ProfileOptions{K: 1, Warmup: warm})
				if err != nil {
					return 0, err
				}
				// Keep per-piece traces long enough that pipeline ramp
				// effects do not dominate (the paper's per-sample traces
				// are full-length).
				target := s.SynthTarget / uint64(pieces)
				if target < 5_000 {
					target = 5_000
				}
				m, err := core.StatSim(cfg, gp, core.ReductionFor(gp, target), 1)
				if err != nil {
					return 0, err
				}
				pooled = poolResults(pooled, m.Result)
			}
			pm := core.Metrics{Result: pooled, Power: power.Estimate(cfg, pooled)}
			return stats.AbsError(pm.IPC(), ref.IPC()), nil
		}
		if row.TenMid, err = split(units); err != nil {
			return row, err
		}
		if row.HundredSm, err = split(10 * units); err != nil {
			return row, err
		}

		// Scenario D: SimPoint with 0.1-unit intervals.
		interval := unit / 10
		pts, err := simpoint.Choose(w.Stream(s.ExecSeed, 0, total),
			simpoint.Options{IntervalLen: interval, Seed: s.ExecSeed})
		if err != nil {
			return row, err
		}
		// SimPoint estimates whole-run CPI as the weighted mean of the
		// representatives' CPIs (IPC does not average linearly).
		var cpi float64
		for _, p := range pts {
			start := uint64(p.Interval) * interval
			warm := interval
			if warm > start {
				warm = start
			}
			wcfg := cfg
			wcfg.WarmupInsts = warm
			m := core.Reference(wcfg, w.Stream(s.ExecSeed, start-warm, warm+interval))
			if m.IPC() > 0 {
				cpi += p.Weight / m.IPC()
			}
		}
		ipc := 0.0
		if cpi > 0 {
			ipc = 1 / cpi
		}
		row.SimPoint = stats.AbsError(ipc, ref.IPC())
		row.Points = len(pts)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Scale: s, Units: units, Rows: rows}, nil
}

// Avg returns benchmark-averaged errors for the four scenarios.
func (r *Fig8Result) Avg() (one, ten, hundred, sp float64) {
	for _, row := range r.Rows {
		one += row.OneBig
		ten += row.TenMid
		hundred += row.HundredSm
		sp += row.SimPoint
	}
	n := float64(len(r.Rows))
	return one / n, ten / n, hundred / n, sp / n
}

// Render returns the figure data as text.
func (r *Fig8Result) Render() string {
	t := &table{header: []string{"benchmark", "1 profile", "10 profiles", "100 profiles", "SimPoint", "points"}}
	for _, row := range r.Rows {
		t.add(row.Name, pct(row.OneBig), pct(row.TenMid), pct(row.HundredSm),
			pct(row.SimPoint), f2(float64(row.Points)))
	}
	a, b, c, d := r.Avg()
	t.add("avg", pct(a), pct(b), pct(c), pct(d), "")
	return "Figure 8: phase modeling — statistical simulation granularities vs SimPoint (IPC error)\n" + t.String()
}
