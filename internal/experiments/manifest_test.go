package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestManifestRoundTrip pins the provenance record: fingerprints are a
// pure function of the Scale, and the file round-trips through JSON.
func TestManifestRoundTrip(t *testing.T) {
	s := QuickScale()
	m := NewManifest("fig6", s, 1500*time.Millisecond)
	if m.Experiment != "fig6" || m.ElapsedS != 1.5 || m.GoVersion == "" {
		t.Fatalf("manifest fields: %+v", m)
	}
	if m.ScaleFingerprint != NewManifest("other", s, 0).ScaleFingerprint {
		t.Error("fingerprint not a pure function of the scale")
	}
	s2 := s
	s2.Seeds++
	if m.ScaleFingerprint == NewManifest("fig6", s2, 0).ScaleFingerprint {
		t.Error("fingerprint blind to a scale change")
	}

	path := filepath.Join(t.TempDir(), "fig6.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest file is not valid JSON: %v", err)
	}
	if back.ScaleFingerprint != m.ScaleFingerprint || back.Scale.Seeds != s.Seeds {
		t.Errorf("round trip mismatch: %+v vs %+v", back, m)
	}
}
