package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Fig6Row is one benchmark's absolute accuracy on the baseline
// configuration (paper Fig. 6 + the §4.2.3 EDP numbers).
type Fig6Row struct {
	Name                  string
	EDSIPC, SSIPC, IPCErr float64
	EDSEPC, SSEPC, EPCErr float64
	EDSEDP, SSEDP, EDPErr float64
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Scale Scale
	Rows  []Fig6Row
}

// Fig6 runs the headline absolute-accuracy evaluation: statistical
// simulation (k=1 SFG, delayed update) against execution-driven
// simulation for IPC, EPC and EDP on the Table 2 baseline. The paper
// reports average errors of 6.6% (IPC), 4% (EPC) and 11% (EDP).
func Fig6(s Scale) (*Fig6Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig6Row, error) {
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		ss, err := s.statSim(cfg, w, core.ProfileOptions{K: 1}, 3)
		if err != nil {
			return Fig6Row{}, err
		}
		return Fig6Row{
			Name:   w.Name,
			EDSIPC: eds.IPC(), SSIPC: ss.IPC(), IPCErr: stats.AbsError(ss.IPC(), eds.IPC()),
			EDSEPC: eds.EPC(), SSEPC: ss.EPC(), EPCErr: stats.AbsError(ss.EPC(), eds.EPC()),
			EDSEDP: eds.EDP(), SSEDP: ss.EDP(), EDPErr: stats.AbsError(ss.EDP(), eds.EDP()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Scale: s, Rows: rows}, nil
}

// Avg returns the benchmark-averaged errors (IPC, EPC, EDP).
func (r *Fig6Result) Avg() (ipc, epc, edp float64) {
	for _, row := range r.Rows {
		ipc += row.IPCErr
		epc += row.EPCErr
		edp += row.EDPErr
	}
	n := float64(len(r.Rows))
	return ipc / n, epc / n, edp / n
}

// Render returns the figure data as text.
func (r *Fig6Result) Render() string {
	t := &table{header: []string{"benchmark", "EDS-IPC", "SS-IPC", "err", "EDS-EPC", "SS-EPC", "err", "EDS-EDP", "SS-EDP", "err"}}
	for _, row := range r.Rows {
		t.add(row.Name,
			f3(row.EDSIPC), f3(row.SSIPC), pct(row.IPCErr),
			f2(row.EDSEPC), f2(row.SSEPC), pct(row.EPCErr),
			f2(row.EDSEDP), f2(row.SSEDP), pct(row.EDPErr))
	}
	i, e, d := r.Avg()
	t.add("avg", "", "", pct(i), "", "", pct(e), "", "", pct(d))
	c := newBarChart("IPC prediction error per benchmark")
	for _, row := range r.Rows {
		c.addf(row.Name, row.IPCErr, "%s (EDS %.3f, SS %.3f)", pct(row.IPCErr), row.EDSIPC, row.SSIPC)
	}
	return "Figure 6 (+ §4.2.3): absolute accuracy of statistical simulation on the baseline\n" +
		t.String() + "\n" + c.String()
}
