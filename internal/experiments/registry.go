package experiments

import (
	"fmt"
	"sort"
)

// Result is the common interface of all experiment outputs.
type Result interface {
	Render() string
}

// Runner executes one named experiment at a scale.
type Runner func(Scale) (Result, error)

// Registry maps experiment IDs (table/figure names from the paper) to
// runners. Fig. 8 and the design-space exploration use their default
// shapes (10 units, the full 1,792-point grid); call the functions
// directly for custom shapes.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":     func(s Scale) (Result, error) { return Table1(s) },
		"fig3":       func(s Scale) (Result, error) { return Fig3(s) },
		"fig4":       func(s Scale) (Result, error) { return Fig4(s) }, // includes table3
		"fig5":       func(s Scale) (Result, error) { return Fig5(s) },
		"cov":        func(s Scale) (Result, error) { return CoV(s, nil) },
		"fig6":       func(s Scale) (Result, error) { return Fig6(s) },
		"fig7":       func(s Scale) (Result, error) { return Fig7(s) },
		"fig8":       func(s Scale) (Result, error) { return Fig8(s, 10) },
		"table4":     func(s Scale) (Result, error) { return Table4(s) },
		"dse":        func(s Scale) (Result, error) { return DSE(s, nil) },
		"ablation":   func(s Scale) (Result, error) { return Ablation(s) },
		"speed":      func(s Scale) (Result, error) { return Speed(s) },
		"addrsweep":  func(s Scale) (Result, error) { return AddrSweep(s) },
		"bpredkinds": func(s Scale) (Result, error) { return BpredKinds(s) },
	}
}

// Names returns the registry keys in a stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by name.
func Run(name string, s Scale) (Result, error) {
	r, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(s)
}
