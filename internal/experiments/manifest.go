package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"repro/internal/obs"
)

// Manifest records the provenance of one experiment run: which
// experiment, at what scale, how long it took, and a fingerprint that
// ties a results file back to the exact inputs that produced it.
// cmd/paperexp writes one alongside each experiment's results so a
// regenerated table can always answer "what produced this?".
type Manifest struct {
	Version    int       `json:"version"`
	Experiment string    `json:"experiment"`
	Created    time.Time `json:"created"`
	GoVersion  string    `json:"go_version"`
	// ScaleFingerprint hashes the Scale; two runs with equal
	// fingerprints saw identical inputs.
	ScaleFingerprint string  `json:"scale_fingerprint"`
	Scale            Scale   `json:"scale"`
	ElapsedS         float64 `json:"elapsed_s"`
}

// NewManifest describes one completed experiment run.
func NewManifest(name string, s Scale, elapsed time.Duration) Manifest {
	return Manifest{
		Version:          obs.ManifestVersion,
		Experiment:       name,
		Created:          time.Now().UTC(),
		GoVersion:        runtime.Version(),
		ScaleFingerprint: obs.Fingerprint(s),
		Scale:            s,
		ElapsedS:         elapsed.Seconds(),
	}
}

// WriteFile persists the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
