package experiments

import (
	"fmt"
	"strings"
)

// barChart renders a horizontal ASCII bar chart — the textual analogue
// of the paper's figures. Each row is one (label, value) pair; values
// are scaled so the longest bar spans width characters.
type barChart struct {
	title string
	width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
	text  string
}

func newBarChart(title string) *barChart {
	return &barChart{title: title, width: 48}
}

func (c *barChart) add(label string, value float64, text string) {
	c.rows = append(c.rows, barRow{label: label, value: value, text: text})
}

func (c *barChart) addf(label string, value float64, format string, args ...any) {
	c.add(label, value, fmt.Sprintf(format, args...))
}

func (c *barChart) String() string {
	if len(c.rows) == 0 {
		return c.title + "\n(no data)\n"
	}
	maxVal := 0.0
	maxLabel := 0
	for _, r := range c.rows {
		if r.value > maxVal {
			maxVal = r.value
		}
		if len(r.label) > maxLabel {
			maxLabel = len(r.label)
		}
	}
	var b strings.Builder
	b.WriteString(c.title)
	b.WriteByte('\n')
	for _, r := range c.rows {
		n := 0
		if maxVal > 0 {
			n = int(r.value/maxVal*float64(c.width) + 0.5)
		}
		if n == 0 && r.value > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-*s |%-*s| %s\n", maxLabel, r.label, c.width,
			strings.Repeat("#", n), r.text)
	}
	return b.String()
}
