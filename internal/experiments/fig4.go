package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig4Row is one benchmark's IPC prediction error per SFG order k,
// under perfect caches and perfect branch prediction (isolating the
// control-flow/dependency model).
type Fig4Row struct {
	Name   string
	Errors [4]float64 // k = 0..3
	Nodes  [4]int     // SFG node counts (Table 3)
}

// Fig4Result covers both Fig. 4 (errors) and Table 3 (node counts),
// which the paper derives from the same sweep.
type Fig4Result struct {
	Scale Scale
	Rows  []Fig4Row
}

// Fig4 evaluates the SFG order: k=0 (no control-flow correlation)
// against k=1..3. The paper finds k=0 errors up to 35% while k>=1
// stays under ~2% on average, with k=1 sufficient.
func Fig4(s Scale) (*Fig4Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	cfg.PerfectCaches = true
	cfg.PerfectBpred = true
	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig4Row, error) {
		row := Fig4Row{Name: w.Name}
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		for k := 0; k <= 3; k++ {
			g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions),
				core.ProfileOptions{K: k})
			if err != nil {
				return row, err
			}
			row.Nodes[k] = g.NumNodes()
			m, err := averageStatSim(cfg, g, core.ReductionFor(g, s.SynthTarget), 3)
			if err != nil {
				return row, err
			}
			row.Errors[k] = stats.AbsError(m.IPC(), eds.IPC())
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Scale: s, Rows: rows}, nil
}

// AvgError returns the benchmark-averaged error for order k.
func (r *Fig4Result) AvgError(k int) float64 {
	var sum float64
	for _, row := range r.Rows {
		sum += row.Errors[k]
	}
	return sum / float64(len(r.Rows))
}

// Render returns the figure data as text.
func (r *Fig4Result) Render() string {
	t := &table{header: []string{"benchmark", "k=0", "k=1", "k=2", "k=3"}}
	for _, row := range r.Rows {
		t.add(row.Name, pct(row.Errors[0]), pct(row.Errors[1]), pct(row.Errors[2]), pct(row.Errors[3]))
	}
	t.add("avg", pct(r.AvgError(0)), pct(r.AvgError(1)), pct(r.AvgError(2)), pct(r.AvgError(3)))
	out := "Figure 4: IPC prediction error vs SFG order (perfect caches + perfect bpred)\n" + t.String()

	t2 := &table{header: []string{"benchmark", "k=0", "k=1", "k=2", "k=3"}}
	for _, row := range r.Rows {
		t2.add(row.Name, fmt.Sprint(row.Nodes[0]), fmt.Sprint(row.Nodes[1]),
			fmt.Sprint(row.Nodes[2]), fmt.Sprint(row.Nodes[3]))
	}
	return out + "\nTable 3: number of nodes in the SFG\n" + t2.String()
}
