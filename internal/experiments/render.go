package experiments

import (
	"fmt"
	"strings"
)

// table renders rows of columns as fixed-width text, the format every
// experiment's Render method uses.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cols)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
