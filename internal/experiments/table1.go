package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Table1Row is one benchmark's baseline characterisation (paper
// Table 1: the workloads and their baseline IPC).
type Table1Row struct {
	Name         string
	StaticBlocks int
	StaticInstrs int
	Phases       int
	IPC          float64
	EPC          float64
	MispredPerKI float64
	L1DMissRate  float64
}

// Table1Result is the full table.
type Table1Result struct {
	Scale Scale
	Rows  []Table1Row
}

// Table1 runs execution-driven simulation of every benchmark on the
// Table 2 baseline configuration.
func Table1(s Scale) (*Table1Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	rows, err := parallelMap(s, ws, func(w core.Workload) (Table1Row, error) {
		m := core.Reference(baseline(), w.Stream(s.ExecSeed, 0, s.RefInstructions))
		missRate := 0.0
		if m.Cache.DAccesses > 0 {
			missRate = float64(m.Cache.L1DMisses) / float64(m.Cache.DAccesses)
		}
		return Table1Row{
			Name:         w.Name,
			StaticBlocks: len(w.Prog.Blocks),
			StaticInstrs: w.Prog.NumStaticInstrs(),
			Phases:       w.Pers.Phases,
			IPC:          m.IPC(),
			EPC:          m.EPC(),
			MispredPerKI: m.Branch.MispredictsPerKI(m.Instructions),
			L1DMissRate:  missRate,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{Scale: s, Rows: rows}, nil
}

// Render returns the table as text.
func (r *Table1Result) Render() string {
	t := &table{header: []string{"benchmark", "blocks", "static-insts", "phases", "IPC", "EPC(W)", "mispred/KI", "L1D-miss"}}
	for _, row := range r.Rows {
		t.add(row.Name, fmt.Sprint(row.StaticBlocks), fmt.Sprint(row.StaticInstrs),
			fmt.Sprint(row.Phases), f3(row.IPC), f2(row.EPC), f2(row.MispredPerKI), pct(row.L1DMissRate))
	}
	return "Table 1: benchmarks and baseline behaviour (execution-driven, Table 2 config)\n" + t.String()
}
