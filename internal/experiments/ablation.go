package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/synth"
)

// AblationRow is one benchmark's IPC error under the full framework and
// with each design decision individually reverted.
type AblationRow struct {
	Name string
	// Full is the framework as shipped: k=1 SFG, delayed-update branch
	// profiling, slot-resolved locality statistics.
	Full float64
	// NoControlFlow reverts the SFG to order 0 (no control-flow
	// correlation) with everything else intact.
	NoControlFlow float64
	// ImmediateUpdate reverts branch profiling to immediate update.
	ImmediateUpdate float64
	// EdgeAverage reverts locality-event assignment to the paper's
	// literal per-edge averages (this implementation's slot resolution
	// is its one refinement over the paper; see DESIGN.md).
	EdgeAverage float64
}

// AblationResult is the full study.
type AblationResult struct {
	Scale Scale
	Rows  []AblationRow
}

// Ablation quantifies each design decision DESIGN.md calls out, on the
// realistic baseline configuration (real caches and predictor — unlike
// Figs. 4/5, which idealise the structures not under study).
func Ablation(s Scale) (*AblationResult, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	rows, err := parallelMap(s, ws, func(w core.Workload) (AblationRow, error) {
		row := AblationRow{Name: w.Name}
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))

		errOf := func(opts core.ProfileOptions, synthOpts synth.Options) (float64, error) {
			g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions), opts)
			if err != nil {
				return 0, err
			}
			synthOpts.R = core.ReductionFor(g, s.SynthTarget)
			red, err := synth.Reduce(g, synthOpts)
			if err != nil {
				return 0, err
			}
			m := core.SimulateTrace(cfg, red.NewTrace(1))
			return stats.AbsError(m.IPC(), eds.IPC()), nil
		}

		var e error
		if row.Full, e = errOf(core.ProfileOptions{K: 1}, synth.Options{Seed: 1}); e != nil {
			return row, e
		}
		if row.NoControlFlow, e = errOf(core.ProfileOptions{K: 0}, synth.Options{Seed: 1}); e != nil {
			return row, e
		}
		if row.ImmediateUpdate, e = errOf(core.ProfileOptions{K: 1, ImmediateUpdate: true}, synth.Options{Seed: 1}); e != nil {
			return row, e
		}
		if row.EdgeAverage, e = errOf(core.ProfileOptions{K: 1}, synth.Options{Seed: 1, EdgeAverageLocality: true}); e != nil {
			return row, e
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Scale: s, Rows: rows}, nil
}

// Avg returns the benchmark-averaged errors (full, k=0, immediate,
// edge-average).
func (r *AblationResult) Avg() (full, k0, imm, edge float64) {
	for _, row := range r.Rows {
		full += row.Full
		k0 += row.NoControlFlow
		imm += row.ImmediateUpdate
		edge += row.EdgeAverage
	}
	n := float64(len(r.Rows))
	return full / n, k0 / n, imm / n, edge / n
}

// Render returns the study as text.
func (r *AblationResult) Render() string {
	t := &table{header: []string{"benchmark", "full", "k=0", "immediate-upd", "edge-avg-locality"}}
	for _, row := range r.Rows {
		t.add(row.Name, pct(row.Full), pct(row.NoControlFlow),
			pct(row.ImmediateUpdate), pct(row.EdgeAverage))
	}
	a, b, c, d := r.Avg()
	t.add("avg", pct(a), pct(b), pct(c), pct(d))
	return "Ablation: IPC error on the real baseline with each design decision reverted\n" + t.String()
}
