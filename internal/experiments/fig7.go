package experiments

import (
	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/stats"
)

// Fig7Row is one benchmark's IPC error under HLS vs the SFG framework
// ("SMART-HLS" in the paper's terminology).
type Fig7Row struct {
	Name     string
	HLS      float64
	SMARTHLS float64
}

// Fig7Result is the full figure.
type Fig7Result struct {
	Scale Scale
	Rows  []Fig7Row
}

// Fig7 compares the HLS baseline (global i.i.d. workload model, Oskin
// et al.) against this paper's SFG framework on the same trace-driven
// simulator. The paper reports 10.1% vs 1.8% average IPC error.
func Fig7(s Scale) (*Fig7Result, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	cfg := baseline()
	rows, err := parallelMap(s, ws, func(w core.Workload) (Fig7Row, error) {
		eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
		smart, err := s.statSim(cfg, w, core.ProfileOptions{K: 1}, 3)
		if err != nil {
			return Fig7Row{}, err
		}
		hp, err := hls.ProfileStream(hls.Annotate(
			w.Stream(s.ExecSeed, 0, s.RefInstructions), cfg.Hier, cfg.Bpred))
		if err != nil {
			return Fig7Row{}, err
		}
		hres := core.SimulateTrace(cfg, hp.NewTrace(s.SynthTarget, 1))
		return Fig7Row{
			Name:     w.Name,
			HLS:      stats.AbsError(hres.IPC(), eds.IPC()),
			SMARTHLS: stats.AbsError(smart.IPC(), eds.IPC()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Scale: s, Rows: rows}, nil
}

// Avg returns the benchmark-averaged errors (HLS, SMART-HLS).
func (r *Fig7Result) Avg() (hlsErr, smartErr float64) {
	for _, row := range r.Rows {
		hlsErr += row.HLS
		smartErr += row.SMARTHLS
	}
	n := float64(len(r.Rows))
	return hlsErr / n, smartErr / n
}

// Render returns the figure data as text.
func (r *Fig7Result) Render() string {
	t := &table{header: []string{"benchmark", "HLS", "SMART-HLS"}}
	for _, row := range r.Rows {
		t.add(row.Name, pct(row.HLS), pct(row.SMARTHLS))
	}
	h, sm := r.Avg()
	t.add("avg", pct(h), pct(sm))
	c := newBarChart("")
	for _, row := range r.Rows {
		c.addf(row.Name+"/hls", row.HLS, "%s", pct(row.HLS))
		c.addf(row.Name+"/sfg", row.SMARTHLS, "%s", pct(row.SMARTHLS))
	}
	return "Figure 7: IPC prediction error, HLS vs SMART-HLS (this framework)\n" + t.String() + "\n" + c.String()
}
