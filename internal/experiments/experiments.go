// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) on the framework's synthetic SPECint
// stand-in workloads. Each experiment is a pure function of a Scale,
// returning a typed result with a text renderer; cmd/paperexp drives
// them and EXPERIMENTS.md records the outcomes.
//
// Absolute magnitudes differ from the paper (different workloads, a
// different reference simulator, laptop-scale stream lengths); what the
// experiments reproduce is the paper's *shape*: which configuration
// wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/sfg"
)

// Scale sizes the experiments. The zero value is unusable; use
// PaperScale or QuickScale.
type Scale struct {
	// RefInstructions is the reference-stream length per benchmark
	// (stands in for the paper's 100M-instruction SimPoint samples).
	RefInstructions uint64
	// SynthTarget is the synthetic-trace length aimed for (the paper
	// uses 100K-1M synthetic instructions).
	SynthTarget uint64
	// Seeds is the number of synthetic-trace seeds averaged where the
	// experiment calls for it (and the CoV sample count).
	Seeds int
	// Benchmarks restricts the benchmark set; empty means all ten.
	Benchmarks []string
	// ExecSeed seeds the functional execution of every workload.
	ExecSeed uint64
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// PaperScale is the full harness configuration: 1M-instruction
// reference streams, 100k synthetic traces, all ten benchmarks.
func PaperScale() Scale {
	return Scale{
		RefInstructions: 1_000_000,
		SynthTarget:     100_000,
		Seeds:           20,
		ExecSeed:        1,
	}
}

// QuickScale is a reduced configuration for tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		RefInstructions: 150_000,
		SynthTarget:     30_000,
		Seeds:           4,
		Benchmarks:      []string{"gzip", "twolf", "vpr"},
		ExecSeed:        1,
	}
}

func (s Scale) withDefaults() Scale {
	if s.RefInstructions == 0 {
		s.RefInstructions = 1_000_000
	}
	if s.SynthTarget == 0 {
		s.SynthTarget = s.RefInstructions / 10
	}
	if s.Seeds == 0 {
		s.Seeds = 5
	}
	if s.ExecSeed == 0 {
		s.ExecSeed = 1
	}
	if s.Parallelism == 0 {
		s.Parallelism = runtime.GOMAXPROCS(0)
	}
	return s
}

// workloads loads the benchmark set of the scale.
func (s Scale) workloads() ([]core.Workload, error) {
	if len(s.Benchmarks) == 0 {
		return core.Workloads(), nil
	}
	var ws []core.Workload
	for _, name := range s.Benchmarks {
		w, err := core.LoadWorkload(name)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// parallelMap applies f to every workload concurrently (bounded by the
// scale's parallelism) and returns results in input order.
func parallelMap[T any](s Scale, ws []core.Workload, f func(core.Workload) (T, error)) ([]T, error) {
	out := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, s.Parallelism)
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = f(ws[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ws[i].Name, err)
		}
	}
	return out, nil
}

// baseline returns the Table 2 configuration.
func baseline() cpu.Config { return cpu.DefaultConfig() }

// statSim profiles w once and returns the seed-averaged statistical
// simulation metrics under cfg.
func (s Scale) statSim(cfg cpu.Config, w core.Workload, opts core.ProfileOptions, seeds int) (core.Metrics, error) {
	g, err := core.Profile(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions), opts)
	if err != nil {
		return core.Metrics{}, err
	}
	return averageStatSim(cfg, g, core.ReductionFor(g, s.SynthTarget), seeds)
}

// averageStatSim runs StatSim for seeds different synthetic traces and
// pools the runs into one aggregate metric (instructions and cycles
// sum, so the pooled IPC is the instruction-weighted mean).
func averageStatSim(cfg cpu.Config, g *sfg.Graph, r uint64, seeds int) (core.Metrics, error) {
	if seeds < 1 {
		seeds = 1
	}
	var pooled cpu.Result
	for seed := 1; seed <= seeds; seed++ {
		m, err := core.StatSim(cfg, g, r, uint64(seed))
		if err != nil {
			return core.Metrics{}, err
		}
		pooled = poolResults(pooled, m.Result)
	}
	return core.Metrics{Result: pooled, Power: power.Estimate(cfg, pooled)}, nil
}

// poolResults merges two runs: counters add, occupancies average
// weighted by cycles.
func poolResults(a, b cpu.Result) cpu.Result {
	if a.Cycles == 0 {
		return b
	}
	out := a
	wa, wb := float64(a.Cycles), float64(b.Cycles)
	out.Instructions += b.Instructions
	out.Cycles += b.Cycles
	out.AvgRUUOcc = (a.AvgRUUOcc*wa + b.AvgRUUOcc*wb) / (wa + wb)
	out.AvgLSQOcc = (a.AvgLSQOcc*wa + b.AvgLSQOcc*wb) / (wa + wb)
	out.AvgIFQOcc = (a.AvgIFQOcc*wa + b.AvgIFQOcc*wb) / (wa + wb)
	out.Branch.Branches += b.Branch.Branches
	out.Branch.Taken += b.Branch.Taken
	out.Branch.Mispredicted += b.Branch.Mispredicted
	out.Branch.FetchRedirect += b.Branch.FetchRedirect
	out.Cache.IFetches += b.Cache.IFetches
	out.Cache.L1IMisses += b.Cache.L1IMisses
	out.Cache.L2IMisses += b.Cache.L2IMisses
	out.Cache.ITLBMisses += b.Cache.ITLBMisses
	out.Cache.DAccesses += b.Cache.DAccesses
	out.Cache.L1DMisses += b.Cache.L1DMisses
	out.Cache.L2DMisses += b.Cache.L2DMisses
	out.Cache.DTLBMisses += b.Cache.DTLBMisses
	out.Act.Fetched += b.Act.Fetched
	out.Act.Dispatched += b.Act.Dispatched
	out.Act.Issued += b.Act.Issued
	out.Act.Committed += b.Act.Committed
	out.Act.BpredLookups += b.Act.BpredLookups
	out.Act.BpredUpdates += b.Act.BpredUpdates
	out.Act.BTBAccesses += b.Act.BTBAccesses
	out.Act.ICacheAccesses += b.Act.ICacheAccesses
	out.Act.DCacheAccesses += b.Act.DCacheAccesses
	out.Act.L2Accesses += b.Act.L2Accesses
	out.Act.RegReads += b.Act.RegReads
	out.Act.RegWrites += b.Act.RegWrites
	out.Act.IntALUOps += b.Act.IntALUOps
	out.Act.LoadOps += b.Act.LoadOps
	out.Act.StoreOps += b.Act.StoreOps
	out.Act.FPOps += b.Act.FPOps
	out.Act.IntMulOps += b.Act.IntMulOps
	out.Pipe = cpu.MergePipeStats(a.Pipe, b.Pipe)
	return out
}
