package experiments

import (
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/stats"
)

// BpredKindRow reports one benchmark under one predictor organisation.
type BpredKindRow struct {
	Name   string
	Kind   string
	EDSIPC float64
	MisPKI float64 // EDS mispredictions per 1k instructions
	SSErr  float64 // statistical simulation IPC error for this predictor
}

// BpredKindsResult extends the paper's predictor-size sweep (Table 4)
// to predictor *organisations*: statistical simulation must stay
// accurate whatever structure is profiled, since branch behaviour is a
// microarchitecture-dependent characteristic re-measured per predictor
// (§2.1.2).
type BpredKindsResult struct {
	Scale Scale
	Kinds []string
	Rows  []BpredKindRow
}

// BpredKinds profiles and simulates every benchmark under each
// predictor organisation.
func BpredKinds(s Scale) (*BpredKindsResult, error) {
	s = s.withDefaults()
	ws, err := s.workloads()
	if err != nil {
		return nil, err
	}
	kinds := []bpred.Kind{
		bpred.KindStaticNotTaken, bpred.KindBimodal, bpred.KindGShare,
		bpred.KindTwoLevelLocal, bpred.KindHybrid,
	}
	res := &BpredKindsResult{Scale: s}
	for _, k := range kinds {
		res.Kinds = append(res.Kinds, k.String())
	}
	type perBench struct{ rows []BpredKindRow }
	out, err := parallelMap(s, ws, func(w core.Workload) (perBench, error) {
		var pb perBench
		for _, k := range kinds {
			cfg := baseline()
			cfg.Bpred.Kind = k
			eds := core.Reference(cfg, w.Stream(s.ExecSeed, 0, s.RefInstructions))
			ss, err := s.statSim(cfg, w, core.ProfileOptions{K: 1}, 2)
			if err != nil {
				return pb, err
			}
			pb.rows = append(pb.rows, BpredKindRow{
				Name:   w.Name,
				Kind:   k.String(),
				EDSIPC: eds.IPC(),
				MisPKI: eds.Branch.MispredictsPerKI(eds.Instructions),
				SSErr:  stats.AbsError(ss.IPC(), eds.IPC()),
			})
		}
		return pb, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pb := range out {
		res.Rows = append(res.Rows, pb.rows...)
	}
	return res, nil
}

// AvgErr returns the benchmark-averaged statistical-simulation error
// per predictor kind.
func (r *BpredKindsResult) AvgErr() map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, row := range r.Rows {
		sums[row.Kind] += row.SSErr
		counts[row.Kind]++
	}
	for k := range sums {
		sums[k] /= float64(counts[k])
	}
	return sums
}

// Render returns the study as text.
func (r *BpredKindsResult) Render() string {
	t := &table{header: []string{"benchmark", "predictor", "EDS-IPC", "mispred/KI", "SS-err"}}
	for _, row := range r.Rows {
		t.add(row.Name, row.Kind, f3(row.EDSIPC), f2(row.MisPKI), pct(row.SSErr))
	}
	avg := r.AvgErr()
	c := newBarChart("average statistical-simulation IPC error per predictor organisation")
	for _, k := range r.Kinds {
		c.addf(k, avg[k], "%s", pct(avg[k]))
	}
	return "Predictor organisations: accuracy of statistical simulation per structure\n" +
		t.String() + "\n" + c.String()
}
