package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/trace"
)

// WarmState holds functionally-warmed locality state: a cache
// hierarchy and a branch predictor that have observed a prefix of the
// committed stream without any timing simulation. It is the SMARTS
// "functional warming" idea — sampled simulators are wrong about cache
// and predictor state unless that state is carried continuously across
// the stream, but carrying it only needs the access sequence, which is
// orders of magnitude cheaper than detailed simulation.
//
// Respecting the config's Perfect* switches, a WarmState built from the
// same Config a pipeline runs is exactly the state that pipeline would
// have accumulated at commit (the pipeline also touches the structures
// speculatively on the wrong path, which warming cannot reproduce — a
// small, documented approximation).
type WarmState struct {
	hier *cache.Hierarchy
	pred *bpred.Predictor
}

// NewWarmState builds cold locality state for cfg.
func NewWarmState(cfg Config) *WarmState {
	ws := &WarmState{}
	if !cfg.PerfectCaches {
		ws.hier = cache.NewHierarchy(cfg.Hier)
	}
	if !cfg.PerfectBpred {
		ws.pred = bpred.New(cfg.Bpred)
	}
	return ws
}

// Warm streams src through the locality models (I-cache per
// instruction, D-cache per memory access, predictor lookup+update per
// branch) and returns how many instructions it consumed.
func (ws *WarmState) Warm(src trace.Source) uint64 {
	var d trace.DynInst
	var n uint64
	for src.Next(&d) {
		n++
		if ws.hier != nil {
			ws.hier.AccessI(d.PC)
			if d.Class.IsMem() {
				ws.hier.AccessD(d.EffAddr)
			}
		}
		if ws.pred != nil && d.Class.IsBranch() {
			ws.pred.Lookup(d.PC, d.Class)
			ws.pred.Update(d.PC, d.Class, d.Taken, d.NextPC)
		}
	}
	return n
}

// NewExecutionDrivenWarmed builds the reference simulator starting from
// pre-warmed locality state instead of cold structures. ws must have
// been built for the same locality configuration (hierarchy, predictor,
// Perfect* switches) as cfg, and must not be reused afterwards — the
// pipeline mutates it.
func NewExecutionDrivenWarmed(cfg Config, src trace.Source, ws *WarmState) *Pipeline {
	p := newPipeline(cfg, src)
	if !cfg.PerfectCaches {
		h := ws.hier
		if h == nil {
			h = cache.NewHierarchy(cfg.Hier)
		}
		p.iHier, p.dHier = h, h
	}
	if !cfg.PerfectBpred {
		pr := ws.pred
		if pr == nil {
			pr = bpred.New(cfg.Bpred)
		}
		p.pred = pr
	}
	return p
}
