// Package cpu implements the superscalar out-of-order timing model —
// the framework's equivalent of SimpleScalar's sim-outorder. One timing
// core serves both simulation styles of the paper:
//
//   - execution-driven simulation (EDS): the reference. Locality events
//     are computed live from cache and branch-predictor models attached
//     to the pipeline; the instruction stream comes from the functional
//     executor.
//   - synthetic-trace simulation: the pipeline consumes a statistically
//     generated trace whose records carry pre-assigned locality events
//     (§2.3); no cache or predictor models are attached.
//
// Sharing the core removes simulator bias from the accuracy comparison,
// mirroring the paper's use of modified sim-outorder for both sides.
package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
)

// Config is the microarchitecture configuration (Table 2 defaults via
// DefaultConfig).
type Config struct {
	// Widths.
	FetchSpeed  int // fetch bandwidth = DecodeWidth * FetchSpeed
	DecodeWidth int // IFQ -> RUU dispatch bandwidth
	IssueWidth  int
	CommitWidth int

	// Window sizes.
	IFQSize int
	RUUSize int
	LSQSize int

	// Functional units.
	IntALUs    int // also execute branches and store address generation
	LoadStore  int // D-cache ports
	FPAdders   int
	IntMulDivs int
	FPMulDivs  int

	// Branch handling.
	// MispredictExtra is the front-end refill delay added after a
	// mispredicted branch resolves, modelling pipeline stages the
	// simulator does not represent explicitly. Together with the
	// in-window fetch-to-execute delay this approximates Table 2's
	// 14-cycle misprediction penalty.
	MispredictExtra int
	// RedirectPenalty is the fetch bubble on a fetch redirection (BTB
	// miss with correct direction prediction).
	RedirectPenalty int

	// Locality models.
	Hier  cache.HierarchyConfig
	Bpred bpred.Config

	// Idealisations used by the Fig. 4 / Fig. 5 experiments.
	PerfectCaches bool // every access hits in L1
	PerfectBpred  bool // every branch fully predicted (no redirects either)

	// WarmupInsts commits this many leading instructions before
	// resetting all statistics: caches, predictors and pipeline state
	// stay warm but the reported Result covers only the remainder.
	// Used when simulating a sample from the middle of an execution.
	WarmupInsts uint64

	// InOrder selects scoreboarded in-order issue: instructions issue
	// strictly in program order and, without register renaming, WAW
	// dependencies stall issue (the paper's §2.1.1 suggested extension;
	// RAW-only modeling suffices for the renamed out-of-order default).
	InOrder bool

	// SimulateDCache makes the trace-driven simulator run a live data
	// hierarchy against the trace's effective addresses instead of
	// consuming pre-assigned D-side flags. Meaningful only for traces
	// generated with synth.Options.SyntheticAddresses; lets the data-
	// cache design space be explored from a single profile.
	SimulateDCache bool
}

// DefaultConfig returns the paper's Table 2 baseline: 8-wide machine
// with a 32-entry IFQ, 128-entry RUU, 32-entry LSQ, 8 integer ALUs,
// 4 load/store ports, 2 FP adders, 2 integer and 2 FP mult/div units,
// hybrid 8K predictor with speculative update at dispatch, and the
// DefaultConfig cache hierarchy.
func DefaultConfig() Config {
	return Config{
		FetchSpeed:      2,
		DecodeWidth:     8,
		IssueWidth:      8,
		CommitWidth:     8,
		IFQSize:         32,
		RUUSize:         128,
		LSQSize:         32,
		IntALUs:         8,
		LoadStore:       4,
		FPAdders:        2,
		IntMulDivs:      2,
		FPMulDivs:       2,
		MispredictExtra: 10,
		RedirectPenalty: 2,
		Hier:            cache.DefaultConfig(),
		Bpred:           bpred.DefaultConfig(),
	}
}

// Upper bounds enforced by Validate. MaxWidth keeps per-cycle stage
// throughput within the occupancy histograms' bucket range (see
// OccBuckets); MaxBufferSize rejects window sizes large enough that
// allocating the structures would be a denial of service rather than a
// design point.
const (
	MaxWidth      = 16
	MaxBufferSize = 1 << 20
)

// Validate checks the configuration.
func (c Config) Validate() error {
	pos := func(v int, what string) error {
		if v <= 0 {
			return fmt.Errorf("cpu: %s must be positive, got %d", what, v)
		}
		return nil
	}
	checks := []struct {
		v    int
		what string
	}{
		{c.FetchSpeed, "FetchSpeed"}, {c.DecodeWidth, "DecodeWidth"},
		{c.IssueWidth, "IssueWidth"}, {c.CommitWidth, "CommitWidth"},
		{c.IFQSize, "IFQSize"}, {c.RUUSize, "RUUSize"}, {c.LSQSize, "LSQSize"},
		{c.IntALUs, "IntALUs"}, {c.LoadStore, "LoadStore"}, {c.FPAdders, "FPAdders"},
		{c.IntMulDivs, "IntMulDivs"}, {c.FPMulDivs, "FPMulDivs"},
	}
	for _, ch := range checks {
		if err := pos(ch.v, ch.what); err != nil {
			return err
		}
	}
	for _, w := range []struct {
		v    int
		what string
	}{
		{c.FetchWidth(), "fetch width (DecodeWidth * FetchSpeed)"},
		{c.DecodeWidth, "DecodeWidth"},
		{c.IssueWidth, "IssueWidth"},
		{c.CommitWidth, "CommitWidth"},
	} {
		if w.v > MaxWidth {
			return fmt.Errorf("cpu: %s is %d, above the supported maximum %d", w.what, w.v, MaxWidth)
		}
	}
	for _, s := range []struct {
		v    int
		what string
	}{
		{c.IFQSize, "IFQSize"}, {c.RUUSize, "RUUSize"}, {c.LSQSize, "LSQSize"},
	} {
		if s.v > MaxBufferSize {
			return fmt.Errorf("cpu: %s is %d, above the supported maximum %d", s.what, s.v, MaxBufferSize)
		}
	}
	if c.MispredictExtra < 0 || c.RedirectPenalty < 0 {
		return fmt.Errorf("cpu: negative branch penalties")
	}
	if c.LSQSize > c.RUUSize {
		return fmt.Errorf("cpu: LSQ (%d) larger than RUU (%d)", c.LSQSize, c.RUUSize)
	}
	if !c.PerfectCaches {
		if err := c.Hier.Validate(); err != nil {
			return err
		}
	}
	if !c.PerfectBpred {
		if err := c.Bpred.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// FetchWidth returns the per-cycle fetch bandwidth.
func (c Config) FetchWidth() int { return c.DecodeWidth * c.FetchSpeed }
