package cpu

// OccBuckets sizes the per-stage throughput histograms: bucket w counts
// cycles in which a stage moved exactly w instructions, with the last
// bucket absorbing anything wider (no supported configuration exceeds
// a fetch width of 16, see Config.Validate).
const OccBuckets = 17

// OccHist is a per-cycle stage-throughput distribution.
type OccHist [OccBuckets]uint64

// observe records one cycle in which the stage moved n instructions.
func (h *OccHist) observe(n uint64) {
	if n >= OccBuckets {
		n = OccBuckets - 1
	}
	h[n]++
}

// Cycles returns the number of observed cycles.
func (h *OccHist) Cycles() uint64 {
	var total uint64
	for _, c := range h {
		total += c
	}
	return total
}

// Mean returns the average per-cycle throughput (instructions moved per
// cycle; the top bucket is counted at its lower edge).
func (h *OccHist) Mean() float64 {
	var total, weighted uint64
	for w, c := range h {
		total += c
		weighted += uint64(w) * c
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// merge adds another histogram in (used when pooling seed runs).
func (h *OccHist) merge(o OccHist) {
	for i := range h {
		h[i] += o[i]
	}
}

// StallStats breaks no-progress cycles down by cause, one struct per
// pipeline stage. A cycle is charged to at most one cause per stage
// (the first condition that blocked it), so within a stage the
// counters are disjoint and comparable.
type StallStats struct {
	// Fetch: cycles fetch delivered nothing because...
	FetchIFQFull   uint64 // the IFQ had no free entry
	FetchPenalty   uint64 // an I-cache/redirect/mispredict penalty was being served
	FetchStreamEnd uint64 // the stream was exhausted (drain cycles)

	// Dispatch: cycles dispatch moved nothing because...
	DispatchEmptyIFQ uint64 // nothing fetched to dispatch
	DispatchRUUFull  uint64 // no RUU entry free
	DispatchLSQFull  uint64 // next instruction was a blocked memory op

	// Issue: cycles issue moved nothing while instructions were in flight...
	IssueNoReady uint64 // every in-flight instruction was waiting on operands
	IssueFUBusy  uint64 // ready instructions existed but no unit was free

	// Commit: cycles commit retired nothing because...
	CommitEmptyRUU      uint64 // the window was empty
	CommitOldestNotDone uint64 // the oldest instruction had not completed
}

// PipeStats is the per-stage occupancy and stall breakdown of one run —
// the structured Metrics extension the observability layer exposes
// through run manifests and the daemon's /metrics. All counters are
// deterministic functions of (config, instruction stream): they are
// covered by the golden corpus and the determinism property test like
// every other Result field.
type PipeStats struct {
	// Per-cycle throughput distributions of the four pipeline stages.
	Fetch    OccHist
	Dispatch OccHist
	Issue    OccHist
	Commit   OccHist

	Stall StallStats
}

// mergePipe pools two runs' pipeline stats (counters add).
func mergePipe(a, b PipeStats) PipeStats {
	out := a
	out.Fetch.merge(b.Fetch)
	out.Dispatch.merge(b.Dispatch)
	out.Issue.merge(b.Issue)
	out.Commit.merge(b.Commit)
	out.Stall.FetchIFQFull += b.Stall.FetchIFQFull
	out.Stall.FetchPenalty += b.Stall.FetchPenalty
	out.Stall.FetchStreamEnd += b.Stall.FetchStreamEnd
	out.Stall.DispatchEmptyIFQ += b.Stall.DispatchEmptyIFQ
	out.Stall.DispatchRUUFull += b.Stall.DispatchRUUFull
	out.Stall.DispatchLSQFull += b.Stall.DispatchLSQFull
	out.Stall.IssueNoReady += b.Stall.IssueNoReady
	out.Stall.IssueFUBusy += b.Stall.IssueFUBusy
	out.Stall.CommitEmptyRUU += b.Stall.CommitEmptyRUU
	out.Stall.CommitOldestNotDone += b.Stall.CommitOldestNotDone
	return out
}

// MergePipeStats pools two runs' pipeline stats (exported for the
// experiment harness's seed averaging).
func MergePipeStats(a, b PipeStats) PipeStats { return mergePipe(a, b) }
