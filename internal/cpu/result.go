package cpu

// Activity aggregates per-unit access counts over a whole run; the
// power model converts them into per-cycle activity factors (Wattch's
// cc3 clock gating needs to know how busy each unit was each cycle, but
// run-level averages are sufficient for per-cycle *energy* under the
// linear cc3 model).
type Activity struct {
	Fetched    uint64 // instructions entering the IFQ, wrong path included
	Dispatched uint64 // instructions entering the RUU
	Issued     uint64
	Committed  uint64

	BpredLookups uint64
	BpredUpdates uint64
	BTBAccesses  uint64

	ICacheAccesses uint64
	DCacheAccesses uint64
	L2Accesses     uint64

	RegReads  uint64
	RegWrites uint64

	IntALUOps uint64
	LoadOps   uint64
	StoreOps  uint64
	FPOps     uint64
	IntMulOps uint64
}

// BranchStats counts committed-path branch behaviour.
type BranchStats struct {
	Branches      uint64
	Taken         uint64
	Mispredicted  uint64
	FetchRedirect uint64
}

// MispredictsPerKI returns mispredictions per 1,000 committed
// instructions (the Fig. 3 metric).
func (b BranchStats) MispredictsPerKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(b.Mispredicted) / float64(instructions)
}

// MispredictRate returns the fraction of committed branches that were
// mispredicted.
func (b BranchStats) MispredictRate() float64 {
	return ratio(b.Mispredicted, b.Branches)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// CacheStats counts committed-path locality events observed by the
// pipeline (live mode: from the hierarchy; trace mode: from flags).
type CacheStats struct {
	IFetches, L1IMisses, L2IMisses, ITLBMisses  uint64
	DAccesses, L1DMisses, L2DMisses, DTLBMisses uint64
}

// L1DMissRate returns L1 D-cache misses per data access.
func (c CacheStats) L1DMissRate() float64 { return ratio(c.L1DMisses, c.DAccesses) }

// L2DMissRate returns the local L2 miss rate of the data side (L2
// misses per L1 D-miss that reached the L2).
func (c CacheStats) L2DMissRate() float64 { return ratio(c.L2DMisses, c.L1DMisses) }

// L1IMissRate returns L1 I-cache misses per fetch.
func (c CacheStats) L1IMissRate() float64 { return ratio(c.L1IMisses, c.IFetches) }

// L2IMissRate returns the local L2 miss rate of the instruction side.
func (c CacheStats) L2IMissRate() float64 { return ratio(c.L2IMisses, c.L1IMisses) }

// Result summarises one simulation run.
type Result struct {
	Instructions uint64 // committed (correct-path) instructions
	Cycles       uint64

	Branch BranchStats
	Cache  CacheStats
	Act    Activity
	Pipe   PipeStats

	// Time-averaged structure occupancies (Table 4 metrics).
	AvgRUUOcc float64
	AvgLSQOcc float64
	AvgIFQOcc float64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}
