package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// mkStream builds a simple DynInst stream. Each spec yields one
// instruction; Seq/PC/NextPC are filled automatically.
type instSpec struct {
	class isa.Class
	dep   uint32 // distance of operand 0 (0 = none)
	flags trace.Flags
	taken bool
}

func mkStream(specs []instSpec) []trace.DynInst {
	out := make([]trace.DynInst, len(specs))
	pc := uint64(program.CodeBase)
	for i, s := range specs {
		out[i] = trace.DynInst{
			Seq:     uint64(i),
			PC:      pc,
			NextPC:  pc + 8,
			Class:   s.class,
			Taken:   s.taken,
			Flags:   s.flags,
			BlockID: -1,
		}
		if s.dep > 0 {
			out[i].NumSrcs = 1
			out[i].DepDist[0] = s.dep
		}
		if s.class.IsMem() {
			out[i].EffAddr = 0x1000_0000 + uint64(i)*8
		}
		pc += 8
	}
	return out
}

// idealCfg: perfect caches + perfect branch prediction, generous window.
func idealCfg() Config {
	cfg := DefaultConfig()
	cfg.PerfectCaches = true
	cfg.PerfectBpred = true
	return cfg
}

func runTrace(t *testing.T, cfg Config, insts []trace.DynInst) Result {
	t.Helper()
	return NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()
}

func TestIndependentALUReachesWidth(t *testing.T) {
	specs := make([]instSpec, 10000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntALU}
	}
	r := runTrace(t, idealCfg(), mkStream(specs))
	if r.Instructions != 10000 {
		t.Fatalf("committed %d, want 10000", r.Instructions)
	}
	if ipc := r.IPC(); ipc < 7.0 {
		t.Errorf("independent ALU IPC = %.2f, want near 8 (issue width)", ipc)
	}
}

func TestDependentChainSerialises(t *testing.T) {
	specs := make([]instSpec, 5000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntALU, dep: 1}
	}
	r := runTrace(t, idealCfg(), mkStream(specs))
	if ipc := r.IPC(); ipc > 1.1 || ipc < 0.8 {
		t.Errorf("serial chain IPC = %.2f, want ~1 (unit latency chain)", ipc)
	}
}

func TestDependentMulChain(t *testing.T) {
	specs := make([]instSpec, 3000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntMul, dep: 1}
	}
	r := runTrace(t, idealCfg(), mkStream(specs))
	want := 1.0 / float64(isa.IntMul.Latency())
	if ipc := r.IPC(); ipc > want*1.15 || ipc < want*0.8 {
		t.Errorf("mul chain IPC = %.3f, want ~%.3f", ipc, want)
	}
}

func TestNonPipelinedDivThroughput(t *testing.T) {
	// Independent divides: throughput limited by 2 non-pipelined units
	// with latency 20 => IPC ~ 2/20 = 0.1.
	specs := make([]instSpec, 2000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntDiv}
	}
	r := runTrace(t, idealCfg(), mkStream(specs))
	if ipc := r.IPC(); ipc > 0.12 || ipc < 0.08 {
		t.Errorf("div throughput IPC = %.3f, want ~0.1", ipc)
	}
}

func TestLoadMissLatencyHurts(t *testing.T) {
	mk := func(fl trace.Flags) []trace.DynInst {
		specs := make([]instSpec, 4000)
		for i := range specs {
			if i%4 == 0 {
				specs[i] = instSpec{class: isa.Load, flags: fl}
			} else {
				specs[i] = instSpec{class: isa.IntALU, dep: 1}
			}
		}
		return mkStream(specs)
	}
	cfg := DefaultConfig()
	cfg.PerfectBpred = true
	hit := runTrace(t, cfg, mk(0))
	miss := runTrace(t, cfg, mk(trace.FlagL1DMiss|trace.FlagL2DMiss))
	if hit.IPC() <= miss.IPC() {
		t.Errorf("L2-missing loads should hurt: hit %.3f vs miss %.3f", hit.IPC(), miss.IPC())
	}
	if miss.Cache.L1DMisses == 0 || miss.Cache.L2DMisses == 0 {
		t.Error("miss flags not counted")
	}
}

func TestMispredictPenalty(t *testing.T) {
	mk := func(fl trace.Flags) []trace.DynInst {
		specs := make([]instSpec, 6000)
		for i := range specs {
			if i%6 == 5 {
				specs[i] = instSpec{class: isa.IntBranch, flags: fl, taken: false}
			} else {
				specs[i] = instSpec{class: isa.IntALU}
			}
		}
		return mkStream(specs)
	}
	cfg := DefaultConfig()
	cfg.PerfectCaches = true
	good := runTrace(t, cfg, mk(0))
	bad := runTrace(t, cfg, mk(trace.FlagBrMispredict))
	if bad.IPC() >= good.IPC()/2 {
		t.Errorf("every-branch-mispredicted IPC %.3f should be far below clean %.3f", bad.IPC(), good.IPC())
	}
	if bad.Branch.Mispredicted != 1000 {
		t.Errorf("mispredicts = %d, want 1000", bad.Branch.Mispredicted)
	}
	// Wrong-path fill: more instructions fetched than committed.
	if bad.Act.Fetched <= bad.Instructions {
		t.Errorf("wrong-path fetches missing: fetched %d, committed %d", bad.Act.Fetched, bad.Instructions)
	}
	if good.Act.Fetched != good.Instructions {
		t.Errorf("clean run should fetch exactly the committed stream: %d vs %d", good.Act.Fetched, good.Instructions)
	}
}

func TestFetchRedirectCheaperThanMispredict(t *testing.T) {
	mk := func(fl trace.Flags) []trace.DynInst {
		specs := make([]instSpec, 6000)
		for i := range specs {
			if i%6 == 5 {
				specs[i] = instSpec{class: isa.IntBranch, flags: fl, taken: true}
			} else {
				specs[i] = instSpec{class: isa.IntALU}
			}
		}
		return mkStream(specs)
	}
	cfg := DefaultConfig()
	cfg.PerfectCaches = true
	redirect := runTrace(t, cfg, mk(trace.FlagBrFetchRedirect))
	mispredict := runTrace(t, cfg, mk(trace.FlagBrMispredict))
	clean := runTrace(t, cfg, mk(0))
	if !(mispredict.IPC() < redirect.IPC() && redirect.IPC() < clean.IPC()) {
		t.Errorf("want mispredict (%.3f) < redirect (%.3f) < clean (%.3f)",
			mispredict.IPC(), redirect.IPC(), clean.IPC())
	}
	if redirect.Branch.FetchRedirect != 1000 {
		t.Errorf("redirects = %d, want 1000", redirect.Branch.FetchRedirect)
	}
}

func TestICacheMissStallsFetch(t *testing.T) {
	mk := func(fl trace.Flags) []trace.DynInst {
		specs := make([]instSpec, 4000)
		for i := range specs {
			f := trace.Flags(0)
			if i%32 == 0 {
				f = fl
			}
			specs[i] = instSpec{class: isa.IntALU, flags: f}
		}
		return mkStream(specs)
	}
	cfg := DefaultConfig()
	cfg.PerfectBpred = true
	clean := runTrace(t, cfg, mk(0))
	missy := runTrace(t, cfg, mk(trace.FlagL1IMiss))
	if missy.IPC() >= clean.IPC() {
		t.Errorf("I-cache misses should slow fetch: %.3f vs %.3f", missy.IPC(), clean.IPC())
	}
	if missy.Cache.L1IMisses == 0 {
		t.Error("I-miss flags not counted")
	}
}

func TestSmallRUULimitsILP(t *testing.T) {
	// Loads with long latency + independent ALU work: a big window hides
	// the latency, a tiny window cannot.
	specs := make([]instSpec, 8000)
	for i := range specs {
		if i%8 == 0 {
			specs[i] = instSpec{class: isa.Load, flags: trace.FlagL1DMiss | trace.FlagL2DMiss}
		} else {
			specs[i] = instSpec{class: isa.IntALU}
		}
	}
	big := DefaultConfig()
	big.PerfectBpred = true
	small := big
	small.RUUSize = 8
	small.LSQSize = 4
	rBig := runTrace(t, big, mkStream(specs))
	rSmall := runTrace(t, small, mkStream(specs))
	if rSmall.IPC() >= rBig.IPC()*0.7 {
		t.Errorf("window 8 IPC %.3f should trail window 128 IPC %.3f", rSmall.IPC(), rBig.IPC())
	}
	if rBig.AvgRUUOcc <= rSmall.AvgRUUOcc {
		t.Errorf("bigger window should hold more in flight: %.1f vs %.1f", rBig.AvgRUUOcc, rSmall.AvgRUUOcc)
	}
}

func TestOccupanciesBounded(t *testing.T) {
	specs := make([]instSpec, 5000)
	for i := range specs {
		specs[i] = instSpec{class: isa.Load, flags: trace.FlagL1DMiss}
	}
	cfg := DefaultConfig()
	cfg.PerfectBpred = true
	r := runTrace(t, cfg, mkStream(specs))
	if r.AvgRUUOcc > float64(cfg.RUUSize) || r.AvgLSQOcc > float64(cfg.LSQSize) ||
		r.AvgIFQOcc > float64(cfg.IFQSize) {
		t.Errorf("occupancies exceed capacities: RUU %.1f LSQ %.1f IFQ %.1f",
			r.AvgRUUOcc, r.AvgLSQOcc, r.AvgIFQOcc)
	}
	if r.AvgLSQOcc == 0 {
		t.Error("LSQ occupancy should be non-zero for a load-only stream")
	}
}

func TestExecutionDrivenOnBenchmark(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 42, TargetBlocks: 120})
	src := &trace.LimitSource{Src: program.NewExecutor(prog, 7), N: 150_000}
	r := NewExecutionDriven(DefaultConfig(), src).Run()
	if r.Instructions != 150_000 {
		t.Fatalf("committed %d, want 150000", r.Instructions)
	}
	if ipc := r.IPC(); ipc < 0.2 || ipc > 8 {
		t.Errorf("EDS IPC %.3f implausible", ipc)
	}
	if r.Branch.Branches == 0 || r.Cache.DAccesses == 0 {
		t.Error("missing branch/cache statistics")
	}
	if r.Branch.Mispredicted == 0 {
		t.Error("a real predictor should mispredict at least once")
	}
	if r.Cache.L1DMisses == 0 {
		t.Error("a real cache should miss at least once")
	}
}

func TestEDSDeterminism(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 1, TargetBlocks: 60})
	run := func() Result {
		src := &trace.LimitSource{Src: program.NewExecutor(prog, 3), N: 40_000}
		return NewExecutionDriven(DefaultConfig(), src).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("EDS is not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPerfectModesMatchAcrossFrontEnds(t *testing.T) {
	// With perfect caches and perfect prediction, the execution-driven
	// and trace-driven pipelines must agree cycle-for-cycle on the same
	// stream: the only differences between the modes are locality
	// events, which perfection removes.
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 9, TargetBlocks: 80})
	insts := program.NewExecutor(prog, 2).Run(30_000)
	cfg := idealCfg()
	eds := NewExecutionDriven(cfg, trace.NewSliceSource(insts)).Run()
	syn := NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()
	if eds.Cycles != syn.Cycles || eds.Instructions != syn.Instructions {
		t.Errorf("perfect-mode mismatch: EDS %d cycles, trace %d cycles", eds.Cycles, syn.Cycles)
	}
}

func TestPipelineDrainsShortStreams(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 31} {
		specs := make([]instSpec, n)
		for i := range specs {
			specs[i] = instSpec{class: isa.IntALU, dep: 1}
		}
		r := runTrace(t, idealCfg(), mkStream(specs))
		if r.Instructions != uint64(n) {
			t.Errorf("n=%d: committed %d", n, r.Instructions)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.RUUSize = 0
	if bad.Validate() == nil {
		t.Error("zero RUU accepted")
	}
	bad = DefaultConfig()
	bad.LSQSize = bad.RUUSize * 2
	if bad.Validate() == nil {
		t.Error("LSQ > RUU accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCommitWidthCapsIPC(t *testing.T) {
	specs := make([]instSpec, 8000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntALU}
	}
	cfg := idealCfg()
	cfg.CommitWidth = 2
	r := runTrace(t, cfg, mkStream(specs))
	if r.IPC() > 2.05 {
		t.Errorf("commit width 2 should cap IPC at 2, got %.2f", r.IPC())
	}
	cfg.CommitWidth = 8
	cfg.DecodeWidth = 2
	r = runTrace(t, cfg, mkStream(specs))
	if r.IPC() > 2.05 {
		t.Errorf("decode width 2 should cap IPC at 2, got %.2f", r.IPC())
	}
}

func TestMemPortContention(t *testing.T) {
	// Independent loads are throughput-limited by the load/store ports.
	specs := make([]instSpec, 8000)
	for i := range specs {
		specs[i] = instSpec{class: isa.Load}
	}
	cfg := idealCfg()
	cfg.LoadStore = 2
	two := runTrace(t, cfg, mkStream(specs))
	cfg.LoadStore = 4
	four := runTrace(t, cfg, mkStream(specs))
	if two.IPC() > 2.1 {
		t.Errorf("2 ports should cap load IPC at ~2, got %.2f", two.IPC())
	}
	if four.IPC() <= two.IPC() {
		t.Errorf("4 ports (%.2f) should beat 2 ports (%.2f)", four.IPC(), two.IPC())
	}
}

func TestFPUnitContention(t *testing.T) {
	specs := make([]instSpec, 4000)
	for i := range specs {
		specs[i] = instSpec{class: isa.FPALU}
	}
	cfg := idealCfg()
	r := runTrace(t, cfg, mkStream(specs))
	// 2 FP adders, pipelined: throughput caps at 2/cycle.
	if r.IPC() > 2.1 {
		t.Errorf("FP adder throughput should cap at 2, got %.2f", r.IPC())
	}
}

func TestWarmupResetsStats(t *testing.T) {
	specs := make([]instSpec, 5000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntALU}
	}
	cfg := idealCfg()
	cfg.WarmupInsts = 2000
	r := runTrace(t, cfg, mkStream(specs))
	if r.Instructions != 3000 {
		t.Errorf("warmup should exclude 2000 insts: counted %d", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC() < 6 {
		t.Errorf("post-warmup stats broken: %d cycles, IPC %.2f", r.Cycles, r.IPC())
	}
}

func TestDepBeyondWindowIsReady(t *testing.T) {
	// A dependency distance far larger than the RUU can never stall.
	specs := make([]instSpec, 3000)
	for i := range specs {
		specs[i] = instSpec{class: isa.IntALU, dep: 600}
	}
	r := runTrace(t, idealCfg(), mkStream(specs))
	if ipc := r.IPC(); ipc < 7.0 {
		t.Errorf("beyond-window deps should not serialise: IPC %.2f", ipc)
	}
}
