package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

func TestInOrderSlowerThanOoO(t *testing.T) {
	// A stream with long-latency loads followed by independent ALU work:
	// out-of-order execution hides the latency, in-order cannot.
	specs := make([]instSpec, 6000)
	for i := range specs {
		if i%10 == 0 {
			specs[i] = instSpec{class: isa.Load, flags: trace.FlagL1DMiss}
		} else {
			specs[i] = instSpec{class: isa.IntALU}
		}
	}
	// The load's consumer comes right after it.
	for i := 1; i < len(specs); i++ {
		if specs[i-1].class == isa.Load {
			specs[i].dep = 1
		}
	}
	ooo := DefaultConfig()
	ooo.PerfectBpred = true
	ino := ooo
	ino.InOrder = true
	rOoO := runTrace(t, ooo, mkStream(specs))
	rIno := runTrace(t, ino, mkStream(specs))
	if rIno.IPC() >= rOoO.IPC() {
		t.Errorf("in-order IPC %.3f should trail out-of-order %.3f", rIno.IPC(), rOoO.IPC())
	}
	if rIno.Instructions != rOoO.Instructions {
		t.Errorf("committed counts differ: %d vs %d", rIno.Instructions, rOoO.Instructions)
	}
}

func TestInOrderHeadOfLineBlocking(t *testing.T) {
	// A divide, one instruction dependent on it, then many independent
	// ALU ops. In-order issue stalls at the dependent instruction and
	// blocks every younger independent op; out-of-order executes them
	// under the divide's shadow. Repeated many times the gap is large.
	var specs []instSpec
	for rep := 0; rep < 200; rep++ {
		specs = append(specs, instSpec{class: isa.IntDiv})
		specs = append(specs, instSpec{class: isa.IntALU, dep: 1})
		for i := 0; i < 16; i++ {
			specs = append(specs, instSpec{class: isa.IntALU})
		}
	}
	ino := idealCfg()
	ino.InOrder = true
	r := runTrace(t, ino, mkStream(specs))
	ro := runTrace(t, idealCfg(), mkStream(specs))
	if float64(r.Cycles) < 1.3*float64(ro.Cycles) {
		t.Errorf("in-order (%d cycles) should be much slower than OoO (%d)", r.Cycles, ro.Cycles)
	}
}

func TestWAWStallsInOrderOnly(t *testing.T) {
	// Two writers of the same "register" (WAWDist=1) where the first is
	// a long divide: in-order without renaming stalls the second write,
	// out-of-order (renamed) does not model WAW at all.
	mk := func() []trace.DynInst {
		specs := make([]instSpec, 4000)
		for i := range specs {
			if i%2 == 0 {
				specs[i] = instSpec{class: isa.IntDiv}
			} else {
				specs[i] = instSpec{class: isa.IntALU}
			}
		}
		insts := mkStream(specs)
		for i := 1; i < len(insts); i += 2 {
			insts[i].WAWDist = 1 // the ALU overwrites the divide's register
		}
		return insts
	}
	ino := idealCfg()
	ino.InOrder = true
	noWAW := mk()
	for i := range noWAW {
		noWAW[i].WAWDist = 0
	}
	withWAW := runTrace(t, ino, mk())
	without := runTrace(t, ino, noWAW)
	if withWAW.Cycles <= without.Cycles {
		t.Errorf("WAW dependencies should stall the in-order pipeline: %d vs %d cycles",
			withWAW.Cycles, without.Cycles)
	}
	// Out-of-order ignores WAW: identical with and without.
	ooo := idealCfg()
	a := runTrace(t, ooo, mk())
	b := runTrace(t, ooo, noWAW)
	if a.Cycles != b.Cycles {
		t.Errorf("renamed OoO must ignore WAW: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestInOrderEDSOnBenchmark(t *testing.T) {
	prog := program.MustGenerate(program.Personality{Name: "t", Seed: 8, TargetBlocks: 100})
	cfg := DefaultConfig()
	cfg.InOrder = true
	src := &trace.LimitSource{Src: program.NewExecutor(prog, 2), N: 80_000}
	r := NewExecutionDriven(cfg, src).Run()
	if r.Instructions != 80_000 {
		t.Fatalf("committed %d", r.Instructions)
	}
	if ipc := r.IPC(); ipc <= 0 || ipc > 4 {
		t.Errorf("in-order IPC %.3f implausible", ipc)
	}
}
