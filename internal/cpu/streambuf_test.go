package cpu

import (
	"testing"

	"repro/internal/trace"
)

func countingSource(n int) trace.Source {
	insts := make([]trace.DynInst, n)
	for i := range insts {
		insts[i].PC = uint64(i)
	}
	return trace.NewSliceSource(insts)
}

func TestStreamBufSequentialAndRewind(t *testing.T) {
	s := newStreamBuf(countingSource(100))
	for pos := uint64(0); pos < 100; pos++ {
		d := s.at(pos)
		if d == nil || d.PC != pos {
			t.Fatalf("at(%d) = %+v", pos, d)
		}
	}
	// Rewind to an unreleased position (the misprediction re-fetch path).
	if d := s.at(10); d == nil || d.PC != 10 {
		t.Fatalf("rewind to 10: %+v", d)
	}
}

func TestStreamBufEOF(t *testing.T) {
	s := newStreamBuf(countingSource(5))
	if d := s.at(4); d == nil || d.PC != 4 {
		t.Fatalf("last instruction: %+v", d)
	}
	if d := s.at(5); d != nil {
		t.Fatalf("read past EOF: %+v", d)
	}
	// EOF is sticky: the source is not consulted again.
	if d := s.at(1_000); d != nil {
		t.Fatalf("far past EOF: %+v", d)
	}
	// Buffered instructions stay readable after EOF.
	if d := s.at(2); d == nil || d.PC != 2 {
		t.Fatalf("buffered after EOF: %+v", d)
	}
}

func TestStreamBufAccessBelowReleasePanics(t *testing.T) {
	s := newStreamBuf(countingSource(10_000))
	for pos := uint64(0); pos < 5_000; pos++ {
		s.at(pos)
	}
	s.release(5_000) // drop >= 4096 forces compaction
	if s.base != 5_000 {
		t.Fatalf("base after release = %d, want 5000", s.base)
	}
	defer func() {
		if recover() == nil {
			t.Error("access below release point did not panic")
		}
	}()
	s.at(4_999)
}

func TestStreamBufReleaseBoundaries(t *testing.T) {
	s := newStreamBuf(countingSource(100))
	for pos := uint64(0); pos < 100; pos++ {
		s.at(pos)
	}
	// Releasing at or below base is a no-op.
	s.release(0)
	if s.base != 0 || len(s.buf) != 100 {
		t.Fatalf("release(0) changed state: base=%d len=%d", s.base, len(s.buf))
	}
	// A small release below the compaction threshold keeps the prefix
	// buffered (base unchanged) — release is advisory, not exact.
	s.release(10)
	if s.base != 0 {
		t.Fatalf("small release compacted early: base=%d", s.base)
	}
	// Releasing the whole buffer compacts regardless of size.
	s.release(100)
	if s.base != 100 || len(s.buf) != 0 {
		t.Fatalf("full release: base=%d len=%d", s.base, len(s.buf))
	}
	// Releasing beyond everything buffered clamps to the buffered end.
	s.release(1_000)
	if s.base != 100 {
		t.Fatalf("over-release moved base to %d", s.base)
	}
	// The stream continues cleanly after a full release... until EOF.
	if d := s.at(100); d != nil {
		t.Fatalf("exhausted source produced %+v", d)
	}
}

func TestStreamBufCompactionPreservesContent(t *testing.T) {
	const n = 20_000
	s := newStreamBuf(countingSource(n))
	for pos := uint64(0); pos < n; pos++ {
		if d := s.at(pos); d == nil || d.PC != pos {
			t.Fatalf("at(%d) = %+v", pos, d)
		}
		// Release in chunks as commit would; compaction must be
		// invisible to subsequent reads.
		if pos%4_096 == 0 {
			s.release(pos)
		}
	}
	if uint64(len(s.buf))+s.base < n {
		t.Fatalf("buffer lost instructions: base=%d len=%d", s.base, len(s.buf))
	}
}
