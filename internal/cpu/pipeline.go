package cpu

import (
	"fmt"
	"slices"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// entryState tracks an RUU entry through the pipeline back end.
type entryState uint8

const (
	stateWaiting entryState = iota // operands outstanding
	stateReady                     // operands available, not yet issued
	stateIssued                    // executing
	stateDone                      // result available
)

// waiterRef names a dependent RUU entry; gen guards against the slot
// having been squashed and reused since the dependency was recorded.
type waiterRef struct {
	slot int32
	gen  uint32
}

type ruuEntry struct {
	inst       trace.DynInst
	pos        uint64 // stream position
	completeAt uint64
	waiters    []waiterRef // RUU entries waiting on this result
	outcome    bpred.Outcome
	waitCount  int
	gen        uint32
	state      entryState
	wrongPath  bool
	isMem      bool
	active     bool

	dL1, dL2, dTLB bool // data-access locality events (loads/stores)
}

type ifqEntry struct {
	pos       uint64
	outcome   bpred.Outcome
	wrongPath bool
}

type depRec struct {
	pos  uint64
	slot int32
	gen  uint32
	used bool
}

const depTableSize = 4096 // > RUU + IFQ + MaxDependencyDistance, power of two

// Pipeline is one simulation instance. It is single-use: construct,
// Run, read the Result.
type Pipeline struct {
	cfg  Config
	sbuf *streamBuf

	// Live locality models. Execution-driven mode sets all of them;
	// plain trace mode sets none; the synthetic-address mode
	// (Config.SimulateDCache) sets only dHier, keeping I-side and
	// branch events flag-driven.
	iHier *cache.Hierarchy
	dHier *cache.Hierarchy
	pred  *bpred.Predictor

	// RUU ring.
	ruu     []ruuEntry
	ruuHead int
	ruuLen  int

	// IFQ ring.
	ifq     []ifqEntry
	ifqHead int
	ifqLen  int

	lsqLen int

	deps  [depTableSize]depRec
	ready []int32

	// Completion wheel: wheel[c % len(wheel)] holds the entries whose
	// results become available at cycle c, so writeback touches only
	// completing entries instead of scanning the RUU every cycle.
	wheel [][]waiterRef

	// Functional-unit pools: busy-until cycle per unit instance.
	fuIntALU, fuLS, fuFPAdd, fuIntMul, fuFPMul []uint64

	cycle       uint64
	cycleBase   uint64 // cycle at which statistics last reset (warmup)
	fetchPos    uint64
	fetchResume uint64
	wrongPath   bool // fetch is currently delivering wrong-path instructions
	streamEnd   bool
	halted      bool   // stream exhausted and pipeline drained
	warmLeft    uint64 // instructions still to commit before stats reset

	// Forward-progress guard state (persisted across partial runs so a
	// lockstep-driven pipeline behaves exactly like a monolithic Run).
	lastCommitCycle uint64
	lastCommitted   uint64

	res       Result
	occRUUSum uint64
	occLSQSum uint64
	occIFQSum uint64
}

// NewExecutionDriven builds the reference simulator: locality events
// are computed live from fresh cache and branch-predictor models.
func NewExecutionDriven(cfg Config, src trace.Source) *Pipeline {
	p := newPipeline(cfg, src)
	if !cfg.PerfectCaches {
		h := cache.NewHierarchy(cfg.Hier)
		p.iHier, p.dHier = h, h
	}
	if !cfg.PerfectBpred {
		p.pred = bpred.New(cfg.Bpred)
	}
	return p
}

// NewTraceDriven builds the synthetic-trace simulator: locality events
// are taken from the pre-assigned per-instruction flags (§2.3). With
// Config.SimulateDCache set and a trace carrying synthetic addresses,
// the data side of the hierarchy is simulated live instead, so cache
// configurations other than the profiled one can be evaluated.
func NewTraceDriven(cfg Config, src trace.Source) *Pipeline {
	p := newPipeline(cfg, src)
	if cfg.SimulateDCache && !cfg.PerfectCaches {
		p.dHier = cache.NewHierarchy(cfg.Hier)
	}
	return p
}

func newPipeline(cfg Config, src trace.Source) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// The wheel must cover the largest possible result latency: the
	// worst memory path plus slack for non-pipelined FU occupancy.
	wheelSize := 64
	for wheelSize <= cfg.Hier.MemLatency+cfg.Hier.TLBMissLatency+64 {
		wheelSize <<= 1
	}
	return &Pipeline{
		cfg:      cfg,
		warmLeft: cfg.WarmupInsts,
		sbuf:     newStreamBuf(src),
		ruu:      make([]ruuEntry, cfg.RUUSize),
		ifq:      make([]ifqEntry, cfg.IFQSize),
		wheel:    make([][]waiterRef, wheelSize),
		fuIntALU: make([]uint64, cfg.IntALUs),
		fuLS:     make([]uint64, cfg.LoadStore),
		fuFPAdd:  make([]uint64, cfg.FPAdders),
		fuIntMul: make([]uint64, cfg.IntMulDivs),
		fuFPMul:  make([]uint64, cfg.FPMulDivs),
	}
}

// scheduleCompletion registers an issued entry on the completion wheel.
func (p *Pipeline) scheduleCompletion(slot int32, en *ruuEntry) {
	d := en.completeAt - p.cycle
	if d >= uint64(len(p.wheel)) {
		panic(fmt.Sprintf("cpu: latency %d exceeds completion wheel (%d)", d, len(p.wheel)))
	}
	idx := en.completeAt % uint64(len(p.wheel))
	p.wheel[idx] = append(p.wheel[idx], waiterRef{slot: slot, gen: en.gen})
}

// Run simulates until the source is exhausted and the pipeline drains,
// returning the accumulated statistics.
func (p *Pipeline) Run() Result {
	p.RunToFetch(^uint64(0))
	return p.Finalize()
}

// step advances the pipeline by exactly one cycle and reports whether
// the run has drained (stream exhausted, windows empty). It is the one
// cycle kernel shared by Run and the lockstep batch driver, so a
// pipeline advanced in segments executes the identical cycle sequence
// as a monolithic run.
func (p *Pipeline) step() bool {
	p.commit()
	p.writeback()
	p.issue()
	p.dispatch()
	p.fetch()

	p.occRUUSum += uint64(p.ruuLen)
	p.occLSQSum += uint64(p.lsqLen)
	p.occIFQSum += uint64(p.ifqLen)
	p.cycle++

	if p.streamEnd && p.ruuLen == 0 && p.ifqLen == 0 {
		return true
	}
	// Deadlock guard: the pipeline must make forward progress.
	if p.res.Instructions != p.lastCommitted {
		p.lastCommitted = p.res.Instructions
		p.lastCommitCycle = p.cycle
	} else if p.cycle-p.lastCommitCycle > 1_000_000 {
		panic(fmt.Sprintf("cpu: no commit for 1M cycles at cycle %d (ruu=%d ifq=%d)",
			p.cycle, p.ruuLen, p.ifqLen))
	}
	return false
}

// RunToFetch advances the pipeline cycle by cycle until its fetch
// frontier reaches stream position limit or the run drains; it reports
// whether the run has drained. This is the batch-driver hook behind
// lockstep multi-config simulation: the driver moves each instance one
// stream chunk at a time, and because step is the same kernel Run uses,
// any segmentation of the run — including the degenerate
// RunToFetch(MaxUint64) that Run itself performs — produces
// byte-identical statistics.
//
// A mispredict recovery may rewind the fetch frontier below an
// already-reached limit; the next call simply advances until the
// frontier passes it again, re-reading from the pipeline's own stream
// buffer (never from the source, whose cursor is monotone).
func (p *Pipeline) RunToFetch(limit uint64) bool {
	for !p.halted {
		if p.fetchPos >= limit {
			return false
		}
		if p.step() {
			p.halted = true
		}
	}
	return true
}

// Finalize computes the end-of-run aggregate statistics and returns the
// Result. Call once the run has drained (Run does it internally; batch
// drivers call it after RunToFetch reports the drain).
func (p *Pipeline) Finalize() Result {
	cycles := p.cycle - p.cycleBase
	p.res.Cycles = cycles
	if cycles > 0 {
		p.res.AvgRUUOcc = float64(p.occRUUSum) / float64(cycles)
		p.res.AvgLSQOcc = float64(p.occLSQSum) / float64(cycles)
		p.res.AvgIFQOcc = float64(p.occIFQSum) / float64(cycles)
	}
	return p.res
}

// ---------------------------------------------------------------- fetch

func (p *Pipeline) fetch() {
	if p.cycle < p.fetchResume {
		p.res.Pipe.Stall.FetchPenalty++
		p.res.Pipe.Fetch.observe(0)
		return
	}
	if p.streamEnd && p.wrongPath {
		p.res.Pipe.Stall.FetchStreamEnd++
		p.res.Pipe.Fetch.observe(0)
		return
	}
	fetched := uint64(0)
	defer func() {
		if fetched == 0 {
			switch {
			case p.ifqLen >= p.cfg.IFQSize:
				p.res.Pipe.Stall.FetchIFQFull++
			case p.streamEnd || p.wrongPath:
				p.res.Pipe.Stall.FetchStreamEnd++
			}
		}
		p.res.Pipe.Fetch.observe(fetched)
	}()
	budget := p.cfg.FetchWidth()
	for budget > 0 && p.ifqLen < p.cfg.IFQSize {
		d := p.sbuf.at(p.fetchPos)
		if d == nil {
			if !p.wrongPath {
				p.streamEnd = true
			}
			return
		}
		e := ifqEntry{pos: p.fetchPos, wrongPath: p.wrongPath}
		p.res.Act.Fetched++
		fetched++
		budget--
		p.fetchPos++

		stall := 0
		if !p.wrongPath {
			stall = p.fetchLocality(d)
			if d.Class.IsBranch() {
				e.outcome = p.predictBranch(d)
			}
		}
		p.ifqPush(e)

		if !p.wrongPath && d.Class.IsBranch() {
			if e.outcome.Mispredicted {
				// Everything fetched from here on is wrong-path filler
				// until the branch resolves (§2.3).
				p.wrongPath = true
				break
			}
			if e.outcome.FetchRedirect {
				p.fetchResume = p.cycle + 1 + uint64(p.cfg.RedirectPenalty)
				break
			}
		}
		if stall > 0 {
			p.fetchResume = p.cycle + 1 + uint64(stall)
			break
		}
		if d.Taken {
			// At most one taken branch is fetched per cycle.
			break
		}
	}
}

// fetchLocality performs the I-side cache work for a correct-path fetch
// and returns the fetch stall in cycles.
func (p *Pipeline) fetchLocality(d *trace.DynInst) int {
	p.res.Act.ICacheAccesses++
	p.res.Cache.IFetches++
	if p.cfg.PerfectCaches {
		return 0
	}
	var l1, l2, tlb bool
	if p.iHier != nil {
		r := p.iHier.AccessI(d.PC)
		l1, l2, tlb = r.L1Miss, r.L2Miss, r.TLBMiss
	} else {
		l1 = d.Flags.Has(trace.FlagL1IMiss)
		l2 = d.Flags.Has(trace.FlagL2IMiss)
		tlb = d.Flags.Has(trace.FlagITLBMiss)
	}
	if l1 {
		p.res.Cache.L1IMisses++
		p.res.Act.L2Accesses++
		if l2 {
			p.res.Cache.L2IMisses++
		}
	}
	if tlb {
		p.res.Cache.ITLBMisses++
	}
	return p.cfg.Hier.FetchStall(l1, l2, tlb)
}

// predictBranch produces the branch outcome for a correct-path branch
// at fetch time (lookup at fetch; state update happens at dispatch).
func (p *Pipeline) predictBranch(d *trace.DynInst) bpred.Outcome {
	if p.cfg.PerfectBpred {
		return bpred.Outcome{Taken: d.Taken}
	}
	p.res.Act.BpredLookups++
	p.res.Act.BTBAccesses++
	if p.pred != nil {
		pr := p.pred.Lookup(d.PC, d.Class)
		return bpred.Classify(pr, d.Class, d.Taken, d.NextPC)
	}
	return bpred.Outcome{
		Taken:         d.Taken,
		Mispredicted:  d.Flags.Has(trace.FlagBrMispredict),
		FetchRedirect: d.Flags.Has(trace.FlagBrFetchRedirect),
	}
}

func (p *Pipeline) ifqPush(e ifqEntry) {
	p.ifq[(p.ifqHead+p.ifqLen)%p.cfg.IFQSize] = e
	p.ifqLen++
}

// -------------------------------------------------------------- dispatch

func (p *Pipeline) dispatch() {
	moved := uint64(0)
	defer func() {
		if moved == 0 {
			switch {
			case p.ifqLen == 0:
				p.res.Pipe.Stall.DispatchEmptyIFQ++
			case p.ruuLen >= p.cfg.RUUSize:
				p.res.Pipe.Stall.DispatchRUUFull++
			default:
				p.res.Pipe.Stall.DispatchLSQFull++
			}
		}
		p.res.Pipe.Dispatch.observe(moved)
	}()
	for n := 0; n < p.cfg.DecodeWidth && p.ifqLen > 0 && p.ruuLen < p.cfg.RUUSize; n++ {
		fe := &p.ifq[p.ifqHead]
		d := p.sbuf.at(fe.pos)
		isMem := d.Class.IsMem()
		if isMem && p.lsqLen >= p.cfg.LSQSize {
			return
		}
		p.ifqHead = (p.ifqHead + 1) % p.cfg.IFQSize
		p.ifqLen--

		slot := int32((p.ruuHead + p.ruuLen) % p.cfg.RUUSize)
		p.ruuLen++
		en := &p.ruu[slot]
		gen := en.gen + 1
		*en = ruuEntry{
			inst:      *d,
			pos:       fe.pos,
			outcome:   fe.outcome,
			gen:       gen,
			wrongPath: fe.wrongPath,
			isMem:     isMem,
			active:    true,
			waiters:   en.waiters[:0],
		}
		if isMem {
			p.lsqLen++
		}
		moved++
		p.res.Act.Dispatched++
		p.res.Act.RegReads += uint64(d.NumSrcs)
		if d.Class.HasDest() {
			p.res.Act.RegWrites++
		}

		// Speculative predictor update at dispatch (correct path only).
		if d.Class.IsBranch() && !fe.wrongPath && p.pred != nil && !p.cfg.PerfectBpred {
			p.pred.Update(d.PC, d.Class, d.Taken, d.NextPC)
			p.res.Act.BpredUpdates++
		}

		// Resolve RAW dependencies through the in-flight table; in-order
		// configurations additionally respect the WAW dependency, which
		// renaming would otherwise remove.
		for op := 0; op < int(d.NumSrcs); op++ {
			p.addDep(en, slot, gen, fe.pos, uint64(d.DepDist[op]))
		}
		if p.cfg.InOrder {
			p.addDep(en, slot, gen, fe.pos, uint64(d.WAWDist))
		}
		p.deps[fe.pos%depTableSize] = depRec{pos: fe.pos, slot: slot, gen: gen, used: true}

		if en.waitCount == 0 {
			en.state = stateReady
			p.markReady(slot)
		}
	}
}

// addDep records a dependency of the entry at slot on the instruction
// delta positions earlier, if that producer is still in flight.
func (p *Pipeline) addDep(en *ruuEntry, slot int32, gen uint32, pos, delta uint64) {
	if delta == 0 || delta > pos {
		return
	}
	q := pos - delta
	rec := &p.deps[q%depTableSize]
	if !rec.used || rec.pos != q {
		return
	}
	prod := &p.ruu[rec.slot]
	if !prod.active || prod.gen != rec.gen || prod.state == stateDone {
		return
	}
	prod.waiters = append(prod.waiters, waiterRef{slot: slot, gen: gen})
	en.waitCount++
}

// markReady queues a ready entry for out-of-order selection; the
// in-order issue path scans the RUU directly instead.
func (p *Pipeline) markReady(slot int32) {
	if !p.cfg.InOrder {
		p.ready = append(p.ready, slot)
	}
}

// ----------------------------------------------------------------- issue

func (p *Pipeline) issue() {
	var issued uint64
	var sawReady bool
	if p.cfg.InOrder {
		issued, sawReady = p.issueInOrder()
	} else {
		issued, sawReady = p.issueOutOfOrder()
	}
	if issued == 0 && p.ruuLen > 0 {
		if sawReady {
			p.res.Pipe.Stall.IssueFUBusy++
		} else {
			p.res.Pipe.Stall.IssueNoReady++
		}
	}
	p.res.Pipe.Issue.observe(issued)
}

func (p *Pipeline) issueOutOfOrder() (uint64, bool) {
	if len(p.ready) == 0 {
		return 0, false
	}
	// Oldest-first selection. Stream positions order in-flight entries
	// totally: wrong-path entries are strictly younger than every
	// correct-path entry, and positions are unique among live entries.
	// slices.SortFunc rather than sort.Slice: the comparator is total,
	// so both produce the same order, and SortFunc does not allocate a
	// reflect-based swapper every cycle.
	slices.SortFunc(p.ready, func(a, b int32) int {
		pa, pb := p.ruu[a].pos, p.ruu[b].pos
		switch {
		case pa < pb:
			return -1
		case pa > pb:
			return 1
		}
		return 0
	})
	issued := uint64(0)
	sawReady := false
	kept := p.ready[:0]
	for _, slot := range p.ready {
		en := &p.ruu[slot]
		if !en.active || en.state != stateReady {
			continue // squashed since enqueued
		}
		sawReady = true
		if issued >= uint64(p.cfg.IssueWidth) {
			kept = append(kept, slot)
			continue
		}
		pool, lat, occ := p.fuFor(en)
		unit := -1
		for u := range pool {
			if pool[u] <= p.cycle {
				unit = u
				break
			}
		}
		if unit < 0 {
			kept = append(kept, slot)
			continue
		}
		pool[unit] = p.cycle + uint64(occ)
		if en.isMem && !en.wrongPath {
			p.accessDCache(en)
		}
		if en.inst.Class == isa.Load {
			lat = p.loadLatency(en)
		}
		if lat < 1 {
			lat = 1
		}
		en.state = stateIssued
		en.completeAt = p.cycle + uint64(lat)
		p.scheduleCompletion(slot, en)
		issued++
		p.res.Act.Issued++
		p.countFUOp(en.inst.Class)
	}
	p.ready = kept
	return issued, sawReady
}

// issueInOrder issues strictly in program order: the oldest un-issued
// instruction blocks everything younger until it issues. It reports
// how many instructions issued and whether any instruction was ready
// (so a zero-issue cycle can be attributed to operands vs units).
func (p *Pipeline) issueInOrder() (uint64, bool) {
	issued := uint64(0)
	for i := 0; i < p.ruuLen && issued < uint64(p.cfg.IssueWidth); i++ {
		slot := int32((p.ruuHead + i) % p.cfg.RUUSize)
		en := &p.ruu[slot]
		switch en.state {
		case stateIssued, stateDone:
			continue
		case stateWaiting:
			return issued, false
		}
		pool, lat, occ := p.fuFor(en)
		unit := -1
		for u := range pool {
			if pool[u] <= p.cycle {
				unit = u
				break
			}
		}
		if unit < 0 {
			return issued, true // structural hazard stalls issue in order
		}
		pool[unit] = p.cycle + uint64(occ)
		if en.isMem && !en.wrongPath {
			p.accessDCache(en)
		}
		if en.inst.Class == isa.Load {
			lat = p.loadLatency(en)
		}
		if lat < 1 {
			lat = 1
		}
		en.state = stateIssued
		en.completeAt = p.cycle + uint64(lat)
		p.scheduleCompletion(slot, en)
		issued++
		p.res.Act.Issued++
		p.countFUOp(en.inst.Class)
	}
	// Reaching here with zero issues means every in-flight entry was
	// already executing or complete — nothing was ready.
	return issued, false
}

// fuFor maps an entry to its functional-unit pool, result latency and
// unit occupancy (latency for non-pipelined units, 1 otherwise).
func (p *Pipeline) fuFor(en *ruuEntry) (pool []uint64, lat, occ int) {
	c := en.inst.Class
	lat = c.Latency()
	occ = 1
	switch c {
	case isa.Load, isa.Store:
		pool = p.fuLS
	case isa.IntBranch, isa.IndirBranch, isa.IntALU:
		pool = p.fuIntALU
	case isa.FPALU, isa.FPBranch:
		pool = p.fuFPAdd
	case isa.IntMul:
		pool = p.fuIntMul
	case isa.IntDiv:
		pool = p.fuIntMul
		occ = lat
	case isa.FPMul:
		pool = p.fuFPMul
	case isa.FPDiv, isa.FPSqrt:
		pool = p.fuFPMul
		occ = lat
	default:
		pool = p.fuIntALU
	}
	return pool, lat, occ
}

func (p *Pipeline) countFUOp(c isa.Class) {
	switch {
	case c == isa.Load:
		p.res.Act.LoadOps++
	case c == isa.Store:
		p.res.Act.StoreOps++
	case c == isa.IntMul || c == isa.IntDiv:
		p.res.Act.IntMulOps++
	case c.IsFP():
		p.res.Act.FPOps++
	default:
		p.res.Act.IntALUOps++
	}
}

// accessDCache performs the D-side cache bookkeeping for a correct-path
// memory operation at issue time. In live mode it also mutates the
// hierarchy; stores access the cache but never stall the pipeline
// (write buffering).
func (p *Pipeline) accessDCache(en *ruuEntry) {
	p.res.Act.DCacheAccesses++
	p.res.Cache.DAccesses++
	if p.cfg.PerfectCaches {
		return
	}
	var l1, l2, tlb bool
	if p.dHier != nil {
		r := p.dHier.AccessD(en.inst.EffAddr)
		l1, l2, tlb = r.L1Miss, r.L2Miss, r.TLBMiss
	} else {
		l1 = en.inst.Flags.Has(trace.FlagL1DMiss)
		l2 = en.inst.Flags.Has(trace.FlagL2DMiss)
		tlb = en.inst.Flags.Has(trace.FlagDTLBMiss)
	}
	if l1 {
		p.res.Cache.L1DMisses++
		p.res.Act.L2Accesses++
		if l2 {
			p.res.Cache.L2DMisses++
		}
	}
	if tlb {
		p.res.Cache.DTLBMisses++
	}
	en.dL1, en.dL2, en.dTLB = l1, l2, tlb
}

// loadLatency returns the access latency of a load given its locality
// events; wrong-path loads are charged an L1 hit (they do not touch the
// caches, per §2.3).
func (p *Pipeline) loadLatency(en *ruuEntry) int {
	if p.cfg.PerfectCaches || en.wrongPath {
		return p.cfg.Hier.L1D.Latency
	}
	return p.cfg.Hier.LoadLatency(en.dL1, en.dL2, en.dTLB)
}

// ------------------------------------------------------------- writeback

func (p *Pipeline) writeback() {
	idx := p.cycle % uint64(len(p.wheel))
	completing := p.wheel[idx]
	if len(completing) == 0 {
		return
	}
	p.wheel[idx] = completing[:0]
	for _, ref := range completing {
		en := &p.ruu[ref.slot]
		// Entries squashed (and possibly reissued) since scheduling are
		// filtered by the generation check.
		if !en.active || en.gen != ref.gen || en.state != stateIssued || en.completeAt != p.cycle {
			continue
		}
		en.state = stateDone
		for _, w := range en.waiters {
			c := &p.ruu[w.slot]
			if !c.active || c.gen != w.gen || c.state != stateWaiting {
				continue
			}
			c.waitCount--
			if c.waitCount == 0 {
				c.state = stateReady
				p.markReady(w.slot)
			}
		}
		en.waiters = en.waiters[:0]

		if en.inst.Class.IsBranch() && !en.wrongPath && en.outcome.Mispredicted {
			// At most one unresolved correct-path misprediction can be
			// in flight, so a single recovery per cycle suffices; any
			// same-cycle completions of now-squashed entries are
			// filtered above.
			p.recover(ref.slot)
		}
	}
}

// recover squashes everything younger than the mispredicted branch in
// the RUU slot branchSlot, clears the IFQ, and redirects fetch to the
// correct path after the misprediction penalty.
func (p *Pipeline) recover(branchSlot int32) {
	branch := &p.ruu[branchSlot]
	for p.ruuLen > 0 {
		slot := int32((p.ruuHead + p.ruuLen - 1) % p.cfg.RUUSize)
		if slot == branchSlot {
			break
		}
		en := &p.ruu[slot]
		if en.isMem {
			p.lsqLen--
		}
		en.active = false
		en.gen++
		p.ruuLen--
	}
	p.ifqHead, p.ifqLen = 0, 0
	p.fetchPos = branch.pos + 1
	p.wrongPath = false
	p.streamEnd = false
	resume := p.cycle + 1 + uint64(p.cfg.MispredictExtra)
	if resume > p.fetchResume {
		p.fetchResume = resume
	}
}

// ---------------------------------------------------------------- commit

func (p *Pipeline) commit() {
	committed := uint64(0)
	defer func() {
		if committed == 0 {
			if p.ruuLen == 0 {
				p.res.Pipe.Stall.CommitEmptyRUU++
			} else {
				p.res.Pipe.Stall.CommitOldestNotDone++
			}
		}
		p.res.Pipe.Commit.observe(committed)
	}()
	for n := 0; n < p.cfg.CommitWidth && p.ruuLen > 0; n++ {
		en := &p.ruu[p.ruuHead]
		if en.state != stateDone {
			return
		}
		if en.wrongPath {
			panic("cpu: wrong-path instruction reached commit")
		}
		if en.isMem {
			p.lsqLen--
		}
		if en.inst.Class.IsBranch() {
			p.res.Branch.Branches++
			if en.inst.Taken {
				p.res.Branch.Taken++
			}
			if en.outcome.Mispredicted {
				p.res.Branch.Mispredicted++
			}
			if en.outcome.FetchRedirect {
				p.res.Branch.FetchRedirect++
			}
		}
		en.active = false
		en.gen++
		p.ruuHead = (p.ruuHead + 1) % p.cfg.RUUSize
		p.ruuLen--
		committed++
		p.res.Instructions++
		p.res.Act.Committed++
		if p.res.Instructions%8192 == 0 {
			p.sbuf.release(en.pos + 1)
		}
		if p.warmLeft > 0 {
			p.warmLeft--
			if p.warmLeft == 0 {
				// End of warmup: discard the statistics accumulated so
				// far; microarchitectural state stays warm.
				p.res = Result{}
				p.occRUUSum, p.occLSQSum, p.occIFQSum = 0, 0, 0
				p.cycleBase = p.cycle
			}
		}
	}
}
