package cpu

import (
	"strings"
	"testing"
)

// TestConfigValidate walks the rejection surface field by field: every
// zero/negative width and buffer size, the upper-bound caps that back
// the occupancy histograms' bucket range, and the cross-field
// constraints.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; empty means valid
	}{
		{"default", func(*Config) {}, ""},
		{"zero fetch speed", func(c *Config) { c.FetchSpeed = 0 }, "FetchSpeed"},
		{"negative fetch speed", func(c *Config) { c.FetchSpeed = -1 }, "FetchSpeed"},
		{"zero decode width", func(c *Config) { c.DecodeWidth = 0 }, "DecodeWidth"},
		{"negative decode width", func(c *Config) { c.DecodeWidth = -3 }, "DecodeWidth"},
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }, "IssueWidth"},
		{"zero commit width", func(c *Config) { c.CommitWidth = 0 }, "CommitWidth"},
		{"zero IFQ", func(c *Config) { c.IFQSize = 0 }, "IFQSize"},
		{"negative IFQ", func(c *Config) { c.IFQSize = -1 }, "IFQSize"},
		{"zero RUU", func(c *Config) { c.RUUSize = 0 }, "RUUSize"},
		{"zero LSQ", func(c *Config) { c.LSQSize = 0 }, "LSQSize"},
		{"zero int ALUs", func(c *Config) { c.IntALUs = 0 }, "IntALUs"},
		{"zero load/store ports", func(c *Config) { c.LoadStore = 0 }, "LoadStore"},
		{"zero FP adders", func(c *Config) { c.FPAdders = 0 }, "FPAdders"},
		{"zero int mul/div", func(c *Config) { c.IntMulDivs = 0 }, "IntMulDivs"},
		{"zero FP mul/div", func(c *Config) { c.FPMulDivs = 0 }, "FPMulDivs"},
		{"negative mispredict extra", func(c *Config) { c.MispredictExtra = -1 }, "branch penalties"},
		{"negative redirect penalty", func(c *Config) { c.RedirectPenalty = -1 }, "branch penalties"},
		{"LSQ larger than RUU", func(c *Config) { c.LSQSize = c.RUUSize + 1 }, "larger than RUU"},
		{"decode width above cap", func(c *Config) { c.DecodeWidth = MaxWidth + 1; c.FetchSpeed = 1 }, "DecodeWidth"},
		{"issue width above cap", func(c *Config) { c.IssueWidth = MaxWidth + 1 }, "IssueWidth"},
		{"commit width above cap", func(c *Config) { c.CommitWidth = MaxWidth + 1 }, "CommitWidth"},
		{"fetch width above cap", func(c *Config) { c.DecodeWidth = 9; c.FetchSpeed = 2 }, "fetch width"},
		{"fetch width at cap", func(c *Config) { c.DecodeWidth = 8; c.FetchSpeed = 2 }, ""},
		{"IFQ above cap", func(c *Config) { c.IFQSize = MaxBufferSize + 1 }, "IFQSize"},
		{"RUU above cap", func(c *Config) { c.RUUSize = MaxBufferSize + 1 }, "RUUSize"},
		{"LSQ above cap", func(c *Config) { c.LSQSize = MaxBufferSize + 1; c.RUUSize = MaxBufferSize }, "LSQSize"},
		{"buffer at cap", func(c *Config) { c.RUUSize = MaxBufferSize }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigValidateBoundsOccupancy pins the relationship the occupancy
// histograms rely on: no valid configuration can move more
// instructions through a stage in one cycle than the histograms have
// buckets for.
func TestConfigValidateBoundsOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FetchWidth() > OccBuckets-1 {
		t.Fatalf("default fetch width %d exceeds histogram range %d", cfg.FetchWidth(), OccBuckets-1)
	}
	if MaxWidth != OccBuckets-1 {
		t.Fatalf("MaxWidth (%d) out of sync with OccBuckets (%d)", MaxWidth, OccBuckets)
	}
}
