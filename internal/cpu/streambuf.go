package cpu

import "repro/internal/trace"

// streamBuf buffers the committed-path instruction stream so that fetch
// can rewind after a branch misprediction: the pipeline fills with
// upcoming instructions "as if they were from the incorrect path"
// (§2.3), squashes them when the branch resolves, and re-fetches the
// same instructions as the correct path.
type streamBuf struct {
	src  trace.Source
	base uint64 // stream position of buf[0]
	buf  []trace.DynInst
	eof  bool
}

func newStreamBuf(src trace.Source) *streamBuf {
	return &streamBuf{src: src}
}

// at returns the instruction at stream position pos, pulling from the
// source as needed; nil once the stream is exhausted. pos must be
// >= the last release point.
func (s *streamBuf) at(pos uint64) *trace.DynInst {
	if pos < s.base {
		panic("cpu: streamBuf access below release point")
	}
	for pos >= s.base+uint64(len(s.buf)) {
		if s.eof {
			return nil
		}
		var d trace.DynInst
		if !s.src.Next(&d) {
			s.eof = true
			return nil
		}
		s.buf = append(s.buf, d)
	}
	return &s.buf[pos-s.base]
}

// release discards buffered instructions below pos (already committed),
// compacting occasionally to bound memory.
func (s *streamBuf) release(pos uint64) {
	if pos <= s.base {
		return
	}
	drop := pos - s.base
	if drop > uint64(len(s.buf)) {
		drop = uint64(len(s.buf))
		pos = s.base + drop
	}
	// Compact only when a sizeable prefix is dead, amortising the copy.
	if drop >= 4096 || drop == uint64(len(s.buf)) {
		s.buf = append(s.buf[:0], s.buf[drop:]...)
		s.base = pos
	}
}
