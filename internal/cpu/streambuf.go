package cpu

import "repro/internal/trace"

// streamBuf buffers the committed-path instruction stream so that fetch
// can rewind after a branch misprediction: the pipeline fills with
// upcoming instructions "as if they were from the incorrect path"
// (§2.3), squashes them when the branch resolves, and re-fetches the
// same instructions as the correct path.
//
// The source is consumed through the batch interface: refills read one
// chunk directly into the buffer's tail, so steady-state fetch performs
// no per-instruction interface calls and no allocation (the buffer is
// grown manually and compacted in place by release).
type streamBuf struct {
	src  trace.BatchSource
	base uint64 // stream position of buf[0]
	buf  []trace.DynInst
	eof  bool
}

func newStreamBuf(src trace.Source) *streamBuf {
	return &streamBuf{src: trace.Batched(src)}
}

// at returns the instruction at stream position pos, pulling from the
// source as needed; nil once the stream is exhausted. pos must be
// >= the last release point. Refills are chunked, so the buffer may run
// up to one chunk ahead of pos.
func (s *streamBuf) at(pos uint64) *trace.DynInst {
	if pos < s.base {
		panic("cpu: streamBuf access below release point")
	}
	for pos >= s.base+uint64(len(s.buf)) {
		if s.eof {
			return nil
		}
		s.refill()
	}
	return &s.buf[pos-s.base]
}

// refill appends up to one chunk of instructions, reading in place into
// the buffer's spare capacity.
func (s *streamBuf) refill() {
	n := len(s.buf)
	if cap(s.buf)-n < trace.DefaultBatchSize {
		grown := make([]trace.DynInst, n, 2*cap(s.buf)+trace.DefaultBatchSize)
		copy(grown, s.buf)
		s.buf = grown
	}
	k := s.src.NextBatch(s.buf[n : n+trace.DefaultBatchSize])
	if k == 0 {
		s.eof = true
		return
	}
	s.buf = s.buf[:n+k]
}

// release discards buffered instructions below pos (already committed),
// compacting occasionally to bound memory.
func (s *streamBuf) release(pos uint64) {
	if pos <= s.base {
		return
	}
	drop := pos - s.base
	if drop > uint64(len(s.buf)) {
		drop = uint64(len(s.buf))
		pos = s.base + drop
	}
	// Compact only when a sizeable prefix is dead, amortising the copy.
	if drop >= 4096 || drop == uint64(len(s.buf)) {
		s.buf = append(s.buf[:0], s.buf[drop:]...)
		s.base = pos
	}
}
