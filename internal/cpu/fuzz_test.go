package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
)

// randomStream builds a structurally valid but otherwise arbitrary
// instruction stream from fuzz input.
func randomStream(seed uint64, n int) []trace.DynInst {
	rng := stats.NewRNG(seed)
	out := make([]trace.DynInst, n)
	pc := uint64(0x400000)
	for i := range out {
		cls := isa.Class(rng.Intn(int(isa.NumClasses)))
		d := trace.DynInst{
			Seq:     uint64(i),
			PC:      pc,
			NextPC:  pc + 8,
			Class:   cls,
			BlockID: int32(rng.Intn(50)),
			Index:   int16(rng.Intn(8)),
		}
		if cls.IsMem() {
			d.EffAddr = uint64(rng.Intn(1 << 24))
		}
		if cls.IsBranch() {
			d.Taken = rng.Intn(2) == 0
			if rng.Intn(4) == 0 {
				d.Flags |= trace.FlagBrMispredict
			} else if rng.Intn(4) == 0 {
				d.Flags |= trace.FlagBrFetchRedirect
			}
			if d.Taken {
				d.NextPC = uint64(0x400000 + rng.Intn(1<<16)*8)
			}
		}
		if rng.Intn(3) == 0 {
			d.Flags |= trace.FlagL1IMiss
		}
		if cls == isa.Load && rng.Intn(3) == 0 {
			d.Flags |= trace.FlagL1DMiss | trace.FlagDTLBMiss
			if rng.Intn(2) == 0 {
				d.Flags |= trace.FlagL2DMiss
			}
		}
		nsrc := rng.Intn(isa.MaxSrcOperands + 1)
		d.NumSrcs = uint8(nsrc)
		for op := 0; op < nsrc; op++ {
			if rng.Intn(2) == 0 {
				d.DepDist[op] = uint32(rng.Intn(700))
			}
		}
		if cls.HasDest() && rng.Intn(2) == 0 {
			d.WAWDist = uint32(rng.Intn(700))
		}
		pc += 8
	}
	return out
}

// Property: any structurally valid stream commits completely, in both
// pipeline disciplines, under several window configurations, with
// cycles >= instructions/issue-width.
func TestPipelineFuzzCompletes(t *testing.T) {
	f := func(seed uint64, small bool, inorder bool) bool {
		n := 2000
		insts := randomStream(seed, n)
		cfg := DefaultConfig()
		cfg.PerfectCaches = false
		cfg.InOrder = inorder
		if small {
			cfg.RUUSize = 16
			cfg.LSQSize = 8
			cfg.IFQSize = 4
			cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth = 2, 2, 2
			cfg.FetchSpeed = 1
		}
		r := NewTraceDriven(cfg, trace.NewSliceSource(insts)).Run()
		if r.Instructions != uint64(n) {
			t.Logf("seed %d: committed %d of %d", seed, r.Instructions, n)
			return false
		}
		minCycles := uint64(n) / uint64(cfg.IssueWidth)
		return r.Cycles >= minCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution-driven mode completes on arbitrary streams too
// (live predictor + caches), and activity counters stay consistent.
func TestPipelineFuzzEDSConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1500
		insts := randomStream(seed, n)
		cfg := DefaultConfig()
		r := NewExecutionDriven(cfg, trace.NewSliceSource(insts)).Run()
		if r.Instructions != uint64(n) {
			return false
		}
		// Committed never exceeds dispatched, dispatched never exceeds
		// fetched.
		if r.Act.Committed > r.Act.Dispatched || r.Act.Dispatched > r.Act.Fetched {
			return false
		}
		// Every committed instruction was issued exactly once; wrong-path
		// issues can only add.
		return r.Act.Issued >= r.Act.Committed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBuf(t *testing.T) {
	insts := make([]trace.DynInst, 100)
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	sb := newStreamBuf(trace.NewSliceSource(insts))
	if d := sb.at(0); d == nil || d.Seq != 0 {
		t.Fatal("at(0) failed")
	}
	if d := sb.at(99); d == nil || d.Seq != 99 {
		t.Fatal("at(99) failed")
	}
	// Rewind within the buffer works.
	if d := sb.at(10); d == nil || d.Seq != 10 {
		t.Fatal("rewind failed")
	}
	if sb.at(100) != nil {
		t.Fatal("beyond EOF should be nil")
	}
	if sb.at(100) != nil {
		t.Fatal("EOF must be sticky")
	}
	// Release then access above the release point.
	sb.release(50)
	if d := sb.at(60); d == nil || d.Seq != 60 {
		t.Fatal("access after release failed")
	}
}

func TestStreamBufReleaseCompaction(t *testing.T) {
	insts := make([]trace.DynInst, 10000)
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	sb := newStreamBuf(trace.NewSliceSource(insts))
	sb.at(9000)
	sb.release(8192) // above the compaction threshold
	if len(sb.buf) >= 9000 {
		t.Errorf("buffer not compacted: %d entries", len(sb.buf))
	}
	if d := sb.at(8500); d == nil || d.Seq != 8500 {
		t.Fatal("post-compaction access failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("access below release point should panic")
		}
	}()
	sb.at(100)
}
