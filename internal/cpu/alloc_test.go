package cpu

import (
	"testing"

	"repro/internal/trace"
)

// endlessSource is an unbounded committed stream for steady-state
// measurements.
type endlessSource struct{ pc uint64 }

func (s *endlessSource) Next(d *trace.DynInst) bool {
	*d = trace.DynInst{PC: s.pc}
	s.pc++
	return true
}

// TestStreamBufZeroAllocSteadyState pins the fetch path's allocation
// behaviour: once the stream buffer has grown to its working size,
// at/refill/release cycles (chunked in-place refills, in-place
// compaction) allocate nothing. Skipped under -race: the race runtime
// instruments allocations.
func TestStreamBufZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := newStreamBuf(&endlessSource{})
	pos := uint64(0)
	for ; pos < 100_000; pos++ { // warm: buffer capacity stabilises
		if s.at(pos) == nil {
			t.Fatal("endless source reported EOF")
		}
		if pos%4096 == 0 {
			s.release(pos)
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		for end := pos + 8192; pos < end; pos++ {
			if s.at(pos) == nil {
				t.Fatal("endless source reported EOF")
			}
			if pos%4096 == 0 {
				s.release(pos)
			}
		}
	}); a != 0 {
		t.Errorf("streamBuf at/release: %v allocs/run in steady state, want 0", a)
	}
}
