package sfg

// GraphStats summarises a statistical flow graph for observability
// surfaces (run manifests, `statsim inspect`, the daemon's profile
// responses): how big the profile is and how concentrated its mass is.
type GraphStats struct {
	K                 int     `json:"k"`
	Nodes             int     `json:"nodes"`
	Edges             int     `json:"edges"`
	TotalInstructions uint64  `json:"total_instructions"`
	TotalBlocks       uint64  `json:"total_blocks"`
	AvgOutDegree      float64 `json:"avg_out_degree"`
	// MaxNodeShare is the occurrence share of the hottest node — a
	// quick read on how skewed the walk over this graph will be.
	MaxNodeShare float64 `json:"max_node_share"`
}

// Stats computes the summary. It is read-only and safe on frozen
// graphs.
func (g *Graph) Stats() GraphStats {
	s := GraphStats{
		K:                 g.K,
		Nodes:             len(g.Nodes),
		Edges:             len(g.Edges),
		TotalInstructions: g.TotalInstructions,
		TotalBlocks:       g.TotalBlocks,
	}
	if len(g.Nodes) > 0 {
		s.AvgOutDegree = float64(len(g.Edges)) / float64(len(g.Nodes))
	}
	var maxOcc uint64
	for _, n := range g.Nodes {
		if n.Occ > maxOcc {
			maxOcc = n.Occ
		}
	}
	if g.TotalBlocks > 0 {
		s.MaxNodeShare = float64(maxOcc) / float64(g.TotalBlocks)
	}
	return s
}
