package sfg

import (
	"slices"
	"sync"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ShardOptions configures parallel sharded profiling.
type ShardOptions struct {
	// Shards is the maximum number of concurrently profiled intervals.
	// Values <= 1 select the sequential profiler (the golden
	// reference).
	Shards int
	// Interval is the slab length in instructions. The result depends
	// on Interval (and Warmup) but NOT on Shards: slabs are fixed by
	// the stream position and merged in stream order, so any worker
	// count reproduces the same graph. Defaults to 65536.
	Interval uint64
	// Warmup is the per-shard warm window: each shard replays this many
	// instructions of the true predecessor stream (spanning as many
	// earlier slabs as needed) through its private cache, predictor and
	// history state before recording. Longer windows shrink the
	// cold-state approximation — large caches and the branch predictor
	// carry state far beyond one slab — at the cost of Warmup extra
	// instructions of work per shard. Defaults to Interval.
	Warmup uint64
}

// DefaultShardInterval is the default profiling slab length.
const DefaultShardInterval = 65536

func (so ShardOptions) withDefaults() ShardOptions {
	if so.Interval == 0 {
		so.Interval = DefaultShardInterval
	}
	if so.Warmup == 0 {
		so.Warmup = so.Interval
	}
	return so
}

// ProfileSharded is Profile with interval-sharded parallelism (the
// opt-in fast path for long streams): the stream is chopped into
// Interval-length slabs, each profiled concurrently into a private
// graph by a profiler warmed on the Warmup-instruction window of the
// true predecessor stream, and the per-edge statistics — all additive —
// are merged in slab order.
//
// Approximation contract: recording is exact with respect to block
// structure (a block is recorded by the shard its first instruction
// falls in, including its tail in the next slab), and each shard's
// history key, caches and predictor are warmed on the true predecessor
// stream, but state older than the warm window is lost, so locality and
// misprediction counts can differ slightly from the sequential profile
// (bounded by the accuracy test at 0.5%). Results are deterministic for
// fixed Interval/Warmup regardless of Shards. The whole stream is
// materialised in memory (~88 B/instruction) for the duration of the
// call — the price of random access to slab boundaries.
func ProfileSharded(src trace.Source, opts Options, so ShardOptions) (*Graph, error) {
	opts = opts.withDefaults()
	so = so.withDefaults()
	if so.Shards <= 1 {
		return Profile(src, opts)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}

	insts := trace.CollectBatch(trace.Batched(src), 0)
	// The caller-requested warm window is consumed by shard 0 with the
	// sequential semantics (state warm, history cold).
	prefix := insts
	if uint64(len(prefix)) > opts.Warmup {
		prefix = insts[:opts.Warmup]
	}
	body := insts[len(prefix):]
	nSlabs := int((uint64(len(body)) + so.Interval - 1) / so.Interval)
	if nSlabs <= 1 {
		return Profile(trace.NewSliceSource(insts), opts)
	}
	slab := func(i int) []trace.DynInst {
		lo := uint64(i) * so.Interval
		hi := min(lo+so.Interval, uint64(len(body)))
		return body[lo:hi]
	}

	shards := make([]*Graph, nSlabs)
	errs := make([]error, nSlabs)
	sem := make(chan struct{}, so.Shards)
	var wg sync.WaitGroup
	for si := 0; si < nSlabs; si++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int) {
			defer wg.Done()
			defer func() { <-sem }()
			warm := prefix
			warmHist := false
			if si > 0 {
				// The warm window is the true predecessor stream,
				// counted back from the slab start across slab (and
				// caller-prefix) boundaries.
				lo := uint64(len(prefix)) + uint64(si)*so.Interval
				start := uint64(0)
				if lo > so.Warmup {
					start = lo - so.Warmup
				}
				warm = insts[start:lo]
				warmHist = true
			}
			p := newProfiler(opts, uint64(len(warm)), warmHist)
			if err := p.feed(warm); err != nil {
				errs[si] = err
				return
			}
			if err := p.feed(slab(si)); err != nil {
				errs[si] = err
				return
			}
			// Finish the block straddling the slab boundary: its tail
			// (everything before the next slab's first block start)
			// belongs to this shard.
			if si+1 < nSlabs {
				if err := p.feed(blockTail(slab(si + 1))); err != nil {
					errs[si] = err
					return
				}
			}
			p.finish()
			shards[si] = p.g
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	g := NewGraph(opts.K)
	for _, s := range shards {
		g.absorb(s)
	}
	return g, nil
}

// blockTail returns the prefix of a slab that belongs to a block begun
// in the previous slab: everything before the first block start.
func blockTail(s []trace.DynInst) []trace.DynInst {
	for i := range s {
		if s[i].Index == 0 {
			return s[:i]
		}
	}
	return s
}

// absorb merges the shard-local graph s into g. Nodes and edges are
// created in s's ID order, and ProfileSharded absorbs shards in slab
// order, so the merged node/edge numbering is deterministic regardless
// of how the shard goroutines were scheduled.
func (g *Graph) absorb(s *Graph) {
	for _, sn := range s.Nodes {
		g.node(sn.Hist).Occ += sn.Occ
	}
	for _, se := range s.Edges {
		from := g.node(s.Nodes[se.From].Hist)
		e := g.edge(from, se.Block)
		e.Count += se.Count
		e.BrCount += se.BrCount
		e.BrTaken += se.BrTaken
		e.BrMispredict += se.BrMispredict
		e.BrRedirect += se.BrRedirect
		e.Fetches += se.Fetches
		e.L1IMiss += se.L1IMiss
		e.L2IMiss += se.L2IMiss
		e.ITLBMiss += se.ITLBMiss
		e.Loads += se.Loads
		e.L1DMiss += se.L1DMiss
		e.L2DMiss += se.L2DMiss
		e.DTLBMiss += se.DTLBMiss
		e.Stores += se.Stores
		for len(e.Insts) < len(se.Insts) {
			e.Insts = append(e.Insts, InstProfile{})
		}
		for i := range se.Insts {
			e.Insts[i].merge(&se.Insts[i])
		}
	}
	g.TotalInstructions += s.TotalInstructions
	g.TotalBlocks += s.TotalBlocks
}

// merge folds the shard-local slot profile sp into ip.
func (ip *InstProfile) merge(sp *InstProfile) {
	ip.Class = sp.Class
	ip.NumSrcs = sp.NumSrcs
	for op, h := range sp.Dep {
		if h == nil {
			continue
		}
		if ip.Dep[op] == nil {
			ip.Dep[op] = stats.NewHistogram(h.Max)
		}
		ip.Dep[op].Merge(h)
	}
	if sp.WAW != nil {
		if ip.WAW == nil {
			ip.WAW = stats.NewHistogram(sp.WAW.Max)
		}
		ip.WAW.Merge(sp.WAW)
	}
	ip.L1IMiss += sp.L1IMiss
	ip.L2IMiss += sp.L2IMiss
	ip.ITLBMiss += sp.ITLBMiss
	ip.L1DMiss += sp.L1DMiss
	ip.L2DMiss += sp.L2DMiss
	ip.DTLBMiss += sp.DTLBMiss
	if sp.Addr != nil {
		if ip.Addr == nil {
			ip.Addr = &AddrProfile{}
		}
		ip.Addr.Merge(sp.Addr)
	}
}

// Merge folds o into a. Stride admission at the MaxDistinctStrides
// capacity boundary processes o's deltas in sorted order, keeping the
// merged profile deterministic (map iteration order must not leak into
// results).
func (a *AddrProfile) Merge(o *AddrProfile) {
	if o == nil || o.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.First, a.Min, a.Max = o.First, o.Min, o.Max
	} else {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
	a.Count += o.Count
	a.Overflow += o.Overflow
	if len(o.Strides) > 0 {
		deltas := make([]int64, 0, len(o.Strides))
		for d := range o.Strides {
			deltas = append(deltas, d)
		}
		slices.Sort(deltas)
		for _, d := range deltas {
			c := o.Strides[d]
			if _, ok := a.Strides[d]; ok || len(a.Strides) < MaxDistinctStrides {
				if a.Strides == nil {
					a.Strides = make(map[int64]uint64)
				}
				a.Strides[d] += c
			} else {
				a.Overflow += c
			}
		}
	}
	// prev/hasPrev stay zero: a merged profile is never fed further
	// observations.
}
